//! # trtsim
//!
//! A simulator-based reproduction of **"Demystifying TensorRT:
//! Characterizing Neural Network Inference Engine on Nvidia Edge Devices"**
//! (IISWC 2021): a TensorRT-like inference-engine builder and runtime, an
//! analytic model of the Jetson Xavier NX/AGX GPUs, the paper's 13-network
//! model zoo, synthetic datasets, profilers, and harnesses that regenerate
//! every table and figure of the paper's evaluation.
//!
//! This facade crate re-exports the workspace's public API under one roof:
//!
//! * [`ir`] — network IR and FP32 reference executor (the un-optimized path)
//! * [`engine`] — the builder/runtime (`Builder`, `Engine`,
//!   `ExecutionContext`, plan serialization)
//! * [`gpu`] — device models, kernel timing, streams, concurrency
//! * [`kernels`] — the tactic catalog and order-sensitive numerics
//! * [`models`] — the 13 networks of the paper's Table II
//! * [`data`] — synthetic benign/adversarial/traffic datasets
//! * [`metrics`] — top-1 error, IoU precision/recall, latency cells
//! * [`profiler`] — nvprof-like summaries over simulated timelines
//! * [`perfmodel`] — the BSP prediction model (Eq. 2) and λ calibration
//! * [`repro`] — one harness per paper table/figure
//!
//! # Quickstart
//!
//! ```
//! use trtsim::engine::{Builder, BuilderConfig};
//! use trtsim::gpu::device::DeviceSpec;
//! use trtsim::models::ModelId;
//!
//! // Build a TensorRT-like engine for Tiny-YOLOv3 on a simulated Xavier NX.
//! let network = ModelId::TinyYolov3.descriptor();
//! let engine = Builder::new(DeviceSpec::xavier_nx(), BuilderConfig::default())
//!     .build(&network)?;
//! println!(
//!     "{} kernels, plan {:.1} MiB",
//!     engine.launch_count(),
//!     engine.plan_size_bytes() as f64 / (1 << 20) as f64
//! );
//! # Ok::<(), trtsim::engine::EngineError>(())
//! ```

#![warn(missing_docs)]

pub use trtsim_core as engine;
pub use trtsim_data as data;
pub use trtsim_gpu as gpu;
pub use trtsim_ir as ir;
pub use trtsim_kernels as kernels;
pub use trtsim_metrics as metrics;
pub use trtsim_models as models;
pub use trtsim_perfmodel as perfmodel;
pub use trtsim_profiler as profiler;
pub use trtsim_repro as repro;
pub use trtsim_util as util;
