//! # trtsim
//!
//! A simulator-based reproduction of **"Demystifying TensorRT:
//! Characterizing Neural Network Inference Engine on Nvidia Edge Devices"**
//! (IISWC 2021): a TensorRT-like inference-engine builder and runtime, an
//! analytic model of the Jetson Xavier NX/AGX GPUs, the paper's 13-network
//! model zoo, synthetic datasets, profilers, and harnesses that regenerate
//! every table and figure of the paper's evaluation.
//!
//! This facade crate re-exports the workspace's public API under one roof:
//!
//! * [`ir`] — network IR and FP32 reference executor (the un-optimized path)
//! * [`engine`] — the builder/runtime (`Builder`, `Engine`,
//!   `ExecutionContext`, plan serialization)
//! * [`gpu`] — device models, kernel timing, streams, concurrency
//! * [`kernels`] — the tactic catalog and order-sensitive numerics
//! * [`models`] — the 13 networks of the paper's Table II
//! * [`data`] — synthetic benign/adversarial/traffic datasets
//! * [`metrics`] — top-1 error, IoU precision/recall, latency cells, and
//!   the process-wide telemetry registry with Prometheus/JSON exporters
//! * [`profiler`] — nvprof-like summaries, chrome://tracing export, and
//!   anomaly detection over simulated timelines
//! * [`perfmodel`] — the BSP prediction model (Eq. 2) and λ calibration
//! * [`repro`] — one harness per paper table/figure
//! * [`scenario`] — the declarative experiment DSL: `.scn` files parsed,
//!   validated, and compiled to plans run by one generic driver
//!
//! The most commonly used types are also re-exported at the crate root —
//! `use trtsim::{Builder, BuilderConfig, InferenceServer, ServerConfig, ...}`
//! covers a typical build-then-serve application without reaching into the
//! submodules.
//!
//! # Quickstart
//!
//! ```
//! use trtsim::{Builder, BuilderConfig, DeviceSpec};
//! use trtsim::models::ModelId;
//!
//! // Build a TensorRT-like engine for Tiny-YOLOv3 on a simulated Xavier NX.
//! let network = ModelId::TinyYolov3.descriptor();
//! let engine = Builder::new(DeviceSpec::xavier_nx(), BuilderConfig::default())
//!     .build(&network)?;
//! println!(
//!     "{} kernels, plan {:.1} MiB",
//!     engine.launch_count(),
//!     engine.plan_size_bytes() as f64 / (1 << 20) as f64
//! );
//! # Ok::<(), trtsim::EngineError>(())
//! ```
//!
//! # Serving
//!
//! The production entry point is [`InferenceServer`]: worker threads with
//! per-worker streams, a bounded submission queue with backpressure, and a
//! dynamic batcher — see [`engine::serving`] for the architecture.
//!
//! ```
//! use trtsim::{
//!     Builder, BuilderConfig, DeviceSpec, InferenceServer, ServerConfig, TimingOptions,
//! };
//! use trtsim::models::ModelId;
//!
//! let device = DeviceSpec::xavier_nx();
//! let engine = Builder::new(device.clone(), BuilderConfig::default().with_build_seed(1))
//!     .build(&ModelId::TinyYolov3.descriptor())?;
//! let server = InferenceServer::start(
//!     &engine,
//!     &device,
//!     ServerConfig::default()
//!         .with_workers(2)
//!         .with_max_batch_size(4)
//!         .with_batch_timeout_us(f64::INFINITY)
//!         .with_timing(TimingOptions::default().without_engine_upload()),
//! )?;
//! for frame in 0..16 {
//!     server.submit(frame)?;
//! }
//! let stats = server.drain();
//! assert_eq!(stats.completed, 16);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! # Observability
//!
//! Every subsystem publishes counters, gauges, and latency histograms to a
//! process-wide [`Registry`] (`trtsim_server_*`, `trtsim_build_*`,
//! `trtsim_plan_*`, `trtsim_gpu_*`, ...). Turn on the live endpoint with
//! [`ServerConfig::with_telemetry`] and scrape `GET /metrics` (Prometheus
//! text) or `GET /metrics.json`, or snapshot to disk with
//! [`Registry::write_json`] — see [`metrics::telemetry`].
//!
//! Beyond metrics, every served request carries a trace: admission mints a
//! deterministic [`TraceId`], the span tree of its pipeline phases
//! (queueing, batch wait, execution) lands in an always-on [`FlightRecorder`]
//! with tail-based retention (deadline misses, rejections, drops, and the
//! slowest decile always survive), and the same telemetry endpoint serves
//! `GET /traces`, `GET /traces/<id>`, and a per-trace chrome://tracing
//! export. Retained trace ids also appear as OpenMetrics exemplars on the
//! server latency histogram — see [`engine::reqtrace`].
//!
//! # Scenarios
//!
//! Experiments are described declaratively in `.scn` files — graphs of
//! `device`, `model`, `traffic`, and `assert` nodes — checked with
//! accumulated, span-carrying diagnostics and executed by a single generic
//! driver ([`scenario::driver::run`]). The checked-in files under
//! `scenarios/` reproduce the legacy harnesses bit-for-bit:
//!
//! ```
//! let src = r#"
//! scenario "smoke" {
//!   device nx { platform = nx }
//!   model m { uses = [nx] network = alexnet }
//!   traffic t { uses = [m] kind = latency runs = 3 }
//!   assert a { uses = [t] metric = fps min = 1 }
//! }
//! "#;
//! let plan = trtsim::scenario::compile_src(src, trtsim::CompileOptions::default())
//!     .expect("valid scenario");
//! assert_eq!(plan.units.len(), 1);
//! ```
//!
//! The `scenario` bin (`cargo run --bin scenario -- check scenarios/`)
//! lints, lists, and runs scenario files from the command line.

#![warn(missing_docs)]

pub use trtsim_core as engine;

pub use trtsim_core::autotune::AutotuneOptions;
pub use trtsim_core::serving::ArrivalProcess;
pub use trtsim_core::{
    Builder, BuilderConfig, Engine, EngineError, ExecutionContext, Fleet, FleetBuilder,
    FleetConfig, FleetStats, FlightRecorder, InferencePlan, InferenceServer, KernelTime, PhaseKind,
    PhaseSpan, PlanScratch, ProfileOptions, ReplicaStats, RequestRecord, RequestTrace,
    ServerConfig, ServerStats, ServingError, ServingLabels, ServingReport, TimingCache,
    TimingOptions, TraceId, TraceOptions, TraceOutcome,
};
pub use trtsim_gpu::device::{DeviceSpec, Platform};
pub use trtsim_gpu::timeline::ProfilingOverhead;
pub use trtsim_metrics::{
    render_json, render_prometheus, Counter, Gauge, Histogram, Registry, TelemetryServer,
};
pub use trtsim_profiler::anomaly::DetectorConfig;
pub use trtsim_scenario::{
    check_src, compile_src, CompileOptions, ExecutionPlan, ScenarioError, ScenarioGraph,
    ScenarioReport,
};

pub use trtsim_data as data;
pub use trtsim_gpu as gpu;
pub use trtsim_ir as ir;
pub use trtsim_kernels as kernels;
pub use trtsim_metrics as metrics;
pub use trtsim_models as models;
pub use trtsim_perfmodel as perfmodel;
pub use trtsim_profiler as profiler;
pub use trtsim_repro as repro;
pub use trtsim_scenario as scenario;
pub use trtsim_util as util;
