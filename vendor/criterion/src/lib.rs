//! Offline stand-in for the [`criterion`](https://docs.rs/criterion) crate.
//!
//! The build container has no crates-io access, so the workspace vendors the
//! slice of the criterion API its benches use: `Criterion::benchmark_group`,
//! group knobs (`sample_size`, `warm_up_time`, `measurement_time`),
//! `bench_function` + `Bencher::iter`, `black_box`, and the
//! `criterion_group!`/`criterion_main!` macros. Each benchmark runs one
//! warm-up iteration plus `sample_size` timed iterations and prints
//! min/mean/max wall-clock time — no statistics engine, no HTML reports.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benched work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Measurement backends (subset: wall-clock only).
pub mod measurement {
    /// Wall-clock time measurement.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct WallTime;
}

/// Top-level bench context.
#[derive(Debug, Default)]
pub struct Criterion;

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(
        &mut self,
        name: impl Into<String>,
    ) -> BenchmarkGroup<'_, measurement::WallTime> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            _criterion: self,
            _measurement: measurement::WallTime,
        }
    }
}

/// A named group of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a, M> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
    _measurement: M,
}

impl<M> BenchmarkGroup<'_, M> {
    /// Sets how many timed iterations each benchmark runs.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for API compatibility; the stub always warms up with one
    /// untimed iteration instead of a time budget.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the stub times exactly `sample_size`
    /// iterations instead of filling a time budget.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark: calls `f` with a [`Bencher`] and prints the
    /// per-iteration wall-clock summary.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            sample_size: self.sample_size,
            samples: Vec::new(),
        };
        f(&mut b);
        let n = b.samples.len().max(1) as f64;
        let mean = b.samples.iter().sum::<f64>() / n;
        let min = b.samples.iter().copied().fold(f64::INFINITY, f64::min);
        let max = b.samples.iter().copied().fold(0.0f64, f64::max);
        println!(
            "{}/{}: mean {:.3} ms, min {:.3} ms, max {:.3} ms ({} samples)",
            self.name,
            id,
            mean / 1e6,
            min / 1e6,
            max / 1e6,
            b.samples.len()
        );
        self
    }

    /// Ends the group (no-op; reporting happens per benchmark).
    pub fn finish(&mut self) {}
}

/// Timing harness handed to each benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    sample_size: usize,
    samples: Vec<f64>,
}

impl Bencher {
    /// Runs `routine` once untimed, then `sample_size` timed iterations,
    /// recording per-iteration nanoseconds.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed().as_nanos() as f64);
        }
    }
}

/// Declares a bench group function callable from [`criterion_main!`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench binary's `main`, running the named groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench_example(c: &mut Criterion) {
        let mut group = c.benchmark_group("stub");
        group.sample_size(3);
        group.warm_up_time(Duration::from_millis(1));
        group.measurement_time(Duration::from_millis(1));
        group.bench_function("add", |b| b.iter(|| black_box(1u64) + black_box(2u64)));
        group.finish();
    }

    criterion_group!(benches, bench_example);

    #[test]
    fn group_runs_and_records() {
        benches();
    }
}
