//! Offline stand-in for the [`bytes`](https://docs.rs/bytes) crate.
//!
//! The build container has no crates-io access, so the workspace vendors the
//! small slice of the `bytes` API it actually uses: a growable write buffer
//! ([`BytesMut`] + [`BufMut`]) and little-endian reads off `&[u8]` ([`Buf`]).
//! The semantics match the real crate for this subset; swapping the real
//! dependency back in requires no source changes.

#![warn(missing_docs)]

/// A growable byte buffer (the writable half of the real crate's `BytesMut`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty buffer with room for `capacity` bytes.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            data: Vec::with_capacity(capacity),
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copies the contents into a plain vector.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.clone()
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

/// Write-side buffer operations (little-endian subset).
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8);

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32);

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64);

    /// Appends a little-endian `f32`.
    fn put_f32_le(&mut self, v: f32);

    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64);
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }

    fn put_u8(&mut self, v: u8) {
        self.data.push(v);
    }

    fn put_u32_le(&mut self, v: u32) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }

    fn put_f32_le(&mut self, v: f32) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }

    fn put_f64_le(&mut self, v: f64) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }
}

/// Read-side buffer operations (little-endian subset). Each read consumes
/// bytes from the front.
///
/// # Panics
///
/// Like the real crate, reads panic if the buffer holds too few bytes;
/// callers bound-check first (see `trtsim-core::plan::Reader`).
pub trait Buf {
    /// Consumes and returns one little-endian `u32`.
    fn get_u32_le(&mut self) -> u32;

    /// Consumes and returns one little-endian `u64`.
    fn get_u64_le(&mut self) -> u64;

    /// Consumes and returns one little-endian `f32`.
    fn get_f32_le(&mut self) -> f32;

    /// Consumes and returns one little-endian `f64`.
    fn get_f64_le(&mut self) -> f64;
}

impl Buf for &[u8] {
    fn get_u32_le(&mut self) -> u32 {
        let (head, rest) = self.split_at(4);
        *self = rest;
        u32::from_le_bytes(head.try_into().expect("4 bytes"))
    }

    fn get_u64_le(&mut self) -> u64 {
        let (head, rest) = self.split_at(8);
        *self = rest;
        u64::from_le_bytes(head.try_into().expect("8 bytes"))
    }

    fn get_f32_le(&mut self) -> f32 {
        f32::from_bits(self.get_u32_le())
    }

    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_all_widths() {
        let mut buf = BytesMut::with_capacity(64);
        buf.put_slice(b"hdr");
        buf.put_u8(7);
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_u64_le(0x0123_4567_89AB_CDEF);
        buf.put_f32_le(1.5);
        buf.put_f64_le(-2.25);
        let v = buf.to_vec();
        assert_eq!(v.len(), 3 + 1 + 4 + 8 + 4 + 8);

        let mut r = &v[3..];
        assert_eq!(r[0], 7);
        r = &r[1..];
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64_le(), 0x0123_4567_89AB_CDEF);
        assert_eq!(r.get_f32_le(), 1.5);
        assert_eq!(r.get_f64_le(), -2.25);
        assert!(r.is_empty());
    }
}
