//! Offline stand-in for the [`proptest`](https://docs.rs/proptest) crate.
//!
//! The build container has no crates-io access, so the workspace vendors the
//! subset of proptest it uses: the [`proptest!`] macro over `pattern in
//! strategy` arguments, numeric range strategies, tuple strategies,
//! [`Strategy::prop_map`], `prop_assert!`/`prop_assert_eq!`/`prop_assume!`,
//! and [`ProptestConfig::with_cases`]. Cases are drawn from a deterministic
//! per-test RNG (seeded from the test name), so failures reproduce across
//! runs. There is no shrinking: a failing case reports its case index and
//! message and panics immediately.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Everything a proptest-based test file needs in scope.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assume, proptest, ProptestConfig, Strategy, TestCaseError,
    };
}

/// Runner configuration (subset: case count).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// Why a single case did not pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// An assertion failed: the property is violated.
    Fail(String),
    /// `prop_assume!` rejected the inputs: skip the case.
    Reject,
}

impl TestCaseError {
    /// Builds a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
}

/// Deterministic case RNG (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the RNG from a test name, so every run of a given property
    /// draws the same case sequence.
    pub fn for_test(name: &str) -> Self {
        let mut seed = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            seed = (seed ^ u64::from(b)).wrapping_mul(0x0100_0000_01b3);
        }
        Self { state: seed }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A generator of random test-case values.
pub trait Strategy {
    /// The value type this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps produced values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy adaptor returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span = (*self.end() - *self.start()) as u64 + 1;
                self.start() + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.next_f64() as $t) * (self.end - self.start)
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless the two values compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let left = &$a;
        let right = &$b;
        if !(left == right) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($a),
                stringify!($b),
                left,
                right
            )));
        }
    }};
}

/// Skips the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over `cases` random draws.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with ($cfg) $($rest)*);
    };
    (@with ($cfg:expr)
        $(
            $(#[$attr:meta])*
            fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$attr])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::for_test(stringify!($name));
                for case in 0..config.cases {
                    let ($($arg,)+) = ($($crate::Strategy::sample(&($strat), &mut rng),)+);
                    let outcome: ::core::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::core::result::Result::Ok(()) })();
                    match outcome {
                        ::core::result::Result::Ok(()) => {}
                        ::core::result::Result::Err($crate::TestCaseError::Reject) => continue,
                        ::core::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                            panic!("property `{}` failed on case {case}: {msg}", stringify!($name));
                        }
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(a in 3u64..9, b in -2.0f32..2.0, c in 1u8..=4) {
            prop_assert!((3..9).contains(&a));
            prop_assert!((-2.0..2.0).contains(&b));
            prop_assert!((1..=4).contains(&c));
        }

        #[test]
        fn tuples_and_map_compose(v in (1usize..4, 10usize..20).prop_map(|(x, y)| x * y)) {
            prop_assert!((10..80).contains(&v), "v = {v}");
            prop_assert_eq!(v, v);
        }

        #[test]
        fn assume_rejects_cases(n in 0u32..10) {
            prop_assume!(n % 2 == 0);
            prop_assert!(n % 2 == 0);
        }
    }

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = crate::TestRng::for_test("x");
        let mut b = crate::TestRng::for_test("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
