//! Temporary review check: run_batch chunking with n=5, threads=4.

use trtsim::engine::{Builder, BuilderConfig, ExecutionContext};
use trtsim::gpu::device::DeviceSpec;
use trtsim::ir::graph::{Graph, LayerKind};
use trtsim::ir::tensor::Tensor;

#[test]
fn batch_five_inputs_four_threads() {
    let mut g = Graph::new("m", [3, 8, 8]);
    let c = g.add_layer("c", LayerKind::conv_seeded(4, 3, 3, 1, 1, 0), &[Graph::INPUT]);
    g.mark_output(c);
    let engine = Builder::new(
        DeviceSpec::xavier_nx(),
        BuilderConfig::default().with_build_seed(1),
    )
    .build(&g)
    .unwrap();
    let ctx = ExecutionContext::new(&engine, DeviceSpec::xavier_nx());
    let inputs: Vec<Tensor> = (0..5).map(|_| Tensor::zeros([3, 8, 8])).collect();
    let out = ctx.infer_batch(&inputs, 4).unwrap();
    assert_eq!(out.len(), 5);
}
