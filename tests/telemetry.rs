//! Integration tests for the unified telemetry layer: the Prometheus text
//! exposition scraped over TCP from a live [`trtsim::InferenceServer`], the
//! registry's concurrency guarantees, and the log-bucket histogram's
//! agreement with the exact [`trtsim::metrics::LatencyPercentiles`].
//!
//! A mini Prometheus-text parser lives at the top of the file; the tests
//! assert over parsed samples, not string fragments, so format regressions
//! (broken escaping, non-cumulative buckets) fail loudly.

use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::TcpStream;

use proptest::prelude::*;
use trtsim::ir::graph::{EltwiseOp, Graph, LayerKind, PoolKind};
use trtsim::ir::Tensor;
use trtsim::metrics::{log_buckets, render_prometheus, LatencyPercentiles};
use trtsim::models::ModelId;
use trtsim::util::pool::map_indexed;
use trtsim::{
    Builder, BuilderConfig, DeviceSpec, ExecutionContext, InferenceServer, Registry, ServerConfig,
    TimingOptions,
};

/// One parsed sample line: metric name, sorted labels, value.
#[derive(Debug, Clone, PartialEq)]
struct Sample {
    name: String,
    labels: BTreeMap<String, String>,
    value: f64,
}

/// Minimal parser for the Prometheus text exposition format: skips `#`
/// comment lines, strips OpenMetrics exemplar suffixes
/// (`... N # {trace_id="..."} v`), splits `name{k="v",...} value`, and
/// un-escapes label values (`\\`, `\"`, `\n`).
fn parse_prometheus(text: &str) -> Vec<Sample> {
    let mut samples = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let line = match line.split_once(" # ") {
            Some((sample, _exemplar)) => sample.trim_end(),
            None => line,
        };
        let (name_labels, value) = line.rsplit_once(' ').expect("sample has a value");
        let value = match value {
            "+Inf" => f64::INFINITY,
            "-Inf" => f64::NEG_INFINITY,
            v => v.parse::<f64>().expect("numeric sample value"),
        };
        let (name, labels) = match name_labels.split_once('{') {
            None => (name_labels.to_string(), BTreeMap::new()),
            Some((name, rest)) => {
                let body = rest.strip_suffix('}').expect("closing brace");
                (name.to_string(), parse_labels(body))
            }
        };
        samples.push(Sample {
            name,
            labels,
            value,
        });
    }
    samples
}

/// Parses `k="v",k2="v2"` with escape handling inside quoted values.
fn parse_labels(body: &str) -> BTreeMap<String, String> {
    let mut labels = BTreeMap::new();
    let mut chars = body.chars().peekable();
    while chars.peek().is_some() {
        let key: String = chars.by_ref().take_while(|&c| c != '=').collect();
        assert_eq!(chars.next(), Some('"'), "label value must be quoted");
        let mut value = String::new();
        loop {
            match chars.next().expect("unterminated label value") {
                '\\' => match chars.next().expect("dangling escape") {
                    'n' => value.push('\n'),
                    c => value.push(c),
                },
                '"' => break,
                c => value.push(c),
            }
        }
        labels.insert(key, value);
        if chars.peek() == Some(&',') {
            chars.next();
        }
    }
    labels
}

/// Scrapes `path` from the telemetry endpoint at `addr`, returning the body.
fn scrape(addr: std::net::SocketAddr, path: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("endpoint accepts");
    // One write_all: `write!` would issue one write per format fragment,
    // racing the server's response-and-close against the request's tail.
    let request = format!("GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n");
    stream
        .write_all(request.as_bytes())
        .expect("request writes");
    let mut response = String::new();
    stream
        .read_to_string(&mut response)
        .expect("response reads");
    let (head, body) = response.split_once("\r\n\r\n").expect("header terminator");
    assert!(head.starts_with("HTTP/1.1 200"), "non-200 scrape: {head}");
    body.to_string()
}

fn value_of<'a>(samples: &'a [Sample], name: &str) -> Option<&'a Sample> {
    samples.iter().find(|s| s.name == name)
}

/// A tiny conv network for exercising the numeric fast path cheaply.
fn tiny_graph() -> Graph {
    let mut g = Graph::new("telemetry_probe", [3, 8, 8]);
    let conv = g.add_layer(
        "c0",
        LayerKind::conv_seeded(4, 3, 3, 1, 1, 7),
        &[Graph::INPUT],
    );
    g.mark_output(conv);
    g
}

/// The acceptance-criteria test: a live `InferenceServer` with telemetry
/// enabled serves a Prometheus scrape covering serving, build-cache,
/// fast-path, and per-stream GPU sampler metrics — plus the JSON variant
/// and a 404 — and counters are monotone across two scrapes.
#[test]
fn live_endpoint_covers_every_subsystem() {
    // Build with an explicit timing cache so the cache-lookup counters move,
    // and run one planned inference so the fast-path families register.
    let cache = std::sync::Arc::new(trtsim::TimingCache::new());
    let engine = Builder::new(
        DeviceSpec::xavier_nx(),
        BuilderConfig::default()
            .with_build_seed(0x7e1e)
            .with_timing_cache(cache),
    )
    .build(&ModelId::TinyYolov3.descriptor())
    .expect("zoo model builds");
    let probe_engine = Builder::new(DeviceSpec::xavier_nx(), BuilderConfig::default())
        .build(&tiny_graph())
        .expect("probe builds");
    let ctx = ExecutionContext::new(&probe_engine, DeviceSpec::xavier_nx());
    ctx.infer(&Tensor::zeros([3, 8, 8])).expect("probe runs");

    let timing = TimingOptions::default()
        .without_engine_upload()
        .with_run_jitter_sd(0.0);
    let server = InferenceServer::start(
        &engine,
        &DeviceSpec::xavier_nx(),
        ServerConfig::default()
            .with_workers(2)
            .with_queue_capacity(256)
            .with_max_batch_size(4)
            .with_batch_timeout_us(f64::INFINITY)
            .with_timing(timing)
            .with_telemetry("127.0.0.1:0".parse().expect("addr"))
            .with_telemetry_sample_ms(5),
    )
    .expect("server starts");
    let addr = server.telemetry_addr().expect("endpoint bound");

    for frame in 0..64 {
        server.submit(frame).expect("accepting");
    }

    // The sampler publishes per-stream gauges once a tick observes simulated
    // progress; poll the live endpoint until every family is present.
    let families = [
        "trtsim_server_accepted_total",
        "trtsim_server_completed_total",
        "trtsim_server_batches_total",
        "trtsim_server_queue_depth",
        "trtsim_server_latency_us_bucket",
        "trtsim_build_total",
        "trtsim_build_seconds_bucket",
        "trtsim_timing_cache_lookups_total",
        "trtsim_plan_compiles_total",
        "trtsim_plan_executions_total",
        "trtsim_gpu_gr3d_percent",
        "trtsim_gpu_stream_busy_percent",
        "trtsim_gpu_memcpy_bytes_per_second",
        "trtsim_trace_recorded_total",
        "trtsim_trace_retained_total",
    ];
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
    let text = loop {
        let text = scrape(addr, "/metrics");
        if families.iter().all(|f| text.contains(f)) {
            break text;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "families still missing after 30s: {:?}\n{text}",
            families
                .iter()
                .filter(|f| !text.contains(**f))
                .collect::<Vec<_>>()
        );
        std::thread::sleep(std::time::Duration::from_millis(20));
    };
    let first = parse_prometheus(&text);

    // Per-stream means one series per worker stream, labelled by stream id.
    let busy_streams: Vec<&Sample> = first
        .iter()
        .filter(|s| s.name == "trtsim_gpu_stream_busy_percent")
        .collect();
    assert_eq!(busy_streams.len(), 2, "one busy gauge per worker stream");
    for s in &busy_streams {
        assert!(s.labels.contains_key("stream"));
        assert!((0.0..=100.0).contains(&s.value), "busy% in range");
    }
    let accepted = value_of(&first, "trtsim_server_accepted_total").expect("accepted");
    assert_eq!(accepted.labels.get("model").map(String::as_str), {
        Some(engine.name())
    });
    assert_eq!(accepted.value, 64.0);

    // Histogram invariant on the wire: cumulative buckets are non-decreasing
    // and the +Inf bucket equals _count, for every histogram series.
    let inf_buckets: Vec<&Sample> = first
        .iter()
        .filter(|s| {
            s.name.ends_with("_bucket") && s.labels.get("le").map(String::as_str) == Some("+Inf")
        })
        .collect();
    assert!(!inf_buckets.is_empty());
    for inf in inf_buckets {
        let base = inf.name.strip_suffix("_bucket").expect("bucket suffix");
        let mut rest = inf.labels.clone();
        rest.remove("le");
        let count = first
            .iter()
            .find(|s| s.name == format!("{base}_count") && s.labels == rest)
            .unwrap_or_else(|| panic!("{base}_count missing"));
        assert_eq!(inf.value, count.value, "{base}: +Inf bucket != count");
        let mut buckets: Vec<(f64, f64)> = first
            .iter()
            .filter(|s| s.name == inf.name)
            .filter(|s| {
                let mut l = s.labels.clone();
                l.remove("le");
                l == rest
            })
            .map(|s| {
                let le = s.labels["le"].as_str();
                let le = if le == "+Inf" {
                    f64::INFINITY
                } else {
                    le.parse().expect("finite le")
                };
                (le, s.value)
            })
            .collect();
        buckets.sort_by(|a, b| a.0.total_cmp(&b.0));
        for pair in buckets.windows(2) {
            assert!(pair[0].1 <= pair[1].1, "{base}: cumulative dipped");
        }
    }

    // More work, then a second scrape: every counter is monotone.
    for frame in 64..96 {
        server.submit(frame).expect("accepting");
    }
    let stats = server.drain();
    assert_eq!(stats.completed, 96);
    let final_text = render_prometheus(Registry::global());
    let second = parse_prometheus(&final_text);
    for s1 in first.iter().filter(|s| s.name.ends_with("_total")) {
        let s2 = second
            .iter()
            .find(|s| s.name == s1.name && s.labels == s1.labels)
            .unwrap_or_else(|| panic!("{} vanished on second scrape", s1.name));
        assert!(
            s2.value >= s1.value,
            "{} went backwards: {} -> {}",
            s1.name,
            s1.value,
            s2.value
        );
    }

    // The exact ServerStats percentiles are still the store-every-sample
    // LatencyPercentiles — recomputable from the completion log — while the
    // registry histogram agrees on the request count.
    let latencies: Vec<f64> = stats
        .completions
        .iter()
        .map(|r| r.done_us - r.arrival_us)
        .collect();
    assert_eq!(stats.latency, LatencyPercentiles::from_runs_us(&latencies));
    let hist_count = second
        .iter()
        .find(|s| {
            s.name == "trtsim_server_latency_us_count"
                && s.labels.get("model").map(String::as_str) == Some(engine.name())
        })
        .expect("latency histogram count");
    assert_eq!(hist_count.value, stats.completed as f64);
}

/// `/metrics.json` serves the JSON snapshot and unknown paths 404.
#[test]
fn endpoint_serves_json_and_404s_unknown_paths() {
    let engine = Builder::new(
        DeviceSpec::xavier_nx(),
        BuilderConfig::default().with_build_seed(0x7e1f),
    )
    .build(&tiny_graph())
    .expect("probe builds");
    let server = InferenceServer::start(
        &engine,
        &DeviceSpec::xavier_nx(),
        ServerConfig::default()
            .with_workers(1)
            .with_timing(TimingOptions::default().without_engine_upload())
            .with_telemetry("127.0.0.1:0".parse().expect("addr")),
    )
    .expect("server starts");
    let addr = server.telemetry_addr().expect("endpoint bound");

    let json = scrape(addr, "/metrics.json");
    assert!(json.trim_start().starts_with('{') && json.trim_end().ends_with('}'));
    assert!(json.contains("\"trtsim_server_accepted_total\""));

    let mut stream = TcpStream::connect(addr).expect("connects");
    let request = format!("GET /nope HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n");
    stream.write_all(request.as_bytes()).expect("writes");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("reads");
    assert!(response.starts_with("HTTP/1.1 404"), "got: {response}");
    drop(server.drain());
}

/// Retained traces surface on the wire: a latency-histogram bucket carries
/// an OpenMetrics `trace_id` exemplar that resolves to a trace in the
/// server's flight recorder, the exemplar suffix still parses as a plain
/// bucket sample, the `trtsim_trace_*` retention counters publish
/// consistently, and the predictor's MAPE + calibration gauges ride along.
#[test]
fn exemplar_trace_ids_resolve_and_trace_families_publish() {
    let mut g = Graph::new("exemplar_probe", [3, 8, 8]);
    let conv = g.add_layer(
        "c0",
        LayerKind::conv_seeded(4, 3, 3, 1, 1, 3),
        &[Graph::INPUT],
    );
    g.mark_output(conv);
    let engine = Builder::new(
        DeviceSpec::xavier_nx(),
        BuilderConfig::default().with_build_seed(0x7e20),
    )
    .build(&g)
    .expect("probe builds");
    let server = InferenceServer::start(
        &engine,
        &DeviceSpec::xavier_nx(),
        ServerConfig::default()
            .with_workers(2)
            .with_queue_capacity(256)
            .with_max_batch_size(4)
            .with_batch_timeout_us(f64::INFINITY)
            .with_timing(
                TimingOptions::default()
                    .without_engine_upload()
                    .with_run_jitter_sd(0.0),
            )
            .with_predictive(true)
            .with_predictor_min_obs(8)
            .with_trace(trtsim::TraceOptions::default().with_sample_every(1)),
    )
    .expect("server starts");
    let recorder = server.flight_recorder();
    for frame in 0..96 {
        server.submit(frame).expect("accepting");
    }
    let stats = server.drain();
    assert_eq!(stats.completed, 96);

    // Exemplar syntax on a latency bucket of this model's series, and the
    // id resolves to a trace the flight recorder actually holds.
    let text = render_prometheus(Registry::global());
    let exemplar_line = text
        .lines()
        .find(|l| {
            l.starts_with("trtsim_server_latency_us_bucket")
                && l.contains("model=\"exemplar_probe\"")
                && l.contains("# {trace_id=\"")
        })
        .expect("no trace_id exemplar on any exemplar_probe latency bucket");
    let id = exemplar_line
        .split("trace_id=\"")
        .nth(1)
        .and_then(|rest| rest.split('"').next())
        .expect("exemplar carries a quoted trace_id");
    let trace_id: trtsim::TraceId = id.parse().expect("exemplar id is hex");
    assert!(
        recorder.get(trace_id).is_some(),
        "exemplar {id} not in the flight recorder"
    );

    // The parser sees through the exemplar suffix: the same line is still a
    // plain cumulative bucket sample.
    let samples = parse_prometheus(&text);
    assert!(
        samples.iter().any(|s| {
            s.name == "trtsim_server_latency_us_bucket"
                && s.labels.get("model").map(String::as_str) == Some("exemplar_probe")
        }),
        "exemplar-decorated buckets failed to parse"
    );

    // Retention counters: recorded bounds retained bounds sampled.
    let recorded = value_of(&samples, "trtsim_trace_recorded_total").expect("recorded family");
    let retained = value_of(&samples, "trtsim_trace_retained_total").expect("retained family");
    let sampled = value_of(&samples, "trtsim_trace_sampled_total").expect("sampled family");
    value_of(&samples, "trtsim_trace_evicted_total").expect("evicted family");
    assert!(
        recorded.value >= retained.value,
        "retained exceeds recorded"
    );
    assert!(retained.value >= sampled.value, "sampled exceeds retained");
    assert!(recorded.value >= 96.0, "this run alone recorded 96 traces");

    // Predictor gauges from the same snapshot: prequential MAPE plus the
    // residual-calibration multipliers.
    let mape = value_of(&samples, "trtsim_predictor_mape_percent").expect("mape gauge");
    assert!(mape.value >= 0.0, "MAPE must be non-negative");
    for name in [
        "trtsim_predictor_calibration_p50",
        "trtsim_predictor_calibration_p99",
    ] {
        let cal = value_of(&samples, name).unwrap_or_else(|| panic!("{name} missing"));
        assert!(
            cal.value > 0.0,
            "{name} must be a positive multiplier, got {}",
            cal.value
        );
    }
}

/// Label values survive the render → parse round trip through the
/// exposition format's escaping rules.
#[test]
fn label_escaping_round_trips() {
    let registry = Registry::new();
    let gnarly = "pa\\th \"quoted\"\nsecond line";
    registry
        .counter("escape_probe_total", "escaping probe", &[("k", gnarly)])
        .add(5);
    let samples = parse_prometheus(&render_prometheus(&registry));
    let sample = value_of(&samples, "escape_probe_total").expect("probe present");
    assert_eq!(sample.labels.get("k").map(String::as_str), Some(gnarly));
    assert_eq!(sample.value, 5.0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// N threads hammering one counter handle lose no increments.
    #[test]
    fn concurrent_counter_increments_are_lossless(
        threads in 2usize..9,
        per_thread in 1u64..400,
    ) {
        let registry = Registry::new();
        let counter = registry.counter("race_probe_total", "race probe", &[]);
        map_indexed(threads, threads, |_| {
            let counter = counter.clone();
            for _ in 0..per_thread {
                counter.inc();
            }
        });
        prop_assert_eq!(counter.get(), threads as u64 * per_thread);
    }

    /// The bounded log-bucket histogram's p50/p99 land within one bucket
    /// width (one growth factor) of the exact store-every-sample
    /// `LatencyPercentiles` — the accuracy contract that justified replacing
    /// unbounded sample vectors in long-running servers.
    ///
    /// 101 samples make the exact p50/p99 single order statistics (no
    /// interpolation), so "same bucket" is a hard guarantee, not a heuristic.
    #[test]
    fn histogram_quantiles_track_exact_within_one_bucket(seed in 0u64..10_000) {
        const GROWTH: f64 = 2.0;
        let mut rng = trtsim::util::rng::Pcg32::seed_from_u64(seed);
        // Log-uniform over [1, 1e6): exercises many buckets per case.
        let samples: Vec<f64> = (0..101)
            .map(|_| 10f64.powf(6.0 * rng.next_f64()))
            .collect();
        let registry = Registry::new();
        let hist = registry.histogram(
            "quantile_probe_us",
            "quantile probe",
            &[],
            &log_buckets(1.0, GROWTH, 26),
        );
        for &s in &samples {
            hist.observe(s);
        }
        let exact = LatencyPercentiles::from_runs_us(&samples);
        for (q, exact_q) in [(0.50, exact.p50_us), (0.99, exact.p99_us)] {
            let approx = hist.quantile(q);
            prop_assert!(
                approx >= exact_q && approx <= exact_q * GROWTH,
                "q{q}: approx {approx} vs exact {exact_q} (growth {GROWTH})"
            );
        }
    }
}

/// The SIMD lane-kernel families flow through the core telemetry bridge:
/// after planned inferences on a lane-friendly conv chain and a
/// mixed-layout graph, `trtsim_kernel_vector_lanes_total`,
/// `trtsim_kernel_layout_converts_total`, and
/// `trtsim_kernel_scalar_fallback_total` are present in the global
/// registry, reflect the work the plans scheduled, and never run ahead of
/// their raw process-wide sources. The plan-compile arena gauges ride
/// along.
#[test]
fn lane_kernel_families_reach_the_registry() {
    // A pure conv chain: interior convs run in a preferred layout, so the
    // vector-lane counter must move (same graph + build seed as the core
    // unit test that pins the non-CHW assignment).
    let mut chain = Graph::new("chain", [3, 16, 16]);
    let mut prev = Graph::INPUT;
    for d in 0..6 {
        let ic = if d == 0 { 3 } else { 8 };
        prev = chain.add_layer(
            format!("c{d}"),
            LayerKind::conv_seeded(8, ic, 3, 1, 1, d as u64),
            &[prev],
        );
    }
    chain.mark_output(prev);
    let chain_engine = Builder::new(
        DeviceSpec::xavier_nx(),
        BuilderConfig::default().with_build_seed(4),
    )
    .build(&chain)
    .expect("chain builds");

    // One eltwise arm from a pool (CHW-only), the other from a conv that
    // may run blocked: the assignment schedules real reformat steps.
    let mut mixed = Graph::new("mixed", [3, 16, 16]);
    let c1 = mixed.add_layer(
        "c1",
        LayerKind::conv_seeded(8, 3, 3, 1, 1, 0),
        &[Graph::INPUT],
    );
    let p = mixed.add_layer(
        "p",
        LayerKind::Pool {
            kind: PoolKind::Max,
            kernel: 3,
            stride: 1,
            pad: 1,
        },
        &[c1],
    );
    let a = mixed.add_layer("a", LayerKind::conv_seeded(8, 8, 3, 1, 1, 1), &[p]);
    let e = mixed.add_layer("e", LayerKind::Eltwise { op: EltwiseOp::Sum }, &[p, a]);
    let c2 = mixed.add_layer("c2", LayerKind::conv_seeded(8, 8, 3, 1, 1, 2), &[e]);
    mixed.mark_output(c2);
    let mixed_engine = Builder::new(
        DeviceSpec::xavier_nx(),
        BuilderConfig::default().with_build_seed(17),
    )
    .build(&mixed)
    .expect("mixed builds");

    let lanes_before = trtsim::kernels::lanes::vector_lane_events();
    let converts_before = trtsim::ir::layout::layout_convert_events();
    let chain_ctx = ExecutionContext::new(&chain_engine, DeviceSpec::xavier_nx());
    chain_ctx
        .infer(&Tensor::from_fn([3, 16, 16], |c, y, x| {
            (c + y + x) as f32 * 0.05 - 0.4
        }))
        .expect("chain runs");
    let mixed_ctx = ExecutionContext::new(&mixed_engine, DeviceSpec::xavier_nx());
    mixed_ctx
        .infer(&Tensor::from_fn([3, 16, 16], |c, y, x| {
            (c * 2 + y + x) as f32 * 0.03 - 0.3
        }))
        .expect("mixed runs");
    let scheduled_converts = mixed_ctx
        .plan()
        .expect("compiled")
        .layout_converts_per_execution();

    let samples = parse_prometheus(&render_prometheus(Registry::global()));
    let lanes = value_of(&samples, "trtsim_kernel_vector_lanes_total").expect("lanes family");
    let converts =
        value_of(&samples, "trtsim_kernel_layout_converts_total").expect("converts family");
    let fallback =
        value_of(&samples, "trtsim_kernel_scalar_fallback_total").expect("fallback family");

    // The bridge drains raw monotone sources exactly-once, so the registry
    // can lag them (another execute may not have synced yet) but never run
    // ahead.
    assert!(lanes.value <= trtsim::kernels::lanes::vector_lane_events() as f64);
    assert!(fallback.value <= trtsim::kernels::lanes::scalar_fallback_events() as f64);
    assert!(converts.value <= trtsim::ir::layout::layout_convert_events() as f64);

    // The chain's interior lane convs produced vectorized output values,
    // and every reformat the mixed plan scheduled reached the registry
    // (both were synced by the executes above; other tests only add).
    assert!(
        lanes.value >= (lanes_before + 1) as f64,
        "vector lanes did not move: {}",
        lanes.value
    );
    assert!(
        converts.value >= converts_before as f64 + scheduled_converts as f64,
        "scheduled reformats missing from the registry: {} < {} + {}",
        converts.value,
        converts_before,
        scheduled_converts
    );

    // Plan-compile gauges from the same bridge: the layout-aware arena
    // provisions its size-classed slots near the liveness peak.
    let utilization =
        value_of(&samples, "trtsim_plan_arena_utilization").expect("utilization gauge");
    assert!(
        utilization.value > 0.0 && utilization.value <= 1.0,
        "utilization out of range: {}",
        utilization.value
    );
    let capacity =
        value_of(&samples, "trtsim_plan_arena_slot_capacity_bytes").expect("capacity gauge");
    assert!(capacity.value > 0.0);
}

/// Regression for the fleet telemetry fix: two devices serving the *same*
/// model must publish distinct per-device series. Before `device=` labels,
/// both replicas silently merged into one `{model=...}` series, and a
/// scrape could not tell the boards apart.
#[test]
fn two_devices_serving_one_model_produce_distinct_series() {
    let mut g = Graph::new("dual_device_probe", [3, 8, 8]);
    let conv = g.add_layer(
        "c0",
        LayerKind::conv_seeded(4, 3, 3, 1, 1, 9),
        &[Graph::INPUT],
    );
    g.mark_output(conv);
    let engine = Builder::new(DeviceSpec::xavier_nx(), BuilderConfig::default())
        .build(&g)
        .expect("probe builds");
    let config = ServerConfig::default().with_workers(1).with_timing(
        TimingOptions::default()
            .without_engine_upload()
            .with_run_jitter_sd(0.0),
    );

    // The single-device default first: no `device` label, so pre-fleet
    // dashboards keep their series names.
    let solo = InferenceServer::start(&engine, &DeviceSpec::xavier_nx(), config)
        .expect("solo server starts");
    solo.submit(0).expect("accepting");
    solo.drain();

    let fleet = trtsim::FleetBuilder::new()
        .device("edge-nx", DeviceSpec::xavier_nx())
        .device("edge-agx", DeviceSpec::xavier_agx())
        .replica("edge-nx", &engine, config)
        .expect("known device")
        .replica("edge-agx", &engine, config)
        .expect("known device")
        .start(trtsim::FleetConfig::default())
        .expect("fleet starts");
    for frame in 0..8 {
        fleet
            .submit("dual_device_probe", frame, frame as f64 * 100.0)
            .expect("accepting");
    }
    let stats = fleet.drain();
    assert_eq!(stats.completed, 8);

    let samples = parse_prometheus(&render_prometheus(Registry::global()));
    let completed: Vec<&Sample> = samples
        .iter()
        .filter(|s| {
            s.name == "trtsim_server_completed_total"
                && s.labels.get("model").map(String::as_str) == Some("dual_device_probe")
        })
        .collect();
    let devices: Vec<Option<&String>> = completed.iter().map(|s| s.labels.get("device")).collect();
    // Three series for one model: the unlabeled solo default plus one per
    // fleet device — not one merged line.
    assert_eq!(completed.len(), 3, "{completed:?}");
    assert!(devices.contains(&None), "legacy series renamed");
    for device in ["edge-nx", "edge-agx"] {
        let series = completed
            .iter()
            .find(|s| s.labels.get("device").map(String::as_str) == Some(device))
            .unwrap_or_else(|| panic!("no per-device series for {device}"));
        let routed = samples
            .iter()
            .find(|s| {
                s.name == "trtsim_fleet_routed_total"
                    && s.labels.get("device").map(String::as_str) == Some(device)
            })
            .unwrap_or_else(|| panic!("no router series for {device}"));
        assert_eq!(routed.value, series.value, "router vs server on {device}");
    }
    let fleet_completed: f64 = completed
        .iter()
        .filter(|s| s.labels.contains_key("device"))
        .map(|s| s.value)
        .sum();
    assert_eq!(fleet_completed, stats.completed as f64);
}
