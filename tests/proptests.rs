//! Workspace-level property-based tests: invariants that must hold for all
//! inputs, not just the unit-test cases.

use proptest::prelude::*;
use trtsim::data::corruptions::{apply_corruption, Corruption, Severity};
use trtsim::data::traffic::{BBox, VehicleClass};
use trtsim::engine::autotune::{self, AutotuneOptions};
use trtsim::engine::calibrate::CalibrationTable;
use trtsim::engine::passes::{dead_layer, horizontal_merge, vertical_fusion};
use trtsim::engine::plan;
use trtsim::engine::{Builder, BuilderConfig, TimingCache};
use trtsim::gpu::device::DeviceSpec;
use trtsim::gpu::kernel::{KernelDesc, Precision};
use trtsim::gpu::timing::{kernel_busy_us, wave_inflation};
use trtsim::ir::graph::{Graph, LayerKind, PoolKind};
use trtsim::ir::{ReferenceExecutor, Tensor};
use trtsim::util::f16::{round_f16, QuantParams, F16};
use trtsim::util::rng::Pcg32;

/// A random small conv/pool/branch network generator.
fn arb_network() -> impl Strategy<Value = Graph> {
    (1u64..1000, 2usize..5, 1usize..3).prop_map(|(seed, depth, branches)| {
        let mut rng = Pcg32::seed_from_u64(seed);
        let mut g = Graph::new(format!("prop{seed}"), [3, 16, 16]);
        let mut frontier = vec![(Graph::INPUT, 3usize)];
        for d in 0..depth {
            let (from, in_c) = frontier[rng.range_usize(frontier.len())];
            let out_c = 2 + rng.range_usize(6);
            let conv = g.add_layer(
                format!("c{d}"),
                LayerKind::conv_seeded(out_c, in_c, 3, 1, 1, seed + d as u64),
                &[from],
            );
            frontier.push((conv, out_c));
        }
        // A few sibling 1x1 branches off the last conv (horizontal-merge
        // food). Dense weights: merging seeded branches re-seeds the merged
        // blob by design (descriptor models are perf-only), so bit-exactness
        // is only promised for dense weights.
        let (last, last_c) = *frontier.last().unwrap();
        let mut branch_ids = Vec::new();
        for i in 0..branches {
            let mut kind = LayerKind::conv_seeded(4, last_c, 1, 1, 0, 100 + i as u64);
            if let trtsim::ir::graph::LayerKind::Conv(c) = &mut kind {
                c.weights = trtsim::ir::Weights::Dense(c.weights.iter().collect());
            }
            branch_ids.push(g.add_layer(format!("b{i}"), kind, &[last]));
        }
        let out = if branch_ids.len() > 1 {
            g.add_layer("cat", LayerKind::Concat, &branch_ids)
        } else {
            branch_ids[0]
        };
        let drop = g.add_layer("drop", LayerKind::Dropout { rate: 0.5 }, &[out]);
        let gp = g.add_layer(
            "gp",
            LayerKind::GlobalPool {
                kind: PoolKind::Avg,
            },
            &[drop],
        );
        g.mark_output(gp);
        g
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn f16_round_trip_is_idempotent(x in -65000.0f32..65000.0) {
        let once = round_f16(x);
        let twice = round_f16(once);
        prop_assert_eq!(once, twice);
        // Error bound: half ULP = 2^(exp-11).
        if x.abs() > 1e-3 {
            prop_assert!((once - x).abs() <= x.abs() * 0.001);
        }
    }

    #[test]
    fn f16_bits_round_trip(bits in 0u16..0x7c00) {
        // Every finite positive f16 survives f32 and back exactly.
        let h = F16(bits);
        let back = F16::from_f32(h.to_f32());
        prop_assert_eq!(h, back);
    }

    #[test]
    fn int8_quantization_error_bounded(amax in 0.01f32..100.0, x in -1.0f32..1.0) {
        let q = QuantParams::from_amax(amax);
        let v = x * amax;
        prop_assert!((q.round_trip(v) - v).abs() <= q.scale / 2.0 + 1e-6);
    }

    #[test]
    fn iou_is_symmetric_and_bounded(
        ax in 0.0f32..50.0, ay in 0.0f32..50.0, aw in 1.0f32..20.0, ah in 1.0f32..20.0,
        bx in 0.0f32..50.0, by in 0.0f32..50.0, bw in 1.0f32..20.0, bh in 1.0f32..20.0,
    ) {
        let a = BBox { x: ax, y: ay, w: aw, h: ah, class: VehicleClass::Car };
        let b = BBox { x: bx, y: by, w: bw, h: bh, class: VehicleClass::Car };
        let iou = a.iou(&b);
        prop_assert!((0.0..=1.0 + 1e-4).contains(&iou));
        prop_assert!((iou - b.iou(&a)).abs() < 1e-4);
        // Self-IoU to f32 catastrophic-cancellation tolerance: (x+w)-x ≠ w.
        prop_assert!((a.iou(&a) - 1.0).abs() < 1e-4);
    }

    #[test]
    fn corruptions_preserve_shape_and_finiteness(
        seed in 0u64..500,
        family in 0usize..15,
        level in 1u8..=5,
    ) {
        let mut rng = Pcg32::seed_from_u64(seed);
        let image = Tensor::from_fn([3, 12, 12], |_, _, _| rng.normal() as f32);
        let corruption = Corruption::all()[family];
        let out = apply_corruption(&image, corruption, Severity::new(level), seed);
        prop_assert_eq!(out.shape(), image.shape());
        prop_assert!(out.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn wave_inflation_at_least_one(blocks in 1u64..10_000, bpsm in 1u32..8) {
        let k = KernelDesc::new("k").grid(blocks, 128).occupancy(bpsm);
        for dev in [DeviceSpec::xavier_nx(), DeviceSpec::xavier_agx()] {
            let infl = wave_inflation(&k, &dev);
            prop_assert!(infl >= 1.0 - 1e-12);
            prop_assert!(infl <= dev.sm_count as f64 * bpsm as f64 + 1e-9);
        }
    }

    #[test]
    fn kernel_time_monotone_in_work(flops in 1u64..1_000_000_000, extra in 1u64..1_000_000_000) {
        let dev = DeviceSpec::xavier_nx();
        let base = KernelDesc::new("k").grid(48, 256).flops(flops)
            .precision(Precision::Fp16, true);
        let more = base.clone().flops(flops + extra);
        prop_assert!(kernel_busy_us(&more, &dev) >= kernel_busy_us(&base, &dev));
    }

    #[test]
    fn passes_preserve_outputs_and_validity(g in arb_network()) {
        let (after_dead, _) = dead_layer::run(&g).unwrap();
        let (after_fuse, _) = vertical_fusion::run(&after_dead).unwrap();
        let (after_merge, _) = horizontal_merge::run(&after_fuse).unwrap();
        prop_assert!(after_merge.validate().is_ok());
        prop_assert_eq!(after_merge.outputs().len(), g.outputs().len());

        // Semantics: the final graph computes the same function (exact —
        // these passes only splice, fold affine transforms, or merge).
        let mut rng = Pcg32::seed_from_u64(7);
        let input = Tensor::from_fn([3, 16, 16], |_, _, _| rng.normal() as f32);
        let a = ReferenceExecutor::new(&g).unwrap().run(&input).unwrap();
        let b = ReferenceExecutor::new(&after_merge).unwrap().run(&input).unwrap();
        for (x, y) in a.iter().zip(b.iter()) {
            for (u, v) in x.as_slice().iter().zip(y.as_slice()) {
                prop_assert!((u - v).abs() <= 1e-4 * u.abs().max(1.0));
            }
        }
    }

    #[test]
    fn parallel_autotune_matches_sequential(
        g in arb_network(),
        seed in 0u64..500,
        threads in 2usize..9,
    ) {
        // Per-node RNG streams make tactic selection order-free: any worker
        // count must reproduce the sequential result bit for bit.
        let cfg = BuilderConfig::default();
        let device = DeviceSpec::xavier_nx();
        let calibration = CalibrationTable::new();
        let base = AutotuneOptions {
            noise_sd: cfg.timing_noise_sd,
            samples: cfg.timing_samples,
            threads: 1,
            cache: None,
        };
        let seq = autotune::select(&g, cfg.policy, &calibration, &device, seed, &base).unwrap();
        let par = autotune::select(
            &g, cfg.policy, &calibration, &device, seed,
            &AutotuneOptions { threads, ..base },
        ).unwrap();
        prop_assert_eq!(seq, par);
    }

    #[test]
    fn warm_timing_cache_is_selection_transparent(g in arb_network(), seed in 0u64..500) {
        // A warm cache returns bit-identical deterministic times, so the
        // chosen tactic set can never differ from a cold or cache-less run.
        let cfg = BuilderConfig::default();
        let device = DeviceSpec::xavier_nx();
        let calibration = CalibrationTable::new();
        let cache = TimingCache::new();
        let cached = AutotuneOptions {
            noise_sd: cfg.timing_noise_sd,
            samples: cfg.timing_samples,
            threads: 1,
            cache: Some(&cache),
        };
        let cold = autotune::select(&g, cfg.policy, &calibration, &device, seed, &cached).unwrap();
        prop_assert!(cache.stats().misses > 0);
        let warm = autotune::select(&g, cfg.policy, &calibration, &device, seed, &cached).unwrap();
        let uncached = autotune::select(
            &g, cfg.policy, &calibration, &device, seed,
            &AutotuneOptions { cache: None, ..cached },
        ).unwrap();
        prop_assert_eq!(&cold, &warm);
        prop_assert_eq!(&cold, &uncached);
    }

    #[test]
    fn plans_round_trip_for_random_networks(g in arb_network(), seed in 0u64..100) {
        let engine = Builder::new(
            DeviceSpec::xavier_nx(),
            BuilderConfig::default().with_build_seed(seed),
        )
        .build(&g)
        .unwrap();
        let blob = plan::serialize(&engine);
        let back = plan::deserialize(&blob).unwrap();
        prop_assert_eq!(engine, back);
    }

    #[test]
    fn request_traces_conserve_and_partition_latency(
        seed in 0u64..200,
        workers in 1usize..4,
        frames in 1u64..48,
        batch in 1usize..5,
    ) {
        // Trace conservation: every accepted request produces exactly one
        // completed-or-dropped trace, and each completed trace's phase spans
        // are monotone, non-overlapping, and partition the end-to-end
        // latency exactly.
        let mut g = Graph::new("trace", [1, 4, 4]);
        let c = g.add_layer("c", LayerKind::conv_seeded(2, 1, 3, 1, 1, 0), &[Graph::INPUT]);
        g.mark_output(c);
        let device = DeviceSpec::xavier_nx();
        let engine = Builder::new(
            device.clone(),
            BuilderConfig::default().with_build_seed(seed),
        )
        .build(&g)
        .unwrap();
        let server = trtsim::InferenceServer::start(
            &engine,
            &device,
            trtsim::ServerConfig::default()
                .with_workers(workers)
                .with_queue_capacity(frames as usize)
                .with_max_batch_size(batch)
                .with_batch_timeout_us(f64::INFINITY)
                .with_timing(trtsim::TimingOptions::default().without_engine_upload())
                .with_trace(
                    trtsim::TraceOptions::default()
                        .with_capacity(frames as usize)
                        .with_sample_every(1),
                ),
        )
        .unwrap();
        let recorder = server.flight_recorder();
        for frame in 0..frames {
            server.submit(frame).unwrap();
        }
        let stats = server.drain();
        prop_assert_eq!(stats.completed, frames);
        prop_assert_eq!(recorder.completed_seen() + recorder.dropped_seen(), frames);
        prop_assert_eq!(recorder.rejected_seen(), 0);
        let traces = recorder.traces();
        // sample_every=1 with ample capacity keeps every trace.
        prop_assert_eq!(traces.len() as u64, frames);
        let mut ids = std::collections::HashSet::new();
        for t in &traces {
            prop_assert!(ids.insert(t.id), "duplicate trace id {}", t.id);
            let mut prev_end = f64::NEG_INFINITY;
            for p in &t.phases {
                prop_assert!(p.end_us >= p.start_us - 1e-9, "negative phase in {}", t.id);
                prop_assert!(p.start_us >= prev_end - 1e-9, "overlapping phases in {}", t.id);
                prev_end = p.end_us;
            }
            let latency = t.latency_us();
            prop_assert!(
                (t.phase_sum_us() - latency).abs() <= 1e-6 * latency.max(1.0),
                "phases of {} sum to {} but latency is {}",
                t.id, t.phase_sum_us(), latency
            );
        }
    }

    #[test]
    fn plan_deserialize_never_panics_on_mutation(seed in 0u64..200, flips in 1usize..8) {
        let mut g = Graph::new("m", [1, 4, 4]);
        let c = g.add_layer("c", LayerKind::conv_seeded(2, 1, 3, 1, 1, 0), &[Graph::INPUT]);
        g.mark_output(c);
        let engine = Builder::new(
            DeviceSpec::xavier_nx(),
            BuilderConfig::default().with_build_seed(1),
        )
        .build(&g)
        .unwrap();
        let mut blob = plan::serialize(&engine);
        let mut rng = Pcg32::seed_from_u64(seed);
        for _ in 0..flips {
            let i = rng.range_usize(blob.len());
            blob[i] ^= 1 << rng.range_usize(8);
        }
        let _ = plan::deserialize(&blob); // must not panic; errors are fine
    }
}
