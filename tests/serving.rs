//! Integration tests of the serving subsystem through the `trtsim` facade:
//! backpressure, dynamic-batching throughput, determinism under a pinned
//! build seed, and latency-metric invariants.

use proptest::prelude::*;
use trtsim::models::ModelId;
use trtsim::{
    Builder, BuilderConfig, DeviceSpec, InferenceServer, ServerConfig, ServerStats, ServingError,
    TimingOptions,
};

fn engine() -> trtsim::Engine {
    Builder::new(
        DeviceSpec::xavier_nx(),
        BuilderConfig::default().with_build_seed(0x5e11),
    )
    .build(&ModelId::TinyYolov3.descriptor())
    .expect("zoo model builds")
}

fn timing() -> TimingOptions {
    TimingOptions::default()
        .without_engine_upload()
        .with_host_glue_us(ModelId::TinyYolov3.info().host_glue_us)
        .with_run_jitter_sd(0.0)
}

fn serve_all(engine: &trtsim::Engine, config: ServerConfig, frames: u64) -> ServerStats {
    let server = InferenceServer::start(engine, &DeviceSpec::xavier_nx(), config).expect("start");
    for frame in 0..frames {
        server.submit(frame).expect("accepting");
    }
    server.drain()
}

#[test]
fn full_queue_rejects_and_drain_completes_all_accepted() {
    let engine = engine();
    let server = InferenceServer::start(
        &engine,
        &DeviceSpec::xavier_nx(),
        ServerConfig::default()
            .with_workers(2)
            .with_queue_capacity(4)
            .with_max_batch_size(4)
            .with_batch_timeout_us(f64::INFINITY)
            .with_timing(timing()),
    )
    .expect("start");
    let mut accepted = 0u64;
    let mut rejected = 0u64;
    for frame in 0..8192 {
        match server.try_submit(frame) {
            Ok(()) => accepted += 1,
            Err(ServingError::QueueFull) => rejected += 1,
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
    assert!(
        rejected > 0,
        "4-deep queue absorbed 8192 instant submissions"
    );
    let stats = server.drain();
    assert_eq!(stats.accepted, accepted);
    assert_eq!(stats.rejected, rejected);
    assert_eq!(
        stats.completed, accepted,
        "drain must finish every accepted frame"
    );
    assert_eq!(stats.dropped, 0);
    assert_eq!(stats.completions.len() as u64, accepted);
    assert!(stats.queue_high_water >= 2 && stats.queue_high_water <= 5);
}

#[test]
fn batching_beats_unbatched_at_equal_thread_count() {
    let engine = engine();
    let config = ServerConfig::default()
        .with_workers(4)
        .with_queue_capacity(128)
        .with_batch_timeout_us(f64::INFINITY)
        .with_timing(timing());
    let unbatched = serve_all(&engine, config.with_max_batch_size(1), 128);
    let batched = serve_all(&engine, config.with_max_batch_size(8), 128);
    assert_eq!(unbatched.completed, 128);
    assert_eq!(batched.completed, 128);
    assert!(
        batched.aggregate_fps > unbatched.aggregate_fps,
        "batch 8 must beat batch 1: {} vs {} FPS",
        batched.aggregate_fps,
        unbatched.aggregate_fps
    );
    assert_eq!(batched.batches, 16);
    assert!(batched.mean_batch_size() > unbatched.mean_batch_size());
}

#[test]
fn serving_is_deterministic_under_pinned_build_seed() {
    let engine = engine();
    let run = || {
        serve_all(
            &engine,
            ServerConfig::default()
                .with_workers(3)
                .with_queue_capacity(96)
                .with_max_batch_size(4)
                .with_batch_timeout_us(f64::INFINITY)
                .with_arrival_period_us(100.0)
                .with_timing(timing()),
            96,
        )
    };
    let a = run();
    let b = run();
    // Worker threads race on wall-clock time, but simulated time must not:
    // round-robin batch assignment pins every frame to a stream, so all
    // simulated-time metrics agree bit-for-bit across runs.
    assert_eq!(a.latency, b.latency);
    assert_eq!(a.simulated_seconds, b.simulated_seconds);
    assert_eq!(a.aggregate_fps, b.aggregate_fps);
    assert_eq!(a.gr3d_percent, b.gr3d_percent);
    assert_eq!(a.batch_size_counts, b.batch_size_counts);
    assert_eq!(a.frames_per_worker, b.frames_per_worker);
    let sorted = |stats: &ServerStats| {
        let mut c = stats.completions.clone();
        c.sort_by_key(|r| r.frame);
        c
    };
    assert_eq!(sorted(&a), sorted(&b));
}

#[test]
fn latency_percentiles_hold_their_invariants() {
    let engine = engine();
    let stats = serve_all(
        &engine,
        ServerConfig::default()
            .with_workers(2)
            .with_queue_capacity(64)
            .with_max_batch_size(4)
            .with_batch_timeout_us(f64::INFINITY)
            .with_timing(timing()),
        64,
    );
    let lat = stats.latency;
    assert_eq!(lat.count as u64, stats.completed);
    assert!(lat.p50_us > 0.0, "p50 must be non-degenerate");
    assert!(lat.p90_us >= lat.p50_us);
    assert!(lat.p99_us >= lat.p90_us);
    assert!(lat.max_us >= lat.p99_us);
    assert!(
        lat.p99_us > lat.p50_us,
        "tail must spread: queueing delays later frames"
    );
}

#[test]
fn drain_on_never_submitted_server_returns_zeroed_stats() {
    let engine = engine();
    let server = InferenceServer::start(
        &engine,
        &DeviceSpec::xavier_nx(),
        ServerConfig::default()
            .with_workers(2)
            .with_timing(timing()),
    )
    .expect("start");
    // No submission path panics: the latency summary must cope with zero
    // samples instead of tripping percentile_sorted on an empty slice.
    let stats = server.drain();
    assert_eq!(stats.accepted, 0);
    assert_eq!(stats.completed, 0);
    assert_eq!(stats.dropped, 0);
    assert_eq!(stats.rejected, 0);
    assert_eq!(stats.batches, 0);
    assert_eq!(stats.queue_high_water, 0);
    assert_eq!(stats.latency.count, 0);
    assert!(stats.completions.is_empty());
    assert_eq!(stats.aggregate_fps, 0.0);
}

#[test]
fn compat_serve_reports_identical_field_semantics() {
    let engine = engine();
    let report =
        trtsim::engine::serving::serve(&engine, &DeviceSpec::xavier_nx(), 4, 64, &timing())
            .expect("valid");
    assert_eq!(report.threads, 4);
    assert_eq!(report.frames, 64);
    assert_eq!(report.frames_per_thread.iter().sum::<u64>(), 64);
    assert!(report.simulated_seconds > 0.0);
    assert!((report.aggregate_fps - 64.0 / report.simulated_seconds).abs() < 1e-6);
    assert!(report.gr3d_percent > 0.0 && report.gr3d_percent <= 100.0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Batch coalescing must never reorder a stream's frames: within each
    /// worker, frames complete in submission order at non-decreasing
    /// simulated times, and every accepted frame completes exactly once.
    #[test]
    fn coalescing_never_reorders_a_streams_frames(
        workers in 1usize..4,
        max_batch in 1usize..6,
        frames in 8u64..48,
    ) {
        let engine = engine();
        let stats = serve_all(
            &engine,
            ServerConfig::default()
                .with_workers(workers)
                .with_queue_capacity(frames as usize)
                .with_max_batch_size(max_batch)
                .with_batch_timeout_us(f64::INFINITY)
                .with_timing(timing()),
            frames,
        );
        prop_assert_eq!(stats.completed, frames);
        let mut seen: Vec<u64> = stats.completions.iter().map(|r| r.frame).collect();
        seen.sort_unstable();
        prop_assert_eq!(seen, (0..frames).collect::<Vec<u64>>());
        for worker in 0..workers {
            let per_stream: Vec<_> = stats
                .completions
                .iter()
                .filter(|r| r.worker == worker)
                .collect();
            for pair in per_stream.windows(2) {
                prop_assert!(
                    pair[1].frame > pair[0].frame,
                    "worker {} served frame {} after frame {}",
                    worker, pair[1].frame, pair[0].frame
                );
                prop_assert!(pair[1].done_us >= pair[0].done_us);
            }
        }
    }

    /// Frame conservation under abort: however submissions interleave with
    /// the batcher and workers (tiny queues force rejects, racy cut-off
    /// points leave random amounts in flight), every accepted frame is
    /// either completed or counted dropped — never lost, never duplicated.
    #[test]
    fn abort_conserves_every_accepted_frame(
        workers in 1usize..4,
        queue_capacity in 1usize..16,
        max_batch in 1usize..6,
        frames in 1u64..200,
        blocking_every in 1u64..5,
    ) {
        let engine = engine();
        let server = InferenceServer::start(
            &engine,
            &DeviceSpec::xavier_nx(),
            ServerConfig::default()
                .with_workers(workers)
                .with_queue_capacity(queue_capacity)
                .with_max_batch_size(max_batch)
                .with_batch_timeout_us(0.0)
                .with_timing(timing()),
        )
        .expect("start");
        let mut accepted = 0u64;
        let mut rejected = 0u64;
        for frame in 0..frames {
            // Mix blocking and non-blocking submission so runs abort with
            // the pipeline in different states: queue full, queue empty,
            // batches mid-flight.
            if frame % blocking_every == 0 {
                server.submit(frame).expect("accepting");
                accepted += 1;
            } else {
                match server.try_submit(frame) {
                    Ok(()) => accepted += 1,
                    Err(ServingError::QueueFull) => rejected += 1,
                    Err(e) => panic!("unexpected error: {e}"),
                }
            }
        }
        let stats = server.abort();
        prop_assert_eq!(stats.accepted, accepted);
        prop_assert_eq!(stats.rejected, rejected);
        prop_assert!(
            stats.completed + stats.dropped == stats.accepted,
            "accepted frames leaked: {} completed + {} dropped != {} accepted",
            stats.completed, stats.dropped, stats.accepted
        );
        prop_assert_eq!(stats.completions.len() as u64, stats.completed);
        let mut seen: Vec<u64> = stats.completions.iter().map(|r| r.frame).collect();
        seen.sort_unstable();
        seen.dedup();
        prop_assert!(
            seen.len() as u64 == stats.completed,
            "a frame completed twice ({} unique of {})",
            seen.len(), stats.completed
        );
    }
}
