//! Workspace property tests for the numeric inference fast path.
//!
//! The contract under test is the one `bench_infer` enforces on one model:
//! the precompiled [`trtsim::InferencePlan`] must be bit-identical (under
//! `f32` equality) to the naive interpreter, and the batch APIs must return
//! the same results at every thread count — here checked across *random*
//! networks and inputs instead of a single zoo model.

use proptest::prelude::*;
use trtsim::engine::{Builder, BuilderConfig, ExecutionContext};
use trtsim::ir::graph::{Activation, ConvParams, Graph, LayerKind, PoolKind};
use trtsim::ir::layout::{convert, Layout};
use trtsim::ir::weights::Weights;
use trtsim::ir::Tensor;
use trtsim::util::rng::Pcg32;
use trtsim::DeviceSpec;

/// A seeded 3x3 depthwise convolution (`groups == in == out`) — the shape
/// the autotuner resolves to the NHWC-layout depthwise lane tactic.
fn depthwise_seeded(channels: usize, seed: u64) -> LayerKind {
    LayerKind::Conv(ConvParams {
        out_channels: channels,
        in_channels: channels,
        kernel_h: 3,
        kernel_w: 3,
        stride: 1,
        pad_h: 1,
        pad_w: 1,
        groups: channels,
        weights: Weights::seeded_he(seed, channels * 9, 9),
        bias: Weights::Dense(vec![0.0; channels]),
        activation: Some(Activation::Relu),
    })
}

/// A random small conv/branch/pool network over a `[3, 16, 16]` input.
/// Roughly every third stage tacks on a depthwise conv, so the proptests
/// below also cover the NHWC lane path and its layout converts.
fn arb_network() -> impl Strategy<Value = Graph> {
    (1u64..1000, 2usize..5, 1usize..3).prop_map(|(seed, depth, branches)| {
        let mut rng = Pcg32::seed_from_u64(seed);
        let mut g = Graph::new(format!("fp{seed}"), [3, 16, 16]);
        let mut frontier = vec![(Graph::INPUT, 3usize)];
        for d in 0..depth {
            let (from, in_c) = frontier[rng.range_usize(frontier.len())];
            let out_c = 2 + rng.range_usize(6);
            let mut stage = g.add_layer(
                format!("c{d}"),
                LayerKind::conv_seeded(out_c, in_c, 3, 1, 1, seed + d as u64),
                &[from],
            );
            if rng.range_usize(3) == 0 {
                stage = g.add_layer(
                    format!("dw{d}"),
                    depthwise_seeded(out_c, seed + 500 + d as u64),
                    &[stage],
                );
            }
            frontier.push((stage, out_c));
        }
        let (last, last_c) = *frontier.last().unwrap();
        let mut branch_ids = Vec::new();
        for i in 0..branches {
            let kind = LayerKind::conv_seeded(4, last_c, 1, 1, 0, 100 + i as u64);
            branch_ids.push(g.add_layer(format!("b{i}"), kind, &[last]));
        }
        let out = if branch_ids.len() > 1 {
            g.add_layer("cat", LayerKind::Concat, &branch_ids)
        } else {
            branch_ids[0]
        };
        let drop = g.add_layer("drop", LayerKind::Dropout { rate: 0.5 }, &[out]);
        let gp = g.add_layer(
            "gp",
            LayerKind::GlobalPool {
                kind: PoolKind::Avg,
            },
            &[drop],
        );
        g.mark_output(gp);
        g
    })
}

/// A random finite input with a realistic share of exact zeros (post-ReLU
/// activations in real networks are sparse, and the fast path's zero
/// handling is exactly what must not change results).
fn random_input(seed: u64) -> Tensor {
    let mut rng = Pcg32::seed_from_u64(seed);
    Tensor::from_fn([3, 16, 16], |_, _, _| {
        if rng.range_usize(4) == 0 {
            0.0
        } else {
            (rng.normal() * 0.6) as f32
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// The plan's output tensors equal the interpreter's exactly, for every
    /// output, across random networks, build seeds, and inputs.
    #[test]
    fn plan_is_bit_identical_to_interpreter(g in arb_network(), build_seed in 0u64..500) {
        let engine = Builder::new(
            DeviceSpec::xavier_nx(),
            BuilderConfig::default().with_build_seed(build_seed),
        )
        .build(&g)
        .expect("builds");
        let ctx = ExecutionContext::new(&engine, DeviceSpec::xavier_nx());
        for i in 0..3u64 {
            let input = random_input(build_seed * 31 + i);
            let planned = ctx.infer(&input).expect("planned path runs");
            let naive = ctx.infer_unplanned(&input).expect("interpreter runs");
            prop_assert_eq!(planned, naive);
        }
    }
}

/// A batch larger than the worker count, made of all-zero tensors (the
/// degenerate input the zero-skipping fast path most wants to mishandle),
/// still yields one output per input.
#[test]
fn uneven_batch_of_zero_inputs_yields_all_outputs() {
    let mut g = Graph::new("m", [3, 8, 8]);
    let conv = g.add_layer(
        "c0",
        LayerKind::conv_seeded(4, 3, 3, 1, 1, 0),
        &[Graph::INPUT],
    );
    g.mark_output(conv);
    let engine = Builder::new(
        DeviceSpec::xavier_nx(),
        BuilderConfig::default().with_build_seed(1),
    )
    .build(&g)
    .expect("builds");
    let ctx = ExecutionContext::new(&engine, DeviceSpec::xavier_nx());
    let inputs: Vec<Tensor> = (0..5).map(|_| Tensor::zeros([3, 8, 8])).collect();
    let refs: Vec<&Tensor> = inputs.iter().collect();
    let out = ctx.infer_batch(&refs, 4).expect("batch runs");
    assert_eq!(out.len(), 5);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// `infer_batch` and `classify_batch` return the same results at every
    /// thread count, and match a sequential `infer` loop element-for-element.
    #[test]
    fn batch_apis_are_thread_count_invariant(g in arb_network(), build_seed in 0u64..500) {
        let engine = Builder::new(
            DeviceSpec::xavier_nx(),
            BuilderConfig::default().with_build_seed(build_seed),
        )
        .build(&g)
        .expect("builds");
        let ctx = ExecutionContext::new(&engine, DeviceSpec::xavier_nx());
        let inputs: Vec<Tensor> = (0..5).map(|i| random_input(build_seed * 97 + i)).collect();
        let refs: Vec<&Tensor> = inputs.iter().collect();

        let sequential: Vec<_> = refs
            .iter()
            .map(|t| ctx.infer(t).expect("runs"))
            .collect();
        let labels: Vec<usize> = sequential
            .iter()
            .map(|o| o[0].argmax().unwrap_or(0))
            .collect();
        for threads in [1usize, 2, 5, 16] {
            let batched = ctx.infer_batch(&refs, threads).expect("batch runs");
            prop_assert_eq!(&batched, &sequential);
            let classified = ctx.classify_batch(&refs, threads).expect("classify runs");
            prop_assert_eq!(&classified, &labels);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Physical-layout round trips preserve every `f32` bit pattern — NaN
    /// payloads, signed zeros, and infinities included — for any logical
    /// shape, including channel counts that force `CHWc8` tail padding.
    #[test]
    fn layout_round_trips_are_byte_identical(
        c in 1usize..20,
        h in 1usize..6,
        w in 1usize..6,
        seed in 0u64..1_000_000,
    ) {
        let shape = [c, h, w];
        let mut rng = Pcg32::seed_from_u64(seed);
        // Raw bit patterns, so NaNs/infinities/denormals all occur.
        let src: Vec<f32> = (0..c * h * w).map(|_| f32::from_bits(rng.next_u32())).collect();
        for via in [Layout::Nhwc, Layout::Chwc8] {
            let there = convert(&src, shape, Layout::Chw, via);
            prop_assert_eq!(there.len(), via.physical_len(shape));
            let back = convert(&there, shape, via, Layout::Chw);
            for (i, (a, b)) in src.iter().zip(&back).enumerate() {
                prop_assert!(
                    a.to_bits() == b.to_bits(),
                    "element {} differs after round trip via {:?}",
                    i,
                    via
                );
            }
        }
    }
}
