//! Cross-crate integration: every zoo model builds, serializes, reloads, and
//! times on both platforms.

use trtsim::engine::plan;
use trtsim::engine::runtime::{ExecutionContext, TimingOptions};
use trtsim::engine::{Builder, BuilderConfig};
use trtsim::gpu::device::{DeviceSpec, Platform};
use trtsim::models::ModelId;

#[test]
fn every_model_builds_on_both_platforms() {
    for model in ModelId::all() {
        for platform in Platform::all() {
            let engine = Builder::new(
                DeviceSpec::pinned_clock(platform),
                BuilderConfig::default().with_build_seed(7),
            )
            .build(&model.descriptor())
            .unwrap_or_else(|e| panic!("{model} on {platform}: {e}"));
            assert!(engine.launch_count() > 0, "{model}: empty engine");
            assert!(engine.plan_size_bytes() > 0);
        }
    }
}

#[test]
fn every_engine_round_trips_through_its_plan() {
    for model in ModelId::all() {
        let engine = Builder::new(
            DeviceSpec::xavier_nx(),
            BuilderConfig::default().with_build_seed(3),
        )
        .build(&model.descriptor())
        .unwrap();
        let blob = plan::serialize(&engine);
        let restored = plan::deserialize(&blob).unwrap_or_else(|e| panic!("{model}: {e}"));
        assert_eq!(
            engine, restored,
            "{model}: plan round trip changed the engine"
        );
    }
}

#[test]
fn every_engine_times_on_both_platforms() {
    for model in ModelId::all() {
        let engine = Builder::new(
            DeviceSpec::pinned_clock(Platform::Nx),
            BuilderConfig::default().with_build_seed(5),
        )
        .build(&model.descriptor())
        .unwrap();
        for platform in Platform::all() {
            let ctx = ExecutionContext::new(&engine, DeviceSpec::pinned_clock(platform));
            let opts = TimingOptions {
                run_jitter_sd: 0.0,
                ..TimingOptions::default()
            };
            let lat = ctx.measure_latency(&opts, 1, 0)[0];
            assert!(
                lat.is_finite() && lat > 0.0,
                "{model} on {platform}: latency {lat}"
            );
            // Sanity ceiling: nothing takes longer than 10 simulated seconds.
            assert!(lat < 10e6, "{model} on {platform}: latency {lat} µs");
        }
    }
}

#[test]
fn pinned_seed_builds_are_bit_identical_across_calls() {
    let model = ModelId::Googlenet.descriptor();
    let builder = Builder::new(
        DeviceSpec::xavier_agx(),
        BuilderConfig::default().with_build_seed(11),
    );
    let a = builder.build(&model).unwrap();
    let b = builder.build(&model).unwrap();
    assert_eq!(a, b);
    assert_eq!(plan::serialize(&a), plan::serialize(&b));
}

#[test]
fn dead_aux_heads_shrink_googlenet_engine() {
    // The Table II mechanism: GoogLeNet's auxiliary training heads are dead
    // at inference; the engine drops their ~6.4M parameters before FP16.
    let network = ModelId::Googlenet.descriptor();
    let engine = Builder::new(
        DeviceSpec::xavier_nx(),
        BuilderConfig::default().with_build_seed(0),
    )
    .build(&network)
    .unwrap();
    assert!(engine.report().passes.removed >= 6, "aux heads not removed");
    let ratio = engine.stored_weight_bytes() as f64 / network.fp32_bytes() as f64;
    assert!(
        ratio < 0.35,
        "engine weights {:.2} of model — aux heads survived",
        ratio
    );
}
