//! Workspace-level contracts for the learned latency predictor: the
//! properties the batcher's SLO sizing, the deadline admission gate, and
//! the fleet's predicted-finish-time routing all lean on. Monotonicity is
//! what makes `slo_batch_cap`'s first-overshoot scan correct; determinism
//! is what makes a seeded serving run reproducible; the cold-start `None`
//! is the contract that keeps schedulers on their static heuristics until
//! the model has earned trust.

use std::sync::OnceLock;

use proptest::prelude::*;
use trtsim::ir::graph::{Graph, LayerKind};
use trtsim::perfmodel::learned::{EngineFeatures, LatencyModel, QueueSignals};
use trtsim::{Builder, BuilderConfig, DeviceSpec, Engine};

/// One shared tiny engine: the properties are about the model's math, not
/// the network, and building once keeps the proptest cases fast.
fn engine() -> &'static Engine {
    static ENGINE: OnceLock<Engine> = OnceLock::new();
    ENGINE.get_or_init(|| {
        let mut g = Graph::new("predictor_prop", [3, 16, 16]);
        let conv = g.add_layer(
            "c0",
            LayerKind::conv_seeded(8, 3, 3, 1, 1, 5),
            &[Graph::INPUT],
        );
        g.mark_output(conv);
        Builder::new(DeviceSpec::xavier_nx(), BuilderConfig::default())
            .build(&g)
            .expect("probe builds")
    })
}

fn features() -> EngineFeatures {
    EngineFeatures::measure(engine(), &DeviceSpec::xavier_nx(), 150.0)
}

/// Trains a model past its cold gate on a deterministic synthetic workload
/// whose latency grows with batch, queue depth, and committed backlog — the
/// shape the real serving path produces.
fn warmed_model(seed: u64, observations: u64) -> LatencyModel {
    let features = features();
    let model = LatencyModel::new(seed).with_min_obs(32);
    for i in 0..observations {
        let batch = 1 + (i % 4) as usize;
        let depth = (i % 7) as f64;
        let committed = 900.0 * ((i * 3) % 5) as f64;
        let signals = QueueSignals::new(depth, 0.5).with_committed_us(committed);
        // A plausible latency law: affine in batch and queue, plus the
        // committed horizon passed through directly.
        let observed = 2_000.0 + 1_500.0 * batch as f64 + 2_500.0 * depth + committed;
        model.observe(&features, batch, &signals, observed);
    }
    model
}

proptest! {
    /// Warm predictions are non-decreasing in batch size and in queue
    /// depth: the projected (non-negative) weights guarantee it for any
    /// training history, which is what lets `slo_batch_cap` stop at the
    /// first overshoot and lets admission reason from the batch-1 floor.
    #[test]
    fn predictions_are_monotone_in_batch_and_queue(
        seed in 0u64..64,
        depth_lo in 0u32..16,
        depth_step in 1u32..8,
        batch in 1usize..4,
    ) {
        let model = warmed_model(seed, 96);
        let features = features();
        let lo = QueueSignals::new(f64::from(depth_lo), 0.5);
        let hi = QueueSignals::new(f64::from(depth_lo + depth_step), 0.5);
        let p_lo = model.predict(&features, batch, &lo).expect("warm");
        let p_hi = model.predict(&features, batch, &hi).expect("warm");
        prop_assert!(p_hi.p50_us >= p_lo.p50_us);
        prop_assert!(p_hi.p99_us >= p_lo.p99_us);
        let b_next = model.predict(&features, batch + 1, &lo).expect("warm");
        prop_assert!(b_next.p50_us >= p_lo.p50_us);
        prop_assert!(b_next.p99_us >= p_lo.p99_us);
    }

    /// The committed-work horizon is monotone too: a device whose streams
    /// are booked further out can never be predicted faster.
    #[test]
    fn predictions_are_monotone_in_committed_horizon(
        seed in 0u64..64,
        committed in 0.0f64..40_000.0,
        extra in 1.0f64..20_000.0,
    ) {
        let model = warmed_model(seed, 96);
        let features = features();
        let near = QueueSignals::new(2.0, 0.5).with_committed_us(committed);
        let far = QueueSignals::new(2.0, 0.5).with_committed_us(committed + extra);
        let p_near = model.predict(&features, 1, &near).expect("warm");
        let p_far = model.predict(&features, 1, &far).expect("warm");
        prop_assert!(p_far.p50_us >= p_near.p50_us);
        prop_assert!(p_far.p99_us >= p_near.p99_us);
    }
}

/// Same seed, same observation sequence, bit-identical weights — the
/// reproducibility contract that makes predictive serving runs replayable.
#[test]
fn training_is_deterministic_given_seed() {
    let a = warmed_model(0x5eed, 200);
    let b = warmed_model(0x5eed, 200);
    let (wa, wb) = (a.weights(), b.weights());
    for (x, y) in wa.iter().zip(wb.iter()) {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "weights diverged: {wa:?} vs {wb:?}"
        );
    }
    let signals = QueueSignals::new(3.0, 0.25).with_committed_us(4_000.0);
    let pa = a.predict(&features(), 2, &signals).expect("warm");
    let pb = b.predict(&features(), 2, &signals).expect("warm");
    assert_eq!(pa.p50_us.to_bits(), pb.p50_us.to_bits());
    assert_eq!(pa.p99_us.to_bits(), pb.p99_us.to_bits());
}

/// Distinct seeds genuinely produce distinct cold-start weights (the seed
/// is not decorative), while both still converge onto the same workload.
#[test]
fn seed_changes_cold_start_but_not_the_contract() {
    let a = warmed_model(1, 40);
    let b = warmed_model(2, 40);
    assert_ne!(
        a.weights().map(f64::to_bits),
        b.weights().map(f64::to_bits),
        "different seeds should not collide bit-for-bit this early"
    );
}

/// Below `min_obs` the model must return `None` — the fallback pin that
/// keeps the batcher on its static cap and the router on queue-depth ×
/// service-time until the model is warm.
#[test]
fn cold_model_predicts_none_until_min_obs() {
    let features = features();
    let model = LatencyModel::new(7).with_min_obs(16);
    let signals = QueueSignals::new(0.0, 0.0);
    assert!(!model.is_warm());
    assert!(model.predict(&features, 1, &signals).is_none());
    for i in 0..16 {
        assert!(
            model.predict(&features, 1, &signals).is_none(),
            "prediction leaked at observation {i}, before min_obs"
        );
        model.observe(&features, 1, &signals, 5_000.0);
    }
    assert!(model.is_warm());
    let p = model.predict(&features, 1, &signals).expect("warm now");
    assert!(p.p50_us.is_finite() && p.p50_us > 0.0);
    assert!(p.p99_us >= p.p50_us);
}
