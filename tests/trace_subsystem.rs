//! Integration tests of the trace subsystem through the `trtsim` facade:
//! chrome-trace export of a profiled 4-stream serving run, span attribution,
//! and the anomaly detectors recovering the paper's §V findings from the
//! repro experiments' own timelines.

use trtsim::engine::reqtrace::{chrome_trace_all, traces_json};
use trtsim::gpu::device::Platform;
use trtsim::gpu::timeline::CopyKind;
use trtsim::models::ModelId;
use trtsim::profiler::{
    chrome_trace_json, detect, h2d_outliers, kernel_set_diff, kernel_slowdowns, DetectorConfig,
};
use trtsim::repro::exp_memcpy::memcpy_trace_timeline;
use trtsim::repro::exp_variability::variability_trace_timelines;
use trtsim::{
    Builder, BuilderConfig, DeviceSpec, InferenceServer, ProfileOptions, ServerConfig, ServerStats,
    TimingOptions, TraceOptions,
};

/// Minimal recursive-descent JSON validity checker (RFC 8259 grammar, no
/// value model). The workspace vendors no JSON crate, so "the trace viewer
/// can load this" is asserted by parsing the document ourselves.
fn assert_valid_json(doc: &str) {
    struct P<'a> {
        b: &'a [u8],
        i: usize,
    }
    impl P<'_> {
        fn ws(&mut self) {
            while matches!(self.b.get(self.i), Some(b' ' | b'\t' | b'\n' | b'\r')) {
                self.i += 1;
            }
        }
        fn eat(&mut self, c: u8) -> bool {
            if self.b.get(self.i) == Some(&c) {
                self.i += 1;
                true
            } else {
                false
            }
        }
        fn value(&mut self) {
            self.ws();
            match self.b.get(self.i) {
                Some(b'{') => {
                    self.i += 1;
                    self.ws();
                    if !self.eat(b'}') {
                        loop {
                            self.ws();
                            self.string();
                            self.ws();
                            assert!(self.eat(b':'), "missing ':' at byte {}", self.i);
                            self.value();
                            self.ws();
                            if self.eat(b',') {
                                continue;
                            }
                            assert!(self.eat(b'}'), "unclosed object at byte {}", self.i);
                            break;
                        }
                    }
                }
                Some(b'[') => {
                    self.i += 1;
                    self.ws();
                    if !self.eat(b']') {
                        loop {
                            self.value();
                            self.ws();
                            if self.eat(b',') {
                                continue;
                            }
                            assert!(self.eat(b']'), "unclosed array at byte {}", self.i);
                            break;
                        }
                    }
                }
                Some(b'"') => self.string(),
                Some(b't') => self.lit("true"),
                Some(b'f') => self.lit("false"),
                Some(b'n') => self.lit("null"),
                Some(c) if c.is_ascii_digit() || *c == b'-' => self.number(),
                other => panic!("unexpected {:?} at byte {}", other, self.i),
            }
        }
        fn string(&mut self) {
            assert!(self.eat(b'"'), "expected string at byte {}", self.i);
            loop {
                match self.b.get(self.i) {
                    Some(b'"') => {
                        self.i += 1;
                        return;
                    }
                    Some(b'\\') => {
                        self.i += 1;
                        match self.b.get(self.i) {
                            Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => {
                                self.i += 1;
                            }
                            Some(b'u') => {
                                for k in 1..=4 {
                                    assert!(
                                        self.b.get(self.i + k).is_some_and(u8::is_ascii_hexdigit),
                                        "bad \\u escape at byte {}",
                                        self.i
                                    );
                                }
                                self.i += 5;
                            }
                            other => panic!("bad escape {:?} at byte {}", other, self.i),
                        }
                    }
                    Some(c) if *c >= 0x20 => self.i += 1,
                    other => panic!("bad string byte {:?} at {}", other, self.i),
                }
            }
        }
        fn number(&mut self) {
            let start = self.i;
            self.eat(b'-');
            while self.b.get(self.i).is_some_and(|c| {
                c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-')
            }) {
                self.i += 1;
            }
            assert!(self.i > start, "empty number at byte {start}");
        }
        fn lit(&mut self, s: &str) {
            assert_eq!(
                self.b.get(self.i..self.i + s.len()),
                Some(s.as_bytes()),
                "bad literal at byte {}",
                self.i
            );
            self.i += s.len();
        }
    }
    let mut p = P {
        b: doc.as_bytes(),
        i: 0,
    };
    p.value();
    p.ws();
    assert_eq!(p.i, doc.len(), "trailing garbage after JSON document");
}

fn profiled_serving_stats(workers: usize, frames: u64) -> ServerStats {
    let device = DeviceSpec::xavier_nx();
    let engine = Builder::new(
        device.clone(),
        BuilderConfig::default().with_build_seed(0xace),
    )
    .build(&ModelId::TinyYolov3.descriptor())
    .expect("zoo model builds");
    let timing = TimingOptions::default()
        .without_engine_upload()
        .with_host_glue_us(ModelId::TinyYolov3.info().host_glue_us)
        .with_run_jitter_sd(0.0);
    let server = InferenceServer::start(
        &engine,
        &device,
        ServerConfig::default()
            .with_workers(workers)
            .with_queue_capacity(frames as usize)
            .with_max_batch_size(4)
            .with_batch_timeout_us(f64::INFINITY)
            .with_timing(timing)
            .with_profile(ProfileOptions::full()),
    )
    .expect("start");
    for frame in 0..frames {
        server.submit(frame).expect("accepting");
    }
    server.drain()
}

#[test]
fn four_stream_serving_trace_is_loadable_json_with_all_tracks() {
    let stats = profiled_serving_stats(4, 64);
    let timeline = stats.timeline.as_ref().expect("timeline captured");
    let json = chrome_trace_json(timeline, "serving");
    assert_valid_json(&json);
    for tid in 0..4 {
        assert!(
            json.contains(&format!("\"tid\":{tid}")),
            "stream {tid} missing from the trace"
        );
        assert!(json.contains(&format!("stream {tid}")));
    }
    assert!(json.contains("\"cat\":\"kernel\""));
    assert!(json.contains("\"cat\":\"memcpy\""));
    assert!(json.contains("\"ph\":\"X\""));
}

#[test]
fn request_span_ranges_resolve_to_captured_records() {
    let stats = profiled_serving_stats(4, 64);
    let timeline = stats.timeline.as_ref().expect("timeline captured");
    assert_eq!(stats.completions.len() as u64, stats.completed);
    for r in &stats.completions {
        let kernels = timeline
            .kernels()
            .iter()
            .filter(|k| k.stream == r.worker && (r.span_lo..r.span_hi).contains(&k.seq))
            .count();
        assert!(
            kernels > 0,
            "frame {} resolved to no kernel records (worker {}, spans {}..{})",
            r.frame,
            r.worker,
            r.span_lo,
            r.span_hi
        );
    }
    // The breakdown reconciles with the captured timeline.
    let total: u64 = stats.kernel_breakdown.iter().map(|k| k.calls).sum();
    assert_eq!(total as usize, timeline.kernels().len());
}

/// Scrapes `path` from `addr`, asserting a 200 and returning the body.
fn scrape(addr: std::net::SocketAddr, path: &str) -> String {
    use std::io::{Read, Write};
    let mut stream = std::net::TcpStream::connect(addr).expect("endpoint accepts");
    let request = format!("GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n");
    stream
        .write_all(request.as_bytes())
        .expect("request writes");
    let mut response = String::new();
    stream
        .read_to_string(&mut response)
        .expect("response reads");
    let (head, body) = response.split_once("\r\n\r\n").expect("header terminator");
    assert!(head.starts_with("HTTP/1.1 200"), "non-200 scrape: {head}");
    body.to_string()
}

/// The flight recorder's HTTP surface end to end: `/traces` serves a valid
/// JSON index naming every retained trace, `/traces/<id>` serves the span
/// tree, `/traces/<id>/chrome` serves a chrome://tracing document that the
/// mini-parser accepts, and the bulk exports the scenario runner's
/// `--trace-out` writes are equally loadable.
#[test]
fn flight_recorder_routes_serve_loadable_trace_documents() {
    let device = DeviceSpec::xavier_nx();
    let engine = Builder::new(
        device.clone(),
        BuilderConfig::default().with_build_seed(0xace),
    )
    .build(&ModelId::TinyYolov3.descriptor())
    .expect("zoo model builds");
    let server = InferenceServer::start(
        &engine,
        &device,
        ServerConfig::default()
            .with_workers(2)
            .with_queue_capacity(32)
            .with_max_batch_size(4)
            .with_batch_timeout_us(f64::INFINITY)
            .with_timing(
                TimingOptions::default()
                    .without_engine_upload()
                    .with_host_glue_us(ModelId::TinyYolov3.info().host_glue_us)
                    .with_run_jitter_sd(0.0),
            )
            .with_telemetry("127.0.0.1:0".parse().expect("addr"))
            .with_trace(TraceOptions::default().with_sample_every(1)),
    )
    .expect("server starts");
    let recorder = server.flight_recorder();
    for frame in 0..32 {
        server.submit(frame).expect("accepting");
    }
    // Scrape while the endpoint is still up (drain shuts it down), but only
    // once every request has its trace.
    while recorder.completed_seen() + recorder.dropped_seen() < 32 {
        std::thread::yield_now();
    }
    let addr = server.telemetry_addr().expect("endpoint bound");

    let index = scrape(addr, "/traces");
    assert_valid_json(&index);
    let traces = recorder.traces();
    assert_eq!(traces.len(), 32, "sample_every=1 keeps all 32 traces");
    for t in &traces {
        assert!(
            index.contains(&t.id.to_string()),
            "trace {} missing from the /traces index",
            t.id
        );
    }

    let id = traces.last().expect("non-empty").id.to_string();
    let detail = scrape(addr, &format!("/traces/{id}"));
    assert_valid_json(&detail);
    for needle in ["\"phases\"", "\"outcome\"", "\"arrival_us\""] {
        assert!(detail.contains(needle), "{needle} missing from trace JSON");
    }

    let chrome = scrape(addr, &format!("/traces/{id}/chrome"));
    assert_valid_json(&chrome);
    assert!(chrome.contains("\"traceEvents\""));
    for phase in ["replica_queue", "batch_wait", "execute"] {
        assert!(
            chrome.contains(phase),
            "phase {phase} missing from the chrome export"
        );
    }

    // The bulk exports behind `scenario run --trace-out` parse too.
    assert_valid_json(&traces_json(&traces));
    let all = chrome_trace_all(&traces);
    assert_valid_json(&all);
    assert!(all.contains("\"ph\":\"X\""));
    server.drain();
}

#[test]
fn detector_flags_the_engine_upload_as_h2d_outlier() {
    // Table X's anomaly source: the plan-sized engine upload dwarfs the
    // steady per-frame input copies.
    let tl = memcpy_trace_timeline(ModelId::Resnet18, Platform::Agx, 16);
    let outliers = h2d_outliers(&tl, &DetectorConfig::default());
    assert!(!outliers.is_empty(), "upload spike not flagged");
    let biggest = tl
        .memcpys()
        .iter()
        .filter(|m| m.kind == CopyKind::HostToDevice)
        .max_by_key(|m| m.bytes)
        .expect("H2D copies present");
    assert!(
        outliers
            .iter()
            .any(|o| o.stream == biggest.stream && o.seq == biggest.seq),
        "the plan upload itself is not among the flagged copies"
    );
    // The uniform per-frame copies must NOT drown the report.
    assert!(
        outliers.len() < 4,
        "detector flagged {} of 17 copies — threshold too loose",
        outliers.len()
    );
}

#[test]
fn detector_finds_kernel_slowdowns_in_repro_timelines() {
    // Tables XI/XIII territory: within one engine's run, repeated symbols
    // (pooling, shared conv tactics) stretch on their large-layer
    // invocations relative to the symbol median.
    let timelines = variability_trace_timelines(ModelId::InceptionV4, 2);
    let slow = kernel_slowdowns(&timelines[0], &DetectorConfig::default());
    assert!(
        !slow.is_empty(),
        "no per-invocation slowdown found in an InceptionV4 run"
    );
    for s in &slow {
        assert!(s.ratio >= 1.25, "flagged ratio {} below threshold", s.ratio);
        assert!(s.duration_us > s.median_us);
    }
}

#[test]
fn detector_sees_kernel_set_drift_between_builds() {
    // Table XIII: different builds of the same model map layers to
    // different kernel sets / invocation counts.
    let timelines = variability_trace_timelines(ModelId::InceptionV4, 1);
    let drifted = timelines
        .iter()
        .skip(1)
        .any(|tl| !kernel_set_diff(&timelines[0], tl).is_empty());
    assert!(drifted, "three builds produced identical kernel sets");
}

#[test]
fn full_detect_report_is_consistent() {
    let tl = memcpy_trace_timeline(ModelId::Resnet18, Platform::Agx, 8);
    let report = detect(&tl, &DetectorConfig::default());
    assert_eq!(
        report.h2d_outliers,
        h2d_outliers(&tl, &DetectorConfig::default())
    );
    assert_eq!(
        report.kernel_slowdowns,
        kernel_slowdowns(&tl, &DetectorConfig::default())
    );
    assert!(!report.is_empty());
}

#[test]
fn multi_stream_trace_of_repro_builds_is_valid_json() {
    let timelines = variability_trace_timelines(ModelId::Resnet18, 1);
    let named: Vec<(String, &trtsim::gpu::timeline::GpuTimeline)> = timelines
        .iter()
        .enumerate()
        .map(|(i, tl)| (format!("engine{}", i + 1), tl))
        .collect();
    let pairs: Vec<(&str, &trtsim::gpu::timeline::GpuTimeline)> =
        named.iter().map(|(n, tl)| (n.as_str(), *tl)).collect();
    let json = trtsim::profiler::chrome_trace_json_multi(&pairs);
    assert_valid_json(&json);
    for pid in 0..3 {
        assert!(json.contains(&format!("\"pid\":{pid}")));
    }
}
