//! Integration tests of the paper's non-determinism findings: unpinned
//! builds differ in kernels, labels, and latencies; a shipped plan does not.

use trtsim::data::SyntheticImageNet;
use trtsim::engine::runtime::{ExecutionContext, TimingOptions};
use trtsim::engine::{Builder, BuilderConfig, Engine};
use trtsim::gpu::device::DeviceSpec;
use trtsim::models::numeric::{build_classifier, NUMERIC_INPUT};
use trtsim::models::ModelId;

fn engines(n: u64, network: &trtsim::ir::Graph) -> Vec<Engine> {
    (0..n)
        .map(|i| {
            Builder::new(
                DeviceSpec::xavier_nx(),
                BuilderConfig::default().with_build_seed(0xC0FFEE + i),
            )
            .build(network)
            .unwrap()
        })
        .collect()
}

#[test]
fn rebuilds_select_different_kernel_sets() {
    // Finding 6: "the mapping to CUDA kernels changes" on every build.
    let network = ModelId::InceptionV4.descriptor();
    let engines = engines(4, &network);
    let baseline = engines[0].kernel_invocations();
    assert!(
        engines
            .iter()
            .skip(1)
            .any(|e| e.kernel_invocations() != baseline),
        "four builds of inception-v4 produced identical kernel mappings"
    );
}

#[test]
fn rebuilds_change_latency() {
    let network = ModelId::FcnResnet18Cityscapes.descriptor();
    let engines = engines(4, &network);
    let opts = TimingOptions {
        run_jitter_sd: 0.0, // isolate build-to-build differences
        ..TimingOptions::default()
    };
    let lats: Vec<f64> = engines
        .iter()
        .map(|e| ExecutionContext::new(e, DeviceSpec::xavier_nx()).measure_latency(&opts, 1, 0)[0])
        .collect();
    let min = lats.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = lats.iter().cloned().fold(0.0, f64::max);
    assert!(
        max > min,
        "four builds produced identical latencies: {lats:?}"
    );
}

#[test]
fn rebuilds_can_flip_output_labels_but_rarely() {
    // Finding 2 with its magnitude: mismatches exist but stay a small
    // fraction (the paper sees 0.1-0.8%).
    let classes = 8;
    let dataset = SyntheticImageNet::new(classes, NUMERIC_INPUT, 31).with_snr(1.0, 2.0);
    let prototypes: Vec<_> = (0..classes).map(|c| dataset.prototype(c)).collect();
    let network = build_classifier(ModelId::Vgg16, &prototypes, 0.3, 2);
    let images = dataset.evaluation_set(30);

    let engines = engines(3, &network);
    let device = DeviceSpec::xavier_nx();
    let predictions: Vec<Vec<usize>> = engines
        .iter()
        .map(|e| {
            let ctx = ExecutionContext::new(e, device.clone());
            images
                .iter()
                .map(|img| ctx.classify(&img.image).unwrap())
                .collect()
        })
        .collect();
    let mut total_mismatches = 0usize;
    for i in 1..predictions.len() {
        let mismatches = predictions[0]
            .iter()
            .zip(&predictions[i])
            .filter(|(a, b)| a != b)
            .count();
        // Never wholesale disagreement.
        assert!(
            mismatches * 10 < images.len(),
            "engines disagree on {mismatches}/{} images",
            images.len()
        );
        total_mismatches += mismatches;
    }
    // Engines agree on the vast majority — the interesting case is when
    // they do not, which the consistency experiment measures at scale.
    let _ = total_mismatches;
}

#[test]
fn timing_noise_zero_restores_determinism() {
    // Control: with no measurement noise, every build is identical even with
    // different seeds — proving noise is the sole source of non-determinism.
    let network = ModelId::TinyYolov3.descriptor();
    let build = |seed: u64| {
        let mut config = BuilderConfig::default().with_build_seed(seed);
        config.timing_noise_sd = 0.0;
        Builder::new(DeviceSpec::xavier_nx(), config)
            .build(&network)
            .unwrap()
    };
    let a = build(1);
    let b = build(2);
    assert_eq!(a.kernel_invocations(), b.kernel_invocations());
}
