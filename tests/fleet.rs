//! Workspace-level fleet invariants: whatever the device mix and however
//! bursty the traffic, the router must conserve requests — every accepted
//! frame completes (or is dropped) exactly once, and the fleet-wide
//! counters are exactly the sum of the per-device counters.

use std::collections::BTreeSet;
use std::sync::OnceLock;

use proptest::prelude::*;
use trtsim::data::traffic::ArrivalTrace;
use trtsim::ir::graph::{Graph, LayerKind};
use trtsim::util::rng::Pcg32;
use trtsim::{
    Builder, BuilderConfig, DeviceSpec, Engine, FleetBuilder, FleetConfig, Platform, ServerConfig,
    TimingOptions,
};

/// One shared tiny engine: conservation is about the router's counters, not
/// the model, and building once keeps 32 proptest cases fast.
fn engine() -> &'static Engine {
    static ENGINE: OnceLock<Engine> = OnceLock::new();
    ENGINE.get_or_init(|| {
        let mut g = Graph::new("fleet_prop", [3, 16, 16]);
        let conv = g.add_layer(
            "c0",
            LayerKind::conv_seeded(8, 3, 3, 1, 1, 3),
            &[Graph::INPUT],
        );
        g.mark_output(conv);
        Builder::new(DeviceSpec::xavier_nx(), BuilderConfig::default())
            .build(&g)
            .expect("probe builds")
    })
}

fn random_spec(rng: &mut Pcg32) -> DeviceSpec {
    let platform = if rng.range_usize(2) == 0 {
        Platform::Nx
    } else {
        Platform::Agx
    };
    if rng.range_usize(2) == 0 {
        DeviceSpec::max_clock(platform)
    } else {
        DeviceSpec::pinned_clock(platform)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn router_conserves_every_request(
        seed in 0u64..10_000,
        device_count in 1usize..5,
        queue in 1usize..12,
        frames in 1usize..80,
        burst_gap_us in 1.0f64..50.0,
        quiet_gap_us in 100.0f64..2_000.0,
    ) {
        let engine = engine();
        let mut rng = Pcg32::seed_from_u64(seed);
        let mut builder = FleetBuilder::new();
        let mut names = Vec::new();
        for i in 0..device_count {
            let name = format!("d{i}");
            builder = builder.device(&name, random_spec(&mut rng));
            names.push(name);
        }
        for name in &names {
            let config = ServerConfig::default()
                .with_workers(1 + rng.range_usize(4))
                .with_queue_capacity(queue)
                .with_timing(
                    TimingOptions::default()
                        .without_engine_upload()
                        .with_run_jitter_sd(0.0),
                );
            builder = builder.replica(name, engine, config).expect("known device");
        }
        let fleet = builder.start(FleetConfig::default()).expect("fleet starts");
        let trace = ArrivalTrace::burst(quiet_gap_us, burst_gap_us, 10_000.0, 0.3, frames, seed);
        let (accepted, rejected) = fleet.replay(engine.name(), &trace.arrivals_us, 0);
        let stats = fleet.drain();

        // Admission accounting.
        prop_assert_eq!(stats.submitted, frames as u64);
        prop_assert_eq!(stats.accepted, accepted);
        prop_assert_eq!(stats.rejected, rejected);
        prop_assert_eq!(stats.submitted, stats.accepted + stats.rejected);

        // Fleet-wide counters are exactly the per-device sums.
        prop_assert_eq!(
            stats.accepted,
            stats.replicas.iter().map(|r| r.stats.accepted).sum::<u64>()
        );
        prop_assert_eq!(
            stats.accepted,
            stats.replicas.iter().map(|r| r.routed).sum::<u64>()
        );
        prop_assert_eq!(
            stats.completed,
            stats.replicas.iter().map(|r| r.stats.completed).sum::<u64>()
        );
        prop_assert_eq!(
            stats.dropped,
            stats.replicas.iter().map(|r| r.stats.dropped).sum::<u64>()
        );
        prop_assert_eq!(stats.completed + stats.dropped, stats.accepted);

        // Exactly-once: each accepted frame id appears in exactly one
        // replica's completion log, and is a frame we actually offered.
        let mut seen = BTreeSet::new();
        for replica in &stats.replicas {
            for record in &replica.stats.completions {
                prop_assert!(
                    (record.frame as usize) < frames,
                    "completed a frame never offered: {}", record.frame
                );
                prop_assert!(
                    seen.insert(record.frame),
                    "frame {} completed twice", record.frame
                );
            }
        }
        prop_assert_eq!(seen.len() as u64, stats.completed);
    }
}
