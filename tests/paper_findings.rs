//! One integration test per paper finding, at reduced scale: the repository's
//! headline claims, checked end to end through the public facade.

use trtsim::engine::runtime::{ExecutionContext, TimingOptions};
use trtsim::engine::{Builder, BuilderConfig};
use trtsim::gpu::contention;
use trtsim::gpu::device::{DeviceSpec, Platform};
use trtsim::models::ModelId;

/// Finding 3: TensorRT throughput gain is an order of magnitude or more.
#[test]
fn finding3_throughput_gain() {
    use trtsim::repro::exp_fps;
    let model = ModelId::Resnet18;
    let device = DeviceSpec::max_clock(Platform::Nx);
    let unopt = exp_fps::unoptimized_latency_us(model, &device);
    let opt = exp_fps::optimized_latency_us(model, Platform::Nx);
    let gain = unopt / opt;
    assert!(
        (8.0..80.0).contains(&gain),
        "speedup {gain:.1}x outside the paper's 23-27x order of magnitude"
    );
}

/// Finding 3 (concurrency): a light detector packs tens of streams.
#[test]
fn finding3_concurrency_packing() {
    let engine = Builder::new(
        DeviceSpec::max_clock(Platform::Agx),
        BuilderConfig::default().with_build_seed(1),
    )
    .build(&ModelId::TinyYolov3.descriptor())
    .unwrap();
    let device = DeviceSpec::max_clock(Platform::Agx);
    let ctx = ExecutionContext::new(&engine, device.clone());
    let profile = ctx.profile(ModelId::TinyYolov3.info().host_glue_us);
    let (n, _) = contention::max_threads(&profile, &device);
    // Paper: up to 36 concurrent threads on AGX.
    assert!((24..=48).contains(&n), "AGX packs {n} threads");
}

/// Finding 4: a same-platform engine can run slower on the bigger board.
#[test]
fn finding4_bigger_board_can_be_slower() {
    // Scan several builds of the L2-sensitive detectors; at least one
    // (engine, model) pair must run slower on AGX than on NX.
    let mut found = false;
    'outer: for model in [ModelId::Pednet, ModelId::Facenet, ModelId::Mobilenetv1] {
        for seed in 0..4u64 {
            let engine = Builder::new(
                DeviceSpec::pinned_clock(Platform::Nx),
                BuilderConfig::default().with_build_seed(1000 + seed),
            )
            .build(&model.descriptor())
            .unwrap();
            let opts = TimingOptions::default()
                .with_host_glue_us(model.info().host_glue_us)
                .with_run_jitter_sd(0.0);
            let time_on = |platform: Platform| {
                ExecutionContext::new(&engine, DeviceSpec::pinned_clock(platform))
                    .measure_latency(&opts, 1, 0)[0]
            };
            if time_on(Platform::Agx) > time_on(Platform::Nx) {
                found = true;
                break 'outer;
            }
        }
    }
    assert!(
        found,
        "no NX-built engine ran slower on AGX — anomaly mechanisms dead"
    );
}

/// Finding 5: the engine-upload memcpy costs more on AGX.
#[test]
fn finding5_memcpy_slower_on_agx() {
    use trtsim::gpu::memcpy::h2d_time_us;
    let nx = DeviceSpec::pinned_clock(Platform::Nx);
    let agx = DeviceSpec::pinned_clock(Platform::Agx);
    for bytes in [1u64 << 20, 12 << 20, 22 << 20, 48 << 20] {
        assert!(
            h2d_time_us(bytes, &agx) > h2d_time_us(bytes, &nx),
            "{bytes} bytes"
        );
    }
}

/// §VI-B: BSP prediction error differs across builds of the same model.
#[test]
fn bsp_error_varies_across_builds() {
    use trtsim::perfmodel::PredictionOutcome;
    let nx = DeviceSpec::pinned_clock(Platform::Nx);
    let agx = DeviceSpec::pinned_clock(Platform::Agx);
    let errors: Vec<f64> = (0..3u64)
        .map(|i| {
            let engine = Builder::new(
                nx.clone(),
                BuilderConfig::default().with_build_seed(0xB5B + i),
            )
            .build(&ModelId::Mobilenetv1.descriptor())
            .unwrap();
            PredictionOutcome::evaluate(&engine, &nx, &agx, i).error_percent()
        })
        .collect();
    let min = errors.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = errors.iter().cloned().fold(0.0f64, f64::max);
    assert!(
        max - min > 0.05,
        "errors identical across builds: {errors:?}"
    );
}
