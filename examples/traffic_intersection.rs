//! Intelligent traffic-intersection control (paper §VI-A).
//!
//! An intersection controller feeds many camera streams into one edge board:
//! the same fine-tuned detector runs on every stream via CUDA streams in a
//! shared context. This example sizes that deployment: how many cameras can
//! one NX or AGX carry for Tiny-YOLOv3, what throughput and GPU utilization
//! to expect, and how the detection-metric pipeline (IoU-0.75
//! precision/recall, §II-E) evaluates a detector on traffic scenes.
//!
//! ```sh
//! cargo run --release --example traffic_intersection
//! ```

use trtsim::data::traffic::{BBox, TrafficDataset};
use trtsim::engine::serving;
use trtsim::gpu::contention::sweep;
use trtsim::gpu::device::Platform;
use trtsim::metrics::detection::{precision_recall, DetectionEval};
use trtsim::models::decode::{decode_yolo_grid, nms, tiny_yolov3_anchors};
use trtsim::models::ModelId;
use trtsim::util::rng::Pcg32;
use trtsim::{Builder, BuilderConfig, DeviceSpec, ExecutionContext, TimingOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- Capacity planning: how many cameras per board? -------------------
    for platform in Platform::all() {
        let device = DeviceSpec::max_clock(platform);
        let engine = Builder::new(device.clone(), BuilderConfig::default())
            .build(&ModelId::TinyYolov3.descriptor())?;
        let ctx = ExecutionContext::new(&engine, device.clone());
        let profile = ctx.profile(ModelId::TinyYolov3.info().host_glue_us);
        let (points, bound) = sweep(&profile, &device);
        let last = points.last().expect("at least one thread");
        println!(
            "{platform}: up to {} camera streams ({bound:?}-bound), {:.0} FPS aggregate, {:.0}% GPU",
            last.threads,
            last.fps,
            last.utilization * 100.0
        );
    }

    // --- Serve 8 camera feeds with real worker threads --------------------
    let device = DeviceSpec::max_clock(Platform::Nx);
    let engine = Builder::new(device.clone(), BuilderConfig::default().with_build_seed(8))
        .build(&ModelId::TinyYolov3.descriptor())?;
    let opts = TimingOptions::default()
        .without_engine_upload()
        .with_host_glue_us(ModelId::TinyYolov3.info().host_glue_us);
    let report = serving::serve(&engine, &device, 8, 256, &opts)?;
    println!(
        "served {} frames on {} camera threads: {:.0} FPS aggregate, GR3D {:.0}%",
        report.frames, report.threads, report.aggregate_fps, report.gr3d_percent
    );

    // --- Decode the detector's raw output grids ---------------------------
    // (Zoo weights are synthetic, so decoded boxes are arbitrary — this shows
    // the post-processing path an application runs per frame.)
    let ctx = ExecutionContext::new(&engine, device.clone());
    let frame = trtsim::ir::Tensor::zeros([3, 416, 416]);
    let outputs = ctx.infer(&frame)?;
    let anchors = tiny_yolov3_anchors();
    let mut detections = Vec::new();
    for (grid, anchor_set) in outputs.iter().zip(anchors.iter()) {
        detections.extend(decode_yolo_grid(grid, anchor_set, 80, 416, 0.5));
    }
    let detections = nms(detections, 0.45);
    println!("decoded {} candidate boxes after NMS", detections.len());

    // --- Detection quality on traffic scenes ------------------------------
    // A deployed detector's boxes are the ground truth perturbed by
    // localization noise; sweeping the noise shows how IoU-0.75
    // precision/recall (the paper's metric) punishes loose boxes.
    let dataset = TrafficDataset::new([3, 64, 96], 7);
    let scenes = dataset.test_set(200);
    for (label, jitter, miss_rate) in [
        ("well-tuned detector ", 0.4, 0.02),
        ("loose detector      ", 1.6, 0.10),
    ] {
        let mut rng = Pcg32::seed_from_u64(11);
        let mut eval = DetectionEval::default();
        for scene in &scenes {
            let mut predictions: Vec<BBox> = Vec::new();
            for b in &scene.boxes {
                if rng.chance(miss_rate) {
                    continue;
                }
                predictions.push(BBox {
                    x: b.x + jitter * rng.normal() as f32,
                    y: b.y + jitter * rng.normal() as f32,
                    w: (b.w + jitter * rng.normal() as f32).max(1.0),
                    h: (b.h + jitter * rng.normal() as f32).max(1.0),
                    class: b.class,
                });
            }
            eval.merge(&precision_recall(&predictions, &scene.boxes, 0.75));
        }
        println!(
            "{label} IoU-0.75 precision {:.3}, recall {:.3}",
            eval.precision(),
            eval.recall()
        );
    }
    Ok(())
}
