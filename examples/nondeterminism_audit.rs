//! Auditing engine non-determinism end to end (paper Findings 2 and 6).
//!
//! Builds several engines of the same trained classifier, classifies the
//! same images with each, and reports: which builds selected different
//! kernels, which images received different labels, and how the paper's
//! mitigation — shipping one serialized plan — removes the inconsistency.
//!
//! ```sh
//! cargo run --release --example nondeterminism_audit
//! ```

use trtsim::data::SyntheticImageNet;
use trtsim::engine::plan;
use trtsim::metrics::consistency;
use trtsim::models::numeric::{build_classifier, NUMERIC_INPUT};
use trtsim::models::ModelId;
use trtsim::{Builder, BuilderConfig, DeviceSpec, Engine, EngineError, ExecutionContext};

fn main() -> Result<(), EngineError> {
    // A trained classifier over a 10-class synthetic dataset.
    let classes = 10;
    let dataset = SyntheticImageNet::new(classes, NUMERIC_INPUT, 99).with_snr(1.0, 1.8);
    let prototypes: Vec<_> = (0..classes).map(|c| dataset.prototype(c)).collect();
    let network = build_classifier(ModelId::Resnet18, &prototypes, 0.3, 7);
    let images = dataset.evaluation_set(40);

    // Build four engines exactly as four deployments would.
    let device = DeviceSpec::xavier_nx();
    let engines: Vec<Engine> = (0..4)
        .map(|_| Builder::new(device.clone(), BuilderConfig::default()).build(&network))
        .collect::<Result<_, _>>()?;

    // 1. Kernel-mapping audit.
    println!("== kernel mapping per build ==");
    for (i, e) in engines.iter().enumerate() {
        let names = e.kernel_names();
        println!(
            "engine {i}: {} launches, first conv kernel: {}",
            names.len(),
            names.first().map(String::as_str).unwrap_or("-")
        );
    }
    let identical_mappings = engines
        .windows(2)
        .all(|w| w[0].kernel_invocations() == w[1].kernel_invocations());
    println!("all builds map to identical kernels: {identical_mappings}");

    // 2. Output-label audit.
    println!("\n== output labels per build ==");
    let predictions: Vec<Vec<usize>> = engines
        .iter()
        .map(|e| {
            let ctx = ExecutionContext::new(e, device.clone());
            images
                .iter()
                .map(|img| ctx.classify(&img.image).expect("runs"))
                .collect()
        })
        .collect();
    for i in 1..predictions.len() {
        let r = consistency(&predictions[0], &predictions[i]);
        println!(
            "engine 0 vs engine {i}: {} / {} labels differ ({:.2}%)",
            r.mismatches,
            r.total,
            r.mismatch_percent()
        );
    }

    // 3. The mitigation: deploy one plan everywhere.
    println!("\n== mitigation: ship one serialized plan ==");
    let blob = plan::serialize(&engines[0]);
    let deployed_a = plan::deserialize(&blob)?;
    let deployed_b = plan::deserialize(&blob)?;
    let classify = |e: &Engine| -> Vec<usize> {
        let ctx = ExecutionContext::new(e, device.clone());
        images
            .iter()
            .map(|img| ctx.classify(&img.image).expect("runs"))
            .collect()
    };
    let r = consistency(&classify(&deployed_a), &classify(&deployed_b));
    println!(
        "two deployments of the same plan: {} / {} labels differ",
        r.mismatches, r.total
    );
    assert_eq!(r.mismatches, 0);
    Ok(())
}
