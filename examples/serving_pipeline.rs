//! Production serving: dynamic batching and backpressure (paper §VI-A).
//!
//! A deployed TensorRT engine rarely runs one frame at a time behind a
//! blocking call — it sits behind a serving layer that batches requests to
//! amortize launch overhead and sheds load when the queue backs up. This
//! example runs [`trtsim::InferenceServer`] over the simulated Xavier NX and
//! shows both effects:
//!
//! 1. a batch-size sweep — aggregate FPS climbs with batch size, and with a
//!    standing backlog (all frames submitted up front) the per-request
//!    latency falls too, since queue wait dominates and batching drains the
//!    queue faster;
//! 2. an overload run — a bounded queue rejects what it cannot absorb, and
//!    `drain()` still completes every accepted frame.
//!
//! ```sh
//! cargo run --release --example serving_pipeline
//! ```

use trtsim::models::ModelId;
use trtsim::{
    Builder, BuilderConfig, DeviceSpec, InferenceServer, ServerConfig, ServingError, TimingOptions,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let device = DeviceSpec::xavier_nx();
    let engine = Builder::new(device.clone(), BuilderConfig::default().with_build_seed(21))
        .build(&ModelId::TinyYolov3.descriptor())?;
    let timing = TimingOptions::default()
        .without_engine_upload()
        .with_host_glue_us(ModelId::TinyYolov3.info().host_glue_us)
        .with_run_jitter_sd(0.0);

    // --- 1. Dynamic batching: throughput vs tail latency ------------------
    println!("batch | batches |     FPS |  p50 ms |  p99 ms");
    for batch in [1usize, 2, 4, 8] {
        let server = InferenceServer::start(
            &engine,
            &device,
            ServerConfig::default()
                .with_workers(4)
                .with_queue_capacity(64)
                .with_max_batch_size(batch)
                .with_batch_timeout_us(f64::INFINITY)
                .with_timing(timing),
        )?;
        for frame in 0..256 {
            server.submit(frame)?;
        }
        let stats = server.drain();
        println!(
            "{batch:>5} | {:>7} | {:>7.0} | {:>7.2} | {:>7.2}",
            stats.batches,
            stats.aggregate_fps,
            stats.latency.p50_us / 1000.0,
            stats.latency.p99_us / 1000.0,
        );
    }

    // --- 2. Backpressure: a bounded queue under overload ------------------
    let server = InferenceServer::start(
        &engine,
        &device,
        ServerConfig::default()
            .with_workers(2)
            .with_queue_capacity(8)
            .with_max_batch_size(4)
            .with_batch_timeout_us(f64::INFINITY)
            .with_timing(timing),
    )?;
    let mut accepted = 0u64;
    let mut rejected = 0u64;
    for frame in 0..4096 {
        match server.try_submit(frame) {
            Ok(()) => accepted += 1,
            Err(ServingError::QueueFull) => rejected += 1,
            Err(e) => return Err(e.into()),
        }
    }
    let stats = server.drain();
    println!();
    println!(
        "overload: {accepted} accepted, {rejected} rejected at admission \
         (queue high-water {})",
        stats.queue_high_water
    );
    println!(
        "drained:  {} completed, mean batch {:.1}, {}",
        stats.completed,
        stats.mean_batch_size(),
        stats.latency
    );
    assert_eq!(stats.completed, accepted);
    Ok(())
}
