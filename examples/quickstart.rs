//! Quickstart: build an engine, run it, serialize it, time it.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use trtsim::engine::plan;
use trtsim::metrics::LatencyCell;
use trtsim::models::ModelId;
use trtsim::{Builder, BuilderConfig, DeviceSpec, EngineError, ExecutionContext, TimingOptions};

fn main() -> Result<(), EngineError> {
    // 1. Pick a network from the paper's model zoo.
    let network = ModelId::Googlenet.descriptor();
    println!(
        "network: {} ({} convs, {:.1} MiB FP32)",
        network.name(),
        network.conv_count(),
        network.fp32_bytes() as f64 / (1 << 20) as f64
    );

    // 2. Build a TensorRT-like engine for the simulated Xavier NX.
    let device = DeviceSpec::xavier_nx();
    let engine = Builder::new(device.clone(), BuilderConfig::default()).build(&network)?;
    let report = engine.report().passes;
    println!(
        "engine: {} kernel launches (removed {}, fused {}, merged {}), plan {:.1} MiB",
        engine.launch_count(),
        report.removed,
        report.fused,
        report.merged,
        engine.plan_size_bytes() as f64 / (1 << 20) as f64
    );

    // 3. Show the kernel mapping (the names nvprof would print).
    for (name, calls) in engine.kernel_invocations().iter().take(5) {
        println!("  {calls:>3}x {name}");
    }

    // 4. Serialize and reload the plan — the paper's recommended deployment.
    let blob = plan::serialize(&engine);
    let restored = plan::deserialize(&blob)?;
    assert_eq!(engine, restored);
    println!("plan round-trip: {} bytes", blob.len());

    // 5. Time ten inferences (the paper's measurement protocol).
    let ctx = ExecutionContext::new(&restored, device);
    let runs = ctx.measure_latency(&TimingOptions::default(), 10, 42);
    println!("latency: {} ms (10 runs)", LatencyCell::from_runs_us(&runs));
    Ok(())
}
