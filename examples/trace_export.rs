//! End-to-end observability: chrome-trace export and anomaly detection over
//! a multi-stream serving run (paper §V).
//!
//! The paper reads its anomaly anatomy — the H2D engine-upload spike, the
//! stretched kernel invocation — out of the *visual* trace, not the summary
//! tables. This example closes that loop for the simulator:
//!
//! 1. run a 4-worker [`trtsim::InferenceServer`] with
//!    [`trtsim::ProfileOptions`] fully enabled, so the run's timeline is
//!    captured and every request carries a span-id range;
//! 2. write the timeline as chrome://tracing JSON (`trace_export.json` —
//!    load it via chrome://tracing or <https://ui.perfetto.dev>), one lane
//!    per worker stream;
//! 3. print the per-kernel time breakdown from [`trtsim::ServerStats`];
//! 4. use the slowest request's span range to name the records that served
//!    it;
//! 5. run the anomaly detectors over the same timeline.
//!
//! ```sh
//! cargo run --release --example trace_export
//! ```

use trtsim::models::ModelId;
use trtsim::profiler::{detect, format_report, write_chrome_trace, DetectorConfig};
use trtsim::{
    Builder, BuilderConfig, DeviceSpec, InferenceServer, ProfileOptions, ServerConfig,
    TimingOptions,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let device = DeviceSpec::xavier_nx();
    let engine = Builder::new(device.clone(), BuilderConfig::default().with_build_seed(7))
        .build(&ModelId::TinyYolov3.descriptor())?;
    let timing = TimingOptions::default()
        .without_engine_upload()
        .with_host_glue_us(ModelId::TinyYolov3.info().host_glue_us)
        .with_run_jitter_sd(0.0);

    // --- 1. A profiled 4-stream serving run -------------------------------
    let server = InferenceServer::start(
        &engine,
        &device,
        ServerConfig::default()
            .with_workers(4)
            .with_queue_capacity(64)
            .with_max_batch_size(4)
            .with_batch_timeout_us(f64::INFINITY)
            .with_timing(timing)
            .with_profile(ProfileOptions::full()),
    )?;
    for frame in 0..128 {
        server.submit(frame)?;
    }
    let stats = server.drain();
    let timeline = stats.timeline.as_ref().expect("profile captures timeline");

    // --- 2. chrome://tracing export ---------------------------------------
    let path = "trace_export.json";
    write_chrome_trace(path, timeline, "tiny-yolov3 4-stream serving")?;
    println!(
        "{} frames in {} batches across {} workers — trace written to {path}",
        stats.completed, stats.batches, stats.workers
    );

    // --- 3. Per-kernel time breakdown -------------------------------------
    println!("\nkernel breakdown (top 5):");
    for k in stats.kernel_breakdown.iter().take(5) {
        println!("  {:>9.0} us  {:>4} calls  {}", k.total_us, k.calls, k.name);
    }

    // --- 4. Span attribution: what served the slowest request? ------------
    let slowest = stats
        .completions
        .iter()
        .max_by(|a, b| (a.done_us - a.arrival_us).total_cmp(&(b.done_us - b.arrival_us)))
        .expect("completions recorded");
    let served_by: Vec<&str> = timeline
        .kernels()
        .iter()
        .filter(|k| {
            k.stream == slowest.worker && (slowest.span_lo..slowest.span_hi).contains(&k.seq)
        })
        .map(|k| k.name.as_str())
        .collect();
    println!(
        "\nslowest request: frame {} ({:.2} ms on worker {}, batch {}, spans {}..{})",
        slowest.frame,
        (slowest.done_us - slowest.arrival_us) / 1000.0,
        slowest.worker,
        slowest.batch,
        slowest.span_lo,
        slowest.span_hi
    );
    println!("  served by {} kernel launches", served_by.len());

    // --- 5. Anomaly detection over the same timeline ----------------------
    let report = detect(timeline, &DetectorConfig::default());
    println!("\n{}", format_report(&report));
    Ok(())
}
