//! Live telemetry: scrape a serving process like Prometheus would.
//!
//! Starts an [`trtsim::InferenceServer`] with the telemetry endpoint
//! enabled, pushes a workload through it, then scrapes `GET /metrics` over
//! plain TCP and verifies the exposition is well-formed (every sample line
//! parses, the serving / build / fast-path / GPU-sampler families are all
//! present) before printing a digest. CI runs this as the telemetry smoke
//! test; interactively you can point a real `curl` or Prometheus at the
//! printed address while the run is draining.
//!
//! ```sh
//! cargo run --release --example telemetry_endpoint
//! ```

use std::io::{Read, Write};
use std::net::TcpStream;

use trtsim::ir::graph::{Graph, LayerKind};
use trtsim::ir::Tensor;
use trtsim::models::ModelId;
use trtsim::{
    Builder, BuilderConfig, DeviceSpec, ExecutionContext, InferenceServer, ServerConfig,
    TimingOptions,
};

fn scrape(addr: std::net::SocketAddr, path: &str) -> std::io::Result<String> {
    let mut stream = TcpStream::connect(addr)?;
    let request = format!("GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n");
    stream.write_all(request.as_bytes())?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    let (head, body) = response
        .split_once("\r\n\r\n")
        .ok_or_else(|| std::io::Error::other("no header terminator"))?;
    if !head.starts_with("HTTP/1.1 200") {
        return Err(std::io::Error::other(format!("non-200: {head}")));
    }
    Ok(body.to_string())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let device = DeviceSpec::xavier_nx();
    // An explicit timing cache routes kernel timings through the cache, so
    // the trtsim_timing_cache_lookups_total counters have data to show.
    let cache = std::sync::Arc::new(trtsim::TimingCache::new());
    let engine = Builder::new(
        device.clone(),
        BuilderConfig::default()
            .with_build_seed(33)
            .with_timing_cache(cache),
    )
    .build(&ModelId::TinyYolov3.descriptor())?;

    // One numeric inference so the fast-path families have data too.
    let mut g = Graph::new("telemetry_demo", [3, 8, 8]);
    let conv = g.add_layer(
        "c0",
        LayerKind::conv_seeded(4, 3, 3, 1, 1, 3),
        &[Graph::INPUT],
    );
    g.mark_output(conv);
    let probe = Builder::new(device.clone(), BuilderConfig::default()).build(&g)?;
    ExecutionContext::new(&probe, device.clone()).infer(&Tensor::zeros([3, 8, 8]))?;

    let timing = TimingOptions::default()
        .without_engine_upload()
        .with_host_glue_us(ModelId::TinyYolov3.info().host_glue_us)
        .with_run_jitter_sd(0.0);
    let server = InferenceServer::start(
        &engine,
        &device,
        ServerConfig::default()
            .with_workers(2)
            .with_queue_capacity(256)
            .with_max_batch_size(4)
            .with_batch_timeout_us(f64::INFINITY)
            .with_timing(timing)
            .with_telemetry("127.0.0.1:0".parse()?)
            .with_telemetry_sample_ms(5),
    )?;
    let addr = server.telemetry_addr().expect("telemetry enabled");
    println!("telemetry endpoint live at http://{addr}/metrics");

    for frame in 0..128 {
        server.submit(frame)?;
    }

    // Poll until the sampler has published its per-stream gauges.
    let families = [
        "trtsim_server_completed_total",
        "trtsim_server_latency_us_bucket",
        "trtsim_build_total",
        "trtsim_timing_cache_lookups_total",
        "trtsim_plan_executions_total",
        "trtsim_gpu_gr3d_percent",
        "trtsim_gpu_stream_busy_percent",
        "trtsim_gpu_memcpy_bytes_per_second",
    ];
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
    let text = loop {
        let text = scrape(addr, "/metrics")?;
        if families.iter().all(|f| text.contains(f)) {
            break text;
        }
        if std::time::Instant::now() >= deadline {
            let missing: Vec<_> = families.iter().filter(|f| !text.contains(**f)).collect();
            return Err(format!("metric families never appeared: {missing:?}").into());
        }
        std::thread::sleep(std::time::Duration::from_millis(20));
    };

    // Well-formedness: every non-comment line is `name{labels} value`.
    let mut samples = 0usize;
    for line in text
        .lines()
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
    {
        let (name_labels, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("sample line without value: {line}"))?;
        if value.parse::<f64>().is_err() && value != "+Inf" && value != "-Inf" && value != "NaN" {
            return Err(format!("non-numeric sample value: {line}").into());
        }
        let name = name_labels.split('{').next().unwrap_or(name_labels);
        if name.is_empty() || !name.starts_with("trtsim_") {
            return Err(format!("unexpected metric name: {line}").into());
        }
        samples += 1;
    }
    let json = scrape(addr, "/metrics.json")?;
    assert!(
        json.trim_start().starts_with('{'),
        "JSON snapshot malformed"
    );

    let stats = server.drain();
    println!(
        "scrape OK: {samples} samples, all {} families present; served {} frames at {:.0} fps",
        families.len(),
        stats.completed,
        stats.aggregate_fps
    );
    Ok(())
}
