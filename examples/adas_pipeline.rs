//! ADAS worst-case-execution-time analysis (paper §VI-A, Table XVI).
//!
//! A braking pipeline has a hard deadline: the detector's inference must
//! reach the actuator in time. The paper warns that rebuilding a TensorRT
//! engine changes its latency, "making Worst Case Execution Time (WCET)
//! analysis tough". This example quantifies that: it builds many engines of
//! the pedestrian detector, measures each one's latency distribution, and
//! shows how much WCET margin an engineer must budget if engines are rebuilt
//! in the field versus pinned to one audited plan.
//!
//! The experiment itself lives in `scenarios/adas_wcet.scn` — this example
//! is now a thin front-end: it compiles the scenario file, hands the plan to
//! the generic driver, and narrates the numbers. Editing the `.scn` file
//! (more builds, a different network, pinned clocks) changes the experiment
//! without touching Rust.
//!
//! ```sh
//! cargo run --release --example adas_pipeline
//! ```

use std::path::Path;

use trtsim::scenario::{compile_src, driver};
use trtsim::util::stats::Summary;
use trtsim::CompileOptions;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("scenarios/adas_wcet.scn");
    let src = std::fs::read_to_string(&path)?;
    let plan = compile_src(&src, CompileOptions::default())
        .map_err(|e| e.render(&path.display().to_string(), &src))?;
    let report = driver::run(&plan)?;

    // One unit: pednet on the AGX, 12 fresh builds, 30 timed runs each — as
    // a fleet of vehicles each building its own engine would.
    let unit = &report.units[0];
    let mut per_engine_means = Vec::new();
    let mut all_runs = Vec::new();
    for runs in &unit.builds {
        let summary = Summary::from_samples(&runs.samples);
        println!(
            "engine {:>2}: mean {:>7.2} ms  p95 {:>7.2} ms",
            runs.build,
            summary.mean / 1000.0,
            summary.p95 / 1000.0,
        );
        per_engine_means.push(summary.mean);
        all_runs.extend_from_slice(&runs.samples);
    }

    let fleet = Summary::from_samples(&all_runs);
    let single = Summary::from_samples(&per_engine_means[..1]);
    let spread = Summary::from_samples(&per_engine_means);
    println!();
    println!(
        "fleet WCET budget (rebuild in the field): p95 {:.2} ms, max {:.2} ms",
        fleet.p95 / 1000.0,
        fleet.max / 1000.0
    );
    println!(
        "pinned-plan WCET budget (one audited engine): {:.2} ms",
        single.mean / 1000.0
    );
    println!(
        "build-to-build mean-latency spread: {:.2} ms ({:.1}% of the fastest)",
        (spread.max - spread.min) / 1000.0,
        100.0 * (spread.max - spread.min) / spread.min
    );
    println!();
    println!("mitigation (paper §VI-A): serialize ONE engine and deploy that exact");
    println!("plan to every vehicle — outputs and latencies then match everywhere.");

    for assert in &report.asserts {
        println!("{}", assert.render());
    }
    if !report.passed() {
        return Err("scenario assertions failed".into());
    }
    Ok(())
}
