//! ADAS worst-case-execution-time analysis (paper §VI-A, Table XVI).
//!
//! A braking pipeline has a hard deadline: the detector's inference must
//! reach the actuator in time. The paper warns that rebuilding a TensorRT
//! engine changes its latency, "making Worst Case Execution Time (WCET)
//! analysis tough". This example quantifies that: it builds many engines of
//! the pedestrian detector, measures each one's latency distribution, and
//! shows how much WCET margin an engineer must budget if engines are rebuilt
//! in the field versus pinned to one audited plan.
//!
//! ```sh
//! cargo run --release --example adas_pipeline
//! ```

use trtsim::models::ModelId;
use trtsim::util::stats::Summary;
use trtsim::{Builder, BuilderConfig, DeviceSpec, EngineError, ExecutionContext, TimingOptions};

fn main() -> Result<(), EngineError> {
    let device = DeviceSpec::xavier_agx();
    let network = ModelId::Pednet.descriptor();
    let opts = TimingOptions::default()
        .without_engine_upload()
        .with_host_glue_us(ModelId::Pednet.info().host_glue_us);

    // Rebuild the engine many times, as a fleet of vehicles each building
    // its own engine would.
    let mut per_engine_means = Vec::new();
    let mut all_runs = Vec::new();
    for build in 0..12u64 {
        let engine = Builder::new(
            device.clone(),
            BuilderConfig::default().with_build_seed(0xADA5 + build),
        )
        .build(&network)?;
        let ctx = ExecutionContext::new(&engine, device.clone());
        let runs = ctx.measure_latency(&opts, 30, build);
        let summary = Summary::from_samples(&runs);
        println!(
            "engine {build:>2}: mean {:>7.2} ms  p95 {:>7.2} ms  ({} kernels)",
            summary.mean / 1000.0,
            summary.p95 / 1000.0,
            engine.launch_count(),
        );
        per_engine_means.push(summary.mean);
        all_runs.extend(runs);
    }

    let fleet = Summary::from_samples(&all_runs);
    let single = Summary::from_samples(&per_engine_means[..1]);
    let spread = Summary::from_samples(&per_engine_means);
    println!();
    println!(
        "fleet WCET budget (rebuild in the field): p95 {:.2} ms, max {:.2} ms",
        fleet.p95 / 1000.0,
        fleet.max / 1000.0
    );
    println!(
        "pinned-plan WCET budget (one audited engine): {:.2} ms",
        single.mean / 1000.0
    );
    println!(
        "build-to-build mean-latency spread: {:.2} ms ({:.1}% of the fastest)",
        (spread.max - spread.min) / 1000.0,
        100.0 * (spread.max - spread.min) / spread.min
    );
    println!();
    println!("mitigation (paper §VI-A): serialize ONE engine and deploy that exact");
    println!("plan to every vehicle — outputs and latencies then match everywhere.");
    Ok(())
}
