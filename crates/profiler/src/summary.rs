//! nvprof summary-mode aggregation.

use std::collections::BTreeMap;

use trtsim_gpu::timeline::{CopyKind, GpuTimeline};

/// Aggregate statistics for one kernel symbol.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelSummary {
    /// Kernel symbol.
    pub name: String,
    /// Invocation count.
    pub calls: usize,
    /// Total busy time, µs.
    pub total_us: f64,
    /// Mean per-call time, µs.
    pub avg_us: f64,
    /// Fastest call, µs.
    pub min_us: f64,
    /// Slowest call, µs.
    pub max_us: f64,
}

/// Aggregate statistics for one copy direction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemcpySummary {
    /// Direction.
    pub kind: CopyKind,
    /// Number of copies.
    pub calls: usize,
    /// Total time, µs.
    pub total_us: f64,
    /// Total bytes moved.
    pub total_bytes: u64,
}

/// The whole summary: kernels sorted by descending total time, plus copies.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileSummary {
    /// Per-kernel aggregates, heaviest first.
    pub kernels: Vec<KernelSummary>,
    /// Copy aggregates (H2D, then D2H, when present).
    pub memcpys: Vec<MemcpySummary>,
    /// Total GPU busy time, µs.
    pub gpu_total_us: f64,
}

impl ProfileSummary {
    /// Total time attributed to `cudaMemcpyHostToDevice`, µs — the quantity
    /// the paper's Table X subtracts out.
    pub fn h2d_total_us(&self) -> f64 {
        self.memcpys
            .iter()
            .filter(|m| m.kind == CopyKind::HostToDevice)
            .map(|m| m.total_us)
            .sum()
    }

    /// Look up one kernel's aggregate by symbol.
    pub fn kernel(&self, name: &str) -> Option<&KernelSummary> {
        self.kernels.iter().find(|k| k.name == name)
    }
}

/// Summarizes a finished timeline (nvprof summary mode).
pub fn summarize(timeline: &GpuTimeline) -> ProfileSummary {
    let mut by_name: BTreeMap<&str, KernelSummary> = BTreeMap::new();
    for k in timeline.kernels() {
        let entry = by_name.entry(&k.name).or_insert_with(|| KernelSummary {
            name: k.name.clone(),
            calls: 0,
            total_us: 0.0,
            avg_us: 0.0,
            min_us: f64::INFINITY,
            max_us: 0.0,
        });
        entry.calls += 1;
        entry.total_us += k.duration_us;
        entry.min_us = entry.min_us.min(k.duration_us);
        entry.max_us = entry.max_us.max(k.duration_us);
    }
    let mut kernels: Vec<KernelSummary> = by_name
        .into_values()
        .map(|mut k| {
            k.avg_us = k.total_us / k.calls as f64;
            k
        })
        .collect();
    kernels.sort_by(|a, b| b.total_us.total_cmp(&a.total_us));

    let mut memcpys: Vec<MemcpySummary> = Vec::new();
    for kind in [CopyKind::HostToDevice, CopyKind::DeviceToHost] {
        let records: Vec<_> = timeline
            .memcpys()
            .iter()
            .filter(|m| m.kind == kind)
            .collect();
        if records.is_empty() {
            continue;
        }
        memcpys.push(MemcpySummary {
            kind,
            calls: records.len(),
            total_us: records.iter().map(|m| m.duration_us).sum(),
            total_bytes: records.iter().map(|m| m.bytes).sum(),
        });
    }
    let gpu_total_us = kernels.iter().map(|k| k.total_us).sum();
    ProfileSummary {
        kernels,
        memcpys,
        gpu_total_us,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trtsim_gpu::device::DeviceSpec;
    use trtsim_gpu::kernel::{KernelDesc, Precision};

    fn timeline() -> GpuTimeline {
        let mut tl = GpuTimeline::new(DeviceSpec::xavier_nx());
        let s = tl.create_stream();
        tl.enqueue_h2d(s, 1 << 20);
        let big = KernelDesc::new("big_kernel")
            .grid(48, 256)
            .flops(500_000_000)
            .precision(Precision::Fp16, true);
        let small = KernelDesc::new("small_kernel")
            .grid(6, 128)
            .flops(1_000_000);
        tl.enqueue_kernel(s, &big);
        tl.enqueue_kernel(s, &small);
        tl.enqueue_kernel(s, &big);
        tl.enqueue_d2h(s, 4096);
        tl
    }

    #[test]
    fn kernels_aggregate_by_name() {
        let s = summarize(&timeline());
        assert_eq!(s.kernels.len(), 2);
        assert_eq!(s.kernels[0].name, "big_kernel"); // heaviest first
        assert_eq!(s.kernels[0].calls, 2);
        assert!(s.kernels[0].total_us > s.kernels[1].total_us);
        assert!((s.kernels[0].avg_us - s.kernels[0].total_us / 2.0).abs() < 1e-9);
    }

    #[test]
    fn memcpys_split_by_direction() {
        let s = summarize(&timeline());
        assert_eq!(s.memcpys.len(), 2);
        assert!(s.h2d_total_us() > 0.0);
        assert_eq!(s.memcpys[0].kind, CopyKind::HostToDevice);
        assert_eq!(s.memcpys[0].total_bytes, 1 << 20);
    }

    #[test]
    fn lookup_by_name() {
        let s = summarize(&timeline());
        assert!(s.kernel("big_kernel").is_some());
        assert!(s.kernel("missing").is_none());
    }

    #[test]
    fn empty_timeline_summarizes_empty() {
        let tl = GpuTimeline::new(DeviceSpec::xavier_nx());
        let s = summarize(&tl);
        assert!(s.kernels.is_empty());
        assert!(s.memcpys.is_empty());
        assert_eq!(s.gpu_total_us, 0.0);
    }
}
