//! Bridges post-hoc trace analysis into the live metric registry.
//!
//! The trace subsystem (chrome-trace export, [`crate::anomaly`] detectors)
//! works on captured [`GpuTimeline`]s after the fact; the telemetry layer
//! watches counters live. This module joins the two: publishing a timeline
//! or an anomaly report folds its totals into [`Registry::global`] (or a
//! caller-supplied registry), so one `/metrics` scrape shows "how many
//! anomalies has this process seen" next to the serving counters — the
//! continuous-counter view the Jetson profiling literature argues makes
//! concurrency anomalies legible.
//!
//! Counters only, and strictly additive: publishing the same report twice
//! counts it twice. Callers own the once-per-run discipline (the repro
//! harnesses publish at the end of each serving run).

use std::collections::BTreeMap;

use trtsim_gpu::timeline::GpuTimeline;
use trtsim_metrics::Registry;

use crate::anomaly::AnomalyReport;
use crate::chrome_trace::OverlaySpan;

/// Folds an [`AnomalyReport`]'s finding counts into `registry` as
/// `trtsim_anomaly_total{kind="h2d_outlier"|"kernel_slowdown"}`.
pub fn publish_anomalies(registry: &Registry, report: &AnomalyReport) {
    let help = "Trace anomalies detected, by kind";
    registry
        .counter("trtsim_anomaly_total", help, &[("kind", "h2d_outlier")])
        .add(report.h2d_outliers.len() as u64);
    registry
        .counter("trtsim_anomaly_total", help, &[("kind", "kernel_slowdown")])
        .add(report.kernel_slowdowns.len() as u64);
}

/// Folds a timeline's span population into `registry`:
/// `trtsim_trace_spans_total{kind}` (span counts) and
/// `trtsim_trace_span_us_total{kind}` (busy microseconds, rounded), for
/// `kind` in `kernel` / `memcpy` / `host`.
pub fn publish_timeline(registry: &Registry, timeline: &GpuTimeline) {
    let spans_help = "Timeline spans published, by kind";
    let us_help = "Total span busy time published, microseconds by kind";
    let groups: [(&str, usize, f64); 3] = [
        (
            "kernel",
            timeline.kernels().len(),
            timeline.kernels().iter().map(|k| k.duration_us).sum(),
        ),
        (
            "memcpy",
            timeline.memcpys().len(),
            timeline.memcpys().iter().map(|c| c.duration_us).sum(),
        ),
        (
            "host",
            timeline.host_spans().len(),
            timeline.host_spans().iter().map(|h| h.duration_us).sum(),
        ),
    ];
    for (kind, count, total_us) in groups {
        registry
            .counter("trtsim_trace_spans_total", spans_help, &[("kind", kind)])
            .add(count as u64);
        registry
            .counter("trtsim_trace_span_us_total", us_help, &[("kind", kind)])
            .add(total_us.round() as u64);
    }
}

/// Folds overlay spans (e.g. request-phase spans from the serving layer's
/// flight recorder) into the same two families as [`publish_timeline`],
/// grouped by each span's category: `trtsim_trace_spans_total{kind=<cat>}`
/// and `trtsim_trace_span_us_total{kind=<cat>}`.
pub fn publish_overlay_spans(registry: &Registry, spans: &[OverlaySpan]) {
    let spans_help = "Timeline spans published, by kind";
    let us_help = "Total span busy time published, microseconds by kind";
    let mut by_cat: BTreeMap<&str, (u64, f64)> = BTreeMap::new();
    for span in spans {
        let entry = by_cat.entry(span.cat.as_str()).or_insert((0, 0.0));
        entry.0 += 1;
        entry.1 += span.duration_us;
    }
    for (cat, (count, total_us)) in by_cat {
        registry
            .counter("trtsim_trace_spans_total", spans_help, &[("kind", cat)])
            .add(count);
        registry
            .counter("trtsim_trace_span_us_total", us_help, &[("kind", cat)])
            .add(total_us.round() as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::anomaly::{detect, DetectorConfig};
    use trtsim_gpu::device::DeviceSpec;
    use trtsim_gpu::kernel::{KernelDesc, Precision};

    fn timeline_with_work() -> GpuTimeline {
        let mut tl = GpuTimeline::new(DeviceSpec::xavier_nx());
        let s = tl.create_stream();
        tl.enqueue_h2d(s, 1 << 20);
        for _ in 0..3 {
            tl.enqueue_kernel(
                s,
                &KernelDesc::new("k")
                    .grid(48, 128)
                    .flops(100_000_000)
                    .precision(Precision::Fp16, true),
            );
        }
        tl.host_span(s, "glue", 25.0);
        tl
    }

    #[test]
    fn timeline_publish_counts_every_span_kind() {
        let reg = Registry::new();
        let tl = timeline_with_work();
        publish_timeline(&reg, &tl);
        let kernels = reg.counter("trtsim_trace_spans_total", "", &[("kind", "kernel")]);
        let copies = reg.counter("trtsim_trace_spans_total", "", &[("kind", "memcpy")]);
        let host = reg.counter("trtsim_trace_spans_total", "", &[("kind", "host")]);
        assert_eq!(
            (kernels.get(), copies.get(), host.get()),
            (3, 1, 1),
            "span counts must mirror the timeline"
        );
        let kernel_us = reg.counter("trtsim_trace_span_us_total", "", &[("kind", "kernel")]);
        assert!(kernel_us.get() > 0);
        // Additive on repeat publish.
        publish_timeline(&reg, &tl);
        assert_eq!(kernels.get(), 6);
    }

    #[test]
    fn overlay_publish_groups_by_category() {
        let reg = Registry::new();
        let spans = vec![
            OverlaySpan {
                name: "execute f=1".into(),
                cat: "request".into(),
                stream: 0,
                seq: 0,
                start_us: 0.0,
                duration_us: 100.0,
                args: "{}".into(),
            },
            OverlaySpan {
                name: "execute f=2".into(),
                cat: "request".into(),
                stream: 1,
                seq: 0,
                start_us: 50.0,
                duration_us: 150.4,
                args: "{}".into(),
            },
        ];
        publish_overlay_spans(&reg, &spans);
        let count = reg.counter("trtsim_trace_spans_total", "", &[("kind", "request")]);
        let us = reg.counter("trtsim_trace_span_us_total", "", &[("kind", "request")]);
        assert_eq!((count.get(), us.get()), (2, 250));
    }

    #[test]
    fn anomaly_publish_matches_report_sizes() {
        let reg = Registry::new();
        let tl = timeline_with_work();
        let report = detect(&tl, &DetectorConfig::default());
        publish_anomalies(&reg, &report);
        let h2d = reg.counter("trtsim_anomaly_total", "", &[("kind", "h2d_outlier")]);
        assert_eq!(h2d.get(), report.h2d_outliers.len() as u64);
    }
}
