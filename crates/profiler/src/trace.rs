//! nvprof GPU-trace mode: the chronological launch listing.
//!
//! "GPU trace mode provides the list of all kernel launches" (§II-C). The
//! paper reads per-invocation runtimes out of this view (its Table XIII
//! shows the same kernel taking different times per invocation).

use trtsim_gpu::timeline::GpuTimeline;

/// One chronological trace entry.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEntry {
    /// Start time, µs.
    pub start_us: f64,
    /// Duration, µs.
    pub duration_us: f64,
    /// Stream id.
    pub stream: usize,
    /// Per-stream span sequence number (stable span id with `stream`).
    pub seq: u64,
    /// Grid size.
    pub grid_blocks: u64,
    /// Kernel symbol.
    pub name: String,
}

/// Extracts the chronological kernel trace from a finished timeline.
pub fn gpu_trace(timeline: &GpuTimeline) -> Vec<TraceEntry> {
    let mut entries: Vec<TraceEntry> = timeline
        .kernels()
        .iter()
        .map(|k| TraceEntry {
            start_us: k.start_us,
            duration_us: k.duration_us,
            stream: k.stream,
            seq: k.seq,
            grid_blocks: k.grid_blocks,
            name: k.name.clone(),
        })
        .collect();
    // total_cmp: a NaN start time (however it got into a timeline) must not
    // panic the profiler mid-sort; it sorts to the end instead.
    entries.sort_by(|a, b| a.start_us.total_cmp(&b.start_us));
    entries
}

/// Per-invocation durations of one kernel symbol, in launch order — the
/// paper's Table XIII columns.
pub fn invocation_durations(timeline: &GpuTimeline, kernel: &str) -> Vec<f64> {
    gpu_trace(timeline)
        .into_iter()
        .filter(|e| e.name == kernel)
        .map(|e| e.duration_us)
        .collect()
}

/// Renders the trace in nvprof's GPU-trace layout.
pub fn format_trace(timeline: &GpuTimeline) -> String {
    let mut out = String::from("==PROF== Profiling result (GPU trace):\n");
    out.push_str(&format!(
        "{:>12}  {:>12}  {:>6}  {:>8}  Name\n",
        "Start", "Duration", "Strm", "Grid"
    ));
    for e in gpu_trace(timeline) {
        out.push_str(&format!(
            "{:>10.1}us  {:>10.1}us  {:>6}  {:>8}  {}\n",
            e.start_us, e.duration_us, e.stream, e.grid_blocks, e.name
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use trtsim_gpu::device::DeviceSpec;
    use trtsim_gpu::kernel::KernelDesc;

    fn timeline() -> GpuTimeline {
        let mut tl = GpuTimeline::new(DeviceSpec::xavier_nx());
        let s0 = tl.create_stream();
        let s1 = tl.create_stream();
        tl.enqueue_kernel(s0, &KernelDesc::new("a").grid(6, 128).flops(1_000_000));
        tl.enqueue_kernel(s1, &KernelDesc::new("b").grid(12, 128).flops(2_000_000));
        tl.enqueue_kernel(s0, &KernelDesc::new("a").grid(6, 128).flops(3_000_000));
        tl
    }

    #[test]
    fn trace_is_chronological() {
        let trace = gpu_trace(&timeline());
        assert_eq!(trace.len(), 3);
        for pair in trace.windows(2) {
            assert!(pair[0].start_us <= pair[1].start_us);
        }
    }

    #[test]
    fn invocation_durations_per_symbol() {
        let tl = timeline();
        let durs = invocation_durations(&tl, "a");
        assert_eq!(durs.len(), 2);
        assert!(durs[1] > durs[0], "second call has 3x the flops");
        assert!(invocation_durations(&tl, "missing").is_empty());
    }

    #[test]
    fn format_has_header_and_rows() {
        let text = format_trace(&timeline());
        assert!(text.contains("GPU trace"));
        assert_eq!(text.lines().count(), 5);
    }
}
