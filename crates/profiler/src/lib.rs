//! An nvprof-like profiler and trace subsystem over simulated timelines
//! (paper §II-C, §V).
//!
//! The real study drives nvprof in two modes: *summary mode* ("overview of
//! GPU kernels and memory copies") and *GPU-trace mode* ("list of all kernel
//! launches"). This crate reproduces both over a
//! [`trtsim_gpu::timeline::GpuTimeline`], including the aggregation the
//! paper's Tables X–XIII are built from. Attaching the profiler inflates
//! runtimes (see [`trtsim_gpu::timeline::ProfilingOverhead`]), which is the
//! Table VIII vs Table IX difference.
//!
//! Beyond the nvprof views, two observability modules make the paper's §V
//! anomaly anatomy first-class:
//!
//! * [`chrome_trace`] serializes any timeline — kernels, memcpys, host-glue
//!   spans, one track per stream — to chrome://tracing JSON;
//! * [`anomaly`] detects the three anomaly classes the paper reads out of
//!   its traces: H2D copy outliers, per-invocation kernel slowdowns, and
//!   kernel-set drift between engine builds.

#![warn(missing_docs)]

pub mod anomaly;
pub mod chrome_trace;
pub mod report;
pub mod summary;
pub mod telemetry_bridge;
pub mod trace;

pub use anomaly::{
    detect, format_report, h2d_outliers, kernel_set_diff, kernel_slowdowns, AnomalyReport,
    DetectorConfig, H2dOutlier, KernelSetDiff, KernelSlowdown,
};
pub use chrome_trace::{chrome_trace_json, chrome_trace_json_multi, write_chrome_trace};
pub use report::format_summary;
pub use summary::{summarize, KernelSummary, MemcpySummary, ProfileSummary};
pub use telemetry_bridge::{publish_anomalies, publish_timeline};
pub use trace::{format_trace, gpu_trace, invocation_durations, TraceEntry};
