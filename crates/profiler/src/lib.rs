//! An nvprof-like profiler over simulated timelines (paper §II-C).
//!
//! The real study drives nvprof in two modes: *summary mode* ("overview of
//! GPU kernels and memory copies") and *GPU-trace mode* ("list of all kernel
//! launches"). This crate reproduces both over a
//! [`trtsim_gpu::timeline::GpuTimeline`], including the aggregation the
//! paper's Tables X–XIII are built from. Attaching the profiler inflates
//! runtimes (see [`trtsim_gpu::timeline::ProfilingOverhead`]), which is the
//! Table VIII vs Table IX difference.

#![warn(missing_docs)]

pub mod report;
pub mod summary;
pub mod trace;

pub use report::format_summary;
pub use summary::{summarize, KernelSummary, MemcpySummary, ProfileSummary};
pub use trace::{format_trace, gpu_trace, invocation_durations, TraceEntry};
