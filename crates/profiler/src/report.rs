//! Text rendering of profiles, nvprof-style.

use crate::summary::ProfileSummary;

/// Renders a summary in nvprof's summary-mode layout.
///
/// ```text
///  Time(%)  Time      Calls  Avg       Name
///  62.10%   1234.5us  9      137.2us   trt_volta_h884cudnn_...
/// ```
pub fn format_summary(summary: &ProfileSummary) -> String {
    let mut out = String::from("==PROF== Profiling result (summary mode):\n");
    out.push_str(&format!(
        "{:>8}  {:>12}  {:>6}  {:>12}  Name\n",
        "Time(%)", "Time", "Calls", "Avg"
    ));
    let total: f64 = summary.gpu_total_us + summary.memcpys.iter().map(|m| m.total_us).sum::<f64>();
    for k in &summary.kernels {
        out.push_str(&format!(
            "{:>7.2}%  {:>10.1}us  {:>6}  {:>10.1}us  {}\n",
            100.0 * k.total_us / total.max(1e-12),
            k.total_us,
            k.calls,
            k.avg_us,
            k.name
        ));
    }
    for m in &summary.memcpys {
        let name = match m.kind {
            trtsim_gpu::timeline::CopyKind::HostToDevice => "[CUDA memcpy HtoD]",
            trtsim_gpu::timeline::CopyKind::DeviceToHost => "[CUDA memcpy DtoH]",
        };
        out.push_str(&format!(
            "{:>7.2}%  {:>10.1}us  {:>6}  {:>10.1}us  {}\n",
            100.0 * m.total_us / total.max(1e-12),
            m.total_us,
            m.calls,
            m.total_us / m.calls as f64,
            name
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::summary::summarize;
    use trtsim_gpu::device::DeviceSpec;
    use trtsim_gpu::kernel::KernelDesc;
    use trtsim_gpu::timeline::GpuTimeline;

    #[test]
    fn report_mentions_kernels_and_copies() {
        let mut tl = GpuTimeline::new(DeviceSpec::xavier_nx());
        let s = tl.create_stream();
        tl.enqueue_h2d(s, 1024);
        tl.enqueue_kernel(s, &KernelDesc::new("my_kernel").grid(6, 128).flops(1000));
        let text = format_summary(&summarize(&tl));
        assert!(text.contains("my_kernel"));
        assert!(text.contains("[CUDA memcpy HtoD]"));
        assert!(text.contains("Time(%)"));
    }

    #[test]
    fn empty_profile_renders_header_only() {
        let tl = GpuTimeline::new(DeviceSpec::xavier_nx());
        let text = format_summary(&summarize(&tl));
        assert!(text.contains("summary mode"));
        assert_eq!(text.lines().count(), 2);
    }
}
