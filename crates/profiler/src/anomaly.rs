//! Detection of the paper's three latency-anomaly classes (§V).
//!
//! The study attributes every latency surprise it finds to one of three
//! trace-level signatures:
//!
//! 1. **H2D copy outliers** — one `cudaMemcpyHostToDevice` (the per-run
//!    engine upload) dwarfing the per-frame input copies; subtracting it
//!    flips the NX/AGX ordering (Table X).
//! 2. **Per-invocation kernel slowdowns** — the same kernel symbol taking
//!    different times per invocation within one run (Table XIII's columns),
//!    or running slower than its own typical time on another platform
//!    (Table XI).
//! 3. **Kernel-set drift between builds** — two engines of the same model
//!    selecting different kernels, or the same kernel a different number of
//!    times ("9, 8 and 6 calls", Table XII/XIII).
//!
//! Each detector takes a [`DetectorConfig`] with the z-score/ratio
//! thresholds spelled out, returns plain data carrying span ids
//! (`stream`/`seq`) so findings join back to timeline records and
//! chrome-trace spans, and never panics — empty timelines yield empty
//! reports.

use std::collections::BTreeMap;

use trtsim_gpu::timeline::{CopyKind, GpuTimeline, SpanSeq, StreamId};

/// Thresholds for the three anomaly detectors.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DetectorConfig {
    /// Robust z-score (distance from the median in MAD units) above which an
    /// H2D copy is an outlier. 3.5 is the conventional modified-z cutoff.
    pub h2d_z_threshold: f64,
    /// Fallback ratio versus the median H2D duration used when the copy
    /// population has zero spread (MAD = 0, e.g. identical per-frame input
    /// copies): any copy slower than `ratio × median` is then an outlier.
    pub h2d_ratio_threshold: f64,
    /// A kernel invocation counts as slowed down when it takes at least this
    /// multiple of its symbol's median per-invocation time.
    pub slowdown_ratio: f64,
    /// Minimum invocations of a symbol before slowdowns are judged (a median
    /// over one or two calls is noise, as the paper's ten-run protocol
    /// implies).
    pub min_invocations: usize,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        Self {
            h2d_z_threshold: 3.5,
            h2d_ratio_threshold: 4.0,
            slowdown_ratio: 1.25,
            min_invocations: 3,
        }
    }
}

impl DetectorConfig {
    /// Sets the robust z-score cutoff for H2D outliers.
    pub fn with_h2d_z_threshold(mut self, z: f64) -> Self {
        self.h2d_z_threshold = z;
        self
    }

    /// Sets the zero-spread fallback ratio for H2D outliers.
    pub fn with_h2d_ratio_threshold(mut self, ratio: f64) -> Self {
        self.h2d_ratio_threshold = ratio;
        self
    }

    /// Sets the per-invocation slowdown ratio.
    pub fn with_slowdown_ratio(mut self, ratio: f64) -> Self {
        self.slowdown_ratio = ratio;
        self
    }

    /// Sets the minimum invocation count for slowdown judgement.
    pub fn with_min_invocations(mut self, n: usize) -> Self {
        self.min_invocations = n;
        self
    }
}

/// One H2D copy flagged as anomalous (anomaly class 1).
#[derive(Debug, Clone, PartialEq)]
pub struct H2dOutlier {
    /// Stream the copy ran on.
    pub stream: StreamId,
    /// Span id on that stream.
    pub seq: SpanSeq,
    /// Bytes moved.
    pub bytes: u64,
    /// Copy duration, µs.
    pub duration_us: f64,
    /// Median H2D duration in the same timeline, µs.
    pub median_us: f64,
    /// Robust z-score versus that median (infinite when the rest of the
    /// population has zero spread).
    pub z_score: f64,
}

/// One kernel invocation flagged as slowed down (anomaly class 2).
#[derive(Debug, Clone, PartialEq)]
pub struct KernelSlowdown {
    /// Kernel symbol.
    pub name: String,
    /// Stream the invocation ran on.
    pub stream: StreamId,
    /// Span id on that stream.
    pub seq: SpanSeq,
    /// This invocation's duration, µs.
    pub duration_us: f64,
    /// The symbol's median per-invocation duration, µs.
    pub median_us: f64,
    /// `duration_us / median_us`.
    pub ratio: f64,
}

/// Kernel-set drift between two runs/builds (anomaly class 3).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct KernelSetDiff {
    /// Symbols invoked only by the first timeline.
    pub only_in_a: Vec<String>,
    /// Symbols invoked only by the second timeline.
    pub only_in_b: Vec<String>,
    /// Symbols both invoke, with differing counts: `(name, calls_a, calls_b)`.
    pub count_changes: Vec<(String, usize, usize)>,
}

impl KernelSetDiff {
    /// Whether the two kernel sets agree exactly (names and counts).
    pub fn is_empty(&self) -> bool {
        self.only_in_a.is_empty() && self.only_in_b.is_empty() && self.count_changes.is_empty()
    }
}

/// All three detectors over one timeline (the set diff needs a second
/// timeline; see [`kernel_set_diff`]).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct AnomalyReport {
    /// H2D copies flagged as outliers.
    pub h2d_outliers: Vec<H2dOutlier>,
    /// Kernel invocations flagged as slowdowns.
    pub kernel_slowdowns: Vec<KernelSlowdown>,
}

impl AnomalyReport {
    /// Whether nothing was flagged.
    pub fn is_empty(&self) -> bool {
        self.h2d_outliers.is_empty() && self.kernel_slowdowns.is_empty()
    }
}

/// Runs [`h2d_outliers`] and [`kernel_slowdowns`] over one timeline.
pub fn detect(timeline: &GpuTimeline, config: &DetectorConfig) -> AnomalyReport {
    AnomalyReport {
        h2d_outliers: h2d_outliers(timeline, config),
        kernel_slowdowns: kernel_slowdowns(timeline, config),
    }
}

/// Flags H2D copies that are outliers against the timeline's other H2D
/// copies — the engine-upload spike the paper's Table X subtracts out.
///
/// The score is a modified z-score: distance from the median in units of
/// `1.4826 × MAD`. When the MAD is zero (all other copies identical — the
/// common per-frame-input case), any copy slower than
/// [`DetectorConfig::h2d_ratio_threshold`] × median is flagged with an
/// infinite z-score. Fewer than three H2D copies yield no findings: there is
/// no population to be an outlier of.
pub fn h2d_outliers(timeline: &GpuTimeline, config: &DetectorConfig) -> Vec<H2dOutlier> {
    let copies: Vec<_> = timeline
        .memcpys()
        .iter()
        .filter(|m| m.kind == CopyKind::HostToDevice && !m.duration_us.is_nan())
        .collect();
    if copies.len() < 3 {
        return Vec::new();
    }
    let durations: Vec<f64> = copies.iter().map(|m| m.duration_us).collect();
    let med = median(&durations);
    let deviations: Vec<f64> = durations.iter().map(|d| (d - med).abs()).collect();
    let mad = median(&deviations);
    let spread = 1.4826 * mad;
    let mut findings: Vec<H2dOutlier> = copies
        .into_iter()
        .filter_map(|m| {
            let z = if spread > 0.0 {
                (m.duration_us - med) / spread
            } else if med > 0.0 && m.duration_us >= config.h2d_ratio_threshold * med {
                f64::INFINITY
            } else {
                0.0
            };
            (z >= config.h2d_z_threshold).then_some(H2dOutlier {
                stream: m.stream,
                seq: m.seq,
                bytes: m.bytes,
                duration_us: m.duration_us,
                median_us: med,
                z_score: z,
            })
        })
        .collect();
    // Deterministic span order regardless of which thread enqueued first.
    findings.sort_by_key(|o| (o.stream, o.seq));
    findings
}

/// Flags kernel invocations that run at least
/// [`DetectorConfig::slowdown_ratio`] × their own symbol's median
/// per-invocation time — the paper's Table XIII spread, localized to the
/// specific launch (span id included) rather than a per-symbol average.
pub fn kernel_slowdowns(timeline: &GpuTimeline, config: &DetectorConfig) -> Vec<KernelSlowdown> {
    let mut by_symbol: BTreeMap<&str, Vec<f64>> = BTreeMap::new();
    for k in timeline.kernels() {
        if !k.duration_us.is_nan() {
            by_symbol.entry(&k.name).or_default().push(k.duration_us);
        }
    }
    let medians: BTreeMap<&str, f64> = by_symbol
        .into_iter()
        .filter(|(_, durs)| durs.len() >= config.min_invocations)
        .map(|(name, durs)| (name, median(&durs)))
        .collect();
    let mut findings: Vec<KernelSlowdown> = timeline
        .kernels()
        .iter()
        .filter_map(|k| {
            let &med = medians.get(k.name.as_str())?;
            if med <= 0.0 || k.duration_us < config.slowdown_ratio * med {
                return None;
            }
            Some(KernelSlowdown {
                name: k.name.clone(),
                stream: k.stream,
                seq: k.seq,
                duration_us: k.duration_us,
                median_us: med,
                ratio: k.duration_us / med,
            })
        })
        .collect();
    // Records land in the timeline in wall-clock lock-acquisition order,
    // which races across streams; span order is the deterministic one.
    findings.sort_by_key(|s| (s.stream, s.seq));
    findings
}

/// Diffs the kernel sets of two timelines — builds of the same model, or the
/// same engine on two platforms. Symbol lists are sorted; an identical pair
/// of timelines yields an empty diff.
pub fn kernel_set_diff(a: &GpuTimeline, b: &GpuTimeline) -> KernelSetDiff {
    let count = |tl: &GpuTimeline| -> BTreeMap<String, usize> {
        let mut m = BTreeMap::new();
        for k in tl.kernels() {
            *m.entry(k.name.clone()).or_insert(0) += 1;
        }
        m
    };
    let ca = count(a);
    let cb = count(b);
    let mut diff = KernelSetDiff::default();
    for (name, &n_a) in &ca {
        match cb.get(name) {
            None => diff.only_in_a.push(name.clone()),
            Some(&n_b) if n_b != n_a => diff.count_changes.push((name.clone(), n_a, n_b)),
            Some(_) => {}
        }
    }
    for name in cb.keys() {
        if !ca.contains_key(name) {
            diff.only_in_b.push(name.clone());
        }
    }
    diff
}

/// Renders a report the way the experiment harnesses print tables.
pub fn format_report(report: &AnomalyReport) -> String {
    let mut out = String::from("==ANOMALY== trace findings:\n");
    if report.is_empty() {
        out.push_str("  (none)\n");
        return out;
    }
    for o in &report.h2d_outliers {
        out.push_str(&format!(
            "  H2D outlier: stream {} seq {} — {} bytes in {:.1}us (median {:.1}us, z {:.1})\n",
            o.stream, o.seq, o.bytes, o.duration_us, o.median_us, o.z_score
        ));
    }
    for s in &report.kernel_slowdowns {
        out.push_str(&format!(
            "  kernel slowdown: {} stream {} seq {} — {:.1}us vs median {:.1}us ({:.2}x)\n",
            s.name, s.stream, s.seq, s.duration_us, s.median_us, s.ratio
        ));
    }
    out
}

/// Median of an unsorted, non-empty, NaN-free slice (0 when empty).
fn median(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(f64::total_cmp);
    let mid = sorted.len() / 2;
    if sorted.len() % 2 == 1 {
        sorted[mid]
    } else {
        0.5 * (sorted[mid - 1] + sorted[mid])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trtsim_gpu::device::DeviceSpec;
    use trtsim_gpu::kernel::KernelDesc;

    fn device() -> DeviceSpec {
        DeviceSpec::xavier_nx()
    }

    #[test]
    fn engine_upload_spike_is_flagged() {
        let mut tl = GpuTimeline::new(device());
        let s = tl.create_stream();
        tl.enqueue_h2d(s, 60 << 20); // engine upload: tens of MB
        for _ in 0..8 {
            tl.enqueue_h2d(s, 600 * 1024); // per-frame inputs
        }
        let found = h2d_outliers(&tl, &DetectorConfig::default());
        assert_eq!(found.len(), 1, "{found:?}");
        assert_eq!(found[0].bytes, 60 << 20);
        assert_eq!(found[0].seq, 0);
        assert!(found[0].z_score >= 3.5);
    }

    #[test]
    fn uniform_copies_have_no_outliers() {
        let mut tl = GpuTimeline::new(device());
        let s = tl.create_stream();
        for _ in 0..6 {
            tl.enqueue_h2d(s, 1 << 20);
        }
        assert!(h2d_outliers(&tl, &DetectorConfig::default()).is_empty());
    }

    #[test]
    fn too_small_population_yields_nothing() {
        let mut tl = GpuTimeline::new(device());
        let s = tl.create_stream();
        tl.enqueue_h2d(s, 60 << 20);
        tl.enqueue_h2d(s, 1024);
        assert!(h2d_outliers(&tl, &DetectorConfig::default()).is_empty());
    }

    #[test]
    fn slow_invocation_of_a_symbol_is_flagged() {
        let mut tl = GpuTimeline::new(device());
        let s = tl.create_stream();
        let fast = KernelDesc::new("conv").grid(6, 128).flops(1_000_000);
        let slow = KernelDesc::new("conv").grid(6, 128).flops(10_000_000);
        for _ in 0..4 {
            tl.enqueue_kernel(s, &fast);
        }
        tl.enqueue_kernel(s, &slow);
        let found = kernel_slowdowns(&tl, &DetectorConfig::default());
        assert_eq!(found.len(), 1, "{found:?}");
        assert_eq!(found[0].name, "conv");
        assert_eq!(found[0].seq, 4);
        assert!(found[0].ratio > 1.25);
    }

    #[test]
    fn rare_symbols_are_not_judged() {
        let mut tl = GpuTimeline::new(device());
        let s = tl.create_stream();
        tl.enqueue_kernel(s, &KernelDesc::new("a").grid(6, 128).flops(1_000_000));
        tl.enqueue_kernel(s, &KernelDesc::new("a").grid(6, 128).flops(9_000_000));
        assert!(kernel_slowdowns(&tl, &DetectorConfig::default()).is_empty());
    }

    #[test]
    fn set_diff_sees_drift_and_count_changes() {
        let mk = |names: &[&str]| {
            let mut tl = GpuTimeline::new(device());
            let s = tl.create_stream();
            for &n in names {
                tl.enqueue_kernel(s, &KernelDesc::new(n).grid(6, 128).flops(1_000));
            }
            tl
        };
        let a = mk(&["winograd", "winograd", "gemm", "relu"]);
        let b = mk(&["winograd", "gemm", "fft"]);
        let diff = kernel_set_diff(&a, &b);
        assert_eq!(diff.only_in_a, vec!["relu".to_string()]);
        assert_eq!(diff.only_in_b, vec!["fft".to_string()]);
        assert_eq!(diff.count_changes, vec![("winograd".to_string(), 2, 1)]);
        assert!(!diff.is_empty());
        assert!(kernel_set_diff(&a, &a).is_empty());
    }

    #[test]
    fn empty_timeline_reports_empty() {
        let tl = GpuTimeline::new(device());
        let report = detect(&tl, &DetectorConfig::default());
        assert!(report.is_empty());
        assert!(format_report(&report).contains("(none)"));
    }

    #[test]
    fn report_formats_findings() {
        let mut tl = GpuTimeline::new(device());
        let s = tl.create_stream();
        tl.enqueue_h2d(s, 60 << 20);
        for _ in 0..8 {
            tl.enqueue_h2d(s, 600 * 1024);
        }
        let text = format_report(&detect(&tl, &DetectorConfig::default()));
        assert!(text.contains("H2D outlier"));
    }
}
