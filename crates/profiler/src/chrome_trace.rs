//! chrome://tracing (Trace Event Format) export of simulated timelines.
//!
//! nvprof's textual views answer "which kernel is slow"; the paper's §V
//! anomaly anatomy is read from the *visual* trace — where the H2D spike
//! sits, how streams interleave, which invocation of a symbol stretched.
//! This module serializes any [`GpuTimeline`] — including multi-stream
//! serving runs — to the JSON the Chrome trace viewer (`chrome://tracing`,
//! Perfetto's legacy loader) accepts:
//!
//! * one complete (`"ph": "X"`) event per kernel, memcpy, and host span;
//! * one track per stream (`tid` = stream id), named via `"M"` metadata
//!   events, so an N-worker serving run renders as N parallel lanes;
//! * categories `kernel` / `memcpy` / `host`, so each class can be toggled
//!   in the viewer;
//! * span ids (`stream`/`seq`) and per-record detail (grid, bytes,
//!   occupancy) in `args`, joining a visual span back to
//!   [`trtsim_gpu::timeline`] records and to serving-layer span attribution.
//!
//! The writer depends only on `std` (the workspace vendors no JSON crate):
//! it emits the format directly and escapes strings per RFC 8259.

use std::fmt::Write as _;
use std::io;
use std::path::Path;

use trtsim_gpu::timeline::{CopyKind, GpuTimeline};

/// Category label of kernel events.
pub const CAT_KERNEL: &str = "kernel";
/// Category label of memcpy events.
pub const CAT_MEMCPY: &str = "memcpy";
/// Category label of host-glue events.
pub const CAT_HOST: &str = "host";
/// Category label of request-phase overlay events (serving-layer traces).
pub const CAT_REQUEST: &str = "request";

/// A caller-supplied span overlaid on a timeline's chrome export — e.g. one
/// phase of a request trace, stitched onto the device timeline by the same
/// `(stream, seq)` span-id scheme the GPU records use. Overlay spans render
/// as ordinary complete events in the stream's lane, interleaved with
/// kernels/copies in deterministic span-id order.
#[derive(Debug, Clone, PartialEq)]
pub struct OverlaySpan {
    /// Event name (e.g. `"execute f=12 trace=4f2a…"`).
    pub name: String,
    /// Category label (e.g. [`CAT_REQUEST`]).
    pub cat: String,
    /// Stream (= `tid`) the span renders in.
    pub stream: usize,
    /// Span sequence number used for deterministic tie-breaking against the
    /// timeline's own records.
    pub seq: u64,
    /// Start on the simulated clock, µs.
    pub start_us: f64,
    /// Duration, µs.
    pub duration_us: f64,
    /// Pre-rendered JSON object for the event's `args` (must be valid JSON;
    /// `{}` when there is nothing to attach).
    pub args: String,
}

/// Serializes one timeline as a chrome://tracing JSON document.
///
/// `process_name` labels the trace's single process (`pid` 0) — typically
/// the device or run name. Events are sorted by start time, ties broken by
/// span id, so the document is byte-identical for a given timeline
/// regardless of which thread's records were appended first.
pub fn chrome_trace_json(timeline: &GpuTimeline, process_name: &str) -> String {
    chrome_trace_json_multi(&[(process_name, timeline)])
}

/// Serializes several timelines into one document, one process (`pid`) per
/// timeline — e.g. the same model's engines from different builds, side by
/// side.
pub fn chrome_trace_json_multi(timelines: &[(&str, &GpuTimeline)]) -> String {
    let with_overlays: Vec<(&str, &GpuTimeline, &[OverlaySpan])> = timelines
        .iter()
        .map(|&(name, tl)| (name, tl, &[] as &[OverlaySpan]))
        .collect();
    chrome_trace_json_multi_with_spans(&with_overlays)
}

/// [`chrome_trace_json_multi`] with caller-supplied overlay spans per
/// timeline — how the serving layer stitches request-phase spans onto the
/// device timelines that served them (joined by stream + span id).
pub fn chrome_trace_json_multi_with_spans(
    timelines: &[(&str, &GpuTimeline, &[OverlaySpan])],
) -> String {
    let mut events: Vec<String> = Vec::new();
    for (pid, (name, timeline, overlays)) in timelines.iter().enumerate() {
        events.push(metadata_event(pid, None, "process_name", name));
        let overlay_max = overlays.iter().map(|o| o.stream).max().unwrap_or(0);
        let streams = 1 + stream_count(timeline).max(overlay_max);
        for stream in 0..streams {
            let label = format!("stream {stream}");
            events.push(metadata_event(pid, Some(stream), "thread_name", &label));
        }
        let mut spans: Vec<(f64, usize, u64, String)> = Vec::new();
        for k in timeline.kernels() {
            let args = format!(
                "{{\"stream\":{},\"seq\":{},\"grid_blocks\":{},\"sm_occupancy\":{}}}",
                k.stream,
                k.seq,
                k.grid_blocks,
                json_f64(k.sm_occupancy)
            );
            spans.push((
                k.start_us,
                k.stream,
                k.seq,
                complete_event(
                    &k.name,
                    CAT_KERNEL,
                    k.start_us,
                    k.duration_us,
                    pid,
                    k.stream,
                    &args,
                ),
            ));
        }
        for m in timeline.memcpys() {
            let name = match m.kind {
                CopyKind::HostToDevice => "[CUDA memcpy HtoD]",
                CopyKind::DeviceToHost => "[CUDA memcpy DtoH]",
            };
            let args = format!(
                "{{\"stream\":{},\"seq\":{},\"bytes\":{}}}",
                m.stream, m.seq, m.bytes
            );
            spans.push((
                m.start_us,
                m.stream,
                m.seq,
                complete_event(
                    name,
                    CAT_MEMCPY,
                    m.start_us,
                    m.duration_us,
                    pid,
                    m.stream,
                    &args,
                ),
            ));
        }
        for h in timeline.host_spans() {
            let args = format!("{{\"stream\":{},\"seq\":{}}}", h.stream, h.seq);
            spans.push((
                h.start_us,
                h.stream,
                h.seq,
                complete_event(
                    &h.label,
                    CAT_HOST,
                    h.start_us,
                    h.duration_us,
                    pid,
                    h.stream,
                    &args,
                ),
            ));
        }
        for o in overlays.iter() {
            spans.push((
                o.start_us,
                o.stream,
                o.seq,
                complete_event(
                    &o.name,
                    &o.cat,
                    o.start_us,
                    o.duration_us,
                    pid,
                    o.stream,
                    &o.args,
                ),
            ));
        }
        // Ties on start time are real (streams overlap); break them by span
        // id so the document is identical run to run even though records
        // land in the timeline in racy lock-acquisition order.
        spans.sort_by(|a, b| {
            a.0.total_cmp(&b.0)
                .then_with(|| (a.1, a.2).cmp(&(b.1, b.2)))
        });
        events.extend(spans.into_iter().map(|(_, _, _, e)| e));
    }
    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(e);
    }
    out.push_str("]}");
    out
}

/// Writes [`chrome_trace_json`] output to `path`.
///
/// # Errors
///
/// Propagates the underlying filesystem error.
pub fn write_chrome_trace(
    path: impl AsRef<Path>,
    timeline: &GpuTimeline,
    process_name: &str,
) -> io::Result<()> {
    std::fs::write(path, chrome_trace_json(timeline, process_name))
}

/// Highest stream id any record refers to (0 when the timeline is empty).
fn stream_count(timeline: &GpuTimeline) -> usize {
    let kernels = timeline.kernels().iter().map(|k| k.stream);
    let copies = timeline.memcpys().iter().map(|m| m.stream);
    let hosts = timeline.host_spans().iter().map(|h| h.stream);
    kernels.chain(copies).chain(hosts).max().unwrap_or(0)
}

fn complete_event(
    name: &str,
    cat: &str,
    ts_us: f64,
    dur_us: f64,
    pid: usize,
    tid: usize,
    args: &str,
) -> String {
    format!(
        "{{\"name\":{},\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":{},\"tid\":{},\"args\":{}}}",
        json_string(name),
        cat,
        json_f64(ts_us),
        json_f64(dur_us),
        pid,
        tid,
        args
    )
}

fn metadata_event(pid: usize, tid: Option<usize>, kind: &str, name: &str) -> String {
    let tid = tid.map(|t| format!("\"tid\":{t},")).unwrap_or_default();
    format!(
        "{{\"name\":\"{}\",\"ph\":\"M\",\"pid\":{},{}\"args\":{{\"name\":{}}}}}",
        kind,
        pid,
        tid,
        json_string(name)
    )
}

/// JSON has no NaN/Infinity literals; clamp non-finite values to 0 so the
/// viewer still loads a trace containing a poisoned duration.
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        let mut s = String::new();
        // Timestamps are µs; three decimals keep ns resolution without
        // bloating the file with full f64 round-trips.
        let _ = write!(s, "{v:.3}");
        s
    } else {
        "0".to_string()
    }
}

/// RFC 8259 string escaping (quotes, backslash, control characters).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use trtsim_gpu::device::DeviceSpec;
    use trtsim_gpu::kernel::KernelDesc;

    fn timeline() -> GpuTimeline {
        let mut tl = GpuTimeline::new(DeviceSpec::xavier_nx());
        let s0 = tl.create_stream();
        let s1 = tl.create_stream();
        tl.enqueue_h2d(s0, 1 << 20);
        tl.enqueue_kernel(
            s0,
            &KernelDesc::new("conv\"odd\"").grid(6, 128).flops(1_000_000),
        );
        tl.host_span(s0, "host_glue", 100.0);
        tl.enqueue_kernel(s1, &KernelDesc::new("fc").grid(2, 64).flops(10_000));
        tl.enqueue_d2h(s1, 4096);
        tl
    }

    #[test]
    fn document_has_all_record_classes_and_tracks() {
        let json = chrome_trace_json(&timeline(), "xavier_nx");
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"cat\":\"kernel\""));
        assert!(json.contains("\"cat\":\"memcpy\""));
        assert!(json.contains("\"cat\":\"host\""));
        assert!(json.contains("[CUDA memcpy HtoD]"));
        assert!(json.contains("\"tid\":1"));
        assert!(json.contains("stream 1"));
        assert!(json.contains("xavier_nx"));
    }

    #[test]
    fn strings_are_escaped() {
        let json = chrome_trace_json(&timeline(), "p");
        assert!(json.contains("conv\\\"odd\\\""));
        assert!(!json.contains("\"conv\"odd\"\""));
    }

    #[test]
    fn empty_timeline_is_still_a_document() {
        let tl = GpuTimeline::new(DeviceSpec::xavier_nx());
        let json = chrome_trace_json(&tl, "empty");
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("process_name"));
    }

    #[test]
    fn multi_puts_each_timeline_in_its_own_pid() {
        let a = timeline();
        let b = timeline();
        let json = chrome_trace_json_multi(&[("build0", &a), ("build1", &b)]);
        assert!(json.contains("\"pid\":0"));
        assert!(json.contains("\"pid\":1"));
        assert!(json.contains("build0") && json.contains("build1"));
    }

    #[test]
    fn overlay_spans_render_in_their_stream_lane() {
        let tl = timeline();
        let overlays = vec![OverlaySpan {
            name: "execute f=3".to_string(),
            cat: CAT_REQUEST.to_string(),
            stream: 2,
            seq: 0,
            start_us: 10.0,
            duration_us: 250.0,
            args: "{\"trace_id\":\"00000000000000aa\"}".to_string(),
        }];
        let json = chrome_trace_json_multi_with_spans(&[("dev", &tl, &overlays)]);
        assert!(json.contains("\"cat\":\"request\""));
        assert!(json.contains("execute f=3"));
        assert!(json.contains("00000000000000aa"));
        // The overlay's stream gets a named lane even though no GPU record
        // touches it.
        assert!(json.contains("stream 2"));
        // Delegation keeps the no-overlay document unchanged.
        assert_eq!(
            chrome_trace_json_multi(&[("dev", &tl)]),
            chrome_trace_json_multi_with_spans(&[("dev", &tl, &[])])
        );
    }

    #[test]
    fn nonfinite_values_do_not_leak_into_json() {
        assert_eq!(json_f64(f64::NAN), "0");
        assert_eq!(json_f64(f64::INFINITY), "0");
        assert_eq!(json_f64(1.5), "1.500");
    }

    #[test]
    fn write_creates_the_file() {
        let path = std::env::temp_dir().join("trtsim_chrome_trace_test.json");
        write_chrome_trace(&path, &timeline(), "t").unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.contains("traceEvents"));
        let _ = std::fs::remove_file(&path);
    }
}
