//! Detection-head decoding: YOLO grid outputs → boxes, plus NMS.
//!
//! The zoo's detectors emit raw prediction grids (the tensors TensorRT
//! returns); turning them into boxes is host-side post-processing, exactly
//! the code an application like the paper's intersection controller runs
//! after each inference.

use trtsim_ir::tensor::Tensor;

/// One decoded detection, in input-image pixel coordinates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Detection {
    /// Left edge.
    pub x: f32,
    /// Top edge.
    pub y: f32,
    /// Width.
    pub w: f32,
    /// Height.
    pub h: f32,
    /// Objectness × class probability.
    pub confidence: f32,
    /// Class index.
    pub class: usize,
}

impl Detection {
    /// Intersection-over-union with another detection.
    pub fn iou(&self, other: &Detection) -> f32 {
        let x1 = self.x.max(other.x);
        let y1 = self.y.max(other.y);
        let x2 = (self.x + self.w).min(other.x + other.w);
        let y2 = (self.y + self.h).min(other.y + other.h);
        let inter = (x2 - x1).max(0.0) * (y2 - y1).max(0.0);
        let union = self.w * self.h + other.w * other.h - inter;
        if union <= 0.0 {
            0.0
        } else {
            inter / union
        }
    }
}

fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

/// Decodes one YOLOv3-style grid: `map` has `anchors.len() · (5 + classes)`
/// channels over a `gh × gw` grid; boxes come out in `input_dim`-pixel
/// coordinates. Detections below `conf_threshold` are dropped.
///
/// # Panics
///
/// Panics if the channel count does not match `anchors.len() · (5 + classes)`.
pub fn decode_yolo_grid(
    map: &Tensor,
    anchors: &[(f32, f32)],
    classes: usize,
    input_dim: usize,
    conf_threshold: f32,
) -> Vec<Detection> {
    let [c, gh, gw] = map.shape();
    let per_anchor = 5 + classes;
    assert_eq!(
        c,
        anchors.len() * per_anchor,
        "channel count {c} != {} anchors x {per_anchor}",
        anchors.len()
    );
    let cell_w = input_dim as f32 / gw as f32;
    let cell_h = input_dim as f32 / gh as f32;
    let mut out = Vec::new();
    for (a, &(aw, ah)) in anchors.iter().enumerate() {
        let base = a * per_anchor;
        for gy in 0..gh {
            for gx in 0..gw {
                let objectness = sigmoid(map.at(base + 4, gy, gx));
                if objectness < conf_threshold {
                    continue;
                }
                let (mut best_class, mut best_p) = (0usize, 0.0f32);
                for k in 0..classes {
                    let p = sigmoid(map.at(base + 5 + k, gy, gx));
                    if p > best_p {
                        best_p = p;
                        best_class = k;
                    }
                }
                let confidence = objectness * best_p;
                if confidence < conf_threshold {
                    continue;
                }
                let bx = (gx as f32 + sigmoid(map.at(base, gy, gx))) * cell_w;
                let by = (gy as f32 + sigmoid(map.at(base + 1, gy, gx))) * cell_h;
                let bw = aw * map.at(base + 2, gy, gx).exp();
                let bh = ah * map.at(base + 3, gy, gx).exp();
                out.push(Detection {
                    x: bx - bw / 2.0,
                    y: by - bh / 2.0,
                    w: bw,
                    h: bh,
                    confidence,
                    class: best_class,
                });
            }
        }
    }
    out
}

/// Greedy per-class non-maximum suppression; keeps detections in descending
/// confidence, dropping any that overlap a kept same-class box at IoU ≥
/// `iou_threshold`.
pub fn nms(mut detections: Vec<Detection>, iou_threshold: f32) -> Vec<Detection> {
    detections.sort_by(|a, b| b.confidence.total_cmp(&a.confidence));
    let mut kept: Vec<Detection> = Vec::new();
    for d in detections {
        let suppressed = kept
            .iter()
            .any(|k| k.class == d.class && k.iou(&d) >= iou_threshold);
        if !suppressed {
            kept.push(d);
        }
    }
    kept
}

/// Tiny-YOLOv3's anchors for its two scales (13×13 then 26×26), pixels.
pub fn tiny_yolov3_anchors() -> [Vec<(f32, f32)>; 2] {
    [
        vec![(81.0, 82.0), (135.0, 169.0), (344.0, 319.0)],
        vec![(10.0, 14.0), (23.0, 27.0), (37.0, 58.0)],
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds a grid with one strong detection at a known cell.
    fn one_hot_grid(classes: usize) -> Tensor {
        let anchors = 3;
        let mut t = Tensor::zeros([anchors * (5 + classes), 4, 4]);
        // Everything starts at logit 0 → sigmoid 0.5; suppress objectness.
        for a in 0..anchors {
            let base = a * (5 + classes);
            for y in 0..4 {
                for x in 0..4 {
                    *t.at_mut(base + 4, y, x) = -10.0;
                }
            }
        }
        // One strong hit: anchor 1, cell (2, 1), class 2.
        let base = 5 + classes;
        *t.at_mut(base + 4, 2, 1) = 8.0; // objectness
        *t.at_mut(base + 5 + 2, 2, 1) = 8.0; // class 2
        *t.at_mut(base, 2, 1) = 0.0; // tx -> center of cell
        *t.at_mut(base + 1, 2, 1) = 0.0;
        t
    }

    #[test]
    fn decodes_the_planted_detection() {
        let grid = one_hot_grid(4);
        let anchors = vec![(20.0, 20.0), (40.0, 40.0), (80.0, 80.0)];
        let dets = decode_yolo_grid(&grid, &anchors, 4, 128, 0.5);
        assert_eq!(dets.len(), 1);
        let d = dets[0];
        assert_eq!(d.class, 2);
        assert!(d.confidence > 0.9);
        // Cell (2,1) of a 4-grid over 128px: center (48, 80); anchor 40x40.
        assert!((d.x - (48.0 - 20.0)).abs() < 1.0, "x {}", d.x);
        assert!((d.y - (80.0 - 20.0)).abs() < 1.0, "y {}", d.y);
        assert!((d.w - 40.0).abs() < 1.0);
    }

    #[test]
    fn threshold_filters_everything_when_high() {
        let grid = one_hot_grid(4);
        let anchors = vec![(20.0, 20.0), (40.0, 40.0), (80.0, 80.0)];
        assert!(decode_yolo_grid(&grid, &anchors, 4, 128, 0.9999).is_empty());
    }

    #[test]
    fn nms_suppresses_overlaps_keeps_distinct() {
        let d = |x: f32, conf: f32, class: usize| Detection {
            x,
            y: 0.0,
            w: 10.0,
            h: 10.0,
            confidence: conf,
            class,
        };
        let kept = nms(
            vec![
                d(0.0, 0.9, 0),
                d(1.0, 0.8, 0),
                d(50.0, 0.7, 0),
                d(1.0, 0.6, 1),
            ],
            0.5,
        );
        // The 0.8 box overlaps the 0.9 box (same class): suppressed. The far
        // box and the different-class box survive.
        assert_eq!(kept.len(), 3);
        assert!((kept[0].confidence - 0.9).abs() < 1e-6);
        assert!(kept.iter().any(|k| k.class == 1));
    }

    #[test]
    fn iou_identity() {
        let d = Detection {
            x: 0.0,
            y: 0.0,
            w: 5.0,
            h: 5.0,
            confidence: 1.0,
            class: 0,
        };
        assert!((d.iou(&d) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn decodes_real_tiny_yolo_output_shapes() {
        // The zoo model's det1 output is [255, 13, 13] = 3 anchors x 85.
        let grid = Tensor::zeros([255, 13, 13]);
        let dets = decode_yolo_grid(&grid, &tiny_yolov3_anchors()[0], 80, 416, 0.3);
        assert!(dets.is_empty(), "all-zero logits give conf 0.25 < 0.3");
    }

    #[test]
    #[should_panic(expected = "channel count")]
    fn wrong_channels_panic() {
        let grid = Tensor::zeros([10, 4, 4]);
        decode_yolo_grid(&grid, &[(1.0, 1.0)], 4, 64, 0.5);
    }
}
