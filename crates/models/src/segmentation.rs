//! The segmentation network of Table II: fcn-resnet18-cityscapes.

use trtsim_ir::graph::{Activation, Graph, NodeId};

use crate::common::NetBuilder;

const RELU: Option<Activation> = Some(Activation::Relu);

fn basic_block(b: &mut NetBuilder, x: NodeId, channels: usize, stride: usize) -> NodeId {
    let c1 = b.conv(x, channels, 3, stride, 1, RELU);
    let c2 = b.conv(c1, channels, 3, 1, 1, None);
    let skip = if stride != 1 || b.shape(x)[0] != channels {
        b.conv(x, channels, 1, stride, 0, None)
    } else {
        x
    };
    let sum = b.add(c2, skip);
    b.act(sum, Activation::Relu)
}

/// fcn-resnet18-cityscapes (PyTorch → jetson-inference): a ResNet-18
/// backbone running fully convolutionally, a 1×1 class-score head over the
/// Cityscapes classes, and nearest upsampling back to input resolution.
/// 22 conv, 1 max pool; 512×256 input.
pub fn fcn_resnet18_cityscapes() -> Graph {
    let mut b = NetBuilder::new("fcn-resnet18-cityscapes", [3, 256, 512]);
    let c1 = b.conv(Graph::INPUT, 64, 7, 2, 3, RELU);
    let p1 = b.max_pool(c1, 3, 2, 1);
    let mut x = p1;
    for (stage, channels) in [64usize, 128, 256, 512].iter().enumerate() {
        for block in 0..2 {
            let stride = if stage > 0 && block == 0 { 2 } else { 1 };
            x = basic_block(&mut b, x, *channels, stride);
        }
    }
    // FCN head: intermediate projection + per-class scores (21 and 22nd conv).
    let proj = b.conv(x, 128, 1, 1, 0, RELU);
    let score = b.conv(proj, 21, 1, 1, 0, None);
    let up = b.upsample(score, 8);
    b.finish(&[up])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_table2() {
        let g = fcn_resnet18_cityscapes();
        assert_eq!(g.conv_count(), 22, "paper: 22 conv");
        assert_eq!(g.max_pool_count(), 1, "paper: 1 max pool");
        let mib = g.fp32_bytes() as f64 / (1 << 20) as f64;
        assert!((40.0..50.0).contains(&mib), "{mib:.1} MiB vs paper 44.95");
        assert!(g.validate().is_ok());
    }

    #[test]
    fn output_is_upsampled_back() {
        let g = fcn_resnet18_cityscapes();
        let shapes = g.infer_shapes().unwrap();
        let out = shapes[g.outputs()[0]];
        assert_eq!(out[0], 21);
        // Backbone downsamples 32x, head upsamples 8x: 1/4 input resolution.
        assert_eq!(out[1], 64);
        assert_eq!(out[2], 128);
    }
}
