//! The detection networks of Table II: ssd-inception-v2, the DetectNet
//! family (Detectnet-Coco-Dog / pednet / facenet), Tiny-YOLOv3,
//! MobileNetV1-SSD, and MTCNN.
//!
//! Layer counts match Table II; channel plans follow the published
//! architectures, with SSD head geometry simplified to square kernels.

use trtsim_ir::graph::{Activation, Graph, NodeId, PoolKind};

use crate::common::NetBuilder;

const RELU: Option<Activation> = Some(Activation::Relu);
const LEAKY: Option<Activation> = Some(Activation::LeakyRelu(0.1));

fn inception_v2_module(
    b: &mut NetBuilder,
    x: NodeId,
    c1: usize,
    (c3r, c3): (usize, usize),
    (c5r, c5): (usize, usize),
    cp: usize,
) -> NodeId {
    // Inception-v2 factorizes the 5×5 into two 3×3s.
    let b1 = b.conv(x, c1, 1, 1, 0, RELU);
    let b3r = b.conv(x, c3r, 1, 1, 0, RELU);
    let b3 = b.conv(b3r, c3, 3, 1, 1, RELU);
    let b5r = b.conv(x, c5r, 1, 1, 0, RELU);
    let b5a = b.conv(b5r, c5, 3, 1, 1, RELU);
    let b5b = b.conv(b5a, c5, 3, 1, 1, RELU);
    let bp = b.max_pool(x, 3, 1, 1);
    let bpp = b.conv(bp, cp, 1, 1, 0, RELU);
    b.concat(&[b1, b3, b5b, bpp])
}

/// ssd-inception-v2 (TensorFlow object-detection zoo): 90 conv, 12 max pool;
/// 300×300 input. Outputs one fused detection feature map per scale.
pub fn ssd_inception_v2() -> Graph {
    let mut b = NetBuilder::new("ssd-inception-v2", [3, 300, 300]);
    // Inception-v2 stem (depthwise-separable 7×7 split into 7×7 + 1×1 as
    // in the TensorFlow graph).
    let c1 = b.conv(Graph::INPUT, 24, 7, 2, 3, RELU);
    let c1b = b.conv(c1, 64, 1, 1, 0, RELU);
    let p1 = b.max_pool(c1b, 3, 2, 1);
    let c2r = b.conv(p1, 64, 1, 1, 0, RELU);
    let c2 = b.conv(c2r, 192, 3, 1, 1, RELU);
    let p2 = b.max_pool(c2, 3, 2, 1);

    let i3a = inception_v2_module(&mut b, p2, 64, (64, 64), (64, 96), 32);
    let i3b = inception_v2_module(&mut b, i3a, 64, (64, 96), (64, 96), 64);
    let p3 = b.max_pool(i3b, 3, 2, 1);
    let i4a = inception_v2_module(&mut b, p3, 224, (64, 96), (96, 128), 128);
    let i4b = inception_v2_module(&mut b, i4a, 192, (96, 128), (96, 128), 128);
    let i4c = inception_v2_module(&mut b, i4b, 160, (128, 160), (128, 160), 96);
    let i4d = inception_v2_module(&mut b, i4c, 96, (128, 192), (160, 192), 96);
    let p4 = b.max_pool(i4d, 3, 2, 1);
    let i5a = inception_v2_module(&mut b, p4, 352, (192, 320), (160, 224), 128);
    let i5b = inception_v2_module(&mut b, i5a, 352, (192, 320), (192, 224), 128);

    // SSD feature pyramid: a shared feature conv plus class/box heads per
    // scale; four strided extra scales of three convs each off the backbone.
    let mut heads: Vec<NodeId> = Vec::new();
    let head = |b: &mut NetBuilder, src: NodeId| {
        let feat = b.conv(src, 512, 3, 1, 1, RELU);
        let cls = b.conv(feat, 6 * 91, 1, 1, 0, None);
        let loc = b.conv(feat, 6 * 4, 1, 1, 0, None);
        b.concat(&[cls, loc])
    };
    heads.push(head(&mut b, i4d));
    heads.push(head(&mut b, i5b));
    let mut x = i5b;
    for out_c in [512usize, 256, 256, 128] {
        let r = b.conv(x, out_c / 2, 1, 1, 0, RELU);
        let e = b.conv(r, out_c / 2, 3, 1, 1, RELU);
        x = b.conv(e, out_c, 3, 2, 1, RELU);
        heads.push(head(&mut b, x));
    }
    b.finish(&heads)
}

/// The DetectNet family: a GoogLeNet-FCN backbone with coverage + bbox
/// heads. `Detectnet-Coco-Dog`, `pednet`, and `facenet` share this exact
/// architecture (the paper's Table II lists identical sizes); they differ
/// in the head name and weight seeds.
pub fn detectnet(name: &str) -> Graph {
    let mut b = NetBuilder::new(name, [3, 640, 368]);
    let c1 = b.conv(Graph::INPUT, 64, 7, 2, 3, RELU);
    let p1 = b.max_pool(c1, 3, 2, 1);
    let c2r = b.conv(p1, 64, 1, 1, 0, RELU);
    let c2 = b.conv(c2r, 192, 3, 1, 1, RELU);
    let p2 = b.max_pool(c2, 3, 2, 1);

    let m = |b: &mut NetBuilder, x, c1, c3, c5, cp| {
        super::detection::googlenet_module(b, x, c1, c3, c5, cp)
    };
    let i3a = m(&mut b, p2, 64, (96, 128), (16, 32), 32);
    let i3b = m(&mut b, i3a, 128, (128, 192), (32, 96), 64);
    let p3 = b.max_pool(i3b, 3, 2, 1);
    let i4a = m(&mut b, p3, 192, (96, 208), (16, 48), 64);
    let i4b = m(&mut b, i4a, 160, (112, 224), (24, 64), 64);
    let i4c = m(&mut b, i4b, 128, (128, 256), (24, 64), 64);
    let i4d = m(&mut b, i4c, 112, (144, 288), (32, 64), 64);
    let i4e = m(&mut b, i4d, 256, (160, 320), (32, 128), 128);
    let i5a = m(&mut b, i4e, 256, (160, 320), (32, 128), 128);
    let i5b = m(&mut b, i5a, 384, (192, 384), (48, 128), 128);

    // FCN heads: per-cell coverage and bbox regression.
    let coverage = b.conv(i5b, 1, 1, 1, 0, Some(Activation::Sigmoid));
    let bbox = b.conv(i5b, 4, 1, 1, 0, None);
    b.finish(&[coverage, bbox])
}

pub(crate) fn googlenet_module(
    b: &mut NetBuilder,
    x: NodeId,
    c1: usize,
    (c3r, c3): (usize, usize),
    (c5r, c5): (usize, usize),
    cp: usize,
) -> NodeId {
    let b1 = b.conv(x, c1, 1, 1, 0, RELU);
    let b3r = b.conv(x, c3r, 1, 1, 0, RELU);
    let b3 = b.conv(b3r, c3, 3, 1, 1, RELU);
    let b5r = b.conv(x, c5r, 1, 1, 0, RELU);
    let b5 = b.conv(b5r, c5, 5, 1, 2, RELU);
    let bp = b.max_pool(x, 3, 1, 1);
    let bpp = b.conv(bp, cp, 1, 1, 0, RELU);
    b.concat(&[b1, b3, b5, bpp])
}

/// Tiny-YOLOv3 (Darknet): 13 conv, 6 max pool, two detection scales;
/// 416×416 input.
pub fn tiny_yolov3() -> Graph {
    let mut b = NetBuilder::new("Tiny-Yolov3", [3, 416, 416]);
    let mut x = Graph::INPUT;
    let mut route = Graph::INPUT; // the 256-channel feature map for scale 2
    for (i, channels) in [16usize, 32, 64, 128, 256, 512].iter().enumerate() {
        x = b.conv(x, *channels, 3, 1, 1, LEAKY);
        if *channels == 256 {
            route = x;
        }
        x = if i == 5 {
            // Darknet's final size-2 stride-1 "same" pool keeps 13×13; the
            // closest square-window equivalent is a 3×3 stride-1 pad-1 pool.
            b.max_pool(x, 3, 1, 1)
        } else {
            b.max_pool(x, 2, 2, 0)
        };
    }
    let c7 = b.conv(x, 1024, 3, 1, 1, LEAKY);
    let c8 = b.conv(c7, 256, 1, 1, 0, LEAKY);
    // Detection scale 1 (13×13).
    let c9 = b.conv(c8, 512, 3, 1, 1, LEAKY);
    let det1 = b.conv(c9, 255, 1, 1, 0, None);
    // Detection scale 2 (26×26) via upsample + route.
    let c11 = b.conv(c8, 128, 1, 1, 0, LEAKY);
    let up = b.upsample(c11, 2);
    let cat = b.concat(&[up, route]);
    let c12 = b.conv(cat, 256, 3, 1, 1, LEAKY);
    let det2 = b.conv(c12, 255, 1, 1, 0, None);
    b.finish(&[det1, det2])
}

/// MobileNetV1-SSD (TensorFlow): 28 conv (13 depthwise-separable pairs plus
/// stem and head), 1 max pool; 300×300 input.
pub fn mobilenet_v1() -> Graph {
    let mut b = NetBuilder::new("Mobilenetv1", [3, 300, 300]);
    let mut x = b.conv(Graph::INPUT, 32, 3, 2, 1, RELU);
    let plan: [(usize, usize); 13] = [
        (64, 1),
        (128, 2),
        (128, 1),
        (256, 2),
        (256, 1),
        (512, 2),
        (512, 1),
        (512, 1),
        (512, 1),
        (512, 1),
        (512, 1),
        (1024, 2),
        (1024, 1),
    ];
    for (out_c, stride) in plan {
        let in_c = b.shape(x)[0];
        let dw = b.conv_grouped(x, in_c, 3, stride, 1, in_c, RELU);
        x = b.conv(dw, out_c, 1, 1, 0, RELU);
    }
    // SSD feature-expansion head over the final map (paper counts 28 convs,
    // 1 max pool; the expansion carries the SSD head's parameter volume).
    let head = b.conv(x, 2048, 1, 1, 0, RELU);
    let gp = b.global_pool(head, PoolKind::Max);
    b.finish(&[head, gp])
}

/// MTCNN: the P-Net → R-Net → O-Net cascade flattened into one 12-conv,
/// 6-max-pool graph at 48×48 (the cascade's final crop size). The real
/// system invokes the three stages on image pyramids; the flattened form
/// preserves layer counts, parameter volume, and kernel population.
pub fn mtcnn() -> Graph {
    let mut b = NetBuilder::new("MTCNN", [3, 48, 48]);
    // P-Net-like stage.
    let p1 = b.conv(Graph::INPUT, 20, 3, 1, 1, RELU);
    let pp1 = b.max_pool(p1, 2, 2, 0);
    let p2 = b.conv(pp1, 32, 3, 1, 1, RELU);
    let p3 = b.conv(p2, 64, 3, 1, 1, RELU);
    // R-Net-like stage.
    let r1 = b.conv(p3, 56, 3, 1, 1, RELU);
    let rp1 = b.max_pool(r1, 3, 2, 1);
    let r2 = b.conv(rp1, 96, 3, 1, 1, RELU);
    let rp2 = b.max_pool(r2, 3, 2, 1);
    let r3 = b.conv(rp2, 128, 2, 1, 1, RELU);
    // O-Net-like stage.
    let o1 = b.conv(r3, 64, 3, 1, 1, RELU);
    let op1 = b.max_pool(o1, 3, 2, 1);
    let o2 = b.conv(op1, 128, 3, 1, 1, RELU);
    let op2 = b.max_pool(o2, 3, 2, 1);
    let o3 = b.conv(op2, 128, 2, 1, 1, RELU);
    let op3 = b.max_pool(o3, 2, 2, 1);
    let o4 = b.conv(op3, 256, 2, 1, 0, RELU);
    // Face classification + bbox regression heads (1×1 convs, as in the
    // fully-convolutional deployment of the cascade).
    let face = b.conv(o4, 2, 1, 1, 0, None);
    let bbox = b.conv(o4, 4, 1, 1, 0, None);
    b.finish(&[face, bbox])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp32_mib(g: &Graph) -> f64 {
        g.fp32_bytes() as f64 / (1 << 20) as f64
    }

    #[test]
    fn ssd_inception_matches_table2() {
        let g = ssd_inception_v2();
        assert_eq!(g.conv_count(), 90, "paper: 90 conv");
        assert_eq!(g.max_pool_count(), 12, "paper: 12 max pool");
        let mib = fp32_mib(&g);
        assert!((70.0..120.0).contains(&mib), "{mib:.1} MiB vs paper 95.58");
    }

    #[test]
    fn detectnet_family_matches_table2() {
        for name in ["Detectnet-Coco-Dog", "pednet", "facenet"] {
            let g = detectnet(name);
            assert_eq!(g.conv_count(), 59, "{name}: paper 59 conv");
            assert_eq!(g.max_pool_count(), 12, "{name}: paper 12 max pool");
            let mib = fp32_mib(&g);
            assert!(
                (18.0..27.0).contains(&mib),
                "{name}: {mib:.1} MiB vs paper 22.82"
            );
        }
    }

    #[test]
    fn detectnet_variants_share_architecture() {
        let a = detectnet("pednet");
        let b = detectnet("facenet");
        assert_eq!(a.len(), b.len());
        assert_eq!(a.param_count(), b.param_count());
        assert_ne!(a, b, "weights differ by seed");
    }

    #[test]
    fn tiny_yolo_matches_table2() {
        let g = tiny_yolov3();
        assert_eq!(g.conv_count(), 13);
        assert_eq!(g.max_pool_count(), 6);
        let mib = fp32_mib(&g);
        assert!((28.0..38.0).contains(&mib), "{mib:.1} MiB vs paper 33.1");
        assert_eq!(g.outputs().len(), 2, "two detection scales");
    }

    #[test]
    fn mobilenet_matches_table2() {
        let g = mobilenet_v1();
        assert_eq!(g.conv_count(), 28);
        assert_eq!(g.max_pool_count(), 1);
        let mib = fp32_mib(&g);
        assert!((15.0..32.0).contains(&mib), "{mib:.1} MiB vs paper 26.07");
    }

    #[test]
    fn mtcnn_matches_table2() {
        let g = mtcnn();
        assert_eq!(g.conv_count(), 12);
        assert_eq!(g.max_pool_count(), 6);
        let mib = fp32_mib(&g);
        assert!((0.5..4.0).contains(&mib), "{mib:.1} MiB vs paper 1.9");
    }

    #[test]
    fn all_detection_models_validate() {
        for g in [
            ssd_inception_v2(),
            detectnet("pednet"),
            tiny_yolov3(),
            mobilenet_v1(),
            mtcnn(),
        ] {
            assert!(g.validate().is_ok(), "{} invalid", g.name());
        }
    }
}
