//! Numeric-scale classification models for the accuracy experiments.
//!
//! The accuracy tables (III–VI) need networks that actually classify. Since
//! no pretrained weights can ship with a simulator, each numeric model is a
//! channel-reduced version of its full-size topology whose final layer is a
//! **prototype head**: the classifier row for class `c` is the (normalized)
//! feature vector the extractor produces for class `c`'s dataset prototype —
//! one-shot nearest-prototype "training". On the class-prototype dataset
//! this classifies well, with accuracy controlled by the dataset's
//! signal-to-noise ratio.
//!
//! The **over-fitting** the paper invokes to explain Finding 1 is modeled
//! explicitly: [`build_classifier`] can jitter every weight after the head
//! is fit (an over-fitted model = ideal weights + high-frequency noise).
//! The engine builder's weight-clustering pass partially removes that
//! jitter, which is why optimized engines score slightly *better* — the
//! paper's explanation, executed.

use trtsim_ir::graph::{Activation, Graph, LayerKind, NodeId};
use trtsim_ir::tensor::Tensor;
use trtsim_ir::weights::Weights;
use trtsim_ir::ReferenceExecutor;
use trtsim_util::derive_seed;
use trtsim_util::rng::Pcg32;

use crate::common::NetBuilder;
use crate::ModelId;

const RELU: Option<Activation> = Some(Activation::Relu);

/// Input shape of every numeric model.
pub const NUMERIC_INPUT: [usize; 3] = [3, 32, 32];

/// Builds the feature extractor for a model's numeric variant (topology
/// mirrors the full model, channels scaled down ~16×). Ends with a flatten
/// node; returns `(builder, feature_node)`.
fn extractor(id: ModelId) -> (NetBuilder, NodeId) {
    match id {
        ModelId::Alexnet => {
            let mut b = NetBuilder::new("Alexnet-numeric", NUMERIC_INPUT);
            let c1 = b.conv(Graph::INPUT, 16, 5, 1, 2, RELU);
            let n1 = b.lrn(c1);
            let p1 = b.max_pool(n1, 2, 2, 0);
            let c2 = b.conv(p1, 32, 3, 1, 1, RELU);
            let n2 = b.lrn(c2);
            let p2 = b.max_pool(n2, 2, 2, 0);
            let c3 = b.conv(p2, 48, 3, 1, 1, RELU);
            let c4 = b.conv(c3, 48, 3, 1, 1, RELU);
            let c5 = b.conv(c4, 32, 3, 1, 1, RELU);
            let p5 = b.max_pool(c5, 2, 2, 0);
            let f = b.flatten(p5);
            (b, f)
        }
        ModelId::Vgg16 => {
            let mut b = NetBuilder::new("vgg-16-numeric", NUMERIC_INPUT);
            let mut x = Graph::INPUT;
            for (reps, channels) in [(2usize, 10usize), (2, 14), (2, 20)] {
                for _ in 0..reps {
                    x = b.conv(x, channels, 3, 1, 1, RELU);
                }
                x = b.max_pool(x, 2, 2, 0);
            }
            let f = b.flatten(x);
            (b, f)
        }
        ModelId::Resnet18 => {
            let mut b = NetBuilder::new("ResNet-18-numeric", NUMERIC_INPUT);
            let c1 = b.conv(Graph::INPUT, 8, 3, 1, 1, RELU);
            let mut x = c1;
            for (stage, channels) in [8usize, 16, 32].iter().enumerate() {
                for block in 0..2 {
                    let stride = if stage > 0 && block == 0 { 2 } else { 1 };
                    let bc1 = b.conv(x, *channels, 3, stride, 1, RELU);
                    let bc2 = b.conv(bc1, *channels, 3, 1, 1, None);
                    let skip = if stride != 1 || b.shape(x)[0] != *channels {
                        b.conv(x, *channels, 1, stride, 0, None)
                    } else {
                        x
                    };
                    let sum = b.add(bc2, skip);
                    x = b.act(sum, Activation::Relu);
                }
            }
            let dp = b.avg_pool(x, 2, 2, 0);
            let f = b.flatten(dp);
            (b, f)
        }
        ModelId::InceptionV4 | ModelId::Googlenet => {
            let name = if id == ModelId::InceptionV4 {
                "inception-v4-numeric"
            } else {
                "Googlenet-numeric"
            };
            let mut b = NetBuilder::new(name, NUMERIC_INPUT);
            let stem = b.conv(Graph::INPUT, 16, 3, 2, 1, RELU);
            let p1 = b.max_pool(stem, 3, 2, 1);
            let mut x = p1;
            let modules = if id == ModelId::InceptionV4 { 3 } else { 2 };
            for _ in 0..modules {
                let b1 = b.conv(x, 16, 1, 1, 0, RELU);
                let b3r = b.conv(x, 12, 1, 1, 0, RELU);
                let b3 = b.conv(b3r, 16, 3, 1, 1, RELU);
                let b5r = b.conv(x, 8, 1, 1, 0, RELU);
                let b5 = b.conv(b5r, 8, 5, 1, 2, RELU);
                let bp = b.max_pool(x, 3, 1, 1);
                let bpp = b.conv(bp, 8, 1, 1, 0, RELU);
                x = b.concat(&[b1, b3, b5, bpp]);
            }
            let dp = b.avg_pool(x, 2, 2, 0);
            let f = b.flatten(dp);
            (b, f)
        }
        other => panic!("{other} has no numeric classification variant"),
    }
}

/// Builds a complete numeric classifier for `id`.
///
/// * `prototypes` — one per class, from the synthetic dataset; the head is
///   fit to the extractor's features of these.
/// * `overfit_jitter` — relative weight noise applied *after* head fitting
///   (0.0 = ideally trained; the paper's un-optimized models use > 0).
/// * `seed` — jitter randomness.
///
/// # Panics
///
/// Panics if `prototypes` is empty, shapes mismatch [`NUMERIC_INPUT`], or
/// `id` has no numeric variant (detection/segmentation models).
pub fn build_classifier(
    id: ModelId,
    prototypes: &[Tensor],
    overfit_jitter: f32,
    seed: u64,
) -> Graph {
    assert!(!prototypes.is_empty(), "need at least one class prototype");
    let (mut b, feat) = extractor(id);
    // "Trained" weights carry discrete structure: weight decay and implicit
    // regularization concentrate weights around a few levels. Snapping the
    // seeded weights onto a coarse grid models that; it is also what makes
    // the engine's clustering pass able to *denoise* an over-fitted model
    // (Finding 1) — k-means can only recover structure that exists.
    snap_weights_to_levels(b.graph_mut(), 1.2);
    let feat_dim = {
        let s = b.shape(feat);
        s[0] * s[1] * s[2]
    };

    // Fit the prototype head on the clean extractor.
    let features: Vec<Vec<f32>> = {
        let g = b.graph().clone();
        let mut g = g;
        g.mark_output(feat);
        let exec = ReferenceExecutor::new(&g).expect("extractor is valid");
        prototypes
            .iter()
            .map(|p| {
                assert_eq!(p.shape(), NUMERIC_INPUT, "prototype shape mismatch");
                let out = exec.run(p).expect("extractor runs");
                out[0].as_slice().to_vec()
            })
            .collect()
    };
    let classes = prototypes.len();
    let mut head = Vec::with_capacity(classes * feat_dim);
    for f in &features {
        let norm = f.iter().map(|x| x * x).sum::<f32>().sqrt().max(1e-6);
        head.extend(f.iter().map(|x| x / norm));
    }

    let fc = b.graph().len();
    let fc = {
        let _ = fc;
        let mut kind = LayerKind::InnerProduct {
            out_features: classes,
            in_features: feat_dim,
            weights: Weights::Dense(head),
            bias: Weights::Dense(vec![0.0; classes]),
            activation: None,
        };
        if let LayerKind::InnerProduct { .. } = &mut kind {}
        b.push_raw("prototype_head", kind, feat)
    };
    let sm = b.softmax(fc);
    let mut graph = b.finish(&[sm]);

    if overfit_jitter > 0.0 {
        graph = apply_overfit(&graph, overfit_jitter, seed);
    }
    graph
}

/// Snaps every conv weight blob onto a grid of `step · std(w)` levels,
/// in place (numeric models only; see [`build_classifier`]).
pub fn snap_weights_to_levels(graph: &mut Graph, step_factor: f32) {
    let nodes: Vec<usize> = (1..graph.len()).collect();
    let mut rebuilt = Graph::new(graph.name().to_string(), graph.input_shape());
    for &id in &nodes {
        let node = graph.node(id);
        let mut kind = node.kind.clone();
        if let LayerKind::Conv(c) = &mut kind {
            let values: Vec<f32> = c.weights.iter().collect();
            let mean = values.iter().sum::<f32>() / values.len().max(1) as f32;
            let sd = (values.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>()
                / values.len().max(1) as f32)
                .sqrt()
                .max(1e-9);
            let q = step_factor * sd;
            c.weights = Weights::Dense(values.iter().map(|x| (x / q).round() * q).collect());
        }
        rebuilt.add_layer(node.name.clone(), kind, &node.inputs);
    }
    for &o in graph.outputs() {
        rebuilt.mark_output(o);
    }
    *graph = rebuilt;
}

/// Adds high-frequency jitter to every dense weight blob (over-fitting
/// model). Seeded weights are first materialized (numeric models are small).
pub fn apply_overfit(graph: &Graph, jitter: f32, seed: u64) -> Graph {
    let mut out = Graph::new(graph.name().to_string(), graph.input_shape());
    for node in graph.nodes().iter().skip(1) {
        let mut kind = node.kind.clone();
        match &mut kind {
            LayerKind::Conv(c) => {
                c.weights = jittered(&c.weights, jitter, derive_seed(seed, "ofc", node.id as u64));
            }
            LayerKind::InnerProduct { weights, .. } => {
                *weights = jittered(weights, jitter, derive_seed(seed, "off", node.id as u64));
            }
            _ => {}
        }
        out.add_layer(node.name.clone(), kind, &node.inputs);
    }
    for &o in graph.outputs() {
        out.mark_output(o);
    }
    out
}

fn jittered(w: &Weights, jitter: f32, seed: u64) -> Weights {
    let values: Vec<f32> = w.iter().collect();
    let sd = {
        let mean = values.iter().sum::<f32>() / values.len().max(1) as f32;
        (values.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / values.len().max(1) as f32)
            .sqrt()
    };
    let mut rng = Pcg32::seed_from_u64(seed);
    Weights::Dense(
        values
            .into_iter()
            .map(|x| x + jitter * sd * rng.normal() as f32)
            .collect(),
    )
}

impl NetBuilder {
    /// Appends a raw layer kind (used by the prototype head, which needs
    /// dense externally-computed weights).
    ///
    /// # Panics
    ///
    /// Panics if the layer is inconsistent with its input shape.
    pub fn push_raw(&mut self, name: &str, kind: LayerKind, input: NodeId) -> NodeId {
        let in_shape = self.shape(input);
        let out = trtsim_ir::shape::infer(&kind, &[in_shape], name)
            .unwrap_or_else(|e| panic!("model construction error at {name}: {e}"));
        let id = self.graph_mut().add_layer(name.to_string(), kind, &[input]);
        self.shapes_mut().push(out);
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prototypes(classes: usize) -> Vec<Tensor> {
        let mut rng = Pcg32::seed_from_u64(1);
        (0..classes)
            .map(|_| Tensor::from_fn(NUMERIC_INPUT, |_, _, _| rng.normal() as f32))
            .collect()
    }

    #[test]
    fn classifier_builds_for_all_table5_models() {
        let protos = prototypes(4);
        for id in [
            ModelId::Alexnet,
            ModelId::Resnet18,
            ModelId::Vgg16,
            ModelId::InceptionV4,
            ModelId::Googlenet,
        ] {
            let g = build_classifier(id, &protos, 0.0, 0);
            assert!(g.validate().is_ok(), "{id}");
            let shapes = g.infer_shapes().unwrap();
            assert_eq!(shapes[g.outputs()[0]], [4, 1, 1]);
        }
    }

    #[test]
    fn clean_model_classifies_prototypes_perfectly() {
        let protos = prototypes(6);
        let g = build_classifier(ModelId::Resnet18, &protos, 0.0, 0);
        let exec = ReferenceExecutor::new(&g).unwrap();
        for (c, p) in protos.iter().enumerate() {
            let out = exec.run(p).unwrap();
            assert_eq!(out[0].argmax(), Some(c), "prototype {c} misclassified");
        }
    }

    #[test]
    fn clean_model_tolerates_mild_noise() {
        let protos = prototypes(6);
        let g = build_classifier(ModelId::Alexnet, &protos, 0.0, 0);
        let exec = ReferenceExecutor::new(&g).unwrap();
        let mut rng = Pcg32::seed_from_u64(7);
        let mut correct = 0;
        let trials = 30;
        for t in 0..trials {
            let c = t % 6;
            let mut img = protos[c].clone();
            for v in img.as_mut_slice() {
                *v += 0.3 * rng.normal() as f32;
            }
            if exec.run(&img).unwrap()[0].argmax() == Some(c) {
                correct += 1;
            }
        }
        assert!(correct * 10 >= trials * 8, "{correct}/{trials}");
    }

    #[test]
    fn overfit_jitter_degrades_accuracy() {
        let protos = prototypes(6);
        let clean = build_classifier(ModelId::Vgg16, &protos, 0.0, 0);
        let overfit = build_classifier(ModelId::Vgg16, &protos, 0.35, 3);
        let acc = |g: &Graph| {
            let exec = ReferenceExecutor::new(g).unwrap();
            let mut rng = Pcg32::seed_from_u64(9);
            let mut correct = 0;
            for t in 0..48 {
                let c = t % 6;
                let mut img = protos[c].clone();
                for v in img.as_mut_slice() {
                    *v += 0.8 * rng.normal() as f32;
                }
                if exec.run(&img).unwrap()[0].argmax() == Some(c) {
                    correct += 1;
                }
            }
            correct
        };
        assert!(
            acc(&overfit) <= acc(&clean),
            "jitter should not help: {} vs {}",
            acc(&overfit),
            acc(&clean)
        );
    }

    #[test]
    fn overfit_is_deterministic() {
        let protos = prototypes(3);
        let a = build_classifier(ModelId::Googlenet, &protos, 0.2, 5);
        let b = build_classifier(ModelId::Googlenet, &protos, 0.2, 5);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "no numeric classification variant")]
    fn detection_models_have_no_numeric_variant() {
        build_classifier(ModelId::TinyYolov3, &prototypes(2), 0.0, 0);
    }
}
