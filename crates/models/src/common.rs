//! Incremental network-construction helper used by every zoo model.

use trtsim_ir::graph::{Activation, ConvParams, EltwiseOp, Graph, LayerKind, NodeId, PoolKind};
use trtsim_ir::shape;
use trtsim_ir::weights::Weights;
use trtsim_util::derive_seed;

/// Builds graphs layer by layer with automatic shape tracking and seeded
/// weights derived from the model name.
///
/// # Examples
///
/// ```
/// use trtsim_models::common::NetBuilder;
/// use trtsim_ir::graph::{Activation, Graph};
///
/// let mut b = NetBuilder::new("demo", [3, 32, 32]);
/// let c = b.conv(Graph::INPUT, 16, 3, 1, 1, Some(Activation::Relu));
/// let p = b.max_pool(c, 2, 2, 0);
/// assert_eq!(b.shape(p), [16, 16, 16]);
/// let g = b.finish(&[p]);
/// assert!(g.validate().is_ok());
/// ```
#[derive(Debug)]
pub struct NetBuilder {
    graph: Graph,
    shapes: Vec<[usize; 3]>,
    seed: u64,
    counter: u64,
}

impl NetBuilder {
    /// Starts a network named `name` with the given input shape.
    pub fn new(name: &str, input: [usize; 3]) -> Self {
        let seed = derive_seed(0x7a_11_c0_de, name, 0);
        Self {
            graph: Graph::new(name.to_string(), input),
            shapes: vec![input],
            seed,
            counter: 0,
        }
    }

    /// Output shape of a node.
    pub fn shape(&self, id: NodeId) -> [usize; 3] {
        self.shapes[id]
    }

    /// The graph under construction.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    pub(crate) fn graph_mut(&mut self) -> &mut Graph {
        &mut self.graph
    }

    pub(crate) fn shapes_mut(&mut self) -> &mut Vec<[usize; 3]> {
        &mut self.shapes
    }

    fn next_seed(&mut self) -> u64 {
        self.counter += 1;
        derive_seed(self.seed, "layer", self.counter)
    }

    fn push(&mut self, name: String, kind: LayerKind, inputs: &[NodeId]) -> NodeId {
        let in_shapes: Vec<[usize; 3]> = inputs.iter().map(|&i| self.shapes[i]).collect();
        let out = shape::infer(&kind, &in_shapes, &name)
            .unwrap_or_else(|e| panic!("model construction error at {name}: {e}"));
        let id = self.graph.add_layer(name, kind, inputs);
        self.shapes.push(out);
        id
    }

    /// A square convolution with seeded weights; input channels inferred.
    pub fn conv(
        &mut self,
        from: NodeId,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        pad: usize,
        activation: Option<Activation>,
    ) -> NodeId {
        self.conv_grouped(from, out_channels, kernel, stride, pad, 1, activation)
    }

    /// A grouped convolution (`groups == in == out` is depthwise).
    #[allow(clippy::too_many_arguments)]
    pub fn conv_grouped(
        &mut self,
        from: NodeId,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        pad: usize,
        groups: usize,
        activation: Option<Activation>,
    ) -> NodeId {
        self.conv_full(
            from,
            out_channels,
            (kernel, kernel),
            stride,
            (pad, pad),
            groups,
            activation,
        )
    }

    /// A rectangular convolution (Inception-style 1×7 / 7×1 factorizations).
    pub fn conv_rect(
        &mut self,
        from: NodeId,
        out_channels: usize,
        kernel: (usize, usize),
        pad: (usize, usize),
        activation: Option<Activation>,
    ) -> NodeId {
        self.conv_full(from, out_channels, kernel, 1, pad, 1, activation)
    }

    #[allow(clippy::too_many_arguments)]
    fn conv_full(
        &mut self,
        from: NodeId,
        out_channels: usize,
        (kh, kw): (usize, usize),
        stride: usize,
        (ph, pw): (usize, usize),
        groups: usize,
        activation: Option<Activation>,
    ) -> NodeId {
        let in_channels = self.shapes[from][0];
        let len = out_channels * (in_channels / groups) * kh * kw;
        let seed = self.next_seed();
        let name = format!("conv{}", self.counter);
        let params = ConvParams {
            out_channels,
            in_channels,
            kernel_h: kh,
            kernel_w: kw,
            stride,
            pad_h: ph,
            pad_w: pw,
            groups,
            weights: Weights::seeded_he(seed, len, (in_channels / groups) * kh * kw),
            bias: Weights::Dense(vec![0.0; out_channels]),
            activation,
        };
        self.push(name, LayerKind::Conv(params), &[from])
    }

    /// Max pooling.
    pub fn max_pool(&mut self, from: NodeId, kernel: usize, stride: usize, pad: usize) -> NodeId {
        let name = format!("pool{}_max", self.counter);
        self.push(
            name,
            LayerKind::Pool {
                kind: PoolKind::Max,
                kernel,
                stride,
                pad,
            },
            &[from],
        )
    }

    /// Average pooling.
    pub fn avg_pool(&mut self, from: NodeId, kernel: usize, stride: usize, pad: usize) -> NodeId {
        let name = format!("pool{}_avg", self.counter);
        self.push(
            name,
            LayerKind::Pool {
                kind: PoolKind::Avg,
                kernel,
                stride,
                pad,
            },
            &[from],
        )
    }

    /// Global pooling to `[c, 1, 1]`.
    pub fn global_pool(&mut self, from: NodeId, kind: PoolKind) -> NodeId {
        let name = format!("gpool{}", self.counter);
        self.push(name, LayerKind::GlobalPool { kind }, &[from])
    }

    /// Across-channel LRN with AlexNet's parameters.
    pub fn lrn(&mut self, from: NodeId) -> NodeId {
        let name = format!("lrn{}", self.counter);
        self.push(
            name,
            LayerKind::Lrn {
                local_size: 5,
                alpha: 1e-4,
                beta: 0.75,
                k: 1.0,
            },
            &[from],
        )
    }

    /// Fully-connected layer with seeded weights; input features inferred.
    pub fn fc(
        &mut self,
        from: NodeId,
        out_features: usize,
        activation: Option<Activation>,
    ) -> NodeId {
        let s = self.shapes[from];
        let in_features = s[0] * s[1] * s[2];
        let seed = self.next_seed();
        let name = format!("fc{}", self.counter);
        self.push(
            name,
            LayerKind::InnerProduct {
                out_features,
                in_features,
                weights: Weights::seeded_he(seed, out_features * in_features, in_features),
                bias: Weights::Dense(vec![0.0; out_features]),
                activation,
            },
            &[from],
        )
    }

    /// Channel concatenation.
    pub fn concat(&mut self, inputs: &[NodeId]) -> NodeId {
        let name = format!("concat{}", self.counter);
        self.push(name, LayerKind::Concat, inputs)
    }

    /// Element-wise sum (residual join).
    pub fn add(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let name = format!("add{}", self.counter);
        self.push(name, LayerKind::Eltwise { op: EltwiseOp::Sum }, &[a, b])
    }

    /// Standalone activation.
    pub fn act(&mut self, from: NodeId, activation: Activation) -> NodeId {
        let name = format!("act{}", self.counter);
        self.push(name, LayerKind::Act(activation), &[from])
    }

    /// Softmax head.
    pub fn softmax(&mut self, from: NodeId) -> NodeId {
        let name = format!("softmax{}", self.counter);
        self.push(name, LayerKind::Softmax, &[from])
    }

    /// Flatten to a feature vector.
    pub fn flatten(&mut self, from: NodeId) -> NodeId {
        let name = format!("flatten{}", self.counter);
        self.push(name, LayerKind::Flatten, &[from])
    }

    /// Dropout (inference no-op; exercised by dead-layer removal).
    pub fn dropout(&mut self, from: NodeId, rate: f32) -> NodeId {
        let name = format!("dropout{}", self.counter);
        self.push(name, LayerKind::Dropout { rate }, &[from])
    }

    /// Nearest-neighbour upsampling.
    pub fn upsample(&mut self, from: NodeId, factor: usize) -> NodeId {
        let name = format!("upsample{}", self.counter);
        self.push(name, LayerKind::Upsample { factor }, &[from])
    }

    /// Finalizes the graph with the given outputs.
    ///
    /// # Panics
    ///
    /// Panics if the resulting graph fails validation (a model-definition
    /// bug, not a runtime condition).
    pub fn finish(mut self, outputs: &[NodeId]) -> Graph {
        for &o in outputs {
            self.graph.mark_output(o);
        }
        self.graph
            .validate()
            .unwrap_or_else(|e| panic!("model `{}` invalid: {e}", self.graph.name()));
        self.graph
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_track_layers() {
        let mut b = NetBuilder::new("t", [3, 32, 32]);
        let c = b.conv(Graph::INPUT, 8, 3, 2, 1, Some(Activation::Relu));
        assert_eq!(b.shape(c), [8, 16, 16]);
        let p = b.max_pool(c, 2, 2, 0);
        assert_eq!(b.shape(p), [8, 8, 8]);
        let f = b.flatten(p);
        assert_eq!(b.shape(f), [512, 1, 1]);
        let fc = b.fc(f, 10, None);
        assert_eq!(b.shape(fc), [10, 1, 1]);
        let g = b.finish(&[fc]);
        assert_eq!(g.conv_count(), 1);
    }

    #[test]
    fn seeds_differ_per_layer() {
        let mut b = NetBuilder::new("t", [3, 8, 8]);
        let c1 = b.conv(Graph::INPUT, 4, 3, 1, 1, None);
        let c2 = b.conv(c1, 4, 3, 1, 1, None);
        let w1 = match &b.graph().node(c1).kind {
            LayerKind::Conv(c) => c.weights.clone(),
            _ => unreachable!(),
        };
        let w2 = match &b.graph().node(c2).kind {
            LayerKind::Conv(c) => c.weights.clone(),
            _ => unreachable!(),
        };
        assert_ne!(w1.iter().collect::<Vec<_>>(), w2.iter().collect::<Vec<_>>());
    }

    #[test]
    fn same_name_same_network() {
        let build = || {
            let mut b = NetBuilder::new("stable", [3, 8, 8]);
            let c = b.conv(Graph::INPUT, 4, 3, 1, 1, None);
            b.finish(&[c])
        };
        assert_eq!(build(), build());
    }

    #[test]
    #[should_panic(expected = "model construction error")]
    fn bad_layer_panics_at_construction() {
        let mut b = NetBuilder::new("t", [3, 4, 4]);
        b.max_pool(Graph::INPUT, 9, 1, 0); // window larger than input
    }
}
