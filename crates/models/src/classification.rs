//! The five image-classification networks of Table II, at full (descriptor)
//! scale: AlexNet, ResNet-18, VGG-16, Inception-v4, GoogLeNet.
//!
//! Architectures follow the deployed Caffe definitions the paper uses, with
//! two documented approximations: grouped AlexNet convolutions are built
//! ungrouped, and Inception-v4's asymmetric 1×7/7×1 convolutions are built
//! as 3×3 (the IR is square-kernel; parameter counts stay within a few
//! percent). Layer counts match Table II exactly — asserted in tests.

use trtsim_ir::graph::{Activation, Graph, NodeId, PoolKind};

use crate::common::NetBuilder;

const RELU: Option<Activation> = Some(Activation::Relu);

/// AlexNet (Caffe): 5 conv, 3 max pool, 3 FC; 227×227 input.
pub fn alexnet() -> Graph {
    let mut b = NetBuilder::new("Alexnet", [3, 227, 227]);
    let c1 = b.conv(Graph::INPUT, 96, 11, 4, 0, RELU);
    let n1 = b.lrn(c1);
    let p1 = b.max_pool(n1, 3, 2, 0);
    let c2 = b.conv(p1, 256, 5, 1, 2, RELU);
    let n2 = b.lrn(c2);
    let p2 = b.max_pool(n2, 3, 2, 0);
    let c3 = b.conv(p2, 384, 3, 1, 1, RELU);
    let c4 = b.conv(c3, 384, 3, 1, 1, RELU);
    let c5 = b.conv(c4, 256, 3, 1, 1, RELU);
    let p5 = b.max_pool(c5, 3, 2, 0);
    let f = b.flatten(p5);
    let fc6 = b.fc(f, 4096, RELU);
    let d6 = b.dropout(fc6, 0.5);
    let fc7 = b.fc(d6, 4096, RELU);
    let d7 = b.dropout(fc7, 0.5);
    let fc8 = b.fc(d7, 1000, None);
    let sm = b.softmax(fc8);
    b.finish(&[sm])
}

/// VGG-16: 13 conv, 5 max pool, 3 FC; 224×224 input.
pub fn vgg16() -> Graph {
    let mut b = NetBuilder::new("vgg-16", [3, 224, 224]);
    let mut x = Graph::INPUT;
    for (reps, channels) in [(2usize, 64usize), (2, 128), (3, 256), (3, 512), (3, 512)] {
        for _ in 0..reps {
            x = b.conv(x, channels, 3, 1, 1, RELU);
        }
        x = b.max_pool(x, 2, 2, 0);
    }
    let f = b.flatten(x);
    let fc6 = b.fc(f, 4096, RELU);
    let fc7 = b.fc(fc6, 4096, RELU);
    let fc8 = b.fc(fc7, 1000, None);
    let sm = b.softmax(fc8);
    b.finish(&[sm])
}

fn basic_block(b: &mut NetBuilder, x: NodeId, channels: usize, stride: usize) -> NodeId {
    let c1 = b.conv(x, channels, 3, stride, 1, RELU);
    let c2 = b.conv(c1, channels, 3, 1, 1, None);
    let skip = if stride != 1 || b.shape(x)[0] != channels {
        b.conv(x, channels, 1, stride, 0, None)
    } else {
        x
    };
    let sum = b.add(c2, skip);
    b.act(sum, Activation::Relu)
}

/// ResNet-18 (Caffe deploy form): 21 conv (classifier as 1×1 conv), 2 max
/// pool; 224×224 input.
pub fn resnet18() -> Graph {
    let mut b = NetBuilder::new("ResNet-18", [3, 224, 224]);
    let c1 = b.conv(Graph::INPUT, 64, 7, 2, 3, RELU);
    let p1 = b.max_pool(c1, 3, 2, 1);
    let mut x = p1;
    for (stage, channels) in [64usize, 128, 256, 512].iter().enumerate() {
        for block in 0..2 {
            let stride = if stage > 0 && block == 0 { 2 } else { 1 };
            x = basic_block(&mut b, x, *channels, stride);
        }
    }
    let gp = b.global_pool(x, PoolKind::Max);
    let fc = b.conv(gp, 1000, 1, 1, 0, None); // classifier as 1x1 conv
    let sm = b.softmax(fc);
    b.finish(&[sm])
}

fn inception_module(
    b: &mut NetBuilder,
    x: NodeId,
    c1: usize,
    (c3r, c3): (usize, usize),
    (c5r, c5): (usize, usize),
    cp: usize,
) -> NodeId {
    let b1 = b.conv(x, c1, 1, 1, 0, RELU);
    let b3r = b.conv(x, c3r, 1, 1, 0, RELU);
    let b3 = b.conv(b3r, c3, 3, 1, 1, RELU);
    let b5r = b.conv(x, c5r, 1, 1, 0, RELU);
    let b5 = b.conv(b5r, c5, 5, 1, 2, RELU);
    let bp = b.max_pool(x, 3, 1, 1);
    let bpp = b.conv(bp, cp, 1, 1, 0, RELU);
    b.concat(&[b1, b3, b5, bpp])
}

/// GoogLeNet (BVLC, with both auxiliary training heads left in the deploy
/// graph): 57 backbone conv + 2 aux conv, 14 max pool; 224×224 input.
///
/// The auxiliary heads do not reach the output, so the engine builder's
/// dead-layer pass removes them — which is how a 51 MiB model becomes a
/// ~13 MiB FP16 engine in the paper's Table II.
pub fn googlenet() -> Graph {
    let mut b = NetBuilder::new("Googlenet", [3, 224, 224]);
    let c1 = b.conv(Graph::INPUT, 64, 7, 2, 3, RELU);
    let p1 = b.max_pool(c1, 3, 2, 1);
    let n1 = b.lrn(p1);
    let c2r = b.conv(n1, 64, 1, 1, 0, RELU);
    let c2 = b.conv(c2r, 192, 3, 1, 1, RELU);
    let n2 = b.lrn(c2);
    let p2 = b.max_pool(n2, 3, 2, 1);

    let i3a = inception_module(&mut b, p2, 64, (96, 128), (16, 32), 32);
    let i3b = inception_module(&mut b, i3a, 128, (128, 192), (32, 96), 64);
    let p3 = b.max_pool(i3b, 3, 2, 1);

    let i4a = inception_module(&mut b, p3, 192, (96, 208), (16, 48), 64);
    // Auxiliary head 1 (dead at inference).
    let aux1_pool = b.avg_pool(i4a, 5, 3, 0);
    let aux1_conv = b.conv(aux1_pool, 128, 1, 1, 0, RELU);
    let aux1_fc1 = b.fc(aux1_conv, 1024, RELU);
    let _aux1_fc2 = b.fc(aux1_fc1, 1000, None);

    let i4b = inception_module(&mut b, i4a, 160, (112, 224), (24, 64), 64);
    let i4c = inception_module(&mut b, i4b, 128, (128, 256), (24, 64), 64);
    let i4d = inception_module(&mut b, i4c, 112, (144, 288), (32, 64), 64);
    // Auxiliary head 2 (dead at inference).
    let aux2_pool = b.avg_pool(i4d, 5, 3, 0);
    let aux2_conv = b.conv(aux2_pool, 128, 1, 1, 0, RELU);
    let aux2_fc1 = b.fc(aux2_conv, 1024, RELU);
    let _aux2_fc2 = b.fc(aux2_fc1, 1000, None);

    let i4e = inception_module(&mut b, i4d, 256, (160, 320), (32, 128), 128);
    let p4 = b.max_pool(i4e, 3, 2, 1);
    let i5a = inception_module(&mut b, p4, 256, (160, 320), (32, 128), 128);
    let i5b = inception_module(&mut b, i5a, 384, (192, 384), (48, 128), 128);

    let gp = b.global_pool(i5b, PoolKind::Max);
    let drop = b.dropout(gp, 0.4);
    let fc = b.fc(drop, 1000, None);
    let sm = b.softmax(fc);
    b.finish(&[sm])
}

fn inception_a(b: &mut NetBuilder, x: NodeId) -> NodeId {
    let b1 = b.conv(x, 96, 1, 1, 0, RELU);
    let b2r = b.conv(x, 64, 1, 1, 0, RELU);
    let b2 = b.conv(b2r, 96, 3, 1, 1, RELU);
    let b3a = b.conv(x, 64, 1, 1, 0, RELU);
    let b3b = b.conv(b3a, 96, 3, 1, 1, RELU);
    let b3c = b.conv(b3b, 96, 3, 1, 1, RELU);
    let bp = b.max_pool(x, 3, 1, 1);
    let bpp = b.conv(bp, 96, 1, 1, 0, RELU);
    b.concat(&[b1, b2, b3c, bpp])
}

fn reduction_a(b: &mut NetBuilder, x: NodeId) -> NodeId {
    let b1 = b.conv(x, 384, 3, 2, 0, RELU);
    let b2a = b.conv(x, 192, 1, 1, 0, RELU);
    let b2b = b.conv(b2a, 224, 3, 1, 1, RELU);
    let b2c = b.conv(b2b, 256, 3, 2, 0, RELU);
    let bp = b.max_pool(x, 3, 2, 0);
    b.concat(&[b1, b2c, bp])
}

fn inception_b(b: &mut NetBuilder, x: NodeId) -> NodeId {
    let b1 = b.conv(x, 384, 1, 1, 0, RELU);
    let b2a = b.conv(x, 192, 1, 1, 0, RELU);
    let b2b = b.conv_rect(b2a, 224, (1, 7), (0, 3), RELU);
    let b2c = b.conv_rect(b2b, 256, (7, 1), (3, 0), RELU);
    let b3a = b.conv(x, 192, 1, 1, 0, RELU);
    let b3b = b.conv_rect(b3a, 192, (7, 1), (3, 0), RELU);
    let b3c = b.conv_rect(b3b, 224, (1, 7), (0, 3), RELU);
    let b3d = b.conv_rect(b3c, 224, (7, 1), (3, 0), RELU);
    let b3e = b.conv_rect(b3d, 256, (1, 7), (0, 3), RELU);
    let bp = b.max_pool(x, 3, 1, 1);
    let bpp = b.conv(bp, 128, 1, 1, 0, RELU);
    b.concat(&[b1, b2c, b3e, bpp])
}

fn reduction_b(b: &mut NetBuilder, x: NodeId) -> NodeId {
    let b1a = b.conv(x, 192, 1, 1, 0, RELU);
    let b1b = b.conv(b1a, 192, 3, 2, 0, RELU);
    let b2a = b.conv(x, 256, 1, 1, 0, RELU);
    let b2b = b.conv_rect(b2a, 256, (1, 7), (0, 3), RELU);
    let b2c = b.conv_rect(b2b, 320, (7, 1), (3, 0), RELU);
    let b2d = b.conv(b2c, 320, 3, 2, 0, RELU);
    let bp = b.max_pool(x, 3, 2, 0);
    b.concat(&[b1b, b2d, bp])
}

fn inception_c(b: &mut NetBuilder, x: NodeId) -> NodeId {
    let b1 = b.conv(x, 256, 1, 1, 0, RELU);
    let b2 = b.conv(x, 384, 1, 1, 0, RELU);
    let b2a = b.conv_rect(b2, 256, (1, 3), (0, 1), RELU);
    let b2b = b.conv_rect(b2, 256, (3, 1), (1, 0), RELU);
    let b3a = b.conv(x, 384, 1, 1, 0, RELU);
    let b3b = b.conv_rect(b3a, 448, (1, 3), (0, 1), RELU);
    let b3c = b.conv_rect(b3b, 512, (3, 1), (1, 0), RELU);
    let b3d = b.conv_rect(b3c, 256, (1, 3), (0, 1), RELU);
    let b3e = b.conv_rect(b3c, 256, (3, 1), (1, 0), RELU);
    let bp = b.max_pool(x, 3, 1, 1);
    let bpp = b.conv(bp, 256, 1, 1, 0, RELU);
    b.concat(&[b1, b2a, b2b, b3d, b3e, bpp])
}

/// Inception-v4: 149 conv, 19 max pool; 299×299 input.
pub fn inception_v4() -> Graph {
    let mut b = NetBuilder::new("inception-v4", [3, 299, 299]);
    // Stem.
    let c1 = b.conv(Graph::INPUT, 32, 3, 2, 0, RELU);
    let c2 = b.conv(c1, 32, 3, 1, 0, RELU);
    let c3 = b.conv(c2, 64, 3, 1, 1, RELU);
    let s1p = b.max_pool(c3, 3, 2, 0);
    let s1c = b.conv(c3, 96, 3, 2, 0, RELU);
    let s1 = b.concat(&[s1p, s1c]);
    let s2a1 = b.conv(s1, 64, 1, 1, 0, RELU);
    let s2a2 = b.conv(s2a1, 96, 3, 1, 0, RELU);
    let s2b1 = b.conv(s1, 64, 1, 1, 0, RELU);
    let s2b2 = b.conv_rect(s2b1, 64, (7, 1), (3, 0), RELU);
    let s2b3 = b.conv_rect(s2b2, 64, (1, 7), (0, 3), RELU);
    let s2b4 = b.conv(s2b3, 96, 3, 1, 0, RELU);
    let s2 = b.concat(&[s2a2, s2b4]);
    let s3c = b.conv(s2, 192, 3, 2, 0, RELU);
    let s3p = b.max_pool(s2, 3, 2, 0);
    let mut x = b.concat(&[s3c, s3p]);

    for _ in 0..4 {
        x = inception_a(&mut b, x);
    }
    x = reduction_a(&mut b, x);
    for _ in 0..7 {
        x = inception_b(&mut b, x);
    }
    x = reduction_b(&mut b, x);
    for _ in 0..3 {
        x = inception_c(&mut b, x);
    }
    let gp = b.global_pool(x, PoolKind::Max);
    let drop = b.dropout(gp, 0.2);
    let fc = b.fc(drop, 1000, None);
    let sm = b.softmax(fc);
    b.finish(&[sm])
}

#[cfg(test)]
mod tests {
    use super::*;

    /// MiB at 4 bytes per parameter — the unit of the paper's Table II.
    fn fp32_mib(g: &Graph) -> f64 {
        g.fp32_bytes() as f64 / (1 << 20) as f64
    }

    #[test]
    fn alexnet_matches_table2() {
        let g = alexnet();
        assert_eq!(g.conv_count(), 5);
        assert_eq!(g.max_pool_count(), 3);
        let mib = fp32_mib(&g);
        assert!(
            (210.0..260.0).contains(&mib),
            "AlexNet {mib:.1} MiB vs paper 232.56"
        );
    }

    #[test]
    fn vgg16_matches_table2() {
        let g = vgg16();
        assert_eq!(g.conv_count(), 13);
        assert_eq!(g.max_pool_count(), 5);
        let mib = fp32_mib(&g);
        assert!(
            (500.0..560.0).contains(&mib),
            "VGG-16 {mib:.1} MiB vs paper 527.8"
        );
    }

    #[test]
    fn resnet18_matches_table2() {
        let g = resnet18();
        assert_eq!(g.conv_count(), 21);
        assert_eq!(g.max_pool_count(), 2);
        let mib = fp32_mib(&g);
        assert!(
            (40.0..50.0).contains(&mib),
            "ResNet-18 {mib:.1} MiB vs paper 44.65"
        );
    }

    #[test]
    fn googlenet_matches_table2() {
        let g = googlenet();
        // 57 backbone convs (Table II) + 2 aux-head convs that the engine's
        // dead-layer pass strips.
        assert_eq!(g.conv_count(), 59);
        assert_eq!(g.max_pool_count(), 14);
        let mib = fp32_mib(&g);
        assert!(
            (45.0..57.0).contains(&mib),
            "GoogLeNet {mib:.1} MiB vs paper 51.05"
        );
    }

    #[test]
    fn inception_v4_matches_table2() {
        let g = inception_v4();
        assert_eq!(g.conv_count(), 149);
        assert_eq!(g.max_pool_count(), 19);
        let mib = fp32_mib(&g);
        assert!(
            (140.0..200.0).contains(&mib),
            "Inception-v4 {mib:.1} MiB vs paper 163.12"
        );
    }

    #[test]
    fn all_validate_with_correct_inputs() {
        for (g, input) in [
            (alexnet(), [3usize, 227, 227]),
            (vgg16(), [3, 224, 224]),
            (resnet18(), [3, 224, 224]),
            (googlenet(), [3, 224, 224]),
            (inception_v4(), [3, 299, 299]),
        ] {
            assert_eq!(g.input_shape(), input);
            assert!(g.validate().is_ok(), "{} invalid", g.name());
        }
    }
}
