//! The paper's 13-network model zoo (Table II).
//!
//! Every network exists at **descriptor scale** — the full published
//! architecture with seeded (virtual) weights, used by the size, latency,
//! throughput, and concurrency experiments, where only shapes matter — and
//! the classification networks also exist at **numeric scale**
//! ([`numeric`]) — channel-reduced executable variants with real weights,
//! used by the accuracy and output-consistency experiments.
//!
//! # Examples
//!
//! ```
//! use trtsim_models::ModelId;
//! let g = ModelId::TinyYolov3.descriptor();
//! assert_eq!(g.conv_count(), 13); // Table II
//! let info = ModelId::TinyYolov3.info();
//! assert_eq!(info.framework, trtsim_models::Framework::Darknet);
//! ```

#![warn(missing_docs)]

pub mod classification;
pub mod common;
pub mod decode;
pub mod detection;
pub mod numeric;
pub mod segmentation;

use trtsim_ir::Graph;

/// The computer-vision task a model performs (Table II's second column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VisionTask {
    /// Image classification.
    Classification,
    /// Object detection.
    Detection,
    /// Semantic segmentation.
    Segmentation,
}

/// The framework the model was trained in (Table II's third column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Framework {
    /// Caffe.
    Caffe,
    /// TensorFlow.
    TensorFlow,
    /// PyTorch.
    PyTorch,
    /// Darknet.
    Darknet,
}

/// The 13 networks of the paper's Table II.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelId {
    /// AlexNet (classification, Caffe).
    Alexnet,
    /// ResNet-18 (classification, Caffe).
    Resnet18,
    /// VGG-16 (classification, Caffe).
    Vgg16,
    /// Inception-v4 (classification, Caffe).
    InceptionV4,
    /// GoogLeNet (classification, Caffe).
    Googlenet,
    /// ssd-inception-v2 (detection, TensorFlow).
    SsdInceptionV2,
    /// Detectnet-Coco-Dog (detection, Caffe).
    DetectnetCocoDog,
    /// pednet (detection, Caffe).
    Pednet,
    /// Tiny-YOLOv3 (detection, Darknet).
    TinyYolov3,
    /// facenet (detection, Caffe).
    Facenet,
    /// MobileNetV1-SSD (detection, TensorFlow).
    Mobilenetv1,
    /// MTCNN (detection, Caffe).
    Mtcnn,
    /// fcn-resnet18-cityscapes (segmentation, PyTorch).
    FcnResnet18Cityscapes,
}

/// Static metadata for one zoo entry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModelInfo {
    /// Display name matching the paper's tables.
    pub name: &'static str,
    /// Vision task.
    pub task: VisionTask,
    /// Training framework.
    pub framework: Framework,
    /// Host-side glue per inference in the serving loop, µs (pre/post
    /// processing, synchronization; calibrated against Table VII FPS).
    pub host_glue_us: f64,
    /// Additional per-inference harness overhead in the paper's Table VIII
    /// measurement setup, µs. Three models (GoogLeNet, Tiny-YOLOv3, MTCNN)
    /// were driven through heavier wrappers there — their Table VIII
    /// latencies are an order of magnitude above their kernel time — so this
    /// is calibrated per model and documented in EXPERIMENTS.md.
    pub table8_harness_us: f64,
}

impl ModelId {
    /// All 13 models in Table II's row order.
    pub fn all() -> [ModelId; 13] {
        use ModelId::*;
        [
            Alexnet,
            Resnet18,
            Vgg16,
            InceptionV4,
            Googlenet,
            SsdInceptionV2,
            DetectnetCocoDog,
            Pednet,
            TinyYolov3,
            Facenet,
            Mobilenetv1,
            Mtcnn,
            FcnResnet18Cityscapes,
        ]
    }

    /// The classification models evaluated in Tables III–VII.
    pub fn classification_models() -> [ModelId; 5] {
        [
            ModelId::Alexnet,
            ModelId::Resnet18,
            ModelId::Vgg16,
            ModelId::InceptionV4,
            ModelId::Googlenet,
        ]
    }

    /// Metadata.
    pub fn info(self) -> ModelInfo {
        use Framework::*;
        use ModelId::*;
        use VisionTask::*;
        match self {
            Alexnet => ModelInfo {
                name: "Alexnet",
                task: Classification,
                framework: Caffe,
                host_glue_us: 1_400.0,
                table8_harness_us: 0.0,
            },
            Resnet18 => ModelInfo {
                name: "ResNet-18",
                task: Classification,
                framework: Caffe,
                host_glue_us: 2_800.0,
                table8_harness_us: 0.0,
            },
            Vgg16 => ModelInfo {
                name: "vgg-16",
                task: Classification,
                framework: Caffe,
                host_glue_us: 4_000.0,
                table8_harness_us: 0.0,
            },
            InceptionV4 => ModelInfo {
                name: "inception-v4",
                task: Classification,
                framework: Caffe,
                host_glue_us: 4_500.0,
                table8_harness_us: 0.0,
            },
            Googlenet => ModelInfo {
                name: "Googlenet",
                task: Classification,
                framework: Caffe,
                host_glue_us: 4_200.0,
                table8_harness_us: 500_000.0,
            },
            SsdInceptionV2 => ModelInfo {
                name: "ssd-inception-v2",
                task: Detection,
                framework: TensorFlow,
                host_glue_us: 5_000.0,
                table8_harness_us: 0.0,
            },
            DetectnetCocoDog => ModelInfo {
                name: "Detectnet-Coco-Dog",
                task: Detection,
                framework: Caffe,
                host_glue_us: 5_000.0,
                table8_harness_us: 0.0,
            },
            Pednet => ModelInfo {
                name: "pednet",
                task: Detection,
                framework: Caffe,
                host_glue_us: 5_000.0,
                table8_harness_us: 0.0,
            },
            TinyYolov3 => ModelInfo {
                name: "Tiny-Yolov3",
                task: Detection,
                framework: Darknet,
                host_glue_us: 2_000.0,
                table8_harness_us: 450_000.0,
            },
            Facenet => ModelInfo {
                name: "facenet",
                task: Detection,
                framework: Caffe,
                host_glue_us: 3_000.0,
                table8_harness_us: 0.0,
            },
            Mobilenetv1 => ModelInfo {
                name: "Mobilenetv1",
                task: Detection,
                framework: TensorFlow,
                host_glue_us: 3_000.0,
                table8_harness_us: 0.0,
            },
            Mtcnn => ModelInfo {
                name: "MTCNN",
                task: Detection,
                framework: Caffe,
                host_glue_us: 500.0,
                table8_harness_us: 850_000.0,
            },
            FcnResnet18Cityscapes => ModelInfo {
                name: "fcn-resnet18-cityscapes",
                task: Segmentation,
                framework: PyTorch,
                host_glue_us: 5_000.0,
                table8_harness_us: 0.0,
            },
        }
    }

    /// The full-size architecture with seeded weights (Table II geometry).
    pub fn descriptor(self) -> Graph {
        match self {
            ModelId::Alexnet => classification::alexnet(),
            ModelId::Resnet18 => classification::resnet18(),
            ModelId::Vgg16 => classification::vgg16(),
            ModelId::InceptionV4 => classification::inception_v4(),
            ModelId::Googlenet => classification::googlenet(),
            ModelId::SsdInceptionV2 => detection::ssd_inception_v2(),
            ModelId::DetectnetCocoDog => detection::detectnet("Detectnet-Coco-Dog"),
            ModelId::Pednet => detection::detectnet("pednet"),
            ModelId::TinyYolov3 => detection::tiny_yolov3(),
            ModelId::Facenet => detection::detectnet("facenet"),
            ModelId::Mobilenetv1 => detection::mobilenet_v1(),
            ModelId::Mtcnn => detection::mtcnn(),
            ModelId::FcnResnet18Cityscapes => segmentation::fcn_resnet18_cityscapes(),
        }
    }
}

impl std::fmt::Display for ModelId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.info().name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_thirteen_build_and_validate() {
        for id in ModelId::all() {
            let g = id.descriptor();
            assert!(g.validate().is_ok(), "{id} invalid");
            assert_eq!(g.name(), id.info().name);
        }
    }

    #[test]
    fn table2_unoptimized_sizes_are_in_range() {
        // (model, paper MiB, tolerance fraction)
        let expected: [(ModelId, f64, f64); 13] = [
            (ModelId::Alexnet, 232.56, 0.12),
            (ModelId::Resnet18, 44.65, 0.12),
            (ModelId::Vgg16, 527.8, 0.08),
            (ModelId::InceptionV4, 163.12, 0.25),
            (ModelId::Googlenet, 51.05, 0.12),
            (ModelId::SsdInceptionV2, 95.58, 0.35),
            (ModelId::DetectnetCocoDog, 22.82, 0.25),
            (ModelId::Pednet, 22.82, 0.25),
            (ModelId::TinyYolov3, 33.1, 0.12),
            (ModelId::Facenet, 22.82, 0.25),
            (ModelId::Mobilenetv1, 26.07, 0.45),
            (ModelId::Mtcnn, 1.9, 1.0),
            (ModelId::FcnResnet18Cityscapes, 44.95, 0.12),
        ];
        for (id, paper, tol) in expected {
            let mib = id.descriptor().fp32_bytes() as f64 / (1 << 20) as f64;
            let rel = (mib - paper).abs() / paper;
            assert!(
                rel <= tol,
                "{id}: {mib:.2} MiB vs paper {paper} (rel {rel:.2})"
            );
        }
    }

    #[test]
    fn classification_subset_is_classification() {
        for id in ModelId::classification_models() {
            assert_eq!(id.info().task, VisionTask::Classification);
        }
    }

    #[test]
    fn display_matches_paper_names() {
        assert_eq!(ModelId::TinyYolov3.to_string(), "Tiny-Yolov3");
        assert_eq!(
            ModelId::FcnResnet18Cityscapes.to_string(),
            "fcn-resnet18-cityscapes"
        );
    }
}
