//! The un-optimized framework execution path.
//!
//! The paper's baseline runs trained models straight from their framework
//! (Caffe/TensorFlow/Darknet) with no inference engine: every layer becomes
//! one or more naive FP32 kernels (im2col materialization + unblocked GEMM),
//! each layer synchronizes before the next, and the framework adds per-layer
//! host glue. That stack of inefficiencies — no fusion, no tensor cores, no
//! tiling, per-layer round trips — is what TensorRT's 23–27× speedup
//! (Table VII) is measured against.

use trtsim_gpu::kernel::{KernelDesc, Precision};
use trtsim_ir::flops::LayerCost;
use trtsim_ir::graph::LayerKind;

/// Sustained fraction of FP32 peak a naive unblocked GEMM achieves
/// (no shared-memory tiling, no vectorized loads).
pub const NAIVE_GEMM_EFFICIENCY: f64 = 0.08;

/// Sustained efficiency of the simple elementwise/pool framework kernels.
pub const NAIVE_POINTWISE_EFFICIENCY: f64 = 0.25;

/// Host-side framework glue per layer, µs (Python/C++ dispatch, tensor
/// bookkeeping, per-layer synchronization).
pub const FRAMEWORK_LAYER_GLUE_US: f64 = 500.0;

/// Kernels the framework path launches for one layer, in order.
///
/// Convolutions lower to `im2col` (a pure data-movement kernel that
/// materializes the patch matrix in DRAM!) followed by `sgemm`; other layers
/// lower to one naive kernel. Structural layers launch nothing.
pub fn framework_kernels(
    kind: &LayerKind,
    cost: &LayerCost,
    out_shape: [usize; 3],
) -> Vec<KernelDesc> {
    match kind {
        LayerKind::Conv(c) => {
            let n = (out_shape[1] * out_shape[2]) as u64;
            let k = ((c.in_channels / c.groups) * c.kernel_h * c.kernel_w) as u64;
            let patch_bytes = n * k * 4;
            let im2col = KernelDesc::new("im2col4d_kernel")
                .grid(n.div_ceil(256).max(1), 256)
                .occupancy(8)
                .dram_bytes(cost.input_elems * 4 + patch_bytes) // reads input, WRITES patch matrix
                .precision(Precision::Fp32, false)
                .efficiency(NAIVE_POINTWISE_EFFICIENCY);
            let gemm = KernelDesc::new("sgemm_128x128_nn")
                .grid((c.out_channels as u64).div_ceil(128) * n.div_ceil(128), 256)
                .occupancy(2)
                .flops(cost.flops())
                .dram_bytes(patch_bytes + cost.weight_elems * 4 + cost.output_elems * 4)
                .precision(Precision::Fp32, false)
                .efficiency(NAIVE_GEMM_EFFICIENCY);
            let mut out = vec![im2col, gemm];
            if c.activation.is_some() {
                out.push(pointwise("relu_forward_kernel", cost.output_elems));
            }
            out
        }
        LayerKind::InnerProduct { activation, .. } => {
            let mut out = vec![KernelDesc::new("sgemv_kernel")
                .grid((cost.weight_elems / 4).div_ceil(256).max(1), 256)
                .flops(cost.flops())
                .dram_bytes(cost.weight_elems * 4 + cost.input_elems * 4 + cost.output_elems * 4)
                .precision(Precision::Fp32, false)
                .efficiency(NAIVE_GEMM_EFFICIENCY * 2.0)];
            if activation.is_some() {
                out.push(pointwise("relu_forward_kernel", cost.output_elems));
            }
            out
        }
        LayerKind::Pool { .. } | LayerKind::GlobalPool { .. } => {
            vec![traffic_kernel("pooling_fw_kernel", cost)]
        }
        LayerKind::Act(_) => vec![pointwise("activation_forward_kernel", cost.output_elems)],
        LayerKind::BatchNorm { .. } => vec![traffic_kernel("bn_forward_inference_kernel", cost)],
        LayerKind::Scale { .. } => vec![traffic_kernel("scale_forward_kernel", cost)],
        LayerKind::Lrn { .. } => vec![traffic_kernel("lrn_fill_scale_kernel", cost)],
        LayerKind::Eltwise { .. } => vec![traffic_kernel("eltwise_forward_kernel", cost)],
        LayerKind::Concat => vec![traffic_kernel("concat_copy_kernel", cost)],
        LayerKind::Softmax => vec![traffic_kernel("softmax_forward_kernel", cost)],
        LayerKind::Upsample { .. } => vec![traffic_kernel("upsample_nearest_kernel", cost)],
        LayerKind::Input
        | LayerKind::Flatten
        | LayerKind::Slice { .. }
        | LayerKind::Dropout { .. }
        | LayerKind::Identity => Vec::new(),
    }
}

fn pointwise(name: &str, elems: u64) -> KernelDesc {
    KernelDesc::new(name)
        .grid(elems.div_ceil(256).max(1), 256)
        .occupancy(8)
        .flops(elems)
        .dram_bytes(elems * 8) // read + write fp32
        .precision(Precision::Fp32, false)
        .efficiency(NAIVE_POINTWISE_EFFICIENCY)
}

fn traffic_kernel(name: &str, cost: &LayerCost) -> KernelDesc {
    KernelDesc::new(name)
        .grid(cost.output_elems.max(1).div_ceil(256).max(1), 256)
        .occupancy(8)
        .flops(cost.other_ops + 2 * cost.macs)
        .dram_bytes((cost.input_elems + cost.output_elems + cost.weight_elems) * 4)
        .precision(Precision::Fp32, false)
        .efficiency(NAIVE_POINTWISE_EFFICIENCY)
}

#[cfg(test)]
mod tests {
    use super::*;
    use trtsim_gpu::device::DeviceSpec;
    use trtsim_gpu::timing::kernel_busy_us;
    use trtsim_ir::flops::layer_cost;
    use trtsim_ir::graph::LayerKind;

    #[test]
    fn conv_lowered_to_im2col_gemm_relu() {
        let kind = LayerKind::conv_seeded(64, 32, 3, 1, 1, 0);
        let cost = layer_cost(&kind, &[[32, 28, 28]], [64, 28, 28]);
        let ks = framework_kernels(&kind, &cost, [64, 28, 28]);
        assert_eq!(ks.len(), 3);
        assert_eq!(ks[0].name, "im2col4d_kernel");
        assert_eq!(ks[1].name, "sgemm_128x128_nn");
        assert!(ks.iter().all(|k| k.precision == Precision::Fp32));
    }

    #[test]
    fn framework_conv_is_far_slower_than_tuned_tactic() {
        use crate::cost::kernel_desc;
        use crate::tactic::Tactic;
        let kind = LayerKind::conv_seeded(256, 256, 3, 1, 1, 0);
        let cost = layer_cost(&kind, &[[256, 28, 28]], [256, 28, 28]);
        let dev = DeviceSpec::xavier_nx();
        let naive: f64 = framework_kernels(&kind, &cost, [256, 28, 28])
            .iter()
            .map(|k| kernel_busy_us(k, &dev))
            .sum();
        let tuned = kernel_busy_us(
            &kernel_desc(
                &Tactic::conv_hmma(128, 128, ""),
                &kind,
                &cost,
                [256, 28, 28],
            ),
            &dev,
        );
        let speedup = naive / tuned;
        assert!(
            (20.0..120.0).contains(&speedup),
            "speedup {speedup:.1}x outside the paper's regime"
        );
    }

    #[test]
    fn structural_layers_launch_nothing() {
        let cost = LayerCost::default();
        assert!(framework_kernels(&LayerKind::Flatten, &cost, [1, 1, 1]).is_empty());
        assert!(framework_kernels(&LayerKind::Dropout { rate: 0.1 }, &cost, [1, 1, 1]).is_empty());
    }

    #[test]
    fn im2col_writes_patch_matrix() {
        // The hidden cost of the framework path: im2col DRAM traffic exceeds
        // the conv's own input size by ~kernel² ×.
        let kind = LayerKind::conv_seeded(8, 8, 3, 1, 1, 0);
        let cost = layer_cost(&kind, &[[8, 16, 16]], [8, 16, 16]);
        let ks = framework_kernels(&kind, &cost, [8, 16, 16]);
        assert!(ks[0].dram_bytes > cost.input_elems * 4 * 8);
    }
}
