//! Order-sensitive numeric execution of tactics.
//!
//! The `h884` kernels the paper profiles accumulate in FP16. FP16 addition is
//! far from associative, so the *order* in which a convolution's products are
//! summed — which depends on the tactic's tile/chunk geometry — changes the
//! result. When the autotuner picks different tactics on different builds
//! (because measured timings carry noise), the same input image can cross a
//! decision boundary differently: the paper's Finding 2.
//!
//! INT8 kernels accumulate in integers (exact and associative); their
//! numeric identity across builds is a useful control in tests.

use trtsim_gpu::kernel::Precision;
use trtsim_ir::graph::{Activation, ConvParams};
use trtsim_ir::tensor::Tensor;
use trtsim_util::f16::{round_f16, QuantParams};

use crate::tactic::{AccumOrder, Tactic};

/// Calibration scales for INT8 execution of one layer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuantDesc {
    /// Input activation quantization.
    pub input: QuantParams,
    /// Weight quantization.
    pub weights: QuantParams,
}

/// Accumulates a sequence of values under a tactic's ordering and precision.
///
/// For FP16 tactics every partial sum is rounded back onto the binary16 grid
/// (h884 semantics); chunked orders flush chunk subtotals into an FP32
/// carry, reproducing split-K behaviour.
#[derive(Debug, Clone)]
pub struct Reducer {
    order: AccumOrder,
    fp16: bool,
    scratch: Vec<f32>,
}

impl Reducer {
    /// Creates a reducer for the tactic's accumulation semantics.
    pub fn for_tactic(tactic: &Tactic) -> Self {
        Self {
            order: tactic.accum,
            fp16: tactic.precision == Precision::Fp16,
            scratch: Vec::new(),
        }
    }

    /// Reduces `terms` (already precision-rounded products) to a scalar.
    pub fn reduce(&mut self, terms: &[f32]) -> f32 {
        match self.order {
            AccumOrder::Sequential => self.fold_run(terms),
            AccumOrder::Chunked(chunk) => {
                let chunk = chunk.max(1) as usize;
                let mut carry = 0.0f64; // split-K partials combine in FP32-ish carry
                for c in terms.chunks(chunk) {
                    carry += f64::from(self.fold_run(c));
                }
                carry as f32
            }
            AccumOrder::Pairwise => {
                self.scratch.clear();
                self.scratch.extend_from_slice(terms);
                while self.scratch.len() > 1 {
                    let half = self.scratch.len().div_ceil(2);
                    for i in 0..self.scratch.len() / 2 {
                        let s = self.scratch[2 * i] + self.scratch[2 * i + 1];
                        self.scratch[i] = if self.fp16 { round_f16(s) } else { s };
                    }
                    if self.scratch.len() % 2 == 1 {
                        self.scratch[half - 1] = self.scratch[self.scratch.len() - 1];
                    }
                    self.scratch.truncate(half);
                }
                self.scratch.first().copied().unwrap_or(0.0)
            }
        }
    }

    fn fold_run(&self, terms: &[f32]) -> f32 {
        let mut acc = 0.0f32;
        for &t in terms {
            acc += t;
            if self.fp16 {
                acc = round_f16(acc);
            }
        }
        acc
    }
}

/// Executes a convolution under a tactic's numeric semantics.
///
/// * FP16 tactics round inputs, weights, and every partial sum to binary16.
/// * INT8 tactics quantize inputs/weights with `quant` and accumulate exactly.
/// * FP32 tactics match the reference executor bit-for-bit.
///
/// # Panics
///
/// Panics if an INT8 tactic is used without calibration scales, or if the
/// weight blob length mismatches the parameters.
pub fn conv_forward(
    params: &ConvParams,
    input: &Tensor,
    tactic: &Tactic,
    quant: Option<&QuantDesc>,
) -> Tensor {
    let weights = params.weights.materialize();
    let bias: Vec<f32> = params.bias.iter().collect();
    match tactic.precision {
        Precision::Fp32 => trtsim_ir::ops::conv2d(input, &weights, &bias, params),
        Precision::Fp16 => conv_fp16(params, input, &weights, &bias, tactic),
        Precision::Int8 => {
            let q = quant.expect("INT8 tactic requires calibration scales");
            conv_int8(params, input, &weights, &bias, q)
        }
    }
}

fn conv_fp16(
    params: &ConvParams,
    input: &Tensor,
    weights: &[f32],
    bias: &[f32],
    tactic: &Tactic,
) -> Tensor {
    let [ic, ih, iw] = input.shape();
    assert_eq!(ic, params.in_channels);
    let (kh, kw) = (params.kernel_h, params.kernel_w);
    let s = params.stride;
    let (ph, pw) = (params.pad_h as isize, params.pad_w as isize);
    let oh = (ih + 2 * params.pad_h - kh) / s + 1;
    let ow = (iw + 2 * params.pad_w - kw) / s + 1;
    let cpg_in = params.in_channels / params.groups;
    let cpg_out = params.out_channels / params.groups;

    // Round operands onto the binary16 grid once (engine weights and
    // activations are stored as FP16); per-term work is then one product
    // round plus one accumulate round.
    let rx: Vec<f32> = input.as_slice().iter().map(|&v| round_f16(v)).collect();
    let rw: Vec<f32> = weights.iter().map(|&v| round_f16(v)).collect();

    let chunk = match tactic.accum {
        AccumOrder::Chunked(c) => c.max(1) as usize,
        AccumOrder::Sequential => usize::MAX,
        AccumOrder::Pairwise => 0, // buffered path below
    };
    let mut pairwise = (tactic.accum == AccumOrder::Pairwise).then(|| Reducer::for_tactic(tactic));
    let mut terms: Vec<f32> = Vec::new();

    let mut out = Tensor::zeros([params.out_channels, oh, ow]);
    for oc in 0..params.out_channels {
        let group = oc / cpg_out;
        let b = bias.get(oc).copied().unwrap_or(0.0);
        let w_base = oc * cpg_in * kh * kw;
        for oy in 0..oh {
            for ox in 0..ow {
                // FP16 accumulator with an FP32-ish carry at chunk flushes
                // (split-K semantics; see `Reducer`).
                let mut carry = 0.0f64;
                let mut chunk_acc = 0.0f32;
                let mut in_chunk = 0usize;
                if pairwise.is_some() {
                    terms.clear();
                }
                for icg in 0..cpg_in {
                    let c_in = group * cpg_in + icg;
                    for ky in 0..kh {
                        let iy = (oy * s) as isize + ky as isize - ph;
                        if iy < 0 || iy >= ih as isize {
                            continue;
                        }
                        let row = (c_in * ih + iy as usize) * iw;
                        for kx in 0..kw {
                            let ix = (ox * s) as isize + kx as isize - pw;
                            if ix < 0 || ix >= iw as isize {
                                continue;
                            }
                            let product = round_f16(
                                rx[row + ix as usize] * rw[w_base + (icg * kh + ky) * kw + kx],
                            );
                            if pairwise.is_some() {
                                terms.push(product);
                            } else {
                                chunk_acc = round_f16(chunk_acc + product);
                                in_chunk += 1;
                                if in_chunk == chunk {
                                    carry += f64::from(chunk_acc);
                                    chunk_acc = 0.0;
                                    in_chunk = 0;
                                }
                            }
                        }
                    }
                }
                let acc = match &mut pairwise {
                    Some(reducer) => reducer.reduce(&terms) + b,
                    None => (carry + f64::from(chunk_acc)) as f32 + b,
                };
                *out.at_mut(oc, oy, ox) = match params.activation {
                    Some(a) => a.apply(acc),
                    None => acc,
                };
            }
        }
    }
    out
}

fn conv_int8(
    params: &ConvParams,
    input: &Tensor,
    weights: &[f32],
    bias: &[f32],
    quant: &QuantDesc,
) -> Tensor {
    let [ic, ih, iw] = input.shape();
    assert_eq!(ic, params.in_channels);
    let (kh, kw) = (params.kernel_h, params.kernel_w);
    let s = params.stride;
    let (ph, pw) = (params.pad_h as isize, params.pad_w as isize);
    let oh = (ih + 2 * params.pad_h - kh) / s + 1;
    let ow = (iw + 2 * params.pad_w - kw) / s + 1;
    let cpg_in = params.in_channels / params.groups;
    let cpg_out = params.out_channels / params.groups;

    // Quantize once up front (the engine stores INT8 weights).
    let qw: Vec<i32> = weights
        .iter()
        .map(|&w| i32::from(quant.weights.quantize(w)))
        .collect();
    let qx: Vec<i32> = input
        .as_slice()
        .iter()
        .map(|&x| i32::from(quant.input.quantize(x)))
        .collect();
    let out_scale = quant.input.scale * quant.weights.scale;

    let mut out = Tensor::zeros([params.out_channels, oh, ow]);
    for oc in 0..params.out_channels {
        let group = oc / cpg_out;
        let b = bias.get(oc).copied().unwrap_or(0.0);
        let w_base = oc * cpg_in * kh * kw;
        for oy in 0..oh {
            for ox in 0..ow {
                let mut acc: i64 = 0;
                for icg in 0..cpg_in {
                    let c_in = group * cpg_in + icg;
                    for ky in 0..kh {
                        let iy = (oy * s) as isize + ky as isize - ph;
                        if iy < 0 || iy >= ih as isize {
                            continue;
                        }
                        for kx in 0..kw {
                            let ix = (ox * s) as isize + kx as isize - pw;
                            if ix < 0 || ix >= iw as isize {
                                continue;
                            }
                            let xi = qx[(c_in * ih + iy as usize) * iw + ix as usize];
                            let wi = qw[w_base + (icg * kh + ky) * kw + kx];
                            acc += i64::from(xi) * i64::from(wi);
                        }
                    }
                }
                let v = acc as f32 * out_scale + b;
                *out.at_mut(oc, oy, ox) = match params.activation {
                    Some(a) => a.apply(v),
                    None => v,
                };
            }
        }
    }
    out
}

/// Executes a fully-connected layer under a tactic's numeric semantics
/// (FP16 tactics round operands and partials to binary16 in tactic order).
///
/// # Panics
///
/// Panics if `weights.len() != out_features · input.len()` or an INT8 tactic
/// is used (FC layers in the catalog are FP16/FP32 only).
pub fn fc_forward(
    input: &Tensor,
    weights: &[f32],
    bias: &[f32],
    out_features: usize,
    activation: Option<Activation>,
    tactic: &Tactic,
) -> Tensor {
    match tactic.precision {
        Precision::Fp32 => {
            trtsim_ir::ops::inner_product(input, weights, bias, out_features, activation)
        }
        Precision::Int8 => panic!("INT8 fully-connected tactics are not in the catalog"),
        Precision::Fp16 => {
            let in_features = input.len();
            assert_eq!(
                weights.len(),
                out_features * in_features,
                "fc weight mismatch"
            );
            let mut reducer = Reducer::for_tactic(tactic);
            let mut terms = Vec::with_capacity(in_features);
            let x = input.as_slice();
            let mut out = Tensor::zeros([out_features, 1, 1]);
            for o in 0..out_features {
                terms.clear();
                let row = &weights[o * in_features..(o + 1) * in_features];
                for (xi, wi) in x.iter().zip(row.iter()) {
                    terms.push(round_f16(round_f16(*xi) * round_f16(*wi)));
                }
                let acc = reducer.reduce(&terms) + bias.get(o).copied().unwrap_or(0.0);
                *out.at_mut(o, 0, 0) = match activation {
                    Some(a) => a.apply(acc),
                    None => acc,
                };
            }
            out
        }
    }
}

/// Rounds an activation tensor onto a precision's grid (kernel-boundary
/// fake quantization for non-GEMM layers in reduced-precision engines).
pub fn apply_precision(tensor: &mut Tensor, precision: Precision) {
    match precision {
        Precision::Fp32 => {}
        Precision::Fp16 => tensor.map_inplace(round_f16),
        Precision::Int8 => {
            let q = QuantParams::calibrate(tensor.as_slice());
            tensor.map_inplace(|x| q.round_trip(x));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trtsim_ir::graph::LayerKind;
    use trtsim_ir::weights::Weights;
    use trtsim_util::rng::Pcg32;

    fn test_conv(seed: u64) -> ConvParams {
        let mut rng = Pcg32::seed_from_u64(seed);
        let len = 8 * 8 * 3 * 3;
        ConvParams {
            out_channels: 8,
            in_channels: 8,
            kernel_h: 3,
            kernel_w: 3,
            stride: 1,
            pad_h: 1,
            pad_w: 1,
            groups: 1,
            weights: Weights::Dense((0..len).map(|_| rng.normal() as f32 * 0.2).collect()),
            bias: Weights::Dense(vec![0.01; 8]),
            activation: Some(Activation::Relu),
        }
    }

    fn test_input(seed: u64) -> Tensor {
        let mut rng = Pcg32::seed_from_u64(seed);
        Tensor::from_fn([8, 8, 8], |_, _, _| rng.normal() as f32)
    }

    #[test]
    fn fp32_tactic_matches_reference() {
        let params = test_conv(1);
        let input = test_input(2);
        let t = Tactic::conv_fp32(128, 64);
        let got = conv_forward(&params, &input, &t, None);
        let w = params.weights.materialize();
        let b: Vec<f32> = params.bias.iter().collect();
        let want = trtsim_ir::ops::conv2d(&input, &w, &b, &params);
        assert_eq!(got, want);
    }

    #[test]
    fn fp16_is_close_but_not_equal_to_fp32() {
        let params = test_conv(3);
        let input = test_input(4);
        let fp32 = conv_forward(&params, &input, &Tactic::conv_fp32(128, 64), None);
        let fp16 = conv_forward(&params, &input, &Tactic::conv_hmma(128, 64, ""), None);
        let mut max_rel = 0.0f32;
        let mut any_diff = false;
        for (a, b) in fp32.as_slice().iter().zip(fp16.as_slice()) {
            if a != b {
                any_diff = true;
            }
            if a.abs() > 0.1 {
                max_rel = max_rel.max((a - b).abs() / a.abs());
            }
        }
        assert!(any_diff, "fp16 should differ in low-order bits");
        assert!(max_rel < 0.05, "fp16 error too large: {max_rel}");
    }

    #[test]
    fn different_tiles_produce_different_fp16_results() {
        // The heart of Finding 2: same layer, same input, different tactic ⇒
        // different accumulation order ⇒ different bits.
        let params = test_conv(5);
        let input = test_input(6);
        let a = conv_forward(&params, &input, &Tactic::conv_hmma(256, 64, ""), None);
        let b = conv_forward(&params, &input, &Tactic::conv_hmma(128, 128, ""), None);
        assert_ne!(a, b);
        // But they agree to FP16 tolerance.
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            assert!((x - y).abs() <= 0.01 * x.abs().max(1.0));
        }
    }

    #[test]
    fn int8_is_deterministic_across_tile_choices() {
        let params = test_conv(7);
        let input = test_input(8);
        let q = QuantDesc {
            input: QuantParams::calibrate(input.as_slice()),
            weights: QuantParams::calibrate(&params.weights.materialize()),
        };
        let a = conv_forward(&params, &input, &Tactic::conv_int8(128, 64), Some(&q));
        let b = conv_forward(&params, &input, &Tactic::conv_int8(256, 64), Some(&q));
        assert_eq!(a, b, "integer accumulation is associative");
    }

    #[test]
    fn int8_tracks_fp32_within_quant_error() {
        let params = test_conv(9);
        let input = test_input(10);
        let q = QuantDesc {
            input: QuantParams::calibrate(input.as_slice()),
            weights: QuantParams::calibrate(&params.weights.materialize()),
        };
        let fp32 = conv_forward(&params, &input, &Tactic::conv_fp32(128, 64), None);
        let int8 = conv_forward(&params, &input, &Tactic::conv_int8(128, 64), Some(&q));
        let amax = fp32.amax();
        for (a, b) in fp32.as_slice().iter().zip(int8.as_slice()) {
            assert!((a - b).abs() < 0.08 * amax, "{a} vs {b}");
        }
    }

    #[test]
    fn reducer_orders_differ_on_adversarial_input() {
        let t_seq = Tactic::conv_fp32(1, 1); // sequential fp32
        let mut seq = Reducer::for_tactic(&t_seq);
        let mut chunked = Reducer {
            order: AccumOrder::Chunked(2),
            fp16: true,
            scratch: Vec::new(),
        };
        let mut pair = Reducer {
            order: AccumOrder::Pairwise,
            fp16: true,
            scratch: Vec::new(),
        };
        let terms: Vec<f32> = (0..64)
            .map(|i| {
                if i % 2 == 0 {
                    1.0 + i as f32 * 1e-3
                } else {
                    -1.0
                }
            })
            .collect();
        let a = seq.reduce(&terms);
        let b = chunked.reduce(&terms);
        let c = pair.reduce(&terms);
        // All approximate the same sum...
        let exact: f32 = terms.iter().sum();
        for v in [a, b, c] {
            assert!((v - exact).abs() < 0.1);
        }
        // ...but fp16 orders disagree with exact sequential fp32.
        assert!(b != a || c != a);
    }

    #[test]
    fn reducer_handles_empty_and_single() {
        let mut r = Reducer::for_tactic(&Tactic::conv_hmma(128, 64, ""));
        assert_eq!(r.reduce(&[]), 0.0);
        assert_eq!(r.reduce(&[2.5]), 2.5);
    }

    #[test]
    fn apply_precision_fp16_rounds() {
        let mut t = Tensor::from_vec([1, 1, 2], vec![1.0 / 3.0, 1.0]);
        apply_precision(&mut t, Precision::Fp16);
        assert_ne!(t.at(0, 0, 0), 1.0 / 3.0);
        assert_eq!(t.at(0, 0, 1), 1.0);
    }

    #[test]
    fn depthwise_numeric_fp16_runs() {
        let mut params = match LayerKind::conv_seeded(4, 4, 3, 1, 1, 0) {
            LayerKind::Conv(c) => c,
            _ => unreachable!(),
        };
        params.groups = 4;
        params.weights = Weights::Dense(vec![0.5; 4 * 9]);
        let input = test_input(11);
        let input = Tensor::from_vec([4, 8, 8], input.as_slice()[..4 * 64].to_vec());
        let mut t = Tactic::conv_hmma(64, 64, "");
        t.family = crate::tactic::TacticFamily::Depthwise;
        let out = conv_forward(&params, &input, &t, None);
        assert_eq!(out.shape(), [4, 8, 8]);
    }
}
