//! Order-sensitive numeric execution of tactics.
//!
//! The `h884` kernels the paper profiles accumulate in FP16. FP16 addition is
//! far from associative, so the *order* in which a convolution's products are
//! summed — which depends on the tactic's tile/chunk geometry — changes the
//! result. When the autotuner picks different tactics on different builds
//! (because measured timings carry noise), the same input image can cross a
//! decision boundary differently: the paper's Finding 2.
//!
//! INT8 kernels accumulate in integers (exact and associative); their
//! numeric identity across builds is a useful control in tests.

use trtsim_gpu::kernel::Precision;
use trtsim_ir::arena::TensorArena;
use trtsim_ir::graph::{Activation, ConvParams};
use trtsim_ir::layout::{self, Layout, LANES};
use trtsim_ir::tensor::Tensor;
use trtsim_ir::weights::Weights;
use trtsim_util::f16::{round_f16, QuantParams};

use crate::lanes::{
    note_scalar_values, note_vector_values, round8, round_f16_slice, LaneConv, F16_HI,
};
use crate::tactic::{AccumOrder, Tactic};

/// Times the FP16 Veltkamp fast path hit a value outside its exact range and
/// fell back to an exact scalar redo (a lane-kernel tile, or the legacy
/// snapshot path in `f16_interior_row`). Process lifetime, telemetry-only;
/// the kernels crate stays free of the metrics dependency by exposing a raw
/// monotonic count for upper layers to bridge.
static FP16_REDOS: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// Process-lifetime count of FP16 fast-path rollback/redo events.
pub fn fp16_redo_events() -> u64 {
    FP16_REDOS.load(std::sync::atomic::Ordering::Relaxed)
}

/// Records one FP16 rollback/redo event (lane tiles trap per tile).
pub(crate) fn note_fp16_redo() {
    FP16_REDOS.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
}

/// Calibration scales for INT8 execution of one layer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuantDesc {
    /// Input activation quantization.
    pub input: QuantParams,
    /// Weight quantization.
    pub weights: QuantParams,
}

/// Accumulates a sequence of values under a tactic's ordering and precision.
///
/// For FP16 tactics every partial sum is rounded back onto the binary16 grid
/// (h884 semantics); chunked orders flush chunk subtotals into an FP32
/// carry, reproducing split-K behaviour.
#[derive(Debug, Clone)]
pub struct Reducer {
    order: AccumOrder,
    fp16: bool,
    scratch: Vec<f32>,
}

impl Reducer {
    /// Creates a reducer for the tactic's accumulation semantics.
    pub fn for_tactic(tactic: &Tactic) -> Self {
        Self {
            order: tactic.accum,
            fp16: tactic.precision == Precision::Fp16,
            scratch: Vec::new(),
        }
    }

    /// Reduces `terms` (already precision-rounded products) to a scalar.
    pub fn reduce(&mut self, terms: &[f32]) -> f32 {
        match self.order {
            AccumOrder::Sequential => self.fold_run(terms),
            AccumOrder::Chunked(chunk) => {
                let chunk = chunk.max(1) as usize;
                let mut carry = 0.0f64; // split-K partials combine in FP32-ish carry
                for c in terms.chunks(chunk) {
                    carry += f64::from(self.fold_run(c));
                }
                carry as f32
            }
            AccumOrder::Pairwise => {
                self.scratch.clear();
                self.scratch.extend_from_slice(terms);
                while self.scratch.len() > 1 {
                    let half = self.scratch.len().div_ceil(2);
                    for i in 0..self.scratch.len() / 2 {
                        let s = self.scratch[2 * i] + self.scratch[2 * i + 1];
                        self.scratch[i] = if self.fp16 { round_f16(s) } else { s };
                    }
                    if self.scratch.len() % 2 == 1 {
                        self.scratch[half - 1] = self.scratch[self.scratch.len() - 1];
                    }
                    self.scratch.truncate(half);
                }
                self.scratch.first().copied().unwrap_or(0.0)
            }
        }
    }

    fn fold_run(&self, terms: &[f32]) -> f32 {
        let mut acc = 0.0f32;
        for &t in terms {
            acc += t;
            if self.fp16 {
                acc = round_f16(acc);
            }
        }
        acc
    }
}

/// Executes a convolution under a tactic's numeric semantics.
///
/// * FP16 tactics round inputs, weights, and every partial sum to binary16.
/// * INT8 tactics quantize inputs/weights with `quant` and accumulate exactly.
/// * FP32 tactics match the reference executor bit-for-bit.
///
/// # Panics
///
/// Panics if an INT8 tactic is used without calibration scales, or if the
/// weight blob length mismatches the parameters.
pub fn conv_forward(
    params: &ConvParams,
    input: &Tensor,
    tactic: &Tactic,
    quant: Option<&QuantDesc>,
) -> Tensor {
    let weights = params.weights.materialize();
    let bias: Vec<f32> = params.bias.iter().collect();
    match tactic.precision {
        Precision::Fp32 => trtsim_ir::ops::conv2d(input, &weights, &bias, params),
        Precision::Fp16 => conv_fp16(params, input, &weights, &bias, tactic),
        Precision::Int8 => {
            let q = quant.expect("INT8 tactic requires calibration scales");
            conv_int8(params, input, &weights, &bias, q)
        }
    }
}

/// The blocked physical layout [`PreparedConv::with_layouts`] can exploit
/// for this (params, tactic) pair, if any — the plan-time layout assignment
/// queries this when deciding which activations leave canonical CHW.
///
/// The preference comes from the tactic family's kernel descriptor
/// ([`crate::cost::preferred_layout`]): `CHWc8` for ungrouped convolutions
/// (output-channel lanes, contiguous blocked stores), `NHWC` for depthwise
/// ones (channel lanes, contiguous channel loads). `None` means the conv
/// has no lane kernel — grouped non-depthwise shapes, pairwise FP16, and
/// INT8 all stay on the legacy CHW paths.
pub fn lane_layout(params: &ConvParams, tactic: &Tactic) -> Option<Layout> {
    let prec_ok = match tactic.precision {
        Precision::Fp32 => true,
        Precision::Fp16 => tactic.accum != AccumOrder::Pairwise,
        Precision::Int8 => false,
    };
    if !prec_ok {
        return None;
    }
    let depthwise = params.groups > 1
        && params.groups == params.in_channels
        && params.groups == params.out_channels;
    match crate::cost::preferred_layout(tactic) {
        Layout::Chw => None,
        pref if params.groups == 1 => Some(pref),
        Layout::Nhwc if depthwise => Some(Layout::Nhwc),
        _ => None,
    }
}

/// Geometry of one convolution lowered against a concrete input shape.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ConvGeom {
    pub(crate) in_shape: [usize; 3],
    pub(crate) ih: usize,
    pub(crate) iw: usize,
    pub(crate) oh: usize,
    pub(crate) ow: usize,
    pub(crate) kh: usize,
    pub(crate) kw: usize,
    pub(crate) s: usize,
    pub(crate) ph: isize,
    pub(crate) pw: isize,
    pub(crate) cpg_in: usize,
    pub(crate) cpg_out: usize,
    pub(crate) out_channels: usize,
}

impl ConvGeom {
    fn of(params: &ConvParams, in_shape: [usize; 3]) -> Self {
        let [ic, ih, iw] = in_shape;
        assert_eq!(ic, params.in_channels, "conv input channel mismatch");
        let (kh, kw) = (params.kernel_h, params.kernel_w);
        let s = params.stride;
        Self {
            in_shape,
            ih,
            iw,
            oh: (ih + 2 * params.pad_h - kh) / s + 1,
            ow: (iw + 2 * params.pad_w - kw) / s + 1,
            kh,
            kw,
            s,
            ph: params.pad_h as isize,
            pw: params.pad_w as isize,
            cpg_in: params.in_channels / params.groups,
            cpg_out: params.out_channels / params.groups,
            out_channels: params.out_channels,
        }
    }
}

/// Output-pixel rectangle whose every kernel tap lands in bounds — the
/// region where precomputed input offsets are valid and no per-tap bounds
/// check is needed.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Interior {
    pub(crate) oy_lo: usize,
    pub(crate) oy_hi: usize,
    pub(crate) ox_lo: usize,
    pub(crate) ox_hi: usize,
}

impl Interior {
    fn of(params: &ConvParams, g: &ConvGeom) -> Self {
        let lo = |pad: usize, s: usize| pad.div_ceil(s);
        let hi = |dim: usize, pad: usize, k: usize, s: usize, o: usize| {
            if dim + pad >= k {
                ((dim + pad - k) / s + 1).min(o)
            } else {
                0
            }
        };
        Self {
            oy_lo: lo(params.pad_h, g.s),
            oy_hi: hi(g.ih, params.pad_h, g.kh, g.s, g.oh),
            ox_lo: lo(params.pad_w, g.s),
            ox_hi: hi(g.iw, params.pad_w, g.kw, g.s, g.ow),
        }
    }
}

/// Chunk length of a folded FP16 accumulation (`usize::MAX` = never flush).
pub(crate) fn fold_chunk(accum: AccumOrder) -> usize {
    match accum {
        AccumOrder::Chunked(c) => c.max(1) as usize,
        _ => usize::MAX,
    }
}

/// Applies an optional fused activation to one output value.
#[inline(always)]
pub(crate) fn apply_act(activation: Option<Activation>, v: f32) -> f32 {
    match activation {
        Some(a) => a.apply(v),
        None => v,
    }
}

/// Branch-free round-to-binary16 via the Veltkamp split `round_f16` uses on
/// its fast path. Only valid where [`fast_f16_ok`] holds — callers must
/// check the predicate and fall back to [`round_f16`] otherwise.
#[inline(always)]
pub(crate) fn veltkamp_f16(v: f32) -> f32 {
    let c = v * 8193.0;
    c - (c - v)
}

/// True when [`veltkamp_f16`] is bit-identical to [`round_f16`]: `v` is ±0
/// (both are the identity there) or its magnitude lies in the normal-f16
/// range covered by `round_f16`'s fast path. NaN, infinities, and
/// subnormal/overflow magnitudes all fail the check.
#[inline(always)]
fn fast_f16_ok(v: f32) -> bool {
    let a = v.abs();
    (6.103_515_6e-5..=32_768.0).contains(&a) || v == 0.0
}

fn conv_fp16(
    params: &ConvParams,
    input: &Tensor,
    weights: &[f32],
    bias: &[f32],
    tactic: &Tactic,
) -> Tensor {
    let g = ConvGeom::of(params, input.shape());
    // Round operands onto the binary16 grid once (engine weights and
    // activations are stored as FP16); per-term work is then one product
    // round plus one accumulate round.
    let rx: Vec<f32> = input.as_slice().iter().map(|&v| round_f16(v)).collect();
    let rw: Vec<f32> = weights.iter().map(|&v| round_f16(v)).collect();
    let mut out = Tensor::zeros([g.out_channels, g.oh, g.ow]);
    conv_fp16_dense(&g, &rx, &rw, bias, tactic, params.activation, &mut out);
    out
}

/// The dense FP16 walk over every output pixel, with operands already on the
/// binary16 grid. Shared by the per-call path ([`conv_fp16`]) and the
/// prepared fallback paths.
pub(crate) fn conv_fp16_dense(
    g: &ConvGeom,
    rx: &[f32],
    rw: &[f32],
    bias: &[f32],
    tactic: &Tactic,
    activation: Option<Activation>,
    out: &mut Tensor,
) {
    let chunk = fold_chunk(tactic.accum);
    let mut pairwise = (tactic.accum == AccumOrder::Pairwise).then(|| Reducer::for_tactic(tactic));
    let mut terms: Vec<f32> = Vec::new();
    for oc in 0..g.out_channels {
        let b = bias.get(oc).copied().unwrap_or(0.0);
        for oy in 0..g.oh {
            for ox in 0..g.ow {
                let sum = match &mut pairwise {
                    Some(reducer) => {
                        fp16_pixel_pairwise(rx, rw, g, oc, oy, ox, reducer, &mut terms)
                    }
                    None => fp16_pixel_folded(rx, rw, g, oc, oy, ox, chunk, false),
                };
                let acc = sum + b;
                *out.at_mut(oc, oy, ox) = match activation {
                    Some(a) => a.apply(acc),
                    None => acc,
                };
            }
        }
    }
}

/// One output pixel under folded (sequential/chunked) FP16 accumulation:
/// an FP16 accumulator with an FP32-ish carry at chunk flushes (split-K
/// semantics; see [`Reducer`]). Returns the pre-bias sum.
///
/// With `skip_zeros`, products against exactly-zero weights or exactly-zero
/// activations are elided; they still advance the split-K chunk position, so
/// flush boundaries land exactly where the dense walk puts them. Callers
/// must guarantee all `rx` values are finite (0·∞ would be NaN in the dense
/// walk).
#[allow(clippy::too_many_arguments)]
fn fp16_pixel_folded(
    rx: &[f32],
    rw: &[f32],
    g: &ConvGeom,
    oc: usize,
    oy: usize,
    ox: usize,
    chunk: usize,
    skip_zeros: bool,
) -> f32 {
    let group = oc / g.cpg_out;
    let w_base = oc * g.cpg_in * g.kh * g.kw;
    let mut carry = 0.0f64;
    let mut chunk_acc = 0.0f32;
    let mut in_chunk = 0usize;
    for icg in 0..g.cpg_in {
        let c_in = group * g.cpg_in + icg;
        for ky in 0..g.kh {
            let iy = (oy * g.s) as isize + ky as isize - g.ph;
            if iy < 0 || iy >= g.ih as isize {
                continue;
            }
            let row = (c_in * g.ih + iy as usize) * g.iw;
            for kx in 0..g.kw {
                let ix = (ox * g.s) as isize + kx as isize - g.pw;
                if ix < 0 || ix >= g.iw as isize {
                    continue;
                }
                let w = rw[w_base + (icg * g.kh + ky) * g.kw + kx];
                if !(skip_zeros && (w == 0.0 || rx[row + ix as usize] == 0.0)) {
                    chunk_acc = round_f16(chunk_acc + round_f16(rx[row + ix as usize] * w));
                }
                in_chunk += 1;
                if in_chunk == chunk {
                    carry += f64::from(chunk_acc);
                    chunk_acc = 0.0;
                    in_chunk = 0;
                }
            }
        }
    }
    (carry + f64::from(chunk_acc)) as f32
}

/// One output pixel under pairwise FP16 reduction (tree shape depends on
/// the term count, so no term may be elided). Returns the pre-bias sum.
#[allow(clippy::too_many_arguments)]
fn fp16_pixel_pairwise(
    rx: &[f32],
    rw: &[f32],
    g: &ConvGeom,
    oc: usize,
    oy: usize,
    ox: usize,
    reducer: &mut Reducer,
    terms: &mut Vec<f32>,
) -> f32 {
    let group = oc / g.cpg_out;
    let w_base = oc * g.cpg_in * g.kh * g.kw;
    terms.clear();
    for icg in 0..g.cpg_in {
        let c_in = group * g.cpg_in + icg;
        for ky in 0..g.kh {
            let iy = (oy * g.s) as isize + ky as isize - g.ph;
            if iy < 0 || iy >= g.ih as isize {
                continue;
            }
            let row = (c_in * g.ih + iy as usize) * g.iw;
            for kx in 0..g.kw {
                let ix = (ox * g.s) as isize + kx as isize - g.pw;
                if ix < 0 || ix >= g.iw as isize {
                    continue;
                }
                terms.push(round_f16(
                    rx[row + ix as usize] * rw[w_base + (icg * g.kh + ky) * g.kw + kx],
                ));
            }
        }
    }
    reducer.reduce(terms)
}

fn conv_int8(
    params: &ConvParams,
    input: &Tensor,
    weights: &[f32],
    bias: &[f32],
    quant: &QuantDesc,
) -> Tensor {
    let [ic, ih, iw] = input.shape();
    assert_eq!(ic, params.in_channels);
    let (kh, kw) = (params.kernel_h, params.kernel_w);
    let s = params.stride;
    let (ph, pw) = (params.pad_h as isize, params.pad_w as isize);
    let oh = (ih + 2 * params.pad_h - kh) / s + 1;
    let ow = (iw + 2 * params.pad_w - kw) / s + 1;
    let cpg_in = params.in_channels / params.groups;
    let cpg_out = params.out_channels / params.groups;

    // Quantize once up front (the engine stores INT8 weights).
    let qw: Vec<i32> = weights
        .iter()
        .map(|&w| i32::from(quant.weights.quantize(w)))
        .collect();
    let qx: Vec<i32> = input
        .as_slice()
        .iter()
        .map(|&x| i32::from(quant.input.quantize(x)))
        .collect();
    let out_scale = quant.input.scale * quant.weights.scale;

    let mut out = Tensor::zeros([params.out_channels, oh, ow]);
    for oc in 0..params.out_channels {
        let group = oc / cpg_out;
        let b = bias.get(oc).copied().unwrap_or(0.0);
        let w_base = oc * cpg_in * kh * kw;
        for oy in 0..oh {
            for ox in 0..ow {
                let mut acc: i64 = 0;
                for icg in 0..cpg_in {
                    let c_in = group * cpg_in + icg;
                    for ky in 0..kh {
                        let iy = (oy * s) as isize + ky as isize - ph;
                        if iy < 0 || iy >= ih as isize {
                            continue;
                        }
                        for kx in 0..kw {
                            let ix = (ox * s) as isize + kx as isize - pw;
                            if ix < 0 || ix >= iw as isize {
                                continue;
                            }
                            let xi = qx[(c_in * ih + iy as usize) * iw + ix as usize];
                            let wi = qw[w_base + (icg * kh + ky) * kw + kx];
                            acc += i64::from(xi) * i64::from(wi);
                        }
                    }
                }
                let v = acc as f32 * out_scale + b;
                *out.at_mut(oc, oy, ox) = match params.activation {
                    Some(a) => a.apply(v),
                    None => v,
                };
            }
        }
    }
    out
}

/// Executes a fully-connected layer under a tactic's numeric semantics
/// (FP16 tactics round operands and partials to binary16 in tactic order).
///
/// # Panics
///
/// Panics if `weights.len() != out_features · input.len()` or an INT8 tactic
/// is used (FC layers in the catalog are FP16/FP32 only).
pub fn fc_forward(
    input: &Tensor,
    weights: &[f32],
    bias: &[f32],
    out_features: usize,
    activation: Option<Activation>,
    tactic: &Tactic,
) -> Tensor {
    match tactic.precision {
        Precision::Fp32 => {
            trtsim_ir::ops::inner_product(input, weights, bias, out_features, activation)
        }
        Precision::Int8 => panic!("INT8 fully-connected tactics are not in the catalog"),
        Precision::Fp16 => {
            let in_features = input.len();
            assert_eq!(
                weights.len(),
                out_features * in_features,
                "fc weight mismatch"
            );
            let mut reducer = Reducer::for_tactic(tactic);
            let mut terms = Vec::with_capacity(in_features);
            let x = input.as_slice();
            let mut out = Tensor::zeros([out_features, 1, 1]);
            for o in 0..out_features {
                terms.clear();
                let row = &weights[o * in_features..(o + 1) * in_features];
                for (xi, wi) in x.iter().zip(row.iter()) {
                    terms.push(round_f16(round_f16(*xi) * round_f16(*wi)));
                }
                let acc = reducer.reduce(&terms) + bias.get(o).copied().unwrap_or(0.0);
                *out.at_mut(o, 0, 0) = match activation {
                    Some(a) => a.apply(acc),
                    None => acc,
                };
            }
            out
        }
    }
}

/// Rounds an activation tensor onto a precision's grid (kernel-boundary
/// fake quantization for non-GEMM layers in reduced-precision engines).
pub fn apply_precision(tensor: &mut Tensor, precision: Precision) {
    match precision {
        Precision::Fp32 => {}
        Precision::Fp16 => {
            round_f16_slice(tensor.as_mut_slice());
        }
        Precision::Int8 => {
            let q = QuantParams::calibrate(tensor.as_slice());
            tensor.map_inplace(|x| q.round_trip(x));
        }
    }
}

/// One live (nonzero-weight) tap of a prepared convolution kernel.
#[derive(Debug, Clone, Copy)]
struct SparseEntry<W> {
    /// Input offset from `(oy·s)·iw + ox·s` — valid only for interior
    /// output pixels, where every tap is in bounds.
    delta: isize,
    /// Absolute input channel (for bounds-checked border evaluation).
    c_in: usize,
    /// Tap offsets relative to the window origin, padding applied.
    dy: isize,
    dx: isize,
    /// FP16 split-K: a chunk boundary falls between the previous live term
    /// and this one (counting the elided zeros), so the FP16 accumulator
    /// must flush into the carry before this term.
    flush_before: bool,
    w: W,
}

/// Extracts the nonzero taps of every output channel, in the exact order
/// the dense walk visits them, with statically-resolved split-K flush
/// points.
fn build_sparse<W: Copy>(
    g: &ConvGeom,
    dense: &[W],
    chunk: usize,
    is_zero: impl Fn(W) -> bool,
) -> Vec<Vec<SparseEntry<W>>> {
    (0..g.out_channels)
        .map(|oc| {
            let group = oc / g.cpg_out;
            let w_base = oc * g.cpg_in * g.kh * g.kw;
            let mut entries = Vec::new();
            // Ordinal of the current / previous-live tap among the window's
            // terms (interior pixels see every tap, so ordinals are static).
            let mut pos = 0usize;
            let mut last_live = 0usize;
            for icg in 0..g.cpg_in {
                let c_in = group * g.cpg_in + icg;
                for ky in 0..g.kh {
                    for kx in 0..g.kw {
                        pos += 1;
                        let w = dense[w_base + (icg * g.kh + ky) * g.kw + kx];
                        if is_zero(w) {
                            continue;
                        }
                        // Chunk boundaries fall after ordinals chunk, 2·chunk,
                        // …; any boundary in [last_live, pos) forces a flush
                        // before this term. `boundary` is the largest one not
                        // past `pos - 1`.
                        let boundary = (pos - 1) / chunk * chunk;
                        let dy = ky as isize - g.ph;
                        let dx = kx as isize - g.pw;
                        entries.push(SparseEntry {
                            delta: (c_in * g.ih * g.iw) as isize + dy * g.iw as isize + dx,
                            c_in,
                            dy,
                            dx,
                            flush_before: boundary > 0 && boundary >= last_live,
                            w,
                        });
                        last_live = pos;
                    }
                }
            }
            entries
        })
        .collect()
}

/// Per-precision lowering of a prepared convolution.
#[derive(Debug, Clone)]
enum PreparedKind {
    /// SIMD lane-array micro-kernels ([`crate::lanes`]): 8 channels advance
    /// in lockstep, operands in per-tactic physical layouts. No zero
    /// elision — dense vector arithmetic beats sparse scalar walks by a
    /// wide margin on the catalog's weight densities.
    Lanes(LaneConv),
    /// FP32 sequential: reference order with zero terms elided.
    Fp32 {
        dense: Vec<f32>,
        sparse: Vec<Vec<SparseEntry<f32>>>,
    },
    /// FP16 sequential/chunked: weights pre-rounded to binary16, zero terms
    /// elided with statically-resolved split-K flush points.
    Fp16 {
        rdense: Vec<f32>,
        sparse: Vec<Vec<SparseEntry<f32>>>,
        chunk: usize,
    },
    /// FP16 pairwise: the tree shape depends on the term count, so nothing
    /// can be elided; prepared weights still save the per-call weight
    /// rounding pass.
    Fp16Pairwise { rdense: Vec<f32> },
    /// INT8: integer accumulation is exact and associative, so zero
    /// skipping needs no finiteness guard at all.
    Int8 {
        sparse: Vec<Vec<SparseEntry<i32>>>,
        input: QuantParams,
        out_scale: f32,
    },
}

/// A convolution pre-lowered for repeated execution under a fixed tactic.
///
/// Construction does all per-layer work once — weight materialization,
/// FP16 rounding / INT8 quantization of the weight blob, and extraction of
/// the *nonzero* taps with precomputed input offsets and split-K flush
/// points — so each [`PreparedConv::run`] call only walks live terms.
/// Pruned engines (the accuracy experiments zero ~40 % of trained weights)
/// skip the dead multiplies entirely while staying bit-identical to
/// [`conv_forward`] under the tactic's accumulation order.
///
/// # Examples
///
/// ```
/// use trtsim_ir::arena::TensorArena;
/// use trtsim_ir::graph::LayerKind;
/// use trtsim_ir::tensor::Tensor;
/// use trtsim_kernels::numeric::{conv_forward, PreparedConv};
/// use trtsim_kernels::tactic::Tactic;
///
/// let params = match LayerKind::conv_seeded(4, 3, 3, 1, 1, 7) {
///     LayerKind::Conv(c) => c,
///     _ => unreachable!(),
/// };
/// let input = Tensor::from_fn([3, 8, 8], |c, y, x| (c + y + x) as f32 * 0.1);
/// let tactic = Tactic::conv_hmma(128, 64, "");
///
/// let prepared = PreparedConv::new(&params, input.shape(), &tactic, None);
/// let fast = prepared.run(&params, &input, &mut TensorArena::new());
/// assert_eq!(fast, conv_forward(&params, &input, &tactic, None));
/// ```
#[derive(Debug, Clone)]
pub struct PreparedConv {
    geom: ConvGeom,
    interior: Interior,
    bias: Vec<f32>,
    tactic: Tactic,
    kind: PreparedKind,
    layout_in: Layout,
    layout_out: Layout,
}

impl PreparedConv {
    /// Lowers `params` under `tactic` for inputs of shape `in_shape`.
    ///
    /// # Panics
    ///
    /// Panics on an INT8 tactic without calibration scales, on a weight
    /// blob length mismatch, or on an input channel mismatch — the same
    /// conditions under which [`conv_forward`] panics.
    pub fn new(
        params: &ConvParams,
        in_shape: [usize; 3],
        tactic: &Tactic,
        quant: Option<&QuantDesc>,
    ) -> Self {
        Self::with_layouts(params, in_shape, tactic, quant, Layout::Chw, Layout::Chw)
    }

    /// Like [`PreparedConv::new`], but with the input consumed and the
    /// output produced in explicit physical layouts.
    ///
    /// `in_shape` is always the *logical* CHW shape; [`PreparedConv::run`]
    /// then expects the input tensor in `layout_in`'s physical shape and
    /// returns the output in `layout_out`'s. Results are bit-identical to
    /// the canonical layouts for every assignment (layout conversion is a
    /// pure permutation and the lane kernels preserve accumulation order).
    ///
    /// # Panics
    ///
    /// Panics (in addition to [`PreparedConv::new`]'s conditions) when a
    /// non-CHW layout is requested for a conv that has no lane kernel
    /// (see [`lane_layout`]) — the legacy prepared paths are CHW-only.
    pub fn with_layouts(
        params: &ConvParams,
        in_shape: [usize; 3],
        tactic: &Tactic,
        quant: Option<&QuantDesc>,
        layout_in: Layout,
        layout_out: Layout,
    ) -> Self {
        let geom = ConvGeom::of(params, in_shape);
        let interior = Interior::of(params, &geom);
        let dense = params.weights.materialize().into_owned();
        assert_eq!(
            dense.len(),
            params.expected_weight_len(),
            "conv weight length mismatch"
        );
        let bias: Vec<f32> = params.bias.iter().collect();
        if let Some(lanes) =
            LaneConv::build(params, &geom, tactic, &dense, &bias, layout_in, layout_out)
        {
            return Self {
                geom,
                interior,
                bias,
                tactic: tactic.clone(),
                kind: PreparedKind::Lanes(lanes),
                layout_in,
                layout_out,
            };
        }
        assert!(
            layout_in == Layout::Chw && layout_out == Layout::Chw,
            "legacy prepared conv paths are CHW-only"
        );
        let kind = match tactic.precision {
            Precision::Fp32 => {
                let sparse = build_sparse(&geom, &dense, usize::MAX, |w| w == 0.0);
                PreparedKind::Fp32 { dense, sparse }
            }
            Precision::Fp16 => {
                let rdense: Vec<f32> = dense.iter().map(|&v| round_f16(v)).collect();
                if tactic.accum == AccumOrder::Pairwise {
                    PreparedKind::Fp16Pairwise { rdense }
                } else {
                    let chunk = fold_chunk(tactic.accum);
                    let sparse = build_sparse(&geom, &rdense, chunk, |w| w == 0.0);
                    PreparedKind::Fp16 {
                        rdense,
                        sparse,
                        chunk,
                    }
                }
            }
            Precision::Int8 => {
                let q = quant.expect("INT8 tactic requires calibration scales");
                let qdense: Vec<i32> = dense
                    .iter()
                    .map(|&w| i32::from(q.weights.quantize(w)))
                    .collect();
                let sparse = build_sparse(&geom, &qdense, usize::MAX, |w| w == 0);
                PreparedKind::Int8 {
                    sparse,
                    input: q.input,
                    out_scale: q.input.scale * q.weights.scale,
                }
            }
        };
        Self {
            geom,
            interior,
            bias,
            tactic: tactic.clone(),
            kind,
            layout_in,
            layout_out,
        }
    }

    /// Output shape for the prepared input shape.
    pub fn out_shape(&self) -> [usize; 3] {
        [self.geom.out_channels, self.geom.oh, self.geom.ow]
    }

    /// The (input, output) physical layouts this conv was prepared for.
    pub fn layouts(&self) -> (Layout, Layout) {
        (self.layout_in, self.layout_out)
    }

    /// Physical shape [`PreparedConv::run`] expects its input tensor in.
    pub fn in_physical_shape(&self) -> [usize; 3] {
        self.layout_in.physical_shape(self.geom.in_shape)
    }

    /// Physical shape of the tensor [`PreparedConv::run`] returns.
    pub fn out_physical_shape(&self) -> [usize; 3] {
        self.layout_out.physical_shape(self.out_shape())
    }

    /// Multiply terms evaluated per interior output pixel after zero
    /// elision, summed over output channels (the dense count for pairwise
    /// tactics and for the lane kernels, which trade elision for vector
    /// arithmetic).
    pub fn live_terms(&self) -> usize {
        match &self.kind {
            PreparedKind::Fp32 { sparse, .. } | PreparedKind::Fp16 { sparse, .. } => {
                sparse.iter().map(Vec::len).sum()
            }
            PreparedKind::Int8 { sparse, .. } => sparse.iter().map(Vec::len).sum(),
            PreparedKind::Fp16Pairwise { .. } | PreparedKind::Lanes(_) => self.dense_terms(),
        }
    }

    /// Multiply terms per interior output pixel before zero elision, summed
    /// over output channels.
    pub fn dense_terms(&self) -> usize {
        self.geom.out_channels * self.geom.cpg_in * self.geom.kh * self.geom.kw
    }

    /// Executes the convolution; bit-identical (under `f32` equality) to
    /// [`conv_forward`] with the same tactic and calibration, modulo the
    /// prepared layouts' pure permutation of element positions.
    ///
    /// # Panics
    ///
    /// Panics if `input` does not have the prepared physical shape.
    pub fn run(&self, params: &ConvParams, input: &Tensor, arena: &mut TensorArena) -> Tensor {
        assert_eq!(
            input.shape(),
            self.in_physical_shape(),
            "prepared conv input shape mismatch"
        );
        if let PreparedKind::Lanes(lanes) = &self.kind {
            return self.run_lanes(lanes, params, input, arena);
        }
        // Every value the legacy kinds produce comes from a scalar walk.
        note_scalar_values((self.geom.out_channels * self.geom.oh * self.geom.ow) as u64);
        let mut out = arena.alloc_zeroed(self.out_shape());
        match &self.kind {
            PreparedKind::Lanes(_) => unreachable!("handled above"),
            PreparedKind::Fp32 { dense, sparse } => {
                if input.as_slice().iter().all(|v| v.is_finite()) {
                    self.run_f32(sparse, input.as_slice(), params.activation, &mut out);
                } else {
                    // 0·∞ = NaN: zero elision is unsound, take the dense path.
                    arena.release(out);
                    return trtsim_ir::ops::conv2d(input, dense, &self.bias, params);
                }
            }
            PreparedKind::Fp16 {
                rdense,
                sparse,
                chunk,
            } => {
                let mut rx = arena.take_buffer(input.len());
                let mut finite = true;
                for (r, &v) in rx.iter_mut().zip(input.as_slice()) {
                    *r = round_f16(v);
                    finite &= r.is_finite();
                }
                if finite {
                    self.run_f16(sparse, rdense, &rx, *chunk, params.activation, &mut out);
                } else {
                    conv_fp16_dense(
                        &self.geom,
                        &rx,
                        rdense,
                        &self.bias,
                        &self.tactic,
                        params.activation,
                        &mut out,
                    );
                }
                arena.give_buffer(rx);
            }
            PreparedKind::Fp16Pairwise { rdense } => {
                let mut rx = arena.take_buffer(input.len());
                for (r, &v) in rx.iter_mut().zip(input.as_slice()) {
                    *r = round_f16(v);
                }
                conv_fp16_dense(
                    &self.geom,
                    &rx,
                    rdense,
                    &self.bias,
                    &self.tactic,
                    params.activation,
                    &mut out,
                );
                arena.give_buffer(rx);
            }
            PreparedKind::Int8 {
                sparse,
                input: qin,
                out_scale,
            } => {
                let qx: Vec<i32> = input
                    .as_slice()
                    .iter()
                    .map(|&x| i32::from(qin.quantize(x)))
                    .collect();
                self.run_i8(sparse, &qx, *out_scale, params.activation, &mut out);
            }
        }
        out
    }

    /// The lane-array fast path. FP32 runs unconditionally (exact reference
    /// order, non-finite values propagate identically); FP16 rounds the
    /// input onto the binary16 grid first and drops to the exact dense CHW
    /// walk when the input or weights carry non-finite values (`0·∞` is
    /// invisible to the lane kernels' magnitude trap).
    fn run_lanes(
        &self,
        lanes: &LaneConv,
        params: &ConvParams,
        input: &Tensor,
        arena: &mut TensorArena,
    ) -> Tensor {
        let mut out = arena.alloc_zeroed(self.out_physical_shape());
        if !lanes.fp16 {
            lanes.run(
                &self.geom,
                &self.interior,
                &self.bias,
                params.activation,
                input.as_slice(),
                out.as_mut_slice(),
            );
            return out;
        }
        let mut rx = arena.take_buffer(input.len());
        rx.copy_from_slice(input.as_slice());
        let finite = round_f16_slice(&mut rx);
        if finite && !lanes.force_dense {
            lanes.run(
                &self.geom,
                &self.interior,
                &self.bias,
                params.activation,
                &rx,
                out.as_mut_slice(),
            );
        } else {
            // Exact dense fallback in canonical CHW, converted at the edges
            // (conversion is a pure permutation, so bit-exactness holds).
            note_scalar_values((self.geom.out_channels * self.geom.oh * self.geom.ow) as u64);
            let logical_in = self.geom.in_shape;
            let mut chw = arena.take_buffer(logical_in.iter().product());
            if lanes.layout_in == Layout::Chw {
                chw.copy_from_slice(&rx);
            } else {
                layout::convert_into(&rx, logical_in, lanes.layout_in, Layout::Chw, &mut chw);
            }
            let mut tmp = arena.alloc_zeroed(self.out_shape());
            conv_fp16_dense(
                &self.geom,
                &chw,
                &lanes.rdense,
                &self.bias,
                &self.tactic,
                params.activation,
                &mut tmp,
            );
            if lanes.layout_out == Layout::Chw {
                out.as_mut_slice().copy_from_slice(tmp.as_slice());
            } else {
                layout::convert_into(
                    tmp.as_slice(),
                    self.out_shape(),
                    Layout::Chw,
                    lanes.layout_out,
                    out.as_mut_slice(),
                );
            }
            arena.release(tmp);
            arena.give_buffer(chw);
        }
        arena.give_buffer(rx);
        out
    }

    /// Offset of the first interior pixel of output row `oy` in the input
    /// image plane (channel offsets live in each entry's `delta`).
    fn row_base(&self, oy: usize) -> isize {
        ((oy * self.geom.s) * self.geom.iw + self.interior.ox_lo * self.geom.s) as isize
    }

    fn run_f32(
        &self,
        sparse: &[Vec<SparseEntry<f32>>],
        x: &[f32],
        activation: Option<Activation>,
        out: &mut Tensor,
    ) {
        let g = self.geom;
        let it = self.interior;
        let width = it.ox_hi.saturating_sub(it.ox_lo);
        let mut acc_row = vec![0.0f32; width];
        for (oc, entries) in sparse.iter().enumerate() {
            let b = self.bias.get(oc).copied().unwrap_or(0.0);
            for oy in 0..g.oh {
                let interior_row = width > 0 && oy >= it.oy_lo && oy < it.oy_hi;
                if interior_row {
                    // Entry-outer over the whole row: each entry touches a
                    // contiguous (stride 1) or strided input span, which the
                    // compiler vectorizes across output pixels.
                    acc_row.fill(b);
                    for e in entries {
                        let src = (self.row_base(oy) + e.delta) as usize;
                        if g.s == 1 {
                            for (a, &xv) in acc_row.iter_mut().zip(&x[src..src + width]) {
                                *a += xv * e.w;
                            }
                        } else {
                            for (i, a) in acc_row.iter_mut().enumerate() {
                                *a += x[src + i * g.s] * e.w;
                            }
                        }
                    }
                    for (i, ox) in (it.ox_lo..it.ox_hi).enumerate() {
                        *out.at_mut(oc, oy, ox) = apply_act(activation, acc_row[i]);
                    }
                }
                let border_cols: Box<dyn Iterator<Item = usize>> = if interior_row {
                    Box::new((0..it.ox_lo).chain(it.ox_hi..g.ow))
                } else {
                    Box::new(0..g.ow)
                };
                for ox in border_cols {
                    let mut acc = b;
                    for e in entries {
                        let iy = (oy * g.s) as isize + e.dy;
                        let ix = (ox * g.s) as isize + e.dx;
                        if iy < 0 || iy >= g.ih as isize || ix < 0 || ix >= g.iw as isize {
                            continue;
                        }
                        let xv = x[(e.c_in * g.ih + iy as usize) * g.iw + ix as usize];
                        if xv != 0.0 {
                            acc += xv * e.w;
                        }
                    }
                    *out.at_mut(oc, oy, ox) = apply_act(activation, acc);
                }
            }
        }
    }

    fn run_f16(
        &self,
        sparse: &[Vec<SparseEntry<f32>>],
        rdense: &[f32],
        rx: &[f32],
        chunk: usize,
        activation: Option<Activation>,
        out: &mut Tensor,
    ) {
        let g = self.geom;
        let it = self.interior;
        let width = it.ox_hi.saturating_sub(it.ox_lo);
        let mut acc_row = vec![0.0f32; width];
        let mut carry_row = vec![0.0f64; width];
        let mut snap_row = vec![0.0f32; width];
        for (oc, entries) in sparse.iter().enumerate() {
            let b = self.bias.get(oc).copied().unwrap_or(0.0);
            for oy in 0..g.oh {
                let interior_row = width > 0 && oy >= it.oy_lo && oy < it.oy_hi;
                if interior_row {
                    self.f16_interior_row(
                        entries,
                        rx,
                        oy,
                        &mut acc_row,
                        &mut carry_row,
                        &mut snap_row,
                    );
                    for (i, ox) in (it.ox_lo..it.ox_hi).enumerate() {
                        let sum = (carry_row[i] + f64::from(acc_row[i])) as f32;
                        *out.at_mut(oc, oy, ox) = apply_act(activation, sum + b);
                    }
                }
                let border_cols: Box<dyn Iterator<Item = usize>> = if interior_row {
                    Box::new((0..it.ox_lo).chain(it.ox_hi..g.ow))
                } else {
                    Box::new(0..g.ow)
                };
                for ox in border_cols {
                    // Border pixels drop taps dynamically, so chunk
                    // positions can't be resolved statically; walk the
                    // dense order, skipping zero-weight multiplies.
                    let sum = fp16_pixel_folded(rx, rdense, &g, oc, oy, ox, chunk, true);
                    *out.at_mut(oc, oy, ox) = apply_act(activation, sum + b);
                }
            }
        }
    }

    /// One whole interior output row of a folded FP16 convolution,
    /// entry-outer: each nonzero tap streams across every pixel in the row.
    ///
    /// The hot loop replaces `round_f16`'s branchy range dispatch with the
    /// branch-free Veltkamp split ([`veltkamp_f16`]) and folds a validity
    /// mask across the row; lanes where the product or the updated
    /// accumulator leave the fast range ([`fast_f16_ok`]) force a rollback
    /// to a pre-entry snapshot and an exact scalar redo of that one entry.
    /// The result is bit-identical to the dense per-pixel walk: zero taps
    /// are *not* skipped here, so even ±0 signs match the naive order.
    fn f16_interior_row(
        &self,
        entries: &[SparseEntry<f32>],
        rx: &[f32],
        oy: usize,
        acc: &mut [f32],
        carry: &mut [f64],
        snap: &mut [f32],
    ) {
        let g = self.geom;
        let width = acc.len();
        acc.fill(0.0);
        carry.fill(0.0);
        for e in entries {
            if e.flush_before {
                for (c, a) in carry.iter_mut().zip(acc.iter_mut()) {
                    *c += f64::from(*a);
                    *a = 0.0;
                }
            }
            let w = e.w;
            let src = (self.row_base(oy) + e.delta) as usize;
            snap.copy_from_slice(acc);
            let mut bad = 0u32;
            if g.s == 1 {
                for (a, &x) in acc.iter_mut().zip(&rx[src..src + width]) {
                    let t0 = x * w;
                    bad |= u32::from(!fast_f16_ok(t0));
                    let t = veltkamp_f16(t0);
                    let s = *a + t;
                    bad |= u32::from(!fast_f16_ok(s));
                    *a = veltkamp_f16(s);
                }
            } else {
                for (i, a) in acc.iter_mut().enumerate() {
                    let t0 = rx[src + i * g.s] * w;
                    bad |= u32::from(!fast_f16_ok(t0));
                    let t = veltkamp_f16(t0);
                    let s = *a + t;
                    bad |= u32::from(!fast_f16_ok(s));
                    *a = veltkamp_f16(s);
                }
            }
            if bad != 0 {
                FP16_REDOS.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                acc.copy_from_slice(snap);
                if g.s == 1 {
                    for (a, &x) in acc.iter_mut().zip(&rx[src..src + width]) {
                        *a = round_f16(*a + round_f16(x * w));
                    }
                } else {
                    for (i, a) in acc.iter_mut().enumerate() {
                        *a = round_f16(*a + round_f16(rx[src + i * g.s] * w));
                    }
                }
            }
        }
    }

    fn run_i8(
        &self,
        sparse: &[Vec<SparseEntry<i32>>],
        qx: &[i32],
        out_scale: f32,
        activation: Option<Activation>,
        out: &mut Tensor,
    ) {
        let g = self.geom;
        let it = self.interior;
        let width = it.ox_hi.saturating_sub(it.ox_lo);
        let mut acc_row = vec![0i64; width];
        for (oc, entries) in sparse.iter().enumerate() {
            let b = self.bias.get(oc).copied().unwrap_or(0.0);
            for oy in 0..g.oh {
                let interior_row = width > 0 && oy >= it.oy_lo && oy < it.oy_hi;
                if interior_row {
                    // Integer accumulation is exact and associative, so the
                    // entry-outer row order needs no rounding care at all.
                    acc_row.fill(0);
                    for e in entries {
                        let src = (self.row_base(oy) + e.delta) as usize;
                        let w = i64::from(e.w);
                        if g.s == 1 {
                            for (a, &xv) in acc_row.iter_mut().zip(&qx[src..src + width]) {
                                *a += i64::from(xv) * w;
                            }
                        } else {
                            for (i, a) in acc_row.iter_mut().enumerate() {
                                *a += i64::from(qx[src + i * g.s]) * w;
                            }
                        }
                    }
                    for (i, ox) in (it.ox_lo..it.ox_hi).enumerate() {
                        let v = acc_row[i] as f32 * out_scale + b;
                        *out.at_mut(oc, oy, ox) = apply_act(activation, v);
                    }
                }
                let border_cols: Box<dyn Iterator<Item = usize>> = if interior_row {
                    Box::new((0..it.ox_lo).chain(it.ox_hi..g.ow))
                } else {
                    Box::new(0..g.ow)
                };
                for ox in border_cols {
                    let mut acc: i64 = 0;
                    for e in entries {
                        let iy = (oy * g.s) as isize + e.dy;
                        let ix = (ox * g.s) as isize + e.dx;
                        if iy < 0 || iy >= g.ih as isize || ix < 0 || ix >= g.iw as isize {
                            continue;
                        }
                        let xv = qx[(e.c_in * g.ih + iy as usize) * g.iw + ix as usize];
                        if xv != 0 {
                            acc += i64::from(xv) * i64::from(e.w);
                        }
                    }
                    let v = acc as f32 * out_scale + b;
                    *out.at_mut(oc, oy, ox) = apply_act(activation, v);
                }
            }
        }
    }
}

/// A fully-connected layer pre-lowered for repeated execution.
///
/// For FP16 tactics the weight matrix is rounded to binary16 once at
/// construction; each [`PreparedFc::run`] call then rounds the input vector
/// once and performs a single product round per term — bit-identical to
/// [`fc_forward`], which re-rounds the weights and wraps every operand in a
/// fresh round on every call.
#[derive(Debug, Clone)]
pub struct PreparedFc {
    /// FP16: pre-rounded; FP32: raw.
    weights: Vec<f32>,
    bias: Vec<f32>,
    out_features: usize,
    tactic: Tactic,
    lanes: Option<FcLanes>,
}

/// FC weights repacked for the lane micro-kernel: `[block][tap]` gives the
/// weight lanes of 8 consecutive output features at input tap `tap`, so the
/// inner loop broadcasts one input value against a contiguous vector.
#[derive(Debug, Clone)]
struct FcLanes {
    /// Split-K flush period in taps (`usize::MAX`: never flush).
    chunk: usize,
    w: Vec<Vec<[f32; LANES]>>,
    bias_v: Vec<[f32; LANES]>,
}

impl FcLanes {
    fn build(weights: &[f32], bias: &[f32], out_features: usize, chunk: usize) -> Self {
        let in_features = weights.len() / out_features.max(1);
        let blocks = out_features.div_ceil(LANES);
        let mut w = Vec::with_capacity(blocks);
        let mut bias_v = Vec::with_capacity(blocks);
        for b in 0..blocks {
            let mut wb = vec![[0.0f32; LANES]; in_features];
            let mut bv = [0.0f32; LANES];
            for l in 0..LANES {
                let o = b * LANES + l;
                if o >= out_features {
                    break;
                }
                bv[l] = bias.get(o).copied().unwrap_or(0.0);
                for (tap, lane) in wb.iter_mut().enumerate() {
                    lane[l] = weights[o * in_features + tap];
                }
            }
            w.push(wb);
            bias_v.push(bv);
        }
        Self { chunk, w, bias_v }
    }
}

impl PreparedFc {
    /// Lowers an FC layer's weights under `tactic`.
    ///
    /// # Panics
    ///
    /// Panics on an INT8 tactic, like [`fc_forward`] (FC layers in the
    /// catalog are FP16/FP32 only).
    pub fn new(weights: &Weights, bias: &Weights, out_features: usize, tactic: &Tactic) -> Self {
        let w = weights.materialize();
        let weights: Vec<f32> = match tactic.precision {
            Precision::Fp32 => w.into_owned(),
            Precision::Fp16 => w.iter().map(|&v| round_f16(v)).collect(),
            Precision::Int8 => panic!("INT8 fully-connected tactics are not in the catalog"),
        };
        let bias: Vec<f32> = bias.iter().collect();
        let lanes = match tactic.precision {
            Precision::Fp32 => Some(FcLanes::build(&weights, &bias, out_features, usize::MAX)),
            // Pairwise trees can't lane (shape depends on term count);
            // non-finite rounded weights would hide 0·∞ from the trap.
            Precision::Fp16
                if tactic.accum != AccumOrder::Pairwise
                    && weights.iter().all(|v| v.is_finite()) =>
            {
                Some(FcLanes::build(
                    &weights,
                    &bias,
                    out_features,
                    fold_chunk(tactic.accum),
                ))
            }
            _ => None,
        };
        Self {
            weights,
            bias,
            out_features,
            tactic: tactic.clone(),
            lanes,
        }
    }

    /// Executes the layer; bit-identical to [`fc_forward`].
    ///
    /// # Panics
    ///
    /// Panics if the weight length does not match
    /// `out_features · input.len()`.
    pub fn run(
        &self,
        input: &Tensor,
        activation: Option<Activation>,
        arena: &mut TensorArena,
    ) -> Tensor {
        let in_features = input.len();
        assert_eq!(
            self.weights.len(),
            self.out_features * in_features,
            "fc weight mismatch"
        );
        if self.tactic.precision == Precision::Fp32 {
            // FP32 lanes replay the reference order exactly (bias-start,
            // sequential taps), so they need no finiteness guard.
            if let Some(lanes) = &self.lanes {
                let mut out = arena.alloc_zeroed([self.out_features, 1, 1]);
                self.run_lanes_f32(lanes, input.as_slice(), activation, &mut out);
                return out;
            }
            note_scalar_values(self.out_features as u64);
            return trtsim_ir::ops::inner_product(
                input,
                &self.weights,
                &self.bias,
                self.out_features,
                activation,
            );
        }
        let mut rx = arena.take_buffer(in_features);
        rx.copy_from_slice(input.as_slice());
        let finite = round_f16_slice(&mut rx);
        let mut out = arena.alloc_zeroed([self.out_features, 1, 1]);
        match &self.lanes {
            // Non-finite inputs would hide 0·∞ from the magnitude trap;
            // take the exact reducer walk instead.
            Some(lanes) if finite => self.run_lanes_f16(lanes, &rx, activation, &mut out),
            _ => {
                note_scalar_values(self.out_features as u64);
                self.run_reducer_f16(&rx, activation, &mut out);
            }
        }
        arena.give_buffer(rx);
        out
    }

    /// FP32 lane kernel: 8 output features advance together; per feature
    /// the f32 operations and their order are exactly the reference
    /// `inner_product` walk, so the result is bitwise identical.
    fn run_lanes_f32(
        &self,
        lanes: &FcLanes,
        x: &[f32],
        activation: Option<Activation>,
        out: &mut Tensor,
    ) {
        for (b, wb) in lanes.w.iter().enumerate() {
            let real = (self.out_features - b * LANES).min(LANES);
            let mut acc = lanes.bias_v[b];
            for (wv, &xv) in wb.iter().zip(x) {
                for l in 0..LANES {
                    acc[l] += xv * wv[l];
                }
            }
            for (l, &a) in acc.iter().enumerate().take(real) {
                *out.at_mut(b * LANES + l, 0, 0) = apply_act(activation, a);
            }
        }
        note_vector_values(self.out_features as u64);
    }

    /// FP16 lane kernel with the magnitude trap: any block that fed a value
    /// beyond the branch-free rounder's exact range to [`round8`] is redone
    /// through the exact [`Reducer`] path.
    fn run_lanes_f16(
        &self,
        lanes: &FcLanes,
        rx: &[f32],
        activation: Option<Activation>,
        out: &mut Tensor,
    ) {
        let in_features = rx.len();
        for (b, wb) in lanes.w.iter().enumerate() {
            let real = (self.out_features - b * LANES).min(LANES);
            let mut acc = [0.0f32; LANES];
            let mut carry = [0.0f64; LANES];
            let mut maxa = [0.0f32; LANES];
            let mut ic = 0usize;
            for (wv, &xv) in wb.iter().zip(rx) {
                let mut p = [0.0f32; LANES];
                for l in 0..LANES {
                    p[l] = xv * wv[l];
                }
                for l in 0..LANES {
                    maxa[l] = maxa[l].max(p[l].abs());
                }
                let p = round8(p);
                let mut s = [0.0f32; LANES];
                for l in 0..LANES {
                    s[l] = acc[l] + p[l];
                }
                for l in 0..LANES {
                    maxa[l] = maxa[l].max(s[l].abs());
                }
                acc = round8(s);
                ic += 1;
                if ic == lanes.chunk {
                    for l in 0..LANES {
                        carry[l] += f64::from(acc[l]);
                        acc[l] = 0.0;
                    }
                    ic = 0;
                }
            }
            if maxa.iter().any(|&m| m > F16_HI) {
                note_fp16_redo();
                note_scalar_values(real as u64);
                let mut reducer = Reducer::for_tactic(&self.tactic);
                let mut terms = Vec::with_capacity(in_features);
                for l in 0..real {
                    let o = b * LANES + l;
                    terms.clear();
                    let row = &self.weights[o * in_features..(o + 1) * in_features];
                    for (xi, wi) in rx.iter().zip(row) {
                        terms.push(round_f16(xi * wi));
                    }
                    let v = reducer.reduce(&terms) + self.bias.get(o).copied().unwrap_or(0.0);
                    *out.at_mut(o, 0, 0) = apply_act(activation, v);
                }
            } else {
                note_vector_values(real as u64);
                for l in 0..real {
                    let o = b * LANES + l;
                    let v = (carry[l] + f64::from(acc[l])) as f32
                        + self.bias.get(o).copied().unwrap_or(0.0);
                    *out.at_mut(o, 0, 0) = apply_act(activation, v);
                }
            }
        }
    }

    /// The legacy exact FP16 walk (`rx` already on the binary16 grid).
    fn run_reducer_f16(&self, rx: &[f32], activation: Option<Activation>, out: &mut Tensor) {
        let in_features = rx.len();
        let mut reducer = Reducer::for_tactic(&self.tactic);
        let mut terms = Vec::with_capacity(in_features);
        for o in 0..self.out_features {
            terms.clear();
            let row = &self.weights[o * in_features..(o + 1) * in_features];
            for (xi, wi) in rx.iter().zip(row.iter()) {
                terms.push(round_f16(xi * wi));
            }
            let acc = reducer.reduce(&terms) + self.bias.get(o).copied().unwrap_or(0.0);
            *out.at_mut(o, 0, 0) = apply_act(activation, acc);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trtsim_ir::graph::LayerKind;
    use trtsim_ir::weights::Weights;
    use trtsim_util::rng::Pcg32;

    fn test_conv(seed: u64) -> ConvParams {
        let mut rng = Pcg32::seed_from_u64(seed);
        let len = 8 * 8 * 3 * 3;
        ConvParams {
            out_channels: 8,
            in_channels: 8,
            kernel_h: 3,
            kernel_w: 3,
            stride: 1,
            pad_h: 1,
            pad_w: 1,
            groups: 1,
            weights: Weights::Dense((0..len).map(|_| rng.normal() as f32 * 0.2).collect()),
            bias: Weights::Dense(vec![0.01; 8]),
            activation: Some(Activation::Relu),
        }
    }

    fn test_input(seed: u64) -> Tensor {
        let mut rng = Pcg32::seed_from_u64(seed);
        Tensor::from_fn([8, 8, 8], |_, _, _| rng.normal() as f32)
    }

    #[test]
    fn fp32_tactic_matches_reference() {
        let params = test_conv(1);
        let input = test_input(2);
        let t = Tactic::conv_fp32(128, 64);
        let got = conv_forward(&params, &input, &t, None);
        let w = params.weights.materialize();
        let b: Vec<f32> = params.bias.iter().collect();
        let want = trtsim_ir::ops::conv2d(&input, &w, &b, &params);
        assert_eq!(got, want);
    }

    #[test]
    fn fp16_is_close_but_not_equal_to_fp32() {
        let params = test_conv(3);
        let input = test_input(4);
        let fp32 = conv_forward(&params, &input, &Tactic::conv_fp32(128, 64), None);
        let fp16 = conv_forward(&params, &input, &Tactic::conv_hmma(128, 64, ""), None);
        let mut max_rel = 0.0f32;
        let mut any_diff = false;
        for (a, b) in fp32.as_slice().iter().zip(fp16.as_slice()) {
            if a != b {
                any_diff = true;
            }
            if a.abs() > 0.1 {
                max_rel = max_rel.max((a - b).abs() / a.abs());
            }
        }
        assert!(any_diff, "fp16 should differ in low-order bits");
        assert!(max_rel < 0.05, "fp16 error too large: {max_rel}");
    }

    #[test]
    fn different_tiles_produce_different_fp16_results() {
        // The heart of Finding 2: same layer, same input, different tactic ⇒
        // different accumulation order ⇒ different bits.
        let params = test_conv(5);
        let input = test_input(6);
        let a = conv_forward(&params, &input, &Tactic::conv_hmma(256, 64, ""), None);
        let b = conv_forward(&params, &input, &Tactic::conv_hmma(128, 128, ""), None);
        assert_ne!(a, b);
        // But they agree to FP16 tolerance.
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            assert!((x - y).abs() <= 0.01 * x.abs().max(1.0));
        }
    }

    #[test]
    fn int8_is_deterministic_across_tile_choices() {
        let params = test_conv(7);
        let input = test_input(8);
        let q = QuantDesc {
            input: QuantParams::calibrate(input.as_slice()),
            weights: QuantParams::calibrate(&params.weights.materialize()),
        };
        let a = conv_forward(&params, &input, &Tactic::conv_int8(128, 64), Some(&q));
        let b = conv_forward(&params, &input, &Tactic::conv_int8(256, 64), Some(&q));
        assert_eq!(a, b, "integer accumulation is associative");
    }

    #[test]
    fn int8_tracks_fp32_within_quant_error() {
        let params = test_conv(9);
        let input = test_input(10);
        let q = QuantDesc {
            input: QuantParams::calibrate(input.as_slice()),
            weights: QuantParams::calibrate(&params.weights.materialize()),
        };
        let fp32 = conv_forward(&params, &input, &Tactic::conv_fp32(128, 64), None);
        let int8 = conv_forward(&params, &input, &Tactic::conv_int8(128, 64), Some(&q));
        let amax = fp32.amax();
        for (a, b) in fp32.as_slice().iter().zip(int8.as_slice()) {
            assert!((a - b).abs() < 0.08 * amax, "{a} vs {b}");
        }
    }

    #[test]
    fn reducer_orders_differ_on_adversarial_input() {
        let t_seq = Tactic::conv_fp32(1, 1); // sequential fp32
        let mut seq = Reducer::for_tactic(&t_seq);
        let mut chunked = Reducer {
            order: AccumOrder::Chunked(2),
            fp16: true,
            scratch: Vec::new(),
        };
        let mut pair = Reducer {
            order: AccumOrder::Pairwise,
            fp16: true,
            scratch: Vec::new(),
        };
        let terms: Vec<f32> = (0..64)
            .map(|i| {
                if i % 2 == 0 {
                    1.0 + i as f32 * 1e-3
                } else {
                    -1.0
                }
            })
            .collect();
        let a = seq.reduce(&terms);
        let b = chunked.reduce(&terms);
        let c = pair.reduce(&terms);
        // All approximate the same sum...
        let exact: f32 = terms.iter().sum();
        for v in [a, b, c] {
            assert!((v - exact).abs() < 0.1);
        }
        // ...but fp16 orders disagree with exact sequential fp32.
        assert!(b != a || c != a);
    }

    #[test]
    fn reducer_handles_empty_and_single() {
        let mut r = Reducer::for_tactic(&Tactic::conv_hmma(128, 64, ""));
        assert_eq!(r.reduce(&[]), 0.0);
        assert_eq!(r.reduce(&[2.5]), 2.5);
    }

    #[test]
    fn apply_precision_fp16_rounds() {
        let mut t = Tensor::from_vec([1, 1, 2], vec![1.0 / 3.0, 1.0]);
        apply_precision(&mut t, Precision::Fp16);
        assert_ne!(t.at(0, 0, 0), 1.0 / 3.0);
        assert_eq!(t.at(0, 0, 1), 1.0);
    }

    /// Zeroes small weights, mimicking the accuracy experiments' magnitude
    /// pruning (the sparsity the prepared kernels exploit).
    fn prune(params: &mut ConvParams, thresh: f32) {
        let w: Vec<f32> = params
            .weights
            .materialize()
            .iter()
            .map(|&v| if v.abs() < thresh { 0.0 } else { v })
            .collect();
        params.weights = Weights::Dense(w);
    }

    /// Asymmetric geometry: 5×3 kernel, stride 2, pad 2×0, two groups.
    fn strided_conv(seed: u64) -> ConvParams {
        let mut rng = Pcg32::seed_from_u64(seed);
        let len = 6 * 2 * 5 * 3;
        ConvParams {
            out_channels: 6,
            in_channels: 4,
            kernel_h: 5,
            kernel_w: 3,
            stride: 2,
            pad_h: 2,
            pad_w: 0,
            groups: 2,
            weights: Weights::Dense((0..len).map(|_| rng.normal() as f32 * 0.2).collect()),
            bias: Weights::Dense(vec![-0.02, 0.0, 0.01, 0.3, -0.1, 0.07]),
            activation: None,
        }
    }

    fn strided_input(seed: u64) -> Tensor {
        let mut rng = Pcg32::seed_from_u64(seed);
        // Odd height so the last output row's window is clipped.
        Tensor::from_fn([4, 9, 8], |_, _, _| rng.normal() as f32)
    }

    fn assert_prepared_matches(
        params: &ConvParams,
        input: &Tensor,
        tactic: &Tactic,
        quant: Option<&QuantDesc>,
    ) {
        let want = conv_forward(params, input, tactic, quant);
        let prepared = PreparedConv::new(params, input.shape(), tactic, quant);
        let mut arena = TensorArena::new();
        let first = prepared.run(params, input, &mut arena);
        assert_eq!(first, want, "prepared mismatch under {:?}", tactic.accum);
        arena.release(first);
        // A second pass runs on recycled buffers and must still agree.
        assert_eq!(prepared.run(params, input, &mut arena), want);
    }

    #[test]
    fn prepared_fp32_bit_identical_on_pruned_weights() {
        let mut square = test_conv(21);
        prune(&mut square, 0.15);
        assert_prepared_matches(&square, &test_input(22), &Tactic::conv_fp32(128, 64), None);
        let mut strided = strided_conv(23);
        prune(&mut strided, 0.15);
        assert_prepared_matches(
            &strided,
            &strided_input(24),
            &Tactic::conv_fp32(128, 64),
            None,
        );
    }

    #[test]
    fn prepared_fp16_bit_identical_across_accum_orders() {
        let mut chunk_small = Tactic::conv_hmma(128, 64, "");
        chunk_small.accum = AccumOrder::Chunked(4); // stress static flush points
        let mut seq = Tactic::conv_hmma(128, 64, "");
        seq.accum = AccumOrder::Sequential;
        let mut pair = Tactic::conv_hmma(128, 64, "");
        pair.accum = AccumOrder::Pairwise;
        for tactic in [Tactic::conv_hmma(128, 64, ""), chunk_small, seq, pair] {
            let mut square = test_conv(31);
            prune(&mut square, 0.15);
            assert_prepared_matches(&square, &test_input(32), &tactic, None);
            let mut strided = strided_conv(33);
            prune(&mut strided, 0.15);
            assert_prepared_matches(&strided, &strided_input(34), &tactic, None);
        }
    }

    #[test]
    fn prepared_int8_bit_identical_on_pruned_weights() {
        let mut params = test_conv(41);
        prune(&mut params, 0.15);
        let input = test_input(42);
        let q = QuantDesc {
            input: QuantParams::calibrate(input.as_slice()),
            weights: QuantParams::calibrate(&params.weights.materialize()),
        };
        assert_prepared_matches(&params, &input, &Tactic::conv_int8(128, 64), Some(&q));
    }

    #[test]
    fn prepared_falls_back_on_non_finite_input() {
        let mut params = test_conv(51);
        prune(&mut params, 0.15);
        let mut input = test_input(52);
        *input.at_mut(0, 0, 0) = f32::INFINITY;
        *input.at_mut(3, 4, 5) = f32::NAN;
        for tactic in [Tactic::conv_fp32(128, 64), Tactic::conv_hmma(128, 64, "")] {
            let want = conv_forward(&params, &input, &tactic, None);
            let prepared = PreparedConv::new(&params, input.shape(), &tactic, None);
            let got = prepared.run(&params, &input, &mut TensorArena::new());
            assert_eq!(got.shape(), want.shape());
            // NaN != NaN, so compare bit patterns.
            for (a, b) in got.as_slice().iter().zip(want.as_slice()) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn prepared_elides_pruned_terms() {
        // Grouped (non-depthwise) convs stay on the legacy sparse path,
        // which elides zero weights; lane-kernel convs run dense.
        let mut params = strided_conv(61);
        prune(&mut params, 0.2);
        let p = PreparedConv::new(&params, [4, 9, 8], &Tactic::conv_hmma(128, 64, ""), None);
        assert!(
            p.live_terms() < p.dense_terms(),
            "{} !< {}",
            p.live_terms(),
            p.dense_terms()
        );
        let square = PreparedConv::new(
            &test_conv(61),
            [8, 8, 8],
            &Tactic::conv_hmma(128, 64, ""),
            None,
        );
        assert_eq!(square.live_terms(), square.dense_terms(), "lanes run dense");
    }

    /// Runs `params` under every (layout_in, layout_out) pair, converting
    /// the input/output at the edges, and asserts bitwise identity with the
    /// canonical CHW result.
    fn assert_layouts_match(params: &ConvParams, input: &Tensor, tactic: &Tactic) {
        let want = conv_forward(params, input, tactic, None);
        let all = [Layout::Chw, Layout::Nhwc, Layout::Chwc8];
        for li in all {
            for lo in all {
                let prepared =
                    PreparedConv::with_layouts(params, input.shape(), tactic, None, li, lo);
                assert_eq!(prepared.layouts(), (li, lo));
                let phys_in = Tensor::from_vec(
                    prepared.in_physical_shape(),
                    layout::convert(input.as_slice(), input.shape(), Layout::Chw, li),
                );
                let mut arena = TensorArena::new();
                let phys_out = prepared.run(params, &phys_in, &mut arena);
                assert_eq!(phys_out.shape(), prepared.out_physical_shape());
                let back = layout::convert(phys_out.as_slice(), want.shape(), lo, Layout::Chw);
                for (i, (a, b)) in back.iter().zip(want.as_slice()).enumerate() {
                    assert_eq!(
                        a.to_bits(),
                        b.to_bits(),
                        "{li:?}->{lo:?} elem {i}: {a:e} vs {b:e} under {:?}",
                        tactic.accum
                    );
                }
            }
        }
    }

    #[test]
    fn lane_layouts_bit_identical_fp32() {
        assert_layouts_match(&test_conv(81), &test_input(82), &Tactic::conv_fp32(128, 64));
    }

    #[test]
    fn lane_layouts_bit_identical_fp16_orders() {
        let mut seq = Tactic::conv_hmma(128, 64, "");
        seq.accum = AccumOrder::Sequential;
        let mut chunk_small = Tactic::conv_hmma(128, 64, "");
        chunk_small.accum = AccumOrder::Chunked(4);
        for tactic in [Tactic::conv_hmma(128, 64, ""), chunk_small, seq] {
            assert_layouts_match(&test_conv(83), &test_input(84), &tactic);
        }
    }

    /// Channel count not a multiple of 8 exercises blocked pad lanes and a
    /// partial final lane block.
    #[test]
    fn lane_layouts_bit_identical_ragged_channels() {
        let mut rng = Pcg32::seed_from_u64(85);
        let len = 10 * 6 * 3 * 3;
        let params = ConvParams {
            out_channels: 10,
            in_channels: 6,
            kernel_h: 3,
            kernel_w: 3,
            stride: 1,
            pad_h: 1,
            pad_w: 1,
            groups: 1,
            weights: Weights::Dense((0..len).map(|_| rng.normal() as f32 * 0.2).collect()),
            bias: Weights::Dense((0..10).map(|_| rng.normal() as f32 * 0.1).collect()),
            activation: Some(Activation::Relu),
        };
        let input = Tensor::from_fn([6, 7, 9], |_, _, _| rng.normal() as f32);
        assert_layouts_match(&params, &input, &Tactic::conv_fp32(128, 64));
        assert_layouts_match(&params, &input, &Tactic::conv_hmma(128, 64, ""));
    }

    #[test]
    fn lane_layouts_bit_identical_depthwise() {
        for channels in [4usize, 12] {
            let mut rng = Pcg32::seed_from_u64(86 + channels as u64);
            let params = ConvParams {
                out_channels: channels,
                in_channels: channels,
                kernel_h: 3,
                kernel_w: 3,
                stride: 1,
                pad_h: 1,
                pad_w: 1,
                groups: channels,
                weights: Weights::Dense(
                    (0..channels * 9)
                        .map(|_| rng.normal() as f32 * 0.3)
                        .collect(),
                ),
                bias: Weights::Dense((0..channels).map(|_| rng.normal() as f32 * 0.1).collect()),
                activation: Some(Activation::Relu),
            };
            let input = Tensor::from_fn([channels, 6, 6], |_, _, _| rng.normal() as f32);
            assert_layouts_match(&params, &input, &Tactic::conv_fp32(128, 64));
            let mut dw = Tactic::conv_hmma(64, 64, "");
            dw.family = crate::tactic::TacticFamily::Depthwise;
            assert_layouts_match(&params, &input, &dw);
        }
    }

    #[test]
    fn lane_non_finite_falls_back_dense_under_layouts() {
        let params = test_conv(87);
        let mut input = test_input(88);
        *input.at_mut(0, 0, 0) = f32::INFINITY;
        *input.at_mut(5, 3, 2) = f32::NAN;
        for tactic in [Tactic::conv_fp32(128, 64), Tactic::conv_hmma(128, 64, "")] {
            assert_layouts_match(&params, &input, &tactic);
        }
    }

    #[test]
    fn lane_layout_descriptor_matches_eligibility() {
        let square = test_conv(89);
        assert_eq!(
            lane_layout(&square, &Tactic::conv_hmma(128, 64, "")),
            Some(Layout::Chwc8)
        );
        assert_eq!(
            lane_layout(&square, &Tactic::conv_fp32(128, 64)),
            Some(Layout::Chwc8)
        );
        let mut pair = Tactic::conv_hmma(128, 64, "");
        pair.accum = AccumOrder::Pairwise;
        assert_eq!(lane_layout(&square, &pair), None);
        assert_eq!(lane_layout(&square, &Tactic::conv_int8(128, 64)), None);
        // Grouped non-depthwise: no lane kernel.
        assert_eq!(
            lane_layout(&strided_conv(90), &Tactic::conv_hmma(128, 64, "")),
            None
        );
        // Depthwise prefers NHWC under a depthwise tactic.
        let mut dw_params = strided_conv(91);
        dw_params.groups = 4;
        dw_params.in_channels = 4;
        dw_params.out_channels = 4;
        let mut dw = Tactic::conv_hmma(64, 64, "");
        dw.family = crate::tactic::TacticFamily::Depthwise;
        assert_eq!(lane_layout(&dw_params, &dw), Some(Layout::Nhwc));
    }

    #[test]
    fn prepared_fc_bit_identical() {
        let mut rng = Pcg32::seed_from_u64(71);
        let (out_features, in_features) = (10, 48);
        let w: Vec<f32> = (0..out_features * in_features)
            .map(|_| rng.normal() as f32 * 0.3)
            .collect();
        let b: Vec<f32> = (0..out_features)
            .map(|_| rng.normal() as f32 * 0.1)
            .collect();
        let input = Tensor::from_vec(
            [in_features, 1, 1],
            (0..in_features).map(|_| rng.normal() as f32).collect(),
        );
        for tactic in [Tactic::conv_fp32(128, 64), Tactic::conv_hmma(128, 64, "")] {
            let want = fc_forward(
                &input,
                &w,
                &b,
                out_features,
                Some(Activation::Relu),
                &tactic,
            );
            let prepared = PreparedFc::new(
                &Weights::Dense(w.clone()),
                &Weights::Dense(b.clone()),
                out_features,
                &tactic,
            );
            let mut arena = TensorArena::new();
            assert_eq!(
                prepared.run(&input, Some(Activation::Relu), &mut arena),
                want
            );
            assert_eq!(
                prepared.run(&input, Some(Activation::Relu), &mut arena),
                want
            );
        }
    }

    #[test]
    fn depthwise_numeric_fp16_runs() {
        let mut params = match LayerKind::conv_seeded(4, 4, 3, 1, 1, 0) {
            LayerKind::Conv(c) => c,
            _ => unreachable!(),
        };
        params.groups = 4;
        params.weights = Weights::Dense(vec![0.5; 4 * 9]);
        let input = test_input(11);
        let input = Tensor::from_vec([4, 8, 8], input.as_slice()[..4 * 64].to_vec());
        let mut t = Tactic::conv_hmma(64, 64, "");
        t.family = crate::tactic::TacticFamily::Depthwise;
        let out = conv_forward(&params, &input, &t, None);
        assert_eq!(out.shape(), [4, 8, 8]);
    }
}
