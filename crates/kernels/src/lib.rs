//! The simulated CUDA kernel catalog: tactics, costs, and numerics.
//!
//! TensorRT maps each (fused) network layer onto one of many pre-implemented
//! CUDA kernels — *tactics* — by measuring candidates on the target device and
//! keeping the fastest (the paper's Figure 2, step 5). This crate provides the
//! catalog those measurements choose from:
//!
//! * [`tactic`] — tactic descriptors: tile geometry, precision, accumulation
//!   order, and the TensorRT-style kernel names the paper's nvprof traces
//!   show (`trt_volta_h884cudnn_256x64_ldg8_relu_exp_small_nhwc_tn_v1`, …).
//! * [`catalog`] — which tactics apply to which layer, with shape-dependent
//!   applicability (exactly like cuDNN's heuristics).
//! * [`cost`] — converting a (tactic, layer shape) pair into a
//!   [`trtsim_gpu::kernel::KernelDesc`] for the timing model: grid geometry
//!   from tile quantization, DRAM/L2 traffic from panel reuse, per-block L2
//!   working sets from tile footprints.
//! * [`numeric`] — order-sensitive numeric execution. `h884` kernels
//!   accumulate in FP16, so *different tile sizes produce different results
//!   on the same input* — the mechanism behind the paper's Finding 2 (output
//!   labels differ across engine builds).
//! * [`lanes`] — branch-free `[f32; 8]` lane-array micro-kernels behind the
//!   prepared conv/FC paths, with per-tactic blocked data layouts (`CHWc8`,
//!   `NHWC`) and an exact scalar-redo fallback that keeps FP16 rounding
//!   bit-identical to the reference path.
//! * [`generic`] — the un-optimized framework path: one naive im2col+GEMM
//!   FP32 kernel per layer, with framework-glue overheads. This is the
//!   baseline that TensorRT beats by 23–27× in Table VII.

#![warn(missing_docs)]

pub mod catalog;
pub mod cost;
pub mod generic;
pub mod lanes;
pub mod numeric;
pub mod tactic;

pub use catalog::candidate_tactics;
pub use tactic::{AccumOrder, Tactic, TacticFamily};
