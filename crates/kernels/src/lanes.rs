//! SIMD lane-array convolution micro-kernels with per-tactic data layouts.
//!
//! The hot inner loops of [`crate::numeric::PreparedConv`] are written here
//! as branch-free `[f32; 8]` *lane arrays*: eight output channels advance in
//! lockstep through the kernel taps, so LLVM lowers each step to a handful
//! of 256-bit vector instructions (the build sets `-C target-cpu=native`).
//! This is the simulator's analog of TensorRT's tactic-specific
//! `h884cudnn…nhwc` kernels — and like them, each kernel prefers a physical
//! activation layout ([`trtsim_ir::layout::Layout`]):
//!
//! * ungrouped convolutions vectorize over **output channels** and prefer
//!   blocked `CHWc8` so their stores are contiguous 8-lane vectors;
//! * depthwise convolutions vectorize over **channels** and prefer `NHWC`
//!   so their loads are contiguous 8-lane vectors;
//! * every kernel also accepts canonical CHW operands (scalar broadcasts /
//!   gathers), so the plan-time layout assignment is free to leave a value
//!   canonical when converts would cost more than they save.
//!
//! # Bit-exactness
//!
//! Results are bit-identical to the scalar reference walks in
//! [`crate::numeric`]:
//!
//! * FP32 lanes accumulate in *exactly* the reference tap order with the
//!   bias as the initial accumulator — the same f32 operations in the same
//!   order, so even non-finite inputs propagate identically.
//! * FP16 lanes round every product and partial sum with `round8`, a
//!   branch-free blend that equals [`round_f16`] everywhere on
//!   `|v| ≤ 32768`: the Veltkamp split covers the normal range, and a
//!   magic-number add (`(v + 0.75) - 0.75`) lands subnormals on the
//!   binary16 grid exactly (f32 ulp in `[0.5, 1)` is 2⁻²⁴ — the binary16
//!   subnormal quantum — and ties-to-even agrees). Each tile tracks the
//!   max magnitude it fed the rounder; if any value left the valid range
//!   the whole tile is redone with the exact scalar [`round_f16`] path
//!   (counted by [`crate::numeric::fp16_redo_events`]).
//!
//! Values produced by the vector path and by scalar walks (redos, dense
//! fallbacks, legacy prepared kernels) are tallied process-wide and
//! exported by the core telemetry bridge as
//! `trtsim_kernel_vector_lanes_total` / `trtsim_kernel_scalar_fallback_total`.

use std::sync::atomic::{AtomicU64, Ordering};

use trtsim_gpu::kernel::Precision;
use trtsim_ir::graph::{Activation, ConvParams};
use trtsim_ir::layout::{Layout, LANES};
use trtsim_util::f16::round_f16;

use crate::numeric::{apply_act, fold_chunk, note_fp16_redo, veltkamp_f16, ConvGeom, Interior};
use crate::tactic::{AccumOrder, Tactic};

/// Lower edge of the Veltkamp fast range (2⁻¹⁴, the smallest normal f16).
pub(crate) const F16_LO: f32 = 6.103_515_6e-5;
/// Upper edge of the Veltkamp fast range.
pub(crate) const F16_HI: f32 = 32_768.0;

/// Output-pixel positions advanced together by the interior micro-kernel.
const TILE: usize = 4;

/// Output values produced by the vectorized lane-array path.
static VECTOR_LANES: AtomicU64 = AtomicU64::new(0);
/// Output values produced by scalar walks: borders redone after a range
/// trap, dense fallbacks, and the legacy (non-lane) prepared kernels.
static SCALAR_FALLBACK: AtomicU64 = AtomicU64::new(0);

/// Monotone count of output values computed by the vector lane path.
pub fn vector_lane_events() -> u64 {
    VECTOR_LANES.load(Ordering::Relaxed)
}

/// Monotone count of output values computed by scalar fallback paths.
pub fn scalar_fallback_events() -> u64 {
    SCALAR_FALLBACK.load(Ordering::Relaxed)
}

pub(crate) fn note_vector_values(n: u64) {
    if n > 0 {
        VECTOR_LANES.fetch_add(n, Ordering::Relaxed);
    }
}

pub(crate) fn note_scalar_values(n: u64) {
    if n > 0 {
        SCALAR_FALLBACK.fetch_add(n, Ordering::Relaxed);
    }
}

/// Branch-free round-to-binary16 of 8 lanes; bit-identical to [`round_f16`]
/// for every `|v| ≤ 32768` (callers trap larger magnitudes and redo in
/// scalar). Normals take the Veltkamp split; subnormals take the magic add,
/// whose zero results get the argument's sign back so even `-0.0` matches.
#[inline(always)]
pub(crate) fn round8(v: [f32; LANES]) -> [f32; LANES] {
    let mut r = [0.0f32; LANES];
    for l in 0..LANES {
        let x = v[l];
        let rn = veltkamp_f16(x);
        let mut rs = (x + 0.75) - 0.75;
        if rs == 0.0 {
            rs = 0.0f32.copysign(x);
        }
        r[l] = if x.abs() < F16_LO { rs } else { rn };
    }
    r
}

/// Rounds a slice onto the binary16 grid in place, 8 lanes at a time;
/// bit-identical to mapping [`round_f16`] (chunks holding a magnitude above
/// the fast range — including non-finite values — are redone in scalar).
/// Returns whether every rounded value is finite.
pub(crate) fn round_f16_slice(buf: &mut [f32]) -> bool {
    let mut finite = true;
    let mut chunks = buf.chunks_exact_mut(LANES);
    for c in &mut chunks {
        let v: [f32; LANES] = c.try_into().unwrap();
        // NaN fails `<=`, so non-finite lanes land in the scalar redo too.
        if v.iter().all(|x| x.abs() <= F16_HI) {
            c.copy_from_slice(&round8(v));
        } else {
            for x in c.iter_mut() {
                *x = round_f16(*x);
                finite &= x.is_finite();
            }
        }
    }
    for x in chunks.into_remainder() {
        *x = round_f16(*x);
        finite &= x.is_finite();
    }
    finite
}

/// A convolution lowered onto the lane-array micro-kernels.
///
/// Weights are packed `[oc_block][tap] -> [f32; 8]` (output-channel lanes;
/// channel lanes for depthwise), in the exact tap order of the dense
/// reference walk. Input addressing is layout-parameterized: interior taps
/// use precomputed physical deltas from the window origin, border taps go
/// through [`Layout::index`] with bounds checks.
#[derive(Debug, Clone)]
pub(crate) struct LaneConv {
    pub(crate) layout_in: Layout,
    pub(crate) layout_out: Layout,
    pub(crate) fp16: bool,
    depthwise: bool,
    /// FP16 weights contain non-finite values: the Veltkamp/maxabs trap
    /// cannot see `0·∞`, so every run takes the exact dense fallback.
    pub(crate) force_dense: bool,
    /// Split-K flush period in taps (`usize::MAX`: never flush).
    chunk: usize,
    /// Physical elements per one-pixel step along x in `layout_in`.
    in_mul: usize,
    /// Interior input offset of each tap from the window origin (std only).
    deltas: Vec<isize>,
    /// `(c_in, dy, dx)` of each tap in dense order (`c_in` unused for
    /// depthwise, where the channel is the lane).
    taps: Vec<(usize, isize, isize)>,
    /// `[block][tap]` weight lanes; lanes past the real channel count are 0.
    w: Vec<Vec<[f32; LANES]>>,
    /// Per-block bias lanes; pad lanes are 0.
    bias_v: Vec<[f32; LANES]>,
    /// Dense CHW-ordered weights (FP16: pre-rounded) for the fallback path.
    pub(crate) rdense: Vec<f32>,
}

impl LaneConv {
    /// Lowers the conv onto lane kernels, or `None` when the shape/tactic
    /// combination stays on the legacy prepared paths (grouped non-depthwise
    /// convolutions, pairwise FP16, INT8).
    pub(crate) fn build(
        params: &ConvParams,
        g: &ConvGeom,
        tactic: &Tactic,
        dense: &[f32],
        bias: &[f32],
        layout_in: Layout,
        layout_out: Layout,
    ) -> Option<Self> {
        let fp16 = match tactic.precision {
            Precision::Fp32 => false,
            Precision::Fp16 if tactic.accum != AccumOrder::Pairwise => true,
            _ => return None,
        };
        let depthwise = params.groups > 1
            && params.groups == params.in_channels
            && params.groups == params.out_channels;
        if params.groups != 1 && !depthwise {
            return None;
        }
        let rdense: Vec<f32> = if fp16 {
            dense.iter().map(|&v| round_f16(v)).collect()
        } else {
            dense.to_vec()
        };
        let force_dense = fp16 && rdense.iter().any(|v| !v.is_finite());

        let [ic, ih, iw] = g.in_shape;
        let (iwi, ihiw) = (iw as isize, (ih * iw) as isize);
        let mut taps = Vec::new();
        let mut deltas = Vec::new();
        let taps_per_oc = if depthwise {
            g.kh * g.kw
        } else {
            ic * g.kh * g.kw
        };
        for c_in in 0..if depthwise { 1 } else { ic } {
            for ky in 0..g.kh {
                for kx in 0..g.kw {
                    let dy = ky as isize - g.ph;
                    let dx = kx as isize - g.pw;
                    taps.push((c_in, dy, dx));
                    if !depthwise {
                        deltas.push(match layout_in {
                            Layout::Chw => c_in as isize * ihiw + dy * iwi + dx,
                            Layout::Chwc8 => {
                                ((c_in / LANES) as isize * ihiw + dy * iwi + dx) * LANES as isize
                                    + (c_in % LANES) as isize
                            }
                            Layout::Nhwc => (dy * iwi + dx) * ic as isize + c_in as isize,
                        });
                    }
                }
            }
        }
        let in_mul = match layout_in {
            Layout::Chw => 1,
            Layout::Chwc8 => LANES,
            Layout::Nhwc => ic,
        };

        let blocks = g.out_channels.div_ceil(LANES);
        let mut w = Vec::with_capacity(blocks);
        let mut bias_v = Vec::with_capacity(blocks);
        for b in 0..blocks {
            let mut wb = vec![[0.0f32; LANES]; taps.len()];
            let mut bv = [0.0f32; LANES];
            for l in 0..LANES {
                let oc = b * LANES + l;
                if oc >= g.out_channels {
                    break;
                }
                bv[l] = bias.get(oc).copied().unwrap_or(0.0);
                for (tap, lane) in wb.iter_mut().enumerate() {
                    lane[l] = rdense[oc * taps_per_oc + tap];
                }
            }
            w.push(wb);
            bias_v.push(bv);
        }

        Some(Self {
            layout_in,
            layout_out,
            fp16,
            depthwise,
            force_dense,
            chunk: if fp16 {
                fold_chunk(tactic.accum)
            } else {
                usize::MAX
            },
            in_mul,
            deltas,
            taps,
            w,
            bias_v,
            rdense,
        })
    }

    /// Executes the lane kernels. `x` is the physical input in `layout_in`
    /// (already rounded to binary16 and verified finite for FP16); `out` is
    /// the physical output buffer in `layout_out`, pre-zeroed by the arena.
    pub(crate) fn run(
        &self,
        g: &ConvGeom,
        it: &Interior,
        bias: &[f32],
        activation: Option<Activation>,
        x: &[f32],
        out: &mut [f32],
    ) {
        match (self.depthwise, self.fp16) {
            (false, true) => self.run_std::<true>(g, it, bias, activation, x, out),
            (false, false) => self.run_std::<false>(g, it, bias, activation, x, out),
            (true, true) => self.run_dw::<true>(g, it, bias, activation, x, out),
            (true, false) => self.run_dw::<false>(g, it, bias, activation, x, out),
        }
    }

    fn run_std<const FP16: bool>(
        &self,
        g: &ConvGeom,
        it: &Interior,
        bias: &[f32],
        act: Option<Activation>,
        x: &[f32],
        out: &mut [f32],
    ) {
        let blocks = g.out_channels.div_ceil(LANES);
        let xs = self.in_mul * g.s;
        let (mut nvec, mut nscal) = (0u64, 0u64);
        for b in 0..blocks {
            let real = (g.out_channels - b * LANES).min(LANES);
            let wb = &self.w[b];
            let bv = self.bias_v[b];
            for oy in 0..g.oh {
                let interior_row = oy >= it.oy_lo && oy < it.oy_hi && it.ox_lo < it.ox_hi;
                if interior_row {
                    let row0 = (oy * g.s) * g.iw;
                    let mut ox = it.ox_lo;
                    while ox + TILE <= it.ox_hi {
                        let base = (row0 + ox * g.s) * self.in_mul;
                        let (vals, bad) =
                            std_tile::<TILE, FP16>(x, wb, &self.deltas, base, xs, bv, self.chunk);
                        self.commit_tile(g, bias, act, x, b, real, oy, ox, &vals, bad, out);
                        if bad {
                            nscal += (TILE * real) as u64;
                        } else {
                            nvec += (TILE * real) as u64;
                        }
                        ox += TILE;
                    }
                    while ox < it.ox_hi {
                        let base = (row0 + ox * g.s) * self.in_mul;
                        let (vals, bad) =
                            std_tile::<1, FP16>(x, wb, &self.deltas, base, xs, bv, self.chunk);
                        self.commit_tile(g, bias, act, x, b, real, oy, ox, &vals, bad, out);
                        if bad {
                            nscal += real as u64;
                        } else {
                            nvec += real as u64;
                        }
                        ox += 1;
                    }
                }
                let cols: Box<dyn Iterator<Item = usize>> = if interior_row {
                    Box::new((0..it.ox_lo).chain(it.ox_hi..g.ow))
                } else {
                    Box::new(0..g.ow)
                };
                for ox in cols {
                    let (vals, bad) = self.border_pixel::<FP16>(x, g, wb, bv, b, real, oy, ox);
                    self.commit_tile(g, bias, act, x, b, real, oy, ox, &[vals], bad, out);
                    if bad {
                        nscal += real as u64;
                    } else {
                        nvec += real as u64;
                    }
                }
            }
        }
        note_vector_values(nvec);
        note_scalar_values(nscal);
    }

    fn run_dw<const FP16: bool>(
        &self,
        g: &ConvGeom,
        it: &Interior,
        bias: &[f32],
        act: Option<Activation>,
        x: &[f32],
        out: &mut [f32],
    ) {
        let blocks = g.out_channels.div_ceil(LANES);
        let (mut nvec, mut nscal) = (0u64, 0u64);
        for b in 0..blocks {
            let real = (g.out_channels - b * LANES).min(LANES);
            let wb = &self.w[b];
            let bv = self.bias_v[b];
            for oy in 0..g.oh {
                for ox in 0..g.ow {
                    let _ = it; // depthwise walks every pixel bounds-checked
                    let (vals, bad) = self.border_pixel::<FP16>(x, g, wb, bv, b, real, oy, ox);
                    self.commit_tile(g, bias, act, x, b, real, oy, ox, &[vals], bad, out);
                    if bad {
                        nscal += real as u64;
                    } else {
                        nvec += real as u64;
                    }
                }
            }
        }
        note_vector_values(nvec);
        note_scalar_values(nscal);
    }

    /// Stores a good tile, or redoes every pixel of a trapped one through
    /// the exact scalar path.
    #[allow(clippy::too_many_arguments)]
    fn commit_tile(
        &self,
        g: &ConvGeom,
        bias: &[f32],
        act: Option<Activation>,
        x: &[f32],
        b: usize,
        real: usize,
        oy: usize,
        ox0: usize,
        vals: &[[f32; LANES]],
        bad: bool,
        out: &mut [f32],
    ) {
        if bad {
            note_fp16_redo();
            for (t, _) in vals.iter().enumerate() {
                for l in 0..real {
                    let oc = b * LANES + l;
                    let sum = self.scalar_pixel_f16(x, g, oc, oy, ox0 + t);
                    let v = sum + bias.get(oc).copied().unwrap_or(0.0);
                    out[self.out_index(g, oc, oy, ox0 + t)] = apply_act(act, v);
                }
            }
        } else {
            for (t, v) in vals.iter().enumerate() {
                self.store8(g, act, b, real, oy, ox0 + t, v, out);
            }
        }
    }

    #[inline(always)]
    fn out_index(&self, g: &ConvGeom, oc: usize, oy: usize, ox: usize) -> usize {
        self.layout_out
            .index([g.out_channels, g.oh, g.ow], oc, oy, ox)
    }

    #[inline(always)]
    #[allow(clippy::too_many_arguments)]
    fn store8(
        &self,
        g: &ConvGeom,
        act: Option<Activation>,
        b: usize,
        real: usize,
        oy: usize,
        ox: usize,
        vals: &[f32; LANES],
        out: &mut [f32],
    ) {
        match self.layout_out {
            Layout::Chw => {
                for (l, &v) in vals.iter().enumerate().take(real) {
                    out[((b * LANES + l) * g.oh + oy) * g.ow + ox] = apply_act(act, v);
                }
            }
            // Contiguous 8-lane vector store; pad lanes written as explicit
            // zeros so blocked buffers stay clean for downstream converts.
            Layout::Chwc8 => {
                let mut sv = [0.0f32; LANES];
                for l in 0..real {
                    sv[l] = apply_act(act, vals[l]);
                }
                let o = ((b * g.oh + oy) * g.ow + ox) * LANES;
                out[o..o + LANES].copy_from_slice(&sv);
            }
            Layout::Nhwc => {
                let o = (oy * g.ow + ox) * g.out_channels + b * LANES;
                for (l, &v) in vals.iter().enumerate().take(real) {
                    out[o + l] = apply_act(act, v);
                }
            }
        }
    }

    /// One output pixel with bounds-checked taps, 8 lanes wide. Serves
    /// border pixels of standard convs and every depthwise pixel. In-bounds
    /// taps follow the exact dense order; FP16 chunk positions count only
    /// in-bounds taps, matching the reference border semantics.
    #[allow(clippy::too_many_arguments)]
    fn border_pixel<const FP16: bool>(
        &self,
        x: &[f32],
        g: &ConvGeom,
        wb: &[[f32; LANES]],
        bv: [f32; LANES],
        b: usize,
        real: usize,
        oy: usize,
        ox: usize,
    ) -> ([f32; LANES], bool) {
        let mut acc = if FP16 { [0.0f32; LANES] } else { bv };
        let mut carry = [0.0f64; LANES];
        let mut maxa = [0.0f32; LANES];
        let mut ic = 0usize;
        for (tap, &(c_in, dy, dx)) in self.taps.iter().enumerate() {
            let iy = (oy * g.s) as isize + dy;
            let ix = (ox * g.s) as isize + dx;
            if iy < 0 || iy >= g.ih as isize || ix < 0 || ix >= g.iw as isize {
                continue;
            }
            let (iy, ix) = (iy as usize, ix as usize);
            let xv: [f32; LANES] = if self.depthwise {
                self.dw_load(x, g, b, real, iy, ix)
            } else {
                [x[self.layout_in.index(g.in_shape, c_in, iy, ix)]; LANES]
            };
            let wv = wb[tap];
            let mut p = [0.0f32; LANES];
            for l in 0..LANES {
                p[l] = xv[l] * wv[l];
            }
            if FP16 {
                for l in 0..LANES {
                    maxa[l] = maxa[l].max(p[l].abs());
                }
                let p = round8(p);
                let mut s = [0.0f32; LANES];
                for l in 0..LANES {
                    s[l] = acc[l] + p[l];
                }
                for l in 0..LANES {
                    maxa[l] = maxa[l].max(s[l].abs());
                }
                acc = round8(s);
                ic += 1;
                if ic == self.chunk {
                    for l in 0..LANES {
                        carry[l] += f64::from(acc[l]);
                        acc[l] = 0.0;
                    }
                    ic = 0;
                }
            } else {
                for l in 0..LANES {
                    acc[l] += p[l];
                }
            }
        }
        if FP16 {
            let mut vals = [0.0f32; LANES];
            let mut bad = false;
            for l in 0..LANES {
                vals[l] = (carry[l] + f64::from(acc[l])) as f32 + bv[l];
                bad |= maxa[l] > F16_HI;
            }
            (vals, bad)
        } else {
            (acc, false)
        }
    }

    /// 8 channel lanes of a depthwise input pixel; lanes past the real
    /// channel count are zero (their weights are zero too).
    #[inline(always)]
    fn dw_load(
        &self,
        x: &[f32],
        g: &ConvGeom,
        b: usize,
        real: usize,
        iy: usize,
        ix: usize,
    ) -> [f32; LANES] {
        let mut v = [0.0f32; LANES];
        match self.layout_in {
            Layout::Nhwc => {
                let o = (iy * g.iw + ix) * g.in_shape[0] + b * LANES;
                v[..real].copy_from_slice(&x[o..o + real]);
            }
            Layout::Chw => {
                for (l, lane) in v.iter_mut().enumerate().take(real) {
                    *lane = x[((b * LANES + l) * g.ih + iy) * g.iw + ix];
                }
            }
            Layout::Chwc8 => {
                for (l, lane) in v.iter_mut().enumerate().take(real) {
                    *lane = x[Layout::Chwc8.index(g.in_shape, b * LANES + l, iy, ix)];
                }
            }
        }
        v
    }

    /// Exact scalar redo of one output pixel (pre-bias sum), byte-for-byte
    /// the reference folded walk: [`round_f16`] on every product and
    /// partial, chunk positions counting in-bounds taps only.
    pub(crate) fn scalar_pixel_f16(
        &self,
        x: &[f32],
        g: &ConvGeom,
        oc: usize,
        oy: usize,
        ox: usize,
    ) -> f32 {
        let (b, l) = (oc / LANES, oc % LANES);
        let mut carry = 0.0f64;
        let mut acc = 0.0f32;
        let mut ic = 0usize;
        for (tap, &(c_in, dy, dx)) in self.taps.iter().enumerate() {
            let iy = (oy * g.s) as isize + dy;
            let ix = (ox * g.s) as isize + dx;
            if iy < 0 || iy >= g.ih as isize || ix < 0 || ix >= g.iw as isize {
                continue;
            }
            let c = if self.depthwise { oc } else { c_in };
            let xv = x[self
                .layout_in
                .index(g.in_shape, c, iy as usize, ix as usize)];
            acc = round_f16(acc + round_f16(xv * self.w[b][tap][l]));
            ic += 1;
            if ic == self.chunk {
                carry += f64::from(acc);
                acc = 0.0;
                ic = 0;
            }
        }
        (carry + f64::from(acc)) as f32
    }
}

/// The interior micro-kernel: `T` output pixels × 8 output channels advance
/// through every tap with precomputed physical deltas (no bounds checks).
/// Returns biased pre-activation values and the FP16 range-trap flag.
#[inline(always)]
fn std_tile<const T: usize, const FP16: bool>(
    x: &[f32],
    wb: &[[f32; LANES]],
    deltas: &[isize],
    base: usize,
    xs: usize,
    bv: [f32; LANES],
    chunk: usize,
) -> ([[f32; LANES]; T], bool) {
    let mut acc = [[0.0f32; LANES]; T];
    if !FP16 {
        acc.fill(bv);
    }
    let mut carry = [[0.0f64; LANES]; T];
    let mut maxa = [0.0f32; LANES];
    let ntaps = deltas.len();
    let full = if FP16 { ntaps / chunk } else { 0 };
    let mut tap = 0usize;
    for _ in 0..full {
        for _ in 0..chunk {
            std_step::<T, FP16>(x, wb[tap], deltas[tap], base, xs, &mut acc, &mut maxa);
            tap += 1;
        }
        for t in 0..T {
            for l in 0..LANES {
                carry[t][l] += f64::from(acc[t][l]);
                acc[t][l] = 0.0;
            }
        }
    }
    while tap < ntaps {
        std_step::<T, FP16>(x, wb[tap], deltas[tap], base, xs, &mut acc, &mut maxa);
        tap += 1;
    }
    let mut bad = false;
    if FP16 {
        let mut vals = [[0.0f32; LANES]; T];
        for t in 0..T {
            for l in 0..LANES {
                vals[t][l] = (carry[t][l] + f64::from(acc[t][l])) as f32 + bv[l];
            }
        }
        for m in maxa {
            bad |= m > F16_HI;
        }
        (vals, bad)
    } else {
        (acc, false)
    }
}

/// One tap of the interior micro-kernel: broadcast the input value of each
/// tile position, multiply against 8 weight lanes, round (FP16) and
/// accumulate. `maxa` records every magnitude fed to [`round8`].
#[inline(always)]
fn std_step<const T: usize, const FP16: bool>(
    x: &[f32],
    wv: [f32; LANES],
    delta: isize,
    base: usize,
    xs: usize,
    acc: &mut [[f32; LANES]; T],
    maxa: &mut [f32; LANES],
) {
    let src = (base as isize + delta) as usize;
    for t in 0..T {
        let xv = x[src + t * xs];
        let mut p = [0.0f32; LANES];
        for l in 0..LANES {
            p[l] = xv * wv[l];
        }
        if FP16 {
            for l in 0..LANES {
                maxa[l] = maxa[l].max(p[l].abs());
            }
            let p = round8(p);
            let mut s = [0.0f32; LANES];
            for l in 0..LANES {
                s[l] = acc[t][l] + p[l];
            }
            for l in 0..LANES {
                maxa[l] = maxa[l].max(s[l].abs());
            }
            acc[t] = round8(s);
        } else {
            for l in 0..LANES {
                acc[t][l] += p[l];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trtsim_util::rng::Pcg32;

    #[test]
    fn round_f16_slice_matches_scalar_round_f16() {
        let mut vals: Vec<f32> = vec![
            0.0,
            -0.0,
            1.0,
            1.0 / 3.0,
            -1.0 / 3.0,
            6.103_515_6e-5, // smallest normal f16
            -6.103_515_6e-5,
            5.960_464_5e-8, // smallest subnormal f16
            2.980_232_2e-8, // exactly half the smallest subnormal: tie
            -2.980_232_3e-8,
            1e-9,
            -1e-9,
            32_768.0,
            -32_768.0,
            40_000.0,
            65_504.0,
            65_520.0, // overflow boundary
            70_000.0,
            f32::INFINITY,
            f32::NEG_INFINITY,
            f32::NAN,
            f32::MIN_POSITIVE,
            -f32::MIN_POSITIVE,
        ];
        let mut rng = Pcg32::seed_from_u64(99);
        for _ in 0..4096 {
            vals.push(rng.normal() as f32);
            vals.push((rng.normal() as f32) * 1e-5); // subnormal-heavy
            vals.push((rng.normal() as f32) * 1e4);
        }
        let mut lanes = vals.clone();
        let finite = round_f16_slice(&mut lanes);
        assert!(!finite, "infinities must be reported non-finite");
        for (&src, &got) in vals.iter().zip(&lanes) {
            let want = round_f16(src);
            assert_eq!(
                got.to_bits(),
                want.to_bits(),
                "round_f16_slice({src:e}) = {got:e}, want {want:e}"
            );
        }
        // All-finite slices report finite.
        let mut small = vec![1.5f32, -0.25, 3.0e4, 1.0e-6, 0.0];
        assert!(round_f16_slice(&mut small));
    }

    #[test]
    fn lane_counters_are_monotone() {
        let v0 = vector_lane_events();
        let s0 = scalar_fallback_events();
        note_vector_values(3);
        note_scalar_values(2);
        assert!(vector_lane_events() >= v0 + 3);
        assert!(scalar_fallback_events() >= s0 + 2);
    }
}
