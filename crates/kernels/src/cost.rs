//! Converting (tactic, layer shape) into a timing-model kernel descriptor.
//!
//! Convolutions are modeled as implicit GEMMs: `M = out_channels`,
//! `N = out_h · out_w`, `K = in_channels/groups · kernel²`. Tile quantization
//! determines the grid and the sustained efficiency; panel re-fetch traffic
//! determines L2 volume; first-touch traffic (activations and weights once
//! each) determines DRAM volume.

use trtsim_gpu::kernel::KernelDesc;
use trtsim_ir::flops::LayerCost;
use trtsim_ir::graph::LayerKind;
use trtsim_ir::layout::Layout;

use crate::tactic::{Tactic, TacticFamily};

/// The activation layout a tactic family's lane kernel wants its operands in.
///
/// Mirrors TensorRT's per-tactic format requirements (the `_nhwc`/`_chw`
/// suffixes in its kernel names): implicit-GEMM conv tactics read blocked
/// `CHWc8` panels so output-channel lanes load contiguously, depthwise
/// tactics read `NHWC` so the per-pixel channel loop is a contiguous vector
/// load, and everything else runs on canonical `CHW`. The plan-time layout
/// assignment pass uses this to place reformat (layout-convert) steps.
pub fn preferred_layout(tactic: &Tactic) -> Layout {
    match tactic.family {
        TacticFamily::ConvHmma | TacticFamily::ConvFp32 => Layout::Chwc8,
        TacticFamily::Depthwise => Layout::Nhwc,
        _ => Layout::Chw,
    }
}

/// GEMM dimensions of a layer under a given tactic family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GemmDims {
    /// Rows (output spatial positions for NHWC convolutions; output features
    /// for FC).
    pub m: u64,
    /// Columns (output channels; 1 for FC).
    pub n: u64,
    /// Reduction depth.
    pub k: u64,
}

/// Computes the implicit-GEMM dims for a layer, if it is GEMM-shaped.
pub fn gemm_dims(kind: &LayerKind, out_shape: [usize; 3]) -> Option<GemmDims> {
    match kind {
        LayerKind::Conv(c) => Some(GemmDims {
            m: (out_shape[1] * out_shape[2]) as u64,
            n: c.out_channels as u64,
            k: ((c.in_channels / c.groups) * c.kernel_h * c.kernel_w) as u64,
        }),
        LayerKind::InnerProduct {
            out_features,
            in_features,
            ..
        } => Some(GemmDims {
            m: *out_features as u64,
            n: 1,
            k: *in_features as u64,
        }),
        _ => None,
    }
}

/// Builds the kernel descriptor for running `kind` with `tactic`.
///
/// `cost` is the layer's arithmetic/traffic accounting and `out_shape` its
/// output; both come from `trtsim-ir`.
pub fn kernel_desc(
    tactic: &Tactic,
    kind: &LayerKind,
    cost: &LayerCost,
    out_shape: [usize; 3],
) -> KernelDesc {
    let name = tactic.kernel_name(out_shape);
    let e = tactic.precision.bytes() as u64;
    match tactic.family {
        TacticFamily::ConvHmma
        | TacticFamily::ConvFp32
        | TacticFamily::ConvInt8
        | TacticFamily::Gemm => {
            let dims = gemm_dims(kind, out_shape).unwrap_or(GemmDims {
                m: (out_shape[1] * out_shape[2]) as u64,
                n: out_shape[0] as u64,
                k: 1,
            });
            let grid = tactic.grid_blocks(dims.m, dims.n);
            // Efficiency degrades with tile-quantization waste and with very
            // small reductions (pipeline never fills).
            let util = tactic.tile_utilization(dims.m, dims.n);
            let depth_factor =
                (dims.k as f64 / (dims.k as f64 + 2.0 * f64::from(tactic.tile_k))).min(1.0);
            let eff = (tactic.base_efficiency * (0.30 + 0.70 * util) * (0.4 + 0.6 * depth_factor))
                .clamp(0.01, 1.0);

            // First-touch traffic: input + weights + output, once each.
            let dram = cost.input_elems * e + cost.weight_elems * e + cost.output_elems * e;
            // Panel re-fetch traffic beyond first touch, served by L2.
            let n_tiles = dims.n.div_ceil(u64::from(tactic.tile_n));
            let m_tiles = dims.m.div_ceil(u64::from(tactic.tile_m));
            let panel_total = n_tiles * dims.m * dims.k * e + m_tiles * dims.n * dims.k * e;
            let l2 = panel_total.saturating_sub(cost.input_elems * e + cost.weight_elems * e);

            KernelDesc::new(name)
                .grid(grid, tactic.threads_per_block)
                .occupancy(tactic.blocks_per_sm)
                .flops(cost.flops())
                .dram_bytes(dram)
                .l2_bytes(l2)
                .shared_bytes(panel_total)
                .l2_working_set(tactic.l2_working_set_bytes())
                .precision(tactic.precision, tactic.tensor_core)
                .efficiency(eff)
        }
        TacticFamily::Depthwise => {
            let dram = (cost.input_elems + cost.weight_elems + cost.output_elems) * e;
            let grid = (cost.output_elems).div_ceil(u64::from(tactic.threads_per_block) * 4);
            KernelDesc::new(name)
                .grid(grid.max(1), tactic.threads_per_block)
                .occupancy(tactic.blocks_per_sm)
                .flops(cost.flops())
                .dram_bytes(dram)
                .precision(tactic.precision, tactic.tensor_core)
                .efficiency(tactic.base_efficiency)
        }
        TacticFamily::Pool
        | TacticFamily::Lrn
        | TacticFamily::Pointwise
        | TacticFamily::Softmax
        | TacticFamily::Reformat => {
            let dram = (cost.input_elems + cost.output_elems + cost.weight_elems) * e;
            let grid = (cost.output_elems.max(cost.input_elems))
                .div_ceil(u64::from(tactic.threads_per_block) * 4);
            KernelDesc::new(name)
                .grid(grid.max(1), tactic.threads_per_block)
                .occupancy(tactic.blocks_per_sm)
                .flops(cost.flops())
                .dram_bytes(dram)
                .precision(tactic.precision, false)
                .efficiency(tactic.base_efficiency)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trtsim_gpu::device::DeviceSpec;
    use trtsim_gpu::timing::kernel_busy_us;
    use trtsim_ir::flops::layer_cost;
    use trtsim_ir::graph::LayerKind;

    fn conv_case(out_c: usize, in_c: usize, hw: usize) -> (LayerKind, LayerCost, [usize; 3]) {
        let kind = LayerKind::conv_seeded(out_c, in_c, 3, 1, 1, 0);
        let out = [out_c, hw, hw];
        let cost = layer_cost(&kind, &[[in_c, hw, hw]], out);
        (kind, cost, out)
    }

    #[test]
    fn gemm_dims_for_conv() {
        let (kind, _, out) = conv_case(64, 32, 14);
        let d = gemm_dims(&kind, out).unwrap();
        assert_eq!(d.m, 196, "M is spatial in NHWC implicit GEMM");
        assert_eq!(d.n, 64);
        assert_eq!(d.k, 32 * 9);
    }

    #[test]
    fn descriptor_carries_work_and_traffic() {
        let (kind, cost, out) = conv_case(64, 32, 14);
        let t = Tactic::conv_hmma(128, 64, "");
        let k = kernel_desc(&t, &kind, &cost, out);
        assert_eq!(k.flops, cost.flops());
        assert!(k.dram_bytes > 0);
        assert!(k.grid_blocks >= 1);
        assert!(k.uses_tensor_cores);
        assert_eq!(k.l2_working_set_bytes, t.l2_working_set_bytes());
    }

    #[test]
    fn fp16_tactic_beats_fp32_on_big_conv() {
        let (kind, cost, out) = conv_case(256, 256, 28);
        let dev = DeviceSpec::xavier_nx();
        let fp16 = kernel_desc(&Tactic::conv_hmma(128, 128, ""), &kind, &cost, out);
        let fp32 = kernel_desc(&Tactic::conv_fp32(128, 128), &kind, &cost, out);
        assert!(kernel_busy_us(&fp16, &dev) < kernel_busy_us(&fp32, &dev));
    }

    #[test]
    fn tile_mismatch_hurts_efficiency() {
        // 65 output channels waste almost half of a 128-row tile.
        let (kind_a, cost_a, out_a) = conv_case(128, 64, 28);
        let (kind_b, cost_b, out_b) = conv_case(65, 64, 28);
        let t = Tactic::conv_hmma(128, 64, "");
        let a = kernel_desc(&t, &kind_a, &cost_a, out_a);
        let b = kernel_desc(&t, &kind_b, &cost_b, out_b);
        assert!(b.compute_efficiency < a.compute_efficiency);
    }

    #[test]
    fn different_tiles_give_different_grids() {
        let (kind, cost, out) = conv_case(256, 128, 28);
        let a = kernel_desc(&Tactic::conv_hmma(256, 64, ""), &kind, &cost, out);
        let b = kernel_desc(&Tactic::conv_hmma(64, 64, ""), &kind, &cost, out);
        assert_ne!(a.grid_blocks, b.grid_blocks);
        assert_ne!(a.name, b.name);
    }

    #[test]
    fn pool_kernel_is_memory_bound() {
        let kind = LayerKind::Pool {
            kind: trtsim_ir::graph::PoolKind::Max,
            kernel: 2,
            stride: 2,
            pad: 0,
        };
        let cost = layer_cost(&kind, &[[64, 28, 28]], [64, 14, 14]);
        let t = crate::catalog::candidate_tactics(&kind, crate::catalog::PrecisionPolicy::fp16())
            .pop()
            .unwrap();
        let k = kernel_desc(&t, &kind, &cost, [64, 14, 14]);
        let dev = DeviceSpec::xavier_nx();
        use trtsim_gpu::timing::{compute_time_us, memory_time_us};
        assert!(memory_time_us(&k, &dev) > compute_time_us(&k, &dev));
    }
}
