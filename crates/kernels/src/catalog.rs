//! Which tactics can implement which layer.
//!
//! Mirrors cuDNN/TensorRT behaviour: convolutions have many tile variants in
//! each enabled precision, depthwise convolutions have a dedicated kernel,
//! and memory-bound layers (pool, LRN, softmax, pointwise) have exactly one
//! implementation each. The builder's autotuner measures every candidate this
//! module returns and keeps the fastest.

use trtsim_gpu::kernel::Precision;
use trtsim_ir::graph::LayerKind;

use crate::tactic::{AccumOrder, Tactic, TacticFamily};

/// Precisions the builder is allowed to use (its `BuilderFlag` analog).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrecisionPolicy {
    /// Allow FP16 tensor-core kernels.
    pub allow_fp16: bool,
    /// Allow INT8 kernels (requires calibration data).
    pub allow_int8: bool,
}

impl PrecisionPolicy {
    /// TensorRT's default on Volta Jetson boards: FP16 enabled, INT8 only
    /// with calibration.
    pub fn fp16() -> Self {
        Self {
            allow_fp16: true,
            allow_int8: false,
        }
    }

    /// All precisions enabled.
    pub fn all() -> Self {
        Self {
            allow_fp16: true,
            allow_int8: true,
        }
    }

    /// FP32 only (disables the optimized reduced-precision paths).
    pub fn fp32_only() -> Self {
        Self {
            allow_fp16: false,
            allow_int8: false,
        }
    }
}

/// The FP16 implicit-GEMM tile configurations in the catalog.
pub const HMMA_TILES: [(u32, u32); 6] = [
    (256, 64),
    (128, 128),
    (64, 64),
    (256, 128),
    (128, 64),
    (64, 32),
];

/// The FP32 tile configurations.
pub const FP32_TILES: [(u32, u32); 3] = [(128, 64), (128, 128), (64, 64)];

/// The INT8 tile configurations.
pub const INT8_TILES: [(u32, u32); 3] = [(128, 64), (128, 128), (256, 64)];

/// Candidate tactics for a layer, given the precision policy.
///
/// Layers with no arithmetic (concat, flatten, dropout, input, identity)
/// return an empty list — the builder elides or reformats them.
pub fn candidate_tactics(kind: &LayerKind, policy: PrecisionPolicy) -> Vec<Tactic> {
    match kind {
        LayerKind::Conv(c) => {
            if c.groups > 1 && c.groups == c.in_channels {
                return vec![depthwise_tactic()];
            }
            let mut out = Vec::new();
            if policy.allow_fp16 {
                out.extend(HMMA_TILES.iter().map(|&(m, n)| Tactic::conv_hmma(m, n, "")));
            }
            if policy.allow_int8 {
                out.extend(INT8_TILES.iter().map(|&(m, n)| Tactic::conv_int8(m, n)));
            }
            // FP32 fallbacks are always legal.
            out.extend(FP32_TILES.iter().map(|&(m, n)| Tactic::conv_fp32(m, n)));
            out
        }
        LayerKind::InnerProduct { .. } => {
            let mut out = Vec::new();
            if policy.allow_fp16 {
                for (m, n) in [(128u32, 64u32), (256, 64)] {
                    out.push(Tactic {
                        family: TacticFamily::Gemm,
                        ..Tactic::conv_hmma(m, n, "")
                    });
                }
            }
            out.push(Tactic {
                family: TacticFamily::Gemm,
                ..Tactic::conv_fp32(128, 64)
            });
            out
        }
        LayerKind::Pool { .. } | LayerKind::GlobalPool { .. } => {
            vec![memory_bound_tactic(TacticFamily::Pool, policy.allow_fp16)]
        }
        LayerKind::Lrn { .. } => vec![memory_bound_tactic(TacticFamily::Lrn, false)],
        // Element-wise sums keep FP32 math even in FP16 engines (residual
        // joins accumulate; cuDNN's eltwise path upconverts half operands).
        LayerKind::Eltwise { .. } => vec![memory_bound_tactic(TacticFamily::Pointwise, false)],
        LayerKind::Act(_) | LayerKind::BatchNorm { .. } | LayerKind::Scale { .. } => {
            vec![memory_bound_tactic(
                TacticFamily::Pointwise,
                policy.allow_fp16,
            )]
        }
        LayerKind::Softmax => vec![memory_bound_tactic(TacticFamily::Softmax, false)],
        LayerKind::Upsample { .. } | LayerKind::Concat => {
            vec![memory_bound_tactic(
                TacticFamily::Reformat,
                policy.allow_fp16,
            )]
        }
        LayerKind::Input
        | LayerKind::Flatten
        | LayerKind::Slice { .. }
        | LayerKind::Dropout { .. }
        | LayerKind::Identity => Vec::new(),
    }
}

fn depthwise_tactic() -> Tactic {
    Tactic {
        family: TacticFamily::Depthwise,
        tile_m: 32,
        tile_n: 32,
        tile_k: 9,
        precision: Precision::Fp16,
        tensor_core: true,
        base_efficiency: 0.35, // depthwise is memory-bound; low arithmetic intensity
        blocks_per_sm: 4,
        threads_per_block: 128,
        variant: "prefetch",
        accum: AccumOrder::Sequential,
    }
}

fn memory_bound_tactic(family: TacticFamily, fp16: bool) -> Tactic {
    Tactic {
        family,
        tile_m: 1,
        tile_n: 256,
        tile_k: 1,
        precision: if fp16 {
            Precision::Fp16
        } else {
            Precision::Fp32
        },
        tensor_core: false,
        base_efficiency: 0.5,
        blocks_per_sm: 8,
        threads_per_block: 256,
        variant: "",
        accum: AccumOrder::Sequential,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trtsim_ir::graph::{LayerKind, PoolKind};

    #[test]
    fn conv_gets_many_candidates_under_fp16() {
        let k = LayerKind::conv_seeded(64, 32, 3, 1, 1, 0);
        let fp16 = candidate_tactics(&k, PrecisionPolicy::fp16());
        assert_eq!(fp16.len(), HMMA_TILES.len() + FP32_TILES.len());
        let all = candidate_tactics(&k, PrecisionPolicy::all());
        assert_eq!(
            all.len(),
            HMMA_TILES.len() + INT8_TILES.len() + FP32_TILES.len()
        );
        let fp32 = candidate_tactics(&k, PrecisionPolicy::fp32_only());
        assert_eq!(fp32.len(), FP32_TILES.len());
    }

    #[test]
    fn depthwise_conv_has_dedicated_kernel() {
        let mut params = match LayerKind::conv_seeded(16, 16, 3, 1, 1, 0) {
            LayerKind::Conv(c) => c,
            _ => unreachable!(),
        };
        params.groups = 16;
        params.weights = trtsim_ir::Weights::Seeded {
            seed: 0,
            len: 16 * 9,
            scale: 0.1,
        };
        let t = candidate_tactics(&LayerKind::Conv(params), PrecisionPolicy::fp16());
        assert_eq!(t.len(), 1);
        assert_eq!(t[0].family, TacticFamily::Depthwise);
    }

    #[test]
    fn memory_bound_layers_have_one_tactic() {
        for kind in [
            LayerKind::Pool {
                kind: PoolKind::Max,
                kernel: 2,
                stride: 2,
                pad: 0,
            },
            LayerKind::Softmax,
            LayerKind::Lrn {
                local_size: 5,
                alpha: 1e-4,
                beta: 0.75,
                k: 1.0,
            },
        ] {
            assert_eq!(candidate_tactics(&kind, PrecisionPolicy::fp16()).len(), 1);
        }
    }

    #[test]
    fn structural_layers_have_none() {
        for kind in [
            LayerKind::Flatten,
            LayerKind::Identity,
            LayerKind::Dropout { rate: 0.5 },
        ] {
            assert!(candidate_tactics(&kind, PrecisionPolicy::all()).is_empty());
        }
    }

    #[test]
    fn fc_candidates_are_gemms() {
        let k = LayerKind::fc_seeded(10, 100, 0);
        let ts = candidate_tactics(&k, PrecisionPolicy::fp16());
        assert!(ts.iter().all(|t| t.family == TacticFamily::Gemm));
        assert!(ts.len() >= 2);
    }
}
