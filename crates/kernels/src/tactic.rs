//! Tactic descriptors and TensorRT-style kernel naming.

use trtsim_gpu::kernel::Precision;

/// Which operation family a tactic implements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TacticFamily {
    /// Implicit-GEMM convolution on tensor cores (FP16, `h884cudnn`).
    ConvHmma,
    /// FP32 implicit-GEMM convolution (`scudnn`).
    ConvFp32,
    /// INT8 convolution via DP4A (`i8816cudnn`).
    ConvInt8,
    /// Depthwise convolution (`cuDepthwise`).
    Depthwise,
    /// Dense/fully-connected GEMM (`h884gemm` / `sgemm`).
    Gemm,
    /// Pooling (`cudnn::pooling_fw`).
    Pool,
    /// Local response normalization (`lrn::lrnForward`).
    Lrn,
    /// Pointwise ops: activations, eltwise, scale (`trt_pointwise`).
    Pointwise,
    /// Softmax (`cudnn::softmax_fw`).
    Softmax,
    /// Data movement: concat/flatten/reformat (`trt_reformat`).
    Reformat,
}

/// Accumulation strategy of a tactic's inner reduction.
///
/// Floating-point addition is not associative, so two tactics that sum the
/// same products in different orders produce different low-order bits — and
/// `h884` kernels accumulate in FP16, where the difference is large enough to
/// flip borderline classifications. This is the paper's Finding 2 made
/// concrete.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccumOrder {
    /// Straight sequential accumulation in reading order.
    Sequential,
    /// Split-K: sequential within chunks of the given size, chunk partials
    /// combined afterwards (tile-size dependent).
    Chunked(u32),
    /// Pairwise/tree reduction.
    Pairwise,
}

/// One pre-implemented kernel the builder can select.
///
/// # Examples
///
/// ```
/// use trtsim_kernels::tactic::{Tactic, TacticFamily};
/// let t = Tactic::conv_hmma(256, 64, "small");
/// assert_eq!(t.family, TacticFamily::ConvHmma);
/// assert!(t.kernel_name([64, 28, 28]).starts_with("trt_volta_h884cudnn_256x64"));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Tactic {
    /// Operation family.
    pub family: TacticFamily,
    /// Tile rows (output-channel dimension of the implicit GEMM).
    pub tile_m: u32,
    /// Tile columns (spatial dimension of the implicit GEMM).
    pub tile_n: u32,
    /// Depth of one K-slice the kernel stages through shared memory.
    pub tile_k: u32,
    /// Numeric precision.
    pub precision: Precision,
    /// Whether the tensor-core path is used.
    pub tensor_core: bool,
    /// Fraction of peak throughput at a perfectly tiled shape.
    pub base_efficiency: f64,
    /// Concurrent blocks per SM (occupancy).
    pub blocks_per_sm: u32,
    /// Threads per block.
    pub threads_per_block: u32,
    /// Name suffix variant (`ldg8_relu_exp`, `ldg16`, …).
    pub variant: &'static str,
    /// Inner-reduction ordering.
    pub accum: AccumOrder,
}

impl Tactic {
    /// An FP16 tensor-core convolution tactic with the given tile.
    pub fn conv_hmma(tile_m: u32, tile_n: u32, _hint: &'static str) -> Self {
        Self {
            family: TacticFamily::ConvHmma,
            tile_m,
            tile_n,
            tile_k: 64,
            precision: Precision::Fp16,
            tensor_core: true,
            base_efficiency: 0.62,
            blocks_per_sm: 1,
            threads_per_block: 256,
            variant: "ldg8_relu_exp",
            accum: AccumOrder::Chunked(tile_m.min(tile_n)),
        }
    }

    /// An FP32 convolution tactic.
    pub fn conv_fp32(tile_m: u32, tile_n: u32) -> Self {
        Self {
            family: TacticFamily::ConvFp32,
            tile_m,
            tile_n,
            tile_k: 32,
            precision: Precision::Fp32,
            tensor_core: false,
            base_efficiency: 0.55,
            blocks_per_sm: 2,
            threads_per_block: 256,
            variant: "relu",
            accum: AccumOrder::Sequential,
        }
    }

    /// An INT8 DP4A convolution tactic.
    pub fn conv_int8(tile_m: u32, tile_n: u32) -> Self {
        Self {
            family: TacticFamily::ConvInt8,
            tile_m,
            tile_n,
            tile_k: 64,
            precision: Precision::Int8,
            tensor_core: false,
            base_efficiency: 0.58,
            blocks_per_sm: 2,
            threads_per_block: 256,
            variant: "ldg16_relu",
            accum: AccumOrder::Sequential, // integer accumulation is exact
        }
    }

    /// Per-block L2 working set: double-buffered A and B panels (the C tile
    /// lives in registers). For the 256×64 FP16 tile this is 80 KiB — between
    /// the AGX's 64 KiB and the NX's ≈87 KiB per-block L2 share, which is why
    /// exactly the `h884cudnn_256x64` kernels of the paper's Table XI run
    /// slower on the AGX.
    pub fn l2_working_set_bytes(&self) -> u64 {
        let e = self.precision.bytes() as u64;
        let (m, n, k) = (
            u64::from(self.tile_m),
            u64::from(self.tile_n),
            u64::from(self.tile_k),
        );
        2 * (m * k + n * k) * e
    }

    /// Grid size for an implicit GEMM of logical dims `M×N`.
    pub fn grid_blocks(&self, gemm_m: u64, gemm_n: u64) -> u64 {
        gemm_m.div_ceil(u64::from(self.tile_m)) * gemm_n.div_ceil(u64::from(self.tile_n))
    }

    /// Fraction of tile slots doing useful work at `M×N` (tile quantization).
    pub fn tile_utilization(&self, gemm_m: u64, gemm_n: u64) -> f64 {
        let padded =
            self.grid_blocks(gemm_m, gemm_n) * u64::from(self.tile_m) * u64::from(self.tile_n);
        (gemm_m * gemm_n) as f64 / padded as f64
    }

    /// The TensorRT-style kernel symbol this tactic produces for a layer of
    /// the given output shape (the names the paper's nvprof traces show).
    pub fn kernel_name(&self, out_shape: [usize; 3]) -> String {
        let spatial = out_shape[1] * out_shape[2];
        let size_class = match spatial {
            0..=255 => "small",
            256..=4095 => "medium",
            4096..=16383 => "large",
            _ => "interior",
        };
        match self.family {
            TacticFamily::ConvHmma => format!(
                "trt_volta_h884cudnn_{}x{}_{}_{}_nhwc_tn_v1",
                self.tile_m, self.tile_n, self.variant, size_class
            ),
            TacticFamily::ConvFp32 => format!(
                "trt_volta_scudnn_{}x{}_{}_{}_nn_v1",
                self.tile_m, self.tile_n, self.variant, size_class
            ),
            TacticFamily::ConvInt8 => format!(
                "trt_volta_i8816cudnn_int8_{}x{}_{}_{}_nt_v1",
                self.tile_m, self.tile_n, self.variant, size_class
            ),
            TacticFamily::Depthwise => "cuDepthwise::depthwiseConvHMMAPrefetchKernel".to_string(),
            TacticFamily::Gemm => match self.precision {
                Precision::Fp16 => format!(
                    "trt_volta_h884gemm_{}x{}_ldg8_tn_v1",
                    self.tile_m, self.tile_n
                ),
                _ => format!("trt_volta_sgemm_{}x{}_tn_v1", self.tile_m, self.tile_n),
            },
            TacticFamily::Pool => "cudnn::pooling_fw_4d_kernel".to_string(),
            TacticFamily::Lrn => "lrn::lrnForward_NChWH2".to_string(),
            TacticFamily::Pointwise => "trt_pointwise_vectorized_kernel".to_string(),
            TacticFamily::Softmax => "cudnn::softmax_fw_kernel".to_string(),
            TacticFamily::Reformat => "trt_reformat_copy_kernel".to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hmma_names_match_paper_traces() {
        let t = Tactic::conv_hmma(256, 64, "small");
        let name = t.kernel_name([64, 14, 14]);
        assert_eq!(
            name,
            "trt_volta_h884cudnn_256x64_ldg8_relu_exp_small_nhwc_tn_v1"
        );
        let name = t.kernel_name([64, 56, 56]);
        assert!(name.ends_with("medium_nhwc_tn_v1"));
    }

    #[test]
    fn grid_and_utilization() {
        let t = Tactic::conv_hmma(128, 128, "x");
        assert_eq!(t.grid_blocks(256, 256), 4);
        assert_eq!(t.tile_utilization(256, 256), 1.0);
        assert_eq!(t.grid_blocks(129, 128), 2);
        assert!((t.tile_utilization(129, 128) - 129.0 / 256.0).abs() < 1e-12);
    }

    #[test]
    fn working_set_straddles_the_two_l2_shares() {
        // 512K/6 ≈ 87.4K (NX share), 512K/8 = 64K (AGX share) at 1 block/SM.
        // At least one cataloged tile must land between them for the
        // cross-platform kernel anomaly to be reachable.
        let between = [(256u32, 64u32), (128, 128), (256, 128), (64, 64), (128, 64)]
            .iter()
            .map(|&(m, n)| Tactic::conv_hmma(m, n, "x").l2_working_set_bytes())
            .filter(|&ws| (64 << 10..87 << 10).contains(&ws))
            .count();
        assert!(between >= 1, "no tile straddles the NX/AGX L2 shares");
    }

    #[test]
    fn int8_uses_exact_accumulation() {
        assert_eq!(Tactic::conv_int8(128, 64).accum, AccumOrder::Sequential);
    }

    #[test]
    fn chunk_size_depends_on_tile() {
        let a = Tactic::conv_hmma(256, 64, "x");
        let b = Tactic::conv_hmma(128, 128, "x");
        assert_ne!(a.accum, b.accum);
    }

    #[test]
    fn depthwise_name_matches_table_xi() {
        let mut t = Tactic::conv_hmma(64, 64, "x");
        t.family = TacticFamily::Depthwise;
        assert_eq!(
            t.kernel_name([32, 10, 10]),
            "cuDepthwise::depthwiseConvHMMAPrefetchKernel"
        );
    }
}
