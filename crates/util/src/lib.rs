//! Foundation utilities shared across the `trtsim` workspace.
//!
//! This crate deliberately owns four pieces of machinery that the simulator
//! must control bit-for-bit rather than delegate to external crates:
//!
//! * [`rng`] — a deterministic, splittable PRNG ([`rng::Pcg32`] seeded through
//!   [`rng::SplitMix64`], with [`rng::stream_seed`] deriving order-free
//!   per-item streams). Engine-build non-determinism is a *subject of study*
//!   in this reproduction, so every random draw must be replayable from a seed.
//! * [`pool`] — a scoped worker pool ([`pool::map_indexed`]) for deterministic
//!   fan-out: same results at any thread count as long as the work is a pure
//!   function of the item index.
//! * [`mod@f16`] — software IEEE 754 binary16 ([`f16::F16`]) plus INT8 quantization
//!   helpers. Tactic-dependent accumulation order over these types is what
//!   makes different engine builds produce different output labels.
//! * [`stats`] — Welford accumulators and summary statistics used by every
//!   experiment harness when reporting mean/σ latencies, exactly as the paper
//!   reports "average of the 10 runs along with standard deviation".
//!
//! # Examples
//!
//! ```
//! use trtsim_util::rng::Pcg32;
//! use trtsim_util::stats::RunningStats;
//!
//! let mut rng = Pcg32::seed_from_u64(7);
//! let mut stats = RunningStats::new();
//! for _ in 0..100 {
//!     stats.push(rng.next_f64());
//! }
//! assert!(stats.mean() > 0.0 && stats.mean() < 1.0);
//! ```

#![warn(missing_docs)]

pub mod f16;
pub mod pool;
pub mod rng;
pub mod stats;

pub use f16::F16;
pub use rng::{Pcg32, SplitMix64};
pub use stats::{RunningStats, Summary};

/// Combines a base seed with a domain label and an index into a new seed.
///
/// Used throughout the workspace to derive independent random streams (e.g.
/// per-layer weight seeds, per-build tactic-noise seeds) from a single
/// user-provided seed, so that changing one stream never perturbs another.
///
/// # Examples
///
/// ```
/// let a = trtsim_util::derive_seed(42, "weights", 0);
/// let b = trtsim_util::derive_seed(42, "weights", 1);
/// let c = trtsim_util::derive_seed(42, "tactics", 0);
/// assert_ne!(a, b);
/// assert_ne!(a, c);
/// ```
pub fn derive_seed(base: u64, domain: &str, index: u64) -> u64 {
    // FNV-1a over the domain string, then SplitMix64 finalization to spread
    // low-entropy (base, index) pairs across the full 64-bit space.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in domain.as_bytes() {
        h ^= u64::from(*byte);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    let mut x = base ^ h.rotate_left(17) ^ index.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    // SplitMix64 finalizer.
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn derive_seed_is_deterministic() {
        assert_eq!(derive_seed(1, "x", 2), derive_seed(1, "x", 2));
    }

    #[test]
    fn derive_seed_separates_domains_and_indices() {
        let mut seen = HashSet::new();
        for base in 0..4u64 {
            for idx in 0..16u64 {
                for domain in ["weights", "tactics", "images"] {
                    assert!(seen.insert(derive_seed(base, domain, idx)));
                }
            }
        }
    }
}
