//! A minimal scoped worker pool for deterministic fan-out.
//!
//! The workspace has no external threading crates (rayon et al. are not
//! vendored), so this module hand-rolls the one primitive the build pipeline
//! needs: run the same closure over indices `0..items` on a bounded number of
//! OS threads and collect the results *in index order*. Work is distributed
//! by an atomic counter (work stealing at index granularity), so uneven item
//! costs — a GoogLeNet build next to a TinyYOLO build, a convolution next to
//! a pooling layer — still balance.
//!
//! Determinism contract: the closure receives only the item index, so as long
//! as the closure itself is a pure function of that index (the per-node RNG
//! streams in `trtsim-core::autotune` are built exactly this way), the output
//! vector is bit-identical regardless of `threads`.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Number of worker threads "auto" resolves to: the machine's available
/// parallelism, or 1 when that cannot be determined.
pub fn auto_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Applies `f` to every index in `0..items` and returns the results in index
/// order, using up to `threads` scoped worker threads.
///
/// With `threads <= 1` (or fewer than two items) the closure runs inline on
/// the caller's thread — the sequential fallback path. Panics in `f` are
/// propagated to the caller.
///
/// # Examples
///
/// ```
/// use trtsim_util::pool::map_indexed;
/// let squares = map_indexed(4, 8, |i| i * i);
/// assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
/// ```
pub fn map_indexed<T, F>(threads: usize, items: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if threads <= 1 || items <= 1 {
        return (0..items).map(f).collect();
    }
    let workers = threads.min(items);
    let next = AtomicUsize::new(0);
    let mut tagged: Vec<(usize, T)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut out = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= items {
                            break;
                        }
                        out.push((i, f(i)));
                    }
                    out
                })
            })
            .collect();
        let mut all = Vec::with_capacity(items);
        let mut panic: Option<Box<dyn std::any::Any + Send>> = None;
        for handle in handles {
            match handle.join() {
                Ok(chunk) => all.extend(chunk),
                Err(payload) => panic = Some(payload),
            }
        }
        if let Some(payload) = panic {
            std::panic::resume_unwind(payload);
        }
        all
    });
    tagged.sort_unstable_by_key(|(i, _)| *i);
    tagged.into_iter().map(|(_, value)| value).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn results_are_in_index_order() {
        for threads in [1, 2, 7] {
            let out = map_indexed(threads, 100, |i| i * 3);
            assert_eq!(out, (0..100).map(|i| i * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn parallel_matches_sequential_bitwise() {
        // The contract the parallel autotuner depends on: a pure function of
        // the index yields identical output at any thread count.
        let f = |i: usize| crate::rng::Pcg32::seed_from_u64(i as u64).next_f64();
        assert_eq!(map_indexed(1, 64, f), map_indexed(8, 64, f));
    }

    #[test]
    fn every_index_runs_exactly_once() {
        let hits: Vec<AtomicUsize> = (0..50).map(|_| AtomicUsize::new(0)).collect();
        map_indexed(4, 50, |i| hits[i].fetch_add(1, Ordering::Relaxed));
        for h in &hits {
            assert_eq!(h.load(Ordering::Relaxed), 1);
        }
    }

    #[test]
    fn empty_and_single_item_work() {
        assert_eq!(map_indexed(4, 0, |i| i), Vec::<usize>::new());
        assert_eq!(map_indexed(4, 1, |i| i + 1), vec![1]);
    }

    #[test]
    fn auto_threads_is_positive() {
        assert!(auto_threads() >= 1);
    }

    #[test]
    fn worker_panics_propagate() {
        let result = std::panic::catch_unwind(|| {
            map_indexed(4, 16, |i| {
                assert!(i != 7, "boom");
                i
            })
        });
        assert!(result.is_err());
    }
}
