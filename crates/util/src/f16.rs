//! Software IEEE 754 binary16 ("half") and INT8 quantization helpers.
//!
//! TensorRT's headline optimization on Volta-class edge GPUs is running
//! convolutions on FP16 tensor cores (the `h884` kernels the paper profiles)
//! or as INT8 dot products. Reproducing the paper's accuracy findings requires
//! the *actual rounding behaviour* of those formats, so this module implements
//! binary16 conversion (round-to-nearest-even, denormal and infinity handling)
//! and symmetric per-tensor INT8 quantization in portable Rust.

/// IEEE 754 binary16 value stored as its bit pattern.
///
/// Arithmetic is performed by widening to `f32`, mirroring how tensor-core
/// HMMA instructions multiply `f16` operands into an `f32` accumulator.
///
/// # Examples
///
/// ```
/// use trtsim_util::F16;
/// let x = F16::from_f32(1.5);
/// assert_eq!(x.to_f32(), 1.5);
/// // binary16 has 11 bits of significand: 1/3 rounds.
/// assert_ne!(F16::from_f32(1.0 / 3.0).to_f32(), 1.0 / 3.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct F16(pub u16);

impl F16 {
    /// Positive zero.
    pub const ZERO: F16 = F16(0);
    /// One.
    pub const ONE: F16 = F16(0x3c00);
    /// Largest finite value (65504).
    pub const MAX: F16 = F16(0x7bff);

    /// Converts from `f32` with round-to-nearest-even.
    pub fn from_f32(value: f32) -> Self {
        let bits = value.to_bits();
        let sign = ((bits >> 16) & 0x8000) as u16;
        let exp = ((bits >> 23) & 0xff) as i32;
        let mant = bits & 0x007f_ffff;

        if exp == 0xff {
            // Infinity or NaN; keep a quiet-NaN payload bit if NaN.
            let nan_payload = if mant != 0 { 0x0200 } else { 0 };
            return F16(sign | 0x7c00 | nan_payload);
        }

        // Unbiased exponent for f32 is exp - 127; f16 bias is 15.
        let unbiased = exp - 127;
        if unbiased > 15 {
            return F16(sign | 0x7c00); // overflow to infinity
        }
        if unbiased >= -14 {
            // Normal range. Keep 10 mantissa bits, round to nearest even.
            let mant16 = mant >> 13;
            let round_bits = mant & 0x1fff;
            let halfway = 0x1000;
            let mut out = sign | (((unbiased + 15) as u16) << 10) | mant16 as u16;
            if round_bits > halfway || (round_bits == halfway && (mant16 & 1) == 1) {
                out = out.wrapping_add(1); // may carry into exponent: still correct
            }
            return F16(out);
        }
        if unbiased >= -25 {
            // Subnormal range: shift the implicit leading 1 into the mantissa.
            let full_mant = mant | 0x0080_0000;
            let shift = (-14 - unbiased + 13) as u32;
            let mant16 = full_mant >> shift;
            let round_mask = (1u32 << shift) - 1;
            let round_bits = full_mant & round_mask;
            let halfway = 1u32 << (shift - 1);
            let mut out = sign | mant16 as u16;
            if round_bits > halfway || (round_bits == halfway && (mant16 & 1) == 1) {
                out = out.wrapping_add(1);
            }
            return F16(out);
        }
        F16(sign) // underflow to signed zero
    }

    /// Converts to `f32` exactly (every binary16 value is representable).
    pub fn to_f32(self) -> f32 {
        let sign = u32::from(self.0 & 0x8000) << 16;
        let exp = (self.0 >> 10) & 0x1f;
        let mant = u32::from(self.0 & 0x03ff);
        let bits = match (exp, mant) {
            (0, 0) => sign,
            (0, m) => {
                // Subnormal: value = m * 2^-24. Normalize so the top set bit of
                // m becomes the implicit leading 1 of an f32 mantissa.
                let shift = m.leading_zeros() - 21; // shift to place msb at bit 10
                let frac = (m << shift) & 0x03ff;
                let e = 113 - shift; // exponent field for 2^(msb_pos - 24)
                sign | (e << 23) | (frac << 13)
            }
            (0x1f, 0) => sign | 0x7f80_0000,
            (0x1f, m) => sign | 0x7f80_0000 | (m << 13),
            (e, m) => sign | ((u32::from(e) + 127 - 15) << 23) | (m << 13),
        };
        f32::from_bits(bits)
    }

    /// Returns `true` for NaN bit patterns.
    pub fn is_nan(self) -> bool {
        (self.0 & 0x7c00) == 0x7c00 && (self.0 & 0x03ff) != 0
    }
}

impl From<f32> for F16 {
    fn from(value: f32) -> Self {
        F16::from_f32(value)
    }
}

impl From<F16> for f32 {
    fn from(value: F16) -> Self {
        value.to_f32()
    }
}

impl std::fmt::Display for F16 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.to_f32())
    }
}

/// Rounds an `f32` through binary16 and back; the basic FP16 quantization step.
///
/// Hot path: Veltkamp splitting (`c = v·(2¹³+1); hi = c − (c − v)`) rounds the
/// significand to binary16's 11 bits with round-to-nearest-even in three
/// flops, valid across the normal binary16 range; everything else (zeros,
/// subnormals, overflow, NaN) takes the exact conversion.
#[inline]
pub fn round_f16(value: f32) -> f32 {
    let a = value.abs();
    // Normal range, and far enough from the top that `c` cannot overflow and
    // the result cannot round past 65504.
    if (6.103_515_6e-5..=32_768.0).contains(&a) {
        let c = value * 8193.0;
        c - (c - value)
    } else {
        F16::from_f32(value).to_f32()
    }
}

/// Symmetric per-tensor INT8 quantization parameters.
///
/// TensorRT calibrates `scale = amax / 127` over a calibration set; values are
/// quantized as `round(x / scale)` clamped to `[-127, 127]` (−128 unused, as in
/// cuDNN's symmetric scheme).
///
/// # Examples
///
/// ```
/// use trtsim_util::f16::QuantParams;
/// let q = QuantParams::from_amax(2.0);
/// let code = q.quantize(1.0);
/// assert!((q.dequantize(code) - 1.0).abs() < q.scale);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuantParams {
    /// Real value represented by one integer step.
    pub scale: f32,
}

impl QuantParams {
    /// Builds parameters from the maximum absolute value observed.
    ///
    /// An `amax` of zero (an all-zero tensor) yields a tiny non-zero scale so
    /// dequantization stays exact for zero inputs.
    pub fn from_amax(amax: f32) -> Self {
        let amax = if amax > 0.0 { amax } else { f32::MIN_POSITIVE };
        Self {
            scale: amax / 127.0,
        }
    }

    /// Calibrates from data: `amax` over the slice.
    pub fn calibrate(data: &[f32]) -> Self {
        let amax = data.iter().fold(0.0f32, |acc, &x| acc.max(x.abs()));
        Self::from_amax(amax)
    }

    /// Quantizes one value to an INT8 code (round-to-nearest, clamp ±127).
    pub fn quantize(&self, value: f32) -> i8 {
        let q = (value / self.scale).round();
        q.clamp(-127.0, 127.0) as i8
    }

    /// Dequantizes an INT8 code back to `f32`.
    pub fn dequantize(&self, code: i8) -> f32 {
        f32::from(code) * self.scale
    }

    /// Convenience round trip: quantize then dequantize.
    pub fn round_trip(&self, value: f32) -> f32 {
        self.dequantize(self.quantize(value))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f16_exact_values_round_trip() {
        for v in [0.0f32, 1.0, -1.0, 0.5, 2.0, 65504.0, -65504.0, 0.25, 1024.0] {
            assert_eq!(F16::from_f32(v).to_f32(), v, "value {v}");
        }
    }

    #[test]
    fn f16_one_has_canonical_bits() {
        assert_eq!(F16::from_f32(1.0), F16::ONE);
        assert_eq!(F16::MAX.to_f32(), 65504.0);
    }

    #[test]
    fn f16_overflow_is_infinity() {
        assert_eq!(F16::from_f32(1e6).to_f32(), f32::INFINITY);
        assert_eq!(F16::from_f32(-1e6).to_f32(), f32::NEG_INFINITY);
    }

    #[test]
    fn f16_underflow_is_signed_zero() {
        assert_eq!(F16::from_f32(1e-12).to_f32(), 0.0);
        assert!(F16::from_f32(-1e-12).to_f32().is_sign_negative());
    }

    #[test]
    fn f16_nan_propagates() {
        assert!(F16::from_f32(f32::NAN).is_nan());
        assert!(F16::from_f32(f32::NAN).to_f32().is_nan());
    }

    #[test]
    fn f16_subnormals_round_trip() {
        // Smallest positive subnormal of binary16 is 2^-24.
        let tiny = 2.0f32.powi(-24);
        assert_eq!(F16::from_f32(tiny).to_f32(), tiny);
        let sub = 3.0 * 2.0f32.powi(-24);
        assert_eq!(F16::from_f32(sub).to_f32(), sub);
    }

    #[test]
    fn f16_round_to_nearest_even() {
        // 1 + 2^-11 is exactly halfway between 1.0 and 1 + 2^-10: rounds to even (1.0).
        let halfway = 1.0 + 2.0f32.powi(-11);
        assert_eq!(F16::from_f32(halfway).to_f32(), 1.0);
        // Just above halfway rounds up.
        let above = 1.0 + 2.0f32.powi(-11) + 2.0f32.powi(-20);
        assert_eq!(F16::from_f32(above).to_f32(), 1.0 + 2.0f32.powi(-10));
    }

    #[test]
    fn f16_error_is_bounded_by_half_ulp() {
        let mut worst = 0.0f32;
        let mut x = 0.001f32;
        while x < 1000.0 {
            let r = round_f16(x);
            let ulp = 2.0f32.powi(x.log2().floor() as i32 - 10);
            worst = worst.max((r - x).abs() / ulp);
            x *= 1.001;
        }
        assert!(worst <= 0.5 + 1e-3, "worst error {worst} ulp");
    }

    #[test]
    fn fast_round_agrees_with_exact_conversion() {
        // Sweep the fast-path boundary regions and a dense log grid.
        let mut x = 1e-6f32;
        while x < 1e5 {
            for v in [x, -x] {
                assert_eq!(
                    round_f16(v),
                    F16::from_f32(v).to_f32(),
                    "disagreement at {v}"
                );
            }
            x *= 1.0009;
        }
        for v in [0.0f32, -0.0, 65504.0, -65504.0, 6.1035156e-5, 32768.0] {
            assert_eq!(round_f16(v), F16::from_f32(v).to_f32(), "edge {v}");
        }
    }

    #[test]
    fn quant_round_trip_error_bounded() {
        let q = QuantParams::from_amax(4.0);
        for i in -400..=400 {
            let x = i as f32 / 100.0;
            assert!((q.round_trip(x) - x).abs() <= q.scale / 2.0 + 1e-6);
        }
    }

    #[test]
    fn quant_clamps_outliers() {
        let q = QuantParams::from_amax(1.0);
        assert_eq!(q.quantize(10.0), 127);
        assert_eq!(q.quantize(-10.0), -127);
    }

    #[test]
    fn quant_calibrate_uses_amax() {
        let q = QuantParams::calibrate(&[0.5, -2.0, 1.0]);
        assert!((q.scale - 2.0 / 127.0).abs() < 1e-9);
    }

    #[test]
    fn quant_zero_tensor_is_safe() {
        let q = QuantParams::calibrate(&[0.0, 0.0]);
        assert_eq!(q.round_trip(0.0), 0.0);
        assert!(q.scale > 0.0);
    }
}
