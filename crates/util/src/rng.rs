//! Deterministic pseudo-random number generation.
//!
//! The simulator studies non-determinism as an *effect*, so its own randomness
//! must be a *controlled input*: every stochastic component (weight synthesis,
//! tactic-timing noise, dataset generation) draws from a [`Pcg32`] stream that
//! is fully determined by a seed. Two runs with the same seeds are
//! bit-identical on every platform.

/// SplitMix64 generator, used to expand a single `u64` seed into the state of
/// larger generators and to derive independent sub-seeds.
///
/// # Examples
///
/// ```
/// use trtsim_util::rng::SplitMix64;
/// let mut sm = SplitMix64::new(99);
/// let (a, b) = (sm.next_u64(), sm.next_u64());
/// assert_ne!(a, b);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a raw seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Returns the next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Derives the seed of one independent random stream from a base seed and a
/// stream index, with a SplitMix64-style finalizer.
///
/// Unlike drawing sub-seeds from a shared generator, the derivation is a pure
/// function of `(seed, stream)`: stream `i`'s seed does not depend on how many
/// other streams exist or in what order they are created. The parallel
/// autotuner relies on this to give every graph node its own noise stream —
/// measuring layers concurrently then yields bit-identical results to the
/// sequential path.
///
/// # Examples
///
/// ```
/// use trtsim_util::rng::stream_seed;
/// assert_eq!(stream_seed(7, 3), stream_seed(7, 3));
/// assert_ne!(stream_seed(7, 3), stream_seed(7, 4));
/// assert_ne!(stream_seed(7, 3), stream_seed(8, 3));
/// ```
pub fn stream_seed(seed: u64, stream: u64) -> u64 {
    // Scramble the (typically tiny) stream index across the 64-bit space with
    // the golden-ratio multiplier, then run the SplitMix64 finalizer so that
    // nearby (seed, stream) pairs decorrelate.
    let mut x = seed ^ stream.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// PCG32 (XSH-RR 64/32): small, fast, statistically solid generator with an
/// explicit stream id, used for all simulator randomness.
///
/// # Examples
///
/// ```
/// use trtsim_util::rng::Pcg32;
/// let mut rng = Pcg32::seed_from_u64(42);
/// let x = rng.range_u64(10);
/// assert!(x < 10);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Pcg32 {
    state: u64,
    inc: u64,
}

impl Pcg32 {
    /// Creates a generator from a 64-bit state seed and a stream selector.
    pub fn new(seed: u64, stream: u64) -> Self {
        let mut rng = Self {
            state: 0,
            inc: (stream << 1) | 1,
        };
        rng.next_u32();
        rng.state = rng.state.wrapping_add(seed);
        rng.next_u32();
        rng
    }

    /// Creates a generator from a single seed; the stream id is derived with
    /// SplitMix64 so that nearby seeds still produce unrelated sequences.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let state = sm.next_u64();
        let stream = sm.next_u64();
        Self::new(state, stream)
    }

    /// Returns the next 32-bit output.
    pub fn next_u32(&mut self) -> u32 {
        let old = self.state;
        self.state = old
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(self.inc);
        let xorshifted = (((old >> 18) ^ old) >> 27) as u32;
        let rot = (old >> 59) as u32;
        xorshifted.rotate_right(rot)
    }

    /// Returns the next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        (u64::from(self.next_u32()) << 32) | u64::from(self.next_u32())
    }

    /// Returns a uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 random bits scaled into the unit interval.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns a uniform `f32` in `[0, 1)`.
    pub fn next_f32(&mut self) -> f32 {
        (self.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }

    /// Returns a uniform integer in `[0, bound)` without modulo bias.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn range_u64(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "range_u64 bound must be positive");
        // Lemire-style rejection on the widening multiply.
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(bound as u128);
            if (m as u64) >= threshold {
                return (m >> 64) as u64;
            }
        }
    }

    /// Returns a uniform `usize` in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn range_usize(&mut self, bound: usize) -> usize {
        self.range_u64(bound as u64) as usize
    }

    /// Returns a uniform `f64` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi` or either bound is non-finite.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo.is_finite() && hi.is_finite() && lo < hi, "invalid range");
        lo + (hi - lo) * self.next_f64()
    }

    /// Returns a sample from the standard normal distribution (Box–Muller).
    pub fn normal(&mut self) -> f64 {
        // Avoid ln(0) by sampling the open interval.
        let u1 = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let u1 = u1.max(f64::MIN_POSITIVE);
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Returns a normal sample with the given mean and standard deviation.
    pub fn normal_with(&mut self, mean: f64, sd: f64) -> f64 {
        mean + sd * self.normal()
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p.clamp(0.0, 1.0)
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.range_usize(i + 1);
            items.swap(i, j);
        }
    }

    /// Picks a uniformly random element.
    ///
    /// Returns `None` if `items` is empty.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        if items.is_empty() {
            None
        } else {
            Some(&items[self.range_usize(items.len())])
        }
    }

    /// Forks an independent generator, advancing `self`.
    pub fn fork(&mut self) -> Pcg32 {
        Pcg32::new(self.next_u64(), self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn pcg_is_reproducible() {
        let mut a = Pcg32::seed_from_u64(123);
        let mut b = Pcg32::seed_from_u64(123);
        for _ in 0..1000 {
            assert_eq!(a.next_u32(), b.next_u32());
        }
    }

    #[test]
    fn pcg_seeds_differ() {
        let mut a = Pcg32::seed_from_u64(123);
        let mut b = Pcg32::seed_from_u64(124);
        let same = (0..64).filter(|_| a.next_u32() == b.next_u32()).count();
        assert!(
            same < 4,
            "adjacent seeds should decorrelate, got {same} collisions"
        );
    }

    #[test]
    fn range_is_in_bounds_and_covers() {
        let mut rng = Pcg32::seed_from_u64(5);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let x = rng.range_usize(7);
            assert!(x < 7);
            seen[x] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = Pcg32::seed_from_u64(9);
        for _ in 0..1000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
            let y = rng.next_f32();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn normal_moments_are_sane() {
        let mut rng = Pcg32::seed_from_u64(77);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Pcg32::seed_from_u64(3);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn fork_decorrelates() {
        let mut parent = Pcg32::seed_from_u64(11);
        let mut c1 = parent.fork();
        let mut c2 = parent.fork();
        let same = (0..64).filter(|_| c1.next_u32() == c2.next_u32()).count();
        assert!(same < 4);
    }

    #[test]
    fn chance_extremes() {
        let mut rng = Pcg32::seed_from_u64(1);
        assert!(!(0..100).any(|_| rng.chance(0.0)));
        assert!((0..100).all(|_| rng.chance(1.0)));
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn zero_bound_panics() {
        Pcg32::seed_from_u64(0).range_u64(0);
    }

    #[test]
    fn stream_seeds_are_unique_and_order_free() {
        let mut seen = HashSet::new();
        for seed in 0..8u64 {
            for stream in 0..64u64 {
                assert!(seen.insert(stream_seed(seed, stream)));
            }
        }
    }

    #[test]
    fn stream_seeded_generators_decorrelate() {
        let mut a = Pcg32::seed_from_u64(stream_seed(5, 0));
        let mut b = Pcg32::seed_from_u64(stream_seed(5, 1));
        let same = (0..64).filter(|_| a.next_u32() == b.next_u32()).count();
        assert!(same < 4, "adjacent streams collide {same} times");
    }
}
