//! Streaming and batch statistics used by the experiment harnesses.
//!
//! The paper reports every latency as "average of the 10 runs along with
//! standard deviation across these 10 runs"; [`RunningStats`] (Welford's
//! algorithm) provides exactly that, and [`Summary`] adds order statistics for
//! the concurrency experiments.

/// Numerically stable mean/variance accumulator (Welford).
///
/// # Examples
///
/// ```
/// use trtsim_util::stats::RunningStats;
/// let mut s = RunningStats::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     s.push(x);
/// }
/// assert!((s.mean() - 5.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RunningStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Sample standard deviation (n−1 denominator; 0 for fewer than two points).
    pub fn std_dev(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            (self.m2 / (self.count - 1) as f64).sqrt()
        }
    }

    /// Population variance (n denominator; 0 when empty).
    pub fn variance_population(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Smallest observation (∞ when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (−∞ when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &RunningStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl Extend<f64> for RunningStats {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.push(x);
        }
    }
}

impl FromIterator<f64> for RunningStats {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut s = Self::new();
        s.extend(iter);
        s
    }
}

/// Batch summary with order statistics.
///
/// # Examples
///
/// ```
/// use trtsim_util::stats::Summary;
/// let s = Summary::from_samples(&[1.0, 2.0, 3.0, 4.0]);
/// assert_eq!(s.median, 2.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation.
    pub std_dev: f64,
    /// Minimum.
    pub min: f64,
    /// Median (linear interpolation).
    pub median: f64,
    /// 95th percentile (linear interpolation).
    pub p95: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Computes a summary from raw samples. NaN samples are dropped rather
    /// than poisoning the order statistics; when nothing (finite) remains,
    /// the result is [`Summary::empty`] instead of a panic, so harnesses
    /// that summarize zero completed requests stay total.
    pub fn from_samples(samples: &[f64]) -> Self {
        let mut sorted: Vec<f64> = samples.iter().copied().filter(|v| !v.is_nan()).collect();
        if sorted.is_empty() {
            return Self::empty();
        }
        sorted.sort_by(f64::total_cmp);
        let running: RunningStats = sorted.iter().copied().collect();
        Self {
            count: sorted.len(),
            mean: running.mean(),
            std_dev: running.std_dev(),
            min: sorted[0],
            median: percentile_sorted(&sorted, 50.0).unwrap_or(f64::NAN),
            p95: percentile_sorted(&sorted, 95.0).unwrap_or(f64::NAN),
            max: sorted[sorted.len() - 1],
        }
    }

    /// The summary of zero samples: `count == 0`, NaN order statistics.
    pub fn empty() -> Self {
        Self {
            count: 0,
            mean: f64::NAN,
            std_dev: f64::NAN,
            min: f64::NAN,
            median: f64::NAN,
            p95: f64::NAN,
            max: f64::NAN,
        }
    }

    /// Whether the summary holds any samples.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "mean {:.3} ± {:.3} (n={}, min {:.3}, p50 {:.3}, p95 {:.3}, max {:.3})",
            self.mean, self.std_dev, self.count, self.min, self.median, self.p95, self.max
        )
    }
}

/// Percentile with linear interpolation over a pre-sorted slice.
///
/// Returns `None` when `sorted` is empty or `p` is outside `[0, 100]`
/// (including NaN), so empty-stats paths — a drained server with zero
/// completed requests, an aborted run — cannot panic here.
pub fn percentile_sorted(sorted: &[f64], p: f64) -> Option<f64> {
    if sorted.is_empty() || !(0.0..=100.0).contains(&p) {
        return None;
    }
    if sorted.len() == 1 {
        return Some(sorted[0]);
    }
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    Some(sorted[lo] + (sorted[hi] - sorted[lo]) * frac)
}

/// Mean of a slice (0 when empty).
pub fn mean(samples: &[f64]) -> f64 {
    if samples.is_empty() {
        0.0
    } else {
        samples.iter().sum::<f64>() / samples.len() as f64
    }
}

/// Sample standard deviation of a slice (0 for fewer than two points).
pub fn std_dev(samples: &[f64]) -> f64 {
    samples.iter().copied().collect::<RunningStats>().std_dev()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_naive() {
        let data = [3.1, 4.1, 5.9, 2.6, 5.3, 5.8, 9.7, 9.3];
        let s: RunningStats = data.iter().copied().collect();
        let naive_mean = data.iter().sum::<f64>() / data.len() as f64;
        let naive_var =
            data.iter().map(|x| (x - naive_mean).powi(2)).sum::<f64>() / (data.len() - 1) as f64;
        assert!((s.mean() - naive_mean).abs() < 1e-12);
        assert!((s.std_dev() - naive_var.sqrt()).abs() < 1e-12);
        assert_eq!(s.min(), 2.6);
        assert_eq!(s.max(), 9.7);
    }

    #[test]
    fn merge_equals_sequential() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let full: RunningStats = data.iter().copied().collect();
        let mut a: RunningStats = data[..37].iter().copied().collect();
        let b: RunningStats = data[37..].iter().copied().collect();
        a.merge(&b);
        assert!((a.mean() - full.mean()).abs() < 1e-10);
        assert!((a.std_dev() - full.std_dev()).abs() < 1e-10);
        assert_eq!(a.count(), full.count());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut s: RunningStats = [1.0, 2.0].iter().copied().collect();
        s.merge(&RunningStats::new());
        assert_eq!(s.count(), 2);
        let mut e = RunningStats::new();
        e.merge(&s);
        assert_eq!(e.count(), 2);
        assert!((e.mean() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn percentiles_interpolate() {
        let sorted = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(percentile_sorted(&sorted, 0.0), Some(10.0));
        assert_eq!(percentile_sorted(&sorted, 100.0), Some(40.0));
        assert_eq!(percentile_sorted(&sorted, 50.0), Some(25.0));
    }

    #[test]
    fn percentile_degenerate_inputs_are_none() {
        assert_eq!(percentile_sorted(&[], 50.0), None);
        let sorted = [1.0, 2.0];
        assert_eq!(percentile_sorted(&sorted, -0.1), None);
        assert_eq!(percentile_sorted(&sorted, 100.1), None);
        assert_eq!(percentile_sorted(&sorted, f64::NAN), None);
    }

    #[test]
    fn summary_of_constant_data() {
        let s = Summary::from_samples(&[5.0; 10]);
        assert_eq!(s.mean, 5.0);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.median, 5.0);
        assert_eq!(s.p95, 5.0);
    }

    #[test]
    fn single_sample_stats() {
        let mut s = RunningStats::new();
        s.push(42.0);
        assert_eq!(s.mean(), 42.0);
        assert_eq!(s.std_dev(), 0.0);
        assert_eq!(Summary::from_samples(&[42.0]).p95, 42.0);
    }

    #[test]
    fn empty_summary_is_total_not_a_panic() {
        let s = Summary::from_samples(&[]);
        assert!(s.is_empty());
        assert_eq!(s.count, 0);
        assert!(s.median.is_nan() && s.p95.is_nan());
        // All-NaN input degenerates to the same empty summary.
        let all_nan = Summary::from_samples(&[f64::NAN, f64::NAN]);
        assert!(all_nan.is_empty());
        // Display stays renderable.
        assert!(format!("{s}").contains("n=0"));
    }

    #[test]
    fn nan_samples_are_filtered_not_poisonous() {
        let s = Summary::from_samples(&[f64::NAN, 1.0, 3.0]);
        assert_eq!(s.count, 2);
        assert_eq!(s.median, 2.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
    }
}
