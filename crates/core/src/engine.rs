//! The built engine: an optimized graph with kernel assignments.

use std::collections::BTreeMap;

use trtsim_gpu::device::Platform;
use trtsim_gpu::kernel::Precision;
use trtsim_ir::graph::LayerKind;
use trtsim_ir::Graph;
use trtsim_kernels::numeric::QuantDesc;

use crate::autotune::Choice;
use crate::passes::PassReport;

/// Per-platform bytes of embedded runtime/cubin payload in a serialized plan
/// (TensorRT plans carry device code; the AGX build embeds more SM
/// configurations). Calibrated against Table II's MTCNN row, where the
/// payload dominates a 1.9 MB model's 3.8 / 4.78 MB engines.
pub fn runtime_payload_bytes(platform: Platform) -> u64 {
    match platform {
        Platform::Nx => 2_800_000,
        Platform::Agx => 3_750_000,
    }
}

/// Serialized per-node metadata overhead (tactic record, tensor descriptors).
pub const NODE_METADATA_BYTES: u64 = 256;

/// One node's execution assignment.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecUnit {
    /// Selected tactic and kernel, `None` for structural nodes.
    pub choice: Option<Choice>,
    /// INT8 scales, if this node runs quantized.
    pub quant: Option<QuantDesc>,
}

/// Precomputed H2D/D2H byte counts of one inference frame, memoized at
/// engine construction so the per-enqueue hot path does no shape walking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IoBytes {
    /// Bytes of one FP32 input frame.
    pub input_bytes: u64,
    /// Bytes of all FP32 output bindings of one frame.
    pub output_bytes: u64,
}

impl IoBytes {
    /// Computes the per-frame transfer sizes from a graph and its shapes.
    pub fn of(graph: &Graph, shapes: &[[usize; 3]]) -> Self {
        let bytes = |s: &[usize; 3]| (s[0] * s[1] * s[2]) as u64 * 4;
        Self {
            input_bytes: bytes(&graph.input_shape()),
            output_bytes: graph.outputs().iter().map(|&id| bytes(&shapes[id])).sum(),
        }
    }
}

/// What the build did (pass statistics), kept for reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BuildReport {
    /// Pass counters.
    pub passes: PassReport,
    /// Weight blobs compressed by clustering/pruning.
    pub compressed_blobs: usize,
}

/// An immutable, runnable inference engine (TensorRT `ICudaEngine` analog).
///
/// Engines are produced by [`crate::Builder`] and consumed by
/// [`crate::runtime::ExecutionContext`]. Two engines built from the same
/// network are **not** guaranteed to be identical — that is the paper's
/// subject — unless the build seed was pinned.
#[derive(Debug, Clone, PartialEq)]
pub struct Engine {
    pub(crate) name: String,
    pub(crate) graph: Graph,
    pub(crate) shapes: Vec<[usize; 3]>,
    pub(crate) units: Vec<ExecUnit>,
    pub(crate) io: IoBytes,
    pub(crate) build_platform: Platform,
    pub(crate) build_seed: u64,
    pub(crate) report: BuildReport,
}

impl Engine {
    /// Network name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The optimized graph this engine executes.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Output shape of every optimized node.
    pub fn shapes(&self) -> &[[usize; 3]] {
        &self.shapes
    }

    /// Per-node execution assignments (aligned with `graph().nodes()`).
    pub fn units(&self) -> &[ExecUnit] {
        &self.units
    }

    /// Per-frame input/output transfer sizes, memoized at construction.
    pub fn io_bytes(&self) -> IoBytes {
        self.io
    }

    /// Platform the engine was built (autotuned) on.
    pub fn build_platform(&self) -> Platform {
        self.build_platform
    }

    /// The build's resolved seed (diagnostic; real TensorRT has no analog).
    pub fn build_seed(&self) -> u64 {
        self.build_seed
    }

    /// Build statistics.
    pub fn report(&self) -> &BuildReport {
        &self.report
    }

    /// Kernel launch sequence, one name per compute node, in execution order.
    pub fn kernel_names(&self) -> Vec<String> {
        self.units
            .iter()
            .filter_map(|u| u.choice.as_ref().map(|c| c.kernel.name.clone()))
            .collect()
    }

    /// Invocation count per kernel symbol — the paper's Table XIII view.
    pub fn kernel_invocations(&self) -> BTreeMap<String, usize> {
        let mut out = BTreeMap::new();
        for name in self.kernel_names() {
            *out.entry(name).or_insert(0) += 1;
        }
        out
    }

    /// Number of kernel launches one inference performs.
    pub fn launch_count(&self) -> usize {
        self.units.iter().filter(|u| u.choice.is_some()).count()
    }

    /// Bytes of weights the plan stores, in each layer's selected precision.
    pub fn stored_weight_bytes(&self) -> u64 {
        let mut total = 0u64;
        for (node, unit) in self.graph.nodes().iter().zip(&self.units) {
            let params = match &node.kind {
                LayerKind::Conv(c) => Some((c.weights.len(), c.bias.len())),
                LayerKind::InnerProduct { weights, bias, .. } => Some((weights.len(), bias.len())),
                _ => None,
            };
            let Some((w_len, b_len)) = params else {
                continue;
            };
            let precision = unit
                .choice
                .as_ref()
                .map(|c| c.tactic.precision)
                .unwrap_or(Precision::Fp32);
            // Bias stays FP32 in all precisions (it adds into the accumulator).
            total += w_len as u64 * precision.bytes() as u64 + b_len as u64 * 4;
        }
        total
    }

    /// Count of compute layers per precision `(fp32, fp16, int8)`.
    pub fn precision_mix(&self) -> (usize, usize, usize) {
        let mut mix = (0, 0, 0);
        for unit in &self.units {
            if let Some(c) = &unit.choice {
                match c.tactic.precision {
                    Precision::Fp32 => mix.0 += 1,
                    Precision::Fp16 => mix.1 += 1,
                    Precision::Int8 => mix.2 += 1,
                }
            }
        }
        mix
    }

    /// Size of the serialized plan in bytes — the paper's Table II
    /// "TensorRT engine size".
    pub fn plan_size_bytes(&self) -> u64 {
        self.stored_weight_bytes()
            + self.launch_count() as u64 * NODE_METADATA_BYTES
            + runtime_payload_bytes(self.build_platform)
    }

    /// Total bytes of all activation bindings at FP16 (execution contexts
    /// allocate every binding).
    pub fn total_activation_bytes(&self) -> u64 {
        self.shapes
            .iter()
            .skip(1)
            .map(|s| (s[0] * s[1] * s[2]) as u64 * 2)
            .sum()
    }

    /// Largest activation tensor in bytes at the widest stored precision
    /// (FP16 activations unless an FP32 layer touches them; conservatively 2
    /// bytes minimum).
    pub fn max_activation_bytes(&self) -> u64 {
        self.shapes
            .iter()
            .map(|s| (s[0] * s[1] * s[2]) as u64 * 2)
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::Builder;
    use crate::config::BuilderConfig;
    use trtsim_gpu::device::DeviceSpec;
    use trtsim_ir::graph::{Graph, LayerKind, PoolKind};

    fn small_engine(seed: u64) -> Engine {
        let mut g = Graph::new("m", [3, 32, 32]);
        let c1 = g.add_layer(
            "c1",
            LayerKind::conv_seeded(64, 3, 3, 1, 1, 0),
            &[Graph::INPUT],
        );
        let p = g.add_layer(
            "p",
            LayerKind::Pool {
                kind: PoolKind::Max,
                kernel: 2,
                stride: 2,
                pad: 0,
            },
            &[c1],
        );
        let c2 = g.add_layer("c2", LayerKind::conv_seeded(64, 64, 3, 1, 1, 1), &[p]);
        g.mark_output(c2);
        Builder::new(
            DeviceSpec::xavier_nx(),
            BuilderConfig::default().with_build_seed(seed),
        )
        .build(&g)
        .unwrap()
    }

    #[test]
    fn engine_reports_kernels_and_sizes() {
        let e = small_engine(1);
        assert_eq!(e.launch_count(), 3); // 2 convs + pool
        assert_eq!(e.kernel_names().len(), 3);
        assert!(e.plan_size_bytes() > runtime_payload_bytes(Platform::Nx));
        assert!(e.stored_weight_bytes() > 0);
        assert!(e.max_activation_bytes() >= 64 * 32 * 32 * 2);
    }

    #[test]
    fn fp16_plan_is_smaller_than_fp32_weights() {
        let e = small_engine(2);
        let (_, fp16, _) = e.precision_mix();
        if fp16 > 0 {
            assert!(e.stored_weight_bytes() < e.graph.fp32_bytes() as u64);
        }
    }

    #[test]
    fn invocation_counts_sum_to_launches() {
        let e = small_engine(3);
        let total: usize = e.kernel_invocations().values().sum();
        assert_eq!(total, e.launch_count());
    }

    #[test]
    fn agx_payload_exceeds_nx() {
        assert!(runtime_payload_bytes(Platform::Agx) > runtime_payload_bytes(Platform::Nx));
    }
}
