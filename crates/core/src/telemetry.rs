//! Core-side telemetry: metric handle bundles for the instrumented
//! subsystems and the periodic tegrastats-style GPU sampler.
//!
//! Everything here publishes into [`Registry::global`] so one scrape of the
//! [`trtsim_metrics::TelemetryServer`] endpoint sees the whole process:
//! serving counters, build-cache hit rates, fast-path activity, and the
//! live per-stream GPU utilization the paper reads off `tegrastats` during
//! its concurrency experiments.
//!
//! Naming scheme (documented in DESIGN §10): every family is prefixed
//! `trtsim_`, subsystem second (`server`, `build`, `timing_cache`, `farm`,
//! `plan`, `gpu`), unit suffixes spelled out (`_us`, `_bytes`, `_mw`),
//! counters end `_total`.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::Duration;

use trtsim_gpu::tegrastats;
use trtsim_gpu::timeline::GpuTimeline;
use trtsim_metrics::{log_buckets, Counter, Gauge, Histogram, Registry};

/// Default latency-histogram bounds: 1 µs to ~33.5 s in ×2 steps. Quantile
/// estimates are therefore exact to within a factor of 2 — the resolution a
/// serving dashboard needs, at 27 fixed buckets of memory forever.
pub fn latency_buckets_us() -> Vec<f64> {
    log_buckets(1.0, 2.0, 26)
}

/// Serving-path metric handles, one bundle per [`crate::InferenceServer`],
/// labelled `model=<engine name>` plus — when the server is one member of a
/// fleet — `device=<fleet device name>` and optionally `tenant=<tenant>`.
/// The single-device default (no device label) keeps the legacy
/// `{model=...}` series stable, while two fleet devices serving the same
/// model publish two distinct series instead of silently merging into one.
/// Handles are `Arc`-backed: cloning the bundle for a worker thread is a
/// handful of refcount bumps, and every update afterwards is a relaxed
/// atomic op.
#[derive(Debug, Clone)]
pub(crate) struct ServingMetrics {
    pub(crate) accepted: Counter,
    pub(crate) rejected: Counter,
    pub(crate) completed: Counter,
    pub(crate) dropped: Counter,
    pub(crate) batches: Counter,
    pub(crate) queue_depth: Gauge,
    pub(crate) queue_high_water: Gauge,
    pub(crate) batch_size: Histogram,
    pub(crate) latency_us: Histogram,
    pub(crate) deadline_missed: Counter,
    pub(crate) deadline_rejected: Counter,
    pub(crate) predictor_observations: Gauge,
    pub(crate) predictor_mape_percent: Gauge,
    pub(crate) predictor_mape: Gauge,
    pub(crate) predictor_calibration_p50: Gauge,
    pub(crate) predictor_calibration_p99: Gauge,
}

impl ServingMetrics {
    pub(crate) fn register(model: &str, device: Option<&str>, tenant: Option<&str>) -> Self {
        let reg = Registry::global();
        let mut label_vec: Vec<(&str, &str)> = vec![("model", model)];
        if let Some(device) = device {
            label_vec.push(("device", device));
        }
        if let Some(tenant) = tenant {
            label_vec.push(("tenant", tenant));
        }
        let labels: &[(&str, &str)] = &label_vec;
        Self {
            accepted: reg.counter(
                "trtsim_server_accepted_total",
                "Frames admitted past the bounded submission queue",
                labels,
            ),
            rejected: reg.counter(
                "trtsim_server_rejected_total",
                "Frames refused by try_submit on a full queue",
                labels,
            ),
            completed: reg.counter(
                "trtsim_server_completed_total",
                "Frames fully served",
                labels,
            ),
            dropped: reg.counter(
                "trtsim_server_dropped_total",
                "Accepted frames discarded by abort",
                labels,
            ),
            batches: reg.counter(
                "trtsim_server_batches_total",
                "Batched enqueues issued by the dynamic batcher",
                labels,
            ),
            queue_depth: reg.gauge(
                "trtsim_server_queue_depth",
                "Frames currently waiting in the submission queue",
                labels,
            ),
            queue_high_water: reg.gauge(
                "trtsim_server_queue_high_water",
                "Most frames ever waiting in the submission queue",
                labels,
            ),
            batch_size: reg.histogram(
                "trtsim_server_batch_size",
                "Frames per batched enqueue",
                labels,
                &log_buckets(1.0, 2.0, 8),
            ),
            latency_us: reg.histogram(
                "trtsim_server_latency_us",
                "Per-request simulated latency, microseconds",
                labels,
                &latency_buckets_us(),
            ),
            deadline_missed: reg.counter(
                "trtsim_server_deadline_missed_total",
                "Completed frames whose end-to-end latency exceeded the deadline",
                labels,
            ),
            deadline_rejected: reg.counter(
                "trtsim_server_deadline_rejected_total",
                "Frames refused at admission because their deadline was predicted unmeetable",
                labels,
            ),
            predictor_observations: reg.gauge(
                "trtsim_server_predictor_observations",
                "Latency observations absorbed by the online predictor",
                labels,
            ),
            predictor_mape_percent: reg.gauge(
                "trtsim_server_predictor_mape_percent",
                "Prequential mean absolute percentage error of the online predictor",
                labels,
            ),
            // The `trtsim_predictor_*` family groups the model-quality view
            // (error + calibration multipliers) under one prefix, distinct
            // from the serving-path `trtsim_server_*` counters.
            predictor_mape: reg.gauge(
                "trtsim_predictor_mape_percent",
                "Prequential mean absolute percentage error of the online latency model",
                labels,
            ),
            predictor_calibration_p50: reg.gauge(
                "trtsim_predictor_calibration_p50",
                "Actual/predicted residual-ratio multiplier applied to p50 predictions",
                labels,
            ),
            predictor_calibration_p99: reg.gauge(
                "trtsim_predictor_calibration_p99",
                "Actual/predicted residual-ratio multiplier applied to p99 predictions",
                labels,
            ),
        }
    }
}

/// Fast-path metric handles, registered once per [`crate::InferencePlan`]
/// compilation.
#[derive(Debug, Clone)]
pub(crate) struct PlanMetrics {
    pub(crate) executions: Counter,
    pub(crate) zero_copy_forwards: Counter,
    /// Statically counted `move_input` steps per execution, so the hot loop
    /// adds one precomputed number instead of branching per step.
    pub(crate) moves_per_execution: u64,
}

impl PlanMetrics {
    pub(crate) fn register(model: &str, moves_per_execution: u64) -> Self {
        let reg = Registry::global();
        let labels: &[(&str, &str)] = &[("model", model)];
        Self {
            executions: reg.counter(
                "trtsim_plan_executions_total",
                "Inferences served through a precompiled plan",
                labels,
            ),
            zero_copy_forwards: reg.counter(
                "trtsim_plan_zero_copy_forwards_total",
                "Tensor moves forwarded without a copy by plan steps",
                labels,
            ),
            moves_per_execution,
        }
    }
}

/// Registers plan-compile activity: bumps the compile counter and publishes
/// the arena footprint gauges for `model`.
pub(crate) fn record_plan_compile(model: &str, stats: &trtsim_metrics::ArenaStats) {
    let reg = Registry::global();
    let labels: &[(&str, &str)] = &[("model", model)];
    reg.counter(
        "trtsim_plan_compiles_total",
        "Inference plans compiled",
        labels,
    )
    .inc();
    reg.gauge(
        "trtsim_plan_arena_peak_live_bytes",
        "Peak live activation bytes of the plan's tensor arena",
        labels,
    )
    .set(stats.peak_live_bytes as f64);
    reg.gauge(
        "trtsim_plan_arena_total_activation_bytes",
        "Keep-everything activation bytes the arena avoided",
        labels,
    )
    .set(stats.total_activation_bytes as f64);
    reg.gauge(
        "trtsim_plan_arena_slot_capacity_bytes",
        "Bytes provisioned for the plan's size-classed arena slots",
        labels,
    )
    .set(stats.slot_capacity_bytes as f64);
    reg.gauge(
        "trtsim_plan_arena_utilization",
        "Peak live bytes over provisioned slot bytes (1.0 = no slack)",
        labels,
    )
    .set(stats.utilization());
}

/// The process-wide FP16 fast-path redo counter, mirroring the raw count
/// kept inside `trtsim-kernels` (which has no metrics dependency).
fn fp16_redo_counter() -> &'static Counter {
    static C: OnceLock<Counter> = OnceLock::new();
    C.get_or_init(|| {
        Registry::global().counter(
            "trtsim_plan_fp16_redos_total",
            "FP16 Veltkamp fast-path rollback/redo events in numeric kernels",
            &[],
        )
    })
}

/// Folds the `[last, now)` delta of a raw monotone count into a registry
/// counter. Exactly-once under concurrency: a CAS loop claims the delta for
/// a single caller. This is the bridge pattern for subsystems (`trtsim-ir`,
/// `trtsim-kernels`) that keep raw atomics instead of depending on metrics.
fn drain_monotone(last: &AtomicU64, now: u64, counter: &Counter) {
    let mut seen = last.load(Ordering::Relaxed);
    while now > seen {
        match last.compare_exchange_weak(seen, now, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => {
                counter.add(now - seen);
                return;
            }
            Err(raced) => seen = raced,
        }
    }
}

/// Folds any new kernel-side FP16 redo events into the registry counter.
pub(crate) fn sync_fp16_redos() {
    static LAST: AtomicU64 = AtomicU64::new(0);
    drain_monotone(
        &LAST,
        trtsim_kernels::numeric::fp16_redo_events(),
        fp16_redo_counter(),
    );
}

/// Lane-kernel activity counters, bridged from the raw atomics in
/// `trtsim-ir` (layout conversions) and `trtsim-kernels` (values produced
/// by SIMD lanes vs scalar walks / exact-redo fallbacks).
fn lane_counters() -> &'static (Counter, Counter, Counter) {
    static C: OnceLock<(Counter, Counter, Counter)> = OnceLock::new();
    C.get_or_init(|| {
        let reg = Registry::global();
        (
            reg.counter(
                "trtsim_kernel_layout_converts_total",
                "Physical-layout (reformat) conversions executed",
                &[],
            ),
            reg.counter(
                "trtsim_kernel_vector_lanes_total",
                "Output values produced by SIMD lane-array kernels",
                &[],
            ),
            reg.counter(
                "trtsim_kernel_scalar_fallback_total",
                "Output values produced by scalar walks or exact-redo fallbacks",
                &[],
            ),
        )
    })
}

/// Folds any new layout-convert / vector-lane / scalar-fallback events into
/// their registry counters.
pub(crate) fn sync_lane_counters() {
    static LAYOUT_LAST: AtomicU64 = AtomicU64::new(0);
    static VECTOR_LAST: AtomicU64 = AtomicU64::new(0);
    static SCALAR_LAST: AtomicU64 = AtomicU64::new(0);
    let (converts, vector, scalar) = lane_counters();
    drain_monotone(
        &LAYOUT_LAST,
        trtsim_ir::layout::layout_convert_events(),
        converts,
    );
    drain_monotone(
        &VECTOR_LAST,
        trtsim_kernels::lanes::vector_lane_events(),
        vector,
    );
    drain_monotone(
        &SCALAR_LAST,
        trtsim_kernels::lanes::scalar_fallback_events(),
        scalar,
    );
}

/// Flight-recorder activity counters, bridged from the raw atomics in
/// [`crate::reqtrace`] (recording never touches the registry lock).
fn trace_counters() -> &'static (Counter, Counter, Counter, Counter) {
    static C: OnceLock<(Counter, Counter, Counter, Counter)> = OnceLock::new();
    C.get_or_init(|| {
        let reg = Registry::global();
        (
            reg.counter(
                "trtsim_trace_recorded_total",
                "Request traces offered to a flight recorder",
                &[],
            ),
            reg.counter(
                "trtsim_trace_retained_total",
                "Request traces retained in a flight-recorder ring (pinned or sampled)",
                &[],
            ),
            reg.counter(
                "trtsim_trace_sampled_total",
                "Non-tail request traces retained by 1-in-N sampling",
                &[],
            ),
            reg.counter(
                "trtsim_trace_evicted_total",
                "Request traces evicted from a flight-recorder ring",
                &[],
            ),
        )
    })
}

/// Folds any new flight-recorder events into their registry counters.
pub(crate) fn sync_trace_counters() {
    static RECORDED_LAST: AtomicU64 = AtomicU64::new(0);
    static RETAINED_LAST: AtomicU64 = AtomicU64::new(0);
    static SAMPLED_LAST: AtomicU64 = AtomicU64::new(0);
    static EVICTED_LAST: AtomicU64 = AtomicU64::new(0);
    let (recorded, retained, sampled, evicted) = trace_counters();
    drain_monotone(&RECORDED_LAST, crate::reqtrace::recorded_events(), recorded);
    drain_monotone(&RETAINED_LAST, crate::reqtrace::retained_events(), retained);
    drain_monotone(&SAMPLED_LAST, crate::reqtrace::sampled_events(), sampled);
    drain_monotone(&EVICTED_LAST, crate::reqtrace::evicted_events(), evicted);
}

/// The autotuner's per-tactic measurement counter, cached so the parallel
/// autotune fan-out never touches the registry lock.
pub(crate) fn autotune_measurements_counter() -> &'static Counter {
    static C: OnceLock<Counter> = OnceLock::new();
    C.get_or_init(|| {
        Registry::global().counter(
            "trtsim_autotune_measurements_total",
            "Noisy tactic timing measurements taken by the autotuner",
            &[],
        )
    })
}

/// Timing-cache hit/miss counters, labelled `result="hit"|"miss"`. Cached:
/// `TimingCache::time_us` sits under the autotune fan-out.
pub(crate) fn timing_cache_counters() -> &'static (Counter, Counter) {
    static C: OnceLock<(Counter, Counter)> = OnceLock::new();
    C.get_or_init(|| {
        let reg = Registry::global();
        let help = "Timing-cache lookups by outcome";
        (
            reg.counter(
                "trtsim_timing_cache_lookups_total",
                help,
                &[("result", "hit")],
            ),
            reg.counter(
                "trtsim_timing_cache_lookups_total",
                help,
                &[("result", "miss")],
            ),
        )
    })
}

/// Records one engine build: bumps the per-model build counter and observes
/// the wall-clock build time.
pub(crate) fn record_build(model: &str, seconds: f64) {
    let reg = Registry::global();
    let labels: &[(&str, &str)] = &[("model", model)];
    reg.counter("trtsim_build_total", "Engine builds completed", labels)
        .inc();
    reg.histogram(
        "trtsim_build_seconds",
        "Wall-clock engine build time, seconds",
        labels,
        // 1 ms to ~65 s in x2 steps.
        &log_buckets(1e-3, 2.0, 17),
    )
    .observe(seconds);
}

/// A periodic tegrastats-style sampler over a live serving timeline.
///
/// Every `period` of *wall* time it locks the shared [`GpuTimeline`], takes
/// the simulated window since its previous sample, and publishes:
///
/// * `trtsim_gpu_gr3d_percent` — occupancy-weighted device utilization
/// * `trtsim_gpu_stream_busy_percent{stream=...}` — per-stream busy fraction
/// * `trtsim_gpu_memcpy_bytes_per_second{direction=...}` — PCIe traffic per
///   simulated second
/// * `trtsim_gpu_power_mw` — the CV²f power estimate from
///   [`tegrastats::gpu_power_mw`]
/// * `trtsim_gpu_elapsed_simulated_us` — the simulated clock itself
///
/// Rates are per **simulated** second: the timeline advances in bursts
/// relative to wall time, so wall-clock rates would be an artifact of the
/// simulator's own speed. Windows in which no simulated time passed leave
/// the gauges at their previous values.
///
/// One sample is taken immediately at spawn and a final one at [`stop`],
/// so short runs and tests always see fresh gauges.
///
/// [`stop`]: GpuSampler::stop
#[derive(Debug)]
pub struct GpuSampler {
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl GpuSampler {
    /// Spawns the sampler thread over `timeline` at the given wall-clock
    /// cadence.
    pub fn spawn(timeline: Arc<Mutex<GpuTimeline>>, period: Duration) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let thread = std::thread::Builder::new()
            .name("gpu-sampler".into())
            .spawn(move || {
                let mut last_us = 0.0f64;
                loop {
                    last_us = sample_once(&timeline, last_us);
                    if stop_flag.load(Ordering::SeqCst) {
                        return;
                    }
                    std::thread::park_timeout(period);
                }
            })
            .expect("spawn gpu sampler");
        Self {
            stop,
            thread: Some(thread),
        }
    }

    /// Stops the sampler after one final sample. Idempotent.
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(thread) = self.thread.take() {
            thread.thread().unpark();
            let _ = thread.join();
        }
    }
}

impl Drop for GpuSampler {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Takes one sample over `[last_us, now)`; returns the new cursor.
fn sample_once(timeline: &Mutex<GpuTimeline>, last_us: f64) -> f64 {
    let tl = timeline.lock().expect("timeline lock");
    let now_us = tl.elapsed_us();
    let reg = Registry::global();
    reg.gauge(
        "trtsim_gpu_elapsed_simulated_us",
        "Simulated timeline clock, microseconds",
        &[],
    )
    .set(now_us);
    if now_us <= last_us {
        return last_us;
    }
    let window_s = (now_us - last_us) / 1e6;
    let utilization = tl.utilization_between(last_us, now_us);
    reg.gauge(
        "trtsim_gpu_gr3d_percent",
        "GR3D utilization over the last sampling window, percent",
        &[],
    )
    .set(utilization * 100.0);
    reg.gauge(
        "trtsim_gpu_power_mw",
        "Estimated GPU-rail power draw, milliwatts",
        &[],
    )
    .set(tegrastats::gpu_power_mw(tl.device(), utilization));
    for stream in 0..tl.stream_count() {
        let busy = tegrastats::stream_busy_between(&tl, stream, last_us, now_us);
        reg.gauge(
            "trtsim_gpu_stream_busy_percent",
            "Per-stream device-busy fraction over the last window, percent",
            &[("stream", &stream.to_string())],
        )
        .set(busy * 100.0);
    }
    let (h2d, d2h) = tegrastats::memcpy_bytes_between(&tl, last_us, now_us);
    let help = "Memcpy traffic over the last window, bytes per simulated second";
    reg.gauge(
        "trtsim_gpu_memcpy_bytes_per_second",
        help,
        &[("direction", "h2d")],
    )
    .set(h2d / window_s);
    reg.gauge(
        "trtsim_gpu_memcpy_bytes_per_second",
        help,
        &[("direction", "d2h")],
    )
    .set(d2h / window_s);
    now_us
}

#[cfg(test)]
mod tests {
    use super::*;
    use trtsim_gpu::device::DeviceSpec;
    use trtsim_gpu::kernel::{KernelDesc, Precision};

    #[test]
    fn sampler_publishes_stream_and_memcpy_gauges() {
        let mut tl = GpuTimeline::new(DeviceSpec::xavier_nx());
        let s = tl.create_stream();
        tl.enqueue_h2d(s, 1 << 20);
        tl.enqueue_kernel(
            s,
            &KernelDesc::new("k")
                .grid(48, 128)
                .flops(200_000_000)
                .precision(Precision::Fp16, true),
        );
        let timeline = Arc::new(Mutex::new(tl));
        let mut sampler = GpuSampler::spawn(Arc::clone(&timeline), Duration::from_millis(5));
        sampler.stop();
        let reg = Registry::global();
        let busy = reg.gauge(
            "trtsim_gpu_stream_busy_percent",
            "Per-stream device-busy fraction over the last window, percent",
            &[("stream", "0")],
        );
        assert!(busy.get() > 0.0, "stream 0 saw work: {}", busy.get());
        let h2d = reg.gauge(
            "trtsim_gpu_memcpy_bytes_per_second",
            "Memcpy traffic over the last window, bytes per simulated second",
            &[("direction", "h2d")],
        );
        assert!(h2d.get() > 0.0);
    }

    #[test]
    fn fp16_redo_sync_is_monotone_and_exact_once() {
        // Whatever the kernel-side count is, two syncs in a row must agree.
        sync_fp16_redos();
        let before = fp16_redo_counter().get();
        sync_fp16_redos();
        assert_eq!(fp16_redo_counter().get(), before);
    }

    #[test]
    fn trace_counter_sync_tracks_raw_sources() {
        sync_trace_counters();
        let (recorded, retained, sampled, evicted) = trace_counters();
        let before = (recorded.get(), retained.get(), sampled.get(), evicted.get());
        sync_trace_counters();
        // Monotone, and never ahead of the raw atomics they mirror.
        assert!(recorded.get() >= before.0);
        assert!(retained.get() >= before.1);
        assert!(recorded.get() <= crate::reqtrace::recorded_events());
        assert!(retained.get() <= crate::reqtrace::retained_events());
        assert!(sampled.get() <= crate::reqtrace::sampled_events());
        assert!(evicted.get() <= crate::reqtrace::evicted_events());
    }

    #[test]
    fn lane_counter_sync_tracks_raw_sources() {
        sync_lane_counters();
        let (converts, vector, scalar) = lane_counters();
        let before = (converts.get(), vector.get(), scalar.get());
        sync_lane_counters();
        // Monotone, and never ahead of the raw atomics they mirror (other
        // tests may bump the raw counts concurrently, so no exact equality).
        assert!(converts.get() >= before.0);
        assert!(vector.get() >= before.1);
        assert!(scalar.get() >= before.2);
        assert!(converts.get() <= trtsim_ir::layout::layout_convert_events());
        assert!(vector.get() <= trtsim_kernels::lanes::vector_lane_events());
        assert!(scalar.get() <= trtsim_kernels::lanes::scalar_fallback_events());
    }
}
