//! Plan (serialized engine) format.
//!
//! TensorRT engines are deployed as opaque plan files. The paper's §VI
//! recommends building **once** and shipping the same plan to every device so
//! outputs and latencies stay consistent; this module provides that workflow:
//! [`serialize`] an [`Engine`] and [`deserialize`] it bit-identically on any
//! host. Weights are stored in each layer's selected precision, which is why
//! plan sizes track Table II (FP16 engines ≈ half the FP32 model, plus the
//! embedded runtime payload).

use bytes::{Buf, BufMut, BytesMut};
use trtsim_gpu::device::Platform;
use trtsim_gpu::kernel::{KernelDesc, Precision};
use trtsim_ir::graph::{Activation, ConvParams, EltwiseOp, Graph, LayerKind, PoolKind};
use trtsim_ir::weights::Weights;
use trtsim_kernels::numeric::QuantDesc;
use trtsim_kernels::tactic::{AccumOrder, Tactic, TacticFamily};
use trtsim_util::f16::QuantParams;

use crate::autotune::Choice;
use crate::engine::{BuildReport, Engine, ExecUnit, IoBytes};
use crate::error::EngineError;
use crate::passes::PassReport;

const MAGIC: &[u8; 8] = b"TRTSPLAN";
const VERSION: u32 = 1;

/// Serializes an engine to a plan blob.
pub fn serialize(engine: &Engine) -> Vec<u8> {
    let mut buf = BytesMut::with_capacity(4096);
    buf.put_slice(MAGIC);
    buf.put_u32_le(VERSION);
    buf.put_u8(match engine.build_platform {
        Platform::Nx => 0,
        Platform::Agx => 1,
    });
    buf.put_u64_le(engine.build_seed);
    put_string(&mut buf, &engine.name);
    for d in engine.graph.input_shape() {
        buf.put_u64_le(d as u64);
    }
    let r = engine.report;
    for v in [
        r.passes.removed,
        r.passes.fused,
        r.passes.merged,
        r.compressed_blobs,
    ] {
        buf.put_u64_le(v as u64);
    }
    buf.put_u64_le((engine.graph.len() - 1) as u64);
    for node in engine.graph.nodes().iter().skip(1) {
        put_string(&mut buf, &node.name);
        buf.put_u32_le(node.inputs.len() as u32);
        for &i in &node.inputs {
            buf.put_u64_le(i as u64);
        }
        put_kind(&mut buf, &node.kind);
        put_unit(&mut buf, &engine.units[node.id]);
    }
    buf.put_u32_le(engine.graph.outputs().len() as u32);
    for &o in engine.graph.outputs() {
        buf.put_u64_le(o as u64);
    }
    buf.to_vec()
}

/// Deserializes a plan blob back into an engine.
///
/// # Errors
///
/// Returns [`EngineError::MalformedPlan`] on truncation, bad magic, version
/// mismatch, or any structurally invalid content.
pub fn deserialize(data: &[u8]) -> Result<Engine, EngineError> {
    let mut r = Reader { data, pos: 0 };
    let magic = r.bytes(8)?;
    if magic != MAGIC {
        return Err(malformed("bad magic"));
    }
    let version = r.u32()?;
    if version != VERSION {
        return Err(malformed(format!("unsupported version {version}")));
    }
    let platform = match r.u8()? {
        0 => Platform::Nx,
        1 => Platform::Agx,
        p => return Err(malformed(format!("unknown platform {p}"))),
    };
    let build_seed = r.u64()?;
    let name = r.string()?;
    let input_shape = [r.u64()? as usize, r.u64()? as usize, r.u64()? as usize];
    let report = BuildReport {
        passes: PassReport {
            removed: r.u64()? as usize,
            fused: r.u64()? as usize,
            merged: r.u64()? as usize,
        },
        compressed_blobs: r.u64()? as usize,
    };

    let node_count = r.u64()? as usize;
    if node_count > 1_000_000 {
        return Err(malformed("implausible node count"));
    }
    let mut graph = Graph::new(name.clone(), input_shape);
    let mut units = vec![ExecUnit {
        choice: None,
        quant: None,
    }];
    for _ in 0..node_count {
        let node_name = r.string()?;
        let n_inputs = r.u32()? as usize;
        if n_inputs > 4096 {
            return Err(malformed("implausible input count"));
        }
        let mut inputs = Vec::with_capacity(n_inputs);
        for _ in 0..n_inputs {
            let i = r.u64()? as usize;
            if i >= graph.len() {
                return Err(malformed("forward reference in plan"));
            }
            inputs.push(i);
        }
        let kind = get_kind(&mut r)?;
        graph.add_layer(node_name, kind, &inputs);
        units.push(get_unit(&mut r)?);
    }
    let n_outputs = r.u32()? as usize;
    for _ in 0..n_outputs {
        let o = r.u64()? as usize;
        if o >= graph.len() {
            return Err(malformed("output id out of range"));
        }
        graph.mark_output(o);
    }
    let shapes = graph
        .infer_shapes()
        .map_err(|e| malformed(format!("invalid graph in plan: {e}")))?;
    graph
        .validate()
        .map_err(|e| malformed(format!("invalid graph in plan: {e}")))?;
    Ok(Engine {
        name,
        io: IoBytes::of(&graph, &shapes),
        graph,
        shapes,
        units,
        build_platform: platform,
        build_seed,
        report,
    })
}

fn malformed(detail: impl Into<String>) -> EngineError {
    EngineError::MalformedPlan(detail.into())
}

// ---------- writing ----------

fn put_string(buf: &mut BytesMut, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn put_weights(buf: &mut BytesMut, w: &Weights) {
    match w {
        Weights::Dense(v) => {
            buf.put_u8(0);
            buf.put_u64_le(v.len() as u64);
            for &x in v {
                buf.put_f32_le(x);
            }
        }
        Weights::Seeded { seed, len, scale } => {
            buf.put_u8(1);
            buf.put_u64_le(*seed);
            buf.put_u64_le(*len as u64);
            buf.put_f32_le(*scale);
        }
    }
}

fn put_vec(buf: &mut BytesMut, v: &[f32]) {
    buf.put_u64_le(v.len() as u64);
    for &x in v {
        buf.put_f32_le(x);
    }
}

fn put_act(buf: &mut BytesMut, a: &Option<Activation>) {
    match a {
        None => buf.put_u8(0),
        Some(Activation::Relu) => buf.put_u8(1),
        Some(Activation::LeakyRelu(s)) => {
            buf.put_u8(2);
            buf.put_f32_le(*s);
        }
        Some(Activation::Sigmoid) => buf.put_u8(3),
        Some(Activation::Tanh) => buf.put_u8(4),
    }
}

fn put_kind(buf: &mut BytesMut, kind: &LayerKind) {
    match kind {
        LayerKind::Input => unreachable!("input node is implicit"),
        LayerKind::Conv(c) => {
            buf.put_u8(1);
            for v in [
                c.out_channels,
                c.in_channels,
                c.kernel_h,
                c.kernel_w,
                c.stride,
                c.pad_h,
                c.pad_w,
                c.groups,
            ] {
                buf.put_u64_le(v as u64);
            }
            put_weights(buf, &c.weights);
            put_weights(buf, &c.bias);
            put_act(buf, &c.activation);
        }
        LayerKind::Pool {
            kind,
            kernel,
            stride,
            pad,
        } => {
            buf.put_u8(2);
            buf.put_u8(pool_tag(*kind));
            for v in [kernel, stride, pad] {
                buf.put_u64_le(*v as u64);
            }
        }
        LayerKind::GlobalPool { kind } => {
            buf.put_u8(3);
            buf.put_u8(pool_tag(*kind));
        }
        LayerKind::InnerProduct {
            out_features,
            in_features,
            weights,
            bias,
            activation,
        } => {
            buf.put_u8(4);
            buf.put_u64_le(*out_features as u64);
            buf.put_u64_le(*in_features as u64);
            put_weights(buf, weights);
            put_weights(buf, bias);
            put_act(buf, activation);
        }
        LayerKind::Act(a) => {
            buf.put_u8(5);
            put_act(buf, &Some(*a));
        }
        LayerKind::BatchNorm {
            mean,
            var,
            gamma,
            beta,
            eps,
        } => {
            buf.put_u8(6);
            put_vec(buf, mean);
            put_vec(buf, var);
            put_vec(buf, gamma);
            put_vec(buf, beta);
            buf.put_f32_le(*eps);
        }
        LayerKind::Scale { scale, bias } => {
            buf.put_u8(7);
            put_vec(buf, scale);
            put_vec(buf, bias);
        }
        LayerKind::Lrn {
            local_size,
            alpha,
            beta,
            k,
        } => {
            buf.put_u8(8);
            buf.put_u64_le(*local_size as u64);
            buf.put_f32_le(*alpha);
            buf.put_f32_le(*beta);
            buf.put_f32_le(*k);
        }
        LayerKind::Eltwise { op } => {
            buf.put_u8(9);
            buf.put_u8(match op {
                EltwiseOp::Sum => 0,
                EltwiseOp::Max => 1,
                EltwiseOp::Prod => 2,
            });
        }
        LayerKind::Concat => buf.put_u8(10),
        LayerKind::Softmax => buf.put_u8(11),
        LayerKind::Upsample { factor } => {
            buf.put_u8(12);
            buf.put_u64_le(*factor as u64);
        }
        LayerKind::Flatten => buf.put_u8(13),
        LayerKind::Dropout { rate } => {
            buf.put_u8(14);
            buf.put_f32_le(*rate);
        }
        LayerKind::Identity => buf.put_u8(15),
        LayerKind::Slice { begin, len } => {
            buf.put_u8(16);
            buf.put_u64_le(*begin as u64);
            buf.put_u64_le(*len as u64);
        }
    }
}

fn pool_tag(kind: PoolKind) -> u8 {
    match kind {
        PoolKind::Max => 0,
        PoolKind::Avg => 1,
    }
}

fn precision_tag(p: Precision) -> u8 {
    match p {
        Precision::Fp32 => 0,
        Precision::Fp16 => 1,
        Precision::Int8 => 2,
    }
}

fn put_unit(buf: &mut BytesMut, unit: &ExecUnit) {
    match &unit.choice {
        None => buf.put_u8(0),
        Some(c) => {
            buf.put_u8(1);
            // Tactic.
            let t = &c.tactic;
            buf.put_u8(family_tag(t.family));
            buf.put_u32_le(t.tile_m);
            buf.put_u32_le(t.tile_n);
            buf.put_u32_le(t.tile_k);
            buf.put_u8(precision_tag(t.precision));
            buf.put_u8(u8::from(t.tensor_core));
            buf.put_f64_le(t.base_efficiency);
            buf.put_u32_le(t.blocks_per_sm);
            buf.put_u32_le(t.threads_per_block);
            put_string(buf, t.variant);
            match t.accum {
                AccumOrder::Sequential => buf.put_u8(0),
                AccumOrder::Chunked(n) => {
                    buf.put_u8(1);
                    buf.put_u32_le(n);
                }
                AccumOrder::Pairwise => buf.put_u8(2),
            }
            // Kernel.
            let k = &c.kernel;
            put_string(buf, &k.name);
            buf.put_u64_le(k.grid_blocks);
            buf.put_u32_le(k.threads_per_block);
            buf.put_u32_le(k.blocks_per_sm);
            buf.put_u64_le(k.flops);
            buf.put_u64_le(k.dram_bytes);
            buf.put_u64_le(k.l2_bytes);
            buf.put_u64_le(k.shared_bytes);
            buf.put_u64_le(k.l2_working_set_bytes);
            buf.put_u8(precision_tag(k.precision));
            buf.put_u8(u8::from(k.uses_tensor_cores));
            buf.put_f64_le(k.compute_efficiency);
            buf.put_f64_le(c.measured_us);
            buf.put_u64_le(c.candidates as u64);
        }
    }
    match &unit.quant {
        None => buf.put_u8(0),
        Some(q) => {
            buf.put_u8(1);
            buf.put_f32_le(q.input.scale);
            buf.put_f32_le(q.weights.scale);
        }
    }
}

fn family_tag(f: TacticFamily) -> u8 {
    match f {
        TacticFamily::ConvHmma => 0,
        TacticFamily::ConvFp32 => 1,
        TacticFamily::ConvInt8 => 2,
        TacticFamily::Depthwise => 3,
        TacticFamily::Gemm => 4,
        TacticFamily::Pool => 5,
        TacticFamily::Lrn => 6,
        TacticFamily::Pointwise => 7,
        TacticFamily::Softmax => 8,
        TacticFamily::Reformat => 9,
    }
}

// ---------- reading ----------

struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn bytes(&mut self, n: usize) -> Result<&'a [u8], EngineError> {
        if self.pos + n > self.data.len() {
            return Err(malformed("truncated plan"));
        }
        let out = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, EngineError> {
        Ok(self.bytes(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, EngineError> {
        Ok(self.bytes(4)?.get_u32_le())
    }

    fn u64(&mut self) -> Result<u64, EngineError> {
        Ok(self.bytes(8)?.get_u64_le())
    }

    /// A structural dimension (channel count, kernel side, …): bounded so
    /// corrupted plans cannot trigger arithmetic overflow downstream.
    fn dim(&mut self) -> Result<usize, EngineError> {
        let v = self.u64()?;
        if v > 1 << 24 {
            return Err(malformed(format!("implausible dimension {v}")));
        }
        Ok(v as usize)
    }

    fn f32(&mut self) -> Result<f32, EngineError> {
        Ok(self.bytes(4)?.get_f32_le())
    }

    fn f64(&mut self) -> Result<f64, EngineError> {
        Ok(self.bytes(8)?.get_f64_le())
    }

    fn string(&mut self) -> Result<String, EngineError> {
        let len = self.u32()? as usize;
        if len > 1 << 20 {
            return Err(malformed("implausible string length"));
        }
        let bytes = self.bytes(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| malformed("invalid utf-8"))
    }

    fn weights(&mut self) -> Result<Weights, EngineError> {
        match self.u8()? {
            0 => {
                let len = self.u64()? as usize;
                if len > 1 << 28 {
                    return Err(malformed("implausible dense weight length"));
                }
                let mut v = Vec::with_capacity(len);
                for _ in 0..len {
                    v.push(self.f32()?);
                }
                Ok(Weights::Dense(v))
            }
            1 => {
                let seed = self.u64()?;
                let len = self.u64()?;
                if len > 1 << 40 {
                    return Err(malformed("implausible seeded weight length"));
                }
                Ok(Weights::Seeded {
                    seed,
                    len: len as usize,
                    scale: self.f32()?,
                })
            }
            t => Err(malformed(format!("unknown weights tag {t}"))),
        }
    }

    fn vec_f32(&mut self) -> Result<Vec<f32>, EngineError> {
        let len = self.u64()? as usize;
        if len > 1 << 24 {
            return Err(malformed("implausible vector length"));
        }
        let mut v = Vec::with_capacity(len);
        for _ in 0..len {
            v.push(self.f32()?);
        }
        Ok(v)
    }

    fn act(&mut self) -> Result<Option<Activation>, EngineError> {
        Ok(match self.u8()? {
            0 => None,
            1 => Some(Activation::Relu),
            2 => Some(Activation::LeakyRelu(self.f32()?)),
            3 => Some(Activation::Sigmoid),
            4 => Some(Activation::Tanh),
            t => return Err(malformed(format!("unknown activation tag {t}"))),
        })
    }

    fn pool_kind(&mut self) -> Result<PoolKind, EngineError> {
        match self.u8()? {
            0 => Ok(PoolKind::Max),
            1 => Ok(PoolKind::Avg),
            t => Err(malformed(format!("unknown pool tag {t}"))),
        }
    }

    fn precision(&mut self) -> Result<Precision, EngineError> {
        match self.u8()? {
            0 => Ok(Precision::Fp32),
            1 => Ok(Precision::Fp16),
            2 => Ok(Precision::Int8),
            t => Err(malformed(format!("unknown precision tag {t}"))),
        }
    }
}

fn get_kind(r: &mut Reader<'_>) -> Result<LayerKind, EngineError> {
    Ok(match r.u8()? {
        1 => LayerKind::Conv(ConvParams {
            out_channels: r.dim()?,
            in_channels: r.dim()?,
            kernel_h: r.dim()?,
            kernel_w: r.dim()?,
            stride: r.dim()?,
            pad_h: r.dim()?,
            pad_w: r.dim()?,
            groups: r.dim()?,
            weights: r.weights()?,
            bias: r.weights()?,
            activation: r.act()?,
        }),
        2 => LayerKind::Pool {
            kind: r.pool_kind()?,
            kernel: r.dim()?,
            stride: r.dim()?,
            pad: r.dim()?,
        },
        3 => LayerKind::GlobalPool {
            kind: r.pool_kind()?,
        },
        4 => LayerKind::InnerProduct {
            out_features: r.dim()?,
            in_features: r.dim()?,
            weights: r.weights()?,
            bias: r.weights()?,
            activation: r.act()?,
        },
        5 => LayerKind::Act(r.act()?.ok_or_else(|| malformed("missing activation"))?),
        6 => LayerKind::BatchNorm {
            mean: r.vec_f32()?,
            var: r.vec_f32()?,
            gamma: r.vec_f32()?,
            beta: r.vec_f32()?,
            eps: r.f32()?,
        },
        7 => LayerKind::Scale {
            scale: r.vec_f32()?,
            bias: r.vec_f32()?,
        },
        8 => LayerKind::Lrn {
            local_size: r.dim()?,
            alpha: r.f32()?,
            beta: r.f32()?,
            k: r.f32()?,
        },
        9 => LayerKind::Eltwise {
            op: match r.u8()? {
                0 => EltwiseOp::Sum,
                1 => EltwiseOp::Max,
                2 => EltwiseOp::Prod,
                t => return Err(malformed(format!("unknown eltwise tag {t}"))),
            },
        },
        10 => LayerKind::Concat,
        11 => LayerKind::Softmax,
        12 => LayerKind::Upsample { factor: r.dim()? },
        13 => LayerKind::Flatten,
        14 => LayerKind::Dropout { rate: r.f32()? },
        15 => LayerKind::Identity,
        16 => LayerKind::Slice {
            begin: r.dim()?,
            len: r.dim()?,
        },
        t => return Err(malformed(format!("unknown layer tag {t}"))),
    })
}

/// Known variant strings interned back to `'static` lifetimes.
fn intern_variant(s: &str) -> &'static str {
    for known in ["ldg8_relu_exp", "relu", "ldg16_relu", "prefetch", ""] {
        if s == known {
            return known;
        }
    }
    ""
}

fn get_unit(r: &mut Reader<'_>) -> Result<ExecUnit, EngineError> {
    let choice = match r.u8()? {
        0 => None,
        1 => {
            let family = match r.u8()? {
                0 => TacticFamily::ConvHmma,
                1 => TacticFamily::ConvFp32,
                2 => TacticFamily::ConvInt8,
                3 => TacticFamily::Depthwise,
                4 => TacticFamily::Gemm,
                5 => TacticFamily::Pool,
                6 => TacticFamily::Lrn,
                7 => TacticFamily::Pointwise,
                8 => TacticFamily::Softmax,
                9 => TacticFamily::Reformat,
                t => return Err(malformed(format!("unknown family tag {t}"))),
            };
            let tile_m = r.u32()?;
            let tile_n = r.u32()?;
            let tile_k = r.u32()?;
            let precision = r.precision()?;
            let tensor_core = r.u8()? != 0;
            let base_efficiency = r.f64()?;
            let blocks_per_sm = r.u32()?;
            let threads_per_block = r.u32()?;
            let variant = intern_variant(&r.string()?);
            let accum = match r.u8()? {
                0 => AccumOrder::Sequential,
                1 => AccumOrder::Chunked(r.u32()?),
                2 => AccumOrder::Pairwise,
                t => return Err(malformed(format!("unknown accum tag {t}"))),
            };
            let tactic = Tactic {
                family,
                tile_m,
                tile_n,
                tile_k,
                precision,
                tensor_core,
                base_efficiency,
                blocks_per_sm,
                threads_per_block,
                variant,
                accum,
            };
            let name = r.string()?;
            let mut kernel = KernelDesc::new(name)
                .grid(r.u64()?, r.u32()?)
                .occupancy(r.u32()?)
                .flops(r.u64()?)
                .dram_bytes(r.u64()?)
                .l2_bytes(r.u64()?)
                .shared_bytes(r.u64()?)
                .l2_working_set(r.u64()?);
            let k_precision = r.precision()?;
            let k_tc = r.u8()? != 0;
            kernel = kernel.precision(k_precision, k_tc);
            let eff = r.f64()?;
            if !(eff > 0.0 && eff <= 1.0) {
                return Err(malformed("kernel efficiency out of range"));
            }
            kernel = kernel.efficiency(eff);
            let measured_us = r.f64()?;
            let candidates = r.u64()? as usize;
            Some(Choice {
                tactic,
                kernel,
                measured_us,
                candidates,
            })
        }
        t => return Err(malformed(format!("unknown unit tag {t}"))),
    };
    let quant = match r.u8()? {
        0 => None,
        1 => Some(QuantDesc {
            input: QuantParams { scale: r.f32()? },
            weights: QuantParams { scale: r.f32()? },
        }),
        t => return Err(malformed(format!("unknown quant tag {t}"))),
    };
    Ok(ExecUnit { choice, quant })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::Builder;
    use crate::config::BuilderConfig;
    use trtsim_gpu::device::DeviceSpec;
    use trtsim_ir::graph::{Graph, LayerKind, PoolKind};

    fn engine() -> Engine {
        let mut g = Graph::new("plan_test", [3, 16, 16]);
        let c1 = g.add_layer(
            "c1",
            LayerKind::conv_seeded(16, 3, 3, 1, 1, 0),
            &[Graph::INPUT],
        );
        let p = g.add_layer(
            "p",
            LayerKind::Pool {
                kind: PoolKind::Max,
                kernel: 2,
                stride: 2,
                pad: 0,
            },
            &[c1],
        );
        let b1 = g.add_layer("b1", LayerKind::conv_seeded(8, 16, 1, 1, 0, 1), &[p]);
        let b2 = g.add_layer("b2", LayerKind::conv_seeded(8, 16, 1, 1, 0, 2), &[p]);
        let cat = g.add_layer("cat", LayerKind::Concat, &[b1, b2]);
        let gp = g.add_layer(
            "gp",
            LayerKind::GlobalPool {
                kind: PoolKind::Avg,
            },
            &[cat],
        );
        let fc = g.add_layer("fc", LayerKind::fc_seeded(10, 16, 3), &[gp]);
        let sm = g.add_layer("sm", LayerKind::Softmax, &[fc]);
        g.mark_output(sm);
        Builder::new(
            DeviceSpec::xavier_nx(),
            BuilderConfig::default().with_build_seed(17),
        )
        .build(&g)
        .unwrap()
    }

    #[test]
    fn round_trip_is_identical() {
        let e = engine();
        let blob = serialize(&e);
        let back = deserialize(&blob).unwrap();
        assert_eq!(e, back);
    }

    #[test]
    fn deployed_plan_behaves_identically() {
        // The paper's mitigation: ship one plan everywhere.
        use crate::runtime::ExecutionContext;
        use trtsim_ir::Tensor;
        use trtsim_util::rng::Pcg32;
        let e = engine();
        let back = deserialize(&serialize(&e)).unwrap();
        let mut rng = Pcg32::seed_from_u64(1);
        let input = Tensor::from_fn([3, 16, 16], |_, _, _| rng.normal() as f32);
        let a = ExecutionContext::new(&e, DeviceSpec::xavier_nx())
            .infer(&input)
            .unwrap();
        let b = ExecutionContext::new(&back, DeviceSpec::xavier_agx())
            .infer(&input)
            .unwrap();
        assert_eq!(a, b, "same plan must give bit-identical outputs anywhere");
    }

    #[test]
    fn truncated_plans_are_rejected() {
        let blob = serialize(&engine());
        for cut in [0, 4, 8, 20, blob.len() / 2, blob.len() - 1] {
            assert!(
                matches!(
                    deserialize(&blob[..cut]),
                    Err(EngineError::MalformedPlan(_))
                ),
                "cut at {cut} not rejected"
            );
        }
    }

    #[test]
    fn bad_magic_rejected() {
        let mut blob = serialize(&engine());
        blob[0] ^= 0xff;
        assert!(matches!(
            deserialize(&blob),
            Err(EngineError::MalformedPlan(_))
        ));
    }

    #[test]
    fn garbage_rejected_without_panic() {
        let mut rng = trtsim_util::rng::Pcg32::seed_from_u64(0);
        for len in [0usize, 1, 8, 64, 1024] {
            let junk: Vec<u8> = (0..len).map(|_| rng.next_u32() as u8).collect();
            let _ = deserialize(&junk); // must not panic
        }
    }

    #[test]
    fn plan_size_tracks_weight_precision() {
        let e = engine();
        let blob = serialize(&e);
        // Seeded weights serialize compactly; the analytic size accounts for
        // logical weight bytes and exceeds the blob for descriptor engines.
        assert!(e.plan_size_bytes() > 0);
        assert!(!blob.is_empty());
    }
}
