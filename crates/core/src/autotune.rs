//! Timing-based tactic selection (Figure 2, step 5) — the non-determinism
//! engine.
//!
//! For every layer, each candidate tactic is "measured" on the build device:
//! the analytic timing model provides the true cost, and each measurement
//! adds multiplicative noise drawn from the build's RNG (a real SoC's
//! run-to-run variation under DVFS, thermal, and co-tenant load). The fastest
//! *measured* tactic wins. Near-tied candidates — common, because several
//! tile shapes suit a layer almost equally — therefore resolve differently
//! from build to build: different builds of the same network genuinely run
//! different kernels (paper Tables XII/XIII) and produce different
//! accumulation orders (paper Tables V/VI).
//!
//! # Determinism model
//!
//! Each node draws its noise from an **independent RNG stream** seeded by
//! [`stream_seed`]`(build_seed, node.id)` — a pure function of the build seed
//! and the node id, never of measurement order. Layers can therefore be
//! measured concurrently on a scoped worker pool
//! ([`trtsim_util::pool::map_indexed`]) while staying bit-identical to the
//! sequential path for a pinned seed. The deterministic component of each
//! measurement may additionally be served from a shared [`TimingCache`];
//! noise is still drawn fresh per measurement, so a warm cache never changes
//! which tactic wins and build-to-build non-determinism survives caching.

use trtsim_gpu::device::DeviceSpec;
use trtsim_gpu::kernel::KernelDesc;
use trtsim_gpu::timing::kernel_time_us;
use trtsim_ir::flops::{graph_costs, LayerCost};
use trtsim_ir::graph::LayerKind;
use trtsim_ir::Graph;
use trtsim_kernels::catalog::{candidate_tactics, PrecisionPolicy};
use trtsim_kernels::cost::kernel_desc;
use trtsim_kernels::tactic::Tactic;
use trtsim_util::pool::map_indexed;
use trtsim_util::rng::{stream_seed, Pcg32};

use crate::calibrate::CalibrationTable;
use crate::error::EngineError;
use crate::timing_cache::TimingCache;

/// A layer's selected implementation.
#[derive(Debug, Clone, PartialEq)]
pub struct Choice {
    /// The winning tactic.
    pub tactic: Tactic,
    /// Its kernel descriptor at this layer's shape.
    pub kernel: KernelDesc,
    /// The noisy time that won selection, µs (diagnostic).
    pub measured_us: f64,
    /// How many candidates were measured.
    pub candidates: usize,
}

/// Knobs of one autotuning run, split from [`crate::BuilderConfig`] so the
/// selector can be driven directly (property tests, benches).
///
/// Follows the workspace's configuration convention (DESIGN §6): start from
/// `Default`, chain consuming `with_*` setters. The fields stay public for
/// struct-literal construction in tests.
#[derive(Debug, Clone, Copy, Default)]
pub struct AutotuneOptions<'a> {
    /// Relative standard deviation of each timing measurement.
    pub noise_sd: f64,
    /// Noisy measurements averaged per tactic (TensorRT `avgTiming`).
    pub samples: u32,
    /// Worker threads measuring layers concurrently; `<= 1` selects the
    /// sequential fallback path. Either way the result is bit-identical.
    pub threads: usize,
    /// Optional shared cache for the deterministic timing component.
    pub cache: Option<&'a TimingCache>,
}

impl<'a> AutotuneOptions<'a> {
    /// Sets the relative standard deviation of each timing measurement,
    /// clamped to `[0, 1]` like [`crate::BuilderConfig::with_timing_noise_sd`].
    pub fn with_noise_sd(mut self, sd: f64) -> Self {
        self.noise_sd = if sd.is_nan() { 0.0 } else { sd.clamp(0.0, 1.0) };
        self
    }

    /// Sets the averaging count per tactic (floored at 1 when resolved).
    pub fn with_samples(mut self, samples: u32) -> Self {
        self.samples = samples;
        self
    }

    /// Sets the measurement worker-thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Attaches a shared timing cache for the deterministic component.
    pub fn with_cache(mut self, cache: &'a TimingCache) -> Self {
        self.cache = Some(cache);
        self
    }
}

/// Selects a tactic for every node; `None` for structural nodes.
///
/// Layer measurement order never influences the outcome (per-node RNG
/// streams), so `opts.threads` trades wall-clock for nothing else.
///
/// # Errors
///
/// Propagates shape errors from the graph, and [`EngineError::NoTactic`] for
/// compute layers with no candidate under the policy.
pub fn select(
    graph: &Graph,
    policy: PrecisionPolicy,
    calibration: &CalibrationTable,
    device: &DeviceSpec,
    build_seed: u64,
    opts: &AutotuneOptions<'_>,
) -> Result<Vec<Option<Choice>>, EngineError> {
    let shapes = graph.infer_shapes()?;
    let costs = graph_costs(graph)?;
    let nodes = graph.nodes();
    let results = map_indexed(opts.threads, nodes.len(), |id| {
        select_node(
            graph,
            id,
            policy,
            calibration,
            device,
            shapes[id],
            &costs[id],
            build_seed,
            opts,
        )
    });
    results.into_iter().collect()
}

/// Measures every candidate of one node on its own RNG stream. Pure in
/// `(graph, id, build_seed, options)` — the worker-pool determinism contract.
#[allow(clippy::too_many_arguments)]
fn select_node(
    graph: &Graph,
    id: usize,
    policy: PrecisionPolicy,
    calibration: &CalibrationTable,
    device: &DeviceSpec,
    shape: [usize; 3],
    cost: &LayerCost,
    build_seed: u64,
    opts: &AutotuneOptions<'_>,
) -> Result<Option<Choice>, EngineError> {
    let node = &graph.nodes()[id];
    let mut candidates = candidate_tactics(&node.kind, policy);
    // INT8 tactics are only usable where calibration observed the layer.
    if !calibration.contains_key(&node.id) {
        candidates.retain(|t| t.precision != trtsim_gpu::kernel::Precision::Int8);
    }
    if candidates.is_empty() {
        let needs_compute = cost.flops() > 0 && !matches!(node.kind, LayerKind::Input);
        if needs_compute {
            return Err(EngineError::NoTactic {
                node: node.name.clone(),
            });
        }
        return Ok(None);
    }
    let mut rng = Pcg32::seed_from_u64(stream_seed(build_seed, node.id as u64));
    let n_candidates = candidates.len();
    let mut best: Option<Choice> = None;
    // One session per node: the device fingerprint is folded once and every
    // candidate query takes the cache's shard-local fast path.
    let session = opts.cache.map(|cache| cache.session(device));
    for tactic in candidates {
        let kernel = kernel_desc(&tactic, &node.kind, cost, shape);
        let true_us = match &session {
            Some(session) => session.time_us(&kernel),
            None => kernel_time_us(&kernel, device),
        };
        let measured_us = measure(true_us, &mut rng, opts.noise_sd, opts.samples);
        crate::telemetry::autotune_measurements_counter().add(u64::from(opts.samples.max(1)));
        if best.as_ref().is_none_or(|b| measured_us < b.measured_us) {
            best = Some(Choice {
                tactic,
                kernel,
                measured_us,
                candidates: n_candidates,
            });
        }
    }
    Ok(best)
}

/// Every kernel descriptor a default build of `graph` will time under
/// `policy` (INT8 candidates excluded, as for an uncalibrated build) — the
/// timing-cache query population. The default optimization pipeline
/// (dead-layer elimination, vertical fusion, horizontal merge) runs first
/// so the enumeration matches what [`crate::Builder::build`] actually hands
/// to the autotuner. `bench_build` replays it to compare cache hits against
/// analytic re-timing.
///
/// # Errors
///
/// Propagates shape/cost errors from the graph.
pub fn candidate_kernels(
    graph: &Graph,
    policy: PrecisionPolicy,
) -> Result<Vec<KernelDesc>, EngineError> {
    let (graph, _) = crate::passes::dead_layer::run(graph)?;
    let (graph, _) = crate::passes::vertical_fusion::run(&graph)?;
    let (graph, _) = crate::passes::horizontal_merge::run(&graph)?;
    let graph = &graph;
    let shapes = graph.infer_shapes()?;
    let costs = graph_costs(graph)?;
    let mut kernels = Vec::new();
    for node in graph.nodes() {
        let mut candidates = candidate_tactics(&node.kind, policy);
        candidates.retain(|t| t.precision != trtsim_gpu::kernel::Precision::Int8);
        for tactic in candidates {
            kernels.push(kernel_desc(
                &tactic,
                &node.kind,
                &costs[node.id],
                shapes[node.id],
            ));
        }
    }
    Ok(kernels)
}

/// One averaged noisy measurement.
fn measure(true_us: f64, rng: &mut Pcg32, noise_sd: f64, samples: u32) -> f64 {
    let samples = samples.max(1);
    let mut total = 0.0;
    for _ in 0..samples {
        total += true_us * (1.0 + noise_sd * rng.normal()).max(0.05);
    }
    total / f64::from(samples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use trtsim_gpu::device::DeviceSpec;
    use trtsim_ir::graph::{Graph, LayerKind, PoolKind};

    fn conv_net() -> Graph {
        let mut g = Graph::new("t", [16, 32, 32]);
        let c1 = g.add_layer(
            "c1",
            LayerKind::conv_seeded(96, 16, 3, 1, 1, 0),
            &[Graph::INPUT],
        );
        let p = g.add_layer(
            "p",
            LayerKind::Pool {
                kind: PoolKind::Max,
                kernel: 2,
                stride: 2,
                pad: 0,
            },
            &[c1],
        );
        let c2 = g.add_layer("c2", LayerKind::conv_seeded(80, 96, 3, 1, 1, 1), &[p]);
        g.mark_output(c2);
        g
    }

    fn run_select_with(seed: u64, opts: &AutotuneOptions<'_>) -> Vec<Option<Choice>> {
        let g = conv_net();
        select(
            &g,
            PrecisionPolicy::fp16(),
            &CalibrationTable::new(),
            &DeviceSpec::xavier_nx(),
            seed,
            opts,
        )
        .unwrap()
    }

    fn run_select(seed: u64, noise: f64) -> Vec<Option<Choice>> {
        run_select_with(
            seed,
            &AutotuneOptions {
                noise_sd: noise,
                samples: 1,
                ..AutotuneOptions::default()
            },
        )
    }

    #[test]
    fn compute_nodes_get_choices() {
        let choices = run_select(1, 0.06);
        assert!(choices[0].is_none()); // input
        assert!(choices[1].is_some());
        assert!(choices[2].is_some()); // pool
        assert!(choices[3].is_some());
        assert!(choices[1].as_ref().unwrap().candidates > 1);
    }

    #[test]
    fn same_seed_same_choices() {
        let a = run_select(7, 0.06);
        let b = run_select(7, 0.06);
        assert_eq!(a, b);
    }

    #[test]
    fn parallel_is_bit_identical_to_sequential() {
        for seed in 0..8 {
            let sequential = run_select(seed, 0.06);
            for threads in [2, 4, 8] {
                let parallel = run_select_with(
                    seed,
                    &AutotuneOptions {
                        noise_sd: 0.06,
                        samples: 1,
                        threads,
                        cache: None,
                    },
                );
                assert_eq!(sequential, parallel, "threads={threads} seed={seed}");
            }
        }
    }

    #[test]
    fn warm_cache_never_changes_selection() {
        let cache = TimingCache::new();
        let baseline = run_select(3, 0.06);
        let cold = run_select_with(
            3,
            &AutotuneOptions {
                noise_sd: 0.06,
                samples: 1,
                threads: 1,
                cache: Some(&cache),
            },
        );
        assert!(cache.stats().misses > 0);
        let warm = run_select_with(
            3,
            &AutotuneOptions {
                noise_sd: 0.06,
                samples: 1,
                threads: 1,
                cache: Some(&cache),
            },
        );
        assert!(cache.stats().hits > 0);
        assert_eq!(baseline, cold);
        assert_eq!(cold, warm);
    }

    #[test]
    fn different_seeds_eventually_pick_different_kernels() {
        // The paper's core observation: rebuilds select different tactics.
        let baseline = run_select(0, 0.06);
        let mut any_diff = false;
        for seed in 1..24 {
            let other = run_select(seed, 0.06);
            for (a, b) in baseline.iter().zip(&other) {
                if let (Some(a), Some(b)) = (a, b) {
                    if a.tactic != b.tactic {
                        any_diff = true;
                    }
                }
            }
            if any_diff {
                break;
            }
        }
        assert!(
            any_diff,
            "24 rebuilds never changed a tactic — noise too weak"
        );
    }

    #[test]
    fn zero_noise_is_deterministic_across_seeds() {
        let a = run_select(1, 0.0);
        let b = run_select(2, 0.0);
        for (x, y) in a.iter().zip(&b) {
            match (x, y) {
                (Some(x), Some(y)) => assert_eq!(x.tactic, y.tactic),
                (None, None) => {}
                _ => panic!("structural mismatch"),
            }
        }
    }

    #[test]
    fn noise_changes_with_more_samples_less() {
        // Averaging 16 samples should flip fewer decisions than 1 sample.
        let flips = |samples: u32| {
            let g = conv_net();
            let dev = DeviceSpec::xavier_nx();
            let mut base: Option<Vec<Option<Choice>>> = None;
            let mut flips = 0;
            for seed in 0..16 {
                let c = select(
                    &g,
                    PrecisionPolicy::fp16(),
                    &CalibrationTable::new(),
                    &dev,
                    seed,
                    &AutotuneOptions {
                        noise_sd: 0.06,
                        samples,
                        ..AutotuneOptions::default()
                    },
                )
                .unwrap();
                if let Some(b) = &base {
                    for (x, y) in b.iter().zip(&c) {
                        if let (Some(x), Some(y)) = (x, y) {
                            if x.tactic != y.tactic {
                                flips += 1;
                            }
                        }
                    }
                } else {
                    base = Some(c);
                }
            }
            flips
        };
        assert!(flips(16) <= flips(1), "{} > {}", flips(16), flips(1));
    }

    #[test]
    fn int8_requires_calibration_entry() {
        let g = conv_net();
        let choices = select(
            &g,
            PrecisionPolicy::all(),
            &CalibrationTable::new(), // empty: no INT8 anywhere
            &DeviceSpec::xavier_nx(),
            0,
            &AutotuneOptions::default(),
        )
        .unwrap();
        for c in choices.into_iter().flatten() {
            assert_ne!(c.tactic.precision, trtsim_gpu::kernel::Precision::Int8);
        }
    }
}
