//! Weight clustering and magnitude pruning (model-compression step).
//!
//! The paper lists weight clustering and pruning among the compression
//! techniques inference engines apply. Beyond shrinking models, both act as
//! denoisers on an over-fitted model (ideal weights plus high-frequency
//! jitter): pruning restores the exact zeros the jitter smeared — the
//! dominant effect, since trained convolutions are ~40 % zeros — and
//! clustering collapses the surviving values toward their level centroids.
//! This is the mechanism behind the paper's Finding 1 — optimized engines
//! *match or slightly beat* the un-optimized model's accuracy.

use trtsim_ir::graph::LayerKind;
use trtsim_ir::weights::Weights;
use trtsim_ir::Graph;
use trtsim_util::rng::Pcg32;
use trtsim_util::stats;

/// Clusters a weight vector to `2^bits` centroids with 1-D k-means
/// (quantile-initialized, fixed iteration count), returning the quantized
/// weights. Deterministic in its inputs.
pub fn cluster_weights(weights: &[f32], bits: u32, iterations: u32) -> Vec<f32> {
    let k = (1usize << bits).min(weights.len().max(1));
    if weights.is_empty() || k <= 1 {
        return weights.to_vec();
    }
    // Quantile initialization over the sorted values.
    let mut sorted: Vec<f32> = weights.to_vec();
    sorted.sort_by(f32::total_cmp);
    let mut centroids: Vec<f32> = (0..k)
        .map(|i| sorted[(i * (sorted.len() - 1)) / (k - 1).max(1)])
        .collect();
    centroids.dedup();

    let mut assignment = vec![0usize; weights.len()];
    for _ in 0..iterations {
        // Assign: centroids are sorted, binary search the nearest.
        for (i, &w) in weights.iter().enumerate() {
            assignment[i] = nearest(&centroids, w);
        }
        // Update.
        let mut sums = vec![0.0f64; centroids.len()];
        let mut counts = vec![0usize; centroids.len()];
        for (i, &w) in weights.iter().enumerate() {
            sums[assignment[i]] += f64::from(w);
            counts[assignment[i]] += 1;
        }
        for (c, (s, n)) in centroids.iter_mut().zip(sums.iter().zip(&counts)) {
            if *n > 0 {
                *c = (*s / *n as f64) as f32;
            }
        }
        centroids.sort_by(f32::total_cmp);
    }
    weights
        .iter()
        .map(|&w| centroids[nearest(&centroids, w)])
        .collect()
}

fn nearest(sorted_centroids: &[f32], w: f32) -> usize {
    match sorted_centroids.binary_search_by(|c| c.total_cmp(&w)) {
        Ok(i) => i,
        Err(i) => {
            if i == 0 {
                0
            } else if i >= sorted_centroids.len() {
                sorted_centroids.len() - 1
            } else if (w - sorted_centroids[i - 1]).abs() <= (sorted_centroids[i] - w).abs() {
                i - 1
            } else {
                i
            }
        }
    }
}

/// Zeroes weights with `|w| < threshold · std(w)` (magnitude pruning).
pub fn prune_weights(weights: &[f32], threshold: f32) -> Vec<f32> {
    let data: Vec<f64> = weights.iter().map(|&w| f64::from(w)).collect();
    let cutoff = (threshold as f64 * stats::std_dev(&data)) as f32;
    weights
        .iter()
        .map(|&w| if w.abs() < cutoff { 0.0 } else { w })
        .collect()
}

/// Applies clustering and/or pruning to every dense convolutional weight
/// blob in the graph; seeded (descriptor) weights pass through untouched, as
/// do fully-connected classifier heads (clustering targets the convolutional
/// filters that hold the bulk of the parameters — collapsing a small
/// classifier head onto a codebook would destroy its decision boundaries for
/// negligible size savings).
/// Returns the rewritten graph and the number of blobs compressed.
pub fn compress_graph(
    graph: &Graph,
    clustering: Option<u32>,
    pruning: Option<f32>,
) -> (Graph, usize) {
    let mut out = Graph::new(graph.name().to_string(), graph.input_shape());
    let mut compressed = 0;
    for node in graph.nodes().iter().skip(1) {
        let mut kind = node.kind.clone();
        let blob: Option<&mut Weights> = match &mut kind {
            LayerKind::Conv(c) => Some(&mut c.weights),
            _ => None,
        };
        if let Some(Weights::Dense(values)) = blob {
            let mut v = std::mem::take(values);
            if let Some(thr) = pruning {
                v = prune_weights(&v, thr);
            }
            if let Some(bits) = clustering {
                v = cluster_weights(&v, bits, 8);
            }
            *values = v;
            compressed += 1;
        }
        out.add_layer(node.name.clone(), kind, &node.inputs);
    }
    for &o in graph.outputs() {
        out.mark_output(o);
    }
    (out, compressed)
}

/// Synthesizes "over-fitted" weights for testing and model generation: ideal
/// weights plus high-frequency jitter of relative magnitude `jitter`.
pub fn overfit(weights: &[f32], jitter: f32, seed: u64) -> Vec<f32> {
    let mut rng = Pcg32::seed_from_u64(seed);
    let scale = {
        let data: Vec<f64> = weights.iter().map(|&w| f64::from(w)).collect();
        stats::std_dev(&data) as f32
    };
    weights
        .iter()
        .map(|&w| w + jitter * scale * rng.normal() as f32)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use trtsim_util::rng::Pcg32;

    fn sample_weights(n: usize, seed: u64) -> Vec<f32> {
        let mut rng = Pcg32::seed_from_u64(seed);
        (0..n).map(|_| rng.normal() as f32).collect()
    }

    #[test]
    fn clustering_reduces_unique_values() {
        let w = sample_weights(4096, 1);
        let clustered = cluster_weights(&w, 4, 8);
        let mut uniq: Vec<u32> = clustered.iter().map(|x| x.to_bits()).collect();
        uniq.sort_unstable();
        uniq.dedup();
        assert!(uniq.len() <= 16);
    }

    #[test]
    fn clustering_error_is_small() {
        let w = sample_weights(4096, 2);
        let clustered = cluster_weights(&w, 6, 8);
        let mse: f32 = w
            .iter()
            .zip(&clustered)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f32>()
            / w.len() as f32;
        assert!(mse < 0.01, "mse {mse}");
    }

    #[test]
    fn clustering_is_deterministic() {
        let w = sample_weights(512, 3);
        assert_eq!(cluster_weights(&w, 5, 8), cluster_weights(&w, 5, 8));
    }

    #[test]
    fn clustering_denoises_overfit_jitter() {
        // Ideal weights drawn from a few levels; jitter added; clustering
        // should recover values closer to the ideal than the jittered ones.
        let mut rng = Pcg32::seed_from_u64(4);
        let levels = [-0.5f32, -0.1, 0.0, 0.2, 0.7];
        let ideal: Vec<f32> = (0..2048).map(|_| *rng.choose(&levels).unwrap()).collect();
        let noisy = overfit(&ideal, 0.15, 9);
        let recovered = cluster_weights(&noisy, 3, 12);
        let err = |a: &[f32]| -> f32 {
            a.iter()
                .zip(&ideal)
                .map(|(x, y)| (x - y).abs())
                .sum::<f32>()
                / a.len() as f32
        };
        assert!(
            err(&recovered) < err(&noisy),
            "clustering should denoise: {} vs {}",
            err(&recovered),
            err(&noisy)
        );
    }

    #[test]
    fn pruning_zeroes_small_weights_only() {
        let w = vec![0.001, -0.002, 0.5, -0.8, 0.0005];
        let pruned = prune_weights(&w, 0.5);
        assert_eq!(pruned[0], 0.0);
        assert_eq!(pruned[1], 0.0);
        assert_eq!(pruned[2], 0.5);
        assert_eq!(pruned[3], -0.8);
    }

    #[test]
    fn empty_and_tiny_inputs() {
        assert!(cluster_weights(&[], 4, 8).is_empty());
        assert_eq!(cluster_weights(&[1.0], 4, 8), vec![1.0]);
        assert!(prune_weights(&[], 1.0).is_empty());
    }

    #[test]
    fn compress_graph_touches_only_dense() {
        use trtsim_ir::graph::{Graph, LayerKind};
        let mut g = Graph::new("t", [3, 8, 8]);
        let mut dense = LayerKind::conv_seeded(4, 3, 3, 1, 1, 0);
        if let LayerKind::Conv(c) = &mut dense {
            c.weights = Weights::Dense(c.weights.iter().collect());
        }
        let d = g.add_layer("dense", dense, &[Graph::INPUT]);
        let s = g.add_layer("seeded", LayerKind::conv_seeded(4, 4, 3, 1, 1, 1), &[d]);
        g.mark_output(s);
        let (out, n) = compress_graph(&g, Some(4), Some(0.1));
        assert_eq!(n, 1);
        assert!(out.validate().is_ok());
        // Seeded blob unchanged.
        match &out.node(2).kind {
            LayerKind::Conv(c) => assert!(matches!(c.weights, Weights::Seeded { .. })),
            _ => panic!(),
        }
    }
}
