//! Horizontal merging (Figure 2, step 3).
//!
//! Sibling convolutions that read the same tensor with identical geometry —
//! the 1×1 branches of an Inception module, the per-anchor heads of a
//! detector — merge into a single wider convolution, replacing several small
//! kernel launches (each under-filling the GPU) with one well-shaped launch.
//! Consumers of the original branches read channel [`trtsim_ir::graph::LayerKind::Slice`]
//! views of the merged output, which cost nothing at runtime.

use trtsim_ir::graph::{ConvParams, LayerKind};
use trtsim_ir::weights::Weights;
use trtsim_ir::{Graph, IrError, NodeId};
use trtsim_util::derive_seed;

use super::{PassReport, Rewriter};

/// Key under which sibling convolutions are mergeable.
#[derive(Debug, Clone, PartialEq)]
struct MergeKey {
    producer: NodeId,
    kernel: (usize, usize),
    stride: usize,
    pad: (usize, usize),
    in_channels: usize,
    activation: Option<trtsim_ir::Activation>,
}

/// Runs the pass.
///
/// # Errors
///
/// Returns an error if the source graph is invalid.
pub fn run(graph: &Graph) -> Result<(Graph, PassReport), IrError> {
    graph.validate()?;

    // Group mergeable siblings by producer+geometry, in id order.
    let mut groups: Vec<(MergeKey, Vec<NodeId>)> = Vec::new();
    for node in graph.nodes() {
        let LayerKind::Conv(c) = &node.kind else {
            continue;
        };
        if node.inputs.len() != 1 || c.groups != 1 {
            continue;
        }
        let key = MergeKey {
            producer: node.inputs[0],
            kernel: (c.kernel_h, c.kernel_w),
            stride: c.stride,
            pad: (c.pad_h, c.pad_w),
            in_channels: c.in_channels,
            activation: c.activation,
        };
        match groups.iter_mut().find(|(k, _)| *k == key) {
            Some((_, members)) => members.push(node.id),
            None => groups.push((key, vec![node.id])),
        }
    }
    groups.retain(|(_, members)| members.len() >= 2 && weights_compatible(graph, members));

    // member id → (group index, channel offset, channel count)
    let mut member_info: Vec<Option<(usize, usize, usize)>> = vec![None; graph.len()];
    for (gi, (_, members)) in groups.iter().enumerate() {
        let mut offset = 0;
        for &m in members {
            let LayerKind::Conv(c) = &graph.node(m).kind else {
                unreachable!()
            };
            member_info[m] = Some((gi, offset, c.out_channels));
            offset += c.out_channels;
        }
    }
    // New id of each group's merged conv, once emitted.
    let mut merged_id: Vec<Option<NodeId>> = vec![None; groups.len()];

    let mut rw = Rewriter::new(graph);
    let mut report = PassReport::default();
    for node in graph.nodes().iter().skip(1) {
        let Some((gi, offset, channels)) = member_info[node.id] else {
            rw.emit(node);
            continue;
        };
        // First member encountered emits the merged conv.
        if merged_id[gi].is_none() {
            let (key, members) = &groups[gi];
            let merged = build_merged(graph, members);
            let producer = rw.map[key.producer].expect("producer mapped");
            let name = format!("{}_hmerged", node.name);
            let id = rw
                .graph
                .add_layer(name, LayerKind::Conv(merged), &[producer]);
            merged_id[gi] = Some(id);
            report.merged += members.len() - 1;
        }
        // Every member becomes a slice view of the merged output.
        let slice = rw.graph.add_layer(
            format!("{}_slice", node.name),
            LayerKind::Slice {
                begin: offset,
                len: channels,
            },
            &[merged_id[gi].expect("merged conv emitted")],
        );
        rw.map[node.id] = Some(slice);
    }
    Ok((rw.finish(graph), report))
}

fn weights_compatible(graph: &Graph, members: &[NodeId]) -> bool {
    // All dense (exact concatenation) or all seeded (descriptor models).
    let dense = members.iter().all(|&m| {
        matches!(
            &graph.node(m).kind,
            LayerKind::Conv(c) if matches!(c.weights, Weights::Dense(_))
        )
    });
    let seeded = members.iter().all(|&m| {
        matches!(
            &graph.node(m).kind,
            LayerKind::Conv(c) if matches!(c.weights, Weights::Seeded { .. })
        )
    });
    dense || seeded
}

fn build_merged(graph: &Graph, members: &[NodeId]) -> ConvParams {
    let convs: Vec<&ConvParams> = members
        .iter()
        .map(|&m| match &graph.node(m).kind {
            LayerKind::Conv(c) => c,
            _ => unreachable!(),
        })
        .collect();
    let total_out: usize = convs.iter().map(|c| c.out_channels).sum();
    let first = convs[0];

    let weights = if convs.iter().all(|c| matches!(c.weights, Weights::Dense(_))) {
        let mut w = Vec::new();
        for c in &convs {
            w.extend(c.weights.iter());
        }
        Weights::Dense(w)
    } else {
        // Seeded descriptors: a fresh deterministic stream of the right size.
        let base = match first.weights {
            Weights::Seeded { seed, .. } => seed,
            _ => 0,
        };
        let len = convs.iter().map(|c| c.weights.len()).sum();
        Weights::Seeded {
            seed: derive_seed(base, "hmerge", members[0] as u64),
            len,
            scale: match first.weights {
                Weights::Seeded { scale, .. } => scale,
                _ => 0.05,
            },
        }
    };
    let mut bias = Vec::new();
    for c in &convs {
        if c.bias.is_empty() {
            bias.extend(std::iter::repeat_n(0.0, c.out_channels));
        } else {
            bias.extend(c.bias.iter());
        }
    }
    ConvParams {
        out_channels: total_out,
        in_channels: first.in_channels,
        kernel_h: first.kernel_h,
        kernel_w: first.kernel_w,
        stride: first.stride,
        pad_h: first.pad_h,
        pad_w: first.pad_w,
        groups: 1,
        weights,
        bias: Weights::Dense(bias),
        activation: first.activation,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trtsim_ir::graph::{Graph, LayerKind};
    use trtsim_ir::{ReferenceExecutor, Tensor};
    use trtsim_util::rng::Pcg32;

    fn dense_conv(out_c: usize, in_c: usize, k: usize, seed: u64) -> LayerKind {
        let mut kind = LayerKind::conv_seeded(out_c, in_c, k, 1, k / 2, seed);
        if let LayerKind::Conv(c) = &mut kind {
            c.weights = Weights::Dense(c.weights.iter().collect());
            let mut rng = Pcg32::seed_from_u64(seed ^ 77);
            c.bias = Weights::Dense((0..out_c).map(|_| rng.normal() as f32 * 0.1).collect());
        }
        kind
    }

    /// Inception-ish: three 1×1 branches off the same tensor, then concat.
    fn branchy() -> Graph {
        let mut g = Graph::new("t", [4, 8, 8]);
        let stem = g.add_layer("stem", dense_conv(8, 4, 3, 0), &[Graph::INPUT]);
        let b1 = g.add_layer("b1", dense_conv(4, 8, 1, 1), &[stem]);
        let b2 = g.add_layer("b2", dense_conv(6, 8, 1, 2), &[stem]);
        let b3 = g.add_layer("b3", dense_conv(2, 8, 1, 3), &[stem]);
        let cat = g.add_layer("cat", LayerKind::Concat, &[b1, b2, b3]);
        g.mark_output(cat);
        g
    }

    #[test]
    fn merges_sibling_branches() {
        let (out, report) = run(&branchy()).unwrap();
        assert_eq!(report.merged, 2); // 3 convs -> 1
        assert_eq!(out.conv_count(), 2); // stem + merged
        assert!(out.validate().is_ok());
        // Slices exist for each branch.
        let slices = out
            .nodes()
            .iter()
            .filter(|n| matches!(n.kind, LayerKind::Slice { .. }))
            .count();
        assert_eq!(slices, 3);
    }

    #[test]
    fn merge_preserves_semantics_exactly() {
        let g = branchy();
        let (opt, _) = run(&g).unwrap();
        let mut rng = Pcg32::seed_from_u64(5);
        let input = Tensor::from_fn([4, 8, 8], |_, _, _| rng.normal() as f32);
        let a = ReferenceExecutor::new(&g).unwrap().run(&input).unwrap();
        let b = ReferenceExecutor::new(&opt).unwrap().run(&input).unwrap();
        assert_eq!(a, b, "merged+sliced must be bit-identical");
    }

    #[test]
    fn different_geometry_does_not_merge() {
        let mut g = Graph::new("t", [4, 8, 8]);
        let b1 = g.add_layer("b1", dense_conv(4, 4, 1, 1), &[Graph::INPUT]);
        let b2 = g.add_layer("b2", dense_conv(4, 4, 3, 2), &[Graph::INPUT]); // 3x3
        let cat = g.add_layer("cat", LayerKind::Concat, &[b1, b2]);
        g.mark_output(cat);
        let (_, report) = run(&g).unwrap();
        assert_eq!(report.merged, 0);
    }

    #[test]
    fn single_branch_untouched() {
        let mut g = Graph::new("t", [4, 8, 8]);
        let c = g.add_layer("c", dense_conv(4, 4, 1, 1), &[Graph::INPUT]);
        g.mark_output(c);
        let (out, report) = run(&g).unwrap();
        assert_eq!(report.merged, 0);
        assert_eq!(out.len(), g.len());
    }

    #[test]
    fn merged_output_can_be_graph_output() {
        let mut g = Graph::new("t", [4, 8, 8]);
        let b1 = g.add_layer("b1", dense_conv(4, 4, 1, 1), &[Graph::INPUT]);
        let b2 = g.add_layer("b2", dense_conv(4, 4, 1, 2), &[Graph::INPUT]);
        g.mark_output(b1);
        g.mark_output(b2);
        let (opt, report) = run(&g).unwrap();
        assert_eq!(report.merged, 1);
        let mut rng = Pcg32::seed_from_u64(6);
        let input = Tensor::from_fn([4, 8, 8], |_, _, _| rng.normal() as f32);
        let a = ReferenceExecutor::new(&g).unwrap().run(&input).unwrap();
        let b = ReferenceExecutor::new(&opt).unwrap().run(&input).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn seeded_branches_merge_structurally() {
        let mut g = Graph::new("t", [4, 8, 8]);
        let b1 = g.add_layer(
            "b1",
            LayerKind::conv_seeded(4, 4, 1, 1, 0, 1),
            &[Graph::INPUT],
        );
        let b2 = g.add_layer(
            "b2",
            LayerKind::conv_seeded(4, 4, 1, 1, 0, 2),
            &[Graph::INPUT],
        );
        let cat = g.add_layer("cat", LayerKind::Concat, &[b1, b2]);
        g.mark_output(cat);
        let (out, report) = run(&g).unwrap();
        assert_eq!(report.merged, 1);
        assert!(out.validate().is_ok());
        // Parameter count is conserved.
        assert_eq!(out.param_count(), g.param_count());
    }
}
