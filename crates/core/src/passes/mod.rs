//! Graph-rewriting optimization passes (paper Figure 2, steps 1–3).
//!
//! Each pass consumes an [`trtsim_ir::Graph`] and produces a rewritten graph
//! plus a [`PassReport`]. Passes preserve observable semantics: the rewritten
//! graph computes the same outputs (bit-for-bit for dead-layer removal and
//! horizontal merging; to FP32 rounding for vertical fusion, which refactors
//! arithmetic).

pub mod dead_layer;
pub mod horizontal_merge;
pub mod vertical_fusion;

/// What a pass did, for build reporting and tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PassReport {
    /// Nodes deleted (dead-layer removal).
    pub removed: usize,
    /// Layers folded into a producer (vertical fusion).
    pub fused: usize,
    /// Sibling convolutions eliminated by merging (horizontal merge).
    pub merged: usize,
}

impl PassReport {
    /// Accumulates another report.
    pub fn merge(&mut self, other: &PassReport) {
        self.removed += other.removed;
        self.fused += other.fused;
        self.merged += other.merged;
    }
}

/// Helper shared by the passes: rewrites a graph by visiting original nodes
/// in topological order. `map[old]` is the new id that consumers of `old`
/// should reference (a pass sets this to a producer's id to splice a node
/// out, or `None` to drop an unreachable node).
#[derive(Debug)]
pub struct Rewriter {
    /// old node id → new node id carrying its value.
    pub map: Vec<Option<trtsim_ir::NodeId>>,
    /// The graph being built.
    pub graph: trtsim_ir::Graph,
}

impl Rewriter {
    /// Starts rewriting `source`, mapping the input node to itself.
    pub fn new(source: &trtsim_ir::Graph) -> Self {
        let mut map = vec![None; source.len()];
        map[trtsim_ir::Graph::INPUT] = Some(trtsim_ir::Graph::INPUT);
        Self {
            map,
            graph: trtsim_ir::Graph::new(source.name().to_string(), source.input_shape()),
        }
    }

    /// Emits a copy of `node` with remapped inputs; records the mapping.
    ///
    /// # Panics
    ///
    /// Panics if a producer of `node` was dropped without a replacement.
    pub fn emit(&mut self, node: &trtsim_ir::Node) -> trtsim_ir::NodeId {
        let inputs: Vec<trtsim_ir::NodeId> = node
            .inputs
            .iter()
            .map(|&i| self.map[i].expect("producer must be mapped"))
            .collect();
        let id = self
            .graph
            .add_layer(node.name.clone(), node.kind.clone(), &inputs);
        self.map[node.id] = Some(id);
        id
    }

    /// Finalizes: marks the remapped outputs of `source` on the new graph.
    ///
    /// # Panics
    ///
    /// Panics if an output of `source` was dropped.
    pub fn finish(mut self, source: &trtsim_ir::Graph) -> trtsim_ir::Graph {
        for &out in source.outputs() {
            let mapped = self.map[out].expect("output must survive rewriting");
            self.graph.mark_output(mapped);
        }
        self.graph
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trtsim_ir::graph::{Graph, LayerKind};

    #[test]
    fn rewriter_identity_round_trip() {
        let mut g = Graph::new("t", [1, 4, 4]);
        let a = g.add_layer("a", LayerKind::Identity, &[Graph::INPUT]);
        let b = g.add_layer("b", LayerKind::Softmax, &[a]);
        g.mark_output(b);

        let mut rw = Rewriter::new(&g);
        for node in g.nodes().iter().skip(1) {
            rw.emit(node);
        }
        let out = rw.finish(&g);
        assert_eq!(out.len(), g.len());
        assert_eq!(out.outputs().len(), 1);
        assert!(out.validate().is_ok());
    }

    #[test]
    fn report_merges() {
        let mut a = PassReport {
            removed: 1,
            fused: 2,
            merged: 3,
        };
        a.merge(&a.clone());
        assert_eq!(
            a,
            PassReport {
                removed: 2,
                fused: 4,
                merged: 6
            }
        );
    }
}
