//! Dead-layer removal (Figure 2, step 1).
//!
//! Two classes of dead weight are removed: layers that are no-ops at
//! inference time (dropout, identity — training-only artifacts that frameworks
//! leave in deploy graphs), and layers whose outputs cannot reach any marked
//! network output (auxiliary training heads, e.g. GoogLeNet's side
//! classifiers).

use trtsim_ir::{Graph, IrError};

use super::{PassReport, Rewriter};

/// Runs the pass.
///
/// # Errors
///
/// Returns an error if the source graph is invalid.
pub fn run(graph: &Graph) -> Result<(Graph, PassReport), IrError> {
    graph.validate()?;

    // Reverse reachability from the outputs.
    let mut reachable = vec![false; graph.len()];
    let mut stack: Vec<usize> = graph.outputs().to_vec();
    while let Some(id) = stack.pop() {
        if reachable[id] {
            continue;
        }
        reachable[id] = true;
        stack.extend(graph.node(id).inputs.iter().copied());
    }

    let mut rw = Rewriter::new(graph);
    let mut report = PassReport::default();
    for node in graph.nodes().iter().skip(1) {
        if !reachable[node.id] {
            report.removed += 1;
            continue;
        }
        if node.kind.is_inference_noop() {
            // Splice out: consumers read the producer directly.
            rw.map[node.id] = rw.map[node.inputs[0]];
            report.removed += 1;
            continue;
        }
        rw.emit(node);
    }
    Ok((rw.finish(graph), report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use trtsim_ir::graph::{Graph, LayerKind};
    use trtsim_ir::{ReferenceExecutor, Tensor};
    use trtsim_util::rng::Pcg32;

    fn graph_with_dead_weight() -> Graph {
        let mut g = Graph::new("t", [3, 8, 8]);
        let c1 = g.add_layer(
            "c1",
            LayerKind::conv_seeded(4, 3, 3, 1, 1, 0),
            &[Graph::INPUT],
        );
        let drop = g.add_layer("drop", LayerKind::Dropout { rate: 0.5 }, &[c1]);
        let c2 = g.add_layer("c2", LayerKind::conv_seeded(4, 4, 3, 1, 1, 1), &[drop]);
        // Auxiliary head that reaches no output.
        let aux = g.add_layer("aux", LayerKind::conv_seeded(2, 4, 1, 1, 0, 2), &[c1]);
        let _aux_sm = g.add_layer("aux_sm", LayerKind::Softmax, &[aux]);
        g.mark_output(c2);
        g
    }

    #[test]
    fn removes_noops_and_unreachable() {
        let g = graph_with_dead_weight();
        let (out, report) = run(&g).unwrap();
        assert_eq!(report.removed, 3); // dropout + aux + aux_sm
        assert_eq!(out.len(), 3); // input + c1 + c2
        assert!(out.validate().is_ok());
    }

    #[test]
    fn preserves_semantics() {
        let g = graph_with_dead_weight();
        let (opt, _) = run(&g).unwrap();
        let mut rng = Pcg32::seed_from_u64(3);
        let input = Tensor::from_fn([3, 8, 8], |_, _, _| rng.normal() as f32);
        let a = ReferenceExecutor::new(&g).unwrap().run(&input).unwrap();
        let b = ReferenceExecutor::new(&opt).unwrap().run(&input).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn clean_graph_is_untouched() {
        let mut g = Graph::new("t", [3, 8, 8]);
        let c = g.add_layer(
            "c",
            LayerKind::conv_seeded(4, 3, 3, 1, 1, 0),
            &[Graph::INPUT],
        );
        g.mark_output(c);
        let (out, report) = run(&g).unwrap();
        assert_eq!(report.removed, 0);
        assert_eq!(out.len(), g.len());
    }

    #[test]
    fn chained_noops_all_collapse() {
        let mut g = Graph::new("t", [1, 4, 4]);
        let a = g.add_layer("a", LayerKind::Identity, &[Graph::INPUT]);
        let b = g.add_layer("b", LayerKind::Dropout { rate: 0.2 }, &[a]);
        let c = g.add_layer("c", LayerKind::Identity, &[b]);
        let s = g.add_layer("s", LayerKind::Softmax, &[c]);
        g.mark_output(s);
        let (out, report) = run(&g).unwrap();
        assert_eq!(report.removed, 3);
        assert_eq!(out.len(), 2);
        // Softmax now reads the input directly.
        assert_eq!(out.node(1).inputs, vec![Graph::INPUT]);
    }

    #[test]
    fn noop_as_output_survives_via_producer() {
        let mut g = Graph::new("t", [1, 4, 4]);
        let s = g.add_layer("s", LayerKind::Softmax, &[Graph::INPUT]);
        let id = g.add_layer("id", LayerKind::Identity, &[s]);
        g.mark_output(id);
        let (out, _) = run(&g).unwrap();
        // The identity output remaps to the softmax node.
        assert_eq!(out.outputs(), &[1]);
        assert!(out.validate().is_ok());
    }
}
