//! Vertical fusion (Figure 2, step 2).
//!
//! Chains of `Conv → BatchNorm/Scale → Activation` collapse into a single
//! convolution: normalization folds into the weights (a per-output-channel
//! affine transform) and the activation becomes the convolution's epilogue.
//! One kernel launch replaces three, and two activation round-trips through
//! DRAM disappear — the single largest contributor to TensorRT's speedup on
//! layer-heavy networks.
//!
//! Folding rewrites arithmetic, so outputs match the unfused graph to FP32
//! rounding (exactly, in practice, for the affine folds used here).

use trtsim_ir::graph::{ConvParams, LayerKind};
use trtsim_ir::weights::{Weights, MATERIALIZE_LIMIT};
use trtsim_ir::{Graph, IrError, NodeId};

use super::{PassReport, Rewriter};

/// A pending transformation of one convolution.
#[derive(Debug, Clone)]
enum FoldOp {
    /// Per-channel `w·a + b` (from BatchNorm or Scale).
    Affine { alpha: Vec<f32>, beta: Vec<f32> },
    /// Epilogue activation.
    Act(trtsim_ir::Activation),
}

/// Runs the pass.
///
/// # Errors
///
/// Returns an error if the source graph is invalid.
pub fn run(graph: &Graph) -> Result<(Graph, PassReport), IrError> {
    graph.validate()?;

    // For single-consumer checks.
    let mut consumer_count = vec![0usize; graph.len()];
    for node in graph.nodes() {
        for &i in &node.inputs {
            consumer_count[i] += 1;
        }
    }
    for &o in graph.outputs() {
        consumer_count[o] += 1; // an output is observable: never fusable past
    }

    // Decide folds. `chain_root[id]` = the conv a folded node's value now
    // lives in; folds accumulate per conv in order.
    let mut chain_root: Vec<Option<NodeId>> = vec![None; graph.len()];
    let mut folds: Vec<Vec<FoldOp>> = vec![Vec::new(); graph.len()];
    let mut has_act: Vec<bool> = graph
        .nodes()
        .iter()
        .map(|n| matches!(&n.kind, LayerKind::Conv(c) if c.activation.is_some()))
        .collect();

    for node in graph.nodes() {
        let Some(op) = fold_op(&node.kind) else {
            continue;
        };
        if node.inputs.len() != 1 {
            continue;
        }
        let producer = node.inputs[0];
        // The producer's value must not be observed elsewhere.
        if consumer_count[producer] != 1 {
            continue;
        }
        let root = chain_root[producer].unwrap_or(producer);
        let LayerKind::Conv(conv) = &graph.node(root).kind else {
            continue;
        };
        // Affine folds must precede the activation; a second activation
        // cannot fuse.
        let foldable = match &op {
            FoldOp::Affine { .. } => !has_act[root] && conv.weights.len() <= MATERIALIZE_LIMIT,
            FoldOp::Act(_) => !has_act[root],
        };
        if !foldable {
            continue;
        }
        if matches!(op, FoldOp::Act(_)) {
            has_act[root] = true;
        }
        folds[root].push(op);
        chain_root[node.id] = Some(root);
    }

    // Rewrite.
    let mut rw = Rewriter::new(graph);
    let mut report = PassReport::default();
    for node in graph.nodes().iter().skip(1) {
        if let Some(root) = chain_root[node.id] {
            // Folded away: consumers read the (rewritten) conv.
            rw.map[node.id] = rw.map[root];
            report.fused += 1;
            continue;
        }
        if let LayerKind::Conv(conv) = &node.kind {
            if !folds[node.id].is_empty() {
                let fused = apply_folds(conv, &folds[node.id]);
                let inputs: Vec<NodeId> = node
                    .inputs
                    .iter()
                    .map(|&i| rw.map[i].expect("producer mapped"))
                    .collect();
                let id = rw
                    .graph
                    .add_layer(node.name.clone(), LayerKind::Conv(fused), &inputs);
                rw.map[node.id] = Some(id);
                continue;
            }
        }
        rw.emit(node);
    }
    Ok((rw.finish(graph), report))
}

fn fold_op(kind: &LayerKind) -> Option<FoldOp> {
    match kind {
        LayerKind::BatchNorm {
            mean,
            var,
            gamma,
            beta,
            eps,
        } => {
            let alpha: Vec<f32> = var
                .iter()
                .zip(gamma)
                .map(|(v, g)| g / (v + eps).sqrt())
                .collect();
            let beta: Vec<f32> = mean
                .iter()
                .zip(&alpha)
                .zip(beta)
                .map(|((m, a), b)| b - m * a)
                .collect();
            Some(FoldOp::Affine { alpha, beta })
        }
        LayerKind::Scale { scale, bias } => Some(FoldOp::Affine {
            alpha: scale.clone(),
            beta: if bias.is_empty() {
                vec![0.0; scale.len()]
            } else {
                bias.clone()
            },
        }),
        LayerKind::Act(a) => Some(FoldOp::Act(*a)),
        _ => None,
    }
}

fn apply_folds(conv: &ConvParams, ops: &[FoldOp]) -> ConvParams {
    let mut out = conv.clone();
    for op in ops {
        match op {
            FoldOp::Affine { alpha, beta } => {
                let per_filter = (out.in_channels / out.groups) * out.kernel_h * out.kernel_w;
                let w = out.weights.materialize();
                let mut new_w = Vec::with_capacity(w.len());
                for oc in 0..out.out_channels {
                    let a = alpha[oc];
                    new_w.extend(
                        w[oc * per_filter..(oc + 1) * per_filter]
                            .iter()
                            .map(|x| x * a),
                    );
                }
                out.weights = Weights::Dense(new_w);
                let old_bias: Vec<f32> = out.bias.iter().collect();
                let new_bias: Vec<f32> = (0..out.out_channels)
                    .map(|oc| old_bias.get(oc).copied().unwrap_or(0.0) * alpha[oc] + beta[oc])
                    .collect();
                out.bias = Weights::Dense(new_bias);
            }
            FoldOp::Act(a) => out.activation = Some(*a),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use trtsim_ir::graph::{Activation, Graph, LayerKind};
    use trtsim_ir::{ReferenceExecutor, Tensor};
    use trtsim_util::rng::Pcg32;

    fn conv_no_act(out_c: usize, in_c: usize, seed: u64) -> LayerKind {
        let mut k = LayerKind::conv_seeded(out_c, in_c, 3, 1, 1, seed);
        if let LayerKind::Conv(c) = &mut k {
            c.activation = None;
            // Dense weights so folding is exact.
            c.weights = Weights::Dense(c.weights.iter().collect());
            let mut rng = Pcg32::seed_from_u64(seed ^ 0xb1a5);
            c.bias = Weights::Dense((0..out_c).map(|_| rng.normal() as f32 * 0.1).collect());
        }
        k
    }

    fn bn(channels: usize, seed: u64) -> LayerKind {
        let mut rng = Pcg32::seed_from_u64(seed);
        LayerKind::BatchNorm {
            mean: (0..channels).map(|_| rng.normal() as f32 * 0.2).collect(),
            var: (0..channels).map(|_| 0.5 + rng.next_f32()).collect(),
            gamma: (0..channels).map(|_| 0.8 + 0.4 * rng.next_f32()).collect(),
            beta: (0..channels).map(|_| rng.normal() as f32 * 0.1).collect(),
            eps: 1e-5,
        }
    }

    fn conv_bn_relu() -> Graph {
        let mut g = Graph::new("t", [3, 8, 8]);
        let c = g.add_layer("c", conv_no_act(4, 3, 0), &[Graph::INPUT]);
        let b = g.add_layer("bn", bn(4, 1), &[c]);
        let r = g.add_layer("relu", LayerKind::Act(Activation::Relu), &[b]);
        g.mark_output(r);
        g
    }

    #[test]
    fn conv_bn_relu_becomes_one_node() {
        let (out, report) = run(&conv_bn_relu()).unwrap();
        assert_eq!(report.fused, 2);
        assert_eq!(out.len(), 2); // input + fused conv
        let LayerKind::Conv(c) = &out.node(1).kind else {
            panic!("expected conv");
        };
        assert_eq!(c.activation, Some(Activation::Relu));
    }

    #[test]
    fn fusion_preserves_semantics_to_rounding() {
        let g = conv_bn_relu();
        let (opt, _) = run(&g).unwrap();
        let mut rng = Pcg32::seed_from_u64(9);
        let input = Tensor::from_fn([3, 8, 8], |_, _, _| rng.normal() as f32);
        let a = ReferenceExecutor::new(&g).unwrap().run(&input).unwrap();
        let b = ReferenceExecutor::new(&opt).unwrap().run(&input).unwrap();
        for (x, y) in a[0].as_slice().iter().zip(b[0].as_slice()) {
            assert!((x - y).abs() < 1e-4, "{x} vs {y}");
        }
    }

    #[test]
    fn shared_intermediate_blocks_fusion() {
        // The BN output is also consumed by a second head: folding it into
        // the conv would change what the head sees.
        let mut g = Graph::new("t", [3, 8, 8]);
        let c = g.add_layer("c", conv_no_act(4, 3, 0), &[Graph::INPUT]);
        let b = g.add_layer("bn", bn(4, 1), &[c]);
        let r = g.add_layer("relu", LayerKind::Act(Activation::Relu), &[c]); // reads conv too
        g.mark_output(b);
        g.mark_output(r);
        let (out, report) = run(&g).unwrap();
        assert_eq!(report.fused, 0);
        assert_eq!(out.len(), g.len());
    }

    #[test]
    fn activation_after_activation_does_not_fuse() {
        let mut g = Graph::new("t", [3, 8, 8]);
        let c = g.add_layer(
            "c",
            LayerKind::conv_seeded(4, 3, 3, 1, 1, 0),
            &[Graph::INPUT],
        ); // has relu
        let s = g.add_layer("sig", LayerKind::Act(Activation::Sigmoid), &[c]);
        g.mark_output(s);
        let (out, report) = run(&g).unwrap();
        assert_eq!(report.fused, 0);
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn scale_folds_like_bn() {
        let mut g = Graph::new("t", [3, 8, 8]);
        let c = g.add_layer("c", conv_no_act(4, 3, 0), &[Graph::INPUT]);
        let s = g.add_layer(
            "scale",
            LayerKind::Scale {
                scale: vec![2.0, 0.5, 1.0, -1.0],
                bias: vec![0.1; 4],
            },
            &[c],
        );
        g.mark_output(s);
        let (opt, report) = run(&g).unwrap();
        assert_eq!(report.fused, 1);

        let mut rng = Pcg32::seed_from_u64(4);
        let input = Tensor::from_fn([3, 8, 8], |_, _, _| rng.normal() as f32);
        let a = ReferenceExecutor::new(&g).unwrap().run(&input).unwrap();
        let b = ReferenceExecutor::new(&opt).unwrap().run(&input).unwrap();
        for (x, y) in a[0].as_slice().iter().zip(b[0].as_slice()) {
            assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn bn_after_activation_does_not_fold() {
        // conv(relu) → bn: the affine cannot move inside the relu.
        let mut g = Graph::new("t", [3, 8, 8]);
        let c = g.add_layer(
            "c",
            LayerKind::conv_seeded(4, 3, 3, 1, 1, 0),
            &[Graph::INPUT],
        );
        let b = g.add_layer("bn", bn(4, 2), &[c]);
        g.mark_output(b);
        let (out, report) = run(&g).unwrap();
        assert_eq!(report.fused, 0);
        assert_eq!(out.len(), 3);
    }
}
