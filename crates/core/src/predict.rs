//! Online-learned latency prediction for scheduling decisions.
//!
//! The paper's central observation is that TensorRT latency is *structurally*
//! predictable — plan step mix and device parameters explain most of it — but
//! drifts with runtime conditions: batch size, queue depth, stream
//! concurrency, and build-to-build tactic nondeterminism (Table XIII). The
//! analytic BSP model in `trtsim-perfmodel` captures the structure; this
//! module learns the drift, online, from the telemetry the serving path
//! already produces.
//!
//! ```text
//!   EngineFeatures (per engine × device, measured once at server start)
//!        │            QueueSignals (queue depth, stream busy %, per request)
//!        ▼                 │
//!   LatencyModel ◀─────────┴── observe(features, batch, signals, latency)
//!        │
//!        └── predict(features, batch, signals) -> PredictedLatency {p50, p99}
//! ```
//!
//! * **Fixed feature vector** — [`EngineFeatures`] condenses the plan (kernel
//!   busy time, DRAM time, launch count) and the device fingerprint into a
//!   few microsecond-scaled terms; [`QueueSignals`] adds the runtime state.
//!   Every feature is non-negative and non-decreasing in batch size and queue
//!   depth.
//! * **Projected normalized-LMS trainer** — incremental least squares with
//!   the update `w += µ·err·x / (ε + ‖x‖²)`, weights projected onto `w ≥ 0`
//!   after every step. Non-negative weights over monotone features make the
//!   prediction itself monotone in batch and queue depth *by construction*,
//!   so the scheduler can binary-search batch sizes against an SLO.
//! * **Distribution, not a point** — a log-bucket histogram of prequential
//!   residual ratios (`observed / predicted`) turns the point estimate into
//!   calibrated p50/p99 multipliers: [`PredictedLatency::p99_us`] is what the
//!   SLO-aware batcher compares against a deadline.
//! * **Cold-start gate** — [`LatencyModel::predict`] returns `None` until
//!   [`LatencyModel::min_obs`] observations have been absorbed; callers
//!   (the batcher, the fleet router) fall back to their static heuristics.
//! * **Deterministic** — no wall clock, no global RNG: the weights are a pure
//!   function of the seed and the observation stream, so the same seed and
//!   stream reproduce bit-identical weights.

use std::sync::Mutex;

use trtsim_gpu::device::DeviceSpec;
use trtsim_util::Pcg32;

use crate::engine::Engine;
use crate::runtime::ExecutionContext;

/// Number of features in the fixed vector (see [`EngineFeatures::vector`]).
pub const FEATURE_DIM: usize = 10;

/// NLMS step size.
const STEP: f64 = 0.5;
/// Observation count over which the NLMS step decays to half its initial
/// value (harmonic annealing: `STEP / (1 + n / STEP_ANNEAL_OBS)`).
const STEP_ANNEAL_OBS: f64 = 256.0;
/// NLMS normalization floor, keeps the update finite for tiny feature norms.
const NORM_EPS: f64 = 1e-9;
/// Residual-ratio histogram: `RATIO_BUCKETS` log buckets with growth factor
/// `RATIO_GROWTH`, centred on ratio 1.0 at index `RATIO_CENTER`. Covers
/// observed/predicted ratios from ~0.044 to ~22.6 at ~5 % resolution.
const RATIO_BUCKETS: usize = 128;
const RATIO_CENTER: usize = 64;
const RATIO_GROWTH: f64 = 1.05;
/// When the residual histogram's total mass reaches this, every bucket is
/// halved (integer division). The exponential decay keeps the p50/p99
/// calibration multipliers tracking the *current* serving regime — an
/// all-time histogram would let a congested warm-up phase inflate the
/// quantiles long after the weights had adapted.
const RATIO_DECAY_AT: u64 = 256;

/// Static per-(engine, device) feature inputs, measured once from the plan's
/// analytic profile — the "plan step mix" and "device fingerprint" terms of
/// the feature vector. Cheap to construct (no timeline is touched) and
/// immutable, so servers share one per replica.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineFeatures {
    /// Engine (model) name, for labelling.
    pub model: String,
    /// Single-frame GPU busy time (kernel roofline sum), µs.
    pub compute_us: f64,
    /// Single-frame DRAM service time (post-cache traffic over effective
    /// bandwidth), µs.
    pub mem_us: f64,
    /// Per-inference launch overhead: launch count × device launch cost, µs.
    pub launch_us: f64,
    /// Host glue per batched enqueue, µs.
    pub glue_us: f64,
    /// Analytic single-frame service estimate (busy + launches + glue), µs —
    /// the scale factor for the queue-state features.
    pub service_us: f64,
    /// The device's timing fingerprint ([`DeviceSpec::timing_fingerprint`]):
    /// distinct devices get a distinct (constant) identity feature, so one
    /// shared model can tell a pinned NX from a max-clock AGX.
    pub fingerprint: u64,
}

impl EngineFeatures {
    /// Measures the static features of `engine` on `device` with the given
    /// per-batch host glue. Uses the same analytic profile as the fleet
    /// router's service-cost estimate; no simulated time is consumed.
    pub fn measure(engine: &Engine, device: &DeviceSpec, host_glue_us: f64) -> Self {
        let ctx = ExecutionContext::new(engine, device.clone());
        let compute_us = ctx.gpu_busy_us();
        let mem_us = ctx.dram_bytes_per_inference() as f64 / device.effective_dram_bytes_per_us();
        let launch_us = engine.launch_count() as f64 * device.kernel_launch_us;
        let glue_us = host_glue_us.max(0.0);
        Self {
            model: engine.name().to_string(),
            compute_us,
            mem_us,
            launch_us,
            glue_us,
            service_us: compute_us + launch_us + glue_us,
            fingerprint: device.timing_fingerprint(),
        }
    }

    /// The fixed feature vector for a request of size `batch` seen under
    /// queue state `signals`. Every component is non-negative and
    /// non-decreasing in both `batch` and `signals.queue_depth`, which is
    /// what makes non-negative-weight predictions monotone.
    pub fn vector(&self, batch: usize, signals: &QueueSignals) -> [f64; FEATURE_DIM] {
        let b = batch.max(1) as f64;
        let q = signals.queue_depth.max(0.0);
        let busy = signals.busy_frac.max(0.0);
        // A constant per-device identity term in (0, 1], scaled to µs via the
        // service estimate so its weight shares the others' magnitude.
        let identity = (self.fingerprint % 251 + 1) as f64 / 251.0;
        [
            1.0,
            b,
            b * self.compute_us,
            b * self.mem_us,
            self.launch_us + self.glue_us,
            q * self.service_us,
            busy * self.service_us,
            q,
            identity * self.service_us,
            signals.committed_us.max(0.0),
        ]
    }
}

/// Instantaneous queue state at prediction (or observation) time.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct QueueSignals {
    /// Requests waiting in the submission queue ahead of this one, divided
    /// by the server's worker parallelism — i.e. queue depth in units of
    /// drain capacity. The normalization matters because the model is
    /// shared across replicas with different worker counts: four frames
    /// ahead of a lone worker are four service times of wait, while four
    /// frames fanned over four workers are one.
    pub queue_depth: f64,
    /// Fraction of worker streams with a batch in service, in `[0, 1]`.
    pub busy_frac: f64,
    /// Committed-work horizon, µs: how far past this request's arrival the
    /// device's earliest-free stream is already booked. Queue depth is a
    /// *proxy* for waiting time; this is the waiting time a scheduler can
    /// read directly off its own dispatch ledger (TensorRT knows when each
    /// enqueued batch will retire), and it is what turns the model's
    /// deadline calls from ±several-ms guesses into sharp ones.
    pub committed_us: f64,
}

impl QueueSignals {
    /// Signals from a queue depth and a busy fraction, with no committed
    /// backlog.
    pub fn new(queue_depth: f64, busy_frac: f64) -> Self {
        Self {
            queue_depth,
            busy_frac,
            committed_us: 0.0,
        }
    }

    /// Sets the committed-work horizon, µs (clamped non-negative).
    pub fn with_committed_us(mut self, us: f64) -> Self {
        self.committed_us = us.max(0.0);
        self
    }
}

/// A calibrated latency prediction: the point estimate widened by the
/// model's own observed residual quantiles.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PredictedLatency {
    /// Median predicted end-to-end latency, µs.
    pub p50_us: f64,
    /// 99th-percentile predicted end-to-end latency, µs — what an SLO-aware
    /// scheduler compares against a deadline.
    pub p99_us: f64,
}

#[derive(Debug)]
struct ModelInner {
    weights: [f64; FEATURE_DIM],
    observations: u64,
    /// Log-bucket histogram of prequential `observed / predicted` ratios.
    ratio_counts: [u64; RATIO_BUCKETS],
    /// Prequential absolute-percentage-error accumulator, over warm
    /// predictions only (the ones schedulers actually acted on).
    mape_sum: f64,
    mape_n: u64,
}

impl ModelInner {
    fn raw_predict(&self, x: &[f64; FEATURE_DIM]) -> f64 {
        self.weights.iter().zip(x).map(|(w, v)| w * v).sum()
    }

    /// The ratio at quantile `q` of the residual histogram (bucket midpoint
    /// on the log grid), or 1.0 before any residual landed.
    fn ratio_quantile(&self, q: f64) -> f64 {
        let total: u64 = self.ratio_counts.iter().sum();
        if total == 0 {
            return 1.0;
        }
        let target = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, &n) in self.ratio_counts.iter().enumerate() {
            seen += n;
            if seen >= target {
                return RATIO_GROWTH.powi(i as i32 - RATIO_CENTER as i32);
            }
        }
        RATIO_GROWTH.powi((RATIO_BUCKETS - 1 - RATIO_CENTER) as i32)
    }
}

/// The online-trained latency model. Interior-mutable and `Sync`: one
/// `Arc<LatencyModel>` is shared by submit paths, worker threads, and the
/// fleet router. See the [module docs](self) for the algorithm.
///
/// # Examples
///
/// ```
/// use trtsim_core::predict::{LatencyModel, QueueSignals};
/// let model = LatencyModel::new(7).with_min_obs(2);
/// assert!(!model.is_warm());
/// let signals = QueueSignals::new(0.0, 0.0);
/// # let _ = signals;
/// ```
#[derive(Debug)]
pub struct LatencyModel {
    inner: Mutex<ModelInner>,
    min_obs: u64,
}

impl LatencyModel {
    /// A fresh model. `seed` determines the (tiny, positive) initial
    /// weights; the same seed and observation stream reproduce bit-identical
    /// weights.
    pub fn new(seed: u64) -> Self {
        let mut rng = Pcg32::seed_from_u64(seed);
        let mut weights = [0.0; FEATURE_DIM];
        for w in &mut weights {
            // Positive and ≤ 1e-3: small enough to be overwritten within a
            // handful of NLMS steps, positive so the monotonicity invariant
            // holds from the first prediction.
            *w = 1e-3 * rng.next_f64().max(f64::MIN_POSITIVE);
        }
        Self {
            inner: Mutex::new(ModelInner {
                weights,
                observations: 0,
                ratio_counts: [0; RATIO_BUCKETS],
                mape_sum: 0.0,
                mape_n: 0,
            }),
            min_obs: 64,
        }
    }

    /// Sets the cold-start gate: [`LatencyModel::predict`] returns `None`
    /// until this many observations have been absorbed (min 1).
    pub fn with_min_obs(mut self, min_obs: u64) -> Self {
        self.min_obs = min_obs.max(1);
        self
    }

    /// The cold-start observation threshold.
    pub fn min_obs(&self) -> u64 {
        self.min_obs
    }

    /// Observations absorbed so far.
    pub fn observations(&self) -> u64 {
        self.inner.lock().expect("model lock").observations
    }

    /// Whether the model has enough observations to predict.
    pub fn is_warm(&self) -> bool {
        self.observations() >= self.min_obs
    }

    /// The current weight vector (for determinism audits and tests).
    pub fn weights(&self) -> [f64; FEATURE_DIM] {
        self.inner.lock().expect("model lock").weights
    }

    /// Absorbs one completed request: a frame that rode a `batch`-sized
    /// enqueue, was admitted under `signals`, and took `observed_us`
    /// end-to-end. Performs one prequential step: score the prediction the
    /// scheduler would have used, then update the weights.
    pub fn observe(
        &self,
        features: &EngineFeatures,
        batch: usize,
        signals: &QueueSignals,
        observed_us: f64,
    ) {
        if !observed_us.is_finite() || observed_us < 0.0 {
            return;
        }
        let x = features.vector(batch, signals);
        let mut inner = self.inner.lock().expect("model lock");
        let predicted = inner.raw_predict(&x);
        // Prequential scoring before the update, but only once warm — cold
        // predictions were never used for decisions, so scoring them would
        // misstate the accuracy schedulers actually experienced.
        if inner.observations >= self.min_obs && observed_us > 0.0 {
            inner.mape_sum += ((observed_us - predicted) / observed_us).abs() * 100.0;
            inner.mape_n += 1;
        }
        // Residual ratios feed the p50/p99 calibration multipliers, so they
        // get the same warm gate as the MAPE: a cold model's raw predictions
        // sit near zero (weights are ~1e-3), and letting their enormous
        // ratios into the histogram would inflate the quantiles for the rest
        // of the model's life.
        if inner.observations >= self.min_obs && predicted > 0.0 && observed_us > 0.0 {
            let idx =
                ((observed_us / predicted).ln() / RATIO_GROWTH.ln()).round() + RATIO_CENTER as f64;
            let idx = (idx.max(0.0) as usize).min(RATIO_BUCKETS - 1);
            inner.ratio_counts[idx] += 1;
            if inner.ratio_counts.iter().sum::<u64>() >= RATIO_DECAY_AT {
                for n in &mut inner.ratio_counts {
                    *n /= 2;
                }
            }
        }
        // Projected normalized LMS: scale-free step, then clamp to w ≥ 0 so
        // predictions stay monotone in batch and queue depth. The step
        // anneals with observation count: early updates must move fast to
        // escape the zero-weight cold start, but a warm model serving
        // scheduling decisions needs *stable* weights — a fixed large step
        // would keep chasing per-batch noise and make admission thresholds
        // flap from run to run.
        let err = observed_us - predicted;
        let norm: f64 = x.iter().map(|v| v * v).sum::<f64>() + NORM_EPS;
        let step = STEP / (1.0 + inner.observations as f64 / STEP_ANNEAL_OBS);
        for (w, v) in inner.weights.iter_mut().zip(&x) {
            *w = (*w + step * err * v / norm).max(0.0);
        }
        inner.observations += 1;
    }

    /// Predicts the end-to-end latency of a request that would ride a
    /// `batch`-sized enqueue under queue state `signals`. Returns `None`
    /// while cold (fewer than [`LatencyModel::min_obs`] observations) —
    /// callers fall back to their static heuristics.
    pub fn predict(
        &self,
        features: &EngineFeatures,
        batch: usize,
        signals: &QueueSignals,
    ) -> Option<PredictedLatency> {
        let x = features.vector(batch, signals);
        let inner = self.inner.lock().expect("model lock");
        if inner.observations < self.min_obs {
            return None;
        }
        let point = inner.raw_predict(&x);
        let q50 = inner.ratio_quantile(0.50);
        let q99 = inner.ratio_quantile(0.99);
        let p50_us = point * q50;
        Some(PredictedLatency {
            p50_us,
            p99_us: (point * q99).max(p50_us),
        })
    }

    /// Prequential mean absolute percentage error of warm predictions, or
    /// `None` before any warm prediction was scored.
    pub fn mape_percent(&self) -> Option<f64> {
        let inner = self.inner.lock().expect("model lock");
        (inner.mape_n > 0).then(|| inner.mape_sum / inner.mape_n as f64)
    }

    /// The current residual-calibration multipliers `(p50, p99)` — the
    /// ratio-histogram quantiles that widen raw point predictions into
    /// [`PredictedLatency`] — or `(1.0, 1.0)` before any warm residual
    /// landed. Exported as `trtsim_predictor_*` gauges so calibration drift
    /// is scrapeable alongside the MAPE.
    pub fn calibration(&self) -> (f64, f64) {
        let inner = self.inner.lock().expect("model lock");
        (inner.ratio_quantile(0.50), inner.ratio_quantile(0.99))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::Builder;
    use crate::config::BuilderConfig;
    use trtsim_ir::graph::{Graph, LayerKind};

    fn engine() -> Engine {
        let mut g = Graph::new("predict", [3, 16, 16]);
        let c1 = g.add_layer(
            "c1",
            LayerKind::conv_seeded(16, 3, 3, 1, 1, 0),
            &[Graph::INPUT],
        );
        g.mark_output(c1);
        Builder::new(
            DeviceSpec::xavier_nx(),
            BuilderConfig::default().with_build_seed(3),
        )
        .build(&g)
        .unwrap()
    }

    fn features() -> EngineFeatures {
        EngineFeatures::measure(&engine(), &DeviceSpec::xavier_nx(), 200.0)
    }

    /// A synthetic "true" latency generator the model should learn.
    fn true_latency(f: &EngineFeatures, batch: usize, q: &QueueSignals) -> f64 {
        let b = batch as f64;
        b * (f.compute_us.max(f.mem_us))
            + f.launch_us
            + f.glue_us
            + q.queue_depth * f.service_us / 2.0
    }

    fn trained_model(seed: u64, rounds: usize) -> (LatencyModel, EngineFeatures) {
        let f = features();
        let model = LatencyModel::new(seed).with_min_obs(16);
        let mut rng = Pcg32::seed_from_u64(seed ^ 0xfeed);
        for _ in 0..rounds {
            let batch = 1 + (rng.next_u64() % 8) as usize;
            let q = QueueSignals::new((rng.next_u64() % 16) as f64, rng.next_f64());
            model.observe(&f, batch, &q, true_latency(&f, batch, &q));
        }
        (model, f)
    }

    #[test]
    fn cold_model_refuses_to_predict() {
        let f = features();
        let model = LatencyModel::new(1).with_min_obs(4);
        let q = QueueSignals::default();
        assert!(model.predict(&f, 1, &q).is_none());
        for _ in 0..3 {
            model.observe(&f, 1, &q, 1000.0);
            assert!(!model.is_warm());
            assert!(model.predict(&f, 1, &q).is_none());
        }
        model.observe(&f, 1, &q, 1000.0);
        assert!(model.is_warm());
        assert!(model.predict(&f, 1, &q).is_some());
    }

    #[test]
    fn learns_a_linear_world_to_a_few_percent() {
        let (model, f) = trained_model(11, 512);
        let q = QueueSignals::new(4.0, 0.5);
        let pred = model.predict(&f, 4, &q).unwrap();
        let truth = true_latency(&f, 4, &q);
        let err = ((pred.p50_us - truth) / truth).abs();
        assert!(
            err < 0.15,
            "p50 {} vs truth {truth}: err {err}",
            pred.p50_us
        );
        let mape = model.mape_percent().unwrap();
        assert!(mape < 25.0, "prequential MAPE {mape}%");
    }

    #[test]
    fn predictions_are_monotone_in_batch_and_queue() {
        let (model, f) = trained_model(5, 256);
        let q = QueueSignals::new(3.0, 0.25);
        let mut last = 0.0;
        for batch in 1..=16 {
            let p = model.predict(&f, batch, &q).unwrap();
            assert!(p.p99_us >= p.p50_us);
            assert!(p.p50_us >= last, "batch {batch} broke monotonicity");
            last = p.p50_us;
        }
        let mut last = 0.0;
        for depth in 0..16 {
            let p = model
                .predict(&f, 2, &QueueSignals::new(depth as f64, 0.25))
                .unwrap();
            assert!(p.p50_us >= last, "depth {depth} broke monotonicity");
            last = p.p50_us;
        }
    }

    #[test]
    fn same_seed_and_stream_reproduce_bit_identical_weights() {
        let (a, _) = trained_model(9, 128);
        let (b, _) = trained_model(9, 128);
        let (wa, wb) = (a.weights(), b.weights());
        for i in 0..FEATURE_DIM {
            assert_eq!(wa[i].to_bits(), wb[i].to_bits(), "weight {i} diverged");
        }
        let (c, _) = trained_model(10, 128);
        assert_ne!(a.weights(), c.weights(), "different seeds must diverge");
    }

    #[test]
    fn residual_quantiles_widen_p99_above_p50() {
        let f = features();
        let model = LatencyModel::new(2).with_min_obs(8);
        let q = QueueSignals::default();
        let mut rng = Pcg32::seed_from_u64(77);
        // Noisy world: ±40 % multiplicative jitter around the same mean.
        for _ in 0..256 {
            let jitter = 0.6 + 0.8 * rng.next_f64();
            model.observe(&f, 1, &q, 1000.0 * jitter);
        }
        let p = model.predict(&f, 1, &q).unwrap();
        assert!(
            p.p99_us > p.p50_us * 1.1,
            "p99 {} should sit well above p50 {} under jitter",
            p.p99_us,
            p.p50_us
        );
    }

    #[test]
    fn calibration_defaults_to_unity_and_tracks_residuals() {
        let f = features();
        let model = LatencyModel::new(4).with_min_obs(8);
        assert_eq!(model.calibration(), (1.0, 1.0));
        let q = QueueSignals::default();
        for _ in 0..64 {
            model.observe(&f, 1, &q, 1000.0);
        }
        let (q50, q99) = model.calibration();
        assert!(q50 > 0.0 && q99 >= q50, "q50 {q50} q99 {q99}");
        // The multipliers are exactly what predict() applies to the point.
        let p = model.predict(&f, 1, &q).unwrap();
        assert!((p.p99_us / p.p50_us - q99 / q50).abs() < 1e-9);
    }

    #[test]
    fn garbage_observations_are_ignored() {
        let f = features();
        let model = LatencyModel::new(3).with_min_obs(1);
        let q = QueueSignals::default();
        model.observe(&f, 1, &q, f64::NAN);
        model.observe(&f, 1, &q, -5.0);
        model.observe(&f, 1, &q, f64::INFINITY);
        assert_eq!(model.observations(), 0);
        assert!(model.predict(&f, 1, &q).is_none());
    }
}
