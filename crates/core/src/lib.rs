//! The TensorRT-like inference engine — the paper's subject, reimplemented as
//! a simulator faithful enough to reproduce its published behaviour.
//!
//! Building an engine follows the paper's Figure 2 exactly:
//!
//! 1. **Dead-layer removal** ([`passes::dead_layer`]) — dropout, identity,
//!    and nodes that cannot reach an output are deleted.
//! 2. **Vertical fusion** ([`passes::vertical_fusion`]) — BatchNorm/Scale
//!    fold into the preceding convolution's weights; activations fuse into
//!    the convolution's epilogue.
//! 3. **Horizontal merging** ([`passes::horizontal_merge`]) — sibling
//!    convolutions with the same input and geometry (Inception-style
//!    branches) merge into one wider launch.
//! 4. **Quantization** ([`calibrate`], [`compress`]) — FP16 by policy; INT8
//!    with a calibration set; optional weight clustering/pruning.
//! 5. **Kernel mapping** ([`autotune`]) — every candidate tactic from the
//!    catalog is *timed on the target device* and the fastest wins. The
//!    timings carry measurement noise, so **each build of the same network
//!    selects a different kernel set** — the root cause of every
//!    non-determinism finding in the paper.
//!
//! The result is an [`Engine`] that can be serialized to a plan
//! ([`plan`]), executed numerically, or timed on any simulated device
//! ([`runtime::ExecutionContext`]).
//!
//! # Examples
//!
//! ```
//! use trtsim_core::builder::Builder;
//! use trtsim_core::config::BuilderConfig;
//! use trtsim_gpu::device::{DeviceSpec, Platform};
//! use trtsim_ir::graph::{Graph, LayerKind};
//!
//! let mut g = Graph::new("m", [3, 16, 16]);
//! let c = g.add_layer("c1", LayerKind::conv_seeded(8, 3, 3, 1, 1, 7), &[Graph::INPUT]);
//! g.mark_output(c);
//!
//! let config = BuilderConfig::default().with_build_seed(42);
//! let engine = Builder::new(DeviceSpec::xavier_nx(), config)
//!     .build(&g)
//!     .unwrap();
//! assert_eq!(engine.build_platform(), Platform::Nx);
//! assert!(engine.plan_size_bytes() > 0);
//! ```

#![warn(missing_docs)]

pub mod autotune;
pub mod builder;
pub mod calibrate;
pub mod compress;
pub mod config;
pub mod engine;
pub mod error;
pub mod fastpath;
pub mod fleet;
pub mod passes;
pub mod plan;
pub mod predict;
pub mod reqtrace;
pub mod runtime;
pub mod serving;
pub mod telemetry;
pub mod timing_cache;

pub use builder::Builder;
pub use config::BuilderConfig;
pub use engine::{Engine, ExecUnit, IoBytes};
pub use error::EngineError;
pub use fastpath::{InferencePlan, PlanScratch};
pub use fleet::{Fleet, FleetBuilder, FleetConfig, FleetStats, ReplicaStats};
pub use predict::{EngineFeatures, LatencyModel, PredictedLatency, QueueSignals};
pub use reqtrace::{
    FlightRecorder, PhaseKind, PhaseSpan, RequestTrace, TraceId, TraceOptions, TraceOutcome,
};
pub use runtime::{ExecutionContext, TimingOptions};
pub use serving::{
    serve, InferenceServer, KernelTime, ProfileOptions, RequestRecord, ServerConfig, ServerStats,
    ServingError, ServingLabels, ServingReport,
};
pub use telemetry::GpuSampler;
pub use timing_cache::TimingCache;
