//! Builder configuration.

use std::sync::atomic::{AtomicU64, Ordering};

use trtsim_ir::tensor::Tensor;
use trtsim_kernels::catalog::PrecisionPolicy;

/// Process-global counter making default builds distinct, like real TensorRT
/// builds are (each `build` call draws fresh timing noise).
static BUILD_COUNTER: AtomicU64 = AtomicU64::new(0x5eed);

/// Configuration for [`crate::Builder`].
///
/// # Examples
///
/// ```
/// use trtsim_core::config::BuilderConfig;
/// let config = BuilderConfig::default()
///     .with_build_seed(7)       // reproducible build (the simulator's extra knob)
///     .with_clustering(true);   // weight clustering compression
/// assert_eq!(config.build_seed, Some(7));
/// ```
#[derive(Debug, Clone)]
pub struct BuilderConfig {
    /// Which precisions tactics may use.
    pub policy: PrecisionPolicy,
    /// Explicit build seed. `None` (the default, and TensorRT's only
    /// behaviour) draws a fresh seed per build, so two builds of the same
    /// network differ — the paper's central observation. Tests pin this.
    pub build_seed: Option<u64>,
    /// Relative standard deviation of tactic timing measurements. Real
    /// autotuning measures kernels on a busy SoC; ±6 % run-to-run spread is
    /// typical of the boards.
    pub timing_noise_sd: f64,
    /// How many noisy measurements are averaged per tactic (TensorRT's
    /// `avgTiming`); more samples = less build non-determinism.
    pub timing_samples: u32,
    /// Enable weight clustering (compression step; improves over-fitted
    /// models' accuracy, see Finding 1).
    pub enable_clustering: bool,
    /// log2 of the clustering codebook size.
    pub cluster_bits: u32,
    /// Enable magnitude pruning.
    pub enable_pruning: bool,
    /// Prune weights with `|w| < threshold · std(w)`.
    pub prune_threshold: f32,
    /// Calibration images for INT8 (empty disables INT8 even if allowed).
    pub calibration: Vec<Tensor>,
    /// Run the dead-layer-removal pass (ablation switch; on in real builds).
    pub enable_dead_layer: bool,
    /// Run the vertical-fusion pass (ablation switch; on in real builds).
    pub enable_vertical_fusion: bool,
    /// Run the horizontal-merge pass (ablation switch; on in real builds).
    pub enable_horizontal_merge: bool,
}

impl Default for BuilderConfig {
    fn default() -> Self {
        Self {
            policy: PrecisionPolicy::fp16(),
            build_seed: None,
            timing_noise_sd: 0.06,
            timing_samples: 1,
            enable_clustering: false,
            cluster_bits: 6,
            enable_pruning: false,
            prune_threshold: 0.05,
            calibration: Vec::new(),
            enable_dead_layer: true,
            enable_vertical_fusion: true,
            enable_horizontal_merge: true,
        }
    }
}

impl BuilderConfig {
    /// Pins the build seed, making the build reproducible.
    pub fn with_build_seed(mut self, seed: u64) -> Self {
        self.build_seed = Some(seed);
        self
    }

    /// Sets the precision policy.
    pub fn with_policy(mut self, policy: PrecisionPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Enables or disables weight clustering.
    pub fn with_clustering(mut self, on: bool) -> Self {
        self.enable_clustering = on;
        self
    }

    /// Enables or disables magnitude pruning.
    pub fn with_pruning(mut self, on: bool) -> Self {
        self.enable_pruning = on;
        self
    }

    /// Disables all graph-rewriting passes (ablation baseline: quantization
    /// and kernel mapping only).
    pub fn without_graph_passes(mut self) -> Self {
        self.enable_dead_layer = false;
        self.enable_vertical_fusion = false;
        self.enable_horizontal_merge = false;
        self
    }

    /// Sets the autotimer's averaging count (TensorRT's `avgTiming`): more
    /// samples shrink measurement noise and with it build non-determinism.
    pub fn with_timing_samples(mut self, samples: u32) -> Self {
        self.timing_samples = samples.max(1);
        self
    }

    /// Provides INT8 calibration images (also enables INT8 in the policy).
    pub fn with_calibration(mut self, images: Vec<Tensor>) -> Self {
        self.calibration = images;
        self.policy.allow_int8 = true;
        self
    }

    /// The seed this build will use: the pinned one, or a fresh draw.
    pub fn resolve_seed(&self) -> u64 {
        self.build_seed
            .unwrap_or_else(|| BUILD_COUNTER.fetch_add(0x9e37_79b9, Ordering::Relaxed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_fp16_noisy() {
        let c = BuilderConfig::default();
        assert!(c.policy.allow_fp16);
        assert!(!c.policy.allow_int8);
        assert!(c.build_seed.is_none());
        assert!(c.timing_noise_sd > 0.0);
    }

    #[test]
    fn unpinned_seeds_differ() {
        let c = BuilderConfig::default();
        assert_ne!(c.resolve_seed(), c.resolve_seed());
    }

    #[test]
    fn pinned_seed_is_stable() {
        let c = BuilderConfig::default().with_build_seed(99);
        assert_eq!(c.resolve_seed(), 99);
        assert_eq!(c.resolve_seed(), 99);
    }

    #[test]
    fn pass_switches_default_on() {
        let c = BuilderConfig::default();
        assert!(c.enable_dead_layer && c.enable_vertical_fusion && c.enable_horizontal_merge);
        let off = c.without_graph_passes();
        assert!(!off.enable_dead_layer && !off.enable_vertical_fusion && !off.enable_horizontal_merge);
    }

    #[test]
    fn timing_samples_floor_at_one() {
        assert_eq!(BuilderConfig::default().with_timing_samples(0).timing_samples, 1);
    }

    #[test]
    fn calibration_enables_int8() {
        let c = BuilderConfig::default().with_calibration(vec![Tensor::zeros([1, 2, 2])]);
        assert!(c.policy.allow_int8);
        assert_eq!(c.calibration.len(), 1);
    }
}
