//! Builder configuration.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use trtsim_ir::tensor::Tensor;
use trtsim_kernels::catalog::PrecisionPolicy;

use crate::timing_cache::TimingCache;

/// Process-global counter making default builds distinct, like real TensorRT
/// builds are (each `build` call draws fresh timing noise).
static BUILD_COUNTER: AtomicU64 = AtomicU64::new(0x5eed);

/// Graphs smaller than this measure sequentially even in auto mode: per-node
/// measurement is analytic (microseconds), so spawning scoped workers only
/// pays off once a build has enough layers to amortize it.
const MIN_PARALLEL_NODES: usize = 48;

/// Configuration for [`crate::Builder`].
///
/// Follows the workspace's configuration convention (DESIGN §6): every
/// config type implements `Default` with production-like values, every
/// public field has a fluent `with_*` setter that validates or clamps its
/// argument, and consumers chain setters off `default()`. New knobs get
/// defaults, so adding one never breaks existing call sites.
///
/// # Examples
///
/// ```
/// use trtsim_core::config::BuilderConfig;
/// let config = BuilderConfig::default()
///     .with_build_seed(7)        // reproducible build (the simulator's extra knob)
///     .with_timing_noise_sd(0.0) // noise-free autotuning measurements
///     .with_clustering(true)     // weight clustering compression
///     .with_cluster_bits(5);     // 32-entry codebook
/// assert_eq!(config.build_seed, Some(7));
/// assert_eq!(config.cluster_bits, 5);
/// ```
#[derive(Debug, Clone)]
pub struct BuilderConfig {
    /// Which precisions tactics may use.
    pub policy: PrecisionPolicy,
    /// Explicit build seed. `None` (the default, and TensorRT's only
    /// behaviour) draws a fresh seed per build, so two builds of the same
    /// network differ — the paper's central observation. Tests pin this.
    pub build_seed: Option<u64>,
    /// Relative standard deviation of tactic timing measurements. Real
    /// autotuning measures kernels on a busy SoC; ±6 % run-to-run spread is
    /// typical of the boards.
    pub timing_noise_sd: f64,
    /// How many noisy measurements are averaged per tactic (TensorRT's
    /// `avgTiming`); more samples = less build non-determinism.
    pub timing_samples: u32,
    /// Enable weight clustering (compression step; improves over-fitted
    /// models' accuracy, see Finding 1).
    pub enable_clustering: bool,
    /// log2 of the clustering codebook size.
    pub cluster_bits: u32,
    /// Enable magnitude pruning.
    pub enable_pruning: bool,
    /// Prune weights with `|w| < threshold · std(w)`.
    pub prune_threshold: f32,
    /// Calibration images for INT8 (empty disables INT8 even if allowed).
    pub calibration: Vec<Tensor>,
    /// Run the dead-layer-removal pass (ablation switch; on in real builds).
    pub enable_dead_layer: bool,
    /// Run the vertical-fusion pass (ablation switch; on in real builds).
    pub enable_vertical_fusion: bool,
    /// Run the horizontal-merge pass (ablation switch; on in real builds).
    pub enable_horizontal_merge: bool,
    /// Worker threads for tactic autotuning: `0` (the default) resolves to
    /// the machine's available parallelism, `1` selects the sequential
    /// fallback path, `n > 1` uses `n` workers. Per-node RNG streams make
    /// every setting produce bit-identical engines for a pinned seed, so
    /// this knob trades wall-clock for nothing else.
    pub build_threads: usize,
    /// Shared timing cache (TensorRT `ITimingCache` analog) memoizing the
    /// deterministic component of tactic timing across builds. `None` (the
    /// default) recomputes every query. Measurement noise is never cached,
    /// so a warm cache changes build time, not build output.
    pub timing_cache: Option<Arc<TimingCache>>,
}

impl Default for BuilderConfig {
    fn default() -> Self {
        Self {
            policy: PrecisionPolicy::fp16(),
            build_seed: None,
            timing_noise_sd: 0.06,
            timing_samples: 1,
            enable_clustering: false,
            cluster_bits: 6,
            enable_pruning: false,
            prune_threshold: 0.05,
            calibration: Vec::new(),
            enable_dead_layer: true,
            enable_vertical_fusion: true,
            enable_horizontal_merge: true,
            build_threads: 0,
            timing_cache: None,
        }
    }
}

impl BuilderConfig {
    /// Pins the build seed, making the build reproducible.
    pub fn with_build_seed(mut self, seed: u64) -> Self {
        self.build_seed = Some(seed);
        self
    }

    /// Sets the precision policy.
    pub fn with_policy(mut self, policy: PrecisionPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the relative standard deviation of tactic timing measurements,
    /// clamped to `[0, 1]`. Zero makes autotuning measurements exact, which
    /// (with a pinned seed) removes build non-determinism entirely.
    pub fn with_timing_noise_sd(mut self, sd: f64) -> Self {
        self.timing_noise_sd = if sd.is_nan() { 0.0 } else { sd.clamp(0.0, 1.0) };
        self
    }

    /// Enables or disables weight clustering.
    pub fn with_clustering(mut self, on: bool) -> Self {
        self.enable_clustering = on;
        self
    }

    /// Sets the log2 codebook size for weight clustering, clamped to
    /// `1..=8` (2 to 256 centroids).
    pub fn with_cluster_bits(mut self, bits: u32) -> Self {
        self.cluster_bits = bits.clamp(1, 8);
        self
    }

    /// Enables or disables magnitude pruning.
    pub fn with_pruning(mut self, on: bool) -> Self {
        self.enable_pruning = on;
        self
    }

    /// Sets the pruning threshold (in units of the weight tensor's standard
    /// deviation); negative or NaN values clamp to zero (prune nothing).
    pub fn with_prune_threshold(mut self, threshold: f32) -> Self {
        self.prune_threshold = if threshold.is_nan() {
            0.0
        } else {
            threshold.max(0.0)
        };
        self
    }

    /// Enables or disables the dead-layer-removal pass (ablation switch).
    pub fn with_dead_layer(mut self, on: bool) -> Self {
        self.enable_dead_layer = on;
        self
    }

    /// Enables or disables the vertical-fusion pass (ablation switch).
    pub fn with_vertical_fusion(mut self, on: bool) -> Self {
        self.enable_vertical_fusion = on;
        self
    }

    /// Enables or disables the horizontal-merge pass (ablation switch).
    pub fn with_horizontal_merge(mut self, on: bool) -> Self {
        self.enable_horizontal_merge = on;
        self
    }

    /// Disables all graph-rewriting passes (ablation baseline: quantization
    /// and kernel mapping only).
    pub fn without_graph_passes(mut self) -> Self {
        self.enable_dead_layer = false;
        self.enable_vertical_fusion = false;
        self.enable_horizontal_merge = false;
        self
    }

    /// Sets the autotimer's averaging count (TensorRT's `avgTiming`): more
    /// samples shrink measurement noise and with it build non-determinism.
    pub fn with_timing_samples(mut self, samples: u32) -> Self {
        self.timing_samples = samples.max(1);
        self
    }

    /// Provides INT8 calibration images (also enables INT8 in the policy).
    pub fn with_calibration(mut self, images: Vec<Tensor>) -> Self {
        self.calibration = images;
        self.policy.allow_int8 = true;
        self
    }

    /// Sets the autotuning worker-thread count: `0` = auto (available
    /// parallelism), `1` = sequential fallback, `n` = exactly `n` workers.
    pub fn with_build_threads(mut self, threads: usize) -> Self {
        self.build_threads = threads;
        self
    }

    /// Attaches a shared timing cache; builds sharing one cache skip
    /// recomputing the deterministic timing component for kernels they have
    /// in common (across models, seeds, and threads).
    pub fn with_timing_cache(mut self, cache: Arc<TimingCache>) -> Self {
        self.timing_cache = Some(cache);
        self
    }

    /// Detaches any shared timing cache.
    pub fn without_timing_cache(mut self) -> Self {
        self.timing_cache = None;
        self
    }

    /// The worker-thread count this build will use (resolves `0` = auto to
    /// the machine's available parallelism). Small graphs fall back to the
    /// sequential path regardless — the scoped pool's spawn cost would
    /// exceed the measurement work.
    pub fn resolve_build_threads(&self, nodes: usize) -> usize {
        let threads = match self.build_threads {
            0 => trtsim_util::pool::auto_threads(),
            n => n,
        };
        if nodes < MIN_PARALLEL_NODES {
            1
        } else {
            threads
        }
    }

    /// The seed this build will use: the pinned one, or a fresh draw.
    pub fn resolve_seed(&self) -> u64 {
        self.build_seed
            .unwrap_or_else(|| BUILD_COUNTER.fetch_add(0x9e37_79b9, Ordering::Relaxed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_fp16_noisy() {
        let c = BuilderConfig::default();
        assert!(c.policy.allow_fp16);
        assert!(!c.policy.allow_int8);
        assert!(c.build_seed.is_none());
        assert!(c.timing_noise_sd > 0.0);
    }

    #[test]
    fn unpinned_seeds_differ() {
        let c = BuilderConfig::default();
        assert_ne!(c.resolve_seed(), c.resolve_seed());
    }

    #[test]
    fn pinned_seed_is_stable() {
        let c = BuilderConfig::default().with_build_seed(99);
        assert_eq!(c.resolve_seed(), 99);
        assert_eq!(c.resolve_seed(), 99);
    }

    #[test]
    fn pass_switches_default_on() {
        let c = BuilderConfig::default();
        assert!(c.enable_dead_layer && c.enable_vertical_fusion && c.enable_horizontal_merge);
        let off = c.without_graph_passes();
        assert!(
            !off.enable_dead_layer && !off.enable_vertical_fusion && !off.enable_horizontal_merge
        );
    }

    #[test]
    fn timing_samples_floor_at_one() {
        assert_eq!(
            BuilderConfig::default()
                .with_timing_samples(0)
                .timing_samples,
            1
        );
    }

    #[test]
    fn every_public_field_has_a_setter() {
        let c = BuilderConfig::default()
            .with_policy(PrecisionPolicy::fp32_only())
            .with_build_seed(1)
            .with_timing_noise_sd(0.1)
            .with_timing_samples(3)
            .with_clustering(true)
            .with_cluster_bits(4)
            .with_pruning(true)
            .with_prune_threshold(0.2)
            .with_calibration(vec![Tensor::zeros([1, 2, 2])])
            .with_dead_layer(false)
            .with_vertical_fusion(false)
            .with_horizontal_merge(false)
            .with_build_threads(3)
            .with_timing_cache(Arc::new(TimingCache::new()));
        assert_eq!(c.build_threads, 3);
        assert!(c.timing_cache.is_some());
        assert!(c.clone().without_timing_cache().timing_cache.is_none());
        assert_eq!(c.build_seed, Some(1));
        assert_eq!(c.timing_noise_sd, 0.1);
        assert_eq!(c.timing_samples, 3);
        assert!(c.enable_clustering && c.enable_pruning);
        assert_eq!(c.cluster_bits, 4);
        assert_eq!(c.prune_threshold, 0.2);
        assert!(!c.enable_dead_layer && !c.enable_vertical_fusion && !c.enable_horizontal_merge);
    }

    #[test]
    fn setters_clamp_out_of_range_values() {
        assert_eq!(
            BuilderConfig::default()
                .with_timing_noise_sd(-1.0)
                .timing_noise_sd,
            0.0
        );
        assert_eq!(
            BuilderConfig::default()
                .with_timing_noise_sd(2.0)
                .timing_noise_sd,
            1.0
        );
        assert_eq!(
            BuilderConfig::default()
                .with_timing_noise_sd(f64::NAN)
                .timing_noise_sd,
            0.0
        );
        assert_eq!(
            BuilderConfig::default().with_cluster_bits(0).cluster_bits,
            1
        );
        assert_eq!(
            BuilderConfig::default().with_cluster_bits(99).cluster_bits,
            8
        );
        assert_eq!(
            BuilderConfig::default()
                .with_prune_threshold(-0.5)
                .prune_threshold,
            0.0
        );
        assert_eq!(
            BuilderConfig::default()
                .with_prune_threshold(f32::NAN)
                .prune_threshold,
            0.0
        );
    }

    #[test]
    fn build_threads_resolution() {
        let auto = BuilderConfig::default();
        assert_eq!(auto.build_threads, 0);
        // Auto mode parallelizes big graphs only.
        assert_eq!(auto.resolve_build_threads(4), 1);
        assert!(auto.resolve_build_threads(1000) >= 1);
        let pinned = BuilderConfig::default().with_build_threads(5);
        assert_eq!(pinned.resolve_build_threads(1000), 5);
        assert_eq!(pinned.resolve_build_threads(4), 1);
        assert_eq!(
            BuilderConfig::default()
                .with_build_threads(1)
                .resolve_build_threads(1000),
            1
        );
    }

    #[test]
    fn calibration_enables_int8() {
        let c = BuilderConfig::default().with_calibration(vec![Tensor::zeros([1, 2, 2])]);
        assert!(c.policy.allow_int8);
        assert_eq!(c.calibration.len(), 1);
    }
}
