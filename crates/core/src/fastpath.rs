//! Precompiled execution plans: the numeric-inference fast path.
//!
//! [`crate::runtime::ExecutionContext::infer`] re-resolves everything on
//! every call: it materializes conv/FC weights, re-rounds them to the
//! tactic's precision, clones tensors through Identity/Dropout/Flatten, and
//! scans every layer output for NaN. An [`InferencePlan`] does all of that
//! work **once** per engine:
//!
//! * every node's tactic and precision resolve to a plan step with a
//!   pre-lowered kernel ([`trtsim_kernels::numeric::PreparedConv`] /
//!   [`PreparedFc`]) — weights materialized, precision-converted, and
//!   pruned zeros elided from the multiply stream;
//! * liveness analysis ([`trtsim_ir::liveness::Liveness`]) assigns every
//!   activation to a reusable slot, and a [`trtsim_ir::arena::TensorArena`]
//!   recycles freed buffers into later same-size-class allocations;
//! * a layout assignment pass gives every value a physical
//!   [`trtsim_ir::layout::Layout`]: lane-kernel convs store their outputs in
//!   the tactic's preferred format (blocked `CHWc8` for implicit-GEMM
//!   tactics, `NHWC` for depthwise — [`trtsim_kernels::cost::preferred_layout`]),
//!   layout-agnostic elementwise nodes propagate their input's format, and
//!   minimal reformat steps are inserted only where a CHW-only consumer (or
//!   a graph output) actually needs canonical order — TensorRT's reformat
//!   layers between `_nhwc`-suffixed kernels;
//! * per-step flags mark which outputs need FP16 rounding and which can
//!   carry NaN (only reduced-precision-reachable values can), so pure-FP32
//!   layers skip the scrub scan;
//! * Identity/Dropout/Flatten forward their input **by move** when the
//!   value dies there, instead of cloning.
//!
//! The invariant, enforced by the `bench_infer` harness and the workspace
//! proptests: plan execution is **bit-identical** (under `f32` equality) to
//! the reference interpreter path, now exposed as
//! [`crate::runtime::ExecutionContext::infer_unplanned`].

use trtsim_gpu::kernel::Precision;
use trtsim_ir::arena::{size_class, TensorArena};
use trtsim_ir::graph::{Activation, ConvParams, EltwiseOp, Graph, LayerKind, NodeId, PoolKind};
use trtsim_ir::layout::{self, Layout};
use trtsim_ir::liveness::Liveness;
use trtsim_ir::ops;
use trtsim_ir::tensor::Tensor;
use trtsim_ir::weights::MATERIALIZE_LIMIT;
use trtsim_ir::IrError;
use trtsim_kernels::numeric::{apply_precision, lane_layout, PreparedConv, PreparedFc};
use trtsim_metrics::memory::ArenaStats;

use crate::engine::Engine;
use crate::error::EngineError;

/// The resolved operation of one plan step.
#[derive(Debug, Clone)]
enum StepOp<'e> {
    Conv {
        params: &'e ConvParams,
        prepared: Box<PreparedConv>,
    },
    Fc {
        prepared: PreparedFc,
        activation: Option<Activation>,
    },
    Pool {
        kind: PoolKind,
        kernel: usize,
        stride: usize,
        pad: usize,
    },
    GlobalPool {
        kind: PoolKind,
    },
    Act(Activation),
    BatchNorm {
        mean: &'e [f32],
        var: &'e [f32],
        gamma: &'e [f32],
        beta: &'e [f32],
        eps: f32,
    },
    Scale {
        scale: &'e [f32],
        bias: &'e [f32],
    },
    Lrn {
        local_size: usize,
        alpha: f32,
        beta: f32,
        k: f32,
    },
    Eltwise(EltwiseOp),
    Concat,
    Softmax,
    Upsample {
        factor: usize,
    },
    Flatten,
    Slice {
        begin: usize,
        len: usize,
    },
    /// Identity/Dropout: zero-copy forward.
    Forward,
}

/// One fully-resolved execution step of a plan.
#[derive(Debug, Clone)]
struct Step<'e> {
    node: NodeId,
    inputs: &'e [NodeId],
    op: StepOp<'e>,
    /// Output must be rounded onto the binary16 grid (non-GEMM layer whose
    /// tactic runs FP16 — the interpreter's `precision_rounded`).
    fp16_round: bool,
    /// Output can carry NaN: a reduced-precision kernel runs at or upstream
    /// of this node. Pure-FP32 steps skip the scrub scan.
    scrub: bool,
    /// For [`StepOp::Forward`]/[`StepOp::Flatten`]: the input dies at this
    /// step, so its tensor may be moved instead of copied.
    move_input: bool,
    /// Reformat steps to materialize before the op runs: for each
    /// `(input index, logical shape, from, to)`, the producer's physical
    /// tensor is permuted into an arena temp the op reads instead.
    converts: Vec<(usize, [usize; 3], Layout, Layout)>,
    /// Physical shape of this step's output under its assigned layout.
    phys_shape: [usize; 3],
    /// Values whose buffers recycle into the arena once this step ran.
    free_after: Vec<NodeId>,
}

/// Reusable per-thread execution state: value slots plus the recycling
/// buffer arena. One scratch serves any number of sequential
/// [`InferencePlan::execute`] calls; batch APIs keep one per worker.
#[derive(Debug, Default)]
pub struct PlanScratch {
    slots: Vec<Option<Tensor>>,
    arena: TensorArena,
}

impl PlanScratch {
    /// An empty scratch (slots grow to the plan's requirement on first use).
    pub fn new() -> Self {
        Self::default()
    }

    /// The buffer arena (for allocation statistics).
    pub fn arena(&self) -> &TensorArena {
        &self.arena
    }
}

/// A precompiled execution plan for one [`Engine`] — the analog of the
/// schedule TensorRT freezes into a serialized engine, where tactic
/// resolution, weight formatting, and memory binding happen at build time
/// rather than per enqueue.
///
/// Obtain one through [`crate::runtime::ExecutionContext::plan`] (cached
/// per context) or compile directly. Execution is bit-identical to the
/// reference interpreter.
///
/// # Examples
///
/// ```
/// use trtsim_core::fastpath::{InferencePlan, PlanScratch};
/// use trtsim_core::{Builder, BuilderConfig};
/// use trtsim_gpu::device::DeviceSpec;
/// use trtsim_ir::graph::{Graph, LayerKind};
/// use trtsim_ir::Tensor;
///
/// let mut g = Graph::new("m", [3, 8, 8]);
/// let c = g.add_layer("c", LayerKind::conv_seeded(4, 3, 3, 1, 1, 0), &[Graph::INPUT]);
/// g.mark_output(c);
/// let engine = Builder::new(DeviceSpec::xavier_nx(), BuilderConfig::default().with_build_seed(1))
///     .build(&g)?;
///
/// let plan = InferencePlan::compile(&engine)?;
/// let out = plan.execute(&Tensor::zeros([3, 8, 8]), &mut PlanScratch::new())?;
/// assert_eq!(out[0].shape(), [4, 8, 8]);
/// # Ok::<(), trtsim_core::EngineError>(())
/// ```
#[derive(Debug, Clone)]
pub struct InferencePlan<'e> {
    engine: &'e Engine,
    steps: Vec<Step<'e>>,
    slot_of: Vec<usize>,
    slot_count: usize,
    stats: ArenaStats,
    layout_converts_per_execution: u64,
    metrics: crate::telemetry::PlanMetrics,
}

impl<'e> InferencePlan<'e> {
    /// Resolves every node of `engine` into an executable step: weights
    /// materialized and precision-lowered, liveness computed, slots
    /// assigned.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Execution`] if the engine holds
    /// descriptor-scale weights too large to materialize (same condition as
    /// the interpreter path).
    pub fn compile(engine: &'e Engine) -> Result<Self, EngineError> {
        let graph: &'e Graph = engine.graph();
        let shapes = engine.shapes();
        for node in graph.nodes() {
            let weights_len = match &node.kind {
                LayerKind::Conv(c) => c.weights.len(),
                LayerKind::InnerProduct { weights, .. } => weights.len(),
                _ => 0,
            };
            if weights_len > MATERIALIZE_LIMIT {
                return Err(EngineError::Execution(IrError::NotExecutable {
                    node: node.name.clone(),
                    detail: format!(
                        "{weights_len} weights exceed the materialization limit; \
                         use the numeric-scale variant of this model"
                    ),
                }));
            }
        }

        // Layout assignment (DESIGN §13). Lane-kernel convs read any
        // physical layout and want their tactic's preferred one for their
        // output; elementwise nodes (Act / Eltwise / Identity / Dropout)
        // are layout-agnostic and propagate their first input's format;
        // every other op reads and writes canonical CHW. A conv only emits
        // a non-CHW format when some transitive consumer — through agnostic
        // nodes — is itself a lane conv; otherwise the blocked store would
        // just buy a reformat straight back. Graph outputs are always CHW,
        // so callers keep seeing logical tensors.
        let n = graph.len();
        let mut consumers: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        for node in graph.nodes().iter().skip(1) {
            for &input in &node.inputs {
                consumers[input].push(node.id);
            }
        }
        let lane_pref: Vec<Option<Layout>> = graph
            .nodes()
            .iter()
            .map(|node| match &node.kind {
                LayerKind::Conv(c) => {
                    let tactic = &engine.units()[node.id].choice.as_ref()?.tactic;
                    lane_layout(c, tactic)
                }
                _ => None,
            })
            .collect();
        let is_agnostic: Vec<bool> = graph
            .nodes()
            .iter()
            .map(|node| {
                matches!(
                    node.kind,
                    LayerKind::Act(_)
                        | LayerKind::Eltwise { .. }
                        | LayerKind::Dropout { .. }
                        | LayerKind::Identity
                )
            })
            .collect();
        let mut is_out = vec![false; n];
        for &output in graph.outputs() {
            is_out[output] = true;
        }
        // Does any consumer of this value — possibly through a chain of
        // non-output agnostic nodes — read it with a lane kernel? Nodes are
        // topological, so one reverse sweep settles the recurrence.
        let mut feeds_lanes = vec![false; n];
        for id in (0..n).rev() {
            feeds_lanes[id] = consumers[id].iter().any(|&c| {
                lane_pref[c].is_some() || (is_agnostic[c] && !is_out[c] && feeds_lanes[c])
            });
        }
        let mut layouts = vec![Layout::Chw; n];
        for node in graph.nodes().iter().skip(1) {
            layouts[node.id] = match lane_pref[node.id] {
                Some(pref) if feeds_lanes[node.id] && !is_out[node.id] => pref,
                Some(_) => Layout::Chw,
                None if is_agnostic[node.id] && !is_out[node.id] => layouts[node.inputs[0]],
                None => Layout::Chw,
            };
        }

        let liveness = Liveness::analyze(graph);
        let slots = liveness.assign_slots();
        // Footprints and slot capacities account *physical* sizes: blocked
        // CHWc8 values carry their channel padding, and each slot is
        // provisioned at the arena size class of the largest value it ever
        // holds — the bytes `utilization()` divides the liveness peak by.
        let phys_shapes: Vec<[usize; 3]> = (0..n)
            .map(|id| layouts[id].physical_shape(shapes[id]))
            .collect();
        let (peak, total) = liveness.activation_footprint(&phys_shapes);
        let mut slot_max_elems = vec![0usize; slots.slot_count];
        for (value, shape) in phys_shapes.iter().enumerate() {
            let slot = slots.slot_of[value];
            slot_max_elems[slot] = slot_max_elems[slot].max(shape[0] * shape[1] * shape[2]);
        }
        let slot_capacity: u64 = slot_max_elems
            .iter()
            .map(|&elems| size_class(elems) as u64 * 4)
            .sum();
        let stats = ArenaStats::new(peak, total, slot_capacity, slots.slot_count, n);

        // NaN can only appear downstream of a reduced-precision kernel
        // (FP16 overflow); pure-FP32 steps skip the interpreter's per-node
        // scrub scan.
        let mut tainted = vec![false; graph.len()];
        let mut steps = Vec::with_capacity(graph.len().saturating_sub(1));
        for node in graph.nodes().iter().skip(1) {
            let unit = &engine.units()[node.id];
            let precision = unit
                .choice
                .as_ref()
                .map(|c| c.tactic.precision)
                .unwrap_or(Precision::Fp32);
            tainted[node.id] =
                precision != Precision::Fp32 || node.inputs.iter().any(|&i| tainted[i]);
            let op = match &node.kind {
                LayerKind::Input => unreachable!("input node is implicit"),
                LayerKind::Conv(c) => {
                    let tactic = &unit
                        .choice
                        .as_ref()
                        .expect("conv nodes always have a tactic")
                        .tactic;
                    let layout_in = if lane_pref[node.id].is_some() {
                        layouts[node.inputs[0]]
                    } else {
                        Layout::Chw
                    };
                    StepOp::Conv {
                        params: c,
                        prepared: Box::new(PreparedConv::with_layouts(
                            c,
                            shapes[node.inputs[0]],
                            tactic,
                            unit.quant.as_ref(),
                            layout_in,
                            layouts[node.id],
                        )),
                    }
                }
                LayerKind::InnerProduct {
                    out_features,
                    weights,
                    bias,
                    activation,
                    ..
                } => {
                    let tactic = &unit
                        .choice
                        .as_ref()
                        .expect("fc nodes always have a tactic")
                        .tactic;
                    StepOp::Fc {
                        prepared: PreparedFc::new(weights, bias, *out_features, tactic),
                        activation: *activation,
                    }
                }
                LayerKind::Pool {
                    kind,
                    kernel,
                    stride,
                    pad,
                } => StepOp::Pool {
                    kind: *kind,
                    kernel: *kernel,
                    stride: *stride,
                    pad: *pad,
                },
                LayerKind::GlobalPool { kind } => StepOp::GlobalPool { kind: *kind },
                LayerKind::Act(a) => StepOp::Act(*a),
                LayerKind::BatchNorm {
                    mean,
                    var,
                    gamma,
                    beta,
                    eps,
                } => StepOp::BatchNorm {
                    mean,
                    var,
                    gamma,
                    beta,
                    eps: *eps,
                },
                LayerKind::Scale { scale, bias } => StepOp::Scale { scale, bias },
                LayerKind::Lrn {
                    local_size,
                    alpha,
                    beta,
                    k,
                } => StepOp::Lrn {
                    local_size: *local_size,
                    alpha: *alpha,
                    beta: *beta,
                    k: *k,
                },
                LayerKind::Eltwise { op } => StepOp::Eltwise(*op),
                LayerKind::Concat => StepOp::Concat,
                LayerKind::Softmax => StepOp::Softmax,
                LayerKind::Upsample { factor } => StepOp::Upsample { factor: *factor },
                LayerKind::Flatten => StepOp::Flatten,
                LayerKind::Slice { begin, len } => StepOp::Slice {
                    begin: *begin,
                    len: *len,
                },
                LayerKind::Dropout { .. } | LayerKind::Identity => StepOp::Forward,
            };
            let fp16_round = precision == Precision::Fp16
                && matches!(
                    node.kind,
                    LayerKind::Pool { .. }
                        | LayerKind::GlobalPool { .. }
                        | LayerKind::Act(_)
                        | LayerKind::BatchNorm { .. }
                        | LayerKind::Scale { .. }
                        | LayerKind::Lrn { .. }
                        | LayerKind::Eltwise { .. }
                );
            let move_input = matches!(op, StepOp::Forward | StepOp::Flatten)
                && liveness.dies_at(node.inputs[0], node.id);
            // Lane convs ingest the producer's layout directly; agnostic
            // nodes run in their own assigned format; everything else
            // (including graph-output agnostic nodes, which must hand back
            // CHW) reformats non-canonical inputs.
            let required = if lane_pref[node.id].is_some() {
                None
            } else if is_agnostic[node.id] && !is_out[node.id] {
                Some(layouts[node.id])
            } else {
                Some(Layout::Chw)
            };
            let converts = match required {
                None => Vec::new(),
                Some(req) => node
                    .inputs
                    .iter()
                    .enumerate()
                    .filter(|&(_, &input)| layouts[input] != req)
                    .map(|(idx, &input)| (idx, shapes[input], layouts[input], req))
                    .collect(),
            };
            steps.push(Step {
                node: node.id,
                inputs: &node.inputs,
                op,
                fp16_round,
                scrub: tainted[node.id],
                move_input,
                converts,
                phys_shape: phys_shapes[node.id],
                free_after: liveness.dead_after(node.id).to_vec(),
            });
        }

        crate::telemetry::record_plan_compile(engine.name(), &stats);
        let moves_per_execution = steps.iter().filter(|s| s.move_input).count() as u64;
        let layout_converts_per_execution = steps.iter().map(|s| s.converts.len() as u64).sum();
        Ok(Self {
            engine,
            steps,
            slot_of: slots.slot_of,
            slot_count: slots.slot_count,
            stats,
            layout_converts_per_execution,
            metrics: crate::telemetry::PlanMetrics::register(engine.name(), moves_per_execution),
        })
    }

    /// The engine this plan executes.
    pub fn engine(&self) -> &'e Engine {
        self.engine
    }

    /// Number of execution steps (compute and structural nodes).
    pub fn step_count(&self) -> usize {
        self.steps.len()
    }

    /// Static activation-memory footprint: peak live bytes under
    /// liveness-driven reuse vs the keep-everything total, and the slot
    /// count backing the arena.
    pub fn arena_stats(&self) -> ArenaStats {
        self.stats
    }

    /// Reformat (layout-convert) steps the plan executes per inference —
    /// the price of running lane kernels in their preferred blocked/NHWC
    /// formats. The assignment pass keeps this minimal by eliding every
    /// back-to-back convert pair it can.
    pub fn layout_converts_per_execution(&self) -> u64 {
        self.layout_converts_per_execution
    }

    /// Runs the plan on one input, bit-identical to
    /// [`crate::runtime::ExecutionContext::infer_unplanned`].
    ///
    /// `scratch` carries the value slots and buffer arena between calls;
    /// reusing one across a batch serves every allocation of the steady
    /// state from recycled buffers.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Execution`] on input shape mismatch.
    pub fn execute(
        &self,
        input: &Tensor,
        scratch: &mut PlanScratch,
    ) -> Result<Vec<Tensor>, EngineError> {
        let graph = self.engine.graph();
        if input.shape() != graph.input_shape() {
            return Err(EngineError::Execution(IrError::ShapeMismatch {
                node: "input".into(),
                detail: format!(
                    "expected {:?}, got {:?}",
                    graph.input_shape(),
                    input.shape()
                ),
            }));
        }
        // A non-finite input defeats the static taint analysis (NaN can then
        // appear anywhere); scrub every step like the interpreter does. The
        // prepared kernels make the matching dense-fallback choice.
        let scrub_all = input.as_slice().iter().any(|v| !v.is_finite());

        let PlanScratch { slots, arena } = scratch;
        if slots.len() < self.slot_count {
            slots.resize_with(self.slot_count, || None);
        }
        slots[self.slot_of[Graph::INPUT]] = Some(arena.alloc_copy(input));

        for step in &self.steps {
            // Materialize this step's reformat inputs into arena temps; the
            // op reads those in place of the producers' physical tensors.
            let mut tmps: Vec<(usize, Tensor)> = Vec::with_capacity(step.converts.len());
            for &(idx, shape, from, to) in &step.converts {
                let src = slots[self.slot_of[step.inputs[idx]]]
                    .as_ref()
                    .expect("producer computed");
                let mut buf = arena.take_buffer(to.physical_len(shape));
                layout::convert_into(src.as_slice(), shape, from, to, &mut buf);
                tmps.push((idx, Tensor::from_vec(to.physical_shape(shape), buf)));
            }
            let read = |i: usize| -> &Tensor {
                tmps.iter()
                    .find(|(idx, _)| *idx == i)
                    .map(|(_, t)| t)
                    .unwrap_or_else(|| {
                        slots[self.slot_of[step.inputs[i]]]
                            .as_ref()
                            .expect("producer computed")
                    })
            };
            let mut out = match &step.op {
                StepOp::Conv { params, prepared } => prepared.run(params, read(0), arena),
                StepOp::Fc {
                    prepared,
                    activation,
                } => prepared.run(read(0), *activation, arena),
                StepOp::Pool {
                    kind,
                    kernel,
                    stride,
                    pad,
                } => ops::pool2d(read(0), *kind, *kernel, *stride, *pad),
                StepOp::GlobalPool { kind } => ops::global_pool(read(0), *kind),
                StepOp::Act(a) => ops::activate(read(0), *a),
                StepOp::BatchNorm {
                    mean,
                    var,
                    gamma,
                    beta,
                    eps,
                } => ops::batch_norm(read(0), mean, var, gamma, beta, *eps),
                StepOp::Scale { scale, bias } => ops::scale(read(0), scale, bias),
                StepOp::Lrn {
                    local_size,
                    alpha,
                    beta,
                    k,
                } => ops::lrn(read(0), *local_size, *alpha, *beta, *k),
                StepOp::Eltwise(op) => {
                    let ins: Vec<&Tensor> = (0..step.inputs.len()).map(read).collect();
                    ops::eltwise(&ins, *op)
                }
                StepOp::Concat => {
                    let ins: Vec<&Tensor> = (0..step.inputs.len()).map(read).collect();
                    ops::concat(&ins)
                }
                StepOp::Softmax => ops::softmax(read(0)),
                StepOp::Upsample { factor } => ops::upsample(read(0), *factor),
                StepOp::Slice { begin, len } => ops::slice_channels(read(0), *begin, *len),
                StepOp::Flatten => self.forward(step, slots, arena, &mut tmps).into_flat(),
                StepOp::Forward => self.forward(step, slots, arena, &mut tmps),
            };
            for (_, t) in tmps {
                arena.release(t);
            }
            if step.fp16_round {
                apply_precision(&mut out, Precision::Fp16);
            }
            debug_assert_eq!(out.shape(), step.phys_shape);
            if step.scrub || scrub_all {
                // Keep NaN out of downstream argmaxes if an fp16 overflowed.
                if out.as_slice().iter().any(|v| v.is_nan()) {
                    out.map_inplace(|v| if v.is_nan() { 0.0 } else { v });
                }
            } else {
                debug_assert!(
                    !out.as_slice().iter().any(|v| v.is_nan()),
                    "pure-FP32 step {} produced NaN",
                    step.node
                );
            }
            let slot = self.slot_of[step.node];
            debug_assert!(
                slots[slot].is_none(),
                "slot still owned at step {}",
                step.node
            );
            slots[slot] = Some(out);
            for &dead in &step.free_after {
                if let Some(t) = slots[self.slot_of[dead]].take() {
                    arena.release(t);
                }
            }
        }

        let outputs = graph
            .outputs()
            .iter()
            .map(|&id| slots[self.slot_of[id]].take().expect("output computed"))
            .collect();
        // Anything still parked (e.g. an input no step consumed) recycles.
        for slot in slots.iter_mut() {
            if let Some(t) = slot.take() {
                arena.release(t);
            }
        }
        self.metrics.executions.inc();
        if self.metrics.moves_per_execution > 0 {
            self.metrics
                .zero_copy_forwards
                .add(self.metrics.moves_per_execution);
        }
        crate::telemetry::sync_fp16_redos();
        crate::telemetry::sync_lane_counters();
        crate::telemetry::sync_trace_counters();
        Ok(outputs)
    }

    /// Zero-copy forward for Identity/Dropout/Flatten: moves the input
    /// tensor when it dies at this step, copies through the arena otherwise.
    /// A reformatted input is always taken by move — the temp is owned, and
    /// the original stays in its slot for `free_after` to recycle.
    fn forward(
        &self,
        step: &Step<'e>,
        slots: &mut [Option<Tensor>],
        arena: &mut TensorArena,
        tmps: &mut Vec<(usize, Tensor)>,
    ) -> Tensor {
        if let Some(pos) = tmps.iter().position(|(idx, _)| *idx == 0) {
            return tmps.swap_remove(pos).1;
        }
        let slot = self.slot_of[step.inputs[0]];
        if step.move_input {
            slots[slot].take().expect("producer computed")
        } else {
            arena.alloc_copy(slots[slot].as_ref().expect("producer computed"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::Builder;
    use crate::config::BuilderConfig;
    use crate::runtime::ExecutionContext;
    use trtsim_gpu::device::DeviceSpec;
    use trtsim_util::rng::Pcg32;

    fn deep_chain(depth: usize) -> Graph {
        let mut g = Graph::new("chain", [3, 16, 16]);
        let mut prev = Graph::INPUT;
        for d in 0..depth {
            let ic = if d == 0 { 3 } else { 8 };
            prev = g.add_layer(
                format!("c{d}"),
                LayerKind::conv_seeded(8, ic, 3, 1, 1, d as u64),
                &[prev],
            );
        }
        g.mark_output(prev);
        g
    }

    fn rich_net() -> Graph {
        let mut g = Graph::new("rich", [3, 16, 16]);
        let c1 = g.add_layer(
            "c1",
            LayerKind::conv_seeded(8, 3, 3, 1, 1, 0),
            &[Graph::INPUT],
        );
        let p = g.add_layer(
            "p",
            LayerKind::Pool {
                kind: PoolKind::Max,
                kernel: 2,
                stride: 2,
                pad: 0,
            },
            &[c1],
        );
        let a = g.add_layer("a", LayerKind::conv_seeded(8, 8, 3, 1, 1, 1), &[p]);
        let b = g.add_layer("b", LayerKind::conv_seeded(8, 8, 3, 1, 1, 2), &[p]);
        let e = g.add_layer("e", LayerKind::Eltwise { op: EltwiseOp::Sum }, &[a, b]);
        let drop = g.add_layer("d", LayerKind::Dropout { rate: 0.5 }, &[e]);
        let gp = g.add_layer(
            "gp",
            LayerKind::GlobalPool {
                kind: PoolKind::Avg,
            },
            &[drop],
        );
        let flat = g.add_layer("flat", LayerKind::Flatten, &[gp]);
        let fc = g.add_layer("fc", LayerKind::fc_seeded(10, 8, 3), &[flat]);
        let sm = g.add_layer("sm", LayerKind::Softmax, &[fc]);
        g.mark_output(sm);
        g
    }

    fn build(graph: &Graph, seed: u64) -> Engine {
        Builder::new(
            DeviceSpec::xavier_nx(),
            BuilderConfig::default().with_build_seed(seed),
        )
        .build(graph)
        .unwrap()
    }

    fn random_input(shape: [usize; 3], seed: u64) -> Tensor {
        let mut rng = Pcg32::seed_from_u64(seed);
        Tensor::from_fn(shape, |_, _, _| rng.normal() as f32)
    }

    fn assert_bit_identical(engine: &Engine, input: &Tensor) {
        let ctx = ExecutionContext::new(engine, DeviceSpec::xavier_nx());
        let want = ctx.infer_unplanned(input).unwrap();
        let plan = InferencePlan::compile(engine).unwrap();
        let mut scratch = PlanScratch::new();
        for pass in 0..2 {
            let got = plan.execute(input, &mut scratch).unwrap();
            assert_eq!(got.len(), want.len());
            for (g, w) in got.iter().zip(&want) {
                assert_eq!(g, w, "plan output differs on pass {pass}");
            }
        }
    }

    #[test]
    fn plan_matches_interpreter_on_rich_graph() {
        let engine = build(&rich_net(), 3);
        assert_bit_identical(&engine, &random_input([3, 16, 16], 11));
    }

    #[test]
    fn plan_matches_interpreter_on_deep_chain() {
        let engine = build(&deep_chain(6), 4);
        assert_bit_identical(&engine, &random_input([3, 16, 16], 12));
    }

    #[test]
    fn plan_matches_interpreter_on_non_finite_input() {
        let engine = build(&rich_net(), 5);
        let mut input = random_input([3, 16, 16], 13);
        *input.at_mut(1, 3, 3) = f32::NAN;
        *input.at_mut(2, 8, 8) = f32::INFINITY;
        let ctx = ExecutionContext::new(&engine, DeviceSpec::xavier_nx());
        let want = ctx.infer_unplanned(&input).unwrap();
        let plan = InferencePlan::compile(&engine).unwrap();
        let got = plan.execute(&input, &mut PlanScratch::new()).unwrap();
        for (g, w) in got.iter().zip(&want) {
            assert_eq!(g, w);
        }
    }

    #[test]
    fn plan_rejects_wrong_input_shape() {
        let engine = build(&rich_net(), 6);
        let plan = InferencePlan::compile(&engine).unwrap();
        assert!(plan
            .execute(&Tensor::zeros([3, 8, 8]), &mut PlanScratch::new())
            .is_err());
    }

    #[test]
    fn deep_chain_arena_peak_is_far_below_total() {
        let engine = build(&deep_chain(10), 7);
        let plan = InferencePlan::compile(&engine).unwrap();
        let stats = plan.arena_stats();
        assert!(stats.peak_live_bytes < stats.total_activation_bytes);
        assert!(
            stats.footprint_ratio() <= 0.5,
            "deep chain should reuse buffers: {}",
            stats.footprint_ratio()
        );
        // Size-classed slots provision close to the liveness peak: only a
        // producer/consumer pair is live, so three slots of one class each
        // stay mostly full.
        assert!(
            stats.utilization() >= 0.4,
            "slots should be provisioned near the peak: {}",
            stats.utilization()
        );
        assert!(stats.slot_count <= 3, "{}", stats.slot_count);
    }

    #[test]
    fn lane_convs_get_non_canonical_interior_layouts() {
        // Interior convs of a chain feed other lane convs, so the
        // assignment stores them blocked (CHWc8) or NHWC; the output conv
        // always hands back canonical CHW.
        let engine = build(&deep_chain(6), 4);
        let plan = InferencePlan::compile(&engine).unwrap();
        let mut non_chw = 0;
        for step in &plan.steps {
            if let StepOp::Conv { prepared, .. } = &step.op {
                let (_, out) = prepared.layouts();
                if out != Layout::Chw {
                    non_chw += 1;
                }
            }
        }
        let last = plan.steps.last().unwrap();
        assert_eq!(last.phys_shape, engine.shapes()[last.node]);
        assert!(
            non_chw >= 1,
            "interior convs should run in a preferred layout"
        );
        // Lane convs ingest the producer's format directly, so a pure conv
        // chain needs no reformat steps at all.
        assert_eq!(plan.layout_converts_per_execution(), 0);
    }

    #[test]
    fn mixed_layout_eltwise_reformats_and_stays_bit_identical() {
        // One eltwise arm comes from a pool (CHW-only), the other from a
        // conv that may run blocked; the joined value feeds another conv so
        // the assignment has a reason to keep lanes hot across the sum.
        let mut g = Graph::new("mixed", [3, 16, 16]);
        let c1 = g.add_layer(
            "c1",
            LayerKind::conv_seeded(8, 3, 3, 1, 1, 0),
            &[Graph::INPUT],
        );
        let p = g.add_layer(
            "p",
            LayerKind::Pool {
                kind: PoolKind::Max,
                kernel: 3,
                stride: 1,
                pad: 1,
            },
            &[c1],
        );
        let a = g.add_layer("a", LayerKind::conv_seeded(8, 8, 3, 1, 1, 1), &[p]);
        let e = g.add_layer("e", LayerKind::Eltwise { op: EltwiseOp::Sum }, &[p, a]);
        let c2 = g.add_layer("c2", LayerKind::conv_seeded(8, 8, 3, 1, 1, 2), &[e]);
        g.mark_output(c2);
        let engine = build(&g, 17);
        let plan = InferencePlan::compile(&engine).unwrap();
        let before = trtsim_ir::layout::layout_convert_events();
        assert_bit_identical(&engine, &random_input([3, 16, 16], 23));
        // Every reformat the plan schedules really executes (other tests
        // may bump the process-wide counter concurrently, so >=).
        assert!(
            trtsim_ir::layout::layout_convert_events() - before
                >= 2 * plan.layout_converts_per_execution(),
            "scheduled reformats should run on both passes"
        );
    }

    #[test]
    fn steady_state_recycles_buffers() {
        let engine = build(&deep_chain(6), 8);
        let plan = InferencePlan::compile(&engine).unwrap();
        let mut scratch = PlanScratch::new();
        let input = random_input([3, 16, 16], 14);
        plan.execute(&input, &mut scratch).unwrap();
        let fresh_after_warmup = scratch.arena().fresh_allocs();
        let recycled_before = scratch.arena().recycled_allocs();
        plan.execute(&input, &mut scratch).unwrap();
        assert!(
            scratch.arena().recycled_allocs() > recycled_before,
            "second pass should hit the arena"
        );
        // The conv slots all recycle; only non-arena ops may allocate fresh.
        assert!(
            scratch.arena().fresh_allocs() <= fresh_after_warmup + 1,
            "{} fresh allocs after warmup",
            scratch.arena().fresh_allocs()
        );
    }

    #[test]
    fn forwarding_moves_instead_of_cloning() {
        // Dropout/Flatten survive only with optimization passes disabled.
        let mut g = Graph::new("fwd", [4, 8, 8]);
        let c = g.add_layer(
            "c",
            LayerKind::conv_seeded(4, 4, 3, 1, 1, 0),
            &[Graph::INPUT],
        );
        let d = g.add_layer("d", LayerKind::Dropout { rate: 0.5 }, &[c]);
        let f = g.add_layer("f", LayerKind::Flatten, &[d]);
        g.mark_output(f);
        let engine = Builder::new(
            DeviceSpec::xavier_nx(),
            BuilderConfig::default()
                .with_build_seed(9)
                .without_graph_passes(),
        )
        .build(&g)
        .unwrap();
        let plan = InferencePlan::compile(&engine).unwrap();
        let forwards = plan
            .steps
            .iter()
            .filter(|s| matches!(s.op, StepOp::Forward | StepOp::Flatten))
            .count();
        let moved = plan.steps.iter().filter(|s| s.move_input).count();
        assert!(forwards >= 2, "expected surviving forward steps");
        assert_eq!(moved, forwards, "single-consumer forwards should move");
        let ctx = ExecutionContext::new(&engine, DeviceSpec::xavier_nx());
        let input = random_input([4, 8, 8], 15);
        assert_eq!(
            plan.execute(&input, &mut PlanScratch::new()).unwrap(),
            ctx.infer_unplanned(&input).unwrap()
        );
    }
}
