//! A memoization cache for autotuning timing queries — the simulator's
//! analog of TensorRT's `ITimingCache`.
//!
//! Real TensorRT spends most of its build time measuring candidate tactics on
//! the device, and ships a timing cache so later builds can reuse those
//! measurements. The simulator's equivalent of the *expensive, repeatable*
//! part of a measurement is the deterministic roofline query
//! [`trtsim_gpu::timing::kernel_time_us`]; the *per-measurement* part — the
//! multiplicative DVFS/thermal noise each build draws fresh — is exactly what
//! the paper shows is **not** cacheable (Tables XII/XIII: rebuilds pick
//! different kernels). The cache therefore memoizes only the deterministic
//! component, keyed by kernel descriptor and device timing fingerprint, and
//! the autotuner keeps drawing noise from its per-node RNG streams on every
//! build. Build-to-build non-determinism is preserved by construction: a
//! warm cache returns bit-identical times to a cold one, so it can never
//! change which tactic wins.
//!
//! # Hit-path cost
//!
//! A cache hit must be strictly cheaper than re-running the analytic timing
//! model, or a warm cache slows builds down (`BENCH_build.json` caught
//! exactly that regression twice: first when the key was a field-by-field
//! struct hashed twice through SipHash with a fresh `String` clone per
//! query, then again when `-C target-cpu=native` made the roofline model
//! cheap enough that even an uncontended `Mutex<HashMap>` probe lost to
//! recomputation). The hot path is now lock-free and allocation-free: each
//! kernel carries its 128-bit content fingerprint inline
//! ([`KernelDesc::content_fingerprint`], computed once and cached in the
//! descriptor), a query mixes it with the device's [`timing_fingerprint`]
//! in a handful of multiplies, and probes a fixed-capacity open-addressing
//! table of atomic slots — a hit is three plain loads (claim word, publish
//! word, value) on one cache line, with no atomic read-modify-write
//! anywhere on the read path. Callers timing many kernels against one
//! device should hold a [`CacheSession`], which computes the device
//! fingerprint once. Keying by fingerprint instead of the full descriptor
//! trades a ~2⁻¹²⁸ collision probability (vanishing against the few
//! thousand distinct kernels a zoo build times) for a hit that is reliably
//! cheaper than the roofline recomputation; `bench_build` asserts the
//! speedup stays above 1.1.
//!
//! The table never grows or evicts: each of the [`TimingCache::SHARDS`]
//! shards holds a power-of-two slot array sized ~7x above a full zoo
//! build's distinct-kernel count. If a probe run exhausts its window the
//! entry simply stays uncached — every value is deterministic, so a
//! "dropped" entry costs a recomputation, never a wrong answer. The same
//! argument makes every concurrency race here benign: a slot is claimed
//! with one CAS on the key's high word, the value is published before the
//! key's low word (release/acquire paired), and a reader that catches a
//! half-published slot just recomputes the identical value.
//!
//! [`timing_fingerprint`]: trtsim_gpu::device::DeviceSpec::timing_fingerprint
//!
//! The cache is `Arc`-shareable across builders and threads (atomic
//! interior mutability), and reports hit/miss counters as
//! [`trtsim_metrics::CacheStats`].

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

use trtsim_gpu::device::DeviceSpec;
use trtsim_gpu::kernel::KernelDesc;
use trtsim_gpu::timing::kernel_time_us;
use trtsim_metrics::CacheStats;

/// Shard count; a small power of two. With the lock-free table the shards no
/// longer arbitrate locks — they segment the slot array and give the
/// `bench_build` report its hit-spread counters.
const SHARDS: usize = 16;

/// Slots per shard (power of two). 16 shards x 2048 slots = 32,768 slots
/// against the ~4,600 distinct kernels a full zoo build times (~14% load),
/// so linear probe runs stay short and [`PROBE_LIMIT`] is effectively never
/// hit.
const SHARD_SLOTS: usize = 2048;

/// Longest linear probe run before a query gives up and stays uncached.
const PROBE_LIMIT: usize = 32;

/// Inline fingerprint of one timing query: the kernel's cached content
/// fingerprint (every field [`kernel_time_us`] reads) mixed with the device
/// fingerprint — two multiply-rotate rounds, no re-fold of the descriptor.
#[inline]
fn query_fingerprint(kernel: &KernelDesc, device_fp: u64) -> u128 {
    let k = kernel.content_fingerprint();
    let lo = ((k as u64) ^ device_fp)
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .rotate_left(29);
    let hi = (((k >> 64) as u64).wrapping_add(device_fp)).wrapping_mul(0xff51_afd7_ed55_8ccd);
    (u128::from(hi) << 64) | u128::from(lo ^ (k >> 64) as u64)
}

/// Splits a query fingerprint into the slot protocol's two key words. Zero is
/// reserved in both: in the high word it means "slot empty", in the low word
/// "value not yet published", so a genuinely zero word is nudged to 1. That
/// folds a 2⁻⁶⁴ sliver of the key space onto a neighbor — on top of the
/// already-accepted 2⁻¹²⁸ fingerprint collision odds, not a new risk class.
#[inline]
fn key_words(fp: u128) -> (u64, u64) {
    let hi = ((fp >> 64) as u64).max(1);
    let lo = (fp as u64).max(1);
    (hi, lo)
}

/// One open-addressing entry. 24 bytes, so a probe touches a single cache
/// line and the whole three-load hit sequence stays cheaper than re-running
/// the analytic model.
#[derive(Debug)]
struct Slot {
    /// Claim word: 0 = empty; a writer takes the slot with one CAS here.
    key_hi: AtomicU64,
    /// Publish word: 0 = claimed but value not yet visible. Written with
    /// `Release` *after* `time_bits`, so a reader that observes the key's
    /// low word here (via `Acquire`) is guaranteed to see the value.
    key_lo: AtomicU64,
    /// The memoized [`kernel_time_us`] result, as `f64::to_bits`.
    time_bits: AtomicU64,
}

/// One shard: a fixed slot array probed lock-free. Misses publish with a
/// single CAS; hits perform no atomic read-modify-write at all.
#[derive(Debug)]
struct Shard {
    slots: Box<[Slot]>,
}

impl Shard {
    fn new() -> Self {
        Self {
            slots: (0..SHARD_SLOTS)
                .map(|_| Slot {
                    key_hi: AtomicU64::new(0),
                    key_lo: AtomicU64::new(0),
                    time_bits: AtomicU64::new(0),
                })
                .collect(),
        }
    }

    /// Slot index within the shard. The shard itself is picked from the
    /// fingerprint's low 4 bits, so the probe base uses the bits above them.
    #[inline]
    fn base(fp: u128) -> usize {
        ((fp as u64 >> 4) as usize) & (SHARD_SLOTS - 1)
    }

    /// Lock-free lookup: three plain loads per probed slot.
    #[inline]
    fn get(&self, fp: u128) -> Option<f64> {
        let (hi, lo) = key_words(fp);
        let base = Self::base(fp);
        for i in 0..PROBE_LIMIT {
            let slot = &self.slots[(base + i) & (SHARD_SLOTS - 1)];
            let h = slot.key_hi.load(Ordering::Relaxed);
            if h == 0 {
                return None; // empty slot ends the probe run
            }
            if h == hi && slot.key_lo.load(Ordering::Acquire) == lo {
                return Some(f64::from_bits(slot.time_bits.load(Ordering::Relaxed)));
            }
        }
        None
    }

    /// Publishes `us` under `fp`, returning `true` if this call inserted a
    /// new entry (vs. losing a race to a duplicate, or giving up because the
    /// probe window was full — both harmless, since the value is
    /// deterministic and a future miss just recomputes it).
    fn publish(&self, fp: u128, us: f64) -> bool {
        let (hi, lo) = key_words(fp);
        let base = Self::base(fp);
        for i in 0..PROBE_LIMIT {
            let slot = &self.slots[(base + i) & (SHARD_SLOTS - 1)];
            let mut h = slot.key_hi.load(Ordering::Relaxed);
            if h == 0 {
                match slot
                    .key_hi
                    .compare_exchange(0, hi, Ordering::Relaxed, Ordering::Relaxed)
                {
                    Ok(_) => {
                        slot.time_bits.store(us.to_bits(), Ordering::Relaxed);
                        slot.key_lo.store(lo, Ordering::Release);
                        return true;
                    }
                    Err(taken) => h = taken, // lost the claim; re-examine
                }
            }
            if h == hi {
                // Same high word: either our key (a racing duplicate) or a
                // high-word collision. Wait out the claimer's two stores so
                // the keys can actually be compared; the window is two plain
                // stores wide, so this resolves in a handful of spins.
                let mut l = slot.key_lo.load(Ordering::Acquire);
                while l == 0 {
                    std::hint::spin_loop();
                    l = slot.key_lo.load(Ordering::Acquire);
                }
                if l == lo {
                    return false; // duplicate already published
                }
            }
        }
        false // probe window exhausted: entry stays uncached
    }

    /// Forgets every entry. Safe concurrently with queries: a reader racing
    /// the wipe either sees the old (still-correct) mapping or a miss.
    fn wipe(&self) {
        for slot in self.slots.iter() {
            slot.key_lo.store(0, Ordering::Relaxed);
            slot.key_hi.store(0, Ordering::Relaxed);
        }
    }

    fn len(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| {
                s.key_hi.load(Ordering::Relaxed) != 0 && s.key_lo.load(Ordering::Acquire) != 0
            })
            .count()
    }
}

/// Memoizes the deterministic component of tactic timing measurements across
/// builds (TensorRT `ITimingCache` analog). See the module docs for what is
/// cached versus re-drawn, and for the hit-path cost budget.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use trtsim_core::TimingCache;
/// use trtsim_gpu::device::DeviceSpec;
/// use trtsim_gpu::kernel::KernelDesc;
///
/// let cache = Arc::new(TimingCache::new());
/// let k = KernelDesc::new("k").grid(24, 256).flops(1_000_000);
/// let nx = DeviceSpec::xavier_nx();
/// let cold = cache.time_us(&k, &nx);
/// let warm = cache.time_us(&k, &nx);
/// assert_eq!(cold, warm); // bit-identical, not just close
/// let stats = cache.stats();
/// assert_eq!((stats.hits, stats.misses), (1, 1));
/// ```
#[derive(Debug)]
pub struct TimingCache {
    shards: [Shard; SHARDS],
    hits: AtomicU64,
    misses: AtomicU64,
    /// Fast-path hits served per shard: how evenly the fingerprint low bits
    /// spread the hot probes across the shard slot arrays.
    shard_hits: [AtomicU64; SHARDS],
}

impl Default for TimingCache {
    fn default() -> Self {
        Self::new()
    }
}

impl TimingCache {
    /// Number of slot-array shards backing the cache (and the length of
    /// [`TimingCache::shard_hits`]).
    pub const SHARDS: usize = SHARDS;

    /// Creates an empty cache.
    pub fn new() -> Self {
        Self {
            shards: std::array::from_fn(|_| Shard::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            shard_hits: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// The deterministic execution time of `kernel` on `device` in µs —
    /// served from the cache when present, computed (and remembered)
    /// otherwise. Always bit-identical to
    /// [`trtsim_gpu::timing::kernel_time_us`].
    ///
    /// Callers querying many kernels against one device should prefer
    /// [`TimingCache::session`], which computes the device fingerprint once.
    pub fn time_us(&self, kernel: &KernelDesc, device: &DeviceSpec) -> f64 {
        self.session(device).time_us(kernel)
    }

    /// Starts a shard-local fast-path session against one device: the
    /// device's timing fingerprint is folded once up front and hit/miss
    /// counters batch locally (flushed when the session drops), so each
    /// [`CacheSession::time_us`] costs one cached kernel fingerprint, a
    /// two-round mix, and one lock-free slot probe.
    pub fn session<'c>(&'c self, device: &'c DeviceSpec) -> CacheSession<'c> {
        CacheSession {
            cache: self,
            device,
            device_fp: device.timing_fingerprint(),
            misses: Cell::new(0),
            shard_hits: std::array::from_fn(|_| Cell::new(0)),
        }
    }

    /// Hit/miss counters since construction (or the last [`clear`]).
    ///
    /// [`clear`]: TimingCache::clear
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    /// Per-shard counts of warm fast-path hits since construction (or the
    /// last [`clear`]). Their sum equals [`stats`]`.hits`; the spread shows
    /// how evenly the query fingerprints balance the shard slot arrays — the
    /// `bench_build` report records this next to the warm/cold speedup.
    ///
    /// [`clear`]: TimingCache::clear
    /// [`stats`]: TimingCache::stats
    pub fn shard_hits(&self) -> [u64; SHARDS] {
        std::array::from_fn(|i| self.shard_hits[i].load(Ordering::Relaxed))
    }

    /// Number of distinct `(kernel, device)` entries held.
    pub fn len(&self) -> usize {
        self.shards.iter().map(Shard::len).sum()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops all entries and resets the counters.
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.wipe();
        }
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        for shard in &self.shard_hits {
            shard.store(0, Ordering::Relaxed);
        }
    }
}

/// A [`TimingCache`] handle bound to one device (see
/// [`TimingCache::session`]); the autotuner holds one per measured node.
///
/// Hit/miss counts accumulate in plain cells and flush to the cache's
/// atomic counters (and the telemetry registry) when the session drops —
/// the total hit count is the sum of the per-shard cells, so a hit costs
/// exactly one cell bump — and the per-query hot path performs no atomic
/// read-modify-writes at all.
pub struct CacheSession<'c> {
    cache: &'c TimingCache,
    device: &'c DeviceSpec,
    device_fp: u64,
    misses: Cell<u64>,
    shard_hits: [Cell<u64>; SHARDS],
}

impl CacheSession<'_> {
    /// The deterministic execution time of `kernel` on the session's device,
    /// µs — the cache's hot path.
    pub fn time_us(&self, kernel: &KernelDesc) -> f64 {
        let fp = query_fingerprint(kernel, self.device_fp);
        let index = (fp as u64 as usize) % SHARDS;
        let shard = &self.cache.shards[index];
        if let Some(us) = shard.get(fp) {
            let per_shard = &self.shard_hits[index];
            per_shard.set(per_shard.get() + 1);
            return us;
        }
        // A racing duplicate computation publishes the same deterministic
        // value, so whichever write wins the slot is correct.
        let us = kernel_time_us(kernel, self.device);
        self.misses.set(self.misses.get() + 1);
        shard.publish(fp, us);
        us
    }
}

impl Drop for CacheSession<'_> {
    fn drop(&mut self) {
        let hits: u64 = self.shard_hits.iter().map(Cell::get).sum();
        let misses = self.misses.get();
        if hits == 0 && misses == 0 {
            return;
        }
        // Registry counters are process-lifetime monotone; the per-cache
        // `hits`/`misses` fields stay the resettable view `stats()` reports.
        let (hit_metric, miss_metric) = crate::telemetry::timing_cache_counters();
        self.cache.hits.fetch_add(hits, Ordering::Relaxed);
        self.cache.misses.fetch_add(misses, Ordering::Relaxed);
        for (cell, total) in self.shard_hits.iter().zip(&self.cache.shard_hits) {
            let n = cell.get();
            if n > 0 {
                total.fetch_add(n, Ordering::Relaxed);
            }
        }
        hit_metric.add(hits);
        miss_metric.add(misses);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trtsim_gpu::device::Platform;
    use trtsim_gpu::kernel::Precision;

    fn kernel(i: u64) -> KernelDesc {
        // Compute-bound so clock pinning visibly changes its time.
        KernelDesc::new(format!("k{i}"))
            .grid(6 + i, 256)
            .flops(1_000_000_000 + i)
            .dram_bytes(1 << 10)
            .precision(Precision::Fp16, true)
            .efficiency(0.6)
    }

    #[test]
    fn cached_time_is_bit_identical_to_model() {
        let cache = TimingCache::new();
        let nx = DeviceSpec::xavier_nx();
        for i in 0..8 {
            let k = kernel(i);
            let direct = kernel_time_us(&k, &nx);
            assert_eq!(cache.time_us(&k, &nx), direct);
            assert_eq!(cache.time_us(&k, &nx), direct); // warm hit
        }
        let stats = cache.stats();
        assert_eq!(stats.misses, 8);
        assert_eq!(stats.hits, 8);
        assert_eq!(cache.len(), 8);
        let shard_hits = cache.shard_hits();
        assert_eq!(shard_hits.iter().sum::<u64>(), stats.hits);
        assert!(
            shard_hits.iter().filter(|&&h| h > 0).count() > 1,
            "8 distinct fingerprints should spread over shards: {shard_hits:?}"
        );
        cache.clear();
        assert_eq!(cache.shard_hits().iter().sum::<u64>(), 0);
    }

    #[test]
    fn session_matches_ad_hoc_queries() {
        let cache = TimingCache::new();
        let nx = DeviceSpec::xavier_nx();
        let session = cache.session(&nx);
        for i in 0..8 {
            assert_eq!(session.time_us(&kernel(i)), kernel_time_us(&kernel(i), &nx));
        }
        assert_eq!(cache.len(), 8);
    }

    #[test]
    fn device_changes_split_entries() {
        let cache = TimingCache::new();
        let k = kernel(0);
        let nx = DeviceSpec::xavier_nx();
        let pinned = DeviceSpec::pinned_clock(Platform::Nx);
        let fast = cache.time_us(&k, &nx);
        let slow = cache.time_us(&k, &pinned);
        assert!(slow > fast, "pinned clock must time slower");
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().misses, 2);
    }

    #[test]
    fn name_material_cannot_alias_across_boundaries() {
        // The byte fold includes the length, so these must key differently
        // even though their concatenated field material is similar.
        let cache = TimingCache::new();
        let nx = DeviceSpec::xavier_nx();
        let a = KernelDesc::new("ab").grid(6, 256).flops(1_000);
        let b = KernelDesc::new("a").grid(6, 256).flops(1_000);
        cache.time_us(&a, &nx);
        cache.time_us(&b, &nx);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn concurrent_lookups_agree() {
        let cache = std::sync::Arc::new(TimingCache::new());
        let nx = DeviceSpec::xavier_nx();
        let times =
            trtsim_util::pool::map_indexed(8, 64, |i| cache.time_us(&kernel(i as u64 % 4), &nx));
        for i in 0..64 {
            assert_eq!(times[i], times[i % 4]);
        }
        // Duplicate in-flight computations may each count a miss, but every
        // entry is deduplicated.
        assert_eq!(cache.len(), 4);
    }

    #[test]
    fn clear_resets_everything() {
        let cache = TimingCache::new();
        let nx = DeviceSpec::xavier_nx();
        cache.time_us(&kernel(0), &nx);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.stats(), CacheStats::default());
    }
}
