//! A memoization cache for autotuning timing queries — the simulator's
//! analog of TensorRT's `ITimingCache`.
//!
//! Real TensorRT spends most of its build time measuring candidate tactics on
//! the device, and ships a timing cache so later builds can reuse those
//! measurements. The simulator's equivalent of the *expensive, repeatable*
//! part of a measurement is the deterministic roofline query
//! [`trtsim_gpu::timing::kernel_time_us`]; the *per-measurement* part — the
//! multiplicative DVFS/thermal noise each build draws fresh — is exactly what
//! the paper shows is **not** cacheable (Tables XII/XIII: rebuilds pick
//! different kernels). The cache therefore memoizes only the deterministic
//! component, keyed by kernel descriptor and device timing fingerprint, and
//! the autotuner keeps drawing noise from its per-node RNG streams on every
//! build. Build-to-build non-determinism is preserved by construction: a
//! warm cache returns bit-identical times to a cold one, so it can never
//! change which tactic wins.
//!
//! # Hit-path cost
//!
//! A cache hit must be strictly cheaper than re-running the analytic timing
//! model, or a warm cache slows builds down (`BENCH_build.json` caught
//! exactly that regression when the key was a field-by-field struct hashed
//! twice through SipHash with a fresh `String` clone per query). The hot
//! path is now allocation-free: each kernel carries its 128-bit content
//! fingerprint inline ([`KernelDesc::content_fingerprint`], computed once
//! and cached in the descriptor), a query mixes it with the device's
//! [`timing_fingerprint`] in a handful of multiplies, picks a shard from
//! the low bits, and probes a `HashMap<u128, f64>` under an identity hasher
//! — no string re-fold, no allocation, one uncontended lock. Callers timing
//! many kernels against one device should hold a [`CacheSession`], which
//! computes the device fingerprint once. Keying by fingerprint instead of
//! the full descriptor trades a ~2⁻¹²⁸ collision probability (vanishing
//! against the few thousand distinct kernels a zoo build times) for a hit
//! that is reliably cheaper than the roofline recomputation; `bench_build`
//! asserts the speedup stays above 1.
//!
//! [`timing_fingerprint`]: trtsim_gpu::device::DeviceSpec::timing_fingerprint
//!
//! The cache is `Arc`-shareable across builders and threads (sharded
//! interior mutability), and reports hit/miss counters as
//! [`trtsim_metrics::CacheStats`].

use std::cell::Cell;
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use trtsim_gpu::device::DeviceSpec;
use trtsim_gpu::kernel::KernelDesc;
use trtsim_gpu::timing::kernel_time_us;
use trtsim_metrics::CacheStats;

/// Shard count; a small power of two keeps lock contention negligible for the
/// worker-pool sizes the builder uses (≤ machine cores).
const SHARDS: usize = 16;

/// Inline fingerprint of one timing query: the kernel's cached content
/// fingerprint (every field [`kernel_time_us`] reads) mixed with the device
/// fingerprint — two multiply-rotate rounds, no re-fold of the descriptor.
#[inline]
fn query_fingerprint(kernel: &KernelDesc, device_fp: u64) -> u128 {
    let k = kernel.content_fingerprint();
    let lo = ((k as u64) ^ device_fp)
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .rotate_left(29);
    let hi = (((k >> 64) as u64).wrapping_add(device_fp)).wrapping_mul(0xff51_afd7_ed55_8ccd);
    (u128::from(hi) << 64) | u128::from(lo ^ (k >> 64) as u64)
}

/// The keys are already uniform 128-bit fingerprints; hashing them again
/// through SipHash would be pure overhead, so the map hasher just passes the
/// low word through.
#[derive(Default)]
struct IdentityHasher(u64);

impl Hasher for IdentityHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Only u128 keys reach this hasher; fold whatever arrives anyway so
        // the impl stays total.
        for chunk in bytes.chunks(8) {
            let mut tail = [0u8; 8];
            tail[..chunk.len()].copy_from_slice(chunk);
            self.0 ^= u64::from_le_bytes(tail);
        }
    }

    #[inline]
    fn write_u128(&mut self, v: u128) {
        self.0 = v as u64;
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }
}

type Shard = Mutex<HashMap<u128, f64, BuildHasherDefault<IdentityHasher>>>;

/// Memoizes the deterministic component of tactic timing measurements across
/// builds (TensorRT `ITimingCache` analog). See the module docs for what is
/// cached versus re-drawn, and for the hit-path cost budget.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use trtsim_core::TimingCache;
/// use trtsim_gpu::device::DeviceSpec;
/// use trtsim_gpu::kernel::KernelDesc;
///
/// let cache = Arc::new(TimingCache::new());
/// let k = KernelDesc::new("k").grid(24, 256).flops(1_000_000);
/// let nx = DeviceSpec::xavier_nx();
/// let cold = cache.time_us(&k, &nx);
/// let warm = cache.time_us(&k, &nx);
/// assert_eq!(cold, warm); // bit-identical, not just close
/// let stats = cache.stats();
/// assert_eq!((stats.hits, stats.misses), (1, 1));
/// ```
#[derive(Debug)]
pub struct TimingCache {
    shards: [Shard; SHARDS],
    hits: AtomicU64,
    misses: AtomicU64,
}

impl Default for TimingCache {
    fn default() -> Self {
        Self::new()
    }
}

impl TimingCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self {
            shards: std::array::from_fn(|_| Mutex::new(HashMap::default())),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// The deterministic execution time of `kernel` on `device` in µs —
    /// served from the cache when present, computed (and remembered)
    /// otherwise. Always bit-identical to
    /// [`trtsim_gpu::timing::kernel_time_us`].
    ///
    /// Callers querying many kernels against one device should prefer
    /// [`TimingCache::session`], which computes the device fingerprint once.
    pub fn time_us(&self, kernel: &KernelDesc, device: &DeviceSpec) -> f64 {
        self.session(device).time_us(kernel)
    }

    /// Starts a shard-local fast-path session against one device: the
    /// device's timing fingerprint is folded once up front and hit/miss
    /// counters batch locally (flushed when the session drops), so each
    /// [`CacheSession::time_us`] costs one cached kernel fingerprint, a
    /// two-round mix, and one sharded map probe.
    pub fn session<'c>(&'c self, device: &'c DeviceSpec) -> CacheSession<'c> {
        CacheSession {
            cache: self,
            device,
            device_fp: device.timing_fingerprint(),
            hits: Cell::new(0),
            misses: Cell::new(0),
        }
    }

    /// Hit/miss counters since construction (or the last [`clear`]).
    ///
    /// [`clear`]: TimingCache::clear
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    /// Number of distinct `(kernel, device)` entries held.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("timing cache poisoned").len())
            .sum()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops all entries and resets the counters.
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.lock().expect("timing cache poisoned").clear();
        }
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
    }
}

/// A [`TimingCache`] handle bound to one device (see
/// [`TimingCache::session`]); the autotuner holds one per measured node.
///
/// Hit/miss counts accumulate in plain cells and flush to the cache's
/// atomic counters (and the telemetry registry) when the session drops, so
/// the per-query hot path performs no atomic read-modify-writes beyond the
/// shard lock.
pub struct CacheSession<'c> {
    cache: &'c TimingCache,
    device: &'c DeviceSpec,
    device_fp: u64,
    hits: Cell<u64>,
    misses: Cell<u64>,
}

impl CacheSession<'_> {
    /// The deterministic execution time of `kernel` on the session's device,
    /// µs — the cache's hot path.
    pub fn time_us(&self, kernel: &KernelDesc) -> f64 {
        let fp = query_fingerprint(kernel, self.device_fp);
        let shard = &self.cache.shards[(fp as u64 as usize) % SHARDS];
        if let Some(&us) = shard.lock().expect("timing cache poisoned").get(&fp) {
            self.hits.set(self.hits.get() + 1);
            return us;
        }
        // Compute outside the lock; a racing duplicate computation writes the
        // same deterministic value, so last-write-wins is harmless.
        let us = kernel_time_us(kernel, self.device);
        self.misses.set(self.misses.get() + 1);
        shard.lock().expect("timing cache poisoned").insert(fp, us);
        us
    }
}

impl Drop for CacheSession<'_> {
    fn drop(&mut self) {
        let (hits, misses) = (self.hits.get(), self.misses.get());
        if hits == 0 && misses == 0 {
            return;
        }
        // Registry counters are process-lifetime monotone; the per-cache
        // `hits`/`misses` fields stay the resettable view `stats()` reports.
        let (hit_metric, miss_metric) = crate::telemetry::timing_cache_counters();
        self.cache.hits.fetch_add(hits, Ordering::Relaxed);
        self.cache.misses.fetch_add(misses, Ordering::Relaxed);
        hit_metric.add(hits);
        miss_metric.add(misses);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trtsim_gpu::device::Platform;
    use trtsim_gpu::kernel::Precision;

    fn kernel(i: u64) -> KernelDesc {
        // Compute-bound so clock pinning visibly changes its time.
        KernelDesc::new(format!("k{i}"))
            .grid(6 + i, 256)
            .flops(1_000_000_000 + i)
            .dram_bytes(1 << 10)
            .precision(Precision::Fp16, true)
            .efficiency(0.6)
    }

    #[test]
    fn cached_time_is_bit_identical_to_model() {
        let cache = TimingCache::new();
        let nx = DeviceSpec::xavier_nx();
        for i in 0..8 {
            let k = kernel(i);
            let direct = kernel_time_us(&k, &nx);
            assert_eq!(cache.time_us(&k, &nx), direct);
            assert_eq!(cache.time_us(&k, &nx), direct); // warm hit
        }
        let stats = cache.stats();
        assert_eq!(stats.misses, 8);
        assert_eq!(stats.hits, 8);
        assert_eq!(cache.len(), 8);
    }

    #[test]
    fn session_matches_ad_hoc_queries() {
        let cache = TimingCache::new();
        let nx = DeviceSpec::xavier_nx();
        let session = cache.session(&nx);
        for i in 0..8 {
            assert_eq!(session.time_us(&kernel(i)), kernel_time_us(&kernel(i), &nx));
        }
        assert_eq!(cache.len(), 8);
    }

    #[test]
    fn device_changes_split_entries() {
        let cache = TimingCache::new();
        let k = kernel(0);
        let nx = DeviceSpec::xavier_nx();
        let pinned = DeviceSpec::pinned_clock(Platform::Nx);
        let fast = cache.time_us(&k, &nx);
        let slow = cache.time_us(&k, &pinned);
        assert!(slow > fast, "pinned clock must time slower");
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().misses, 2);
    }

    #[test]
    fn name_material_cannot_alias_across_boundaries() {
        // The byte fold includes the length, so these must key differently
        // even though their concatenated field material is similar.
        let cache = TimingCache::new();
        let nx = DeviceSpec::xavier_nx();
        let a = KernelDesc::new("ab").grid(6, 256).flops(1_000);
        let b = KernelDesc::new("a").grid(6, 256).flops(1_000);
        cache.time_us(&a, &nx);
        cache.time_us(&b, &nx);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn concurrent_lookups_agree() {
        let cache = std::sync::Arc::new(TimingCache::new());
        let nx = DeviceSpec::xavier_nx();
        let times =
            trtsim_util::pool::map_indexed(8, 64, |i| cache.time_us(&kernel(i as u64 % 4), &nx));
        for i in 0..64 {
            assert_eq!(times[i], times[i % 4]);
        }
        // Duplicate in-flight computations may each count a miss, but every
        // entry is deduplicated.
        assert_eq!(cache.len(), 4);
    }

    #[test]
    fn clear_resets_everything() {
        let cache = TimingCache::new();
        let nx = DeviceSpec::xavier_nx();
        cache.time_us(&kernel(0), &nx);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.stats(), CacheStats::default());
    }
}
