//! A memoization cache for autotuning timing queries — the simulator's
//! analog of TensorRT's `ITimingCache`.
//!
//! Real TensorRT spends most of its build time measuring candidate tactics on
//! the device, and ships a timing cache so later builds can reuse those
//! measurements. The simulator's equivalent of the *expensive, repeatable*
//! part of a measurement is the deterministic roofline query
//! [`trtsim_gpu::timing::kernel_time_us`]; the *per-measurement* part — the
//! multiplicative DVFS/thermal noise each build draws fresh — is exactly what
//! the paper shows is **not** cacheable (Tables XII/XIII: rebuilds pick
//! different kernels). The cache therefore memoizes only the deterministic
//! component, keyed by kernel descriptor and device timing fingerprint, and
//! the autotuner keeps drawing noise from its per-node RNG streams on every
//! build. Build-to-build non-determinism is preserved by construction: a
//! warm cache returns bit-identical times to a cold one, so it can never
//! change which tactic wins.
//!
//! The cache is `Arc`-shareable across builders and threads (sharded
//! interior mutability), and reports hit/miss counters as
//! [`trtsim_metrics::CacheStats`].

use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use trtsim_gpu::device::DeviceSpec;
use trtsim_gpu::kernel::{KernelDesc, Precision};
use trtsim_gpu::timing::kernel_time_us;
use trtsim_metrics::CacheStats;

/// Shard count; a small power of two keeps lock contention negligible for the
/// worker-pool sizes the builder uses (≤ machine cores).
const SHARDS: usize = 16;

/// Everything that distinguishes one timing query from another: the full
/// kernel descriptor (floats by bit pattern) plus the device's timing
/// fingerprint.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
struct TimingKey {
    name: String,
    grid_blocks: u64,
    threads_per_block: u32,
    blocks_per_sm: u32,
    flops: u64,
    dram_bytes: u64,
    l2_bytes: u64,
    shared_bytes: u64,
    l2_working_set_bytes: u64,
    precision: Precision,
    uses_tensor_cores: bool,
    compute_efficiency_bits: u64,
    device: u64,
}

impl TimingKey {
    fn new(kernel: &KernelDesc, device: &DeviceSpec) -> Self {
        Self {
            name: kernel.name.clone(),
            grid_blocks: kernel.grid_blocks,
            threads_per_block: kernel.threads_per_block,
            blocks_per_sm: kernel.blocks_per_sm,
            flops: kernel.flops,
            dram_bytes: kernel.dram_bytes,
            l2_bytes: kernel.l2_bytes,
            shared_bytes: kernel.shared_bytes,
            l2_working_set_bytes: kernel.l2_working_set_bytes,
            precision: kernel.precision,
            uses_tensor_cores: kernel.uses_tensor_cores,
            compute_efficiency_bits: kernel.compute_efficiency.to_bits(),
            device: device.timing_fingerprint(),
        }
    }

    fn shard(&self) -> usize {
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        self.hash(&mut hasher);
        (hasher.finish() as usize) % SHARDS
    }
}

/// Memoizes the deterministic component of tactic timing measurements across
/// builds (TensorRT `ITimingCache` analog). See the module docs for what is
/// cached versus re-drawn.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use trtsim_core::TimingCache;
/// use trtsim_gpu::device::DeviceSpec;
/// use trtsim_gpu::kernel::KernelDesc;
///
/// let cache = Arc::new(TimingCache::new());
/// let k = KernelDesc::new("k").grid(24, 256).flops(1_000_000);
/// let nx = DeviceSpec::xavier_nx();
/// let cold = cache.time_us(&k, &nx);
/// let warm = cache.time_us(&k, &nx);
/// assert_eq!(cold, warm); // bit-identical, not just close
/// let stats = cache.stats();
/// assert_eq!((stats.hits, stats.misses), (1, 1));
/// ```
#[derive(Debug)]
pub struct TimingCache {
    shards: [Mutex<HashMap<TimingKey, f64>>; SHARDS],
    hits: AtomicU64,
    misses: AtomicU64,
}

impl Default for TimingCache {
    fn default() -> Self {
        Self::new()
    }
}

impl TimingCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self {
            shards: std::array::from_fn(|_| Mutex::new(HashMap::new())),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// The deterministic execution time of `kernel` on `device` in µs —
    /// served from the cache when present, computed (and remembered)
    /// otherwise. Always bit-identical to
    /// [`trtsim_gpu::timing::kernel_time_us`].
    pub fn time_us(&self, kernel: &KernelDesc, device: &DeviceSpec) -> f64 {
        let key = TimingKey::new(kernel, device);
        let shard = &self.shards[key.shard()];
        // Registry counters are process-lifetime monotone; the per-cache
        // `hits`/`misses` fields stay the resettable view `stats()` reports.
        let (hit_metric, miss_metric) = crate::telemetry::timing_cache_counters();
        if let Some(&us) = shard.lock().expect("timing cache poisoned").get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            hit_metric.inc();
            return us;
        }
        // Compute outside the lock; a racing duplicate computation writes the
        // same deterministic value, so last-write-wins is harmless.
        let us = kernel_time_us(kernel, device);
        self.misses.fetch_add(1, Ordering::Relaxed);
        miss_metric.inc();
        shard.lock().expect("timing cache poisoned").insert(key, us);
        us
    }

    /// Hit/miss counters since construction (or the last [`clear`]).
    ///
    /// [`clear`]: TimingCache::clear
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    /// Number of distinct `(kernel, device)` entries held.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("timing cache poisoned").len())
            .sum()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops all entries and resets the counters.
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.lock().expect("timing cache poisoned").clear();
        }
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trtsim_gpu::device::Platform;

    fn kernel(i: u64) -> KernelDesc {
        // Compute-bound so clock pinning visibly changes its time.
        KernelDesc::new(format!("k{i}"))
            .grid(6 + i, 256)
            .flops(1_000_000_000 + i)
            .dram_bytes(1 << 10)
            .precision(Precision::Fp16, true)
            .efficiency(0.6)
    }

    #[test]
    fn cached_time_is_bit_identical_to_model() {
        let cache = TimingCache::new();
        let nx = DeviceSpec::xavier_nx();
        for i in 0..8 {
            let k = kernel(i);
            let direct = kernel_time_us(&k, &nx);
            assert_eq!(cache.time_us(&k, &nx), direct);
            assert_eq!(cache.time_us(&k, &nx), direct); // warm hit
        }
        let stats = cache.stats();
        assert_eq!(stats.misses, 8);
        assert_eq!(stats.hits, 8);
        assert_eq!(cache.len(), 8);
    }

    #[test]
    fn device_changes_split_entries() {
        let cache = TimingCache::new();
        let k = kernel(0);
        let nx = DeviceSpec::xavier_nx();
        let pinned = DeviceSpec::pinned_clock(Platform::Nx);
        let fast = cache.time_us(&k, &nx);
        let slow = cache.time_us(&k, &pinned);
        assert!(slow > fast, "pinned clock must time slower");
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().misses, 2);
    }

    #[test]
    fn concurrent_lookups_agree() {
        let cache = std::sync::Arc::new(TimingCache::new());
        let nx = DeviceSpec::xavier_nx();
        let times =
            trtsim_util::pool::map_indexed(8, 64, |i| cache.time_us(&kernel(i as u64 % 4), &nx));
        for i in 0..64 {
            assert_eq!(times[i], times[i % 4]);
        }
        // Duplicate in-flight computations may each count a miss, but every
        // entry is deduplicated.
        assert_eq!(cache.len(), 4);
    }

    #[test]
    fn clear_resets_everything() {
        let cache = TimingCache::new();
        let nx = DeviceSpec::xavier_nx();
        cache.time_us(&kernel(0), &nx);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.stats(), CacheStats::default());
    }
}
