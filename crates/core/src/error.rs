//! Engine error types.

use std::fmt;

use trtsim_ir::IrError;

/// Errors from building, serializing, or running an engine.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// The source network is invalid.
    InvalidNetwork(IrError),
    /// A layer had no implementable tactic under the configured policy.
    NoTactic {
        /// Offending layer name.
        node: String,
    },
    /// INT8 was requested without calibration data.
    MissingCalibration,
    /// A serialized plan is corrupt or from an incompatible version.
    MalformedPlan(String),
    /// Numeric execution failed.
    Execution(IrError),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::InvalidNetwork(e) => write!(f, "invalid network: {e}"),
            EngineError::NoTactic { node } => {
                write!(
                    f,
                    "no tactic can implement layer `{node}` under this policy"
                )
            }
            EngineError::MissingCalibration => {
                write!(f, "INT8 mode requires a calibration set")
            }
            EngineError::MalformedPlan(detail) => write!(f, "malformed plan: {detail}"),
            EngineError::Execution(e) => write!(f, "execution failed: {e}"),
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::InvalidNetwork(e) | EngineError::Execution(e) => Some(e),
            _ => None,
        }
    }
}

impl From<IrError> for EngineError {
    fn from(e: IrError) -> Self {
        EngineError::InvalidNetwork(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = EngineError::InvalidNetwork(IrError::NoOutputs);
        assert!(e.to_string().contains("invalid network"));
        assert!(std::error::Error::source(&e).is_some());
        assert!(std::error::Error::source(&EngineError::MissingCalibration).is_none());
    }

    #[test]
    fn send_sync() {
        fn check<T: Send + Sync>() {}
        check::<EngineError>();
    }
}
