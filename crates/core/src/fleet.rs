//! Fleet-scale serving: N heterogeneous simulated Jetsons behind a router.
//!
//! The paper characterizes a *single* device's serving behaviour (the
//! multi-stream ceiling of Figures 3/4, the batching knee of §VI); the
//! ROADMAP north-star is a production deployment — many NX/AGX boards
//! behind a request router. This module runs that architecture on the
//! simulator:
//!
//! ```text
//!    open-loop trace (trtsim-data ArrivalTrace or any timestamp list)
//!            │  Fleet::submit(model, frame, arrival_us)
//!            ▼
//!        ┌────────┐  least-estimated-finish dispatch over the model's
//!        │ router │  replicas; full queues are skipped; when every
//!        └────────┘  replica is full the request is REJECTED (admission
//!          │  │  │   control), never silently dropped
//!          ▼  ▼  ▼
//!        device: one DeviceSpec + one GpuTimeline each; replicas on the
//!        same device share its timeline, so co-located models genuinely
//!        contend. Every replica is a full [`InferenceServer`] (bounded
//!        queue, dynamic batcher, worker streams).
//! ```
//!
//! * **Replica placement** — the builder places engines on named devices;
//!   one model may have replicas on any subset of the fleet
//!   ([`FleetBuilder::replica`]).
//! * **Saturation-aware dispatch** — each replica's per-frame service cost
//!   is estimated up front from its [`EngineProfile`] (worker parallelism
//!   clamped to the paper's Equation-1 thread ceiling), and the router
//!   picks the replica with the least estimated finish time
//!   `(queue_depth + 1) × service_us`, so a slow or saturated device stops
//!   attracting load as soon as its backlog catches up.
//! * **Admission control** — [`Fleet::submit`] tries replicas in score
//!   order with non-blocking submission; only when *every* replica's
//!   bounded queue is full does it return [`ServingError::QueueFull`] and
//!   count a fleet-level rejection.
//! * **Observability** — every replica server publishes the standard
//!   serving series with `device=` (and optional `tenant=`) labels, the
//!   router adds `trtsim_fleet_*` counters, and
//!   [`FleetConfig::telemetry_addr`] binds one scrape endpoint for the
//!   whole fleet. [`FleetStats`] aggregates per-device and fleet-wide
//!   p50/p90/p99 plus reject/drop accounting.
//!
//! [`EngineProfile`]: trtsim_gpu::contention::EngineProfile

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use trtsim_gpu::contention::max_threads;
use trtsim_gpu::device::DeviceSpec;
use trtsim_gpu::timeline::GpuTimeline;
use trtsim_metrics::{Counter, LatencyPercentiles, Registry, TelemetryServer};

use crate::engine::Engine;
use crate::predict::{EngineFeatures, LatencyModel};
use crate::reqtrace::{
    FlightRecorder, PhaseKind, PhaseSpan, RequestTrace, TraceCtx, TraceIdGen, TraceOptions,
    TraceOutcome,
};
use crate::runtime::ExecutionContext;
use crate::serving::{InferenceServer, ServerConfig, ServerStats, ServingError, ServingLabels};

/// Fleet-wide knobs.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// When set, binds one [`TelemetryServer`] scrape endpoint
    /// (`GET /metrics`, `GET /metrics.json`) covering every device in the
    /// fleet. Port 0 picks a free port; see [`Fleet::telemetry_addr`].
    pub telemetry_addr: Option<std::net::SocketAddr>,
    /// When set, the router scores replicas with one fleet-shared online
    /// [`LatencyModel`] (predicted batch-1 finish time under each replica's
    /// live queue signals) instead of the static
    /// `(queue_depth + 1) × service_us` heuristic. The model trains from
    /// every replica's completions and the router falls back to the
    /// heuristic while it is cold.
    pub predictive: bool,
    /// Completions the shared model needs before it is warm (see
    /// [`LatencyModel::with_min_obs`]).
    pub predictor_min_obs: u64,
    /// Scores within this relative margin of the best count as a tie, which
    /// the affinity tie-break resolves toward the replica that served this
    /// (model, tenant) most recently.
    pub affinity_epsilon: f64,
    /// Seed for the shared model's deterministic weight initialisation.
    pub predictor_seed: u64,
    /// Request-trace flight-recorder knobs, shared by every replica: one
    /// fleet-wide ring so a request traced on any device lands in the same
    /// `GET /traces` index.
    pub trace: TraceOptions,
}

impl Default for FleetConfig {
    fn default() -> Self {
        Self {
            telemetry_addr: None,
            predictive: false,
            predictor_min_obs: 64,
            affinity_epsilon: 0.05,
            predictor_seed: 0x1eaf,
            trace: TraceOptions::default(),
        }
    }
}

impl FleetConfig {
    /// Enables predictive replica scoring (see [`FleetConfig::predictive`]).
    pub fn with_predictive(mut self, on: bool) -> Self {
        self.predictive = on;
        self
    }

    /// Sets the shared model's warm-up threshold.
    pub fn with_predictor_min_obs(mut self, n: u64) -> Self {
        self.predictor_min_obs = n;
        self
    }

    /// Sets the affinity tie margin (relative, e.g. `0.05` = 5%).
    pub fn with_affinity_epsilon(mut self, eps: f64) -> Self {
        self.affinity_epsilon = eps;
        self
    }

    /// Sets the shared model's seed.
    pub fn with_predictor_seed(mut self, seed: u64) -> Self {
        self.predictor_seed = seed;
        self
    }

    /// Sets the fleet-shared request-trace flight-recorder options.
    pub fn with_trace(mut self, trace: TraceOptions) -> Self {
        self.trace = trace;
        self
    }
}

/// One device of the fleet: a named board with its own simulated timeline.
#[derive(Debug)]
struct FleetDevice {
    name: String,
    spec: DeviceSpec,
    timeline: Arc<Mutex<GpuTimeline>>,
}

/// One placed engine replica: a full [`InferenceServer`] on its device's
/// shared timeline, plus the router's dispatch bookkeeping.
#[derive(Debug)]
struct Replica {
    device: usize,
    model: String,
    tenant: Option<String>,
    server: InferenceServer,
    /// Estimated per-frame service time, µs: single-stream latency divided
    /// by the worker parallelism, the latter clamped to the Equation-1
    /// thread ceiling so an over-provisioned worker count cannot make a
    /// saturated device look faster than it is.
    service_us: f64,
    /// Frames the router sent here (accepted submissions).
    routed: AtomicU64,
    routed_metric: Counter,
    /// Static (engine, device) features the predictive score evaluates the
    /// shared model against.
    features: EngineFeatures,
}

/// Declarative fleet assembly: name devices, place replicas, start.
///
/// # Examples
///
/// ```no_run
/// use trtsim_core::fleet::{FleetBuilder, FleetConfig};
/// use trtsim_core::serving::ServerConfig;
/// use trtsim_gpu::device::{DeviceSpec, Platform};
/// # fn demo(engine_nx: &trtsim_core::Engine, engine_agx: &trtsim_core::Engine)
/// #     -> Result<(), trtsim_core::serving::ServingError> {
/// let fleet = FleetBuilder::new()
///     .device("nx0", DeviceSpec::max_clock(Platform::Nx))
///     .device("agx0", DeviceSpec::max_clock(Platform::Agx))
///     .replica("nx0", engine_nx, ServerConfig::default())?
///     .replica("agx0", engine_agx, ServerConfig::default())?
///     .start(FleetConfig::default())?;
/// fleet.submit(engine_nx.name(), 0, 0.0)?;
/// let stats = fleet.drain();
/// println!("{} completed, p99 {:.0} µs", stats.completed, stats.latency.p99_us);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct FleetBuilder {
    devices: Vec<(String, DeviceSpec)>,
    // (device name, engine, per-replica server config, tenant)
    replicas: Vec<(String, Engine, ServerConfig, Option<String>)>,
}

impl FleetBuilder {
    /// An empty fleet.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a named device. Names must be unique; [`FleetBuilder::start`]
    /// rejects duplicates.
    pub fn device(mut self, name: impl Into<String>, spec: DeviceSpec) -> Self {
        self.devices.push((name.into(), spec));
        self
    }

    /// Places a replica of `engine` on the named device.
    ///
    /// # Errors
    ///
    /// Returns [`ServingError::InvalidConfig`] if the device name is
    /// unknown (devices must be declared first).
    pub fn replica(
        self,
        device: &str,
        engine: &Engine,
        config: ServerConfig,
    ) -> Result<Self, ServingError> {
        self.replica_for_tenant(device, engine, config, None)
    }

    /// [`FleetBuilder::replica`] dedicated to a named tenant: the replica's
    /// serving series additionally carry a `tenant=` label.
    ///
    /// # Errors
    ///
    /// Returns [`ServingError::InvalidConfig`] if the device name is
    /// unknown.
    pub fn replica_for_tenant(
        mut self,
        device: &str,
        engine: &Engine,
        config: ServerConfig,
        tenant: Option<&str>,
    ) -> Result<Self, ServingError> {
        if !self.devices.iter().any(|(name, _)| name == device) {
            return Err(ServingError::InvalidConfig(format!(
                "replica of `{}` placed on unknown device `{device}`",
                engine.name()
            )));
        }
        self.replicas.push((
            device.to_string(),
            engine.clone(),
            config,
            tenant.map(str::to_string),
        ));
        Ok(self)
    }

    /// Validates the topology and starts every replica server.
    ///
    /// # Errors
    ///
    /// Returns [`ServingError::InvalidConfig`] for duplicate device names,
    /// an empty fleet, or a replica whose [`ServerConfig`] fails its own
    /// validation; [`ServingError::Telemetry`] if the scrape endpoint
    /// cannot bind.
    pub fn start(self, config: FleetConfig) -> Result<Fleet, ServingError> {
        if self.devices.is_empty() {
            return Err(ServingError::InvalidConfig(
                "a fleet needs at least one device".into(),
            ));
        }
        if self.replicas.is_empty() {
            return Err(ServingError::InvalidConfig(
                "a fleet needs at least one replica".into(),
            ));
        }
        let mut devices: Vec<FleetDevice> = Vec::with_capacity(self.devices.len());
        for (name, spec) in self.devices {
            if devices.iter().any(|d| d.name == name) {
                return Err(ServingError::InvalidConfig(format!(
                    "duplicate device name `{name}`"
                )));
            }
            devices.push(FleetDevice {
                timeline: Arc::new(Mutex::new(GpuTimeline::new(spec.clone()))),
                name,
                spec,
            });
        }
        let reg = Registry::global();
        // One model for the whole fleet: every replica's completions train
        // it, so a device class the router has barely used still benefits
        // from what similar replicas observed.
        let shared_model = config.predictive.then(|| {
            Arc::new(
                LatencyModel::new(config.predictor_seed).with_min_obs(config.predictor_min_obs),
            )
        });
        // One flight recorder and one id mint for the whole fleet: a request
        // owns exactly one trace id no matter which replica serves it, and
        // every device's retained traces share one `GET /traces` index.
        let recorder = Arc::new(FlightRecorder::new(config.trace));
        let idgen = Arc::new(TraceIdGen::new(trtsim_util::derive_seed(
            config.predictor_seed,
            "reqtrace",
            0,
        )));
        let mut replicas = Vec::with_capacity(self.replicas.len());
        let mut by_model: HashMap<String, Vec<usize>> = HashMap::new();
        for (device_name, engine, server_config, tenant) in self.replicas {
            let d = devices
                .iter()
                .position(|dev| dev.name == device_name)
                .expect("checked in replica()");
            let device = &devices[d];
            let mut labels = ServingLabels::device(device.name.clone());
            if let Some(tenant) = &tenant {
                labels = labels.with_tenant(tenant.clone());
            }
            let server = InferenceServer::start_on_timeline(
                &engine,
                &device.spec,
                server_config,
                &labels,
                Arc::clone(&device.timeline),
                shared_model.clone(),
                Some((Arc::clone(&recorder), Arc::clone(&idgen))),
            )?;
            let features =
                EngineFeatures::measure(&engine, &device.spec, server_config.timing.host_glue_us);
            // Service-cost estimate for the router: one profiled inference
            // on a scratch context (does not touch the serving timeline).
            let ctx = ExecutionContext::new(&engine, device.spec.clone());
            let profile = ctx.profile(server_config.timing.host_glue_us);
            let (ceiling, _) = max_threads(&profile, &device.spec);
            let parallel = (server_config.workers as f64).min(ceiling.max(1) as f64);
            let service_us = profile.latency_us() / parallel.max(1.0);
            let model = engine.name().to_string();
            let routed_metric = reg.counter(
                "trtsim_fleet_routed_total",
                "Frames the fleet router dispatched, by model and device",
                &[("model", &model), ("device", &device.name)],
            );
            by_model
                .entry(model.clone())
                .or_default()
                .push(replicas.len());
            replicas.push(Replica {
                device: d,
                model,
                tenant,
                server,
                service_us,
                routed: AtomicU64::new(0),
                routed_metric,
                features,
            });
        }
        let predicted_metric = reg.counter(
            "trtsim_fleet_predicted_dispatch_total",
            "Dispatches scored by the warm shared latency model",
            &[],
        );
        let heuristic_metric = reg.counter(
            "trtsim_fleet_heuristic_dispatch_total",
            "Dispatches scored by the static (queue_depth+1) x service_us heuristic",
            &[],
        );
        let affinity_metric = reg.counter(
            "trtsim_fleet_affinity_hits_total",
            "Score ties the affinity tie-break resolved toward the most recent replica",
            &[],
        );
        let exporter = match config.telemetry_addr {
            Some(addr) => Some(
                TelemetryServer::bind_with_routes(
                    addr,
                    Arc::clone(Registry::global()),
                    recorder.route_handler(),
                )
                .map_err(|e| ServingError::Telemetry(format!("bind {addr}: {e}")))?,
            ),
            None => None,
        };
        Ok(Fleet {
            devices,
            replicas,
            by_model,
            submitted: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            predicted_dispatches: AtomicU64::new(0),
            heuristic_dispatches: AtomicU64::new(0),
            affinity_hits: AtomicU64::new(0),
            predicted_metric,
            heuristic_metric,
            affinity_metric,
            model: shared_model,
            affinity_epsilon: config.affinity_epsilon,
            affinity: Mutex::new(HashMap::new()),
            admission: Mutex::new(HashMap::new()),
            exporter,
            recorder,
            idgen,
        })
    }
}

/// A running fleet. See the [module docs](self) for the architecture.
#[derive(Debug)]
pub struct Fleet {
    devices: Vec<FleetDevice>,
    replicas: Vec<Replica>,
    by_model: HashMap<String, Vec<usize>>,
    submitted: AtomicU64,
    rejected: AtomicU64,
    predicted_dispatches: AtomicU64,
    heuristic_dispatches: AtomicU64,
    affinity_hits: AtomicU64,
    predicted_metric: Counter,
    heuristic_metric: Counter,
    affinity_metric: Counter,
    /// Fleet-shared online latency model, present when
    /// [`FleetConfig::predictive`] is set.
    model: Option<Arc<LatencyModel>>,
    affinity_epsilon: f64,
    /// (model, tenant) → index of the replica that served it most recently,
    /// the affinity tie-break's memory.
    affinity: Mutex<HashMap<(String, String), usize>>,
    /// (model, tenant) → (submitted, rejected) counter handles, cached so
    /// the registry lock is taken once per label set, not per request.
    admission: Mutex<HashMap<(String, String), (Counter, Counter)>>,
    exporter: Option<TelemetryServer>,
    /// Fleet-shared flight recorder every replica records into.
    recorder: Arc<FlightRecorder>,
    /// Fleet-wide trace-id mint, so ids are unique across replicas.
    idgen: Arc<TraceIdGen>,
}

impl Fleet {
    /// Routes one request for `model` arriving at simulated `arrival_us`
    /// under the default tenant.
    ///
    /// # Errors
    ///
    /// Returns [`ServingError::QueueFull`] when every replica's queue is
    /// full (counted as a fleet rejection), or
    /// [`ServingError::InvalidConfig`] when no replica serves `model`.
    pub fn submit(&self, model: &str, frame: u64, arrival_us: f64) -> Result<(), ServingError> {
        self.submit_as("default", model, frame, arrival_us)
    }

    /// [`Fleet::submit`] attributed to a named tenant (per-tenant admission
    /// counters).
    ///
    /// # Errors
    ///
    /// Same as [`Fleet::submit`].
    pub fn submit_as(
        &self,
        tenant: &str,
        model: &str,
        frame: u64,
        arrival_us: f64,
    ) -> Result<(), ServingError> {
        let Some(candidates) = self.by_model.get(model) else {
            return Err(ServingError::InvalidConfig(format!(
                "no replica serves model `{model}`"
            )));
        };
        self.submitted.fetch_add(1, Ordering::Relaxed);
        let (submitted, rejected) = self.admission_counters(model, tenant);
        submitted.inc();
        // Predicted finish time when the shared model is warm: batch-1 p50
        // under each replica's live queue signals, which folds in batch
        // effects, backlog and busy streams the static heuristic cannot see.
        // Cold (or non-predictive) fleets score with the original
        // least-estimated-finish heuristic: backlog depth × per-frame
        // service cost. Either way a saturated device's score stays high,
        // steering new load toward devices with headroom.
        let warm_model = self.model.as_ref().filter(|m| m.is_warm()).map(Arc::as_ref);
        let score = |r: &Replica| -> f64 {
            warm_model
                .and_then(|m| m.predict(&r.features, 1, &r.server.queue_signals(Some(arrival_us))))
                .map_or_else(
                    || (r.server.queue_depth() as f64 + 1.0) * r.service_us,
                    |p| p.p50_us,
                )
        };
        let mut order: Vec<usize> = candidates.clone();
        order.sort_by(|&a, &b| score(&self.replicas[a]).total_cmp(&score(&self.replicas[b])));
        // Affinity tie-break: when the top scores are within epsilon, prefer
        // the replica that served this (model, tenant) most recently —
        // sticky routing where the scores cannot tell replicas apart.
        let affinity_key = (model.to_string(), tenant.to_string());
        let mut affinity_choice = None;
        if order.len() >= 2 {
            let prev = self
                .affinity
                .lock()
                .expect("affinity map")
                .get(&affinity_key)
                .copied();
            if let Some(prev) = prev {
                let best = score(&self.replicas[order[0]]);
                let tie =
                    |idx: usize| score(&self.replicas[idx]) <= best * (1.0 + self.affinity_epsilon);
                let ties = order.iter().take_while(|&&i| tie(i)).count();
                if ties >= 2 {
                    if let Some(pos) = order[..ties].iter().position(|&i| i == prev) {
                        order.remove(pos);
                        order.insert(0, prev);
                        affinity_choice = Some(prev);
                    }
                }
            }
        }
        // One trace context per request, minted at fleet admission. Each
        // placement attempt re-stamps the attempted replica's score and
        // predicted latency, so the trace that survives carries the numbers
        // of the replica that actually served (or finally refused) it.
        let mut ctx = TraceCtx::new(self.idgen.mint());
        let mut deadline_blocked = false;
        for &r in &order {
            let replica = &self.replicas[r];
            let pred = warm_model.and_then(|m| {
                m.predict(
                    &replica.features,
                    1,
                    &replica.server.queue_signals(Some(arrival_us)),
                )
            });
            ctx.router_score = pred.as_ref().map_or_else(
                || (replica.server.queue_depth() as f64 + 1.0) * replica.service_us,
                |p| p.p50_us,
            );
            if let Some(p) = &pred {
                ctx.predicted_p50_us = p.p50_us;
                ctx.predicted_p99_us = p.p99_us;
            }
            match replica.server.try_submit_traced(frame, arrival_us, ctx) {
                Ok(()) => {
                    replica.routed.fetch_add(1, Ordering::Relaxed);
                    replica.routed_metric.inc();
                    if warm_model.is_some() {
                        self.predicted_dispatches.fetch_add(1, Ordering::Relaxed);
                        self.predicted_metric.inc();
                    } else {
                        self.heuristic_dispatches.fetch_add(1, Ordering::Relaxed);
                        self.heuristic_metric.inc();
                    }
                    if affinity_choice == Some(r) {
                        self.affinity_hits.fetch_add(1, Ordering::Relaxed);
                        self.affinity_metric.inc();
                    }
                    self.affinity
                        .lock()
                        .expect("affinity map")
                        .insert(affinity_key, r);
                    return Ok(());
                }
                Err(ServingError::QueueFull) => continue,
                Err(ServingError::DeadlineUnmeetable) => {
                    deadline_blocked = true;
                    continue;
                }
                Err(e) => return Err(e),
            }
        }
        self.rejected.fetch_add(1, Ordering::Relaxed);
        rejected.inc();
        // Deadline-blocked everywhere reads differently from merely full:
        // the caller learns shedding was a latency decision, not capacity.
        let outcome = if deadline_blocked {
            TraceOutcome::DeadlineRejected
        } else {
            TraceOutcome::QueueRejected
        };
        // The fleet-level rejection trace: no replica took the frame, so it
        // carries no device — just the admission marker and the last
        // attempted replica's score, preserving one-trace-per-request.
        self.recorder.record(RequestTrace {
            id: ctx.id,
            frame,
            model: Arc::from(model),
            device: None,
            tenant: Some(Arc::from(tenant)),
            worker: None,
            stream: None,
            batch_seq: None,
            batch_size: None,
            span_lo: None,
            span_hi: None,
            arrival_us,
            done_us: arrival_us,
            outcome,
            phases: vec![PhaseSpan {
                kind: PhaseKind::Admission,
                start_us: arrival_us,
                end_us: arrival_us,
            }],
            router_score: ctx.router_score,
            predicted_p50_us: ctx.predicted_p50_us,
            predicted_p99_us: ctx.predicted_p99_us,
        });
        Err(if deadline_blocked {
            ServingError::DeadlineUnmeetable
        } else {
            ServingError::QueueFull
        })
    }

    /// The fleet-shared flight recorder holding retained request traces
    /// from every replica (see [`crate::reqtrace`]).
    pub fn flight_recorder(&self) -> Arc<FlightRecorder> {
        Arc::clone(&self.recorder)
    }

    /// The fleet-shared online latency model, when
    /// [`FleetConfig::predictive`] is set.
    pub fn latency_model(&self) -> Option<Arc<LatencyModel>> {
        self.model.clone()
    }

    /// Replays a sorted arrival-timestamp list (e.g. a
    /// `trtsim_data::traffic::ArrivalTrace`) for one model: frame ids are
    /// `first_frame..`, one per timestamp. Returns `(accepted, rejected)`.
    pub fn replay(&self, model: &str, arrivals_us: &[f64], first_frame: u64) -> (u64, u64) {
        let mut accepted = 0;
        let mut rejected = 0;
        for (i, &t) in arrivals_us.iter().enumerate() {
            match self.submit(model, first_frame + i as u64, t) {
                Ok(()) => accepted += 1,
                Err(_) => rejected += 1,
            }
        }
        (accepted, rejected)
    }

    /// Largest simulated clock over the fleet's device timelines, µs — the
    /// pacing reference an open-loop replay driver synchronizes against so
    /// live queue depths track *simulated* congestion rather than how fast
    /// the host CPU drains the pipeline.
    pub fn simulated_clock_us(&self) -> f64 {
        self.devices
            .iter()
            .map(|d| d.timeline.lock().expect("timeline lock").elapsed_us())
            .fold(0.0, f64::max)
    }

    /// Frames currently queued (accepted but not yet dispatched to a
    /// worker) across every replica.
    pub fn backlog(&self) -> usize {
        self.replicas.iter().map(|r| r.server.queue_depth()).sum()
    }

    /// Frames anywhere in the system — queued, held by a batcher, or in
    /// service — across every replica. While this is non-zero the simulated
    /// clock advances on its own; at zero a paced driver must submit the
    /// next frame to move time forward.
    pub fn in_system(&self) -> usize {
        self.replicas.iter().map(|r| r.server.pending()).sum()
    }

    /// Device names, in declaration order.
    pub fn device_names(&self) -> Vec<&str> {
        self.devices.iter().map(|d| d.name.as_str()).collect()
    }

    /// The bound address of the fleet-wide telemetry endpoint, when
    /// [`FleetConfig::telemetry_addr`] was set.
    pub fn telemetry_addr(&self) -> Option<std::net::SocketAddr> {
        self.exporter.as_ref().map(TelemetryServer::local_addr)
    }

    /// Stops admission on every replica and waits until each accepted frame
    /// is served, then aggregates the final statistics.
    pub fn drain(mut self) -> FleetStats {
        let replicas: Vec<ReplicaStats> = self
            .replicas
            .drain(..)
            .map(|replica| ReplicaStats {
                device: self.devices[replica.device].name.clone(),
                model: replica.model,
                tenant: replica.tenant,
                routed: replica.routed.into_inner(),
                stats: replica.server.drain(),
            })
            .collect();
        self.exporter.take();
        aggregate(
            replicas,
            self.submitted.load(Ordering::Relaxed),
            self.rejected.load(Ordering::Relaxed),
            self.predicted_dispatches.load(Ordering::Relaxed),
            self.heuristic_dispatches.load(Ordering::Relaxed),
            self.affinity_hits.load(Ordering::Relaxed),
        )
    }

    fn admission_counters(&self, model: &str, tenant: &str) -> (Counter, Counter) {
        let mut cache = self.admission.lock().expect("admission counter cache");
        cache
            .entry((model.to_string(), tenant.to_string()))
            .or_insert_with(|| {
                let reg = Registry::global();
                let labels: &[(&str, &str)] = &[("model", model), ("tenant", tenant)];
                (
                    reg.counter(
                        "trtsim_fleet_submitted_total",
                        "Requests offered to the fleet router, by model and tenant",
                        labels,
                    ),
                    reg.counter(
                        "trtsim_fleet_rejected_total",
                        "Requests refused because every replica queue was full",
                        labels,
                    ),
                )
            })
            .clone()
    }
}

/// One replica's final accounting inside a [`FleetStats`].
#[derive(Debug, Clone, PartialEq)]
pub struct ReplicaStats {
    /// Fleet device name the replica ran on.
    pub device: String,
    /// Engine (model) name.
    pub model: String,
    /// Tenant the replica was dedicated to, if any.
    pub tenant: Option<String>,
    /// Frames the router dispatched here.
    pub routed: u64,
    /// The replica server's full statistics (per-device p50/p90/p99 live in
    /// `stats.latency`).
    pub stats: ServerStats,
}

/// Fleet-wide aggregate of every replica's counters and latency tail.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetStats {
    /// Per-replica accounting, in placement order.
    pub replicas: Vec<ReplicaStats>,
    /// Requests offered to the router.
    pub submitted: u64,
    /// Requests some replica accepted (= Σ per-replica accepted).
    pub accepted: u64,
    /// Requests refused by admission control (every replica full).
    pub rejected: u64,
    /// Frames fully served across the fleet.
    pub completed: u64,
    /// Accepted frames discarded by abort across the fleet.
    pub dropped: u64,
    /// Fleet-wide latency percentiles, merged over every completion.
    pub latency: LatencyPercentiles,
    /// Largest simulated clock over the fleet's device timelines, seconds.
    pub simulated_seconds: f64,
    /// Completed frames per simulated second, fleet-wide.
    pub aggregate_fps: f64,
    /// Dispatches scored by the warm shared latency model.
    pub predicted_dispatches: u64,
    /// Dispatches scored by the static heuristic (model cold or predictive
    /// scoring off).
    pub heuristic_dispatches: u64,
    /// Score ties the affinity tie-break resolved toward the replica that
    /// served the (model, tenant) most recently.
    pub affinity_hits: u64,
    /// Completed frames that landed past their replica's deadline, summed
    /// over replicas (0 when no deadline is configured).
    pub deadline_missed: u64,
    /// Frames some replica's deadline-based admission refused, summed over
    /// replicas.
    pub deadline_rejected: u64,
}

impl FleetStats {
    /// Frames completed on the named device (0 for unknown names).
    pub fn device_completed(&self, device: &str) -> u64 {
        self.replicas
            .iter()
            .filter(|r| r.device == device)
            .map(|r| r.stats.completed)
            .sum()
    }

    /// The named device's share of all completed frames, in `[0, 1]`.
    pub fn completed_share(&self, device: &str) -> f64 {
        if self.completed == 0 {
            0.0
        } else {
            self.device_completed(device) as f64 / self.completed as f64
        }
    }

    /// Goodput against an offered-load horizon: completed frames per second
    /// of trace duration. This is the fleet-vs-single-device comparison
    /// number — under the same offered trace, more capacity completes more
    /// of it.
    pub fn goodput_fps(&self, horizon_us: f64) -> f64 {
        self.completed as f64 / (horizon_us / 1e6).max(1e-12)
    }
}

fn aggregate(
    replicas: Vec<ReplicaStats>,
    submitted: u64,
    rejected: u64,
    predicted_dispatches: u64,
    heuristic_dispatches: u64,
    affinity_hits: u64,
) -> FleetStats {
    let accepted = replicas.iter().map(|r| r.stats.accepted).sum();
    let completed = replicas.iter().map(|r| r.stats.completed).sum();
    let dropped = replicas.iter().map(|r| r.stats.dropped).sum();
    let deadline_missed = replicas.iter().map(|r| r.stats.deadline_missed).sum();
    let deadline_rejected = replicas.iter().map(|r| r.stats.deadline_rejected).sum();
    let simulated_seconds = replicas
        .iter()
        .map(|r| r.stats.simulated_seconds)
        .fold(0.0f64, f64::max);
    let latencies: Vec<f64> = replicas
        .iter()
        .flat_map(|r| {
            r.stats
                .completions
                .iter()
                .map(|c| (c.done_us - c.arrival_us).max(0.0))
        })
        .collect();
    FleetStats {
        replicas,
        submitted,
        accepted,
        rejected,
        completed,
        dropped,
        latency: LatencyPercentiles::from_runs_us(&latencies),
        simulated_seconds,
        aggregate_fps: completed as f64 / simulated_seconds.max(1e-12),
        predicted_dispatches,
        heuristic_dispatches,
        affinity_hits,
        deadline_missed,
        deadline_rejected,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::Builder;
    use crate::config::BuilderConfig;
    use crate::runtime::TimingOptions;
    use trtsim_gpu::device::Platform;
    use trtsim_ir::graph::{Graph, LayerKind};
    use trtsim_util::rng::Pcg32;

    fn engine(name: &str) -> Engine {
        let mut g = Graph::new(name, [3, 32, 32]);
        let c1 = g.add_layer(
            "c1",
            LayerKind::conv_seeded(32, 3, 3, 1, 1, 0),
            &[Graph::INPUT],
        );
        let c2 = g.add_layer("c2", LayerKind::conv_seeded(32, 32, 3, 1, 1, 1), &[c1]);
        g.mark_output(c2);
        Builder::new(
            DeviceSpec::xavier_nx(),
            BuilderConfig::default().with_build_seed(7),
        )
        .build(&g)
        .unwrap()
    }

    fn config() -> ServerConfig {
        ServerConfig::default()
            .with_workers(2)
            .with_queue_capacity(512)
            .with_timing(
                TimingOptions::default()
                    .without_engine_upload()
                    .with_run_jitter_sd(0.0)
                    .with_host_glue_us(200.0),
            )
    }

    /// Open-loop Poisson arrivals, inline (core cannot depend on
    /// trtsim-data; the DSL path uses `ArrivalTrace` for the same thing).
    fn poisson_arrivals(frames: usize, mean_gap_us: f64, seed: u64) -> Vec<f64> {
        let mut rng = Pcg32::seed_from_u64(seed);
        let mut clock = 0.0;
        (0..frames)
            .map(|_| {
                clock += -mean_gap_us * (1.0 - rng.next_f64()).ln();
                clock
            })
            .collect()
    }

    /// Square-wave burst arrivals: tight gaps inside the burst window,
    /// long gaps outside.
    fn burst_arrivals(frames: usize, quiet_gap_us: f64, burst_gap_us: f64) -> Vec<f64> {
        let cycle_us = 4_000.0f64;
        let mut clock = 0.0f64;
        (0..frames)
            .map(|_| {
                let in_burst = (clock / cycle_us).fract() < 0.25;
                clock += if in_burst { burst_gap_us } else { quiet_gap_us };
                clock
            })
            .collect()
    }

    fn solo_fps(e: &Engine, spec: &DeviceSpec, arrivals: &[f64]) -> f64 {
        let server = InferenceServer::start(e, spec, config()).unwrap();
        for (i, &t) in arrivals.iter().enumerate() {
            server.try_submit_at(i as u64, t).unwrap();
        }
        server.drain().aggregate_fps
    }

    fn nx_agx_mix() -> Vec<(&'static str, DeviceSpec)> {
        vec![
            ("nx0", DeviceSpec::pinned_clock(Platform::Nx)),
            ("nx1", DeviceSpec::max_clock(Platform::Nx)),
            ("agx0", DeviceSpec::pinned_clock(Platform::Agx)),
            ("agx1", DeviceSpec::max_clock(Platform::Agx)),
        ]
    }

    #[test]
    fn fleet_outperforms_any_single_device() {
        let e = engine("fleet-goodput");
        // Both open-loop shapes the paper's deployment would face: steady
        // Poisson and square-wave bursts, each far above single-device
        // capacity so throughput (not arrival rate) is what's measured.
        let traces = [
            poisson_arrivals(192, 40.0, 11),
            burst_arrivals(192, 400.0, 10.0),
        ];
        for arrivals in &traces {
            let mut builder = FleetBuilder::new();
            for (name, spec) in nx_agx_mix() {
                builder = builder.device(name, spec);
            }
            for (name, _) in nx_agx_mix() {
                builder = builder.replica(name, &e, config()).unwrap();
            }
            let fleet = builder.start(FleetConfig::default()).unwrap();
            let (accepted, rejected) = fleet.replay(e.name(), arrivals, 0);
            assert_eq!(accepted, arrivals.len() as u64);
            assert_eq!(rejected, 0);
            let stats = fleet.drain();
            assert_eq!(stats.completed, arrivals.len() as u64);
            let best_solo = nx_agx_mix()
                .iter()
                .map(|(_, spec)| solo_fps(&e, spec, arrivals))
                .fold(0.0f64, f64::max);
            assert!(
                stats.aggregate_fps > best_solo * 1.2,
                "fleet {} fps should beat best solo {} fps",
                stats.aggregate_fps,
                best_solo
            );
        }
    }

    #[test]
    fn router_steers_load_away_from_saturated_device() {
        let e = engine("fleet-steer");
        let fleet = FleetBuilder::new()
            .device("weak", DeviceSpec::pinned_clock(Platform::Nx))
            .device("strong", DeviceSpec::max_clock(Platform::Agx))
            .replica("weak", &e, config().with_workers(1))
            .unwrap()
            .replica("strong", &e, config().with_workers(4))
            .unwrap()
            .start(FleetConfig::default())
            .unwrap();
        let arrivals = poisson_arrivals(200, 30.0, 3);
        fleet.replay(e.name(), &arrivals, 0);
        let stats = fleet.drain();
        assert_eq!(stats.completed, 200);
        // The pinned single-worker NX saturates almost immediately; the
        // least-estimated-finish score must keep routing the bulk of the
        // trace to the AGX with headroom.
        let weak_share = stats.completed_share("weak");
        assert!(
            weak_share < 0.4,
            "saturated device kept attracting load: share {weak_share}"
        );
        assert!(stats.device_completed("strong") > stats.device_completed("weak"));
    }

    #[test]
    fn admission_counters_are_conserved() {
        let e = engine("fleet-conserve");
        let tight = config().with_queue_capacity(4).with_workers(1);
        let fleet = FleetBuilder::new()
            .device("nx0", DeviceSpec::pinned_clock(Platform::Nx))
            .device("nx1", DeviceSpec::pinned_clock(Platform::Nx))
            .replica("nx0", &e, tight)
            .unwrap()
            .replica("nx1", &e, tight)
            .unwrap()
            .start(FleetConfig::default())
            .unwrap();
        // Everything arrives at once: with 2×4 queue slots most of the
        // burst must be rejected, exercising admission control.
        let arrivals = vec![0.0; 64];
        let (accepted, rejected) = fleet.replay(e.name(), &arrivals, 0);
        let stats = fleet.drain();
        assert_eq!(stats.submitted, 64);
        assert_eq!(stats.accepted, accepted);
        assert_eq!(stats.rejected, rejected);
        assert_eq!(stats.submitted, stats.accepted + stats.rejected);
        assert!(stats.rejected > 0, "tight queues should shed load");
        assert_eq!(
            stats.accepted,
            stats.replicas.iter().map(|r| r.stats.accepted).sum::<u64>()
        );
        assert_eq!(
            stats.accepted,
            stats.replicas.iter().map(|r| r.routed).sum::<u64>()
        );
        assert_eq!(stats.completed + stats.dropped, stats.accepted);
        assert_eq!(
            stats.completed,
            stats.device_completed("nx0") + stats.device_completed("nx1")
        );
    }

    #[test]
    fn affinity_tie_break_sticks_to_the_recent_replica() {
        let e = engine("fleet-affinity");
        // Two byte-identical devices: the dispatch scores tie exactly on
        // every submit, so only the affinity tie-break decides.
        let fleet = FleetBuilder::new()
            .device("twin0", DeviceSpec::max_clock(Platform::Nx))
            .device("twin1", DeviceSpec::max_clock(Platform::Nx))
            .replica("twin0", &e, config())
            .unwrap()
            .replica("twin1", &e, config())
            .unwrap()
            .start(FleetConfig::default())
            .unwrap();
        let submits = 8u64;
        for frame in 0..submits {
            // Space submissions out in real time so each one sees both
            // backlogs drained (an exact score tie) before it is routed.
            while fleet.replicas.iter().any(|r| r.server.queue_depth() > 0) {
                std::thread::yield_now();
            }
            fleet
                .submit(e.name(), frame, frame as f64 * 10_000.0)
                .unwrap();
        }
        let stats = fleet.drain();
        assert_eq!(stats.completed, submits);
        // First submit seeds the history; every later tie resolves to the
        // same replica, so one replica serves everything.
        assert_eq!(stats.affinity_hits, submits - 1);
        let shares: Vec<u64> = stats.replicas.iter().map(|r| r.routed).collect();
        assert!(
            shares.contains(&submits),
            "ties should stick to one replica, got {shares:?}"
        );
    }

    #[test]
    fn cold_predictive_fleet_falls_back_to_the_heuristic() {
        let e = engine("fleet-cold");
        let fleet = FleetBuilder::new()
            .device("nx0", DeviceSpec::pinned_clock(Platform::Nx))
            .device("agx0", DeviceSpec::max_clock(Platform::Agx))
            .replica("nx0", &e, config())
            .unwrap()
            .replica("agx0", &e, config())
            .unwrap()
            // A warm-up threshold the run cannot reach: every dispatch must
            // take the heuristic path even though the model exists.
            .start(
                FleetConfig::default()
                    .with_predictive(true)
                    .with_predictor_min_obs(1 << 40),
            )
            .unwrap();
        let arrivals = poisson_arrivals(64, 50.0, 5);
        let (accepted, _) = fleet.replay(e.name(), &arrivals, 0);
        let stats = fleet.drain();
        assert_eq!(stats.heuristic_dispatches, accepted);
        assert_eq!(stats.predicted_dispatches, 0);
    }

    #[test]
    fn warm_predictive_fleet_switches_to_model_scores() {
        let e = engine("fleet-warm");
        let fleet = FleetBuilder::new()
            .device("nx0", DeviceSpec::pinned_clock(Platform::Nx))
            .device("agx0", DeviceSpec::max_clock(Platform::Agx))
            .replica("nx0", &e, config())
            .unwrap()
            .replica("agx0", &e, config())
            .unwrap()
            .start(
                FleetConfig::default()
                    .with_predictive(true)
                    .with_predictor_min_obs(16),
            )
            .unwrap();
        let model = fleet.latency_model().expect("predictive fleet has a model");
        let arrivals = poisson_arrivals(200, 40.0, 9);
        let (first, second) = arrivals.split_at(100);
        let (mut accepted, _) = fleet.replay(e.name(), first, 0);
        // Submission is real-time while training rides on completions, so
        // wait for the first wave's completions to warm the shared model
        // before offering the second wave.
        while !model.is_warm() {
            std::thread::yield_now();
        }
        accepted += fleet.replay(e.name(), second, 100).0;
        let stats = fleet.drain();
        assert_eq!(stats.completed, accepted);
        // Early dispatches are heuristic (cold model), the second wave is
        // model-scored.
        assert!(
            stats.predicted_dispatches > 0,
            "model never warmed: {} heuristic / {} predicted",
            stats.heuristic_dispatches,
            stats.predicted_dispatches
        );
        assert!(model.is_warm());
        assert!(model.observations() >= 16);
        assert_eq!(
            stats.predicted_dispatches + stats.heuristic_dispatches,
            accepted
        );
    }

    #[test]
    fn builder_rejects_bad_topology() {
        let e = engine("fleet-topology");
        assert!(matches!(
            FleetBuilder::new().replica("ghost", &e, config()),
            Err(ServingError::InvalidConfig(_))
        ));
        assert!(matches!(
            FleetBuilder::new().start(FleetConfig::default()),
            Err(ServingError::InvalidConfig(_))
        ));
        assert!(matches!(
            FleetBuilder::new()
                .device("nx0", DeviceSpec::xavier_nx())
                .start(FleetConfig::default()),
            Err(ServingError::InvalidConfig(_))
        ));
        assert!(matches!(
            FleetBuilder::new()
                .device("nx0", DeviceSpec::xavier_nx())
                .device("nx0", DeviceSpec::xavier_nx())
                .replica("nx0", &e, config())
                .unwrap()
                .start(FleetConfig::default()),
            Err(ServingError::InvalidConfig(_))
        ));
    }

    #[test]
    fn unknown_model_is_rejected_without_counting() {
        let e = engine("fleet-unknown");
        let fleet = FleetBuilder::new()
            .device("nx0", DeviceSpec::xavier_nx())
            .replica("nx0", &e, config())
            .unwrap()
            .start(FleetConfig::default())
            .unwrap();
        assert!(matches!(
            fleet.submit("no-such-model", 0, 0.0),
            Err(ServingError::InvalidConfig(_))
        ));
        let stats = fleet.drain();
        assert_eq!(stats.submitted, 0);
        assert_eq!(stats.rejected, 0);
    }

    #[test]
    fn per_tenant_submission_is_tracked() {
        let e = engine("fleet-tenant");
        let fleet = FleetBuilder::new()
            .device("agx0", DeviceSpec::xavier_agx())
            .replica_for_tenant("agx0", &e, config(), Some("cam-east"))
            .unwrap()
            .start(FleetConfig::default())
            .unwrap();
        fleet.submit_as("cam-east", e.name(), 0, 0.0).unwrap();
        fleet.submit_as("cam-west", e.name(), 1, 10.0).unwrap();
        let stats = fleet.drain();
        assert_eq!(stats.completed, 2);
        assert_eq!(stats.replicas[0].tenant.as_deref(), Some("cam-east"));
    }
}
