//! Request-scoped tracing: one span tree per request, from fleet admission
//! to drain, retained in an always-on flight recorder.
//!
//! The serving metrics (DESIGN §10) answer *aggregate* questions — p99 over
//! a window, reject rate per tenant. When one request misses its deadline
//! the aggregates cannot say *where the time went*: router queue? batch
//! wait? a slow device? This module answers that per-request question the
//! way production tracing systems do, without perturbing the simulation:
//!
//! * **Trace context** — a [`TraceId`] minted at admission from a seeded
//!   deterministic counter (no wall clock, no global RNG), carried through
//!   router → replica queue → dynamic batcher → worker → `GpuTimeline`.
//!   Ids are unique per generator and reproducible per seed.
//! * **Span tree** — every completed request yields a [`RequestTrace`]
//!   whose [`PhaseSpan`]s partition its end-to-end latency exactly:
//!   `replica_queue + batch_wait + execute = done_us - arrival_us`, with
//!   zero-length `admission` / `router_queue` / `drain` markers bounding
//!   the tree. The `span_lo..span_hi` range joins the trace to the raw
//!   timeline records (and the chrome export) exactly like
//!   [`crate::serving::RequestRecord`].
//! * **Flight recorder** — a fixed-capacity ring of recent traces with
//!   *tail-based* retention: deadline-missed, deadline-rejected, dropped,
//!   and slowest-decile traces are pinned (always kept, evicted only when
//!   the ring holds nothing but pinned traces); ordinary completions are
//!   sampled 1-in-N by a deterministic counter. `GET /traces` and
//!   `GET /traces/<id>` on the telemetry endpoint serve the ring, and
//!   `GET /traces/<id>/chrome` renders one request as a chrome://tracing
//!   document.
//! * **Exemplars** — when a trace is retained, its id is attached to the
//!   `trtsim_server_latency_us` histogram bucket its latency landed in
//!   (OpenMetrics exemplar syntax), so a dashboard's p99 bucket links
//!   straight to an explaining trace.
//!
//! Recorder activity is counted in process-wide raw atomics bridged into
//! `trtsim_trace_{recorded,retained,sampled,evicted}_total` by
//! [`crate::telemetry`], the same pattern the kernel crates use.

use std::collections::VecDeque;
use std::fmt;
use std::str::FromStr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use trtsim_gpu::timeline::SpanSeq;
use trtsim_util::derive_seed;

/// A request-scoped trace identifier: 64 bits, rendered as 16 lowercase hex
/// digits. Minted by [`TraceIdGen`]; unique per generator, deterministic
/// per seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TraceId(u64);

impl TraceId {
    /// The raw 64-bit id.
    pub fn as_u64(self) -> u64 {
        self.0
    }
}

impl fmt::Display for TraceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

impl FromStr for TraceId {
    type Err = std::num::ParseIntError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        u64::from_str_radix(s, 16).map(TraceId)
    }
}

/// Deterministic trace-id mint: a relaxed counter whitened through a
/// seed-derived base, so ids look unrelated across requests yet replay
/// bit-identically for a given seed. No wall clock, no shared RNG — the
/// simulated clock and the engines' seeded numerics are untouched.
#[derive(Debug)]
pub struct TraceIdGen {
    base: u64,
    next: AtomicU64,
}

impl TraceIdGen {
    /// A generator whose id sequence is a pure function of `seed`.
    pub fn new(seed: u64) -> Self {
        Self {
            base: derive_seed(seed, "reqtrace", 0),
            next: AtomicU64::new(0),
        }
    }

    /// Mints the next id. `xor` with an odd-multiplier sequence is a
    /// bijection on `u64`, so ids never collide within one generator.
    pub fn mint(&self) -> TraceId {
        let n = self.next.fetch_add(1, Ordering::Relaxed);
        TraceId(self.base ^ n.wrapping_mul(0x9e37_79b9_7f4a_7c15))
    }
}

/// Flight-recorder knobs, carried by `ServerConfig` and `FleetConfig`.
/// Tracing is always on by default: the recorder's cost is one mutex take
/// per *completed* request, far off the enqueue hot path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceOptions {
    /// When false, the recorder counts nothing and retains nothing.
    pub enabled: bool,
    /// Ring capacity in traces. Tail traces (deadline-missed, rejected,
    /// dropped, slowest-decile) are evicted only when the ring holds
    /// nothing but tail traces, so the "every deadline miss survives"
    /// guarantee holds while misses in flight stay under this bound.
    pub capacity: usize,
    /// Ordinary (non-tail) completions are retained 1-in-N by a
    /// deterministic counter; `1` keeps everything.
    pub sample_every: u64,
}

impl Default for TraceOptions {
    fn default() -> Self {
        Self {
            enabled: true,
            capacity: 256,
            sample_every: 16,
        }
    }
}

impl TraceOptions {
    /// Turns the recorder on or off.
    pub fn with_enabled(mut self, on: bool) -> Self {
        self.enabled = on;
        self
    }

    /// Sets the ring capacity (must be ≥ 1; validated by `ServerConfig`).
    pub fn with_capacity(mut self, capacity: usize) -> Self {
        self.capacity = capacity;
        self
    }

    /// Sets the 1-in-N sampling period for non-tail traces (must be ≥ 1).
    pub fn with_sample_every(mut self, n: u64) -> Self {
        self.sample_every = n;
        self
    }
}

/// The per-request context that rides a submission through the queue and
/// batcher to the worker: the id plus router-time attributes. `Copy` so the
/// queue's `Submission`/`Request` structs stay `Copy`; NaN marks an
/// attribute the submit path could not know (no router, cold predictor).
#[derive(Debug, Clone, Copy)]
pub(crate) struct TraceCtx {
    pub(crate) id: TraceId,
    /// The chosen replica's dispatch score (NaN outside a fleet).
    pub(crate) router_score: f64,
    /// Predicted p50 latency at admission, µs (NaN when unpredicted).
    pub(crate) predicted_p50_us: f64,
    /// Predicted p99 latency at admission, µs (NaN when unpredicted).
    pub(crate) predicted_p99_us: f64,
}

impl TraceCtx {
    pub(crate) fn new(id: TraceId) -> Self {
        Self {
            id,
            router_score: f64::NAN,
            predicted_p50_us: f64::NAN,
            predicted_p99_us: f64::NAN,
        }
    }
}

/// The phases of a request's life, in pipeline order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum PhaseKind {
    /// Admission decision (zero-length marker at arrival).
    Admission,
    /// Router scoring/dispatch (zero-length marker: routing is synchronous
    /// in simulated time).
    RouterQueue,
    /// Waiting in the replica's bounded submission queue and for the
    /// assigned stream's backlog to clear.
    ReplicaQueue,
    /// Held by the dynamic batcher waiting for the batch to fill.
    BatchWait,
    /// Batched execution on the device (H2D, kernels, D2H, host glue).
    Execute,
    /// Completion bookkeeping (zero-length marker at done).
    Drain,
}

impl PhaseKind {
    /// Stable snake_case name used in JSON and chrome exports.
    pub fn as_str(self) -> &'static str {
        match self {
            PhaseKind::Admission => "admission",
            PhaseKind::RouterQueue => "router_queue",
            PhaseKind::ReplicaQueue => "replica_queue",
            PhaseKind::BatchWait => "batch_wait",
            PhaseKind::Execute => "execute",
            PhaseKind::Drain => "drain",
        }
    }
}

/// One phase of one request on the simulated clock: `[start_us, end_us]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhaseSpan {
    /// Which pipeline phase this span covers.
    pub kind: PhaseKind,
    /// Phase start on the simulated clock, µs.
    pub start_us: f64,
    /// Phase end on the simulated clock, µs (≥ `start_us`).
    pub end_us: f64,
}

impl PhaseSpan {
    fn new(kind: PhaseKind, start_us: f64, end_us: f64) -> Self {
        Self {
            kind,
            start_us,
            end_us,
        }
    }

    /// The span's length, µs.
    pub fn duration_us(&self) -> f64 {
        (self.end_us - self.start_us).max(0.0)
    }
}

/// How a traced request left the system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceOutcome {
    /// Served to completion.
    Completed {
        /// True when end-to-end latency exceeded the configured deadline.
        deadline_missed: bool,
    },
    /// Accepted but discarded by `abort()` before execution.
    Dropped,
    /// Refused at admission: the predictor said the deadline was
    /// unmeetable (solo server) or every replica was deadline-blocked
    /// (fleet).
    DeadlineRejected,
    /// Refused because the submission queue (or every replica's queue) was
    /// full.
    QueueRejected,
}

impl TraceOutcome {
    /// Stable snake_case name used in JSON exports.
    pub fn as_str(self) -> &'static str {
        match self {
            TraceOutcome::Completed { .. } => "completed",
            TraceOutcome::Dropped => "dropped",
            TraceOutcome::DeadlineRejected => "deadline_rejected",
            TraceOutcome::QueueRejected => "queue_rejected",
        }
    }

    /// Tail outcomes are pinned in the flight recorder: anything other
    /// than an in-deadline completion.
    pub fn is_tail(self) -> bool {
        !matches!(
            self,
            TraceOutcome::Completed {
                deadline_missed: false
            }
        )
    }

    /// True for `Completed` with the deadline missed.
    pub fn deadline_missed(self) -> bool {
        matches!(
            self,
            TraceOutcome::Completed {
                deadline_missed: true
            }
        )
    }
}

/// One request's complete trace: identity, placement, span tree, and
/// predicted-vs-actual attributes.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestTrace {
    /// The request's trace id.
    pub id: TraceId,
    /// Caller-assigned frame id.
    pub frame: u64,
    /// Engine (model) name.
    pub model: Arc<str>,
    /// Fleet device name, when the server is a fleet replica.
    pub device: Option<Arc<str>>,
    /// Tenant label, when the replica is tenant-dedicated.
    pub tenant: Option<Arc<str>>,
    /// Worker thread index that served the request (None when rejected).
    pub worker: Option<usize>,
    /// Stream the batch executed on (None when rejected).
    pub stream: Option<usize>,
    /// The dynamic batcher's batch sequence number (None when rejected).
    pub batch_seq: Option<u64>,
    /// Frames in the request's batch (None when rejected).
    pub batch_size: Option<usize>,
    /// First timeline span id of the batch (half-open range with
    /// `span_hi`), the join key into `GpuTimeline` records and the
    /// chrome export — `None` when the request never reached a stream.
    pub span_lo: Option<SpanSeq>,
    /// One past the last timeline span id of the batch.
    pub span_hi: Option<SpanSeq>,
    /// Arrival on the simulated clock, µs.
    pub arrival_us: f64,
    /// Completion on the simulated clock, µs (= `arrival_us` for traces
    /// that never executed).
    pub done_us: f64,
    /// How the request left the system.
    pub outcome: TraceOutcome,
    /// The span tree: monotone, non-overlapping, covering
    /// `[arrival_us, done_us]` exactly.
    pub phases: Vec<PhaseSpan>,
    /// The chosen replica's dispatch score (NaN outside a fleet).
    pub router_score: f64,
    /// Predicted p50 latency at admission, µs (NaN when unpredicted).
    pub predicted_p50_us: f64,
    /// Predicted p99 latency at admission, µs (NaN when unpredicted).
    pub predicted_p99_us: f64,
}

impl RequestTrace {
    /// End-to-end latency, µs.
    pub fn latency_us(&self) -> f64 {
        (self.done_us - self.arrival_us).max(0.0)
    }

    /// Signed predicted-vs-actual error of the admission-time p50
    /// prediction, percent of actual. NaN when the request carried no
    /// prediction or never completed.
    pub fn prediction_error_percent(&self) -> f64 {
        let actual = self.latency_us();
        if !matches!(self.outcome, TraceOutcome::Completed { .. })
            || !self.predicted_p50_us.is_finite()
            || actual <= 0.0
        {
            return f64::NAN;
        }
        (self.predicted_p50_us - actual) / actual * 100.0
    }

    /// Sum of the phase durations, µs. Equals [`latency_us`] for every
    /// recorded trace (the conservation invariant the proptests pin).
    ///
    /// [`latency_us`]: RequestTrace::latency_us
    pub fn phase_sum_us(&self) -> f64 {
        self.phases.iter().map(PhaseSpan::duration_us).sum()
    }

    /// One-line JSON summary (id, outcome, latency) for the `/traces`
    /// index.
    fn summary_json(&self) -> String {
        format!(
            "{{\"id\":\"{}\",\"frame\":{},\"model\":{},\"outcome\":\"{}\",\"deadline_missed\":{},\"latency_us\":{},\"phase_sum_us\":{}}}",
            self.id,
            self.frame,
            json_string(&self.model),
            self.outcome.as_str(),
            self.outcome.deadline_missed(),
            json_f64(self.latency_us()),
            json_f64(self.phase_sum_us()),
        )
    }

    /// The full trace as a JSON object: identity, placement, attributes,
    /// and the phase spans. Non-finite attributes render as `null`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!("\"id\":\"{}\",", self.id));
        out.push_str(&format!("\"frame\":{},", self.frame));
        out.push_str(&format!("\"model\":{},", json_string(&self.model)));
        out.push_str(&format!(
            "\"device\":{},",
            json_opt_string(self.device.as_deref())
        ));
        out.push_str(&format!(
            "\"tenant\":{},",
            json_opt_string(self.tenant.as_deref())
        ));
        out.push_str(&format!(
            "\"worker\":{},",
            json_opt_u64(self.worker.map(|v| v as u64))
        ));
        out.push_str(&format!(
            "\"stream\":{},",
            json_opt_u64(self.stream.map(|v| v as u64))
        ));
        out.push_str(&format!("\"batch_seq\":{},", json_opt_u64(self.batch_seq)));
        out.push_str(&format!(
            "\"batch_size\":{},",
            json_opt_u64(self.batch_size.map(|v| v as u64))
        ));
        out.push_str(&format!("\"span_lo\":{},", json_opt_u64(self.span_lo)));
        out.push_str(&format!("\"span_hi\":{},", json_opt_u64(self.span_hi)));
        out.push_str(&format!("\"arrival_us\":{},", json_f64(self.arrival_us)));
        out.push_str(&format!("\"done_us\":{},", json_f64(self.done_us)));
        out.push_str(&format!("\"latency_us\":{},", json_f64(self.latency_us())));
        out.push_str(&format!("\"outcome\":\"{}\",", self.outcome.as_str()));
        out.push_str(&format!(
            "\"deadline_missed\":{},",
            self.outcome.deadline_missed()
        ));
        out.push_str(&format!(
            "\"router_score\":{},",
            json_f64(self.router_score)
        ));
        out.push_str(&format!(
            "\"predicted_p50_us\":{},",
            json_f64(self.predicted_p50_us)
        ));
        out.push_str(&format!(
            "\"predicted_p99_us\":{},",
            json_f64(self.predicted_p99_us)
        ));
        out.push_str(&format!(
            "\"prediction_error_percent\":{},",
            json_f64(self.prediction_error_percent())
        ));
        out.push_str("\"phases\":[");
        for (i, p) in self.phases.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"phase\":\"{}\",\"start_us\":{},\"end_us\":{},\"duration_us\":{}}}",
                p.kind.as_str(),
                json_f64(p.start_us),
                json_f64(p.end_us),
                json_f64(p.duration_us()),
            ));
        }
        out.push_str("]}");
        out
    }
}

/// Renders a set of traces as one JSON array of full trace objects —
/// the `scenario run --trace-out` dump format.
pub fn traces_json(traces: &[RequestTrace]) -> String {
    let mut out = String::from("[");
    for (i, t) in traces.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('\n');
        out.push_str(&t.to_json());
    }
    out.push_str("\n]\n");
    out
}

/// Renders traces as one chrome://tracing document, stitching spans across
/// device timelines: one process (`pid`) per distinct device (process-named
/// after it), one track (`tid`) per stream, one complete event per phase.
/// Every event's `args` carry the trace id and the `span_lo`/`span_hi`
/// timeline join keys, so a phase here joins the per-device kernel trace
/// exported by `trtsim-profiler` (same span-id scheme).
pub fn chrome_trace_all(traces: &[RequestTrace]) -> String {
    let mut devices: Vec<&str> = traces
        .iter()
        .map(|t| t.device.as_deref().unwrap_or("local"))
        .collect();
    devices.sort_unstable();
    devices.dedup();
    let mut events: Vec<String> = Vec::new();
    for (pid, name) in devices.iter().enumerate() {
        events.push(format!(
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{},\"args\":{{\"name\":{}}}}}",
            pid,
            json_string(name)
        ));
    }
    // Deterministic order: by device, then arrival, then id, then phase
    // position — independent of which worker recorded first.
    let mut ordered: Vec<&RequestTrace> = traces.iter().collect();
    ordered.sort_by(|a, b| {
        let da = a.device.as_deref().unwrap_or("local");
        let db = b.device.as_deref().unwrap_or("local");
        da.cmp(db)
            .then(a.arrival_us.total_cmp(&b.arrival_us))
            .then(a.id.cmp(&b.id))
    });
    for t in &ordered {
        let device = t.device.as_deref().unwrap_or("local");
        let pid = devices.binary_search(&device).unwrap_or(0);
        let tid = t.stream.unwrap_or(0);
        let args = format!(
            "{{\"trace_id\":\"{}\",\"frame\":{},\"span_lo\":{},\"span_hi\":{},\"batch_seq\":{},\"batch_size\":{},\"outcome\":\"{}\"}}",
            t.id,
            t.frame,
            json_opt_u64(t.span_lo),
            json_opt_u64(t.span_hi),
            json_opt_u64(t.batch_seq),
            json_opt_u64(t.batch_size.map(|v| v as u64)),
            t.outcome.as_str(),
        );
        for p in &t.phases {
            events.push(format!(
                "{{\"name\":{},\"cat\":\"request\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":{},\"tid\":{},\"args\":{}}}",
                json_string(p.kind.as_str()),
                json_ts(p.start_us),
                json_ts(p.duration_us()),
                pid,
                tid,
                args
            ));
        }
    }
    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(e);
    }
    out.push_str("]}");
    out
}

// --- process-wide recorder activity, bridged into the metric registry ---
//
// Raw atomics rather than registry handles so recording never touches the
// registry lock; `crate::telemetry::sync_trace_counters` folds the deltas
// into `trtsim_trace_*_total` (same pattern as the kernel-crate bridges).

static RECORDED_EVENTS: AtomicU64 = AtomicU64::new(0);
static RETAINED_EVENTS: AtomicU64 = AtomicU64::new(0);
static SAMPLED_EVENTS: AtomicU64 = AtomicU64::new(0);
static EVICTED_EVENTS: AtomicU64 = AtomicU64::new(0);

/// Process-wide count of traces offered to any recorder.
pub fn recorded_events() -> u64 {
    RECORDED_EVENTS.load(Ordering::Relaxed)
}

/// Process-wide count of traces any recorder kept (pinned or sampled).
pub fn retained_events() -> u64 {
    RETAINED_EVENTS.load(Ordering::Relaxed)
}

/// Process-wide count of non-tail traces kept by 1-in-N sampling.
pub fn sampled_events() -> u64 {
    SAMPLED_EVENTS.load(Ordering::Relaxed)
}

/// Process-wide count of traces evicted from any recorder's ring.
pub fn evicted_events() -> u64 {
    EVICTED_EVENTS.load(Ordering::Relaxed)
}

/// Latency histogram for the running slowest-decile estimate: power-of-two
/// buckets over µs, so the p90 threshold is exact to within one octave —
/// all the resolution "pin the slowest decile" needs, in 64 fixed words.
const LAT_BUCKETS: usize = 64;

fn lat_bucket(latency_us: f64) -> usize {
    (latency_us.max(1.0).log2().floor() as usize).min(LAT_BUCKETS - 1)
}

#[derive(Debug)]
struct RecorderInner {
    /// Oldest-first ring of (pinned, trace).
    ring: VecDeque<(bool, RequestTrace)>,
    /// Completed-latency histogram backing the slowest-decile pin.
    lat_counts: [u64; LAT_BUCKETS],
    lat_total: u64,
    /// Deterministic 1-in-N tick over non-tail candidates.
    sample_tick: u64,
    recorded: u64,
    retained: u64,
    sampled: u64,
    evicted: u64,
    completed_seen: u64,
    dropped_seen: u64,
    rejected_seen: u64,
    deadline_missed_seen: u64,
}

impl RecorderInner {
    /// The latency (µs) at or above which a completion sits in the slowest
    /// decile of everything seen so far: the upper edge of the bucket where
    /// the cumulative count crosses 90%. +Inf until anything is observed.
    fn p90_threshold_us(&self) -> f64 {
        if self.lat_total == 0 {
            return f64::INFINITY;
        }
        let cutoff = (self.lat_total as f64 * 0.9).ceil() as u64;
        let mut cum = 0u64;
        for (i, &c) in self.lat_counts.iter().enumerate() {
            cum += c;
            if cum >= cutoff {
                return 2f64.powi(i as i32 + 1);
            }
        }
        f64::INFINITY
    }
}

/// The always-on ring of recent request traces with tail-based retention.
/// One per server (or one shared per fleet); see the [module docs](self).
#[derive(Debug)]
pub struct FlightRecorder {
    opts: TraceOptions,
    inner: Mutex<RecorderInner>,
}

impl FlightRecorder {
    /// An empty recorder with the given knobs.
    pub fn new(opts: TraceOptions) -> Self {
        Self {
            opts,
            inner: Mutex::new(RecorderInner {
                ring: VecDeque::with_capacity(opts.capacity.min(1024)),
                lat_counts: [0; LAT_BUCKETS],
                lat_total: 0,
                sample_tick: 0,
                recorded: 0,
                retained: 0,
                sampled: 0,
                evicted: 0,
                completed_seen: 0,
                dropped_seen: 0,
                rejected_seen: 0,
                deadline_missed_seen: 0,
            }),
        }
    }

    /// The recorder's knobs.
    pub fn options(&self) -> TraceOptions {
        self.opts
    }

    /// Offers one finished trace. Returns `true` when the trace was
    /// retained in the ring (pinned or sampled) — the signal the serving
    /// layer uses to attach the trace id as a histogram exemplar.
    pub fn record(&self, trace: RequestTrace) -> bool {
        if !self.opts.enabled {
            return false;
        }
        let mut inner = self.inner.lock().expect("flight recorder lock");
        inner.recorded += 1;
        RECORDED_EVENTS.fetch_add(1, Ordering::Relaxed);
        match trace.outcome {
            TraceOutcome::Completed { deadline_missed } => {
                inner.completed_seen += 1;
                if deadline_missed {
                    inner.deadline_missed_seen += 1;
                }
            }
            TraceOutcome::Dropped => inner.dropped_seen += 1,
            TraceOutcome::DeadlineRejected | TraceOutcome::QueueRejected => {
                inner.rejected_seen += 1
            }
        }
        // Slowest-decile pin judged against the distribution *before* this
        // trace, then the observation is absorbed; the very first
        // completion is trivially "slowest" and gets pinned, which is the
        // right cold-start behaviour for a debugging ring.
        let mut pinned = trace.outcome.is_tail();
        if matches!(trace.outcome, TraceOutcome::Completed { .. }) {
            let lat = trace.latency_us();
            pinned = pinned || lat >= inner.p90_threshold_us() || inner.lat_total == 0;
            let b = lat_bucket(lat);
            inner.lat_counts[b] += 1;
            inner.lat_total += 1;
        }
        let keep = if pinned {
            true
        } else {
            inner.sample_tick += 1;
            inner.sample_tick.is_multiple_of(self.opts.sample_every)
        };
        if !keep {
            return false;
        }
        inner.retained += 1;
        RETAINED_EVENTS.fetch_add(1, Ordering::Relaxed);
        if !pinned {
            inner.sampled += 1;
            SAMPLED_EVENTS.fetch_add(1, Ordering::Relaxed);
        }
        inner.ring.push_back((pinned, trace));
        while inner.ring.len() > self.opts.capacity.max(1) {
            // Oldest non-pinned first; oldest pinned only when the ring is
            // all tail traces.
            let victim = inner
                .ring
                .iter()
                .position(|(pinned, _)| !pinned)
                .unwrap_or(0);
            inner.ring.remove(victim);
            inner.evicted += 1;
            EVICTED_EVENTS.fetch_add(1, Ordering::Relaxed);
        }
        true
    }

    /// Retained traces, oldest first.
    pub fn traces(&self) -> Vec<RequestTrace> {
        self.inner
            .lock()
            .expect("flight recorder lock")
            .ring
            .iter()
            .map(|(_, t)| t.clone())
            .collect()
    }

    /// Looks up one retained trace by id.
    pub fn get(&self, id: TraceId) -> Option<RequestTrace> {
        self.inner
            .lock()
            .expect("flight recorder lock")
            .ring
            .iter()
            .find(|(_, t)| t.id == id)
            .map(|(_, t)| t.clone())
    }

    /// Traces offered to this recorder.
    pub fn recorded(&self) -> u64 {
        self.inner.lock().expect("flight recorder lock").recorded
    }

    /// Traces this recorder kept (pinned or sampled), cumulative.
    pub fn retained(&self) -> u64 {
        self.inner.lock().expect("flight recorder lock").retained
    }

    /// Non-tail traces kept by 1-in-N sampling, cumulative.
    pub fn sampled(&self) -> u64 {
        self.inner.lock().expect("flight recorder lock").sampled
    }

    /// Traces evicted from the ring, cumulative.
    pub fn evicted(&self) -> u64 {
        self.inner.lock().expect("flight recorder lock").evicted
    }

    /// Completed traces seen (retained or not).
    pub fn completed_seen(&self) -> u64 {
        self.inner
            .lock()
            .expect("flight recorder lock")
            .completed_seen
    }

    /// Dropped traces seen (retained or not).
    pub fn dropped_seen(&self) -> u64 {
        self.inner
            .lock()
            .expect("flight recorder lock")
            .dropped_seen
    }

    /// Rejected traces seen (deadline or queue; retained or not).
    pub fn rejected_seen(&self) -> u64 {
        self.inner
            .lock()
            .expect("flight recorder lock")
            .rejected_seen
    }

    /// Deadline-missed completions seen (all of them are retained).
    pub fn deadline_missed_seen(&self) -> u64 {
        self.inner
            .lock()
            .expect("flight recorder lock")
            .deadline_missed_seen
    }

    /// The `/traces` index document: retention counters plus a one-line
    /// summary per retained trace, oldest first.
    pub fn index_json(&self) -> String {
        let inner = self.inner.lock().expect("flight recorder lock");
        let mut out = String::from("{");
        out.push_str(&format!("\"recorded\":{},", inner.recorded));
        out.push_str(&format!("\"retained\":{},", inner.retained));
        out.push_str(&format!("\"sampled\":{},", inner.sampled));
        out.push_str(&format!("\"evicted\":{},", inner.evicted));
        out.push_str(&format!(
            "\"deadline_missed_seen\":{},",
            inner.deadline_missed_seen
        ));
        out.push_str("\"traces\":[");
        for (i, (_, t)) in inner.ring.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('\n');
            out.push_str(&t.summary_json());
        }
        out.push_str("\n]}\n");
        out
    }

    /// Serves the recorder's HTTP routes:
    ///
    /// * `/traces` — the index document
    /// * `/traces/<id>` — one full trace as JSON
    /// * `/traces/<id>/chrome` — one trace as a chrome://tracing document
    ///
    /// Returns `None` (→ 404) for unknown paths or evicted/unknown ids.
    pub fn route(&self, path: &str) -> Option<(String, String)> {
        // Scrape-time sync so `trtsim_trace_*` counters on the same
        // endpoint are no staler than the trace list being served.
        crate::telemetry::sync_trace_counters();
        if path == "/traces" {
            return Some(("application/json".to_string(), self.index_json()));
        }
        let rest = path.strip_prefix("/traces/")?;
        let (id, chrome) = match rest.strip_suffix("/chrome") {
            Some(id) => (id, true),
            None => (rest, false),
        };
        let trace = self.get(id.parse().ok()?)?;
        let body = if chrome {
            chrome_trace_all(std::slice::from_ref(&trace))
        } else {
            format!("{}\n", trace.to_json())
        };
        Some(("application/json".to_string(), body))
    }

    /// Adapts the recorder into the [`trtsim_metrics::RouteHandler`] shape
    /// `TelemetryServer::bind_with_routes` consumes.
    pub fn route_handler(self: &Arc<Self>) -> trtsim_metrics::RouteHandler {
        let recorder = Arc::clone(self);
        Arc::new(move |path: &str| recorder.route(path))
    }
}

/// The serving layer's recording surface: the shared recorder plus the
/// server's identity labels, cloned into each worker thread. Centralizes
/// the phase decomposition so every call site produces the same span tree.
#[derive(Debug, Clone)]
pub(crate) struct TraceSink {
    recorder: Arc<FlightRecorder>,
    model: Arc<str>,
    device: Option<Arc<str>>,
    tenant: Option<Arc<str>>,
}

impl TraceSink {
    pub(crate) fn new(
        recorder: Arc<FlightRecorder>,
        model: &str,
        device: Option<&str>,
        tenant: Option<&str>,
    ) -> Self {
        Self {
            recorder,
            model: Arc::from(model),
            device: device.map(Arc::from),
            tenant: tenant.map(Arc::from),
        }
    }

    /// Records one completed request. `exec_start_us` is where batched
    /// execution began on the stream (= `max(stream_front, batch_arrival) +
    /// waited_us`), so the phases partition `[arrival_us, done_us]`:
    ///
    /// ```text
    /// replica_queue [arrival_us .. exec_start_us - waited_us]
    /// batch_wait    [exec_start_us - waited_us .. exec_start_us]
    /// execute       [exec_start_us .. done_us]
    /// ```
    ///
    /// Returns `true` when the trace was retained (→ attach an exemplar).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn record_completed(
        &self,
        ctx: TraceCtx,
        frame: u64,
        arrival_us: f64,
        done_us: f64,
        exec_start_us: f64,
        waited_us: f64,
        worker: usize,
        stream: usize,
        batch_seq: u64,
        batch_size: usize,
        span_lo: SpanSeq,
        span_hi: SpanSeq,
        deadline_missed: bool,
    ) -> bool {
        let queue_end = (exec_start_us - waited_us).max(arrival_us);
        let exec_start = exec_start_us.max(queue_end);
        let phases = vec![
            PhaseSpan::new(PhaseKind::Admission, arrival_us, arrival_us),
            PhaseSpan::new(PhaseKind::RouterQueue, arrival_us, arrival_us),
            PhaseSpan::new(PhaseKind::ReplicaQueue, arrival_us, queue_end),
            PhaseSpan::new(PhaseKind::BatchWait, queue_end, exec_start),
            PhaseSpan::new(PhaseKind::Execute, exec_start, done_us.max(exec_start)),
            PhaseSpan::new(PhaseKind::Drain, done_us, done_us),
        ];
        self.recorder.record(RequestTrace {
            id: ctx.id,
            frame,
            model: Arc::clone(&self.model),
            device: self.device.clone(),
            tenant: self.tenant.clone(),
            worker: Some(worker),
            stream: Some(stream),
            batch_seq: Some(batch_seq),
            batch_size: Some(batch_size),
            span_lo: Some(span_lo),
            span_hi: Some(span_hi),
            arrival_us,
            done_us,
            outcome: TraceOutcome::Completed { deadline_missed },
            phases,
            router_score: ctx.router_score,
            predicted_p50_us: ctx.predicted_p50_us,
            predicted_p99_us: ctx.predicted_p99_us,
        })
    }

    /// Records a request accepted but discarded by abort: zero service, an
    /// `admission` marker as its only phase.
    pub(crate) fn record_dropped(&self, ctx: TraceCtx, frame: u64, arrival_us: f64) {
        self.recorder.record(RequestTrace {
            id: ctx.id,
            frame,
            model: Arc::clone(&self.model),
            device: self.device.clone(),
            tenant: self.tenant.clone(),
            worker: None,
            stream: None,
            batch_seq: None,
            batch_size: None,
            span_lo: None,
            span_hi: None,
            arrival_us,
            done_us: arrival_us,
            outcome: TraceOutcome::Dropped,
            phases: vec![PhaseSpan::new(PhaseKind::Admission, arrival_us, arrival_us)],
            router_score: ctx.router_score,
            predicted_p50_us: ctx.predicted_p50_us,
            predicted_p99_us: ctx.predicted_p99_us,
        });
    }

    /// Records a request refused at admission (deadline or full queue).
    pub(crate) fn record_rejected(
        &self,
        ctx: TraceCtx,
        frame: u64,
        arrival_us: f64,
        outcome: TraceOutcome,
    ) {
        self.recorder.record(RequestTrace {
            id: ctx.id,
            frame,
            model: Arc::clone(&self.model),
            device: self.device.clone(),
            tenant: self.tenant.clone(),
            worker: None,
            stream: None,
            batch_seq: None,
            batch_size: None,
            span_lo: None,
            span_hi: None,
            arrival_us,
            done_us: arrival_us,
            outcome,
            phases: vec![PhaseSpan::new(PhaseKind::Admission, arrival_us, arrival_us)],
            router_score: ctx.router_score,
            predicted_p50_us: ctx.predicted_p50_us,
            predicted_p99_us: ctx.predicted_p99_us,
        });
    }
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Chrome timestamps: µs with three decimals (ns resolution), non-finite
/// clamped to 0 so the viewer still loads.
fn json_ts(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "0".to_string()
    }
}

fn json_opt_u64(v: Option<u64>) -> String {
    match v {
        Some(v) => format!("{v}"),
        None => "null".to_string(),
    }
}

fn json_opt_string(v: Option<&str>) -> String {
    match v {
        Some(v) => json_string(v),
        None => "null".to_string(),
    }
}

/// RFC 8259 string escaping (quotes, backslash, control characters).
fn json_string(s: &str) -> String {
    use std::fmt::Write as _;
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sink(recorder: &Arc<FlightRecorder>) -> TraceSink {
        TraceSink::new(Arc::clone(recorder), "m", Some("nx0"), None)
    }

    fn completed(
        s: &TraceSink,
        gen: &TraceIdGen,
        frame: u64,
        arrival: f64,
        latency: f64,
        missed: bool,
    ) -> TraceId {
        let ctx = TraceCtx::new(gen.mint());
        let done = arrival + latency;
        // 40% queue, 10% batch wait, 50% execute.
        let exec_start = arrival + latency * 0.5;
        let waited = latency * 0.1;
        s.record_completed(
            ctx, frame, arrival, done, exec_start, waited, 0, 0, frame, 1, 0, 3, missed,
        );
        ctx.id
    }

    #[test]
    fn ids_are_deterministic_unique_and_hex_round_trip() {
        let a = TraceIdGen::new(42);
        let b = TraceIdGen::new(42);
        let ids: Vec<TraceId> = (0..64).map(|_| a.mint()).collect();
        let again: Vec<TraceId> = (0..64).map(|_| b.mint()).collect();
        assert_eq!(ids, again, "same seed must mint the same sequence");
        let mut uniq = ids.clone();
        uniq.sort();
        uniq.dedup();
        assert_eq!(uniq.len(), ids.len(), "ids must be unique");
        assert_ne!(TraceIdGen::new(43).mint(), ids[0]);
        let hex = ids[7].to_string();
        assert_eq!(hex.len(), 16);
        assert_eq!(hex.parse::<TraceId>().unwrap(), ids[7]);
    }

    #[test]
    fn phases_partition_the_end_to_end_latency() {
        let rec = Arc::new(FlightRecorder::new(
            TraceOptions::default().with_sample_every(1),
        ));
        let s = sink(&rec);
        let gen = TraceIdGen::new(1);
        let id = completed(&s, &gen, 0, 1000.0, 800.0, false);
        let t = rec.get(id).expect("retained");
        assert_eq!(t.phases.len(), 6);
        // Monotone and non-overlapping: each phase starts where the
        // previous ended.
        for w in t.phases.windows(2) {
            assert!(w[0].end_us <= w[1].start_us + 1e-9);
            assert!(w[0].start_us <= w[0].end_us);
        }
        assert!((t.phase_sum_us() - t.latency_us()).abs() < 1e-6);
        assert_eq!(t.phases.first().unwrap().start_us, t.arrival_us);
        assert_eq!(t.phases.last().unwrap().end_us, t.done_us);
    }

    #[test]
    fn tail_traces_survive_eviction_under_load() {
        let rec = Arc::new(FlightRecorder::new(
            TraceOptions::default()
                .with_capacity(16)
                .with_sample_every(2),
        ));
        let s = sink(&rec);
        let gen = TraceIdGen::new(9);
        let mut missed_ids = Vec::new();
        // 400 ordinary completions with occasional deadline misses: far
        // more retention candidates than the ring holds.
        for frame in 0..400u64 {
            let missed = frame % 97 == 0;
            let latency = if missed { 9000.0 } else { 100.0 };
            let id = completed(&s, &gen, frame, frame as f64 * 10.0, latency, missed);
            if missed {
                missed_ids.push(id);
            }
        }
        assert!(rec.evicted() > 0, "load must overflow the ring");
        for id in &missed_ids {
            assert!(
                rec.get(*id).is_some(),
                "deadline-missed trace {id} must survive eviction"
            );
        }
        // And the sampler kept roughly 1-in-2 of the rest on offer, so the
        // ring still carries some ordinary traffic context.
        assert!(rec.sampled() > 0);
    }

    #[test]
    fn slowest_decile_is_pinned_without_a_deadline() {
        let rec = Arc::new(FlightRecorder::new(
            TraceOptions::default()
                .with_capacity(32)
                .with_sample_every(1_000_000),
        ));
        let s = sink(&rec);
        let gen = TraceIdGen::new(5);
        // 200 fast completions establish the distribution, then one 100×
        // outlier: it must be pinned even though nothing missed a deadline
        // and the sampling period never triggers.
        for frame in 0..200u64 {
            completed(&s, &gen, frame, frame as f64, 100.0, false);
        }
        let slow = completed(&s, &gen, 200, 5000.0, 10_000.0, false);
        assert!(rec.get(slow).is_some(), "slow outlier must be pinned");
    }

    #[test]
    fn disabled_recorder_keeps_nothing() {
        let rec = Arc::new(FlightRecorder::new(
            TraceOptions::default().with_enabled(false),
        ));
        let s = sink(&rec);
        let gen = TraceIdGen::new(2);
        completed(&s, &gen, 0, 0.0, 50_000.0, true);
        assert_eq!(rec.recorded(), 0);
        assert!(rec.traces().is_empty());
    }

    #[test]
    fn rejected_and_dropped_traces_are_recorded_and_counted() {
        let rec = Arc::new(FlightRecorder::new(TraceOptions::default()));
        let s = sink(&rec);
        let gen = TraceIdGen::new(3);
        s.record_rejected(
            TraceCtx::new(gen.mint()),
            0,
            10.0,
            TraceOutcome::DeadlineRejected,
        );
        s.record_rejected(
            TraceCtx::new(gen.mint()),
            1,
            20.0,
            TraceOutcome::QueueRejected,
        );
        s.record_dropped(TraceCtx::new(gen.mint()), 2, 30.0);
        assert_eq!(rec.rejected_seen(), 2);
        assert_eq!(rec.dropped_seen(), 1);
        // Tail outcomes are always retained.
        assert_eq!(rec.traces().len(), 3);
        for t in rec.traces() {
            assert!(t.outcome.is_tail());
            assert_eq!(t.latency_us(), 0.0);
            assert!(t.worker.is_none());
        }
    }

    #[test]
    fn routes_serve_index_trace_and_chrome() {
        let rec = Arc::new(FlightRecorder::new(
            TraceOptions::default().with_sample_every(1),
        ));
        let s = sink(&rec);
        let gen = TraceIdGen::new(4);
        let id = completed(&s, &gen, 7, 100.0, 900.0, true);

        let (ct, index) = rec.route("/traces").expect("index");
        assert_eq!(ct, "application/json");
        assert!(index.contains(&format!("\"id\":\"{id}\"")));
        assert!(index.contains("\"deadline_missed\":true"));
        assert!(index.contains("\"recorded\":1"));

        let (_, body) = rec.route(&format!("/traces/{id}")).expect("trace");
        assert!(body.contains("\"outcome\":\"completed\""));
        assert!(body.contains("\"phase\":\"execute\""));
        assert!(body.contains("\"model\":\"m\""));

        let (_, chrome) = rec.route(&format!("/traces/{id}/chrome")).expect("chrome");
        assert!(chrome.contains("\"traceEvents\""));
        assert!(chrome.contains(&format!("\"trace_id\":\"{id}\"")));
        assert!(chrome.contains("\"cat\":\"request\""));

        assert!(rec.route("/traces/zzzz").is_none());
        assert!(rec.route("/nope").is_none());
        assert!(rec.route("/traces/0000000000000000").is_none());
    }

    #[test]
    fn chrome_export_stitches_devices_into_processes() {
        let rec = Arc::new(FlightRecorder::new(
            TraceOptions::default().with_sample_every(1),
        ));
        let gen = TraceIdGen::new(6);
        let nx = TraceSink::new(Arc::clone(&rec), "m", Some("nx0"), None);
        let agx = TraceSink::new(Arc::clone(&rec), "m", Some("agx0"), Some("cam"));
        let a = TraceCtx::new(gen.mint());
        let b = TraceCtx::new(gen.mint());
        nx.record_completed(a, 0, 0.0, 100.0, 50.0, 10.0, 0, 1, 0, 2, 0, 4, false);
        agx.record_completed(b, 1, 5.0, 205.0, 105.0, 0.0, 1, 0, 0, 1, 4, 8, false);
        let doc = chrome_trace_all(&rec.traces());
        // Sorted device names: agx0 = pid 0, nx0 = pid 1.
        assert!(doc.contains("\"args\":{\"name\":\"agx0\"}"));
        assert!(doc.contains("\"args\":{\"name\":\"nx0\"}"));
        assert!(doc.contains("\"pid\":0"));
        assert!(doc.contains("\"pid\":1"));
        assert!(doc.contains("\"span_lo\":4"));
        assert!(doc.contains(&format!("\"trace_id\":\"{}\"", a.id)));
    }

    #[test]
    fn prediction_error_is_signed_percent_or_nan() {
        let mut ctx = TraceCtx::new(TraceIdGen::new(8).mint());
        ctx.predicted_p50_us = 1200.0;
        let rec = Arc::new(FlightRecorder::new(
            TraceOptions::default().with_sample_every(1),
        ));
        let s = sink(&rec);
        s.record_completed(ctx, 0, 0.0, 1000.0, 500.0, 0.0, 0, 0, 0, 1, 0, 1, false);
        let t = &rec.traces()[0];
        assert!((t.prediction_error_percent() - 20.0).abs() < 1e-9);
        assert!(t.to_json().contains("\"prediction_error_percent\":20"));
        // No prediction → NaN → JSON null.
        let plain = TraceCtx::new(TraceIdGen::new(8).mint());
        s.record_rejected(plain, 1, 0.0, TraceOutcome::QueueRejected);
        let r = rec.traces().into_iter().find(|t| t.frame == 1).unwrap();
        assert!(r.prediction_error_percent().is_nan());
        assert!(r.to_json().contains("\"predicted_p50_us\":null"));
    }
}
