//! Engine execution: numeric inference and simulated timing.
//!
//! An [`ExecutionContext`] binds an [`Engine`] to a device. It can:
//!
//! * run real numerics ([`ExecutionContext::infer`]) — convolutions and FC
//!   layers execute under their selected tactic's precision and accumulation
//!   order, so two engines with different tactic sets can (rarely) emit
//!   different labels for the same image. Single-image and batch inference
//!   run through a lazily-compiled [`InferencePlan`] (bit-identical to the
//!   reference interpreter, [`ExecutionContext::infer_unplanned`]);
//! * enqueue simulated work on a [`GpuTimeline`]
//!   ([`ExecutionContext::enqueue_inference`]) for latency/throughput
//!   studies, including the per-run engine upload the paper's harness
//!   performs (its Table X separates that memcpy out);
//! * summarize itself as an [`EngineProfile`] for the concurrency model.

use std::borrow::Borrow;
use std::sync::OnceLock;

use trtsim_gpu::contention::EngineProfile;
use trtsim_gpu::device::DeviceSpec;
use trtsim_gpu::kernel::Precision;
use trtsim_gpu::timeline::{GpuTimeline, ProfilingOverhead, StreamId};
use trtsim_gpu::timing::kernel_busy_us;
use trtsim_ir::graph::{Graph, LayerKind};
use trtsim_ir::ops;
use trtsim_ir::tensor::Tensor;
use trtsim_kernels::numeric::{apply_precision, conv_forward, fc_forward};
use trtsim_util::pool::map_indexed;
use trtsim_util::rng::Pcg32;

use crate::engine::Engine;
use crate::error::EngineError;
use crate::fastpath::{InferencePlan, PlanScratch};

/// cuDNN workspace each kernel reserves in an execution context (calibrated
/// against the thread counts of the paper's Figures 3/4).
pub const PER_KERNEL_WORKSPACE_BYTES: u64 = 4 << 20;

/// Fixed CUDA context overhead per stream.
pub const PER_CONTEXT_OVERHEAD_BYTES: u64 = 48 << 20;

/// How a timed inference is measured.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimingOptions {
    /// Include the engine-upload `cudaMemcpyHostToDevice` in each run (the
    /// paper's harness does; Table X subtracts it).
    pub include_engine_upload: bool,
    /// Profiler instrumentation (nvprof attached vs not — Tables VIII vs IX).
    pub profiling: ProfilingOverhead,
    /// Host-side glue per inference, µs (pre/post-processing, sync). Model
    /// zoo entries carry calibrated values.
    pub host_glue_us: f64,
    /// Run-to-run relative jitter applied by the measurement harness.
    pub run_jitter_sd: f64,
}

impl Default for TimingOptions {
    fn default() -> Self {
        Self {
            include_engine_upload: true,
            profiling: ProfilingOverhead::none(),
            host_glue_us: 1_500.0,
            run_jitter_sd: 0.02,
        }
    }
}

impl TimingOptions {
    /// With nvprof attached (Table VIII conditions).
    #[deprecated(note = "use `with_profiling(ProfilingOverhead::nvprof())`")]
    pub fn profiled(self) -> Self {
        self.with_profiling(ProfilingOverhead::nvprof())
    }

    /// Sets the profiler instrumentation overhead
    /// ([`ProfilingOverhead::nvprof`] reproduces Table VIII's conditions).
    pub fn with_profiling(mut self, profiling: ProfilingOverhead) -> Self {
        self.profiling = profiling;
        self
    }

    /// Without the per-run engine upload (Table X "memcpy excluded").
    pub fn without_engine_upload(mut self) -> Self {
        self.include_engine_upload = false;
        self
    }

    /// Sets the host glue time.
    pub fn with_host_glue_us(mut self, us: f64) -> Self {
        self.host_glue_us = us;
        self
    }

    /// Sets the measurement harness' run-to-run relative jitter; negative or
    /// NaN values clamp to zero (deterministic runs).
    pub fn with_run_jitter_sd(mut self, sd: f64) -> Self {
        self.run_jitter_sd = if sd.is_nan() { 0.0 } else { sd.max(0.0) };
        self
    }
}

/// A bound (engine, device) pair ready to run (TensorRT
/// `IExecutionContext` analog).
#[derive(Debug, Clone)]
pub struct ExecutionContext<'e> {
    engine: &'e Engine,
    device: DeviceSpec,
    plan: OnceLock<InferencePlan<'e>>,
}

impl<'e> ExecutionContext<'e> {
    /// Binds an engine to a device. Running an engine on a different
    /// platform than it was built for is allowed — exactly what the paper's
    /// cNX_rAGX / cAGX_rNX experiments do.
    pub fn new(engine: &'e Engine, device: DeviceSpec) -> Self {
        Self {
            engine,
            device,
            plan: OnceLock::new(),
        }
    }

    /// The context's precompiled execution plan, compiled on first use and
    /// cached for the context's lifetime.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Execution`] if the engine holds
    /// descriptor-scale weights too large to materialize.
    pub fn plan(&self) -> Result<&InferencePlan<'e>, EngineError> {
        if let Some(p) = self.plan.get() {
            return Ok(p);
        }
        let compiled = InferencePlan::compile(self.engine)?;
        // A racing thread may have set it meanwhile; both compiles are
        // deterministic and identical, so either one serves.
        let _ = self.plan.set(compiled);
        Ok(self.plan.get().expect("plan just set"))
    }

    /// The engine.
    pub fn engine(&self) -> &Engine {
        self.engine
    }

    /// The device.
    pub fn device(&self) -> &DeviceSpec {
        &self.device
    }

    /// Numeric inference under each layer's selected tactic.
    ///
    /// Runs through the context's cached [`InferencePlan`] — weights
    /// materialize and lower to their tactic precision once, activations
    /// come from a liveness-driven arena — and is bit-identical to the
    /// naive interpreter ([`ExecutionContext::infer_unplanned`]).
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Execution`] on shape mismatch or if the engine
    /// holds descriptor-scale weights too large to materialize.
    pub fn infer(&self, input: &Tensor) -> Result<Vec<Tensor>, EngineError> {
        self.plan()?.execute(input, &mut PlanScratch::new())
    }

    /// Numeric inference through the reference interpreter: every call
    /// re-materializes weights, re-rounds them to the tactic precision, and
    /// allocates every activation fresh.
    ///
    /// This is the validation baseline the fast path is checked against
    /// (proptests and `bench_infer` assert bit-identity); production callers
    /// want [`ExecutionContext::infer`].
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Execution`] on shape mismatch.
    pub fn infer_unplanned(&self, input: &Tensor) -> Result<Vec<Tensor>, EngineError> {
        let graph: &Graph = &self.engine.graph;
        if input.shape() != graph.input_shape() {
            return Err(EngineError::Execution(trtsim_ir::IrError::ShapeMismatch {
                node: "input".into(),
                detail: format!(
                    "expected {:?}, got {:?}",
                    graph.input_shape(),
                    input.shape()
                ),
            }));
        }
        let mut values: Vec<Option<Tensor>> = vec![None; graph.len()];
        values[Graph::INPUT] = Some(input.clone());
        for node in graph.nodes().iter().skip(1) {
            let unit = &self.engine.units[node.id];
            let get = |i: usize| -> &Tensor {
                values[node.inputs[i]].as_ref().expect("producer computed")
            };
            let precision = unit
                .choice
                .as_ref()
                .map(|c| c.tactic.precision)
                .unwrap_or(Precision::Fp32);
            let mut out = match &node.kind {
                LayerKind::Input => unreachable!(),
                LayerKind::Conv(c) => {
                    let tactic = &unit
                        .choice
                        .as_ref()
                        .expect("conv nodes always have a tactic")
                        .tactic;
                    conv_forward(c, get(0), tactic, unit.quant.as_ref())
                }
                LayerKind::InnerProduct {
                    out_features,
                    weights,
                    bias,
                    activation,
                    ..
                } => {
                    let tactic = &unit
                        .choice
                        .as_ref()
                        .expect("fc nodes always have a tactic")
                        .tactic;
                    let w = weights.materialize();
                    let b: Vec<f32> = bias.iter().collect();
                    fc_forward(get(0), &w, &b, *out_features, *activation, tactic)
                }
                LayerKind::Pool {
                    kind,
                    kernel,
                    stride,
                    pad,
                } => precision_rounded(
                    ops::pool2d(get(0), *kind, *kernel, *stride, *pad),
                    precision,
                ),
                LayerKind::GlobalPool { kind } => {
                    precision_rounded(ops::global_pool(get(0), *kind), precision)
                }
                LayerKind::Act(a) => precision_rounded(ops::activate(get(0), *a), precision),
                LayerKind::BatchNorm {
                    mean,
                    var,
                    gamma,
                    beta,
                    eps,
                } => precision_rounded(
                    ops::batch_norm(get(0), mean, var, gamma, beta, *eps),
                    precision,
                ),
                LayerKind::Scale { scale, bias } => {
                    precision_rounded(ops::scale(get(0), scale, bias), precision)
                }
                LayerKind::Lrn {
                    local_size,
                    alpha,
                    beta,
                    k,
                } => precision_rounded(ops::lrn(get(0), *local_size, *alpha, *beta, *k), precision),
                LayerKind::Eltwise { op } => {
                    let ins: Vec<&Tensor> = (0..node.inputs.len()).map(get).collect();
                    precision_rounded(ops::eltwise(&ins, *op), precision)
                }
                LayerKind::Concat => {
                    let ins: Vec<&Tensor> = (0..node.inputs.len()).map(get).collect();
                    ops::concat(&ins)
                }
                LayerKind::Softmax => ops::softmax(get(0)),
                LayerKind::Upsample { factor } => ops::upsample(get(0), *factor),
                LayerKind::Flatten => get(0).clone().into_flat(),
                LayerKind::Slice { begin, len } => ops::slice_channels(get(0), *begin, *len),
                LayerKind::Dropout { .. } | LayerKind::Identity => get(0).clone(),
            };
            debug_assert_eq!(out.shape(), self.engine.shapes[node.id]);
            // Keep NaN out of downstream argmaxes if an fp16 overflowed.
            if out.as_slice().iter().any(|v| v.is_nan()) {
                out.map_inplace(|v| if v.is_nan() { 0.0 } else { v });
            }
            values[node.id] = Some(out);
        }
        Ok(graph
            .outputs()
            .iter()
            .map(|&id| values[id].take().expect("output computed"))
            .collect())
    }

    /// Predicted class of a classification engine (argmax of first output).
    ///
    /// # Errors
    ///
    /// Propagates [`ExecutionContext::infer`] errors.
    pub fn classify(&self, input: &Tensor) -> Result<usize, EngineError> {
        let out = self.infer(input)?;
        Ok(out[0].argmax().unwrap_or(0))
    }

    /// Runs the plan over `inputs` on up to `threads` worker threads,
    /// splitting the batch into contiguous chunks so each worker reuses one
    /// [`PlanScratch`] across its whole chunk. Results come back in input
    /// order and are bit-identical to calling `f` sequentially per input.
    fn run_batch<T, R, F>(&self, inputs: &[T], threads: usize, f: F) -> Result<Vec<R>, EngineError>
    where
        T: Borrow<Tensor> + Sync,
        R: Send,
        F: Fn(&InferencePlan<'e>, &mut PlanScratch, &Tensor) -> Result<R, EngineError> + Sync,
    {
        if inputs.is_empty() {
            return Ok(Vec::new());
        }
        let plan = self.plan()?;
        let workers = threads.max(1).min(inputs.len());
        let chunk = inputs.len().div_ceil(workers);
        let chunks = map_indexed(workers, workers, |w| {
            // div_ceil chunking can leave trailing workers with no inputs
            // (5 inputs / 4 workers -> chunks of 2, worker 3 starts past the
            // end); clamp so they get an empty slice instead of a panic.
            let start = (w * chunk).min(inputs.len());
            let end = ((w + 1) * chunk).min(inputs.len());
            let mut scratch = PlanScratch::new();
            inputs[start..end]
                .iter()
                .map(|t| f(plan, &mut scratch, t.borrow()))
                .collect::<Result<Vec<R>, EngineError>>()
        });
        let mut out = Vec::with_capacity(inputs.len());
        for chunk in chunks {
            out.extend(chunk?);
        }
        Ok(out)
    }

    /// [`ExecutionContext::infer`] over a batch, fanned out across up to
    /// `threads` worker threads (`1` runs inline). Output order matches
    /// input order and every tensor is bit-identical to the sequential
    /// single-image loop — workers share nothing but the read-only plan.
    ///
    /// # Errors
    ///
    /// Propagates the first [`ExecutionContext::infer`] error in input order.
    pub fn infer_batch<T>(
        &self,
        inputs: &[T],
        threads: usize,
    ) -> Result<Vec<Vec<Tensor>>, EngineError>
    where
        T: Borrow<Tensor> + Sync,
    {
        self.run_batch(inputs, threads, |plan, scratch, input| {
            plan.execute(input, scratch)
        })
    }

    /// [`ExecutionContext::classify`] over a batch, fanned out across up to
    /// `threads` worker threads. Labels come back in input order,
    /// bit-identical to the sequential loop.
    ///
    /// # Errors
    ///
    /// Propagates the first [`ExecutionContext::infer`] error in input order.
    pub fn classify_batch<T>(&self, inputs: &[T], threads: usize) -> Result<Vec<usize>, EngineError>
    where
        T: Borrow<Tensor> + Sync,
    {
        self.run_batch(inputs, threads, |plan, scratch, input| {
            let out = plan.execute(input, scratch)?;
            Ok(out[0].argmax().unwrap_or(0))
        })
    }

    /// Uploads the engine to the device (plan-sized H2D copy).
    pub fn upload_engine(&self, timeline: &mut GpuTimeline, stream: StreamId) -> f64 {
        timeline.enqueue_h2d(stream, self.engine.plan_size_bytes())
    }

    /// Enqueues one inference: input H2D, every kernel, output D2H, host glue.
    /// Returns the completion time (µs).
    pub fn enqueue_inference(
        &self,
        timeline: &mut GpuTimeline,
        stream: StreamId,
        opts: &TimingOptions,
    ) -> f64 {
        self.enqueue_batched_inference(timeline, stream, opts, 1)
    }

    /// Enqueues one *batched* inference covering `batch` frames: a single
    /// `batch`×-sized input H2D, one `batch`-scaled launch per kernel, one
    /// combined output D2H, and one round of host glue. Kernel work and copy
    /// traffic scale with the batch; launch overhead and glue are paid once —
    /// the amortization a dynamic batcher exploits (`batch == 1` is exactly
    /// [`ExecutionContext::enqueue_inference`]). Returns the completion time
    /// (µs).
    pub fn enqueue_batched_inference(
        &self,
        timeline: &mut GpuTimeline,
        stream: StreamId,
        opts: &TimingOptions,
        batch: usize,
    ) -> f64 {
        let batch = batch.max(1) as u64;
        let io = self.engine.io_bytes();
        timeline.enqueue_h2d(stream, io.input_bytes * batch);
        for unit in &self.engine.units {
            if let Some(choice) = &unit.choice {
                timeline.enqueue_batched_kernel(stream, &choice.kernel, batch);
            }
        }
        timeline.enqueue_d2h(stream, (io.output_bytes * batch).max(4));
        timeline.host_span(stream, "host_glue", opts.host_glue_us)
    }

    /// Measures `runs` end-to-end latencies (µs) under the paper's harness
    /// conditions, with run-to-run jitter drawn from `seed`.
    pub fn measure_latency(&self, opts: &TimingOptions, runs: usize, seed: u64) -> Vec<f64> {
        let mut rng = Pcg32::seed_from_u64(seed);
        (0..runs)
            .map(|_| {
                let mut tl = GpuTimeline::with_overhead(self.device.clone(), opts.profiling);
                let s = tl.create_stream();
                if opts.include_engine_upload {
                    self.upload_engine(&mut tl, s);
                }
                let end = self.enqueue_inference(&mut tl, s, opts);
                (end * (1.0 + opts.run_jitter_sd * rng.normal())).max(0.0)
            })
            .collect()
    }

    /// GPU busy time of one inference (kernel roofline sum, no launches), µs.
    pub fn gpu_busy_us(&self) -> f64 {
        self.engine
            .units
            .iter()
            .filter_map(|u| u.choice.as_ref())
            .map(|c| kernel_busy_us(&c.kernel, &self.device))
            .sum()
    }

    /// Total post-cache DRAM traffic of one inference, bytes.
    pub fn dram_bytes_per_inference(&self) -> u64 {
        self.engine
            .units
            .iter()
            .filter_map(|u| u.choice.as_ref())
            .map(|c| c.kernel.dram_bytes)
            .sum()
    }

    /// Summarizes this context for the multi-stream concurrency model
    /// (Figures 3/4). `host_glue_us` should match the serving loop's.
    ///
    /// Per-stream context memory is what bounds the thread count in the
    /// paper's Figures 3/4: each stream's context allocates its activation
    /// bindings (multiply-buffered for pipelining), a cuDNN workspace per
    /// kernel, and fixed CUDA overhead. Deeper engines (GoogLeNet: ~70
    /// launches) therefore support fewer streams than shallow ones
    /// (Tiny-YOLOv3: ~20) even at similar activation volume.
    pub fn profile(&self, host_glue_us: f64) -> EngineProfile {
        let launches = self.engine.launch_count() as u64;
        EngineProfile {
            busy_us: self.gpu_busy_us(),
            gap_us: launches as f64 * self.device.kernel_launch_us + host_glue_us,
            dram_bytes: self.dram_bytes_per_inference(),
            activation_bytes: 4 * self.engine.total_activation_bytes()
                + launches * PER_KERNEL_WORKSPACE_BYTES
                + PER_CONTEXT_OVERHEAD_BYTES,
            weight_bytes: self.engine.stored_weight_bytes(),
        }
    }
}

fn precision_rounded(mut t: Tensor, precision: Precision) -> Tensor {
    if precision == Precision::Fp16 {
        apply_precision(&mut t, Precision::Fp16);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::Builder;
    use crate::config::BuilderConfig;
    use trtsim_ir::graph::{Graph, LayerKind, PoolKind};

    fn net() -> Graph {
        let mut g = Graph::new("m", [3, 16, 16]);
        let c1 = g.add_layer(
            "c1",
            LayerKind::conv_seeded(16, 3, 3, 1, 1, 0),
            &[Graph::INPUT],
        );
        let p = g.add_layer(
            "p",
            LayerKind::Pool {
                kind: PoolKind::Max,
                kernel: 2,
                stride: 2,
                pad: 0,
            },
            &[c1],
        );
        let gp = g.add_layer(
            "gp",
            LayerKind::GlobalPool {
                kind: PoolKind::Avg,
            },
            &[p],
        );
        let fc = g.add_layer("fc", LayerKind::fc_seeded(10, 16, 3), &[gp]);
        g.mark_output(fc);
        g
    }

    fn engine(seed: u64) -> Engine {
        Builder::new(
            DeviceSpec::xavier_nx(),
            BuilderConfig::default().with_build_seed(seed),
        )
        .build(&net())
        .unwrap()
    }

    #[test]
    fn numeric_inference_close_to_reference() {
        let e = engine(1);
        let ctx = ExecutionContext::new(&e, DeviceSpec::xavier_nx());
        let mut rng = Pcg32::seed_from_u64(2);
        let input = Tensor::from_fn([3, 16, 16], |_, _, _| rng.normal() as f32);
        let opt = ctx.infer(&input).unwrap();
        let src = net();
        let reference = trtsim_ir::ReferenceExecutor::new(&src)
            .unwrap()
            .run(&input)
            .unwrap();
        for (a, b) in reference[0].as_slice().iter().zip(opt[0].as_slice()) {
            assert!((a - b).abs() < 0.05 * a.abs().max(1.0), "{a} vs {b}");
        }
    }

    #[test]
    fn latency_is_positive_and_jittered() {
        let e = engine(2);
        let ctx = ExecutionContext::new(&e, DeviceSpec::xavier_nx());
        let lats = ctx.measure_latency(&TimingOptions::default(), 10, 7);
        assert_eq!(lats.len(), 10);
        assert!(lats.iter().all(|&l| l > 0.0));
        let first = lats[0];
        assert!(lats.iter().any(|&l| (l - first).abs() > 1e-9), "no jitter");
    }

    #[test]
    fn profiling_and_upload_increase_latency() {
        let e = engine(3);
        let ctx = ExecutionContext::new(&e, DeviceSpec::xavier_nx());
        let base = TimingOptions {
            run_jitter_sd: 0.0,
            ..TimingOptions::default()
        };
        let with_all = ctx.measure_latency(&base, 1, 0)[0];
        let no_upload = ctx.measure_latency(&base.without_engine_upload(), 1, 0)[0];
        let profiled =
            ctx.measure_latency(&base.with_profiling(ProfilingOverhead::nvprof()), 1, 0)[0];
        assert!(no_upload < with_all);
        assert!(profiled > with_all);
    }

    #[test]
    fn cross_platform_context_runs() {
        let e = engine(4); // built on NX
        let ctx = ExecutionContext::new(&e, DeviceSpec::xavier_agx());
        let opts = TimingOptions {
            run_jitter_sd: 0.0,
            ..TimingOptions::default()
        };
        let lat = ctx.measure_latency(&opts, 1, 0)[0];
        assert!(lat > 0.0);
    }

    #[test]
    fn profile_quantities_are_consistent() {
        let e = engine(5);
        let ctx = ExecutionContext::new(&e, DeviceSpec::xavier_nx());
        let p = ctx.profile(1000.0);
        assert!(p.busy_us > 0.0);
        assert!(p.gap_us >= 1000.0);
        assert!(p.dram_bytes > 0);
        assert!(p.weight_bytes > 0);
        assert!(p.activation_bytes > (48 << 20));
    }

    #[test]
    fn planned_infer_matches_interpreter_bit_for_bit() {
        let e = engine(9);
        let ctx = ExecutionContext::new(&e, DeviceSpec::xavier_nx());
        let mut rng = Pcg32::seed_from_u64(17);
        for _ in 0..4 {
            let input = Tensor::from_fn([3, 16, 16], |_, _, _| rng.normal() as f32);
            assert_eq!(
                ctx.infer(&input).unwrap(),
                ctx.infer_unplanned(&input).unwrap()
            );
        }
    }

    #[test]
    fn batch_apis_match_sequential_loop_at_any_thread_count() {
        let e = engine(10);
        let ctx = ExecutionContext::new(&e, DeviceSpec::xavier_nx());
        let mut rng = Pcg32::seed_from_u64(21);
        let inputs: Vec<Tensor> = (0..7)
            .map(|_| Tensor::from_fn([3, 16, 16], |_, _, _| rng.normal() as f32))
            .collect();
        let want_outs: Vec<Vec<Tensor>> = inputs.iter().map(|t| ctx.infer(t).unwrap()).collect();
        let want_labels: Vec<usize> = inputs.iter().map(|t| ctx.classify(t).unwrap()).collect();
        for threads in [1, 2, 3, 16] {
            assert_eq!(ctx.infer_batch(&inputs, threads).unwrap(), want_outs);
            assert_eq!(ctx.classify_batch(&inputs, threads).unwrap(), want_labels);
        }
        assert!(ctx.infer_batch::<Tensor>(&[], 4).unwrap().is_empty());
    }

    #[test]
    fn wrong_input_shape_rejected() {
        let e = engine(6);
        let ctx = ExecutionContext::new(&e, DeviceSpec::xavier_nx());
        assert!(ctx.infer(&Tensor::zeros([3, 8, 8])).is_err());
    }

    #[test]
    fn batched_enqueue_amortizes_per_frame_cost() {
        let e = engine(8);
        let ctx = ExecutionContext::new(&e, DeviceSpec::xavier_nx());
        let opts = TimingOptions {
            run_jitter_sd: 0.0,
            ..TimingOptions::default()
        };
        let mut tl1 = GpuTimeline::new(DeviceSpec::xavier_nx());
        let s1 = tl1.create_stream();
        let mut one_by_one = 0.0;
        for _ in 0..8 {
            one_by_one = ctx.enqueue_inference(&mut tl1, s1, &opts);
        }
        let mut tl8 = GpuTimeline::new(DeviceSpec::xavier_nx());
        let s8 = tl8.create_stream();
        let batched = ctx.enqueue_batched_inference(&mut tl8, s8, &opts, 8);
        // Same 8 frames, one launch set + one glue round: strictly faster.
        assert!(batched < one_by_one, "{batched} !< {one_by_one}");
        assert_eq!(tl8.kernels().len(), e.launch_count());
        // And a batch of one is byte-identical to the single-frame path.
        let mut tl_a = GpuTimeline::new(DeviceSpec::xavier_nx());
        let mut tl_b = GpuTimeline::new(DeviceSpec::xavier_nx());
        let sa = tl_a.create_stream();
        let sb = tl_b.create_stream();
        assert_eq!(
            ctx.enqueue_inference(&mut tl_a, sa, &opts),
            ctx.enqueue_batched_inference(&mut tl_b, sb, &opts, 1)
        );
    }

    #[test]
    fn timeline_records_all_kernels() {
        let e = engine(7);
        let ctx = ExecutionContext::new(&e, DeviceSpec::xavier_nx());
        let mut tl = GpuTimeline::new(DeviceSpec::xavier_nx());
        let s = tl.create_stream();
        ctx.enqueue_inference(&mut tl, s, &TimingOptions::default());
        assert_eq!(tl.kernels().len(), e.launch_count());
        assert_eq!(tl.memcpys().len(), 2); // input h2d + output d2h
    }
}
