//! INT8 entropy-free amax calibration.
//!
//! TensorRT's INT8 mode runs a calibration batch through the FP32 network and
//! derives a per-tensor dynamic range; we use the simple amax calibrator
//! (`scale = amax / 127`). Convolutions whose input activations were observed
//! get a [`QuantDesc`]; layers never reached by calibration stay in FP16/FP32.

use std::collections::HashMap;

use trtsim_ir::graph::LayerKind;
use trtsim_ir::tensor::Tensor;
use trtsim_ir::{Graph, NodeId, ReferenceExecutor};
use trtsim_kernels::numeric::QuantDesc;
use trtsim_util::f16::QuantParams;

use crate::error::EngineError;

/// Per-layer INT8 scales derived from a calibration batch.
pub type CalibrationTable = HashMap<NodeId, QuantDesc>;

/// Runs calibration over the optimized graph.
///
/// # Errors
///
/// Returns [`EngineError::MissingCalibration`] for an empty batch and
/// execution errors if the graph cannot run numerically (descriptor-scale
/// models cannot be INT8-calibrated).
pub fn calibrate(graph: &Graph, images: &[Tensor]) -> Result<CalibrationTable, EngineError> {
    if images.is_empty() {
        return Err(EngineError::MissingCalibration);
    }
    let exec = ReferenceExecutor::new(graph).map_err(EngineError::Execution)?;
    // Observed amax of every node's *output* activation.
    let mut amax = vec![0.0f32; graph.len()];
    for image in images {
        let trace = exec.run_trace(image).map_err(EngineError::Execution)?;
        for (slot, tensor) in amax.iter_mut().zip(&trace) {
            *slot = slot.max(tensor.amax());
        }
    }
    let mut table = CalibrationTable::new();
    for node in graph.nodes() {
        let LayerKind::Conv(c) = &node.kind else {
            continue;
        };
        let input_amax = amax[node.inputs[0]];
        table.insert(
            node.id,
            QuantDesc {
                input: QuantParams::from_amax(input_amax),
                weights: QuantParams::from_amax(c.weights.amax()),
            },
        );
    }
    Ok(table)
}

#[cfg(test)]
mod tests {
    use super::*;
    use trtsim_ir::graph::{Graph, LayerKind};
    use trtsim_util::rng::Pcg32;

    fn net() -> Graph {
        let mut g = Graph::new("t", [3, 8, 8]);
        let c1 = g.add_layer(
            "c1",
            LayerKind::conv_seeded(4, 3, 3, 1, 1, 0),
            &[Graph::INPUT],
        );
        let c2 = g.add_layer("c2", LayerKind::conv_seeded(4, 4, 3, 1, 1, 1), &[c1]);
        g.mark_output(c2);
        g
    }

    fn images(n: usize) -> Vec<Tensor> {
        let mut rng = Pcg32::seed_from_u64(0);
        (0..n)
            .map(|_| Tensor::from_fn([3, 8, 8], |_, _, _| rng.normal() as f32))
            .collect()
    }

    #[test]
    fn every_conv_gets_scales() {
        let g = net();
        let table = calibrate(&g, &images(4)).unwrap();
        assert_eq!(table.len(), 2);
        for q in table.values() {
            assert!(q.input.scale > 0.0);
            assert!(q.weights.scale > 0.0);
        }
    }

    #[test]
    fn more_images_never_shrink_ranges() {
        let g = net();
        let few = calibrate(&g, &images(2)).unwrap();
        let many = calibrate(&g, &images(8)).unwrap();
        for (id, q) in &few {
            assert!(many[id].input.scale >= q.input.scale - 1e-9);
        }
    }

    #[test]
    fn empty_batch_is_an_error() {
        assert_eq!(
            calibrate(&net(), &[]).unwrap_err(),
            EngineError::MissingCalibration
        );
    }

    #[test]
    fn deterministic() {
        let g = net();
        let imgs = images(3);
        let a = calibrate(&g, &imgs).unwrap();
        let b = calibrate(&g, &imgs).unwrap();
        assert_eq!(a.len(), b.len());
        for (id, q) in &a {
            assert_eq!(b[id], *q);
        }
    }
}
