//! The engine builder: runs the full Figure 2 pipeline.

use trtsim_gpu::device::DeviceSpec;
use trtsim_ir::Graph;

use crate::autotune::{self, AutotuneOptions};
use crate::calibrate::{self, CalibrationTable};
use crate::compress;
use crate::config::BuilderConfig;
use crate::engine::{BuildReport, Engine, ExecUnit, IoBytes};
use crate::error::EngineError;
use crate::passes::{self, PassReport};

/// Builds [`Engine`]s for one target device (TensorRT `IBuilder` analog).
///
/// # Examples
///
/// ```
/// use trtsim_core::{Builder, BuilderConfig};
/// use trtsim_gpu::device::DeviceSpec;
/// use trtsim_ir::graph::{Graph, LayerKind};
///
/// let mut g = Graph::new("m", [3, 8, 8]);
/// let c = g.add_layer("c", LayerKind::conv_seeded(8, 3, 3, 1, 1, 0), &[Graph::INPUT]);
/// g.mark_output(c);
/// let engine = Builder::new(DeviceSpec::xavier_nx(), BuilderConfig::default())
///     .build(&g)?;
/// assert_eq!(engine.launch_count(), 1);
/// # Ok::<(), trtsim_core::EngineError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Builder {
    device: DeviceSpec,
    config: BuilderConfig,
}

impl Builder {
    /// Creates a builder targeting `device`.
    pub fn new(device: DeviceSpec, config: BuilderConfig) -> Self {
        Self { device, config }
    }

    /// The target device.
    pub fn device(&self) -> &DeviceSpec {
        &self.device
    }

    /// The configuration.
    pub fn config(&self) -> &BuilderConfig {
        &self.config
    }

    /// Runs the optimization pipeline and returns a built engine.
    ///
    /// Each call without a pinned seed behaves like a fresh TensorRT build:
    /// tactic timing noise is drawn anew, so repeated builds of the same
    /// network may select different kernels.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError`] if the network is invalid, a layer has no
    /// tactic, or INT8 calibration fails.
    pub fn build(&self, network: &Graph) -> Result<Engine, EngineError> {
        let build_started = std::time::Instant::now();
        let build_seed = self.config.resolve_seed();

        // Figure 2, steps 1-3 (each independently ablatable).
        let mut passes_report = PassReport::default();
        let mut g = network.clone();
        if self.config.enable_dead_layer {
            let (next, r) = passes::dead_layer::run(&g)?;
            passes_report.merge(&r);
            g = next;
        } else {
            g.validate()?;
        }
        if self.config.enable_vertical_fusion {
            let (next, r) = passes::vertical_fusion::run(&g)?;
            passes_report.merge(&r);
            g = next;
        }
        if self.config.enable_horizontal_merge {
            let (next, r) = passes::horizontal_merge::run(&g)?;
            passes_report.merge(&r);
            g = next;
        }

        // Step 4a: weight compression.
        let (g, compressed_blobs) = if self.config.enable_clustering || self.config.enable_pruning {
            compress::compress_graph(
                &g,
                self.config
                    .enable_clustering
                    .then_some(self.config.cluster_bits),
                self.config
                    .enable_pruning
                    .then_some(self.config.prune_threshold),
            )
        } else {
            (g, 0)
        };

        // Step 4b: INT8 calibration (only when images were provided).
        let calibration: CalibrationTable =
            if self.config.policy.allow_int8 && !self.config.calibration.is_empty() {
                calibrate::calibrate(&g, &self.config.calibration)?
            } else {
                CalibrationTable::new()
            };

        // Step 5: timing-based kernel mapping. Per-node RNG streams keep the
        // result bit-identical at any thread count and under any cache state.
        let choices = autotune::select(
            &g,
            self.config.policy,
            &calibration,
            &self.device,
            build_seed,
            &AutotuneOptions {
                noise_sd: self.config.timing_noise_sd,
                samples: self.config.timing_samples,
                threads: self.config.resolve_build_threads(g.len()),
                cache: self.config.timing_cache.as_deref(),
            },
        )?;

        let shapes = g.infer_shapes()?;
        let units: Vec<ExecUnit> = choices
            .into_iter()
            .enumerate()
            .map(|(id, choice)| ExecUnit {
                quant: choice.as_ref().and_then(|_| calibration.get(&id).copied()),
                choice,
            })
            .collect();

        crate::telemetry::record_build(network.name(), build_started.elapsed().as_secs_f64());
        Ok(Engine {
            name: network.name().to_string(),
            io: IoBytes::of(&g, &shapes),
            graph: g,
            shapes,
            units,
            build_platform: self.device.platform,
            build_seed,
            report: BuildReport {
                passes: passes_report,
                compressed_blobs,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trtsim_gpu::device::Platform;
    use trtsim_ir::graph::{Activation, Graph, LayerKind};
    use trtsim_ir::weights::Weights;
    use trtsim_ir::Tensor;
    use trtsim_util::rng::Pcg32;

    /// conv → bn → relu → {branch1x1 a, branch1x1 b} → concat → dropout → softmax
    fn rich_net() -> Graph {
        let mut g = Graph::new("rich", [3, 16, 16]);
        let mut conv = LayerKind::conv_seeded(8, 3, 3, 1, 1, 0);
        if let LayerKind::Conv(c) = &mut conv {
            c.activation = None;
            c.weights = Weights::Dense(c.weights.iter().collect());
        }
        let c1 = g.add_layer("c1", conv, &[Graph::INPUT]);
        let bn = g.add_layer(
            "bn",
            LayerKind::BatchNorm {
                mean: vec![0.0; 8],
                var: vec![1.0; 8],
                gamma: vec![1.0; 8],
                beta: vec![0.0; 8],
                eps: 1e-5,
            },
            &[c1],
        );
        let relu = g.add_layer("relu", LayerKind::Act(Activation::Relu), &[bn]);
        let mk_branch = |g: &mut Graph, name: &str, seed: u64, input| {
            let mut k = LayerKind::conv_seeded(4, 8, 1, 1, 0, seed);
            if let LayerKind::Conv(c) = &mut k {
                c.weights = Weights::Dense(c.weights.iter().collect());
            }
            g.add_layer(name, k, &[input])
        };
        let b1 = mk_branch(&mut g, "b1", 1, relu);
        let b2 = mk_branch(&mut g, "b2", 2, relu);
        let cat = g.add_layer("cat", LayerKind::Concat, &[b1, b2]);
        let drop = g.add_layer("drop", LayerKind::Dropout { rate: 0.4 }, &[cat]);
        let gp = g.add_layer(
            "gp",
            LayerKind::GlobalPool {
                kind: trtsim_ir::graph::PoolKind::Avg,
            },
            &[drop],
        );
        let sm = g.add_layer("sm", LayerKind::Softmax, &[gp]);
        g.mark_output(sm);
        g
    }

    #[test]
    fn full_pipeline_runs_all_passes() {
        let engine = Builder::new(
            DeviceSpec::xavier_nx(),
            BuilderConfig::default().with_build_seed(5),
        )
        .build(&rich_net())
        .unwrap();
        let r = engine.report().passes;
        assert_eq!(r.removed, 1, "dropout removed");
        assert_eq!(r.fused, 2, "bn+relu fused");
        assert_eq!(r.merged, 1, "branches merged");
        assert_eq!(engine.build_platform(), Platform::Nx);
        // Fewer launches than source layers.
        assert!(engine.launch_count() < rich_net().len() - 1);
    }

    #[test]
    fn pinned_builds_are_identical() {
        let net = rich_net();
        let b = Builder::new(
            DeviceSpec::xavier_nx(),
            BuilderConfig::default().with_build_seed(9),
        );
        assert_eq!(b.build(&net).unwrap(), b.build(&net).unwrap());
    }

    #[test]
    fn thread_count_and_cache_never_change_the_engine() {
        use crate::timing_cache::TimingCache;
        use std::sync::Arc;
        let net = rich_net();
        let device = DeviceSpec::xavier_nx();
        let reference = Builder::new(
            device.clone(),
            BuilderConfig::default()
                .with_build_seed(9)
                .with_build_threads(1),
        )
        .build(&net)
        .unwrap();
        let cache = Arc::new(TimingCache::new());
        for threads in [0, 2, 8] {
            // Cold then warm cache at each thread count; all bit-identical.
            for _ in 0..2 {
                let engine = Builder::new(
                    device.clone(),
                    BuilderConfig::default()
                        .with_build_seed(9)
                        .with_build_threads(threads)
                        .with_timing_cache(cache.clone()),
                )
                .build(&net)
                .unwrap();
                assert_eq!(reference, engine, "threads={threads}");
            }
        }
        assert!(cache.stats().hits > 0, "warm rebuilds must hit the cache");
    }

    #[test]
    fn unpinned_builds_differ_in_seed() {
        let net = rich_net();
        let b = Builder::new(DeviceSpec::xavier_nx(), BuilderConfig::default());
        let e1 = b.build(&net).unwrap();
        let e2 = b.build(&net).unwrap();
        assert_ne!(e1.build_seed(), e2.build_seed());
    }

    #[test]
    fn warm_cache_preserves_build_to_build_drift() {
        use crate::timing_cache::TimingCache;
        use std::sync::Arc;
        // The cache memoizes only deterministic times; noise is drawn fresh
        // per build, so different seeds must keep selecting different kernel
        // sets (Tables XII/XIII) even with every timing query served warm.
        let net = rich_net();
        let cache = Arc::new(TimingCache::new());
        let kernel_sets: Vec<Vec<String>> = (0..12)
            .map(|seed| {
                let engine = Builder::new(
                    DeviceSpec::xavier_nx(),
                    BuilderConfig::default()
                        .with_build_seed(seed)
                        .with_timing_cache(cache.clone()),
                )
                .build(&net)
                .unwrap();
                engine
                    .units()
                    .iter()
                    .filter_map(|u| u.choice.as_ref().map(|c| c.kernel.name.clone()))
                    .collect()
            })
            .collect();
        assert!(
            kernel_sets.iter().any(|s| *s != kernel_sets[0]),
            "12 warm-cache builds all chose identical kernel sets"
        );
        assert!(cache.stats().hits > 0, "builds never hit the warm cache");
    }

    #[test]
    fn semantics_preserved_through_whole_pipeline() {
        use crate::runtime::ExecutionContext;
        let net = rich_net();
        let engine = Builder::new(
            DeviceSpec::xavier_nx(),
            BuilderConfig::default().with_build_seed(3),
        )
        .build(&net)
        .unwrap();
        let ctx = ExecutionContext::new(&engine, DeviceSpec::xavier_nx());
        let mut rng = Pcg32::seed_from_u64(11);
        let input = Tensor::from_fn([3, 16, 16], |_, _, _| rng.normal() as f32);
        let reference = trtsim_ir::ReferenceExecutor::new(&net)
            .unwrap()
            .run(&input)
            .unwrap();
        let optimized = ctx.infer(&input).unwrap();
        assert_eq!(reference.len(), optimized.len());
        for (a, b) in reference[0].as_slice().iter().zip(optimized[0].as_slice()) {
            assert!((a - b).abs() < 0.05, "{a} vs {b}");
        }
    }

    #[test]
    fn int8_build_quantizes_convs() {
        let net = rich_net();
        let mut rng = Pcg32::seed_from_u64(0);
        let calib: Vec<Tensor> = (0..3)
            .map(|_| Tensor::from_fn([3, 16, 16], |_, _, _| rng.normal() as f32))
            .collect();
        let engine = Builder::new(
            DeviceSpec::xavier_nx(),
            BuilderConfig::default()
                .with_build_seed(0)
                .with_calibration(calib),
        )
        .build(&net)
        .unwrap();
        // Calibration makes INT8 tactics *available*; the autotuner may or
        // may not pick them, but quant tables must align with choices.
        for unit in engine.units() {
            if let Some(c) = &unit.choice {
                if c.tactic.precision == trtsim_gpu::kernel::Precision::Int8 {
                    assert!(unit.quant.is_some());
                }
            }
        }
    }

    #[test]
    fn invalid_network_rejected() {
        let g = Graph::new("empty", [1, 1, 1]); // no outputs
        let err = Builder::new(DeviceSpec::xavier_nx(), BuilderConfig::default())
            .build(&g)
            .unwrap_err();
        assert!(matches!(err, EngineError::InvalidNetwork(_)));
    }
}
