//! Production-style inference serving over the simulated GPU.
//!
//! The paper's deployment pattern (§IV-B, §VI-A) is N camera feeds fanned
//! onto one Jetson: one engine, one CUDA context, one stream per worker.
//! This module runs that architecture as a real server would be built on top
//! of TensorRT — with *real* OS threads against the *simulated* timeline, so
//! the concurrency structure is genuine while time stays modeled:
//!
//! ```text
//!   submit / try_submit          batcher thread              worker threads
//!  ───────────────────▶ bounded ───────────────▶ per-worker ───────────────▶ GpuTimeline
//!   Err(QueueFull) ◀──  queue    coalesce ≤ B,   rendezvous   one batched     (stream w)
//!   when full            │       wait ≤ T µs     channels     enqueue per
//!                        ▼                                    batch
//!                  depth / high-water                          │
//!                                                              ▼
//!                                             ServerStats: p50/p90/p99, batch
//!                                             histogram, rejects, GR3D, FPS
//! ```
//!
//! * **Backpressure** — the submission queue is bounded.
//!   [`InferenceServer::try_submit`] refuses with [`ServingError::QueueFull`]
//!   when it is full (shed load at admission, the knee in the serving curve);
//!   [`InferenceServer::submit`] blocks instead.
//! * **Dynamic batching** — the batcher coalesces up to
//!   [`ServerConfig::max_batch_size`] queued frames into one batched enqueue
//!   ([`crate::runtime::ExecutionContext::enqueue_batched_inference`]),
//!   paying launch overhead and host glue once per batch instead of once per
//!   frame. [`ServerConfig::batch_timeout_us`] bounds how long a partial
//!   batch waits for stragglers (`0` = never wait, `f64::INFINITY` = only
//!   full batches, which makes a submit-all-then-drain run fully
//!   deterministic).
//! * **Graceful shutdown** — [`InferenceServer::drain`] completes every
//!   accepted frame; [`InferenceServer::abort`] drops what has not started.
//! * **Observability** — [`ServerStats`] carries per-request simulated
//!   latency percentiles (via [`trtsim_metrics::LatencyPercentiles`]), the
//!   batch-size histogram, the queue-depth high-water mark, and the rejected
//!   count. With [`ProfileOptions`] enabled ([`ServerConfig::with_profile`])
//!   each [`RequestRecord`] additionally carries a span-id range joining it
//!   to the exact timeline records that served it, and the stats gain a
//!   per-kernel time breakdown plus the full captured timeline — ready for
//!   `trtsim_profiler`'s chrome-trace export and anomaly detectors.
//!
//! The original one-shot [`serve`] entry point survives as a thin wrapper
//! (batch size 1, blocking submission) so the Figure 3/4 harness
//! configuration keeps working unchanged.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, SyncSender, TryRecvError, TrySendError};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use trtsim_gpu::device::DeviceSpec;
use trtsim_gpu::tegrastats;
use trtsim_gpu::timeline::{GpuTimeline, SpanSeq, StreamId};
use trtsim_metrics::{LatencyPercentiles, Registry, TelemetryServer};
use trtsim_util::Pcg32;

use crate::engine::Engine;
use crate::predict::{EngineFeatures, LatencyModel, QueueSignals};
use crate::reqtrace::{
    FlightRecorder, TraceCtx, TraceIdGen, TraceOptions, TraceOutcome, TraceSink,
};
use crate::runtime::{ExecutionContext, TimingOptions};
use crate::telemetry::{GpuSampler, ServingMetrics};

/// Errors from configuring or feeding an [`InferenceServer`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServingError {
    /// The [`ServerConfig`] is unusable; the message names the bad knob.
    InvalidConfig(String),
    /// The bounded submission queue is full — shed load or retry later.
    QueueFull,
    /// Deadline-based admission refused the frame: the online latency model
    /// predicts that even a best-case (batch-1) service would land past the
    /// configured deadline, so accepting it would only waste capacity.
    /// Counted in [`ServerStats::deadline_rejected`].
    DeadlineUnmeetable,
    /// The server has shut down and no longer accepts frames.
    Stopped,
    /// The telemetry scrape endpoint could not be started (bind failure).
    Telemetry(String),
}

impl std::fmt::Display for ServingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServingError::InvalidConfig(detail) => write!(f, "invalid server config: {detail}"),
            ServingError::QueueFull => write!(f, "submission queue is full"),
            ServingError::DeadlineUnmeetable => {
                write!(f, "deadline is predicted unmeetable at current load")
            }
            ServingError::Stopped => write!(f, "server is stopped"),
            ServingError::Telemetry(detail) => {
                write!(f, "telemetry endpoint failed to start: {detail}")
            }
        }
    }
}

impl std::error::Error for ServingError {}

/// Observability knobs for [`InferenceServer`] — what the server keeps
/// around, beyond counters, for post-run trace analysis.
///
/// Span attribution itself (the `span_lo`/`span_hi` range on every
/// [`RequestRecord`]) is always on: it costs two integer reads per batch.
/// These knobs gate the parts with real memory or time cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ProfileOptions {
    /// Keep a clone of the full [`GpuTimeline`] in [`ServerStats::timeline`]
    /// at snapshot/drain time, for chrome-trace export and anomaly detection
    /// (`trtsim-profiler`).
    pub capture_timeline: bool,
    /// Aggregate per-kernel busy time into [`ServerStats::kernel_breakdown`]
    /// so a slow percentile can be attributed to specific kernels.
    pub kernel_breakdown: bool,
}

impl ProfileOptions {
    /// Everything on — what the `trace_export` example and the repro
    /// harnesses use.
    pub fn full() -> Self {
        Self {
            capture_timeline: true,
            kernel_breakdown: true,
        }
    }

    /// Enables timeline capture.
    pub fn with_capture_timeline(mut self, on: bool) -> Self {
        self.capture_timeline = on;
        self
    }

    /// Enables the per-kernel time breakdown.
    pub fn with_kernel_breakdown(mut self, on: bool) -> Self {
        self.kernel_breakdown = on;
        self
    }
}

/// Total busy time attributed to one kernel symbol over a serving run — the
/// [`ServerStats::kernel_breakdown`] row type.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelTime {
    /// Kernel symbol.
    pub name: String,
    /// Number of launches across all streams.
    pub calls: u64,
    /// Total busy time, µs.
    pub total_us: f64,
}

/// How simulated arrival timestamps are assigned to accepted frames.
///
/// The arrival clock is what [`ServingReport`] latencies are measured
/// against: a frame's reported latency is its completion time minus its
/// arrival time, so an open-loop source charges queueing delay to bursts
/// the way a real camera feed would.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ArrivalProcess {
    /// Deterministic fixed-rate source: frame `n` arrives at exactly
    /// `n * arrival_period_us`. This is the legacy behaviour and keeps
    /// closed-loop runs bit-identical across versions.
    #[default]
    Periodic,
    /// Open-loop Poisson source: inter-arrival gaps are exponential with
    /// mean [`ServerConfig::arrival_period_us`], drawn from a PCG stream
    /// seeded here so a given seed replays bit-identically.
    Poisson {
        /// Seed of the inter-arrival gap stream.
        seed: u64,
    },
}

/// Configuration for [`InferenceServer`], built fluently like
/// [`crate::config::BuilderConfig`]: start from [`ServerConfig::default`],
/// chain `with_*` setters, and let [`InferenceServer::start`] validate the
/// result. New knobs get defaults, so code built this way keeps compiling as
/// fields are added (the `Default` + builder convention documented in
/// DESIGN §6).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServerConfig {
    /// Worker thread count; each worker owns one stream on the shared
    /// timeline (the paper's thread-per-camera pattern).
    pub workers: usize,
    /// Capacity of the bounded submission queue. Admission beyond this
    /// rejects ([`ServingError::QueueFull`]) or blocks.
    pub queue_capacity: usize,
    /// Largest number of frames the dynamic batcher coalesces into one
    /// batched enqueue. `1` disables batching.
    pub max_batch_size: usize,
    /// How long (simulated µs) a partial batch waits for stragglers before
    /// dispatching. `0` never waits; `f64::INFINITY` dispatches full batches
    /// only (deterministic for submit-all-then-drain runs). The wait is
    /// charged to the dispatching stream when it expires.
    pub batch_timeout_us: f64,
    /// Simulated inter-arrival gap between accepted frames, µs. Models an
    /// open-loop source (a camera at a fixed rate); `0` means all frames
    /// arrive at t = 0, so reported latency includes time spent queued.
    pub arrival_period_us: f64,
    /// How arrival timestamps are generated from the period: a fixed-rate
    /// clock (default) or a seeded Poisson process for open-loop traffic.
    pub arrival_process: ArrivalProcess,
    /// Per-request latency deadline, simulated µs, measured from arrival to
    /// completion. `0` disables deadline accounting. When set, late
    /// completions are counted in [`ServerStats::deadline_missed`]; with
    /// [`ServerConfig::predictive`] also on, admission and the batcher
    /// consult the online latency model ([`crate::predict::LatencyModel`])
    /// to refuse doomed frames and cap batch sizes under the SLO.
    pub deadline_us: f64,
    /// Enables predictive scheduling: the server trains an online latency
    /// model from its own completions and uses it for deadline-based
    /// admission and SLO-aware batch sizing (no-ops until the model has
    /// [`ServerConfig::predictor_min_obs`] observations).
    pub predictive: bool,
    /// Cold-start gate of the online latency model: predictions (and the
    /// decisions they drive) only activate after this many observations.
    pub predictor_min_obs: u64,
    /// Timing harness options applied to every enqueue.
    pub timing: TimingOptions,
    /// Observability knobs (timeline capture, per-kernel breakdown).
    pub profile: ProfileOptions,
    /// When set, the server binds a [`trtsim_metrics::TelemetryServer`] on
    /// this address (`GET /metrics` Prometheus text, `GET /metrics.json`
    /// snapshot) and runs the tegrastats-style [`GpuSampler`] for the life
    /// of the server. Port 0 picks a free port; see
    /// [`InferenceServer::telemetry_addr`] for the bound address.
    pub telemetry_addr: Option<std::net::SocketAddr>,
    /// Wall-clock cadence of the GPU sampler, milliseconds. Only meaningful
    /// with [`ServerConfig::telemetry_addr`] set.
    pub telemetry_sample_ms: u64,
    /// Request-trace flight-recorder knobs ([`crate::reqtrace`]): ring
    /// capacity, tail-retention sampling rate, and the master switch. The
    /// recorder is always wired (admission mints a trace id per frame either
    /// way); disabling it only stops retention.
    pub trace: TraceOptions,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            workers: 4,
            queue_capacity: 64,
            max_batch_size: 1,
            batch_timeout_us: 0.0,
            arrival_period_us: 0.0,
            arrival_process: ArrivalProcess::Periodic,
            deadline_us: 0.0,
            predictive: false,
            predictor_min_obs: 64,
            timing: TimingOptions::default(),
            profile: ProfileOptions::default(),
            telemetry_addr: None,
            telemetry_sample_ms: 50,
            trace: TraceOptions::default(),
        }
    }
}

impl ServerConfig {
    /// Sets the worker (= stream) count.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Sets the bounded submission-queue capacity.
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity;
        self
    }

    /// Sets the dynamic batcher's maximum batch size.
    pub fn with_max_batch_size(mut self, batch: usize) -> Self {
        self.max_batch_size = batch;
        self
    }

    /// Sets the straggler wait for partial batches, simulated µs.
    pub fn with_batch_timeout_us(mut self, us: f64) -> Self {
        self.batch_timeout_us = us;
        self
    }

    /// Sets the simulated inter-arrival gap between accepted frames, µs.
    pub fn with_arrival_period_us(mut self, us: f64) -> Self {
        self.arrival_period_us = us;
        self
    }

    /// Sets the arrival-timestamp generator.
    pub fn with_arrival_process(mut self, process: ArrivalProcess) -> Self {
        self.arrival_process = process;
        self
    }

    /// Switches the arrival clock to a seeded Poisson process with mean
    /// inter-arrival gap [`ServerConfig::arrival_period_us`] (shorthand for
    /// [`ServerConfig::with_arrival_process`]).
    pub fn with_poisson_arrivals(mut self, seed: u64) -> Self {
        self.arrival_process = ArrivalProcess::Poisson { seed };
        self
    }

    /// Sets the per-request latency deadline, simulated µs (`0` disables).
    pub fn with_deadline_us(mut self, us: f64) -> Self {
        self.deadline_us = us;
        self
    }

    /// Enables or disables predictive (learned-model) scheduling.
    pub fn with_predictive(mut self, on: bool) -> Self {
        self.predictive = on;
        self
    }

    /// Sets the predictor's cold-start observation threshold.
    pub fn with_predictor_min_obs(mut self, min_obs: u64) -> Self {
        self.predictor_min_obs = min_obs;
        self
    }

    /// Sets the timing harness options.
    pub fn with_timing(mut self, timing: TimingOptions) -> Self {
        self.timing = timing;
        self
    }

    /// Sets the observability knobs.
    pub fn with_profile(mut self, profile: ProfileOptions) -> Self {
        self.profile = profile;
        self
    }

    /// Enables the live telemetry endpoint + GPU sampler on `addr`
    /// (e.g. `"127.0.0.1:9090".parse().unwrap()`; port 0 picks a free port).
    pub fn with_telemetry(mut self, addr: std::net::SocketAddr) -> Self {
        self.telemetry_addr = Some(addr);
        self
    }

    /// Sets the GPU sampler cadence, wall-clock milliseconds.
    pub fn with_telemetry_sample_ms(mut self, ms: u64) -> Self {
        self.telemetry_sample_ms = ms;
        self
    }

    /// Sets the request-trace flight-recorder options.
    pub fn with_trace(mut self, trace: TraceOptions) -> Self {
        self.trace = trace;
        self
    }

    /// Checks every knob, naming the first invalid one.
    ///
    /// # Errors
    ///
    /// Returns [`ServingError::InvalidConfig`] if any field is out of range.
    pub fn validate(&self) -> Result<(), ServingError> {
        if self.workers == 0 {
            return Err(ServingError::InvalidConfig(
                "need at least one worker".into(),
            ));
        }
        if self.queue_capacity == 0 {
            return Err(ServingError::InvalidConfig(
                "queue capacity must be at least 1".into(),
            ));
        }
        if self.max_batch_size == 0 {
            return Err(ServingError::InvalidConfig(
                "max batch size must be at least 1".into(),
            ));
        }
        if self.batch_timeout_us.is_nan() || self.batch_timeout_us < 0.0 {
            return Err(ServingError::InvalidConfig(
                "batch timeout must be non-negative (or infinite)".into(),
            ));
        }
        if !self.arrival_period_us.is_finite() || self.arrival_period_us < 0.0 {
            return Err(ServingError::InvalidConfig(
                "arrival period must be finite and non-negative".into(),
            ));
        }
        if matches!(self.arrival_process, ArrivalProcess::Poisson { .. })
            && self.arrival_period_us == 0.0
        {
            return Err(ServingError::InvalidConfig(
                "poisson arrivals need a positive mean period".into(),
            ));
        }
        if self.deadline_us.is_nan() || self.deadline_us < 0.0 {
            return Err(ServingError::InvalidConfig(
                "deadline must be non-negative".into(),
            ));
        }
        if self.predictor_min_obs == 0 {
            return Err(ServingError::InvalidConfig(
                "predictor needs at least one observation before it is warm".into(),
            ));
        }
        if self.telemetry_sample_ms == 0 {
            return Err(ServingError::InvalidConfig(
                "telemetry sample period must be at least 1 ms".into(),
            ));
        }
        if self.trace.capacity == 0 {
            return Err(ServingError::InvalidConfig(
                "trace ring capacity must be at least 1".into(),
            ));
        }
        if self.trace.sample_every == 0 {
            return Err(ServingError::InvalidConfig(
                "trace sample rate must be at least 1 (1 keeps everything)".into(),
            ));
        }
        Ok(())
    }
}

/// Telemetry identity of one server beyond its model: which fleet device it
/// runs on and which tenant it is dedicated to. The default (no device, no
/// tenant) keeps the legacy single-device `{model=...}` series names stable;
/// a fleet names every member so two devices serving the same model publish
/// distinct series.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServingLabels {
    /// `device=` label value, e.g. the fleet device name.
    pub device: Option<String>,
    /// `tenant=` label value for tenant-dedicated servers.
    pub tenant: Option<String>,
}

impl ServingLabels {
    /// Labels naming the fleet device this server runs on.
    pub fn device(name: impl Into<String>) -> Self {
        Self {
            device: Some(name.into()),
            tenant: None,
        }
    }

    /// Adds a tenant label.
    pub fn with_tenant(mut self, tenant: impl Into<String>) -> Self {
        self.tenant = Some(tenant.into());
        self
    }
}

/// One completed request, for order/latency audits and trace attribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RequestRecord {
    /// Caller-supplied frame id.
    pub frame: u64,
    /// Worker (= stream index) that served it.
    pub worker: usize,
    /// Sequence number of the batched enqueue that carried it (batcher
    /// dispatch order).
    pub batch: u64,
    /// First span sequence number (inclusive) of the batch's records on the
    /// worker's stream — host waits, H2D, kernels, D2H, glue. With
    /// [`RequestRecord::span_hi`] this is the half-open range that joins a
    /// slow request to the exact timeline records (and chrome-trace spans)
    /// that served it. Per-stream numbering keeps the range deterministic
    /// under the round-robin batcher.
    pub span_lo: SpanSeq,
    /// One past the last span sequence number of the batch's records.
    pub span_hi: SpanSeq,
    /// Simulated arrival time, µs.
    pub arrival_us: f64,
    /// Simulated completion time, µs.
    pub done_us: f64,
}

/// Snapshot of a server's counters and simulated-time metrics; obtained live
/// via [`InferenceServer::stats`] or finally from [`InferenceServer::drain`]
/// / [`InferenceServer::abort`].
#[derive(Debug, Clone, PartialEq)]
pub struct ServerStats {
    /// Worker count.
    pub workers: usize,
    /// Frames admitted past the bounded queue.
    pub accepted: u64,
    /// Frames fully served.
    pub completed: u64,
    /// Accepted frames discarded by [`InferenceServer::abort`].
    pub dropped: u64,
    /// Frames refused by [`InferenceServer::try_submit`] on a full queue.
    pub rejected: u64,
    /// Completed frames whose end-to-end latency exceeded
    /// [`ServerConfig::deadline_us`] (0 when no deadline is set).
    pub deadline_missed: u64,
    /// Frames refused at admission because the online model predicted their
    /// deadline unmeetable ([`ServingError::DeadlineUnmeetable`]).
    pub deadline_rejected: u64,
    /// Batched enqueues issued.
    pub batches: u64,
    /// Batch-size histogram: `batch_size_counts[s - 1]` batches held `s`
    /// frames.
    pub batch_size_counts: Vec<u64>,
    /// Most frames ever waiting in the submission queue.
    pub queue_high_water: usize,
    /// Per-request simulated latency percentiles.
    pub latency: LatencyPercentiles,
    /// Simulated wall time consumed, seconds.
    pub simulated_seconds: f64,
    /// Completed frames per simulated second.
    pub aggregate_fps: f64,
    /// Mean GR3D utilization over the run, percent.
    pub gr3d_percent: f64,
    /// Frames each worker served.
    pub frames_per_worker: Vec<u64>,
    /// Per-request completion log, in completion order per worker.
    pub completions: Vec<RequestRecord>,
    /// Per-kernel busy-time totals, heaviest first. Populated when
    /// [`ProfileOptions::kernel_breakdown`] is set; empty otherwise.
    pub kernel_breakdown: Vec<KernelTime>,
    /// The run's full simulated timeline. Populated when
    /// [`ProfileOptions::capture_timeline`] is set; feed it to
    /// `trtsim_profiler::chrome_trace` / `trtsim_profiler::anomaly`.
    pub timeline: Option<GpuTimeline>,
}

impl ServerStats {
    /// Mean frames per batched enqueue (0 when no batch ran).
    pub fn mean_batch_size(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.completed as f64 / self.batches as f64
        }
    }
}

/// Outcome of a serving run (the original aggregate report; kept for the
/// Figure 3/4 harness configuration and produced by [`serve`]).
#[derive(Debug, Clone, PartialEq)]
pub struct ServingReport {
    /// Worker (= stream) count.
    pub threads: usize,
    /// Total frames processed.
    pub frames: u64,
    /// Simulated wall time consumed, seconds.
    pub simulated_seconds: f64,
    /// Aggregate throughput, frames per simulated second.
    pub aggregate_fps: f64,
    /// Frames each worker processed.
    pub frames_per_thread: Vec<u64>,
    /// Mean GR3D utilization over the run, percent.
    pub gr3d_percent: f64,
}

/// A frame travelling from the submit path to the batcher: the caller's
/// frame id plus an optional explicit arrival timestamp. `None` lets the
/// server's own [`ArrivalClock`] assign the timestamp in acceptance order
/// (the legacy behaviour); `Some` carries an externally generated open-loop
/// arrival time, which is how a fleet router replays a shared traffic trace
/// across many servers.
#[derive(Debug, Clone, Copy)]
struct Submission {
    frame: u64,
    arrival_us: Option<f64>,
    /// Queue state sampled at admission, carried through so the predictor's
    /// training examples see exactly the signals a prediction would have.
    signals: QueueSignals,
    /// Request-scoped trace context, minted at admission and carried through
    /// the batcher to the worker that records the completed span tree.
    trace: TraceCtx,
}

/// A frame travelling from the batcher to a worker.
#[derive(Debug, Clone, Copy)]
struct Request {
    frame: u64,
    arrival_us: f64,
    signals: QueueSignals,
    trace: TraceCtx,
}

/// The predictive-scheduling bundle shared by the submit path, the batcher,
/// and the workers: one online model plus the static features of this
/// server's (engine, device) pair.
#[derive(Debug)]
struct Predictor {
    model: Arc<LatencyModel>,
    features: EngineFeatures,
}

impl Predictor {
    /// Largest batch size in `1..=max_batch` whose predicted p99 stays under
    /// `deadline_us`. Falls back to the static `max_batch` cap while the
    /// model is cold, and when even a lone frame is predicted to blow the
    /// deadline (the SLO is forfeit either way — drain at full speed and
    /// let admission shed the overload); the batcher adds a third fallback
    /// when the queue already holds a full batch. The cap therefore binds
    /// exactly in the light-load regime, where it stops the batcher from
    /// holding a frame through the `batch_timeout_us` window that its
    /// deadline cannot afford. Predictions are monotone in batch size, so
    /// the first overshoot ends the scan.
    fn slo_batch_cap(&self, max_batch: usize, deadline_us: f64, signals: &QueueSignals) -> usize {
        match self.model.predict(&self.features, 1, signals) {
            None => return max_batch,
            Some(p) if p.p99_us > deadline_us => return max_batch,
            Some(_) => {}
        }
        let mut cap = 1;
        for batch in 2..=max_batch {
            match self.model.predict(&self.features, batch, signals) {
                Some(p) if p.p99_us <= deadline_us => cap = batch,
                _ => break,
            }
        }
        cap
    }
}

/// A coalesced unit of work for one worker.
#[derive(Debug)]
struct Batch {
    /// Batcher dispatch sequence number (global, not per-worker).
    seq: u64,
    requests: Vec<Request>,
    /// Simulated straggler wait to charge before the enqueue (non-zero only
    /// when the batch closed because `batch_timeout_us` expired).
    waited_us: f64,
}

/// Counters the batcher and workers update as frames move through.
#[derive(Debug)]
struct StatsInner {
    completed: u64,
    dropped: u64,
    deadline_missed: u64,
    batches: u64,
    batch_size_counts: Vec<u64>,
    frames_per_worker: Vec<u64>,
    latencies_us: Vec<f64>,
    completions: Vec<RequestRecord>,
}

/// A running inference server: worker threads with per-worker streams on one
/// shared simulated timeline, fed through a bounded queue and a dynamic
/// batcher. See the [module docs](self) for the architecture.
///
/// # Examples
///
/// ```no_run
/// use trtsim_core::serving::{InferenceServer, ServerConfig};
/// # fn demo(engine: &trtsim_core::Engine, device: &trtsim_gpu::device::DeviceSpec)
/// #     -> Result<(), trtsim_core::serving::ServingError> {
/// let config = ServerConfig::default()
///     .with_workers(4)
///     .with_max_batch_size(8)
///     .with_batch_timeout_us(500.0);
/// let server = InferenceServer::start(engine, device, config)?;
/// for frame in 0..256 {
///     server.submit(frame)?;
/// }
/// let stats = server.drain();
/// println!("{:.0} FPS, {}", stats.aggregate_fps, stats.latency);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct InferenceServer {
    tx: Option<SyncSender<Submission>>,
    batcher: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    timeline: Arc<Mutex<GpuTimeline>>,
    stats: Arc<Mutex<StatsInner>>,
    depth: Arc<AtomicUsize>,
    high_water: Arc<AtomicUsize>,
    /// Batches currently in service across all workers — the live busy
    /// signal the predictor's feature vector reads.
    in_flight: Arc<AtomicUsize>,
    /// Frames that have left the system (served or dropped) — with
    /// `accepted`, gives [`InferenceServer::pending`].
    settled: Arc<AtomicU64>,
    /// Worker stream ids, in worker order — read to compute the
    /// committed-work horizon in [`InferenceServer::queue_signals`].
    streams: Vec<StreamId>,
    accepted: AtomicU64,
    rejected: AtomicU64,
    deadline_rejected: AtomicU64,
    predictor: Option<Arc<Predictor>>,
    abort_flag: Arc<AtomicBool>,
    config: ServerConfig,
    metrics: ServingMetrics,
    exporter: Option<TelemetryServer>,
    sampler: Option<GpuSampler>,
    /// Always-on flight recorder holding the retained request traces —
    /// fleet-shared when this server is a replica, private otherwise.
    recorder: Arc<FlightRecorder>,
    /// Mints one deterministic trace id per admitted frame.
    idgen: Arc<TraceIdGen>,
    /// This server's identity (model/device/tenant) stamped on every trace.
    sink: TraceSink,
}

impl InferenceServer {
    /// Validates `config`, spawns the batcher and worker threads, and starts
    /// accepting frames.
    ///
    /// # Errors
    ///
    /// Returns [`ServingError::InvalidConfig`] if any knob is out of range.
    pub fn start(
        engine: &Engine,
        device: &DeviceSpec,
        config: ServerConfig,
    ) -> Result<Self, ServingError> {
        Self::start_inner(
            engine,
            device,
            config,
            &ServingLabels::default(),
            None,
            None,
            None,
        )
    }

    /// [`InferenceServer::start`] with explicit telemetry labels — what a
    /// fleet uses so each member device publishes its own metric series.
    ///
    /// # Errors
    ///
    /// Returns [`ServingError::InvalidConfig`] if any knob is out of range.
    pub fn start_with_labels(
        engine: &Engine,
        device: &DeviceSpec,
        config: ServerConfig,
        labels: &ServingLabels,
    ) -> Result<Self, ServingError> {
        Self::start_inner(engine, device, config, labels, None, None, None)
    }

    /// Starts a server whose workers create their streams on an existing
    /// shared timeline instead of a fresh one — two replicas on the same
    /// fleet device genuinely contend for that device's GPU.
    pub(crate) fn start_on_timeline(
        engine: &Engine,
        device: &DeviceSpec,
        config: ServerConfig,
        labels: &ServingLabels,
        timeline: Arc<Mutex<GpuTimeline>>,
        shared_model: Option<Arc<LatencyModel>>,
        shared_trace: Option<(Arc<FlightRecorder>, Arc<TraceIdGen>)>,
    ) -> Result<Self, ServingError> {
        Self::start_inner(
            engine,
            device,
            config,
            labels,
            Some(timeline),
            shared_model,
            shared_trace,
        )
    }

    fn start_inner(
        engine: &Engine,
        device: &DeviceSpec,
        config: ServerConfig,
        labels: &ServingLabels,
        shared_timeline: Option<Arc<Mutex<GpuTimeline>>>,
        shared_model: Option<Arc<LatencyModel>>,
        shared_trace: Option<(Arc<FlightRecorder>, Arc<TraceIdGen>)>,
    ) -> Result<Self, ServingError> {
        config.validate()?;
        // The predictor exists when this server schedules predictively or
        // when a fleet shares its model here (so completions on this replica
        // train the fleet-wide model even if local batching stays static).
        let predictor = if config.predictive || shared_model.is_some() {
            let model = shared_model.unwrap_or_else(|| {
                // Seed derived from the device's timing identity: fully
                // deterministic, distinct per device class.
                Arc::new(
                    LatencyModel::new(trtsim_util::derive_seed(
                        device.timing_fingerprint(),
                        "latency-model",
                        0,
                    ))
                    .with_min_obs(config.predictor_min_obs),
                )
            });
            Some(Arc::new(Predictor {
                features: EngineFeatures::measure(engine, device, config.timing.host_glue_us),
                model,
            }))
        } else {
            None
        };
        let metrics = ServingMetrics::register(
            engine.name(),
            labels.device.as_deref(),
            labels.tenant.as_deref(),
        );
        // A fleet shares one recorder + id generator across its replicas so
        // every request owns exactly one trace fleet-wide; a standalone
        // server derives its own from the device's timing identity — fully
        // deterministic, no wall clock anywhere in the id.
        let (recorder, idgen) = shared_trace.unwrap_or_else(|| {
            (
                Arc::new(FlightRecorder::new(config.trace)),
                Arc::new(TraceIdGen::new(trtsim_util::derive_seed(
                    device.timing_fingerprint(),
                    "reqtrace",
                    0,
                ))),
            )
        });
        let sink = TraceSink::new(
            Arc::clone(&recorder),
            engine.name(),
            labels.device.as_deref(),
            labels.tenant.as_deref(),
        );
        let engine = Arc::new(engine.clone());
        let timeline = shared_timeline
            .unwrap_or_else(|| Arc::new(Mutex::new(GpuTimeline::new(device.clone()))));
        let streams: Vec<StreamId> = {
            let mut tl = timeline.lock().expect("timeline lock");
            (0..config.workers).map(|_| tl.create_stream()).collect()
        };
        let stats = Arc::new(Mutex::new(StatsInner {
            completed: 0,
            dropped: 0,
            deadline_missed: 0,
            batches: 0,
            batch_size_counts: vec![0; config.max_batch_size],
            frames_per_worker: vec![0; config.workers],
            latencies_us: Vec::new(),
            completions: Vec::new(),
        }));
        let depth = Arc::new(AtomicUsize::new(0));
        let high_water = Arc::new(AtomicUsize::new(0));
        let in_flight = Arc::new(AtomicUsize::new(0));
        let settled = Arc::new(AtomicU64::new(0));
        let abort_flag = Arc::new(AtomicBool::new(false));

        let (tx, submission_rx) = mpsc::sync_channel::<Submission>(config.queue_capacity);
        let mut worker_txs = Vec::with_capacity(config.workers);
        let mut workers = Vec::with_capacity(config.workers);
        for (worker, &stream) in streams.iter().enumerate() {
            // Rendezvous-sized: a worker holds at most one batch in flight,
            // so admission control stays at the submission queue.
            let (batch_tx, batch_rx) = mpsc::sync_channel::<Batch>(1);
            worker_txs.push(batch_tx);
            let engine = Arc::clone(&engine);
            let device = device.clone();
            let timeline = Arc::clone(&timeline);
            let stats = Arc::clone(&stats);
            let abort_flag = Arc::clone(&abort_flag);
            let timing = config.timing;
            let metrics = metrics.clone();
            let predictor = predictor.clone();
            let in_flight = Arc::clone(&in_flight);
            let settled = Arc::clone(&settled);
            let deadline_us = config.deadline_us;
            let sink = sink.clone();
            workers.push(std::thread::spawn(move || {
                worker_loop(
                    &engine,
                    device,
                    &timeline,
                    stream,
                    &timing,
                    &batch_rx,
                    &stats,
                    &abort_flag,
                    worker,
                    &metrics,
                    predictor.as_deref(),
                    &in_flight,
                    &settled,
                    deadline_us,
                    &sink,
                );
            }));
        }
        let batcher = {
            let depth = Arc::clone(&depth);
            let high_water = Arc::clone(&high_water);
            let max_batch = config.max_batch_size;
            let batch_timeout_us = config.batch_timeout_us;
            let arrivals = ArrivalClock::new(config.arrival_period_us, config.arrival_process);
            let metrics = metrics.clone();
            let predictor = predictor.clone();
            let in_flight = Arc::clone(&in_flight);
            // SLO sizing only applies where this server batches predictively;
            // a fleet-shared model without a local deadline leaves it off.
            let deadline_us = if config.predictive {
                config.deadline_us
            } else {
                0.0
            };
            std::thread::spawn(move || {
                batcher_loop(
                    &submission_rx,
                    &worker_txs,
                    max_batch,
                    batch_timeout_us,
                    arrivals,
                    &depth,
                    &high_water,
                    &metrics,
                    predictor.as_deref(),
                    &in_flight,
                    deadline_us,
                );
            })
        };

        let (exporter, sampler) = match config.telemetry_addr {
            Some(addr) => {
                let exporter = TelemetryServer::bind_with_routes(
                    addr,
                    Arc::clone(Registry::global()),
                    recorder.route_handler(),
                )
                .map_err(|e| ServingError::Telemetry(format!("bind {addr}: {e}")))?;
                let sampler = GpuSampler::spawn(
                    Arc::clone(&timeline),
                    Duration::from_millis(config.telemetry_sample_ms),
                );
                (Some(exporter), Some(sampler))
            }
            None => (None, None),
        };

        Ok(Self {
            tx: Some(tx),
            batcher: Some(batcher),
            workers,
            timeline,
            stats,
            depth,
            high_water,
            in_flight,
            settled,
            streams,
            accepted: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            deadline_rejected: AtomicU64::new(0),
            predictor,
            abort_flag,
            config,
            metrics,
            exporter,
            sampler,
            recorder,
            idgen,
            sink,
        })
    }

    /// The flight recorder holding this server's retained request traces —
    /// shared with the fleet when this server is a replica.
    pub fn flight_recorder(&self) -> Arc<FlightRecorder> {
        Arc::clone(&self.recorder)
    }

    /// Submits a frame without blocking.
    ///
    /// # Errors
    ///
    /// Returns [`ServingError::QueueFull`] when the bounded queue is at
    /// capacity (the rejection is counted in [`ServerStats::rejected`]), or
    /// [`ServingError::Stopped`] after shutdown.
    pub fn try_submit(&self, frame: u64) -> Result<(), ServingError> {
        self.try_submit_inner(frame, None)
    }

    /// Submits a frame without blocking, carrying an explicit simulated
    /// arrival timestamp instead of drawing one from the server's own
    /// arrival clock — the open-loop path a fleet router uses to replay one
    /// shared traffic trace across many devices.
    ///
    /// # Errors
    ///
    /// Returns [`ServingError::QueueFull`] when the bounded queue is at
    /// capacity, or [`ServingError::Stopped`] after shutdown.
    pub fn try_submit_at(&self, frame: u64, arrival_us: f64) -> Result<(), ServingError> {
        self.try_submit_inner(frame, Some(arrival_us))
    }

    /// Live queue state as the predictor's feature vector reads it: backlog
    /// depth, the fraction of workers currently serving a batch, and the
    /// committed-work horizon — how far past `arrival_us` (or past the
    /// device's own clock when `None`) the earliest-free worker stream is
    /// already booked. Depth is a noisy *proxy* for waiting time; the
    /// horizon is the waiting time itself, read off the dispatch ledger the
    /// same way a real runtime knows when each enqueued batch retires.
    pub(crate) fn queue_signals(&self, arrival_us: Option<f64>) -> QueueSignals {
        let committed = {
            let tl = self.timeline.lock().expect("timeline lock");
            let earliest_free = self
                .streams
                .iter()
                .map(|&stream| tl.sync(stream))
                .fold(f64::INFINITY, f64::min);
            let reference = arrival_us.unwrap_or_else(|| tl.elapsed_us());
            (earliest_free - reference).max(0.0)
        };
        QueueSignals::new(
            self.depth.load(Ordering::SeqCst) as f64 / self.config.workers as f64,
            self.in_flight.load(Ordering::SeqCst) as f64 / self.config.workers as f64,
        )
        .with_committed_us(committed)
    }

    /// Deadline-based admission: refuse a frame when the warm model predicts
    /// that even best-case batch-1 service lands past the deadline. Cold
    /// models admit everything (fallback to plain queue-bound admission).
    fn admit(&self, signals: &QueueSignals, trace: &mut TraceCtx) -> Result<(), ServingError> {
        if !self.config.predictive || self.config.deadline_us <= 0.0 {
            return Ok(());
        }
        // Fail open while the backlog is shallower than two batch waves per
        // worker. Shedding only pays in deep backlog, where removing one
        // frame moves every frame behind it up a service slot (one shed
        // saves several near-deadline frames); at shallow depth a rejection
        // mostly discards a frame that would have met its deadline. The
        // floor also keeps the model honest: rejections produce no
        // completions and therefore no training examples, so a model whose
        // base prediction drifted past the deadline could otherwise wedge
        // itself rejecting forever with nothing left to correct it — frames
        // accepted into a shallow queue are cheap probes whose observed
        // latencies pull the base back down.
        if signals.queue_depth < 2.0 {
            return Ok(());
        }
        // Shed only clearly-hopeless frames: predicted median latency past
        // the deadline with headroom to spare. A frame predicted merely
        // *near* the deadline is worth serving — prediction error is
        // two-sided, and a borderline frame served late costs one miss
        // while a borderline frame shed costs one completion *and* the
        // capacity it would have freed was mostly imaginary.
        const ADMIT_HEADROOM: f64 = 1.3;
        if let Some(p) = &self.predictor {
            if let Some(pred) = p.model.predict(&p.features, 1, signals) {
                // Stamp the admission-time prediction on the trace (unless a
                // fleet router already priced this replica) so the retained
                // trace can report predicted-vs-actual error.
                if trace.predicted_p50_us.is_nan() {
                    trace.predicted_p50_us = pred.p50_us;
                    trace.predicted_p99_us = pred.p99_us;
                }
                if pred.p50_us > self.config.deadline_us * ADMIT_HEADROOM {
                    self.deadline_rejected.fetch_add(1, Ordering::Relaxed);
                    self.metrics.deadline_rejected.inc();
                    return Err(ServingError::DeadlineUnmeetable);
                }
            }
        }
        Ok(())
    }

    /// Fleet entry point: submit with a router-minted trace context (score
    /// and predictions already stamped) instead of minting a fresh one. A
    /// refusal here records no trace — the router may still place the frame
    /// on another replica, and it records the single rejection trace itself
    /// only when every replica refuses.
    pub(crate) fn try_submit_traced(
        &self,
        frame: u64,
        arrival_us: f64,
        trace: TraceCtx,
    ) -> Result<(), ServingError> {
        self.try_submit_with(frame, Some(arrival_us), trace, false)
    }

    fn try_submit_inner(&self, frame: u64, arrival_us: Option<f64>) -> Result<(), ServingError> {
        self.try_submit_with(frame, arrival_us, TraceCtx::new(self.idgen.mint()), true)
    }

    fn try_submit_with(
        &self,
        frame: u64,
        arrival_us: Option<f64>,
        mut trace: TraceCtx,
        record_rejects: bool,
    ) -> Result<(), ServingError> {
        let tx = self.tx.as_ref().ok_or(ServingError::Stopped)?;
        let signals = self.queue_signals(arrival_us);
        if let Err(e) = self.admit(&signals, &mut trace) {
            if record_rejects {
                self.sink.record_rejected(
                    trace,
                    frame,
                    arrival_us.unwrap_or(0.0),
                    TraceOutcome::DeadlineRejected,
                );
            }
            return Err(e);
        }
        let submission = Submission {
            frame,
            arrival_us,
            signals,
            trace,
        };
        // SeqCst on depth/high-water: the submit-side increment, the
        // batcher-side decrement, and both fetch_max calls must observe one
        // total order, or a max recorded on one side can miss a depth the
        // other side reached. Plain event counters (accepted/rejected) stay
        // Relaxed — they are only read after thread join (drain/abort) or as
        // monotone progress hints (live stats()).
        let depth_now = self.depth.fetch_add(1, Ordering::SeqCst) + 1;
        match tx.try_send(submission) {
            Ok(()) => {
                let prev_max = self.high_water.fetch_max(depth_now, Ordering::SeqCst);
                self.accepted.fetch_add(1, Ordering::Relaxed);
                self.metrics.accepted.inc();
                self.metrics.queue_depth.set(depth_now as f64);
                self.metrics
                    .queue_high_water
                    .set(prev_max.max(depth_now) as f64);
                Ok(())
            }
            Err(TrySendError::Full(_)) => {
                self.depth.fetch_sub(1, Ordering::SeqCst);
                self.rejected.fetch_add(1, Ordering::Relaxed);
                self.metrics.rejected.inc();
                if record_rejects {
                    self.sink.record_rejected(
                        trace,
                        frame,
                        arrival_us.unwrap_or(0.0),
                        TraceOutcome::QueueRejected,
                    );
                }
                Err(ServingError::QueueFull)
            }
            Err(TrySendError::Disconnected(_)) => {
                self.depth.fetch_sub(1, Ordering::SeqCst);
                Err(ServingError::Stopped)
            }
        }
    }

    /// Submits a frame, blocking while the bounded queue is full.
    ///
    /// # Errors
    ///
    /// Returns [`ServingError::Stopped`] after shutdown.
    pub fn submit(&self, frame: u64) -> Result<(), ServingError> {
        let tx = self.tx.as_ref().ok_or(ServingError::Stopped)?;
        let signals = self.queue_signals(None);
        let depth_now = self.depth.fetch_add(1, Ordering::SeqCst) + 1;
        match tx.send(Submission {
            frame,
            arrival_us: None,
            signals,
            trace: TraceCtx::new(self.idgen.mint()),
        }) {
            Ok(()) => {
                let prev_max = self.high_water.fetch_max(depth_now, Ordering::SeqCst);
                self.accepted.fetch_add(1, Ordering::Relaxed);
                self.metrics.accepted.inc();
                self.metrics.queue_depth.set(depth_now as f64);
                self.metrics
                    .queue_high_water
                    .set(prev_max.max(depth_now) as f64);
                Ok(())
            }
            Err(_) => {
                self.depth.fetch_sub(1, Ordering::SeqCst);
                Err(ServingError::Stopped)
            }
        }
    }

    /// The configuration this server runs with.
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// Frames accepted but not yet out of the system: queued, held by the
    /// batcher, or in service. A paced open-loop driver polls this to know
    /// whether the simulated clock can still advance on its own.
    pub fn pending(&self) -> usize {
        let accepted = self.accepted.load(Ordering::SeqCst);
        let settled = self.settled.load(Ordering::SeqCst);
        accepted.saturating_sub(settled) as usize
    }

    /// Frames currently waiting in the submission queue — the live backlog
    /// signal a fleet router's least-loaded dispatch reads.
    pub fn queue_depth(&self) -> usize {
        self.depth.load(Ordering::SeqCst)
    }

    /// The online latency model this server trains — present when
    /// [`ServerConfig::predictive`] is set or a fleet shares its model here.
    pub fn latency_model(&self) -> Option<Arc<LatencyModel>> {
        self.predictor.as_ref().map(|p| Arc::clone(&p.model))
    }

    /// The bound address of the telemetry endpoint, when
    /// [`ServerConfig::with_telemetry`] was set. Useful with port 0:
    /// `curl http://<addr>/metrics`.
    pub fn telemetry_addr(&self) -> Option<std::net::SocketAddr> {
        self.exporter.as_ref().map(TelemetryServer::local_addr)
    }

    /// A live snapshot of the counters and simulated-time metrics. Cheap
    /// enough to poll; the final numbers come from [`InferenceServer::drain`].
    pub fn stats(&self) -> ServerStats {
        self.snapshot()
    }

    /// Stops admission and waits until every accepted frame is served, then
    /// reports the final statistics.
    pub fn drain(mut self) -> ServerStats {
        self.shutdown(false)
    }

    /// Stops admission and discards accepted frames whose batch has not
    /// started; in-flight batches finish. Dropped frames are counted in
    /// [`ServerStats::dropped`].
    pub fn abort(mut self) -> ServerStats {
        self.shutdown(true)
    }

    fn shutdown(&mut self, abort: bool) -> ServerStats {
        if abort {
            self.abort_flag.store(true, Ordering::Relaxed);
        }
        // Closing the submission channel unwinds the pipeline: the batcher
        // flushes what is queued and exits, the worker channels close, the
        // workers finish their last batches and exit.
        self.tx.take();
        if let Some(batcher) = self.batcher.take() {
            let _ = batcher.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        // One final GPU sample over the completed timeline, then stop the
        // scrape endpoint (dropping it joins its accept thread).
        if let Some(mut sampler) = self.sampler.take() {
            sampler.stop();
        }
        self.exporter.take();
        self.snapshot()
    }

    fn snapshot(&self) -> ServerStats {
        // Lock order: timeline strictly before stats (workers release the
        // timeline before touching stats, so this cannot deadlock them).
        let (elapsed_us, gr3d_percent, kernel_breakdown, timeline) = {
            let tl = self.timeline.lock().expect("timeline lock");
            let breakdown = if self.config.profile.kernel_breakdown {
                kernel_breakdown(&tl)
            } else {
                Vec::new()
            };
            let captured = self.config.profile.capture_timeline.then(|| tl.clone());
            (
                tl.elapsed_us(),
                tegrastats::mean_gr3d_percent(&tl),
                breakdown,
                captured,
            )
        };
        let st = self.stats.lock().expect("stats lock");
        let simulated_seconds = elapsed_us / 1e6;
        if let Some(p) = &self.predictor {
            self.metrics
                .predictor_observations
                .set(p.model.observations() as f64);
            if let Some(mape) = p.model.mape_percent() {
                self.metrics.predictor_mape_percent.set(mape);
                self.metrics.predictor_mape.set(mape);
            }
            let (cal_p50, cal_p99) = p.model.calibration();
            self.metrics.predictor_calibration_p50.set(cal_p50);
            self.metrics.predictor_calibration_p99.set(cal_p99);
        }
        crate::telemetry::sync_trace_counters();
        ServerStats {
            workers: self.config.workers,
            accepted: self.accepted.load(Ordering::Relaxed),
            completed: st.completed,
            dropped: st.dropped,
            rejected: self.rejected.load(Ordering::Relaxed),
            deadline_missed: st.deadline_missed,
            deadline_rejected: self.deadline_rejected.load(Ordering::Relaxed),
            batches: st.batches,
            batch_size_counts: st.batch_size_counts.clone(),
            queue_high_water: self.high_water.load(Ordering::Relaxed),
            latency: LatencyPercentiles::from_runs_us(&st.latencies_us),
            simulated_seconds,
            aggregate_fps: st.completed as f64 / simulated_seconds.max(1e-12),
            gr3d_percent,
            frames_per_worker: st.frames_per_worker.clone(),
            completions: st.completions.clone(),
            kernel_breakdown,
            timeline,
        }
    }
}

/// Aggregates a timeline's kernel records into per-symbol busy-time totals,
/// heaviest first (ties broken by name for a stable order).
fn kernel_breakdown(timeline: &GpuTimeline) -> Vec<KernelTime> {
    let mut by_name: BTreeMap<&str, (u64, f64)> = BTreeMap::new();
    for k in timeline.kernels() {
        let entry = by_name.entry(&k.name).or_insert((0, 0.0));
        entry.0 += 1;
        entry.1 += k.duration_us;
    }
    let mut breakdown: Vec<KernelTime> = by_name
        .into_iter()
        .map(|(name, (calls, total_us))| KernelTime {
            name: name.to_string(),
            calls,
            total_us,
        })
        .collect();
    breakdown.sort_by(|a, b| {
        b.total_us
            .total_cmp(&a.total_us)
            .then_with(|| a.name.cmp(&b.name))
    });
    breakdown
}

/// Simulated arrival clock: hands out the arrival timestamp for each
/// accepted frame in submission order.
struct ArrivalClock {
    period_us: f64,
    seq: u64,
    clock_us: f64,
    /// `Some` for Poisson arrivals; `None` keeps the legacy fixed-rate
    /// `seq * period` timestamps bit-identical.
    rng: Option<Pcg32>,
}

impl ArrivalClock {
    fn new(period_us: f64, process: ArrivalProcess) -> Self {
        let rng = match process {
            ArrivalProcess::Periodic => None,
            ArrivalProcess::Poisson { seed } => Some(Pcg32::seed_from_u64(seed)),
        };
        Self {
            period_us,
            seq: 0,
            clock_us: 0.0,
            rng,
        }
    }

    fn next(&mut self) -> f64 {
        let arrival = match &mut self.rng {
            None => self.seq as f64 * self.period_us,
            Some(rng) => {
                // Inverse-CDF exponential gap; 1 - u is in (0, 1] so the
                // log is finite and the clock is non-decreasing.
                let u = rng.next_f64();
                self.clock_us += -self.period_us * (1.0 - u).ln();
                self.clock_us
            }
        };
        self.seq += 1;
        arrival
    }
}

/// Coalesces queued frames into batches and hands them to workers
/// round-robin (deterministic stream assignment).
#[allow(clippy::too_many_arguments)]
fn batcher_loop(
    rx: &Receiver<Submission>,
    worker_txs: &[SyncSender<Batch>],
    max_batch: usize,
    batch_timeout_us: f64,
    mut arrivals: ArrivalClock,
    depth: &AtomicUsize,
    high_water: &AtomicUsize,
    metrics: &ServingMetrics,
    predictor: Option<&Predictor>,
    in_flight: &AtomicUsize,
    deadline_us: f64,
) {
    let mut next_worker = 0usize;
    let mut batch_seq = 0u64;
    let take = |submission: Submission, arrivals: &mut ArrivalClock| {
        // Record the high-water mark *before* decrementing: frames that
        // accumulated while the batcher was parked in recv()/recv_timeout()
        // or blocked on a full worker rendezvous were never observed by the
        // submit path alone (a submit may have recorded a smaller depth
        // before this pop, then raced with other submits), so the coalesce
        // point is the second place the true maximum can surface.
        let observed = depth.load(Ordering::SeqCst);
        let prev_max = high_water.fetch_max(observed, Ordering::SeqCst);
        let remaining = depth.fetch_sub(1, Ordering::SeqCst).saturating_sub(1);
        metrics.queue_depth.set(remaining as f64);
        metrics.queue_high_water.set(prev_max.max(observed) as f64);
        Request {
            frame: submission.frame,
            // Explicit open-loop timestamps bypass the per-server clock so a
            // fleet-wide trace keeps one coherent time axis.
            arrival_us: submission.arrival_us.unwrap_or_else(|| arrivals.next()),
            signals: submission.signals,
            trace: submission.trace,
        }
    };
    loop {
        let first = match rx.recv() {
            Ok(submission) => submission,
            Err(_) => return,
        };
        // SLO-aware fill target: under a deadline, the largest batch whose
        // predicted p99 still lands inside it given the load the batcher
        // sees right now. The target governs ONLY the straggler wait below —
        // frames already sitting in the queue are always coalesced up to the
        // static cap, because batch service time is sublinear in size:
        // truncating a batch below the live backlog would serialize frames
        // that a single launch could have carried, burning drain rate
        // exactly when the queue is growing. A cold model (or no deadline)
        // leaves the static behavior alone.
        let fill_target = match predictor {
            Some(p) if deadline_us > 0.0 && depth.load(Ordering::SeqCst) < max_batch => p
                .slo_batch_cap(
                    max_batch,
                    deadline_us,
                    &QueueSignals::new(
                        depth.load(Ordering::SeqCst) as f64 / worker_txs.len() as f64,
                        in_flight.load(Ordering::SeqCst) as f64 / worker_txs.len() as f64,
                    ),
                ),
            _ => max_batch,
        };
        let mut requests = vec![take(first, &mut arrivals)];
        let mut waited_us = 0.0;
        while requests.len() < max_batch {
            match rx.try_recv() {
                Ok(submission) => requests.push(take(submission, &mut arrivals)),
                Err(TryRecvError::Disconnected) => break,
                Err(TryRecvError::Empty) => {
                    // The queue is drained. Waiting out the batching window
                    // for stragglers is a latency gamble the predictor can
                    // price: once the batch already holds `fill_target`
                    // frames, the predicted p99 of a *larger* batch overruns
                    // the deadline, so close early instead of waiting.
                    if requests.len() >= fill_target || batch_timeout_us == 0.0 {
                        break;
                    } else if batch_timeout_us.is_infinite() {
                        match rx.recv() {
                            Ok(submission) => requests.push(take(submission, &mut arrivals)),
                            Err(_) => break,
                        }
                    } else {
                        match rx.recv_timeout(Duration::from_micros(batch_timeout_us as u64)) {
                            Ok(submission) => requests.push(take(submission, &mut arrivals)),
                            Err(RecvTimeoutError::Timeout) => {
                                waited_us = batch_timeout_us;
                                break;
                            }
                            Err(RecvTimeoutError::Disconnected) => break,
                        }
                    }
                }
            }
        }
        if worker_txs[next_worker]
            .send(Batch {
                seq: batch_seq,
                requests,
                waited_us,
            })
            .is_err()
        {
            return;
        }
        batch_seq += 1;
        next_worker = (next_worker + 1) % worker_txs.len();
    }
}

/// Serves batches on one worker's stream until the batcher hangs up.
#[allow(clippy::too_many_arguments)]
fn worker_loop(
    engine: &Engine,
    device: DeviceSpec,
    timeline: &Mutex<GpuTimeline>,
    stream: StreamId,
    timing: &TimingOptions,
    batches: &Receiver<Batch>,
    stats: &Mutex<StatsInner>,
    abort_flag: &AtomicBool,
    worker: usize,
    metrics: &ServingMetrics,
    predictor: Option<&Predictor>,
    in_flight: &AtomicUsize,
    settled: &AtomicU64,
    deadline_us: f64,
    sink: &TraceSink,
) {
    let ctx = ExecutionContext::new(engine, device);
    while let Ok(batch) = batches.recv() {
        let size = batch.requests.len();
        if abort_flag.load(Ordering::Relaxed) {
            stats.lock().expect("stats lock").dropped += size as u64;
            metrics.dropped.add(size as u64);
            for request in &batch.requests {
                sink.record_dropped(request.trace, request.frame, request.arrival_us);
            }
            settled.fetch_add(size as u64, Ordering::SeqCst);
            continue;
        }
        in_flight.fetch_add(1, Ordering::SeqCst);
        let (done_us, span_lo, span_hi, exec_start_us) = {
            let mut tl = timeline.lock().expect("timeline lock");
            let span_lo = tl.next_seq(stream);
            // Open-loop arrival gating: service cannot begin before the last
            // frame of the batch exists on the simulated clock. Without this
            // idle wait a bursty trace and a steady one serve identically
            // (arrival pattern would only shape reported queueing latency,
            // never throughput). Closed-loop runs, whose arrivals trail the
            // stream cursor, are bit-identical with or without the gate.
            let arrival = batch
                .requests
                .iter()
                .map(|r| r.arrival_us)
                .fold(f64::NEG_INFINITY, f64::max);
            let front = tl.sync(stream);
            if arrival > front {
                tl.host_span(stream, "arrival_wait", arrival - front);
            }
            if batch.waited_us > 0.0 {
                tl.host_span(stream, "batch_wait", batch.waited_us);
            }
            // Where batched execution begins on the stream: queueing ends at
            // max(front, arrival), then the straggler wait is charged. The
            // trace's replica_queue/batch_wait/execute phases split on this.
            let exec_start_us = front.max(arrival) + batch.waited_us;
            let done_us = ctx.enqueue_batched_inference(&mut tl, stream, timing, size);
            (done_us, span_lo, tl.next_seq(stream), exec_start_us)
            // Timeline lock released here, before the stats lock, keeping
            // the snapshot path's timeline→stats order deadlock-free.
        };
        metrics.completed.add(size as u64);
        metrics.batches.inc();
        metrics.batch_size.observe(size as f64);
        let mut st = stats.lock().expect("stats lock");
        st.completed += size as u64;
        st.batches += 1;
        st.batch_size_counts[size - 1] += 1;
        st.frames_per_worker[worker] += size as u64;
        for request in &batch.requests {
            let latency_us = (done_us - request.arrival_us).max(0.0);
            let missed = deadline_us > 0.0 && latency_us > deadline_us;
            let retained = sink.record_completed(
                request.trace,
                request.frame,
                request.arrival_us,
                done_us,
                exec_start_us,
                batch.waited_us,
                worker,
                stream,
                batch.seq,
                size,
                span_lo,
                span_hi,
                missed,
            );
            // A retained trace becomes the exemplar on its latency bucket,
            // so a scrape can jump from a slow histogram bucket straight to
            // the span tree that produced it.
            if retained {
                metrics
                    .latency_us
                    .observe_with_exemplar(latency_us, &request.trace.id.to_string());
            } else {
                metrics.latency_us.observe(latency_us);
            }
            st.latencies_us.push(latency_us);
            if missed {
                st.deadline_missed += 1;
                metrics.deadline_missed.inc();
            }
            // Prequential training: each completion becomes an example under
            // the exact queue signals its admission-time prediction saw.
            if let Some(p) = predictor {
                p.model
                    .observe(&p.features, size, &request.signals, latency_us);
            }
            st.completions.push(RequestRecord {
                frame: request.frame,
                worker,
                batch: batch.seq,
                span_lo,
                span_hi,
                arrival_us: request.arrival_us,
                done_us,
            });
        }
        drop(st);
        settled.fetch_add(size as u64, Ordering::SeqCst);
        in_flight.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Serves `frames` inferences across `threads` worker threads with blocking
/// admission and no batching — the original entry point, now a thin wrapper
/// over [`InferenceServer`]. Field semantics of the returned
/// [`ServingReport`] are unchanged.
///
/// # Errors
///
/// Returns [`ServingError::InvalidConfig`] if `threads == 0` (this was a
/// panic before the serving redesign).
pub fn serve(
    engine: &Engine,
    device: &DeviceSpec,
    threads: usize,
    frames: u64,
    opts: &TimingOptions,
) -> Result<ServingReport, ServingError> {
    let config = ServerConfig::default()
        .with_workers(threads)
        .with_queue_capacity(threads.saturating_mul(2).max(1))
        .with_max_batch_size(1)
        .with_timing(*opts);
    let server = InferenceServer::start(engine, device, config)?;
    for frame in 0..frames {
        server.submit(frame)?;
    }
    let stats = server.drain();
    Ok(ServingReport {
        threads,
        frames: stats.completed,
        simulated_seconds: stats.simulated_seconds,
        aggregate_fps: stats.aggregate_fps,
        frames_per_thread: stats.frames_per_worker,
        gr3d_percent: stats.gr3d_percent,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::Builder;
    use crate::config::BuilderConfig;
    use trtsim_ir::graph::{Graph, LayerKind};

    fn engine() -> Engine {
        let mut g = Graph::new("serve", [3, 32, 32]);
        let c1 = g.add_layer(
            "c1",
            LayerKind::conv_seeded(32, 3, 3, 1, 1, 0),
            &[Graph::INPUT],
        );
        let c2 = g.add_layer("c2", LayerKind::conv_seeded(32, 32, 3, 1, 1, 1), &[c1]);
        g.mark_output(c2);
        Builder::new(
            DeviceSpec::xavier_nx(),
            BuilderConfig::default().with_build_seed(2),
        )
        .build(&g)
        .unwrap()
    }

    fn opts() -> TimingOptions {
        TimingOptions::default()
            .without_engine_upload()
            .with_run_jitter_sd(0.0)
            .with_host_glue_us(200.0)
    }

    #[test]
    fn all_frames_are_processed() {
        let e = engine();
        let report = serve(&e, &DeviceSpec::xavier_nx(), 4, 64, &opts()).unwrap();
        assert_eq!(report.frames, 64);
        assert_eq!(report.frames_per_thread.iter().sum::<u64>(), 64);
        assert!(report.aggregate_fps > 0.0);
    }

    #[test]
    fn more_threads_do_not_lose_throughput() {
        let e = engine();
        let dev = DeviceSpec::xavier_nx();
        let one = serve(&e, &dev, 1, 48, &opts()).unwrap();
        let four = serve(&e, &dev, 4, 48, &opts()).unwrap();
        // Streams overlap on the simulated timeline: aggregate FPS must not
        // regress when adding workers.
        assert!(
            four.aggregate_fps >= one.aggregate_fps * 0.95,
            "{} vs {}",
            four.aggregate_fps,
            one.aggregate_fps
        );
    }

    #[test]
    fn work_is_distributed() {
        let e = engine();
        let report = serve(&e, &DeviceSpec::xavier_nx(), 4, 100, &opts()).unwrap();
        let active = report.frames_per_thread.iter().filter(|&&n| n > 0).count();
        assert!(
            active >= 2,
            "work stuck on one thread: {:?}",
            report.frames_per_thread
        );
    }

    #[test]
    fn utilization_is_reported() {
        let e = engine();
        let report = serve(&e, &DeviceSpec::xavier_nx(), 2, 32, &opts()).unwrap();
        assert!(report.gr3d_percent > 0.0 && report.gr3d_percent <= 100.0);
    }

    #[test]
    fn zero_threads_rejected_as_error() {
        let err = serve(&engine(), &DeviceSpec::xavier_nx(), 0, 1, &opts()).unwrap_err();
        assert!(matches!(err, ServingError::InvalidConfig(_)));
        assert!(err.to_string().contains("at least one worker"));
    }

    #[test]
    fn config_validation_names_each_bad_knob() {
        let base = ServerConfig::default();
        assert!(base.validate().is_ok());
        for (bad, needle) in [
            (base.with_workers(0), "worker"),
            (base.with_queue_capacity(0), "queue"),
            (base.with_max_batch_size(0), "batch size"),
            (base.with_batch_timeout_us(-1.0), "timeout"),
            (base.with_batch_timeout_us(f64::NAN), "timeout"),
            (base.with_arrival_period_us(f64::INFINITY), "arrival"),
            (base.with_poisson_arrivals(7), "poisson"),
            (base.with_deadline_us(-1.0), "deadline"),
            (base.with_deadline_us(f64::NAN), "deadline"),
            (base.with_predictor_min_obs(0), "predictor"),
            (base.with_telemetry_sample_ms(0), "telemetry sample"),
            (
                base.with_trace(TraceOptions::default().with_capacity(0)),
                "trace",
            ),
            (
                base.with_trace(TraceOptions::default().with_sample_every(0)),
                "trace",
            ),
        ] {
            let err = bad.validate().unwrap_err();
            assert!(err.to_string().contains(needle), "{err}");
        }
    }

    #[test]
    fn poisson_arrival_clock_is_seeded_and_monotone() {
        let draw = |seed: u64| {
            let mut clock = ArrivalClock::new(1000.0, ArrivalProcess::Poisson { seed });
            (0..64).map(|_| clock.next()).collect::<Vec<_>>()
        };
        let a = draw(42);
        let b = draw(42);
        assert_eq!(a, b, "same seed must replay bit-identically");
        assert!(
            a.windows(2).all(|w| w[0] <= w[1]),
            "arrival times must be non-decreasing"
        );
        assert!(a[0] > 0.0, "first gap is exponential, not pinned to 0");
        let c = draw(43);
        assert_ne!(a, c, "different seeds must diverge");
        // The empirical mean gap should be in the right ballpark of the
        // configured 1000 µs mean (loose 3-sigma-ish bounds for n = 64).
        let mean = a.last().unwrap() / 64.0;
        assert!((500.0..2000.0).contains(&mean), "mean gap {mean}");
    }

    #[test]
    fn periodic_clock_matches_legacy_timestamps() {
        let mut clock = ArrivalClock::new(250.0, ArrivalProcess::Periodic);
        for n in 0..8u64 {
            assert_eq!(clock.next(), n as f64 * 250.0);
        }
    }

    #[test]
    fn infinite_timeout_forms_full_batches() {
        let e = engine();
        let server = InferenceServer::start(
            &e,
            &DeviceSpec::xavier_nx(),
            ServerConfig::default()
                .with_workers(2)
                .with_queue_capacity(8)
                .with_max_batch_size(8)
                .with_batch_timeout_us(f64::INFINITY)
                .with_timing(opts()),
        )
        .unwrap();
        for frame in 0..64 {
            server.submit(frame).unwrap();
        }
        let stats = server.drain();
        assert_eq!(stats.completed, 64);
        assert_eq!(stats.batches, 8);
        assert_eq!(stats.batch_size_counts, vec![0, 0, 0, 0, 0, 0, 0, 8]);
        assert_eq!(stats.mean_batch_size(), 8.0);
    }

    #[test]
    fn batching_increases_aggregate_fps() {
        let e = engine();
        let dev = DeviceSpec::xavier_nx();
        let run = |batch: usize| {
            let server = InferenceServer::start(
                &e,
                &dev,
                ServerConfig::default()
                    .with_workers(2)
                    .with_queue_capacity(16)
                    .with_max_batch_size(batch)
                    .with_batch_timeout_us(f64::INFINITY)
                    .with_timing(opts()),
            )
            .unwrap();
            for frame in 0..96 {
                server.submit(frame).unwrap();
            }
            server.drain()
        };
        let unbatched = run(1);
        let batched = run(8);
        assert!(
            batched.aggregate_fps > unbatched.aggregate_fps,
            "batch 8: {} FPS, batch 1: {} FPS",
            batched.aggregate_fps,
            unbatched.aggregate_fps
        );
    }

    #[test]
    fn overload_rejects_and_drain_completes_accepted() {
        let e = engine();
        let server = InferenceServer::start(
            &e,
            &DeviceSpec::xavier_nx(),
            ServerConfig::default()
                .with_workers(1)
                .with_queue_capacity(2)
                .with_max_batch_size(4)
                .with_batch_timeout_us(f64::INFINITY)
                .with_timing(opts()),
        )
        .unwrap();
        let mut accepted = 0u64;
        let mut rejected = 0u64;
        for frame in 0..10_000 {
            match server.try_submit(frame) {
                Ok(()) => accepted += 1,
                Err(ServingError::QueueFull) => rejected += 1,
                Err(e) => panic!("unexpected: {e}"),
            }
        }
        assert!(rejected > 0, "a 2-deep queue absorbed 10k instant frames");
        let stats = server.drain();
        assert_eq!(stats.accepted, accepted);
        assert_eq!(stats.completed, accepted);
        assert_eq!(stats.rejected, rejected);
        assert!(stats.queue_high_water >= 2);
    }

    #[test]
    fn abort_drops_unstarted_frames() {
        let e = engine();
        let server = InferenceServer::start(
            &e,
            &DeviceSpec::xavier_nx(),
            ServerConfig::default()
                .with_workers(1)
                .with_queue_capacity(64)
                .with_timing(opts()),
        )
        .unwrap();
        for frame in 0..64 {
            server.submit(frame).unwrap();
        }
        let stats = server.abort();
        assert_eq!(stats.completed + stats.dropped, stats.accepted);
    }

    #[test]
    fn latency_percentiles_are_ordered_and_populated() {
        let e = engine();
        let server = InferenceServer::start(
            &e,
            &DeviceSpec::xavier_nx(),
            ServerConfig::default()
                .with_workers(2)
                .with_queue_capacity(32)
                .with_max_batch_size(4)
                .with_batch_timeout_us(f64::INFINITY)
                .with_timing(opts()),
        )
        .unwrap();
        for frame in 0..64 {
            server.submit(frame).unwrap();
        }
        let stats = server.drain();
        let lat = stats.latency;
        assert_eq!(lat.count as u64, stats.completed);
        assert!(lat.p50_us > 0.0);
        assert!(lat.p90_us >= lat.p50_us);
        assert!(lat.p99_us >= lat.p90_us);
        assert!(stats.completions.len() as u64 == stats.completed);
    }

    #[test]
    fn high_water_sees_frames_coalesced_in_one_batch() {
        // Regression: the high-water mark used to be sampled only on the
        // submit path, so frames that piled up while the batcher was parked
        // on a full worker rendezvous were never counted. Every frame in a
        // timeout-0 batch was in the queue simultaneously when the batch
        // formed, so the coalesce-point sample must cover the largest batch.
        let e = engine();
        let server = InferenceServer::start(
            &e,
            &DeviceSpec::xavier_nx(),
            ServerConfig::default()
                .with_workers(1)
                .with_queue_capacity(64)
                .with_max_batch_size(16)
                .with_batch_timeout_us(0.0)
                .with_timing(opts()),
        )
        .unwrap();
        for frame in 0..256 {
            server.submit(frame).unwrap();
        }
        let stats = server.drain();
        let largest_batch = stats
            .batch_size_counts
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, _)| i + 1)
            .max()
            .unwrap_or(0);
        assert!(
            stats.queue_high_water >= largest_batch,
            "high water {} below largest coalesced batch {}",
            stats.queue_high_water,
            largest_batch
        );
    }

    #[test]
    fn profile_options_capture_timeline_and_breakdown() {
        let e = engine();
        let server = InferenceServer::start(
            &e,
            &DeviceSpec::xavier_nx(),
            ServerConfig::default()
                .with_workers(4)
                .with_queue_capacity(32)
                .with_max_batch_size(4)
                .with_batch_timeout_us(f64::INFINITY)
                .with_timing(opts())
                .with_profile(ProfileOptions::full()),
        )
        .unwrap();
        for frame in 0..64 {
            server.submit(frame).unwrap();
        }
        let stats = server.drain();
        let tl = stats.timeline.as_ref().expect("timeline captured");
        assert!(!tl.kernels().is_empty());
        // Breakdown totals must reconcile with the raw timeline.
        assert!(!stats.kernel_breakdown.is_empty());
        let calls: u64 = stats.kernel_breakdown.iter().map(|k| k.calls).sum();
        assert_eq!(calls as usize, tl.kernels().len());
        for pair in stats.kernel_breakdown.windows(2) {
            assert!(pair[0].total_us >= pair[1].total_us, "not heaviest-first");
        }
        // Span attribution: every request carries a non-empty half-open
        // range, identical for requests of the same batch, and the worker's
        // stream really holds kernel records numbered inside it.
        assert!(!stats.completions.is_empty());
        for r in &stats.completions {
            assert!(r.span_lo < r.span_hi, "empty span range for {:?}", r);
            let stream = r.worker; // streams are created in worker order
            let in_range = tl
                .kernels()
                .iter()
                .any(|k| k.stream == stream && (r.span_lo..r.span_hi).contains(&k.seq));
            assert!(in_range, "no kernel record inside span range of {:?}", r);
        }
        for a in &stats.completions {
            for b in &stats.completions {
                if a.worker == b.worker && a.batch == b.batch {
                    assert_eq!((a.span_lo, a.span_hi), (b.span_lo, b.span_hi));
                }
            }
        }
    }

    #[test]
    fn profile_is_off_by_default() {
        let e = engine();
        let server = InferenceServer::start(
            &e,
            &DeviceSpec::xavier_nx(),
            ServerConfig::default().with_workers(2).with_timing(opts()),
        )
        .unwrap();
        for frame in 0..16 {
            server.submit(frame).unwrap();
        }
        let stats = server.drain();
        assert!(stats.timeline.is_none());
        assert!(stats.kernel_breakdown.is_empty());
    }

    #[test]
    fn errors_display_and_are_std_errors() {
        let err: Box<dyn std::error::Error> = Box::new(ServingError::QueueFull);
        assert!(err.to_string().contains("full"));
        assert!(ServingError::Stopped.to_string().contains("stopped"));
    }
}
