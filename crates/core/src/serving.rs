//! Multi-threaded inference serving over the simulated GPU.
//!
//! The paper's deployment pattern (§IV-B, §VI-A): N host threads, each bound
//! to its own CUDA stream inside one shared context, all running the same
//! engine — an intersection controller fanning camera feeds onto one board.
//! This module runs that architecture with *real* OS threads (crossbeam
//! channels dispatch frames, `parking_lot` guards the device) against the
//! *simulated* timeline, so the concurrency structure is genuine while time
//! remains modeled and reproducible.

use std::sync::Arc;

use crossbeam::channel;
use parking_lot::Mutex;
use trtsim_gpu::device::DeviceSpec;
use trtsim_gpu::tegrastats;
use trtsim_gpu::timeline::{GpuTimeline, StreamId};

use crate::engine::Engine;
use crate::runtime::{ExecutionContext, TimingOptions};

/// Outcome of a serving run.
#[derive(Debug, Clone, PartialEq)]
pub struct ServingReport {
    /// Worker (= stream) count.
    pub threads: usize,
    /// Total frames processed.
    pub frames: u64,
    /// Simulated wall time consumed, seconds.
    pub simulated_seconds: f64,
    /// Aggregate throughput, frames per simulated second.
    pub aggregate_fps: f64,
    /// Frames each worker processed.
    pub frames_per_thread: Vec<u64>,
    /// Mean GR3D utilization over the run, percent.
    pub gr3d_percent: f64,
}

/// Serves `frames` inferences across `threads` worker threads, each with its
/// own stream on a shared timeline. Frames are pulled from a shared queue
/// (work-stealing, like a camera fan-in), so load balances naturally.
///
/// # Panics
///
/// Panics if `threads == 0`.
pub fn serve(
    engine: &Engine,
    device: &DeviceSpec,
    threads: usize,
    frames: u64,
    opts: &TimingOptions,
) -> ServingReport {
    assert!(threads > 0, "need at least one worker");
    let timeline = Arc::new(Mutex::new(GpuTimeline::new(device.clone())));
    let streams: Vec<StreamId> = {
        let mut tl = timeline.lock();
        (0..threads).map(|_| tl.create_stream()).collect()
    };

    let (tx, rx) = channel::bounded::<u64>(threads * 2);
    let counts = Mutex::new(vec![0u64; threads]);

    std::thread::scope(|scope| {
        for (worker, &stream) in streams.iter().enumerate() {
            let rx = rx.clone();
            let timeline = Arc::clone(&timeline);
            let counts = &counts;
            let device = device.clone();
            scope.spawn(move || {
                let ctx = ExecutionContext::new(engine, device);
                while rx.recv().is_ok() {
                    let mut tl = timeline.lock();
                    ctx.enqueue_inference(&mut tl, stream, opts);
                    drop(tl);
                    counts.lock()[worker] += 1;
                }
            });
        }
        drop(rx);
        for frame in 0..frames {
            tx.send(frame).expect("workers alive");
        }
        drop(tx);
    });

    let tl = timeline.lock();
    let simulated_seconds = tl.elapsed_us() / 1e6;
    let gr3d_percent = tegrastats::mean_gr3d_percent(&tl);
    let frames_per_thread = counts.into_inner();
    ServingReport {
        threads,
        frames,
        simulated_seconds,
        aggregate_fps: frames as f64 / simulated_seconds.max(1e-12),
        frames_per_thread,
        gr3d_percent,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::Builder;
    use crate::config::BuilderConfig;
    use trtsim_ir::graph::{Graph, LayerKind};

    fn engine() -> Engine {
        let mut g = Graph::new("serve", [3, 32, 32]);
        let c1 = g.add_layer("c1", LayerKind::conv_seeded(32, 3, 3, 1, 1, 0), &[Graph::INPUT]);
        let c2 = g.add_layer("c2", LayerKind::conv_seeded(32, 32, 3, 1, 1, 1), &[c1]);
        g.mark_output(c2);
        Builder::new(
            DeviceSpec::xavier_nx(),
            BuilderConfig::default().with_build_seed(2),
        )
        .build(&g)
        .unwrap()
    }

    fn opts() -> TimingOptions {
        let mut o = TimingOptions::default().without_engine_upload();
        o.run_jitter_sd = 0.0;
        o.host_glue_us = 200.0;
        o
    }

    #[test]
    fn all_frames_are_processed() {
        let e = engine();
        let report = serve(&e, &DeviceSpec::xavier_nx(), 4, 64, &opts());
        assert_eq!(report.frames, 64);
        assert_eq!(report.frames_per_thread.iter().sum::<u64>(), 64);
        assert!(report.aggregate_fps > 0.0);
    }

    #[test]
    fn more_threads_do_not_lose_throughput() {
        let e = engine();
        let dev = DeviceSpec::xavier_nx();
        let one = serve(&e, &dev, 1, 48, &opts());
        let four = serve(&e, &dev, 4, 48, &opts());
        // Streams overlap on the simulated timeline: aggregate FPS must not
        // regress when adding workers.
        assert!(
            four.aggregate_fps >= one.aggregate_fps * 0.95,
            "{} vs {}",
            four.aggregate_fps,
            one.aggregate_fps
        );
    }

    #[test]
    fn work_is_distributed() {
        let e = engine();
        let report = serve(&e, &DeviceSpec::xavier_nx(), 4, 100, &opts());
        let active = report.frames_per_thread.iter().filter(|&&n| n > 0).count();
        assert!(active >= 2, "work stuck on one thread: {:?}", report.frames_per_thread);
    }

    #[test]
    fn utilization_is_reported() {
        let e = engine();
        let report = serve(&e, &DeviceSpec::xavier_nx(), 2, 32, &opts());
        assert!(report.gr3d_percent > 0.0 && report.gr3d_percent <= 100.0);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_threads_rejected() {
        serve(&engine(), &DeviceSpec::xavier_nx(), 0, 1, &opts());
    }
}
