//! Kernel execution-time model: roofline with wave quantization.
//!
//! A kernel's time is the maximum of its arithmetic time and its DRAM time,
//! with the arithmetic term inflated by *wave quantization*: a grid of `B`
//! blocks executes in `ceil(B / (SMs · blocks_per_SM))` waves, and a
//! partially-filled trailing wave takes as long as a full one. This single
//! mechanism is responsible for one of the paper's central anomalies — a grid
//! shaped for 6 SMs can run as fast or faster on the NX than on the 8-SM AGX
//! at near-equal clocks (paper Table XI: `h884cudnn` kernels slower on AGX).

use crate::device::DeviceSpec;
use crate::kernel::{KernelDesc, Precision};

/// Execution time of one kernel on a device, in microseconds, excluding
/// launch overhead.
pub fn kernel_busy_us(kernel: &KernelDesc, device: &DeviceSpec) -> f64 {
    let compute = compute_time_us(kernel, device);
    let memory = memory_time_us(kernel, device);
    compute.max(memory)
}

/// Execution time including the per-launch driver overhead.
pub fn kernel_time_us(kernel: &KernelDesc, device: &DeviceSpec) -> f64 {
    kernel_busy_us(kernel, device) + device.kernel_launch_us
}

/// Arithmetic component: FLOPs over sustained throughput, inflated by wave
/// quantization.
pub fn compute_time_us(kernel: &KernelDesc, device: &DeviceSpec) -> f64 {
    if kernel.flops == 0 {
        return 0.0;
    }
    let peak_tflops = match (kernel.precision, kernel.uses_tensor_cores) {
        (Precision::Fp16, true) => device.fp16_tensor_tflops(),
        (Precision::Fp16, false) => device.fp16_cuda_tflops(),
        (Precision::Fp32, _) => device.fp32_tflops(),
        (Precision::Int8, _) => device.int8_tops(),
    };
    let sustained_flops_per_us = peak_tflops * kernel.compute_efficiency * 1e6;
    let ideal_us = kernel.flops as f64 / sustained_flops_per_us;
    ideal_us * wave_inflation(kernel, device)
}

/// Memory component: post-cache DRAM traffic over achievable bandwidth, plus
/// an L2 term at 4× DRAM bandwidth. L2 reuse traffic whose per-block working
/// set exceeds this device's L2 share spills to DRAM (see
/// [`l2_spill_fraction`]); on identical-L2 boards with different SM counts
/// this is what makes a cache-tuned kernel slower on the board with *more*
/// SMs.
pub fn memory_time_us(kernel: &KernelDesc, device: &DeviceSpec) -> f64 {
    let spill = l2_spill_fraction(kernel, device);
    let spilled = kernel.l2_bytes as f64 * spill;
    // Streaming DRAM traffic runs at full effective bandwidth; spilled reuse
    // traffic is scattered cache-line fetches, latency-bound at a fraction of
    // streaming bandwidth.
    let dram = kernel.dram_bytes as f64 / device.effective_dram_bytes_per_us();
    let spill_time = spilled / (SPILL_BANDWIDTH_FRACTION * device.effective_dram_bytes_per_us());
    let l2 = (kernel.l2_bytes as f64 - spilled) / device.l2_bytes_per_us();
    dram + spill_time + l2
}

/// Fraction of streaming DRAM bandwidth that scattered (cache-miss) traffic
/// sustains. Spilled L2 reuse traffic is pseudo-random single-line fetches —
/// latency-bound with little memory-level parallelism — which on LPDDR4x
/// sustains under a tenth of the streaming rate.
pub const SPILL_BANDWIDTH_FRACTION: f64 = 0.08;

/// Fraction of L2 reuse traffic that misses to DRAM because the per-block
/// working set exceeds the L2 share available to each resident block
/// (`L2_size / (SMs · blocks_per_SM)`).
pub fn l2_spill_fraction(kernel: &KernelDesc, device: &DeviceSpec) -> f64 {
    if kernel.l2_working_set_bytes == 0 {
        return 0.0;
    }
    let resident_blocks = (u64::from(device.sm_count) * u64::from(kernel.blocks_per_sm))
        .min(kernel.grid_blocks.max(1));
    let share = f64::from(device.l2_kib) * 1024.0 / resident_blocks as f64;
    let ws = kernel.l2_working_set_bytes as f64;
    if ws <= share {
        0.0
    } else {
        1.0 - share / ws
    }
}

/// Wave-quantization inflation factor ≥ 1: ratio of slots in the rounded-up
/// wave count to actual blocks.
pub fn wave_inflation(kernel: &KernelDesc, device: &DeviceSpec) -> f64 {
    let slots_per_wave = u64::from(device.sm_count) * u64::from(kernel.blocks_per_sm);
    let waves = kernel.grid_blocks.div_ceil(slots_per_wave);
    (waves * slots_per_wave) as f64 / kernel.grid_blocks as f64
}

/// Number of full-or-partial waves the grid needs on this device.
pub fn wave_count(kernel: &KernelDesc, device: &DeviceSpec) -> u64 {
    let slots_per_wave = u64::from(device.sm_count) * u64::from(kernel.blocks_per_sm);
    kernel.grid_blocks.div_ceil(slots_per_wave)
}

/// Fraction of SM capacity this kernel occupies while resident (for
/// utilization accounting): 1.0 when the grid fills every SM slot.
pub fn sm_occupancy_fraction(kernel: &KernelDesc, device: &DeviceSpec) -> f64 {
    let slots_per_wave = u64::from(device.sm_count) * u64::from(kernel.blocks_per_sm);
    (kernel.grid_blocks as f64 / slots_per_wave as f64).min(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceSpec;

    fn fp16_kernel(blocks: u64) -> KernelDesc {
        KernelDesc::new("k")
            .grid(blocks, 256)
            .occupancy(1)
            .flops(100_000_000)
            .dram_bytes(0)
            .precision(Precision::Fp16, true)
            .efficiency(0.6)
    }

    #[test]
    fn compute_scales_inversely_with_clock() {
        let nx = DeviceSpec::xavier_nx();
        let slow = nx.clone().with_clock_mhz(nx.max_gpu_clock_mhz / 2.0);
        let k = fp16_kernel(12);
        let ratio = compute_time_us(&k, &slow) / compute_time_us(&k, &nx);
        assert!((ratio - 2.0).abs() < 1e-9);
    }

    #[test]
    fn memory_bound_kernel_ignores_flops_mix() {
        let nx = DeviceSpec::xavier_nx();
        let k = KernelDesc::new("k")
            .grid(128, 256)
            .flops(1000)
            .dram_bytes(100 << 20);
        let t = kernel_busy_us(&k, &nx);
        let expected = (100u64 << 20) as f64 / nx.effective_dram_bytes_per_us();
        assert!((t - expected).abs() / expected < 1e-9);
    }

    #[test]
    fn wave_quantization_counts() {
        let nx = DeviceSpec::xavier_nx(); // 6 SMs
        let agx = DeviceSpec::xavier_agx(); // 8 SMs
        let k = fp16_kernel(12);
        assert_eq!(wave_count(&k, &nx), 2); // 12 / 6
        assert_eq!(wave_count(&k, &agx), 2); // ceil(12/8) — half-empty tail
        assert!((wave_inflation(&k, &nx) - 1.0).abs() < 1e-12);
        assert!((wave_inflation(&k, &agx) - 16.0 / 12.0).abs() < 1e-12);
    }

    #[test]
    fn cache_tuned_kernel_slower_on_agx() {
        // The paper's Table XI anomaly: the exact same kernel (same engine)
        // runs slower on the bigger board. Mechanism: 512 KiB of L2 shared by
        // 8 SMs instead of 6 — a working set sized for the NX share spills on
        // AGX, and the spilled reuse traffic swamps AGX's bandwidth edge.
        let nx = DeviceSpec::pinned_clock(crate::device::Platform::Nx);
        let agx = DeviceSpec::pinned_clock(crate::device::Platform::Agx);
        // Working set between the AGX share (512K/8 = 64K) and NX share
        // (512K/6 ≈ 85K) at one block per SM; heavy L2 reuse.
        let k = fp16_kernel(48)
            .dram_bytes(512 << 10)
            .l2_bytes(64 << 20)
            .l2_working_set(80 << 10);
        assert_eq!(l2_spill_fraction(&k, &nx), 0.0);
        assert!(l2_spill_fraction(&k, &agx) > 0.15);
        let t_nx = kernel_busy_us(&k, &nx);
        let t_agx = kernel_busy_us(&k, &agx);
        assert!(
            t_agx > t_nx,
            "expected AGX ({t_agx:.2} µs) slower than NX ({t_nx:.2} µs)"
        );
    }

    #[test]
    fn wave_tail_offsets_agx_core_advantage() {
        // A 12-block grid fills NX exactly (2 waves of 6) but leaves AGX's
        // second wave half empty; at near-equal pinned clocks AGX loses its
        // hardware edge and only ties.
        let nx = DeviceSpec::pinned_clock(crate::device::Platform::Nx);
        let agx = DeviceSpec::pinned_clock(crate::device::Platform::Agx);
        let k = fp16_kernel(12);
        let ratio = compute_time_us(&k, &agx) / compute_time_us(&k, &nx);
        assert!(
            ratio > 0.9,
            "AGX should not be meaningfully faster: {ratio}"
        );
    }

    #[test]
    fn agx_wins_on_well_shaped_grids() {
        let nx = DeviceSpec::pinned_clock(crate::device::Platform::Nx);
        let agx = DeviceSpec::pinned_clock(crate::device::Platform::Agx);
        let k = fp16_kernel(240); // divides both 6 and 8
        assert!(compute_time_us(&k, &agx) < compute_time_us(&k, &nx));
    }

    #[test]
    fn tensor_cores_accelerate_fp16() {
        let nx = DeviceSpec::xavier_nx();
        let with_tc = fp16_kernel(48);
        let without_tc = {
            let mut k = with_tc.clone();
            k.uses_tensor_cores = false;
            k
        };
        assert!(compute_time_us(&with_tc, &nx) < compute_time_us(&without_tc, &nx));
    }

    #[test]
    fn launch_overhead_added_once() {
        let nx = DeviceSpec::xavier_nx();
        let k = fp16_kernel(6);
        assert!(
            (kernel_time_us(&k, &nx) - kernel_busy_us(&k, &nx) - nx.kernel_launch_us).abs() < 1e-12
        );
    }

    #[test]
    fn occupancy_fraction_saturates() {
        let nx = DeviceSpec::xavier_nx();
        let small = fp16_kernel(3);
        let big = fp16_kernel(600);
        assert!(sm_occupancy_fraction(&small, &nx) < 1.0);
        assert_eq!(sm_occupancy_fraction(&big, &nx), 1.0);
    }

    #[test]
    fn empty_kernel_costs_only_launch() {
        let nx = DeviceSpec::xavier_nx();
        let k = KernelDesc::new("noop");
        assert_eq!(kernel_busy_us(&k, &nx), 0.0);
        assert_eq!(kernel_time_us(&k, &nx), nx.kernel_launch_us);
    }
}
