//! Steady-state multi-stream concurrency model (paper Figures 3 and 4).
//!
//! The paper binds N inference threads to N CUDA streams in one context and
//! measures aggregate FPS and GR3D utilization as N grows. Observed behaviour:
//! throughput saturates almost immediately (one stream already keeps the GPU
//! ~60 % busy), utilization climbs toward a platform ceiling (~82 % NX /
//! ~86 % AGX), and the supported thread count is bounded by RAM bandwidth —
//! the paper's Equation 1, `N = O(Fmem·Bwid / Bth)`.
//!
//! This module computes those curves from an [`EngineProfile`] — per-inference
//! GPU busy time, host gap, and DRAM traffic — rather than from hard-coded
//! figures, so different engines (Tiny-YOLOv3 vs GoogLeNet) produce different
//! saturation points exactly as in the paper.

use crate::device::DeviceSpec;

/// Aggregate per-inference execution profile of a built engine, measured by
/// running it once on the simulated device.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineProfile {
    /// GPU busy time per inference, µs (kernel roofline times, no launches).
    pub busy_us: f64,
    /// Host-side serial time per inference, µs (launches, sync, glue).
    pub gap_us: f64,
    /// DRAM bytes touched per inference (weights + activations after cache).
    pub dram_bytes: u64,
    /// Per-stream activation/workspace memory, bytes.
    pub activation_bytes: u64,
    /// Shared engine weight memory, bytes.
    pub weight_bytes: u64,
}

impl EngineProfile {
    /// Single-stream latency, µs.
    pub fn latency_us(&self) -> f64 {
        self.busy_us + self.gap_us
    }

    /// Single-stream throughput, inferences/s.
    pub fn fps_single(&self) -> f64 {
        1e6 / self.latency_us()
    }

    /// Single-stream GR3D utilization (busy fraction of the cycle).
    pub fn utilization_single(&self) -> f64 {
        self.busy_us / self.latency_us()
    }

    /// Per-thread DRAM bandwidth demand at single-stream speed, bytes/s —
    /// the `Bth` of the paper's Equation 1.
    pub fn thread_bandwidth_demand(&self) -> f64 {
        self.dram_bytes as f64 * self.fps_single()
    }
}

/// What limited the supported thread count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThreadBound {
    /// RAM bandwidth (Equation 1) ran out first.
    Bandwidth,
    /// GPU-usable DRAM capacity ran out first.
    Memory,
}

/// One point of the Figure 3/4 sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConcurrencyPoint {
    /// Thread (= stream) count.
    pub threads: u32,
    /// Aggregate throughput across all threads, inferences/s.
    pub fps: f64,
    /// GR3D utilization in `[0, 1]`.
    pub utilization: f64,
}

/// Multiplier on busy time once many streams fight for DRAM (calibrated:
/// kernels slow by ~25 % under full bandwidth pressure).
const CONTENTION_INFLATION: f64 = 1.25;

/// Fraction of single-stream busy time spent in DRAM above which saturation
/// is attributed to RAM bandwidth (the paper: "RAM bandwidth bottleneck marks
/// this thread saturation point").
const BANDWIDTH_BOUND_FRACTION: f64 = 0.4;

/// Maximum threads the device supports for this engine, with the dominant
/// saturation cause.
///
/// The *count* is bounded by DRAM capacity — each stream's execution context
/// allocates every activation binding (multiply-buffered) plus workspace, and
/// thread creation fails once the CUDA heap is exhausted. The *cause* of
/// throughput saturation is classified by where the single-stream busy time
/// goes: engines whose kernels are dominated by DRAM traffic saturate the
/// memory system (Eq. 1's regime) long before they run out of SMs.
pub fn max_threads(profile: &EngineProfile, device: &DeviceSpec) -> (u32, ThreadBound) {
    let free = device
        .gpu_usable_dram_bytes()
        .saturating_sub(profile.weight_bytes);
    let n_mem = ((free / profile.activation_bytes.max(1)) as u32).max(1);
    let mem_time_us = profile.dram_bytes as f64 / device.effective_dram_bytes_per_us();
    let bound = if mem_time_us >= BANDWIDTH_BOUND_FRACTION * profile.busy_us {
        ThreadBound::Bandwidth
    } else {
        ThreadBound::Memory
    };
    (n_mem, bound)
}

/// The paper's Equation 1 order-of-magnitude check,
/// `N = O(Fmem · Bwid / Bth)`: the thread count at which the aggregate DRAM
/// demand would hit the memory system's roof, with `Bth` the per-thread
/// bandwidth consumption at the operating point.
pub fn equation1_threads(profile: &EngineProfile, device: &DeviceSpec) -> u32 {
    let (n_max, _) = max_threads(profile, device);
    let sat = point_at(profile, device, n_max);
    let per_thread_bytes_per_s = sat.fps / f64::from(n_max) * profile.dram_bytes as f64;
    let bw_total = device.effective_dram_bytes_per_us() * 1e6;
    ((bw_total / per_thread_bytes_per_s).floor() as u32).max(1)
}

/// Aggregate throughput and utilization at a given thread count.
pub fn point_at(profile: &EngineProfile, device: &DeviceSpec, threads: u32) -> ConcurrencyPoint {
    assert!(threads >= 1, "thread count must be positive");
    let n = f64::from(threads);

    // Saturated busy time: bandwidth pressure inflates kernels.
    let busy_sat = profile.busy_us * CONTENTION_INFLATION;

    // Throughput ceilings: GPU back-to-back at the utilization cap, and the
    // DRAM bandwidth roof.
    let fps_compute_cap = device.max_gr3d_utilization * 1e6 / busy_sat;
    let fps_bw_cap = device.effective_dram_bytes_per_us() * 1e6 / profile.dram_bytes as f64;
    let fps_ceiling = fps_compute_cap.min(fps_bw_cap);

    // Saturation pace scales with the supported range so the curves keep
    // rising across the whole sweep, as the paper's figures do.
    let (n_max, _) = max_threads(profile, device);
    let tau = (f64::from(n_max) / 3.0).max(3.0);

    let fps1 = profile.fps_single();
    let blend = 1.0 - (-(n - 1.0) / tau).exp();
    let fps = fps1 + (fps_ceiling - fps1) * blend;

    // Effective busy time drifts from the uncontended value toward the
    // saturated one along the same curve, so utilization = fps · busy.
    let busy_eff = profile.busy_us + (busy_sat - profile.busy_us) * blend;
    let utilization = (fps * busy_eff / 1e6).min(device.max_gr3d_utilization);

    ConcurrencyPoint {
        threads,
        fps,
        utilization,
    }
}

/// Full sweep from 1 to the supported maximum (Figures 3/4 series).
pub fn sweep(profile: &EngineProfile, device: &DeviceSpec) -> (Vec<ConcurrencyPoint>, ThreadBound) {
    let (n_max, bound) = max_threads(profile, device);
    let points = (1..=n_max).map(|n| point_at(profile, device, n)).collect();
    (points, bound)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceSpec;

    /// A Tiny-YOLOv3-like profile on NX at max clock: ~4.5 ms latency with
    /// the GPU ~52 % busy, ~50 MB DRAM traffic, ~195 MB per-stream context.
    fn tiny_profile() -> EngineProfile {
        EngineProfile {
            busy_us: 2400.0,
            gap_us: 2200.0,
            dram_bytes: 50_000_000,
            activation_bytes: 195 << 20,
            weight_bytes: 18 << 20,
        }
    }

    /// A GoogLeNet-like profile: more launches ⇒ much larger per-stream
    /// context, similar activation volume.
    fn googlenet_profile() -> EngineProfile {
        EngineProfile {
            busy_us: 1900.0,
            gap_us: 4700.0,
            dram_bytes: 46_000_000,
            activation_bytes: 380 << 20,
            weight_bytes: 14 << 20,
        }
    }

    #[test]
    fn single_stream_quantities() {
        let p = tiny_profile();
        assert!((p.latency_us() - 4600.0).abs() < 1e-9);
        assert!((p.fps_single() - 217.4).abs() < 1.0);
        assert!((p.utilization_single() - 0.5217).abs() < 0.01);
    }

    #[test]
    fn fps_rises_modestly_and_saturates() {
        let p = tiny_profile();
        let dev = DeviceSpec::xavier_nx();
        let p1 = point_at(&p, &dev, 1);
        let (n_max, _) = max_threads(&p, &dev);
        let p_sat = point_at(&p, &dev, n_max);
        assert!(p_sat.fps > p1.fps);
        // The paper's Figure 3a: 189 → ~196 FPS; shape = small relative rise.
        assert!(p_sat.fps / p1.fps < 1.6, "rise {}", p_sat.fps / p1.fps);
    }

    #[test]
    fn utilization_approaches_platform_cap() {
        let p = tiny_profile();
        let dev = DeviceSpec::xavier_nx();
        let p1 = point_at(&p, &dev, 1);
        let (n_max, _) = max_threads(&p, &dev);
        let p_sat = point_at(&p, &dev, n_max);
        assert!(p1.utilization < 0.70);
        assert!(p_sat.utilization > 0.70 && p_sat.utilization <= dev.max_gr3d_utilization);
    }

    #[test]
    fn utilization_is_monotone() {
        let p = tiny_profile();
        let dev = DeviceSpec::xavier_nx();
        let mut last = 0.0;
        let (n_max, _) = max_threads(&p, &dev);
        for n in 1..=n_max {
            let pt = point_at(&p, &dev, n);
            assert!(pt.utilization >= last - 1e-12);
            last = pt.utilization;
        }
    }

    #[test]
    fn thread_counts_land_in_the_paper_band() {
        // Paper Figure 3a/4a: Tiny-YOLOv3 28, GoogLeNet 16 on NX.
        let dev = DeviceSpec::xavier_nx();
        let (n_tiny, bound) = max_threads(&tiny_profile(), &dev);
        assert!((20..=36).contains(&n_tiny), "tiny: {n_tiny}");
        assert_eq!(bound, ThreadBound::Bandwidth, "DRAM-heavy engine");
        let (n_goog, _) = max_threads(&googlenet_profile(), &dev);
        assert!((10..=20).contains(&n_goog), "googlenet: {n_goog}");
        assert!(n_tiny > n_goog);
    }

    #[test]
    fn agx_supports_more_threads_than_nx() {
        let p = tiny_profile();
        let (n_nx, _) = max_threads(&p, &DeviceSpec::xavier_nx());
        let (n_agx, _) = max_threads(&p, &DeviceSpec::xavier_agx());
        assert!(n_agx > n_nx, "{n_agx} vs {n_nx}");
    }

    #[test]
    fn equation1_bound_is_consistent() {
        // Eq. 1 is an order-of-magnitude bound: the supported thread count
        // must not exceed it wildly.
        let p = tiny_profile();
        let dev = DeviceSpec::xavier_nx();
        let (n_max, _) = max_threads(&p, &dev);
        let n_eq1 = equation1_threads(&p, &dev);
        assert!(
            n_eq1 >= n_max / 2,
            "Eq.1 bound {n_eq1} far below supported {n_max}"
        );
    }

    #[test]
    fn compute_heavy_engine_is_memory_classified() {
        let p = EngineProfile {
            dram_bytes: 1_000_000, // negligible traffic
            ..tiny_profile()
        };
        let (_, bound) = max_threads(&p, &DeviceSpec::xavier_nx());
        assert_eq!(bound, ThreadBound::Memory);
    }

    #[test]
    fn huge_contexts_limit_threads() {
        let p = EngineProfile {
            activation_bytes: 2 << 30,
            ..tiny_profile()
        };
        let (n, _) = max_threads(&p, &DeviceSpec::xavier_nx());
        assert!(n <= 3);
    }

    #[test]
    fn sweep_has_expected_length() {
        let p = tiny_profile();
        let dev = DeviceSpec::xavier_nx();
        let (points, _) = sweep(&p, &dev);
        let (n_max, _) = max_threads(&p, &dev);
        assert_eq!(points.len(), n_max as usize);
        assert_eq!(points[0].threads, 1);
        assert_eq!(points.last().unwrap().threads, n_max);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_threads_rejected() {
        point_at(&tiny_profile(), &DeviceSpec::xavier_nx(), 0);
    }
}
