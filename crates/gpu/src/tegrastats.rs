//! A `tegrastats`-like sampler over a simulated timeline.
//!
//! The real utility prints RAM usage, GR3D (GPU) utilization, CPU load and
//! thermals once per interval. The paper uses it for GPU utilization and RAM
//! statistics in the concurrency experiments; this module reproduces the GPU
//! and RAM columns by sampling a [`GpuTimeline`].

use crate::device::{DeviceSpec, Platform};
use crate::timeline::{CopyKind, GpuTimeline, StreamId};

/// One sampled line of tegrastats output.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TegraSample {
    /// Sample timestamp, µs.
    pub time_us: f64,
    /// GR3D utilization over the preceding interval, percent.
    pub gr3d_percent: f64,
    /// Simulated RAM in use, MiB.
    pub ram_used_mib: f64,
    /// Total RAM, MiB.
    pub ram_total_mib: f64,
    /// Estimated GPU-rail power draw, milliwatts.
    pub gpu_power_mw: f64,
}

/// GPU-rail power estimate: idle floor plus dynamic power scaling with
/// utilization and quadratically with clock (CV²f at roughly constant
/// voltage steps — the usual first-order Jetson power model).
pub fn gpu_power_mw(device: &DeviceSpec, utilization: f64) -> f64 {
    let (idle_mw, dyn_mw) = match device.platform {
        Platform::Nx => (900.0, 9_500.0),
        Platform::Agx => (1_400.0, 19_000.0),
    };
    let clock_ratio = device.gpu_clock_mhz / device.max_gpu_clock_mhz;
    idle_mw + utilization.clamp(0.0, 1.0) * dyn_mw * clock_ratio * clock_ratio
}

impl std::fmt::Display for TegraSample {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "RAM {:.0}/{:.0}MB GR3D_FREQ {:.0}% VDD_GPU {:.0}mW",
            self.ram_used_mib, self.ram_total_mib, self.gr3d_percent, self.gpu_power_mw
        )
    }
}

/// Samples a finished timeline at a fixed interval, attributing `ram_used`
/// bytes of allocations (weights + activations) for the whole run.
///
/// # Panics
///
/// Panics if `interval_us` is not positive.
pub fn sample(timeline: &GpuTimeline, interval_us: f64, ram_used_bytes: u64) -> Vec<TegraSample> {
    assert!(interval_us > 0.0, "sampling interval must be positive");
    let total = timeline.elapsed_us();
    let ram_total_mib = f64::from(timeline.device().dram_gib) * 1024.0;
    let ram_used_mib = ram_used_bytes as f64 / (1 << 20) as f64;
    let mut out = Vec::new();
    let mut t = interval_us;
    while t <= total + interval_us {
        let t0 = t - interval_us;
        let utilization = timeline.utilization_between(t0, t.min(total));
        out.push(TegraSample {
            time_us: t,
            gr3d_percent: utilization * 100.0,
            ram_used_mib,
            ram_total_mib,
            gpu_power_mw: gpu_power_mw(timeline.device(), utilization),
        });
        t += interval_us;
    }
    out
}

/// Fraction of the window `[t0, t1)` during which `stream` had a kernel or
/// copy resident. Unlike [`GpuTimeline::utilization_between`] this is *not*
/// occupancy-weighted: it answers "was this stream doing device work",
/// the per-stream column a live concurrency dashboard wants. Returns 0 for
/// an empty or inverted window.
pub fn stream_busy_between(timeline: &GpuTimeline, stream: StreamId, t0: f64, t1: f64) -> f64 {
    if t1 <= t0 {
        return 0.0;
    }
    let mut busy = 0.0;
    for k in timeline.kernels().iter().filter(|k| k.stream == stream) {
        busy += overlap_us(k.start_us, k.duration_us, t0, t1);
    }
    for c in timeline.memcpys().iter().filter(|c| c.stream == stream) {
        busy += overlap_us(c.start_us, c.duration_us, t0, t1);
    }
    (busy / (t1 - t0)).min(1.0)
}

/// Bytes moved over PCIe/NVLink within `[t0, t1)`, split `(h2d, d2h)`.
/// Copies partially inside the window contribute pro-rata by overlap, so
/// windowed rates sum to the true total.
pub fn memcpy_bytes_between(timeline: &GpuTimeline, t0: f64, t1: f64) -> (f64, f64) {
    let (mut h2d, mut d2h) = (0.0, 0.0);
    if t1 <= t0 {
        return (h2d, d2h);
    }
    for c in timeline.memcpys() {
        // Instantaneous copies land fully in whichever window holds their
        // start; finite ones contribute by overlap fraction.
        let frac = if c.duration_us > 0.0 {
            overlap_us(c.start_us, c.duration_us, t0, t1) / c.duration_us
        } else if (t0..t1).contains(&c.start_us) {
            1.0
        } else {
            0.0
        };
        let bytes = c.bytes as f64 * frac;
        match c.kind {
            CopyKind::HostToDevice => h2d += bytes,
            CopyKind::DeviceToHost => d2h += bytes,
        }
    }
    (h2d, d2h)
}

fn overlap_us(start: f64, duration: f64, t0: f64, t1: f64) -> f64 {
    let s = start.max(t0);
    let e = (start + duration).min(t1);
    (e - s).max(0.0)
}

/// Mean GR3D utilization over the busy part of a run, percent.
pub fn mean_gr3d_percent(timeline: &GpuTimeline) -> f64 {
    let total = timeline.elapsed_us();
    if total == 0.0 {
        return 0.0;
    }
    timeline.utilization_between(0.0, total) * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceSpec;
    use crate::kernel::{KernelDesc, Precision};

    fn busy_timeline() -> GpuTimeline {
        let mut tl = GpuTimeline::new(DeviceSpec::xavier_nx());
        let s = tl.create_stream();
        for _ in 0..5 {
            tl.enqueue_kernel(
                s,
                &KernelDesc::new("k")
                    .grid(48, 128)
                    .flops(200_000_000)
                    .precision(Precision::Fp16, true),
            );
        }
        tl
    }

    #[test]
    fn samples_cover_the_run() {
        let tl = busy_timeline();
        let samples = sample(&tl, 100.0, 64 << 20);
        assert!(!samples.is_empty());
        assert!(samples.last().unwrap().time_us >= tl.elapsed_us());
    }

    #[test]
    fn busy_run_shows_high_utilization() {
        let tl = busy_timeline();
        assert!(mean_gr3d_percent(&tl) > 50.0);
    }

    #[test]
    fn ram_fields_are_consistent() {
        let tl = busy_timeline();
        let samples = sample(&tl, 100.0, 512 << 20);
        let s = &samples[0];
        assert_eq!(s.ram_used_mib, 512.0);
        assert_eq!(s.ram_total_mib, 8.0 * 1024.0);
    }

    #[test]
    fn display_looks_like_tegrastats() {
        let tl = busy_timeline();
        let line = sample(&tl, 100.0, 1 << 30)[0].to_string();
        assert!(line.contains("RAM") && line.contains("GR3D_FREQ") && line.contains("VDD_GPU"));
    }

    #[test]
    fn power_scales_with_utilization_and_clock() {
        let nx = DeviceSpec::xavier_nx();
        assert!(gpu_power_mw(&nx, 0.8) > gpu_power_mw(&nx, 0.2));
        let pinned = DeviceSpec::pinned_clock(Platform::Nx);
        assert!(gpu_power_mw(&pinned, 0.8) < gpu_power_mw(&nx, 0.8));
        // Idle floor.
        assert!(gpu_power_mw(&nx, 0.0) > 0.0);
        let agx = DeviceSpec::xavier_agx();
        assert!(gpu_power_mw(&agx, 1.0) > gpu_power_mw(&nx, 1.0));
    }

    #[test]
    fn empty_timeline_has_zero_utilization() {
        let tl = GpuTimeline::new(DeviceSpec::xavier_nx());
        assert_eq!(mean_gr3d_percent(&tl), 0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_interval_rejected() {
        sample(&busy_timeline(), 0.0, 0);
    }

    #[test]
    fn stream_busy_is_per_stream() {
        let mut tl = GpuTimeline::new(DeviceSpec::xavier_nx());
        let a = tl.create_stream();
        let b = tl.create_stream();
        tl.enqueue_kernel(
            a,
            &KernelDesc::new("k")
                .grid(48, 128)
                .flops(200_000_000)
                .precision(Precision::Fp16, true),
        );
        let total = tl.elapsed_us();
        let busy_a = stream_busy_between(&tl, a, 0.0, total);
        let busy_b = stream_busy_between(&tl, b, 0.0, total);
        assert!(busy_a > 0.5, "stream with the kernel is busy: {busy_a}");
        assert_eq!(busy_b, 0.0, "idle stream reports zero");
        assert_eq!(stream_busy_between(&tl, a, total, 0.0), 0.0);
    }

    #[test]
    fn windowed_memcpy_bytes_sum_to_total() {
        let mut tl = GpuTimeline::new(DeviceSpec::xavier_nx());
        let s = tl.create_stream();
        tl.enqueue_h2d(s, 1 << 20);
        tl.enqueue_d2h(s, 1 << 10);
        let total = tl.elapsed_us();
        let (h2d_all, d2h_all) = memcpy_bytes_between(&tl, 0.0, total);
        assert!((h2d_all - (1u64 << 20) as f64).abs() < 1.0);
        assert!((d2h_all - (1u64 << 10) as f64).abs() < 1.0);
        // Two half-windows sum to the whole.
        let mid = total / 2.0;
        let (h1, d1) = memcpy_bytes_between(&tl, 0.0, mid);
        let (h2, d2) = memcpy_bytes_between(&tl, mid, total);
        assert!((h1 + h2 - h2d_all).abs() < 1.0);
        assert!((d1 + d2 - d2h_all).abs() < 1.0);
    }
}
