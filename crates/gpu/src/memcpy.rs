//! Host-to-device / device-to-host copy cost model.
//!
//! On Jetson boards, CPU and GPU share LPDDR4x, but `cudaMemcpyHostToDevice`
//! from pageable memory still stages through the CPU and the SMMU-managed
//! carveout, so it is *much* slower than the DRAM peak and pays a substantial
//! per-transfer setup. The paper's Table X shows the engine-upload memcpy
//! dominating several networks' inference time (e.g. ~9 ms of ResNet-18's
//! 12.65 ms), and being *slower on the AGX* despite its wider bus — captured
//! here by the AGX's larger `h2d_latency_us`.

use crate::device::DeviceSpec;

/// Time to copy `bytes` host→device, in µs.
pub fn h2d_time_us(bytes: u64, device: &DeviceSpec) -> f64 {
    device.h2d_latency_us + bytes as f64 / (device.h2d_bandwidth_gbps * 1e9 / 1e6)
}

/// Time to copy `bytes` device→host, in µs. Reads from the carveout are
/// modestly faster than writes into it (no SMMU page pinning on the way out).
pub fn d2h_time_us(bytes: u64, device: &DeviceSpec) -> f64 {
    0.6 * device.h2d_latency_us + bytes as f64 / (1.25 * device.h2d_bandwidth_gbps * 1e9 / 1e6)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceSpec;

    #[test]
    fn h2d_is_latency_plus_bandwidth() {
        let nx = DeviceSpec::xavier_nx();
        let t0 = h2d_time_us(0, &nx);
        assert_eq!(t0, nx.h2d_latency_us);
        let t1 = h2d_time_us(1 << 20, &nx);
        assert!(t1 > t0);
    }

    #[test]
    fn engine_sized_copy_lands_in_paper_range() {
        // Paper Table X: ResNet-18's 22.5 MB engine upload costs ~9 ms.
        let nx = DeviceSpec::xavier_nx();
        let t_ms = h2d_time_us(22_500_000, &nx) / 1000.0;
        assert!((7.0..11.0).contains(&t_ms), "got {t_ms} ms");
    }

    #[test]
    fn agx_slower_for_small_and_medium_copies() {
        // The Table X anomaly: AGX memcpy ≥ NX memcpy for engine uploads.
        let nx = DeviceSpec::xavier_nx();
        let agx = DeviceSpec::xavier_agx();
        for bytes in [1u64 << 10, 1 << 20, 22_500_000, 50_000_000] {
            assert!(
                h2d_time_us(bytes, &agx) > h2d_time_us(bytes, &nx),
                "bytes {bytes}"
            );
        }
    }

    #[test]
    fn d2h_cheaper_than_h2d() {
        let nx = DeviceSpec::xavier_nx();
        assert!(d2h_time_us(1 << 20, &nx) < h2d_time_us(1 << 20, &nx));
    }

    #[test]
    fn monotone_in_size() {
        let nx = DeviceSpec::xavier_nx();
        let mut last = 0.0;
        for bytes in [0u64, 1 << 10, 1 << 16, 1 << 20, 1 << 24] {
            let t = h2d_time_us(bytes, &nx);
            assert!(t >= last);
            last = t;
        }
    }
}
