//! Simulated CUDA kernel launch descriptors.
//!
//! A [`KernelDesc`] carries everything the timing model and the BSP
//! performance model need to know about one launch: geometry, arithmetic
//! work, memory traffic by level, and precision. The tactic catalog in
//! `trtsim-kernels` constructs these from layer shapes.
//!
//! Each descriptor also carries an *inline content fingerprint*
//! ([`KernelDesc::content_fingerprint`]): a 128-bit FNV-style fold over
//! every field the timing model reads, computed lazily on first use and
//! cached in the struct. The timing cache keys on it, so a warm-cache query
//! costs one cached load plus a map probe instead of re-folding the name
//! string every time.

use std::sync::OnceLock;

/// Numeric precision a kernel computes in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Precision {
    /// 32-bit floating point on CUDA cores.
    Fp32,
    /// 16-bit floating point (tensor cores when the kernel supports them).
    Fp16,
    /// 8-bit integer dot products (DP4A).
    Int8,
}

impl Precision {
    /// Bytes per element in this precision.
    pub fn bytes(self) -> usize {
        match self {
            Precision::Fp32 => 4,
            Precision::Fp16 => 2,
            Precision::Int8 => 1,
        }
    }

    /// Short label used in kernel names ("fp32"/"h884"/"i8816").
    pub fn label(self) -> &'static str {
        match self {
            Precision::Fp32 => "fp32",
            Precision::Fp16 => "h884",
            Precision::Int8 => "i8816",
        }
    }
}

/// One simulated kernel launch.
///
/// Construct with the builder-style methods; all quantities default to a
/// trivial empty kernel.
///
/// # Examples
///
/// ```
/// use trtsim_gpu::kernel::{KernelDesc, Precision};
/// let k = KernelDesc::new("trt_volta_h884cudnn_256x64")
///     .grid(24, 256)
///     .flops(1_000_000)
///     .dram_bytes(65_536)
///     .precision(Precision::Fp16, true)
///     .efficiency(0.55);
/// assert_eq!(k.total_threads(), 24 * 256);
/// ```
#[derive(Debug, Clone)]
pub struct KernelDesc {
    /// Kernel symbol name (TensorRT-style, produced by the tactic catalog).
    pub name: String,
    /// Thread blocks in the grid.
    pub grid_blocks: u64,
    /// Threads per block.
    pub threads_per_block: u32,
    /// Concurrent blocks one SM can host for this kernel (occupancy).
    pub blocks_per_sm: u32,
    /// Total floating-point (or int) operations performed.
    pub flops: u64,
    /// Bytes moved to/from DRAM after cache filtering.
    pub dram_bytes: u64,
    /// Bytes served from L2.
    pub l2_bytes: u64,
    /// Bytes served from shared memory (per-block staging traffic).
    pub shared_bytes: u64,
    /// Per-resident-block L2 working set in bytes. Both Xavier boards have
    /// 512 KiB of L2, but the AGX's 8 SMs each get a smaller share than the
    /// NX's 6; tactics whose working set straddles the two shares spill to
    /// DRAM on AGX only — the microarchitectural root of the paper's
    /// "same kernel slower on the bigger board" anomaly (Table XI).
    pub l2_working_set_bytes: u64,
    /// Compute precision.
    pub precision: Precision,
    /// Whether the kernel uses tensor cores (HMMA path).
    pub uses_tensor_cores: bool,
    /// Fraction of peak arithmetic throughput this kernel sustains
    /// (tactic-specific; tuned kernels reach 0.5–0.8, generic ones 0.1–0.3).
    pub compute_efficiency: f64,
    /// Lazily computed [`KernelDesc::content_fingerprint`]; every builder
    /// method resets it. Excluded from equality.
    fingerprint: OnceLock<u128>,
}

impl PartialEq for KernelDesc {
    fn eq(&self, other: &Self) -> bool {
        // The cached fingerprint is derived state — two descriptors are the
        // same kernel whether or not either has been fingerprinted yet.
        self.name == other.name
            && self.grid_blocks == other.grid_blocks
            && self.threads_per_block == other.threads_per_block
            && self.blocks_per_sm == other.blocks_per_sm
            && self.flops == other.flops
            && self.dram_bytes == other.dram_bytes
            && self.l2_bytes == other.l2_bytes
            && self.shared_bytes == other.shared_bytes
            && self.l2_working_set_bytes == other.l2_working_set_bytes
            && self.precision == other.precision
            && self.uses_tensor_cores == other.uses_tensor_cores
            && self.compute_efficiency == other.compute_efficiency
    }
}

/// A pair of independent FNV-1a-style 64-bit accumulators folded in one pass
/// over the fingerprint material; together they form a 128-bit fingerprint.
#[derive(Clone, Copy)]
struct Fold2 {
    a: u64,
    b: u64,
}

impl Fold2 {
    fn new() -> Self {
        // FNV-1a offset basis and a second arbitrary odd basis so the two
        // lanes decorrelate.
        Self {
            a: 0xcbf2_9ce4_8422_2325,
            b: 0x9e37_79b9_7f4a_7c15,
        }
    }

    #[inline]
    fn u64(&mut self, v: u64) {
        self.a = (self.a ^ v).wrapping_mul(0x1000_0000_01b3).rotate_left(29);
        self.b = (self.b ^ v)
            .wrapping_mul(0xff51_afd7_ed55_8ccd)
            .rotate_left(31);
    }

    /// Folds a byte string eight bytes at a time (length is folded too, so
    /// `"ab" + "c"` and `"a" + "bc"` cannot alias).
    #[inline]
    fn bytes(&mut self, s: &[u8]) {
        self.u64(s.len() as u64);
        let mut chunks = s.chunks_exact(8);
        for c in &mut chunks {
            self.u64(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            self.u64(u64::from_le_bytes(tail));
        }
    }

    fn finish(self) -> u128 {
        (u128::from(self.a) << 64) | u128::from(self.b)
    }
}

impl KernelDesc {
    /// Creates an empty kernel with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            grid_blocks: 1,
            threads_per_block: 128,
            blocks_per_sm: 2,
            flops: 0,
            dram_bytes: 0,
            l2_bytes: 0,
            shared_bytes: 0,
            l2_working_set_bytes: 0,
            precision: Precision::Fp32,
            uses_tensor_cores: false,
            compute_efficiency: 0.5,
            fingerprint: OnceLock::new(),
        }
    }

    /// Stable 128-bit fingerprint over every field the timing model reads,
    /// computed once and cached inline — the timing cache's key material.
    ///
    /// The builder methods reset the cached value; code that assigns to the
    /// public fields directly after a fingerprint has been taken must call
    /// [`KernelDesc::reset_fingerprint`] or cache lookups will serve stale
    /// times.
    pub fn content_fingerprint(&self) -> u128 {
        *self.fingerprint.get_or_init(|| {
            let mut f = Fold2::new();
            f.bytes(self.name.as_bytes());
            f.u64(self.grid_blocks);
            f.u64(u64::from(self.threads_per_block));
            f.u64(u64::from(self.blocks_per_sm));
            f.u64(self.flops);
            f.u64(self.dram_bytes);
            f.u64(self.l2_bytes);
            f.u64(self.shared_bytes);
            f.u64(self.l2_working_set_bytes);
            f.u64(self.precision as u64);
            f.u64(u64::from(self.uses_tensor_cores));
            f.u64(self.compute_efficiency.to_bits());
            f.finish()
        })
    }

    /// Drops the cached [`KernelDesc::content_fingerprint`] after direct
    /// field mutation (the builder methods do this automatically).
    pub fn reset_fingerprint(&mut self) {
        self.fingerprint = OnceLock::new();
    }

    /// Sets grid geometry.
    pub fn grid(mut self, blocks: u64, threads_per_block: u32) -> Self {
        self.grid_blocks = blocks.max(1);
        self.threads_per_block = threads_per_block.max(1);
        self.reset_fingerprint();
        self
    }

    /// Sets occupancy (concurrent blocks per SM).
    pub fn occupancy(mut self, blocks_per_sm: u32) -> Self {
        self.blocks_per_sm = blocks_per_sm.max(1);
        self.reset_fingerprint();
        self
    }

    /// Sets total arithmetic work.
    pub fn flops(mut self, flops: u64) -> Self {
        self.flops = flops;
        self.reset_fingerprint();
        self
    }

    /// Sets DRAM traffic.
    pub fn dram_bytes(mut self, bytes: u64) -> Self {
        self.dram_bytes = bytes;
        self.reset_fingerprint();
        self
    }

    /// Sets L2 traffic.
    pub fn l2_bytes(mut self, bytes: u64) -> Self {
        self.l2_bytes = bytes;
        self.reset_fingerprint();
        self
    }

    /// Sets shared-memory traffic.
    pub fn shared_bytes(mut self, bytes: u64) -> Self {
        self.shared_bytes = bytes;
        self.reset_fingerprint();
        self
    }

    /// Sets the per-resident-block L2 working set.
    pub fn l2_working_set(mut self, bytes: u64) -> Self {
        self.l2_working_set_bytes = bytes;
        self.reset_fingerprint();
        self
    }

    /// Sets precision and tensor-core usage.
    pub fn precision(mut self, precision: Precision, tensor_cores: bool) -> Self {
        self.precision = precision;
        self.uses_tensor_cores = tensor_cores && precision == Precision::Fp16;
        self.reset_fingerprint();
        self
    }

    /// Sets sustained fraction of peak throughput.
    ///
    /// # Panics
    ///
    /// Panics if `eff` is outside `(0, 1]`.
    pub fn efficiency(mut self, eff: f64) -> Self {
        assert!(eff > 0.0 && eff <= 1.0, "efficiency must be in (0, 1]");
        self.compute_efficiency = eff;
        self.reset_fingerprint();
        self
    }

    /// Scales this launch to process `batch` inputs in one grid: a batched
    /// kernel does `batch`× the arithmetic and moves `batch`× the traffic
    /// across a `batch`× grid, but still costs a *single* launch — the
    /// amortization dynamic batching exploits (Triton-style serving on
    /// TensorRT engines). The per-resident-block L2 working set is
    /// unchanged: batching adds blocks, not per-block state.
    pub fn with_batch(mut self, batch: u64) -> Self {
        let b = batch.max(1);
        self.grid_blocks = self.grid_blocks.saturating_mul(b);
        self.flops = self.flops.saturating_mul(b);
        self.dram_bytes = self.dram_bytes.saturating_mul(b);
        self.l2_bytes = self.l2_bytes.saturating_mul(b);
        self.shared_bytes = self.shared_bytes.saturating_mul(b);
        self.reset_fingerprint();
        self
    }

    /// Total threads across the grid.
    pub fn total_threads(&self) -> u64 {
        self.grid_blocks * u64::from(self.threads_per_block)
    }

    /// Arithmetic instructions per thread (for the BSP model's `Comp` term);
    /// FLOPs divided evenly across threads.
    pub fn ops_per_thread(&self) -> f64 {
        self.flops as f64 / self.total_threads() as f64
    }

    /// Global loads+stores per thread in 4-byte words (BSP `ldg+stg`).
    pub fn global_words_per_thread(&self) -> f64 {
        (self.dram_bytes + self.l2_bytes) as f64 / 4.0 / self.total_threads() as f64
    }

    /// Shared loads+stores per thread in 4-byte words (BSP `lds+sts`).
    pub fn shared_words_per_thread(&self) -> f64 {
        self.shared_bytes as f64 / 4.0 / self.total_threads() as f64
    }

    /// Fraction of global accesses served by L2 (BSP cache-hit terms).
    pub fn l2_hit_fraction(&self) -> f64 {
        let total = (self.dram_bytes + self.l2_bytes) as f64;
        if total == 0.0 {
            0.0
        } else {
            self.l2_bytes as f64 / total
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn with_batch_scales_work_not_working_set() {
        let k = KernelDesc::new("k")
            .grid(10, 64)
            .flops(100)
            .dram_bytes(32)
            .l2_bytes(16)
            .shared_bytes(8)
            .l2_working_set(4096);
        let b = k.clone().with_batch(4);
        assert_eq!(b.grid_blocks, 40);
        assert_eq!(b.flops, 400);
        assert_eq!(b.dram_bytes, 128);
        assert_eq!(b.l2_bytes, 64);
        assert_eq!(b.shared_bytes, 32);
        assert_eq!(b.l2_working_set_bytes, 4096);
        assert_eq!(b.threads_per_block, k.threads_per_block);
        assert_eq!(k.clone().with_batch(1), k);
    }

    #[test]
    fn builder_sets_fields() {
        let k = KernelDesc::new("k")
            .grid(10, 64)
            .flops(100)
            .dram_bytes(32)
            .l2_bytes(32)
            .shared_bytes(128)
            .precision(Precision::Fp16, true)
            .efficiency(0.7)
            .occupancy(4);
        assert_eq!(k.grid_blocks, 10);
        assert_eq!(k.total_threads(), 640);
        assert!(k.uses_tensor_cores);
        assert_eq!(k.l2_hit_fraction(), 0.5);
        assert_eq!(k.blocks_per_sm, 4);
    }

    #[test]
    fn tensor_cores_require_fp16() {
        let k = KernelDesc::new("k").precision(Precision::Int8, true);
        assert!(!k.uses_tensor_cores);
        let k = KernelDesc::new("k").precision(Precision::Fp32, true);
        assert!(!k.uses_tensor_cores);
    }

    #[test]
    fn per_thread_quantities() {
        let k = KernelDesc::new("k").grid(2, 50).flops(1000).dram_bytes(400);
        assert_eq!(k.ops_per_thread(), 10.0);
        assert_eq!(k.global_words_per_thread(), 1.0);
    }

    #[test]
    fn precision_sizes() {
        assert_eq!(Precision::Fp32.bytes(), 4);
        assert_eq!(Precision::Fp16.bytes(), 2);
        assert_eq!(Precision::Int8.bytes(), 1);
    }

    #[test]
    fn zero_guards() {
        let k = KernelDesc::new("k").grid(0, 0);
        assert_eq!(k.grid_blocks, 1);
        assert_eq!(k.threads_per_block, 1);
        assert_eq!(KernelDesc::new("k").l2_hit_fraction(), 0.0);
    }

    #[test]
    #[should_panic(expected = "efficiency")]
    fn efficiency_bounds_enforced() {
        KernelDesc::new("k").efficiency(1.5);
    }
}
