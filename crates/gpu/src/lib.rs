//! Analytic simulator of Volta-class embedded GPUs (Jetson Xavier NX / AGX).
//!
//! The paper's performance findings are first-order functions of a handful of
//! architectural quantities — SM count, CUDA/tensor core throughput, clocks,
//! LPDDR4x bandwidth, cache sizes, kernel-launch overhead, and host-to-device
//! copy behaviour. This crate models exactly those quantities:
//!
//! * [`device`] — the two evaluation platforms of the paper's Table I, plus a
//!   builder for hypothetical configurations.
//! * [`kernel`] — descriptors of simulated CUDA kernel launches (grid/block
//!   geometry, FLOPs, DRAM traffic, precision).
//! * [`timing`] — the roofline-with-wave-quantization execution-time model.
//!   Wave quantization is what lets a 6-SM NX beat an 8-SM AGX on kernels
//!   whose grids divide 6 but not 8 — one of the paper's latency anomalies.
//! * [`memcpy`] — `cudaMemcpyHostToDevice` cost (per-transfer latency plus
//!   bandwidth term); the AGX's higher transfer setup latency reproduces the
//!   paper's Table X memcpy anomaly.
//! * [`timeline`] — event-ordered execution of kernel sequences on streams,
//!   producing the traces that the nvprof-like profiler consumes.
//! * [`contention`] — steady-state multi-stream concurrency model (Figures
//!   3/4): per-thread FPS, GPU utilization, and the Eq. 1 thread bound.
//! * [`tegrastats`] — a tegrastats-like sampler over a timeline.
//!
//! Simulated time is measured in microseconds (`f64`).
//!
//! # Examples
//!
//! ```
//! use trtsim_gpu::device::DeviceSpec;
//! use trtsim_gpu::kernel::{KernelDesc, Precision};
//! use trtsim_gpu::timing::kernel_time_us;
//!
//! let nx = DeviceSpec::xavier_nx();
//! let k = KernelDesc::new("demo_kernel")
//!     .grid(12, 256)
//!     .flops(40_000_000)
//!     .dram_bytes(1 << 20)
//!     .precision(Precision::Fp16, true);
//! let t = kernel_time_us(&k, &nx);
//! assert!(t > 0.0);
//! ```

#![warn(missing_docs)]

pub mod contention;
pub mod device;
pub mod kernel;
pub mod memcpy;
pub mod tegrastats;
pub mod timeline;
pub mod timing;

pub use device::{DeviceSpec, Platform};
pub use kernel::{KernelDesc, Precision};
pub use timeline::{GpuTimeline, KernelRecord, MemcpyRecord, StreamId};
